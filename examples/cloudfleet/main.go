// Cloudfleet: run the vehicular-cloud service in-process and have a fleet
// of EVs concurrently request optimal profiles for staggered departures —
// the deployment model of the paper's references [6, 7], where on-board
// units upload state and the cloud computes the velocity profile.
//
// Run with:
//
//	go run ./examples/cloudfleet
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"evvo/internal/cloud"
	"evvo/internal/dp"
	"evvo/internal/units"
)

func main() {
	srv, err := cloud.NewServer(cloud.ServerConfig{
		// Coarser grid keeps the demo snappy.
		DPTemplate: dp.Config{DsM: 100, DvMS: 1, DtSec: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Println("cloud server:", err)
		}
	}()
	defer httpSrv.Close()

	client, err := cloud.NewClient("http://" + ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := client.Health(ctx); err != nil {
		log.Fatal(err)
	}

	const fleet = 24
	var wg sync.WaitGroup
	results := make([]*cloud.Response, fleet)
	start := time.Now()
	for i := 0; i < fleet; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Four departure waves: vehicles in a wave share a cache entry.
			resp, err := client.Optimize(ctx, cloud.Request{
				Route:      "us25",
				DepartTime: float64(i%4) * 30,
			})
			if err != nil {
				log.Println("ev", i, "failed:", err)
				return
			}
			results[i] = resp
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	cached := 0
	for i, r := range results {
		if r == nil {
			log.Fatalf("ev %d got no plan", i)
		}
		if r.Cached {
			cached++
		}
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet of %d EVs served in %v\n", fleet, elapsed.Round(time.Millisecond))
	fmt.Printf("cache: %d responses served from cache (server counters: %+v)\n", cached, stats)
	fmt.Printf("sample plan: %.1f mAh over %.0f s, %d signal arrivals, penalized=%v\n",
		units.AhToMAh(results[0].ChargeAh), results[0].TripSec, len(results[0].Arrivals), results[0].Penalized)
}
