// Ecodrive: reproduce the paper's headline comparison — mild driving, fast
// driving, the prior green-window DP and the proposed queue-aware DP, all
// on the US-25 corridor under identical traffic, with the DP plans
// executed in the microsimulator via the trasi socket protocol.
//
// Run with:
//
//	go run ./examples/ecodrive [-full]
package main

import (
	"flag"
	"fmt"
	"log"

	"evvo/internal/experiments"
	"evvo/internal/units"
)

func main() {
	full := flag.Bool("full", false, "report-quality resolution (slower)")
	flag.Parse()

	fid := experiments.FidelityFast
	if *full {
		fid = experiments.FidelityFull
	}
	res, err := experiments.Comparison(fid)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("profile          energy (mAh)  trip (s)  signal stops  slowest near lights")
	for _, it := range res.Items {
		fmt.Printf("%-15s  %12.1f  %8.1f  %12d  %13.1f km/h\n",
			it.Kind, it.EnergyMAh, it.TripSec, it.Stops, units.MpsToKmh(it.SlowestSignalMS))
	}

	prop, err := res.Item(experiments.KindProposed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, vs := range []experiments.ProfileKind{
		experiments.KindFast, experiments.KindMild, experiments.KindCurrentDP,
	} {
		other, err := res.Item(vs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("proposed DP saves %5.1f%% vs %s\n",
			(1-prop.EnergyMAh/other.EnergyMAh)*100, vs)
	}
}
