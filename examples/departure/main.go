// Departure: ask the vehicular cloud *when* to leave. Signal cycles make
// departure timing matter — a shift of a few seconds can align every
// arrival with a zero-queue window. The cloud already knows the windows,
// so its /v1/advise endpoint sweeps a departure range and recommends the
// cheapest clean option; the same sweep is available in-process through
// dp.SweepDepartures.
//
// Run with:
//
//	go run ./examples/departure
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"evvo/internal/cloud"
	"evvo/internal/dp"
	"evvo/internal/ev"
	"evvo/internal/queue"
	"evvo/internal/road"
	"evvo/internal/units"
)

func main() {
	// In-process cloud service.
	srv, err := cloud.NewServer(cloud.ServerConfig{
		DPTemplate: dp.Config{DsM: 100, DvMS: 1, DtSec: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()

	// 1. Remote advice over HTTP.
	client, err := cloud.NewClient("http://" + ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	resp, err := adviseOverHTTP(client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cloud advice for a 0–60 s departure window (step 10 s):")
	for _, o := range resp.Options {
		marker := " "
		if o.DepartTime == resp.Best.DepartTime {
			marker = "*"
		}
		fmt.Printf("%s depart %4.0f s → %7.1f mAh, %5.1f s trip, penalized=%v\n",
			marker, o.DepartTime, units.AhToMAh(o.ChargeAh), o.TripSec, o.Penalized)
	}
	fmt.Printf("recommended: leave at t=%.0f s\n\n", resp.Best.DepartTime)

	// 2. The same sweep locally, without the service.
	wf, err := dp.QueueAwareWindows(queue.US25Params(),
		dp.ConstantArrivalRate(queue.VehPerHour(400)), 0, 1000)
	if err != nil {
		log.Fatal(err)
	}
	opts, err := dp.SweepDepartures(dp.Config{
		Route: road.US25(), Vehicle: ev.SparkEV(),
		DsM: 100, DvMS: 1, DtSec: 2, Windows: wf,
	}, 0, 60, 10)
	if err != nil {
		log.Fatal(err)
	}
	best, err := dp.BestDeparture(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local sweep (dp.SweepDepartures): best departure %.0f s (%.1f mAh)\n",
		best.DepartTime, units.AhToMAh(best.Result.ChargeAh))
}

func adviseOverHTTP(client *cloud.Client) (*cloud.AdviseResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	return client.Advise(ctx, cloud.AdviseRequest{
		Route: "us25", EarliestDepart: 0, LatestDepart: 60, StepSec: 10,
		ArrivalRateVehPerHour: 400,
	})
}
