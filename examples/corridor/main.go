// Corridor: apply the queue-aware optimizer to a route the paper never
// drove — a 6 km urban corridor with five signalized intersections at
// staggered offsets — and sweep departure times, comparing the queue-aware
// DP against the green-window baseline on planned energy and window hits.
//
// Run with:
//
//	go run ./examples/corridor
package main

import (
	"fmt"
	"log"

	"evvo/internal/dp"
	"evvo/internal/ev"
	"evvo/internal/queue"
	"evvo/internal/road"
	"evvo/internal/units"
)

func buildCorridor() (*road.Route, error) {
	controls := []road.Control{
		{Kind: road.ControlSignal, PositionM: 900, Timing: road.SignalTiming{RedSec: 35, GreenSec: 25}, Name: "sig-1"},
		{Kind: road.ControlSignal, PositionM: 2100, Timing: road.SignalTiming{RedSec: 30, GreenSec: 30, OffsetSec: 12}, Name: "sig-2"},
		{Kind: road.ControlSignal, PositionM: 3300, Timing: road.SignalTiming{RedSec: 25, GreenSec: 35, OffsetSec: 31}, Name: "sig-3"},
		{Kind: road.ControlSignal, PositionM: 4400, Timing: road.SignalTiming{RedSec: 30, GreenSec: 30, OffsetSec: 7}, Name: "sig-4"},
		{Kind: road.ControlSignal, PositionM: 5500, Timing: road.SignalTiming{RedSec: 40, GreenSec: 20, OffsetSec: 22}, Name: "sig-5"},
	}
	return road.NewRoute(road.RouteConfig{
		LengthM:      6000,
		DefaultMinMS: road.KmhToMs(30),
		DefaultMaxMS: road.KmhToMs(60),
		Controls:     controls,
		GradeZones: []road.GradeZone{
			{StartM: 2500, EndM: 3200, ThetaRad: 0.02},   // short climb
			{StartM: 4600, EndM: 5200, ThetaRad: -0.015}, // descent (regen)
		},
	})
}

func main() {
	route, err := buildCorridor()
	if err != nil {
		log.Fatal(err)
	}
	vin := queue.VehPerHour(300) // busier urban corridor
	qp := queue.US25Params()

	fmt.Println("depart  variant      energy (mAh)  trip (s)  in-window arrivals")
	for _, depart := range []float64{0, 20, 40} {
		horizon := depart + 1000
		base := dp.Config{
			Route: route, Vehicle: ev.SparkEV(), DepartTime: depart,
			MaxTripSec: 900, DsM: 100, DvMS: 1, DtSec: 2,
		}
		for _, variant := range []string{"green", "queue-aware"} {
			cfg := base
			switch variant {
			case "green":
				cfg.Windows = dp.GreenWindows(depart, horizon)
			case "queue-aware":
				wf, err := dp.QueueAwareWindows(qp, dp.ConstantArrivalRate(vin), depart, horizon)
				if err != nil {
					log.Fatal(err)
				}
				cfg.Windows = wf
			}
			res, err := dp.Optimize(cfg)
			if err != nil {
				log.Fatal(err)
			}
			hits := 0
			for _, a := range res.Arrivals {
				if a.InWindow {
					hits++
				}
			}
			fmt.Printf("%5.0fs  %-11s  %12.1f  %8.1f  %d/%d\n",
				depart, variant, units.AhToMAh(res.ChargeAh), res.TripSec, hits, len(res.Arrivals))
		}
	}
	fmt.Println("\nNote: queue-aware windows are strict subsets of green windows, so the")
	fmt.Println("queue-aware plan may spend slightly more planned energy — what it buys")
	fmt.Println("is never meeting a standing queue when the plan is executed in traffic.")
}
