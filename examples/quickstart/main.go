// Quickstart: optimize a velocity profile for the paper's US-25 route with
// queue-aware arrival windows and print what the optimizer achieved.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"evvo/internal/dp"
	"evvo/internal/ev"
	"evvo/internal/queue"
	"evvo/internal/road"
	"evvo/internal/units"
)

func main() {
	route := road.US25()         // 4.2 km, stop sign @490 m, lights @1800 m & 3460 m
	vehicle := ev.SparkEV()      // the paper's Chevrolet Spark EV model
	vin := queue.VehPerHour(153) // measured arrival rate at the signals

	// Admissible arrivals at each light: the zero-queue windows T_q
	// predicted by the queue-length model.
	windows, err := dp.QueueAwareWindows(queue.US25Params(), dp.ConstantArrivalRate(vin), 0, 800)
	if err != nil {
		log.Fatal(err)
	}

	res, err := dp.Optimize(dp.Config{
		Route:        route,
		Vehicle:      vehicle,
		StopDwellSec: 2,
		Windows:      windows,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("optimized %0.1f km trip: %.1f mAh, %.0f s, penalized=%v\n",
		units.MToKm(route.LengthM()), units.AhToMAh(res.ChargeAh), res.TripSec, res.Penalized)
	for _, a := range res.Arrivals {
		fmt.Printf("  %s: arrive %.1f s (in zero-queue window: %v)\n", a.Name, a.ArrivalSec, a.InWindow)
	}
	fmt.Println("\nspeed profile (every 300 m):")
	for pos := 0.0; pos <= route.LengthM(); pos += 300 {
		fmt.Printf("  %4.0f m: %5.1f km/h\n", pos, units.MpsToKmh(res.Profile.SpeedAtPos(pos)))
	}
}
