package evvo_test

import (
	"fmt"
	"testing"

	"evvo/internal/dp"
	"evvo/internal/ev"
	"evvo/internal/experiments"
	"evvo/internal/metrics"
	"evvo/internal/queue"
	"evvo/internal/road"
	"evvo/internal/traffic"
)

// The benchmarks below regenerate each figure of the paper's evaluation
// (Section III) and report the headline quantity of that figure as a
// custom metric, so `go test -bench=. -benchmem` doubles as the
// reproduction harness. Fast fidelity keeps wall time reasonable; run
// `evbench` (cmd/evbench) for the full-resolution tables.

// BenchmarkFig3EnergySurface regenerates the ζ(v, a) surface of Fig. 3.
func BenchmarkFig3EnergySurface(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(ev.SparkEV())
		if err != nil {
			b.Fatal(err)
		}
		peak = r.RateAmps[len(r.RateAmps)-1][len(r.SpeedsKmh)-1]
	}
	b.ReportMetric(peak, "peak-amps")
}

// BenchmarkFig4SAETraining trains and scores the SAE volume predictor of
// Fig. 4, reporting the overall MRE (paper: < 10% per day).
func BenchmarkFig4SAETraining(b *testing.B) {
	var mre float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(experiments.FidelityFast)
		if err != nil {
			b.Fatal(err)
		}
		mre = r.OverallMRE
	}
	b.ReportMetric(mre*100, "MRE-%")
}

// BenchmarkFig5QueueModels evaluates the VM/QL models against the
// simulated ground truth of Fig. 5, reporting the VM queue-clear time.
func BenchmarkFig5QueueModels(b *testing.B) {
	var clear float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(experiments.FidelityFast)
		if err != nil {
			b.Fatal(err)
		}
		clear = r.VMClearSec
	}
	b.ReportMetric(clear, "clear-s")
}

// benchOptimize runs one DP variant on US-25 at the fast grid. workers = 0
// uses every core (the default); 1 pins the relaxation serial — outputs are
// bit-identical either way, so both report the same planned-mAh.
func benchOptimize(b *testing.B, windows dp.WindowsFunc, workers int) *dp.Result {
	b.Helper()
	cfg := dp.Config{
		Route: road.US25(), Vehicle: ev.SparkEV(), DepartTime: 40,
		DsM: 100, DvMS: 1, DtSec: 2, StopDwellSec: 2,
		Windows: windows, Workers: workers,
	}
	res, err := dp.Optimize(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig6BaselineDP times the green-window ("current") DP of
// Fig. 6(a).
func BenchmarkFig6BaselineDP(b *testing.B) {
	var mah float64
	for i := 0; i < b.N; i++ {
		res := benchOptimize(b, dp.GreenWindows(40, 840), 0)
		mah = res.ChargeAh * 1000
	}
	b.ReportMetric(mah, "planned-mAh")
}

// BenchmarkFig6QueueAwareDP times the proposed queue-aware DP of
// Fig. 6(b).
func BenchmarkFig6QueueAwareDP(b *testing.B) {
	wf, err := dp.QueueAwareWindows(queue.US25Params(),
		dp.ConstantArrivalRate(queue.VehPerHour(153)), 40, 840)
	if err != nil {
		b.Fatal(err)
	}
	var mah float64
	for i := 0; i < b.N; i++ {
		res := benchOptimize(b, wf, 0)
		mah = res.ChargeAh * 1000
	}
	b.ReportMetric(mah, "planned-mAh")
}

// BenchmarkFig6QueueAwareDPScalar times the queue-aware DP with the AVX2
// relaxation kernels forced off, isolating the assembly gain from the
// structure-of-arrays restructuring (outputs are bit-identical either way).
func BenchmarkFig6QueueAwareDPScalar(b *testing.B) {
	prev := dp.SetAsmKernels(false)
	defer dp.SetAsmKernels(prev)
	wf, err := dp.QueueAwareWindows(queue.US25Params(),
		dp.ConstantArrivalRate(queue.VehPerHour(153)), 40, 840)
	if err != nil {
		b.Fatal(err)
	}
	var mah float64
	for i := 0; i < b.N; i++ {
		res := benchOptimize(b, wf, 0)
		mah = res.ChargeAh * 1000
	}
	b.ReportMetric(mah, "planned-mAh")
}

// BenchmarkFig6QueueAwareDPCoarseRefine times the coarse-to-fine fast path
// (factor 3, corridor Factor·Δv = 3 m/s — one quantization error wide) on
// the queue-aware problem; the reported planned-mAh shows any deviation
// from the exact solve's 1020.
func BenchmarkFig6QueueAwareDPCoarseRefine(b *testing.B) {
	wf, err := dp.QueueAwareWindows(queue.US25Params(),
		dp.ConstantArrivalRate(queue.VehPerHour(153)), 40, 840)
	if err != nil {
		b.Fatal(err)
	}
	var mah float64
	for i := 0; i < b.N; i++ {
		cfg := dp.Config{
			Route: road.US25(), Vehicle: ev.SparkEV(), DepartTime: 40,
			DsM: 100, DvMS: 1, DtSec: 2, StopDwellSec: 2,
			Windows: wf, CoarseRefine: dp.CoarseRefine{Factor: 3, CorridorMS: 3},
		}
		res, err := dp.Optimize(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Refined == nil {
			b.Fatal("coarse-refine result missing Refined diagnostic")
		}
		mah = res.ChargeAh * 1000
	}
	b.ReportMetric(mah, "planned-mAh")
}

// BenchmarkFig6QueueAwareDPSerial pins the relaxation to one worker,
// isolating the transition-table hoisting gain from the parallel gain
// (compare against BenchmarkFig6QueueAwareDP on a multi-core machine).
func BenchmarkFig6QueueAwareDPSerial(b *testing.B) {
	wf, err := dp.QueueAwareWindows(queue.US25Params(),
		dp.ConstantArrivalRate(queue.VehPerHour(153)), 40, 840)
	if err != nil {
		b.Fatal(err)
	}
	var mah float64
	for i := 0; i < b.N; i++ {
		res := benchOptimize(b, wf, 1)
		mah = res.ChargeAh * 1000
	}
	b.ReportMetric(mah, "planned-mAh")
}

// BenchmarkSweepDepartures times the departure-sweep fan-out (7 departures
// over the worker pool), the serving-path unit of cmd/cloudd's /v1/advise.
func BenchmarkSweepDepartures(b *testing.B) {
	wf, err := dp.QueueAwareWindows(queue.US25Params(),
		dp.ConstantArrivalRate(queue.VehPerHour(400)), 0, 1200)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dp.Config{
		Route: road.US25(), Vehicle: ev.SparkEV(),
		DsM: 100, DvMS: 1, DtSec: 2, StopDwellSec: 2, Windows: wf,
	}
	for i := 0; i < b.N; i++ {
		if _, err := dp.SweepDepartures(cfg, 0, 60, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7EnergyComparison runs the full four-profile pipeline of
// Fig. 7 (drivers, both DPs, simulator execution over the trasi protocol)
// and reports the proposed method's saving vs fast driving (paper: 17.5%).
func BenchmarkFig7EnergyComparison(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(experiments.FidelityFast)
		if err != nil {
			b.Fatal(err)
		}
		s, err := r.Savings(experiments.KindFast)
		if err != nil {
			b.Fatal(err)
		}
		saving = s
	}
	b.ReportMetric(saving*100, "saving-vs-fast-%")
}

// BenchmarkFig8TripTime runs the same pipeline and reports the proposed
// method's trip time (paper: equal to fast driving, below current DP).
func BenchmarkFig8TripTime(b *testing.B) {
	var trip float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(experiments.FidelityFast)
		if err != nil {
			b.Fatal(err)
		}
		it, err := r.Item(experiments.KindProposed)
		if err != nil {
			b.Fatal(err)
		}
		trip = it.TripSec
	}
	b.ReportMetric(trip, "trip-s")
}

// BenchmarkAblationTimeResolution sweeps the DP's time discretization Δt —
// the resolution/runtime trade called out in DESIGN.md.
func BenchmarkAblationTimeResolution(b *testing.B) {
	for _, dt := range []float64{1, 2, 5} {
		b.Run(benchName("dt", dt), func(b *testing.B) {
			wf := dp.GreenWindows(40, 840)
			var mah float64
			for i := 0; i < b.N; i++ {
				cfg := dp.Config{
					Route: road.US25(), Vehicle: ev.SparkEV(), DepartTime: 40,
					DsM: 100, DvMS: 1, DtSec: dt, StopDwellSec: 2, Windows: wf,
				}
				res, err := dp.Optimize(cfg)
				if err != nil {
					b.Fatal(err)
				}
				mah = res.ChargeAh * 1000
			}
			b.ReportMetric(mah, "planned-mAh")
		})
	}
}

// BenchmarkAblationQueueWindow sweeps the queue-aware window margin: wider
// margins are robust to model error but shrink the admissible set.
func BenchmarkAblationQueueWindow(b *testing.B) {
	wf, err := dp.QueueAwareWindows(queue.US25Params(),
		dp.ConstantArrivalRate(queue.VehPerHour(153)), 40, 840)
	if err != nil {
		b.Fatal(err)
	}
	for _, margin := range []float64{1, 3, 6} {
		b.Run(benchName("margin", margin), func(b *testing.B) {
			var trip float64
			for i := 0; i < b.N; i++ {
				cfg := dp.Config{
					Route: road.US25(), Vehicle: ev.SparkEV(), DepartTime: 40,
					DsM: 100, DvMS: 1, DtSec: 2, StopDwellSec: 2,
					WindowMarginSec: margin, Windows: wf,
				}
				res, err := dp.Optimize(cfg)
				if err != nil {
					b.Fatal(err)
				}
				trip = res.TripSec
			}
			b.ReportMetric(trip, "trip-s")
		})
	}
}

// BenchmarkAblationSAEDepth sweeps SAE encoder depth for the traffic
// predictor, reporting test MRE per depth.
func BenchmarkAblationSAEDepth(b *testing.B) {
	all, err := traffic.Synthesize(traffic.SyntheticConfig{Weeks: 5, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	train, err := all.Slice(0, 4*traffic.HoursPerWeek)
	if err != nil {
		b.Fatal(err)
	}
	test, err := all.Slice(4*traffic.HoursPerWeek, 5*traffic.HoursPerWeek)
	if err != nil {
		b.Fatal(err)
	}
	for _, hidden := range [][]int{{32}, {32, 16}, {32, 16, 8}} {
		b.Run(benchName("layers", float64(len(hidden))), func(b *testing.B) {
			var mre float64
			for i := 0; i < b.N; i++ {
				p, err := traffic.TrainPredictor(train, traffic.PredictorConfig{
					Window: 12, Hidden: hidden,
					PretrainEpochs: 8, FinetuneEpochs: 40, Seed: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				pred, actual, err := p.PredictSeries(test, 4*traffic.HoursPerWeek)
				if err != nil {
					b.Fatal(err)
				}
				if mre, err = metrics.MRE(pred, actual); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(mre*100, "MRE-%")
		})
	}
}

func benchName(key string, v float64) string {
	return fmt.Sprintf("%s=%g", key, v)
}

// BenchmarkExtGradeStudy runs the road-gradient extension (the paper's
// stated future work), reporting how much grade awareness saves on rolling
// terrain.
func BenchmarkExtGradeStudy(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.GradeStudy(experiments.FidelityFast)
		if err != nil {
			b.Fatal(err)
		}
		saving = r.SavingPct
	}
	b.ReportMetric(saving, "grade-saving-%")
}

// BenchmarkExtGreedyVsDP compares the fast heuristic planner (in the
// spirit of the paper's reference [15]) against the full DP: runtime per
// plan plus the weighted cost each achieves.
func BenchmarkExtGreedyVsDP(b *testing.B) {
	vin := queue.VehPerHour(400)
	wf, err := dp.QueueAwareWindows(queue.US25Params(), dp.ConstantArrivalRate(vin), 0, 900)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dp.Config{
		Route: road.US25(), Vehicle: ev.SparkEV(),
		DsM: 100, DvMS: 1, DtSec: 2, StopDwellSec: 2, Windows: wf,
	}
	b.Run("greedy", func(b *testing.B) {
		var cost float64
		for i := 0; i < b.N; i++ {
			res, err := dp.GreedyPlan(cfg)
			if err != nil {
				b.Fatal(err)
			}
			cost = res.ChargeAh * 1000
		}
		b.ReportMetric(cost, "planned-mAh")
	})
	b.Run("dp", func(b *testing.B) {
		var cost float64
		for i := 0; i < b.N; i++ {
			res, err := dp.Optimize(cfg)
			if err != nil {
				b.Fatal(err)
			}
			cost = res.ChargeAh * 1000
		}
		b.ReportMetric(cost, "planned-mAh")
	})
}

// BenchmarkExtPredictorComparison scores the SAE against the classical
// baselines (seasonal naive, AR(24)) on the same held-out week, reporting
// each model's test MRE — the comparison that motivates the paper's SAE
// choice.
func BenchmarkExtPredictorComparison(b *testing.B) {
	all, err := traffic.Synthesize(traffic.SyntheticConfig{Weeks: 6, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	train, err := all.Slice(0, 5*traffic.HoursPerWeek)
	if err != nil {
		b.Fatal(err)
	}
	test, err := all.Slice(5*traffic.HoursPerWeek, 6*traffic.HoursPerWeek)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sae", func(b *testing.B) {
		var mre float64
		for i := 0; i < b.N; i++ {
			p, err := traffic.TrainPredictor(train, traffic.PredictorConfig{
				Window: 24, Hidden: []int{32, 16},
				PretrainEpochs: 10, FinetuneEpochs: 80, Seed: 5,
			})
			if err != nil {
				b.Fatal(err)
			}
			pred, actual, err := p.PredictSeries(test, 5*traffic.HoursPerWeek)
			if err != nil {
				b.Fatal(err)
			}
			if mre, err = metrics.MRE(pred, actual); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(mre*100, "MRE-%")
	})
	b.Run("ar24", func(b *testing.B) {
		var mre float64
		for i := 0; i < b.N; i++ {
			ar, err := traffic.FitAR(train, 24)
			if err != nil {
				b.Fatal(err)
			}
			pred, actual, err := ar.PredictSeries(test)
			if err != nil {
				b.Fatal(err)
			}
			if mre, err = metrics.MRE(pred, actual); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(mre*100, "MRE-%")
	})
	b.Run("seasonal-naive", func(b *testing.B) {
		joined := append(append([]float64{}, train.Values[4*traffic.HoursPerWeek:]...), test.Values...)
		s, err := traffic.NewSeries(joined)
		if err != nil {
			b.Fatal(err)
		}
		var mre float64
		for i := 0; i < b.N; i++ {
			pred, actual, err := traffic.SeasonalNaivePredict(s)
			if err != nil {
				b.Fatal(err)
			}
			if mre, err = metrics.MRE(pred, actual); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(mre*100, "MRE-%")
	})
}

// BenchmarkExtFleetStudy runs the multi-EV extension: a fleet of advised
// EVs sharing the corridor, reporting the fleet-mean saving of queue-aware
// plans over green-window plans.
func BenchmarkExtFleetStudy(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunFleetStudy(experiments.FidelityFast)
		if err != nil {
			b.Fatal(err)
		}
		if g := experiments.MeanEnergy(s.Green); g > 0 {
			saving = (1 - experiments.MeanEnergy(s.QueueAware)/g) * 100
		}
	}
	b.ReportMetric(saving, "fleet-saving-%")
}
