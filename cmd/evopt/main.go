// Command evopt computes an energy-optimal velocity profile for the US-25
// experimental route and prints it, with per-signal arrival diagnostics.
//
// Usage:
//
//	evopt [-variant queue-aware|green|unconstrained] [-depart s]
//	      [-rate veh/h] [-ds m] [-dv m/s] [-dt s] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"evvo/internal/dp"
	"evvo/internal/ev"
	"evvo/internal/queue"
	"evvo/internal/road"
	"evvo/internal/units"
)

func main() {
	var (
		variant = flag.String("variant", "queue-aware", "optimizer variant: queue-aware, green, or unconstrained")
		depart  = flag.Float64("depart", 0, "departure time in seconds (signal cycles are anchored at t = 0)")
		rate    = flag.Float64("rate", 153, "predicted vehicle arrival rate at signals, vehicles/hour")
		dsM     = flag.Float64("ds", 50, "position grid Δs in metres")
		dvMS    = flag.Float64("dv", 0.5, "velocity grid Δv in m/s")
		dtSec   = flag.Float64("dt", 1, "time grid Δt in seconds")
		csv     = flag.Bool("csv", false, "emit the profile as CSV (t,pos,v) instead of a table")
	)
	flag.Parse()
	if err := run(*variant, *depart, *rate, *dsM, *dvMS, *dtSec, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "evopt:", err)
		os.Exit(1)
	}
}

func run(variant string, depart, rate, dsM, dvMS, dtSec float64, csv bool) error {
	route := road.US25()
	cfg := dp.Config{
		Route: route, Vehicle: ev.SparkEV(), DepartTime: depart,
		DsM: dsM, DvMS: dvMS, DtSec: dtSec, StopDwellSec: 2,
	}
	horizon := depart + 800
	switch variant {
	case "green":
		cfg.Windows = dp.GreenWindows(depart, horizon)
	case "queue-aware":
		wf, err := dp.QueueAwareWindows(queue.US25Params(),
			dp.ConstantArrivalRate(queue.VehPerHour(rate)), depart, horizon)
		if err != nil {
			return err
		}
		cfg.Windows = wf
	case "unconstrained":
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}

	res, err := dp.Optimize(cfg)
	if err != nil {
		return err
	}
	if csv {
		fmt.Println("t_sec,pos_m,speed_ms")
		for _, p := range res.Profile.Points() {
			fmt.Printf("%.2f,%.1f,%.3f\n", p.T, p.Pos, p.V)
		}
		return nil
	}
	fmt.Printf("route: US-25 (%.1f km), variant: %s, depart: %.0f s\n",
		units.MToKm(route.LengthM()), variant, depart)
	fmt.Printf("energy: %.1f mAh   trip: %.1f s   penalized: %v\n",
		units.AhToMAh(res.ChargeAh), res.TripSec, res.Penalized)
	for _, a := range res.Arrivals {
		status := "in window"
		if !a.InWindow {
			status = "OUT OF WINDOW"
		}
		fmt.Printf("  %-10s at %4.0f m: arrive t=%6.1f s  (%s)\n", a.Name, a.PositionM, a.ArrivalSec, status)
	}
	fmt.Println("\npos (m)  speed (km/h)")
	for pos := 0.0; pos <= route.LengthM(); pos += 200 {
		fmt.Printf("%7.0f  %6.1f\n", pos, units.MpsToKmh(res.Profile.SpeedAtPos(pos)))
	}
	return nil
}
