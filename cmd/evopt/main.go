// Command evopt computes an energy-optimal velocity profile for the US-25
// experimental route and prints it, with per-signal arrival diagnostics.
//
// Usage:
//
//	evopt [-variant queue-aware|green|unconstrained] [-depart s]
//	      [-rate veh/h] [-ds m] [-dv m/s] [-dt s]
//	      [-coarse factor] [-corridor m/s] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"evvo/internal/dp"
	"evvo/internal/ev"
	"evvo/internal/queue"
	"evvo/internal/road"
	"evvo/internal/units"
)

// options collects the command's knobs; flag parsing fills one in main and
// tests construct them directly.
type options struct {
	variant    string
	depart     float64
	rate       float64
	dsM        float64
	dvMS       float64
	dtSec      float64
	coarse     int
	corridorMS float64
	csv        bool
}

func main() {
	var o options
	flag.StringVar(&o.variant, "variant", "queue-aware", "optimizer variant: queue-aware, green, or unconstrained")
	flag.Float64Var(&o.depart, "depart", 0, "departure time in seconds (signal cycles are anchored at t = 0)")
	flag.Float64Var(&o.rate, "rate", 153, "predicted vehicle arrival rate at signals, vehicles/hour")
	flag.Float64Var(&o.dsM, "ds", 50, "position grid Δs in metres")
	flag.Float64Var(&o.dvMS, "dv", 0.5, "velocity grid Δv in m/s")
	flag.Float64Var(&o.dtSec, "dt", 1, "time grid Δt in seconds")
	flag.IntVar(&o.coarse, "coarse", 0, "coarse-to-fine fast path: velocity-grid coarsening factor (0 = exact DP, 2-4 useful)")
	flag.Float64Var(&o.corridorMS, "corridor", 0, "fast-path corridor half-width in m/s (0 = default 2·factor·Δv; needs -coarse)")
	flag.BoolVar(&o.csv, "csv", false, "emit the profile as CSV (t,pos,v) instead of a table")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "evopt:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	route := road.US25()
	cfg := dp.Config{
		Route: route, Vehicle: ev.SparkEV(), DepartTime: o.depart,
		DsM: o.dsM, DvMS: o.dvMS, DtSec: o.dtSec, StopDwellSec: 2,
		CoarseRefine: dp.CoarseRefine{Factor: o.coarse, CorridorMS: o.corridorMS},
	}
	if o.corridorMS != 0 && o.coarse == 0 {
		return fmt.Errorf("-corridor %.2f needs -coarse (the corridor brackets the coarse pass)", o.corridorMS)
	}
	horizon := o.depart + 800
	switch o.variant {
	case "green":
		cfg.Windows = dp.GreenWindows(o.depart, horizon)
	case "queue-aware":
		wf, err := dp.QueueAwareWindows(queue.US25Params(),
			dp.ConstantArrivalRate(queue.VehPerHour(o.rate)), o.depart, horizon)
		if err != nil {
			return err
		}
		cfg.Windows = wf
	case "unconstrained":
	default:
		return fmt.Errorf("unknown variant %q", o.variant)
	}

	res, err := dp.Optimize(cfg)
	if err != nil {
		return err
	}
	if o.csv {
		fmt.Println("t_sec,pos_m,speed_ms")
		for _, p := range res.Profile.Points() {
			fmt.Printf("%.2f,%.1f,%.3f\n", p.T, p.Pos, p.V)
		}
		return nil
	}
	fmt.Printf("route: US-25 (%.1f km), variant: %s, depart: %.0f s\n",
		units.MToKm(route.LengthM()), o.variant, o.depart)
	fmt.Printf("energy: %.1f mAh   trip: %.1f s   penalized: %v\n",
		units.AhToMAh(res.ChargeAh), res.TripSec, res.Penalized)
	if d := res.Refined; d != nil {
		mode := fmt.Sprintf("coarse-to-fine ×%d, corridor ±%.2f m/s (coarse pass %.1f mAh, %d states)",
			d.Factor, d.CorridorMS, units.AhToMAh(d.CoarseChargeAh), d.CoarseStatesExpanded)
		if d.FellBack {
			mode = fmt.Sprintf("coarse-to-fine ×%d fell back to the exact DP", d.Factor)
		}
		fmt.Println("solver:", mode)
	}
	for _, a := range res.Arrivals {
		status := "in window"
		if !a.InWindow {
			status = "OUT OF WINDOW"
		}
		fmt.Printf("  %-10s at %4.0f m: arrive t=%6.1f s  (%s)\n", a.Name, a.PositionM, a.ArrivalSec, status)
	}
	fmt.Println("\npos (m)  speed (km/h)")
	for pos := 0.0; pos <= route.LengthM(); pos += 200 {
		fmt.Printf("%7.0f  %6.1f\n", pos, units.MpsToKmh(res.Profile.SpeedAtPos(pos)))
	}
	return nil
}
