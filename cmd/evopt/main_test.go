package main

import (
	"testing"
)

func TestRunVariants(t *testing.T) {
	for _, variant := range []string{"queue-aware", "green", "unconstrained"} {
		t.Run(variant, func(t *testing.T) {
			if err := run(variant, 0, 153, 100, 1, 2, false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunCSV(t *testing.T) {
	if err := run("queue-aware", 10, 153, 100, 1, 2, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownVariant(t *testing.T) {
	if err := run("teleport", 0, 153, 100, 1, 2, false); err == nil {
		t.Fatal("unknown variant accepted")
	}
}
