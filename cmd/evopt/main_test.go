package main

import (
	"testing"
)

// coarseOpts is the fast test grid shared by the variants.
func coarseOpts(variant string) options {
	return options{variant: variant, rate: 153, dsM: 100, dvMS: 1, dtSec: 2}
}

func TestRunVariants(t *testing.T) {
	for _, variant := range []string{"queue-aware", "green", "unconstrained"} {
		t.Run(variant, func(t *testing.T) {
			if err := run(coarseOpts(variant)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunCSV(t *testing.T) {
	o := coarseOpts("queue-aware")
	o.depart = 10
	o.csv = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunCoarseRefine(t *testing.T) {
	o := coarseOpts("queue-aware")
	o.coarse = 3
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	o.corridorMS = 3
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunCorridorWithoutCoarse(t *testing.T) {
	o := coarseOpts("queue-aware")
	o.corridorMS = 2
	if err := run(o); err == nil {
		t.Fatal("-corridor without -coarse accepted")
	}
}

func TestRunUnknownVariant(t *testing.T) {
	if err := run(coarseOpts("teleport")); err == nil {
		t.Fatal("unknown variant accepted")
	}
}
