// Command simd runs the microscopic traffic simulator as a daemon speaking
// the trasi protocol (the repository's TraCI substitute). Clients connect
// over TCP to step the simulation, inject controlled EVs, command speeds
// and read queues.
//
// Usage:
//
//	simd [-addr host:port] [-rate veh/h] [-gamma ratio] [-seed n] [-step s]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"evvo/internal/queue"
	"evvo/internal/road"
	"evvo/internal/sim"
	"evvo/internal/trasi"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:8713", "listen address")
		rate  = flag.Float64("rate", 153, "background arrival rate, vehicles/hour")
		gamma = flag.Float64("gamma", 0.7636, "straight-through ratio γ at signals")
		seed  = flag.Int64("seed", 1, "simulation random seed")
		step  = flag.Float64("step", 0.5, "simulation tick in seconds")
	)
	flag.Parse()
	if err := run(*addr, *rate, *gamma, *seed, *step); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

// start builds the simulation server and begins listening; the caller owns
// shutdown via the returned server's Close.
func start(addr string, rate, gamma float64, seed int64, step float64) (*trasi.Server, net.Addr, error) {
	s, err := sim.New(sim.Config{
		Route:         road.US25(),
		StepSec:       step,
		Seed:          seed,
		Arrivals:      queue.ConstantRate(queue.VehPerHour(rate)),
		StraightRatio: gamma,
	})
	if err != nil {
		return nil, nil, err
	}
	srv, err := trasi.NewServer(s)
	if err != nil {
		return nil, nil, err
	}
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, nil, err
	}
	return srv, bound, nil
}

func run(addr string, rate, gamma float64, seed int64, step float64) error {
	srv, bound, err := start(addr, rate, gamma, seed, step)
	if err != nil {
		return err
	}
	log.Printf("simd: serving US-25 simulation on %s (rate %.0f veh/h, γ %.2f, seed %d)",
		bound, rate, gamma, seed)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	<-sigCh
	log.Println("simd: shutting down")
	return srv.Close()
}
