package main

import (
	"testing"

	"evvo/internal/trasi"
)

func TestStartServesTrasi(t *testing.T) {
	srv, addr, err := start("127.0.0.1:0", 153, 0.7636, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := trasi.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Step(10); err != nil {
		t.Fatal(err)
	}
	green, err := c.SignalGreen("light-1")
	if err != nil {
		t.Fatal(err)
	}
	_ = green // phase depends on time; the query must simply succeed
	if err := c.AddVehicle("ev"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetSpeed("ev", 12); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadConfig(t *testing.T) {
	if _, _, err := start("127.0.0.1:0", 153, 2.0, 1, 0.5); err == nil {
		t.Fatal("invalid gamma accepted")
	}
	if _, _, err := start("256.0.0.1:99999", 153, 0.5, 1, 0.5); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
