// Command evlint runs the repo's custom static-analysis suite
// (internal/lint) over the given packages — a multichecker in the mold
// of golang.org/x/tools/go/analysis/multichecker, built on the standard
// library only so it works in this module's offline build.
//
// Usage:
//
//	evlint [-list] [-run name[,name...]] [-json] [-summaries] [-max-wall d] [packages...]
//
// With no packages, ./... is linted. Exit status is 1 when any active
// finding remains; findings suppressed with //lint:allow pragmas do not
// fail the run but are summarized on stderr so every waiver stays
// visible in CI logs. -json writes the full report (active and waived
// findings plus counts) to stdout as one JSON object for CI artifacts.
// -max-wall bounds the lint run's own wall clock: an otherwise-clean
// run that overshoots exits 3, so a slow analyzer fails CI instead of
// silently eating the pipeline's latency budget. -summaries dumps the
// per-function interprocedural summaries (effects, lock sets, blocking,
// context flow — internal/lint/summary.go) as JSON and exits; CI uploads
// it as an artifact next to the findings report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"evvo/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is one diagnostic in the -json report.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Waived   bool   `json:"waived"`
	Reason   string `json:"reason,omitempty"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Active   int           `json:"active"`
	Waived   int           `json:"waived"`
	Packages int           `json:"packages"`
	WallMS   int64         `json:"wall_ms"`
	Findings []jsonFinding `json:"findings"`
}

func analyzerNames(as []*lint.Analyzer) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("evlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print analyzer names and one-line docs, then exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "write the full report to stdout as JSON")
	summaries := fs.Bool("summaries", false, "dump the per-function interprocedural summaries as JSON and exit")
	maxWall := fs.Duration("max-wall", 0, "fail (exit 3) if the lint run itself takes longer than this")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.ShortDoc())
		}
		return 0
	}
	if *only != "" {
		// Select into a FRESH slice: reslicing analyzers[:0] and appending
		// would overwrite the backing array the full list still points at,
		// corrupting the valid-names listing in the error below.
		valid := analyzers
		selected := make([]*lint.Analyzer, 0, len(valid))
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "evlint: unknown analyzer %q; valid names: %s\n",
					name, analyzerNames(valid))
				return 2
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	start := time.Now()
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "evlint:", err)
		return 2
	}
	if *summaries {
		// The summary dump is the CI artifact that makes each commit's
		// certification state (purity, lock sets, blocking, ctx flow)
		// inspectable without re-running the analysis. Always JSON.
		prog := lint.BuildProgram(pkgs)
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(prog.Summaries()); err != nil {
			fmt.Fprintln(stderr, "evlint:", err)
			return 2
		}
		return 0
	}
	res, err := lint.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(stderr, "evlint:", err)
		return 2
	}
	wall := time.Since(start)

	if *asJSON {
		rep := jsonReport{
			Active:   len(res.Active),
			Waived:   len(res.Allowed),
			Packages: len(pkgs),
			WallMS:   wall.Milliseconds(),
			Findings: make([]jsonFinding, 0, len(res.Active)+len(res.Allowed)),
		}
		for _, ds := range [][]lint.Diagnostic{res.Active, res.Allowed} {
			for _, d := range ds {
				p := res.Fset.Position(d.Pos)
				rep.Findings = append(rep.Findings, jsonFinding{
					File: p.Filename, Line: p.Line, Col: p.Column,
					Analyzer: d.Analyzer, Message: d.Message,
					Waived: d.Allowed, Reason: d.Reason,
				})
			}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "evlint:", err)
			return 2
		}
	} else {
		for _, d := range res.Active {
			fmt.Fprintln(stdout, lint.FormatDiagnostic(res.Fset, d))
		}
	}
	if len(res.Allowed) > 0 {
		fmt.Fprintf(stderr, "evlint: %d finding(s) suppressed by //lint:allow:\n", len(res.Allowed))
		for _, d := range res.Allowed {
			fmt.Fprintf(stderr, "  %s: %s: %s — allowed: %s\n",
				res.Fset.Position(d.Pos), d.Analyzer, d.Message, d.Reason)
		}
	}
	fmt.Fprintf(stderr, "evlint: %d active finding(s), %d waived, %d package(s) in %dms\n",
		len(res.Active), len(res.Allowed), len(pkgs), wall.Milliseconds())
	if len(res.Active) > 0 {
		return 1
	}
	if *maxWall > 0 && wall > *maxWall {
		fmt.Fprintf(stderr, "evlint: lint run took %v, over the -max-wall budget of %v\n", wall, *maxWall)
		return 3
	}
	return 0
}
