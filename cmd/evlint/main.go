// Command evlint runs the repo's custom static-analysis suite
// (internal/lint) over the given packages — a multichecker in the mold
// of golang.org/x/tools/go/analysis/multichecker, built on the standard
// library only so it works in this module's offline build.
//
// Usage:
//
//	evlint [-list] [-run name[,name...]] [packages...]
//
// With no packages, ./... is linted. Exit status is 1 when any active
// finding remains; findings suppressed with //lint:allow pragmas do not
// fail the run but are summarized on stderr so every waiver stays
// visible in CI logs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"evvo/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("evlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print analyzer names and one-line docs, then exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.ShortDoc())
		}
		return 0
	}
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "evlint: unknown analyzer %q (see evlint -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "evlint:", err)
		return 2
	}
	res, err := lint.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(stderr, "evlint:", err)
		return 2
	}

	for _, d := range res.Active {
		fmt.Fprintln(stdout, lint.FormatDiagnostic(res.Fset, d))
	}
	if len(res.Allowed) > 0 {
		fmt.Fprintf(stderr, "evlint: %d finding(s) suppressed by //lint:allow:\n", len(res.Allowed))
		for _, d := range res.Allowed {
			reason := d.Reason
			if reason == "" {
				reason = "(no reason given)"
			}
			fmt.Fprintf(stderr, "  %s: %s: %s — allowed: %s\n",
				res.Fset.Position(d.Pos), d.Analyzer, d.Message, reason)
		}
	}
	if len(res.Active) > 0 {
		fmt.Fprintf(stderr, "evlint: %d finding(s) in %d package(s)\n", len(res.Active), len(pkgs))
		return 1
	}
	return 0
}
