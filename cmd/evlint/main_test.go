package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestList: -list prints every analyzer with a one-line doc, including
// the four flow-aware determinism/concurrency analyzers.
func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("evlint -list = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{
		"ctxcheck", "unitcheck", "floateq", "atomiccounter",
		"detcheck", "lockheld", "goleak", "errflow",
		"puritycert", "lockorder", "ctxprop", "hotalloc",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("evlint -list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestUnknownAnalyzer: a bad -run name is a usage error that lists the
// valid names, so the fix is visible from the failure itself.
func TestUnknownAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-run", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("evlint -run nosuch = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer message", errb.String())
	}
	for _, name := range []string{"ctxcheck", "detcheck", "lockheld", "goleak", "errflow"} {
		if !strings.Contains(errb.String(), name) {
			t.Errorf("stderr missing valid analyzer name %q:\n%s", name, errb.String())
		}
	}
}

// TestUnknownAnalyzerInList: a bad name in the MIDDLE of a comma list is
// the same usage error, and the valid-names listing must still show the
// full suite — this regressed once when the selection loop appended into
// the valid slice's own backing array.
func TestUnknownAnalyzerInList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-run", "ctxcheck,detcheck,nosuch,lockorder"}, &out, &errb); code != 2 {
		t.Fatalf("evlint -run ctxcheck,detcheck,nosuch,lockorder = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown analyzer "nosuch"`) {
		t.Errorf("stderr = %q, want unknown-analyzer message naming nosuch", errb.String())
	}
	for _, name := range []string{
		"ctxcheck", "unitcheck", "floateq", "atomiccounter",
		"detcheck", "lockheld", "goleak", "errflow",
		"puritycert", "lockorder", "ctxprop", "hotalloc",
	} {
		if !strings.Contains(errb.String(), name) {
			t.Errorf("valid-names listing corrupted, missing %q:\n%s", name, errb.String())
		}
	}
}

// TestRunCommaList: a comma-separated -run selection runs exactly the
// named analyzers and succeeds on a clean package.
func TestRunCommaList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-run", "ctxcheck, floateq ,puritycert", "."}, &out, &errb); code != 0 {
		t.Fatalf("evlint -run comma list = %d\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "0 active finding(s)") {
		t.Errorf("stderr missing summary line:\n%s", errb.String())
	}
}

// TestSummariesDump: -summaries writes the per-function interprocedural
// summary table as JSON — the CI artifact pinning each commit's
// certification state.
func TestSummariesDump(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-summaries", "."}, &out, &errb); code != 0 {
		t.Fatalf("evlint -summaries = %d\nstderr: %s", code, errb.String())
	}
	var sums []struct {
		Func      string   `json:"func"`
		Package   string   `json:"package"`
		Effects   []string `json:"effects"`
		Blocks    bool     `json:"blocks"`
		CtxParam  bool     `json:"ctxParam"`
		Certified bool     `json:"certified"`
	}
	if err := json.Unmarshal([]byte(out.String()), &sums); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, out.String())
	}
	if len(sums) == 0 {
		t.Fatal("summary dump is empty")
	}
	found := false
	for _, s := range sums {
		if s.Func == "evlint.run" && s.Package == "evvo/cmd/evlint" {
			found = true
		}
	}
	if !found {
		t.Errorf("summary dump missing evlint.run over evvo/cmd/evlint:\n%s", out.String())
	}
}

// TestSelfClean: evlint linting its own package must exit 0 — the suite
// eats its own dog food — and always print the count summary line.
func TestSelfClean(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"."}, &out, &errb); code != 0 {
		t.Fatalf("evlint over cmd/evlint = %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "0 active finding(s)") {
		t.Errorf("stderr missing summary line:\n%s", errb.String())
	}
}

// TestJSONReport: -json writes one machine-readable document to stdout
// with counts and per-finding positions; the summary stays on stderr so
// the JSON is parseable as-is.
func TestJSONReport(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-json", "."}, &out, &errb); code != 0 {
		t.Fatalf("evlint -json = %d\nstderr: %s", code, errb.String())
	}
	var rep struct {
		Active   int `json:"active"`
		Waived   int `json:"waived"`
		Packages int `json:"packages"`
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Waived   bool   `json:"waived"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Active != 0 || rep.Packages != 1 {
		t.Errorf("report = active %d, packages %d; want 0 active over 1 package", rep.Active, rep.Packages)
	}
	if len(rep.Findings) != rep.Active+rep.Waived {
		t.Errorf("findings list has %d entries, counts say %d", len(rep.Findings), rep.Active+rep.Waived)
	}
}

// TestMaxWallBreached: an otherwise-clean run that overshoots the
// -max-wall budget exits 3 and says so. 1ns cannot be met, so this
// pins the breach path without a slow analyzer.
func TestMaxWallBreached(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-max-wall", "1ns", "."}, &out, &errb); code != 3 {
		t.Fatalf("evlint -max-wall 1ns = %d, want 3\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "max-wall") {
		t.Errorf("stderr missing max-wall breach message:\n%s", errb.String())
	}
}
