package main

import (
	"strings"
	"testing"
)

// TestList: -list prints every analyzer with a one-line doc.
func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("evlint -list = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"ctxcheck", "unitcheck", "floateq", "atomiccounter"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("evlint -list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestUnknownAnalyzer: a bad -run name is a usage error, not a crash.
func TestUnknownAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-run", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("evlint -run nosuch = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer message", errb.String())
	}
}

// TestSelfClean: evlint linting its own package must exit 0 — the suite
// eats its own dog food.
func TestSelfClean(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"."}, &out, &errb); code != 0 {
		t.Fatalf("evlint over cmd/evlint = %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}
