package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// smokeConfig is a small but representative fleet: the table build costs
// ~11 segment solves on the coarse grid, so 64 spread-out requests clear
// the ≥5× reuse gate with margin while staying sub-second.
func smokeConfig() loadConfig {
	return loadConfig{
		Vehicles: 4, Requests: 64, Batch: 16, WindowSec: 300,
		RateVehPerHour: 153, Seed: 1,
		DsM: 100, DvMS: 1, DtSec: 2, SegmentTables: true,
	}
}

// TestFleetLoadReuse is the end-to-end fleet acceptance gate: the load run
// must complete cleanly and show ≥5× fewer DP solves than per-request
// solving, with latency quantiles populated.
func TestFleetLoadReuse(t *testing.T) {
	rep, err := run(context.Background(), smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d of %d requests failed", rep.Failed, rep.Requests)
	}
	if rep.Mode != "batch" {
		t.Fatalf("mode = %q", rep.Mode)
	}
	if rep.ReuseFactor < 5 {
		t.Fatalf("reuse factor %.2f < 5 (%d full + %d segment solves for %d requests)",
			rep.ReuseFactor, rep.Server.DPFullSolves, rep.Server.DPSegmentSolves, rep.Requests)
	}
	// One latency sample per request, not per batch call: 64 requests in
	// 4 batches must observe 64 latencies (regression — this used to be 4).
	if rep.LatencyMs.Count != int64(rep.Requests) {
		t.Fatalf("latency count = %d, want one sample per request (%d)", rep.LatencyMs.Count, rep.Requests)
	}
	if rep.LatencyMs.P50 <= 0 || rep.LatencyMs.P99 < rep.LatencyMs.P50 {
		t.Fatalf("latency quantiles not populated: %+v", rep.LatencyMs)
	}
	if rep.Server.StitchedServes == 0 {
		t.Fatal("no stitched serves — segment tables did not engage")
	}
}

// TestSingleMode covers the non-batch path (-batch 0).
func TestSingleMode(t *testing.T) {
	cfg := smokeConfig()
	cfg.Batch = 0
	cfg.Requests = 8
	rep, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "single" || rep.Failed != 0 {
		t.Fatalf("mode %q, failed %d", rep.Mode, rep.Failed)
	}
	if rep.LatencyMs.Count != 8 {
		t.Fatalf("latency count = %d, want one sample per request", rep.LatencyMs.Count)
	}
}

// TestClusterMode boots the 3-node in-process cluster and checks the
// multi-node report: every request answered, every member reported with
// its cluster counters, and the segment-table sharding visible — exactly
// one member builds the route's tables while the others serve via replica
// push or forwarding.
func TestClusterMode(t *testing.T) {
	cfg := smokeConfig()
	cfg.Nodes = 3
	cfg.Batch = 0
	cfg.Requests = 24
	rep, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d of %d requests failed", rep.Failed, rep.Requests)
	}
	if len(rep.Nodes) != 3 {
		t.Fatalf("report covers %d nodes, want 3", len(rep.Nodes))
	}
	builders, served := 0, 0
	for _, n := range rep.Nodes {
		if n.NodeID == "" {
			t.Fatal("node report missing NodeID")
		}
		if n.Requests == 0 || n.LatencyMs.Count != int64(n.Requests) {
			t.Fatalf("node %s: %d requests but %d latency samples (round-robin should load every member)",
				n.NodeID, n.Requests, n.LatencyMs.Count)
		}
		if n.Server.Cluster == nil {
			t.Fatalf("node %s report has no cluster counters", n.NodeID)
		}
		if !n.Server.Cluster.Ready {
			t.Fatalf("node %s served load while not ready", n.NodeID)
		}
		if n.Server.DPSegmentSolves > 0 {
			builders++
		}
		served += int(n.Server.StitchedServes)
	}
	if builders != 1 {
		t.Fatalf("%d members built segment tables, want exactly 1 owner (sharding broken)", builders)
	}
	if served < rep.Requests-int(rep.Server.CacheHits) {
		t.Fatalf("stitched serves %d < non-cached requests", served)
	}
	// The aggregate view must equal the sum of the members.
	if rep.Server.DPSegmentSolves == 0 || rep.ReuseFactor < 2 {
		t.Fatalf("cluster reuse factor %.2f (solves %d) — tables not shared across members",
			rep.ReuseFactor, rep.Server.DPSegmentSolves)
	}
}

// TestClusterModeRejectsExternalAddr: -nodes only applies to the
// in-process server.
func TestClusterModeRejectsExternalAddr(t *testing.T) {
	cfg := smokeConfig()
	cfg.Nodes = 3
	cfg.Addr = "http://127.0.0.1:1"
	if _, err := run(context.Background(), cfg); err == nil {
		t.Fatal("-nodes with -addr accepted")
	}
}

// TestConfigValidation rejects nonsense before any load is generated.
func TestConfigValidation(t *testing.T) {
	for _, cfg := range []loadConfig{
		{Vehicles: 0, Requests: 1},
		{Vehicles: 1, Requests: 0},
		{Vehicles: 1, Requests: 1, Batch: -1},
		{Vehicles: 1, Requests: 1, WindowSec: -1},
	} {
		if _, err := run(context.Background(), cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

// TestReportRoundTrips confirms the JSON report is a valid, self-describing
// BENCH_fleet.json.
func TestReportRoundTrips(t *testing.T) {
	cfg := smokeConfig()
	cfg.Requests, cfg.Batch = 8, 4
	rep, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Requests != rep.Requests || back.Config.Seed != cfg.Seed {
		t.Fatalf("report did not round-trip: %+v", back)
	}
}
