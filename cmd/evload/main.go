// Command evload drives a simulated EV fleet against the vehicular-cloud
// service and reports serving behaviour: request/failure counts, shed and
// degraded totals, client-side latency quantiles, and the DP-solve reuse
// achieved by segment tables (DESIGN.md §11). Results go to stdout and,
// with -out, to a BENCH_fleet.json trajectory file.
//
// Usage:
//
//	evload [-addr http://host:port] [-vehicles 12] [-requests 96]
//	       [-batch 32] [-window 300] [-rate 153] [-seed 1]
//	       [-ds 100] [-dv 1] [-dt 2] [-segment-tables=true]
//	       [-out BENCH_fleet.json]
//
// Without -addr an in-process server is started, so the command doubles as
// a self-contained fleet-serving smoke benchmark (`make bench-fleet`); the
// grid flags configure only that in-process server.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"evvo/internal/cloud"
	"evvo/internal/dp"
	"evvo/internal/metrics"
	"evvo/internal/par"
	"evvo/internal/units"
)

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.Addr, "addr", "", "service base URL; empty starts an in-process server")
	flag.IntVar(&cfg.Vehicles, "vehicles", 12, "concurrent vehicles (client-side concurrency)")
	flag.IntVar(&cfg.Requests, "requests", 96, "total optimize requests to issue")
	flag.IntVar(&cfg.Batch, "batch", 32, "requests per /v1/optimize/batch call (0 = individual /v1/optimize calls)")
	flag.Float64Var(&cfg.WindowSec, "window", 300, "departure spread in seconds; departures are drawn from [0, window)")
	flag.Float64Var(&cfg.RateVehPerHour, "rate", 153, "arrival-rate override sent with each request (0 = server default)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "PRNG seed for departure times")
	flag.Float64Var(&cfg.DsM, "ds", 100, "in-process server: position grid Δs in metres")
	flag.Float64Var(&cfg.DvMS, "dv", 1, "in-process server: velocity grid Δv in m/s")
	flag.Float64Var(&cfg.DtSec, "dt", 2, "in-process server: time grid Δt in seconds")
	flag.BoolVar(&cfg.SegmentTables, "segment-tables", true, "in-process server: serve from shared segment tables")
	flag.StringVar(&cfg.Out, "out", "", "write the JSON report to this file (e.g. BENCH_fleet.json)")
	flag.Parse()

	rep, err := run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evload:", err)
		os.Exit(1)
	}
	fmt.Printf("evload: %d requests (%d failed) via %s; latency p50 %.1f ms p95 %.1f ms p99 %.1f ms; %d full + %d segment solves (reuse %.1f×); shed %d degraded %d\n",
		rep.Requests, rep.Failed, rep.Mode, rep.LatencyMs.P50, rep.LatencyMs.P95, rep.LatencyMs.P99,
		rep.Server.DPFullSolves, rep.Server.DPSegmentSolves, rep.ReuseFactor, rep.Server.Shed, rep.Server.Degraded)
	if cfg.Out != "" {
		body, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "evload:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(cfg.Out, append(body, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "evload:", err)
			os.Exit(1)
		}
	}
}

// loadConfig parameterizes one load run; it is also echoed into the report
// so a BENCH_fleet.json is self-describing.
type loadConfig struct {
	Addr           string  `json:"addr,omitempty"`
	Vehicles       int     `json:"vehicles"`
	Requests       int     `json:"requests"`
	Batch          int     `json:"batch"`
	WindowSec      float64 `json:"windowSec"`
	RateVehPerHour float64 `json:"rateVehPerHour"`
	Seed           int64   `json:"seed"`
	DsM            float64 `json:"dsM"`
	DvMS           float64 `json:"dvMS"`
	DtSec          float64 `json:"dtSec"`
	SegmentTables  bool    `json:"segmentTables"`
	Out            string  `json:"-"`
}

// quantiles are client-observed latency percentiles in milliseconds, one
// sample per request in both modes. A batch item's latency is its call's
// round-trip — every vehicle in the batch waits for the whole call — so
// batch quantiles are weighted by requests, not by calls; Count always
// equals the number of requests issued.
type quantiles struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// report is the BENCH_fleet.json payload.
type report struct {
	Config    loadConfig  `json:"config"`
	Mode      string      `json:"mode"` // "batch" or "single"
	Requests  int         `json:"requests"`
	Failed    int         `json:"failed"`
	LatencyMs quantiles   `json:"latencyMs"`
	Server    cloud.Stats `json:"server"`
	// ReuseFactor is requests per DP solve (full + segment): the fleet
	// acceptance gate asks for ≥5 with segment tables on.
	ReuseFactor float64 `json:"reuseFactor"`
}

func run(ctx context.Context, cfg loadConfig) (*report, error) {
	if cfg.Requests <= 0 || cfg.Vehicles <= 0 {
		return nil, fmt.Errorf("requests (%d) and vehicles (%d) must be positive", cfg.Requests, cfg.Vehicles)
	}
	if cfg.Batch < 0 || cfg.WindowSec < 0 {
		return nil, fmt.Errorf("batch (%d) and window (%.0f) must be non-negative", cfg.Batch, cfg.WindowSec)
	}
	baseURL := cfg.Addr
	if baseURL == "" {
		srv, err := cloud.NewServer(cloud.ServerConfig{
			DPTemplate:    dp.Config{DsM: cfg.DsM, DvMS: cfg.DvMS, DtSec: cfg.DtSec, MaxTripSec: 600},
			SegmentTables: cfg.SegmentTables,
			MaxInFlight:   2 * cfg.Vehicles,
		})
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		baseURL = ts.URL
	}
	client, err := cloud.NewClient(baseURL)
	if err != nil {
		return nil, err
	}

	reqs := makeRequests(cfg)
	lat := metrics.NewLatencyHistogram()
	rep := &report{Config: cfg, Requests: len(reqs), Mode: "single"}
	var mu sync.Mutex // guards rep.Failed across the worker pool
	if cfg.Batch > 0 {
		rep.Mode = "batch"
		var calls []cloud.BatchRequest
		for len(reqs) > 0 {
			n := min(cfg.Batch, len(reqs))
			calls = append(calls, cloud.BatchRequest{Requests: reqs[:n]})
			reqs = reqs[n:]
		}
		err = par.ForEach(cfg.Vehicles, len(calls), func(i int) error {
			start := time.Now()
			out, err := client.OptimizeBatch(ctx, calls[i])
			// Observe once per item, not once per call: a 96-request run in
			// three batches is 96 vehicle-visible latencies, not 3, and
			// per-call observation silently under-weighted batch quantiles.
			elapsedMs := units.SecToMs(time.Since(start).Seconds())
			for range calls[i].Requests {
				lat.Observe(elapsedMs)
			}
			if err != nil {
				mu.Lock()
				rep.Failed += len(calls[i].Requests)
				mu.Unlock()
				return nil // keep loading; failures are the measurement
			}
			failed := 0
			for _, r := range out.Results {
				if r.Error != "" {
					failed++
				}
			}
			mu.Lock()
			rep.Failed += failed
			mu.Unlock()
			return nil
		})
	} else {
		err = par.ForEach(cfg.Vehicles, len(reqs), func(i int) error {
			start := time.Now()
			_, rerr := client.Optimize(ctx, reqs[i])
			lat.Observe(units.SecToMs(time.Since(start).Seconds()))
			if rerr != nil {
				mu.Lock()
				rep.Failed++
				mu.Unlock()
			}
			return nil
		})
	}
	if err != nil {
		return nil, err
	}

	rep.LatencyMs = quantiles{
		Count: lat.Count(),
		P50:   lat.Quantile(0.50),
		P95:   lat.Quantile(0.95),
		P99:   lat.Quantile(0.99),
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		return nil, err
	}
	rep.Server = stats
	solves := stats.DPFullSolves + stats.DPSegmentSolves
	if solves > 0 {
		rep.ReuseFactor = float64(rep.Requests) / float64(solves)
	}
	return rep, nil
}

// makeRequests draws the fleet's departures deterministically from the
// seed: uniform over [0, window), which spreads them across departure
// buckets the way commuters spread across a peak — distinct enough to
// defeat the response cache, shared enough that segment reuse pays.
func makeRequests(cfg loadConfig) []cloud.Request {
	rng := rand.New(rand.NewSource(cfg.Seed))
	reqs := make([]cloud.Request, cfg.Requests)
	for i := range reqs {
		depart := 0.0
		if cfg.WindowSec > 0 {
			depart = rng.Float64() * cfg.WindowSec
		}
		reqs[i] = cloud.Request{
			Route:                 "us25",
			DepartTime:            depart,
			ArrivalRateVehPerHour: cfg.RateVehPerHour,
		}
	}
	return reqs
}
