// Command evload drives a simulated EV fleet against the vehicular-cloud
// service and reports serving behaviour: request/failure counts, shed and
// degraded totals, client-side latency quantiles, and the DP-solve reuse
// achieved by segment tables (DESIGN.md §11). Results go to stdout and,
// with -out, to a BENCH_fleet.json trajectory file.
//
// Usage:
//
//	evload [-addr http://host:port] [-vehicles 12] [-requests 96]
//	       [-batch 32] [-window 300] [-rate 153] [-seed 1]
//	       [-ds 100] [-dv 1] [-dt 2] [-segment-tables=true]
//	       [-nodes 1] [-out BENCH_fleet.json]
//
// Without -addr an in-process server is started, so the command doubles as
// a self-contained fleet-serving smoke benchmark (`make bench-fleet`); the
// grid flags configure only that in-process server. With -nodes N > 1 the
// in-process server becomes an N-member cloudd cluster (DESIGN.md §13) and
// the fleet is spread round-robin across the members; the report then
// carries a per-node section with each member's latency quantiles and
// cluster counters (forwards, fetches, takeovers, breaker opens).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"evvo/internal/cloud"
	"evvo/internal/dp"
	"evvo/internal/metrics"
	"evvo/internal/par"
	"evvo/internal/units"
)

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.Addr, "addr", "", "service base URL; empty starts an in-process server")
	flag.IntVar(&cfg.Vehicles, "vehicles", 12, "concurrent vehicles (client-side concurrency)")
	flag.IntVar(&cfg.Requests, "requests", 96, "total optimize requests to issue")
	flag.IntVar(&cfg.Batch, "batch", 32, "requests per /v1/optimize/batch call (0 = individual /v1/optimize calls)")
	flag.Float64Var(&cfg.WindowSec, "window", 300, "departure spread in seconds; departures are drawn from [0, window)")
	flag.Float64Var(&cfg.RateVehPerHour, "rate", 153, "arrival-rate override sent with each request (0 = server default)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "PRNG seed for departure times")
	flag.Float64Var(&cfg.DsM, "ds", 100, "in-process server: position grid Δs in metres")
	flag.Float64Var(&cfg.DvMS, "dv", 1, "in-process server: velocity grid Δv in m/s")
	flag.Float64Var(&cfg.DtSec, "dt", 2, "in-process server: time grid Δt in seconds")
	flag.BoolVar(&cfg.SegmentTables, "segment-tables", true, "in-process server: serve from shared segment tables")
	flag.IntVar(&cfg.Nodes, "nodes", 1, "in-process cluster size: >1 starts N clustered servers (DESIGN.md §13) and spreads the fleet across them")
	flag.StringVar(&cfg.Out, "out", "", "write the JSON report to this file (e.g. BENCH_fleet.json)")
	flag.Parse()

	rep, err := run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evload:", err)
		os.Exit(1)
	}
	fmt.Printf("evload: %d requests (%d failed) via %s; latency p50 %.1f ms p95 %.1f ms p99 %.1f ms; %d full + %d segment solves (reuse %.1f×); shed %d degraded %d\n",
		rep.Requests, rep.Failed, rep.Mode, rep.LatencyMs.P50, rep.LatencyMs.P95, rep.LatencyMs.P99,
		rep.Server.DPFullSolves, rep.Server.DPSegmentSolves, rep.ReuseFactor, rep.Server.Shed, rep.Server.Degraded)
	if cfg.Out != "" {
		body, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "evload:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(cfg.Out, append(body, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "evload:", err)
			os.Exit(1)
		}
	}
}

// loadConfig parameterizes one load run; it is also echoed into the report
// so a BENCH_fleet.json is self-describing.
type loadConfig struct {
	Addr           string  `json:"addr,omitempty"`
	Vehicles       int     `json:"vehicles"`
	Requests       int     `json:"requests"`
	Batch          int     `json:"batch"`
	WindowSec      float64 `json:"windowSec"`
	RateVehPerHour float64 `json:"rateVehPerHour"`
	Seed           int64   `json:"seed"`
	DsM            float64 `json:"dsM"`
	DvMS           float64 `json:"dvMS"`
	DtSec          float64 `json:"dtSec"`
	SegmentTables  bool    `json:"segmentTables"`
	Nodes          int     `json:"nodes,omitempty"`
	Out            string  `json:"-"`
}

// quantiles are client-observed latency percentiles in milliseconds, one
// sample per request in both modes. A batch item's latency is its call's
// round-trip — every vehicle in the batch waits for the whole call — so
// batch quantiles are weighted by requests, not by calls; Count always
// equals the number of requests issued.
type quantiles struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// nodeReport is one cluster member's slice of a multi-node run: the
// client-observed latency of the requests sent to that node plus the
// node's own serving stats (whose Cluster block carries the forward,
// fetch, takeover and breaker counters).
type nodeReport struct {
	NodeID    string      `json:"nodeId"`
	Requests  int         `json:"requests"`
	LatencyMs quantiles   `json:"latencyMs"`
	Server    cloud.Stats `json:"server"`
}

// report is the BENCH_fleet.json payload.
type report struct {
	Config    loadConfig `json:"config"`
	Mode      string     `json:"mode"` // "batch" or "single"
	Requests  int        `json:"requests"`
	Failed    int        `json:"failed"`
	LatencyMs quantiles  `json:"latencyMs"`
	// Server holds the serving-side stats. In multi-node mode the
	// volume counters (requests, shed, degraded, solves, stitches, batch
	// items) are summed across the cluster; per-node breakdowns including
	// the cluster counters are in Nodes.
	Server cloud.Stats `json:"server"`
	// Nodes reports each cluster member separately (multi-node runs only).
	Nodes []nodeReport `json:"nodes,omitempty"`
	// ReuseFactor is requests per DP solve (full + segment): the fleet
	// acceptance gate asks for ≥5 with segment tables on.
	ReuseFactor float64 `json:"reuseFactor"`
}

func run(ctx context.Context, cfg loadConfig) (*report, error) {
	if cfg.Requests <= 0 || cfg.Vehicles <= 0 {
		return nil, fmt.Errorf("requests (%d) and vehicles (%d) must be positive", cfg.Requests, cfg.Vehicles)
	}
	if cfg.Batch < 0 || cfg.WindowSec < 0 {
		return nil, fmt.Errorf("batch (%d) and window (%.0f) must be non-negative", cfg.Batch, cfg.WindowSec)
	}
	if cfg.Nodes > 1 && cfg.Addr != "" {
		return nil, fmt.Errorf("-nodes %d needs the in-process server; it cannot cluster an external -addr", cfg.Nodes)
	}
	var urls []string
	switch {
	case cfg.Addr != "":
		urls = []string{cfg.Addr}
	case cfg.Nodes > 1:
		clusterURLs, cleanup, err := startCluster(cfg)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		urls = clusterURLs
	default:
		srv, err := cloud.NewServer(cloud.ServerConfig{
			DPTemplate:    dp.Config{DsM: cfg.DsM, DvMS: cfg.DvMS, DtSec: cfg.DtSec, MaxTripSec: 600},
			SegmentTables: cfg.SegmentTables,
			MaxInFlight:   2 * cfg.Vehicles,
		})
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		urls = []string{ts.URL}
	}
	clients := make([]*cloud.Client, len(urls))
	for i, u := range urls {
		c, err := cloud.NewClient(u)
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}
	// Work item i goes to node i mod N: a round-robin fleet, so every node
	// sees traffic for every route and the forwarding/fetch paths carry
	// real load instead of idling behind a sticky assignment.
	nodeOf := func(i int) int { return i % len(clients) }

	reqs := makeRequests(cfg)
	lat := metrics.NewLatencyHistogram()
	nodeLat := make([]*metrics.Histogram, len(clients))
	nodeReqs := make([]int64, len(clients))
	for i := range nodeLat {
		nodeLat[i] = metrics.NewLatencyHistogram()
	}
	rep := &report{Config: cfg, Requests: len(reqs), Mode: "single"}
	var mu sync.Mutex // guards rep.Failed across the worker pool
	var err error
	if cfg.Batch > 0 {
		rep.Mode = "batch"
		var calls []cloud.BatchRequest
		for len(reqs) > 0 {
			n := min(cfg.Batch, len(reqs))
			calls = append(calls, cloud.BatchRequest{Requests: reqs[:n]})
			reqs = reqs[n:]
		}
		err = par.ForEach(cfg.Vehicles, len(calls), func(i int) error {
			node := nodeOf(i)
			start := time.Now()
			out, err := clients[node].OptimizeBatch(ctx, calls[i])
			// Observe once per item, not once per call: a 96-request run in
			// three batches is 96 vehicle-visible latencies, not 3, and
			// per-call observation silently under-weighted batch quantiles.
			elapsedMs := units.SecToMs(time.Since(start).Seconds())
			for range calls[i].Requests {
				lat.Observe(elapsedMs)
				nodeLat[node].Observe(elapsedMs)
			}
			atomic.AddInt64(&nodeReqs[node], int64(len(calls[i].Requests)))
			if err != nil {
				mu.Lock()
				rep.Failed += len(calls[i].Requests)
				mu.Unlock()
				return nil // keep loading; failures are the measurement
			}
			failed := 0
			for _, r := range out.Results {
				if r.Error != "" {
					failed++
				}
			}
			mu.Lock()
			rep.Failed += failed
			mu.Unlock()
			return nil
		})
	} else {
		err = par.ForEach(cfg.Vehicles, len(reqs), func(i int) error {
			node := nodeOf(i)
			start := time.Now()
			_, rerr := clients[node].Optimize(ctx, reqs[i])
			elapsedMs := units.SecToMs(time.Since(start).Seconds())
			lat.Observe(elapsedMs)
			nodeLat[node].Observe(elapsedMs)
			atomic.AddInt64(&nodeReqs[node], 1)
			if rerr != nil {
				mu.Lock()
				rep.Failed++
				mu.Unlock()
			}
			return nil
		})
	}
	if err != nil {
		return nil, err
	}

	rep.LatencyMs = quantiles{
		Count: lat.Count(),
		P50:   lat.Quantile(0.50),
		P95:   lat.Quantile(0.95),
		P99:   lat.Quantile(0.99),
	}
	for i, c := range clients {
		stats, err := c.Stats(ctx)
		if err != nil {
			return nil, err
		}
		if len(clients) == 1 {
			rep.Server = stats
			break
		}
		nodeID := fmt.Sprintf("node-%d", i+1)
		if stats.Cluster != nil {
			nodeID = stats.Cluster.NodeID
		}
		h := nodeLat[i]
		rep.Nodes = append(rep.Nodes, nodeReport{
			NodeID:   nodeID,
			Requests: int(atomic.LoadInt64(&nodeReqs[i])),
			LatencyMs: quantiles{
				Count: h.Count(),
				P50:   h.Quantile(0.50),
				P95:   h.Quantile(0.95),
				P99:   h.Quantile(0.99),
			},
			Server: stats,
		})
		// The cluster-wide volume counters are sums; the per-node Cluster
		// block stays per-node (summing breaker opens across nodes would
		// hide which member tripped).
		rep.Server.Requests += stats.Requests
		rep.Server.CacheHits += stats.CacheHits
		rep.Server.Errors += stats.Errors
		rep.Server.Shed += stats.Shed
		rep.Server.Degraded += stats.Degraded
		rep.Server.PanicsRecovered += stats.PanicsRecovered
		rep.Server.RetryAfterIssued += stats.RetryAfterIssued
		rep.Server.DPFullSolves += stats.DPFullSolves
		rep.Server.DPSegmentSolves += stats.DPSegmentSolves
		rep.Server.StitchedServes += stats.StitchedServes
		rep.Server.BatchItems += stats.BatchItems
	}
	solves := rep.Server.DPFullSolves + rep.Server.DPSegmentSolves
	if solves > 0 {
		rep.ReuseFactor = float64(rep.Requests) / float64(solves)
	}
	return rep, nil
}

// lazyHandler lets an httptest.Server exist (and hand out its URL) before
// the cloud.Server behind it does: cluster members need every peer's base
// URL at construction time, a chicken-and-egg the indirection breaks. Until
// the handler is installed it answers 503, which the heartbeat sweep and
// client retries already tolerate.
type lazyHandler struct{ v atomic.Value }

func (l *lazyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := l.v.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "starting", http.StatusServiceUnavailable)
}

// startCluster boots cfg.Nodes clustered in-process servers (DESIGN.md §13)
// with full-mesh peer maps and fast heartbeats, waits until every member
// reports ready, and returns their base URLs plus a cleanup that tears the
// whole cluster down.
func startCluster(cfg loadConfig) (urls []string, cleanup func(), err error) {
	n := cfg.Nodes
	lazies := make([]*lazyHandler, n)
	backends := make([]*httptest.Server, n)
	for i := range lazies {
		lazies[i] = &lazyHandler{}
		backends[i] = httptest.NewServer(lazies[i])
	}
	var servers []*cloud.Server
	cleanup = func() {
		for _, s := range servers {
			s.Close()
		}
		for _, ts := range backends {
			ts.Close()
		}
	}
	nodeID := func(i int) string { return fmt.Sprintf("node-%d", i+1) }
	for i := 0; i < n; i++ {
		peers := make(map[string]string, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				peers[nodeID(j)] = backends[j].URL
			}
		}
		srv, serr := cloud.NewServer(cloud.ServerConfig{
			DPTemplate:    dp.Config{DsM: cfg.DsM, DvMS: cfg.DvMS, DtSec: cfg.DtSec, MaxTripSec: 600},
			SegmentTables: cfg.SegmentTables,
			MaxInFlight:   2 * cfg.Vehicles,
			Cluster: &cloud.ClusterConfig{
				NodeID: nodeID(i),
				Peers:  peers,
				// In-process peers answer in microseconds; the production
				// 500 ms heartbeat would dominate a benchmark run's wall time.
				// Grading is kept loose on purpose: a loaded run (or the race
				// detector) can stall a 50 ms probe past its budget, and a
				// false "dead" would trigger a spurious takeover build that
				// corrupts the reuse measurement.
				HeartbeatSec:    0.05,
				SuspectAfterSec: 1,
				DeadAfterSec:    30,
				WarmRoutes:      []string{"us25"},
			},
		})
		if serr != nil {
			cleanup()
			return nil, nil, serr
		}
		servers = append(servers, srv)
		lazies[i].v.Store(srv.Handler())
	}
	for i, ts := range backends {
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, rerr := http.Get(ts.URL + "/v1/ready")
			if rerr == nil {
				_ = resp.Body.Close() // readiness poll: only the status matters
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				cleanup()
				return nil, nil, fmt.Errorf("cluster node %s never became ready", nodeID(i))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	urls = make([]string, n)
	for i, ts := range backends {
		urls[i] = ts.URL
	}
	return urls, cleanup, nil
}

// makeRequests draws the fleet's departures deterministically from the
// seed: uniform over [0, window), which spreads them across departure
// buckets the way commuters spread across a peak — distinct enough to
// defeat the response cache, shared enough that segment reuse pays.
func makeRequests(cfg loadConfig) []cloud.Request {
	rng := rand.New(rand.NewSource(cfg.Seed))
	reqs := make([]cloud.Request, cfg.Requests)
	for i := range reqs {
		depart := 0.0
		if cfg.WindowSec > 0 {
			depart = rng.Float64() * cfg.WindowSec
		}
		reqs[i] = cloud.Request{
			Route:                 "us25",
			DepartTime:            depart,
			ArrivalRateVehPerHour: cfg.RateVehPerHour,
		}
	}
	return reqs
}
