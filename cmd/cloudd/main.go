// Command cloudd runs the vehicular-cloud optimization service: EVs POST
// their route and departure time to /v1/optimize and receive the
// queue-aware optimal velocity profile.
//
// Usage:
//
//	cloudd [-addr host:port] [-rate veh/h]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"evvo/internal/cloud"
	"evvo/internal/queue"
	"evvo/internal/road"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:8714", "listen address")
		rate = flag.Float64("rate", 153, "default predicted arrival rate at signals, vehicles/hour")
	)
	flag.Parse()
	if err := run(*addr, *rate); err != nil {
		fmt.Fprintln(os.Stderr, "cloudd:", err)
		os.Exit(1)
	}
}

// buildServer constructs the cloud service with a constant default
// arrival-rate estimate.
func buildServer(rate float64) (*cloud.Server, error) {
	vin := queue.VehPerHour(rate)
	return cloud.NewServer(cloud.ServerConfig{
		ArrivalRate: func(road.Control, float64) float64 { return vin },
	})
}

func run(addr string, rate float64) error {
	srv, err := buildServer(rate)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("cloudd: serving on http://%s (default rate %.0f veh/h)", addr, rate)
		errCh <- httpSrv.ListenAndServe()
	}()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-sigCh:
		log.Println("cloudd: shutting down")
		return httpSrv.Close()
	}
}
