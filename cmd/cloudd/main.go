// Command cloudd runs the vehicular-cloud optimization service: EVs POST
// their route and departure time to /v1/optimize and receive the
// queue-aware optimal velocity profile.
//
// Usage:
//
//	cloudd [-addr host:port] [-rate veh/h] [-deadline 30s]
//	       [-max-inflight N] [-drain 10s] [-segment-tables=true]
//
// On SIGINT/SIGTERM the server drains gracefully: in-flight optimizations
// get up to -drain to finish and deliver their responses before the
// process exits (a hard Close would abort them mid-body).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"evvo/internal/cloud"
	"evvo/internal/queue"
	"evvo/internal/road"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8714", "listen address")
		rate        = flag.Float64("rate", 153, "default predicted arrival rate at signals, vehicles/hour")
		deadline    = flag.Duration("deadline", 30*time.Second, "per-request compute deadline (0 disables)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently computing requests (0 = 2×GOMAXPROCS, <0 disables admission control)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget for in-flight requests")
		segTables   = flag.Bool("segment-tables", true, "serve from shared per-segment DP tables (DESIGN.md §11) instead of per-request full solves")
		coarseRung  = flag.Int("coarse-ladder", 3, "degradation-ladder coarse-grid rung: velocity-grid factor for the approximate re-solve when the exact DP blows its budget (0 disables, DESIGN.md §12)")
	)
	flag.Parse()
	if err := run(*addr, *rate, *deadline, *maxInflight, *drain, *segTables, *coarseRung); err != nil {
		fmt.Fprintln(os.Stderr, "cloudd:", err)
		os.Exit(1)
	}
}

// buildServer constructs the cloud service with a constant default
// arrival-rate estimate.
func buildServer(rate float64, deadline time.Duration, maxInflight int, segTables bool, coarseRung int) (*cloud.Server, error) {
	vin := queue.VehPerHour(rate)
	deadlineSec := deadline.Seconds()
	if deadline <= 0 {
		deadlineSec = -1 // ServerConfig convention: negative disables
	}
	return cloud.NewServer(cloud.ServerConfig{
		ArrivalRate:        func(road.Control, float64) (float64, error) { return vin, nil },
		DefaultDeadlineSec: deadlineSec,
		MaxInFlight:        maxInflight,
		SegmentTables:      segTables,
		CoarseLadderFactor: coarseRung,
	})
}

func run(addr string, rate float64, deadline time.Duration, maxInflight int, drain time.Duration, segTables bool, coarseRung int) error {
	srv, err := buildServer(rate, deadline, maxInflight, segTables, coarseRung)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	log.Printf("cloudd: serving on http://%s (default rate %.0f veh/h, deadline %v, drain %v)",
		ln.Addr(), rate, deadline, drain)
	return serve(httpSrv, ln, sigCh, drain)
}

// serve runs httpSrv on ln until a signal arrives, then shuts down
// gracefully: the listener closes immediately (no new connections) while
// in-flight requests get up to drain to complete. Only if the drain budget
// expires are the remaining connections cut hard.
func serve(httpSrv *http.Server, ln net.Listener, stop <-chan os.Signal, drain time.Duration) error {
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		log.Printf("cloudd: %v received, draining for up to %v", sig, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			// Drain budget exhausted; cut the stragglers.
			log.Printf("cloudd: drain incomplete (%v), closing", err)
			return httpSrv.Close()
		}
		return nil
	}
}
