// Command cloudd runs the vehicular-cloud optimization service: EVs POST
// their route and departure time to /v1/optimize and receive the
// queue-aware optimal velocity profile.
//
// Usage:
//
//	cloudd [-addr host:port] [-rate veh/h] [-deadline 30s]
//	       [-max-inflight N] [-drain 10s] [-segment-tables=true]
//	       [-node-id n1 -peers "n2=http://host:port,n3=..." ]
//	       [-replicas 2] [-heartbeat-ms 500]
//
// With -node-id and -peers the process joins a cloudd cluster
// (DESIGN.md §13): segment-table ownership is sharded across the members
// by consistent hashing, built tables replicate to ring successors, and
// requests for routes another node owns are forwarded there. Readiness is
// served on /v1/ready, distinct from the /v1/health liveness probe.
//
// On SIGINT/SIGTERM the server drains gracefully: readiness flips to 503
// first (so load balancers stop routing here), then in-flight
// optimizations get up to -drain to finish and deliver their responses
// before the process exits (a hard Close would abort them mid-body).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"evvo/internal/cloud"
	"evvo/internal/queue"
	"evvo/internal/road"
	"evvo/internal/units"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8714", "listen address")
		rate        = flag.Float64("rate", 153, "default predicted arrival rate at signals, vehicles/hour")
		deadline    = flag.Duration("deadline", 30*time.Second, "per-request compute deadline (0 disables)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently computing requests (0 = 2×GOMAXPROCS, <0 disables admission control)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget for in-flight requests")
		segTables   = flag.Bool("segment-tables", true, "serve from shared per-segment DP tables (DESIGN.md §11) instead of per-request full solves")
		coarseRung  = flag.Int("coarse-ladder", 3, "degradation-ladder coarse-grid rung: velocity-grid factor for the approximate re-solve when the exact DP blows its budget (0 disables, DESIGN.md §12)")
		nodeID      = flag.String("node-id", "", "cluster node ID (empty = standalone)")
		peers       = flag.String("peers", "", `cluster peers as "id=http://host:port,id=url,..." (requires -node-id)`)
		replicas    = flag.Int("replicas", 0, "table replica count per route key, owner included (0 = default 2, capped at membership)")
		heartbeatMS = flag.Float64("heartbeat-ms", 0, "cluster heartbeat interval in milliseconds (0 = default 500)")
	)
	flag.Parse()
	p := serverParams{
		rate: *rate, deadline: *deadline, maxInflight: *maxInflight,
		segTables: *segTables, coarseRung: *coarseRung,
		nodeID: *nodeID, replicas: *replicas, heartbeatMS: *heartbeatMS,
	}
	var err error
	if p.peers, err = parsePeers(*peers); err != nil {
		fmt.Fprintln(os.Stderr, "cloudd:", err)
		os.Exit(1)
	}
	if err := run(*addr, *drain, p); err != nil {
		fmt.Fprintln(os.Stderr, "cloudd:", err)
		os.Exit(1)
	}
}

// parsePeers parses the -peers flag: comma-separated id=baseURL pairs.
func parsePeers(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, base, ok := strings.Cut(pair, "=")
		if !ok || id == "" || base == "" {
			return nil, fmt.Errorf(`peer %q: want "id=http://host:port"`, pair)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("duplicate peer ID %q", id)
		}
		out[id] = base
	}
	return out, nil
}

// serverParams collects the buildServer knobs (the flag surface grew past
// a readable positional list when clustering arrived).
type serverParams struct {
	rate        float64
	deadline    time.Duration
	maxInflight int
	segTables   bool
	coarseRung  int
	nodeID      string
	peers       map[string]string
	replicas    int
	heartbeatMS float64
}

// buildServer constructs the cloud service with a constant default
// arrival-rate estimate.
func buildServer(p serverParams) (*cloud.Server, error) {
	vin := queue.VehPerHour(p.rate)
	deadlineSec := p.deadline.Seconds()
	if p.deadline <= 0 {
		deadlineSec = -1 // ServerConfig convention: negative disables
	}
	cfg := cloud.ServerConfig{
		ArrivalRate:        func(road.Control, float64) (float64, error) { return vin, nil },
		DefaultDeadlineSec: deadlineSec,
		MaxInFlight:        p.maxInflight,
		SegmentTables:      p.segTables,
		CoarseLadderFactor: p.coarseRung,
	}
	if p.nodeID != "" {
		cfg.Cluster = &cloud.ClusterConfig{
			NodeID:       p.nodeID,
			Peers:        p.peers,
			Replicas:     p.replicas,
			HeartbeatSec: units.MsToSec(p.heartbeatMS),
		}
	} else if len(p.peers) > 0 {
		return nil, fmt.Errorf("-peers requires -node-id")
	}
	return cloud.NewServer(cfg)
}

func run(addr string, drain time.Duration, p serverParams) error {
	srv, err := buildServer(p)
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	log.Printf("cloudd: serving on http://%s (default rate %.0f veh/h, deadline %v, drain %v)",
		ln.Addr(), p.rate, p.deadline, drain)
	return serve(httpSrv, ln, sigCh, drain, srv.BeginDrain)
}

// serve runs httpSrv on ln until a signal arrives, then shuts down
// gracefully: beginDrain flips /v1/ready to 503 *before* the listener
// closes — readiness must fail while the node can still answer it, or load
// balancers learn about the drain from connection errors — and in-flight
// requests then get up to drain to complete. Only if the drain budget
// expires are the remaining connections cut hard.
func serve(httpSrv *http.Server, ln net.Listener, stop <-chan os.Signal, drain time.Duration, beginDrain func()) error {
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		log.Printf("cloudd: %v received, draining for up to %v", sig, drain)
		if beginDrain != nil {
			beginDrain()
		}
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			// Drain budget exhausted; cut the stragglers.
			log.Printf("cloudd: drain incomplete (%v), closing", err)
			return httpSrv.Close()
		}
		return nil
	}
}
