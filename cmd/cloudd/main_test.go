package main

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"syscall"
	"testing"
	"time"

	"evvo/internal/cloud"
)

func TestBuildServerServes(t *testing.T) {
	srv, err := buildServer(153, 30*time.Second, 0, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, err := cloud.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	routes, err := c.Routes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) == 0 {
		t.Fatal("no routes registered")
	}
}

func TestBuildServerDisabledDeadline(t *testing.T) {
	if _, err := buildServer(153, 0, -1, false, 0); err != nil {
		t.Fatalf("deadline/admission disabled: %v", err)
	}
}

// TestServeGracefulShutdown pins the drain semantics: a signal must let an
// in-flight request finish and deliver its response (the old Close()
// aborted it mid-body), and serve must then return nil.
func TestServeGracefulShutdown(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(inHandler)
		<-release
		w.Write([]byte("done"))
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: mux}
	stop := make(chan os.Signal, 1)
	served := make(chan error, 1)
	go func() { served <- serve(httpSrv, ln, stop, 5*time.Second) }()

	reqErr := make(chan error, 1)
	gotBody := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			reqErr <- err
			return
		}
		defer resp.Body.Close()
		buf := make([]byte, 16)
		n, _ := resp.Body.Read(buf)
		gotBody <- string(buf[:n])
		reqErr <- nil
	}()

	<-inHandler // request is in flight
	stop <- syscall.SIGTERM
	// Give Shutdown a moment to close the listener, then let the handler
	// finish inside the drain budget.
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v, want nil after graceful drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after signal")
	}
	if err := <-reqErr; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if body := <-gotBody; body != "done" {
		t.Fatalf("in-flight response body = %q, want %q", body, "done")
	}
}

// TestServeDrainBudgetExpires: a handler that outlives the drain budget is
// cut off, but serve still returns (no hang).
func TestServeDrainBudgetExpires(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	mux := http.NewServeMux()
	started := make(chan struct{})
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		select {
		case <-block:
		case <-r.Context().Done():
		}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: mux}
	stop := make(chan os.Signal, 1)
	served := make(chan error, 1)
	go func() { served <- serve(httpSrv, ln, stop, 50*time.Millisecond) }()

	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	stop <- syscall.SIGTERM
	select {
	case <-served:
		// Close()'s error (if any) is acceptable; returning is the point.
	case <-time.After(10 * time.Second):
		t.Fatal("serve hung past the drain budget")
	}
}
