package main

import (
	"context"
	"net/http/httptest"
	"testing"

	"evvo/internal/cloud"
)

func TestBuildServerServes(t *testing.T) {
	srv, err := buildServer(153)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, err := cloud.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	routes, err := c.Routes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) == 0 {
		t.Fatal("no routes registered")
	}
}
