package main

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"syscall"
	"testing"
	"time"

	"evvo/internal/cloud"
)

func TestBuildServerServes(t *testing.T) {
	srv, err := buildServer(serverParams{rate: 153, deadline: 30 * time.Second, segTables: true, coarseRung: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, err := cloud.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	routes, err := c.Routes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) == 0 {
		t.Fatal("no routes registered")
	}
}

func TestBuildServerDisabledDeadline(t *testing.T) {
	if _, err := buildServer(serverParams{rate: 153, maxInflight: -1}); err != nil {
		t.Fatalf("deadline/admission disabled: %v", err)
	}
}

func TestBuildServerClusterValidation(t *testing.T) {
	if _, err := buildServer(serverParams{rate: 153, peers: map[string]string{"n2": "http://x"}}); err == nil {
		t.Fatal("-peers without -node-id accepted")
	}
	srv, err := buildServer(serverParams{
		rate: 153, segTables: true,
		nodeID: "n1", peers: map[string]string{"n2": "http://127.0.0.1:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
}

func TestParsePeers(t *testing.T) {
	got, err := parsePeers("n2=http://a:1, n3=http://b:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["n2"] != "http://a:1" || got["n3"] != "http://b:2" {
		t.Fatalf("parsePeers = %v", got)
	}
	if m, err := parsePeers(""); err != nil || m != nil {
		t.Fatalf("empty flag = %v, %v; want nil, nil", m, err)
	}
	for _, bad := range []string{"n2", "=http://a", "n2=", "n2=http://a,n2=http://b"} {
		if _, err := parsePeers(bad); err == nil {
			t.Fatalf("malformed peer list %q accepted", bad)
		}
	}
}

// TestServeGracefulShutdown pins the drain semantics: a signal must let an
// in-flight request finish and deliver its response (the old Close()
// aborted it mid-body), and serve must then return nil.
func TestServeGracefulShutdown(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(inHandler)
		<-release
		w.Write([]byte("done"))
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: mux}
	stop := make(chan os.Signal, 1)
	served := make(chan error, 1)
	go func() { served <- serve(httpSrv, ln, stop, 5*time.Second, nil) }()

	reqErr := make(chan error, 1)
	gotBody := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			reqErr <- err
			return
		}
		defer resp.Body.Close()
		buf := make([]byte, 16)
		n, _ := resp.Body.Read(buf)
		gotBody <- string(buf[:n])
		reqErr <- nil
	}()

	<-inHandler // request is in flight
	stop <- syscall.SIGTERM
	// Give Shutdown a moment to close the listener, then let the handler
	// finish inside the drain budget.
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v, want nil after graceful drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after signal")
	}
	if err := <-reqErr; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if body := <-gotBody; body != "done" {
		t.Fatalf("in-flight response body = %q, want %q", body, "done")
	}
}

// TestServeDrainFlipsReadinessFirst pins the shutdown ordering: serve must
// invoke beginDrain (which flips /v1/ready to 503) strictly before
// httpSrv.Shutdown closes the listener, so the readiness flip is
// observable over the network while the node still accepts connections —
// that is the window in which a load balancer learns to route elsewhere.
func TestServeDrainFlipsReadinessFirst(t *testing.T) {
	srv, err := buildServer(serverParams{rate: 153, segTables: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	base := "http://" + ln.Addr().String()

	statusOf := func(path string) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s during drain window: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	drainChecked := make(chan struct{})
	beginDrain := func() {
		srv.BeginDrain()
		// serve has not called Shutdown yet, so the listener still accepts:
		// readiness must already fail while liveness still passes.
		if got := statusOf("/v1/ready"); got != http.StatusServiceUnavailable {
			t.Errorf("/v1/ready = %d after BeginDrain, want 503", got)
		}
		if got := statusOf("/v1/health"); got != http.StatusOK {
			t.Errorf("/v1/health = %d during drain, want 200 (drain is not death)", got)
		}
		close(drainChecked)
	}

	stop := make(chan os.Signal, 1)
	served := make(chan error, 1)
	go func() { served <- serve(httpSrv, ln, stop, 5*time.Second, beginDrain) }()

	// Wait until the server answers, then signal.
	for i := 0; ; i++ {
		if resp, err := http.Get(base + "/v1/ready"); err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if i > 100 {
			t.Fatal("server never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop <- syscall.SIGTERM
	<-drainChecked
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after signal")
	}
}

// TestServeDrainBudgetExpires: a handler that outlives the drain budget is
// cut off, but serve still returns (no hang).
func TestServeDrainBudgetExpires(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	mux := http.NewServeMux()
	started := make(chan struct{})
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		select {
		case <-block:
		case <-r.Context().Done():
		}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: mux}
	stop := make(chan os.Signal, 1)
	served := make(chan error, 1)
	go func() { served <- serve(httpSrv, ln, stop, 50*time.Millisecond, nil) }()

	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	stop <- syscall.SIGTERM
	select {
	case <-served:
		// Close()'s error (if any) is acceptable; returning is the point.
	case <-time.After(10 * time.Second):
		t.Fatal("serve hung past the drain budget")
	}
}
