package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"evvo/internal/experiments"
)

func TestRunSingleFigures(t *testing.T) {
	for _, fig := range []string{"fig3", "fig4", "fig5", "grade"} {
		t.Run(fig, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, fig, experiments.FidelityFast, 1, ""); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}

func TestRunComparisonFiguresShareOneRun(t *testing.T) {
	var buf bytes.Buffer
	// fig6+fig7+fig8 via "all" exercises the lazy shared comparison.
	if err := run(&buf, "all", experiments.FidelityFast, 1, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8", "Gradient study"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(&bytes.Buffer{}, "fig99", experiments.FidelityFast, 1, ""); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// TestRunDPBench exercises the dp subcommand end to end: the table renders,
// the -out JSON artifact decodes, and it carries the three serving modes
// with sane timings and the parity/ε checks already enforced internally.
func TestRunDPBench(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "BENCH_dp.json")
	var buf bytes.Buffer
	if err := run(&buf, "dp", experiments.FidelityFast, 1, outPath); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "exact-kernels") {
		t.Fatalf("table missing kernel mode:\n%s", buf.String())
	}
	body, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep dpBenchReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Modes) != 3 {
		t.Fatalf("modes = %d, want 3", len(rep.Modes))
	}
	for _, m := range rep.Modes {
		if m.MinMs <= 0 || m.MedianMs < m.MinMs || m.SpeedupVsScalar <= 0 {
			t.Fatalf("mode %q has nonsense timings: %+v", m.Name, m)
		}
		if m.PlannedMAh <= 0 || m.StatesExpanded <= 0 {
			t.Fatalf("mode %q has no solve evidence: %+v", m.Name, m)
		}
	}
	if !rep.Modes[2].Refined {
		t.Fatalf("coarse-refine mode not flagged Refined: %+v", rep.Modes[2])
	}
	if rep.Modes[0].Refined || rep.Modes[1].Refined {
		t.Fatal("exact modes flagged Refined")
	}
}
