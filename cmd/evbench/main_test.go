package main

import (
	"bytes"
	"strings"
	"testing"

	"evvo/internal/experiments"
)

func TestRunSingleFigures(t *testing.T) {
	for _, fig := range []string{"fig3", "fig4", "fig5", "grade"} {
		t.Run(fig, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, fig, experiments.FidelityFast, 1); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}

func TestRunComparisonFiguresShareOneRun(t *testing.T) {
	var buf bytes.Buffer
	// fig6+fig7+fig8 via "all" exercises the lazy shared comparison.
	if err := run(&buf, "all", experiments.FidelityFast, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8", "Gradient study"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(&bytes.Buffer{}, "fig99", experiments.FidelityFast, 1); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
