// The `dp` subcommand: solver micro-benchmark for the Fig-6 queue-aware
// problem across the three serving modes — exact DP with the relaxation
// kernels forced off (the portable scalar path), exact DP with the AVX2
// kernels, and the coarse-to-fine fast path (DESIGN.md §12). It emits a
// text table and, with -out, the BENCH_dp.json artifact `make bench-dp`
// and CI archive.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"evvo/internal/dp"
	"evvo/internal/ev"
	"evvo/internal/experiments"
	"evvo/internal/queue"
	"evvo/internal/road"
	"evvo/internal/units"
)

// dpDocumentedSeedMs is the Fig-6 exact solve time documented before the
// kernel work (README/ROADMAP), kept in the report for cross-machine
// reference. Speedups are computed against the scalar mode measured in the
// same run, on the same machine — the honest denominator.
const dpDocumentedSeedMs = 2.3

// dpCoarseEpsAh is the coarse-to-fine error bound re-checked per run (the
// dp package's property tests pin it; this guards the benchmark artifact).
const dpCoarseEpsAh = 1e-3

// dpBenchMode is one timed solver configuration.
type dpBenchMode struct {
	Name string `json:"name"`
	// MinMs is the minimum solve time over the iterations — the standard
	// noise-resistant statistic on a shared machine; MedianMs shows spread.
	MinMs    float64 `json:"minMs"`
	MedianMs float64 `json:"medianMs"`
	// SpeedupVsScalar = scalar MinMs / this mode's MinMs.
	SpeedupVsScalar float64 `json:"speedupVsScalar"`
	PlannedMAh      float64 `json:"plannedMAh"`
	TripSec         float64 `json:"tripSec"`
	StatesExpanded  int     `json:"statesExpanded"`
	Refined         bool    `json:"refined,omitempty"`
}

// dpBenchReport is the BENCH_dp.json payload.
type dpBenchReport struct {
	Figure           string       `json:"figure"` // the benchmarked problem
	Iterations       int          `json:"iterations"`
	KernelsAvailable bool         `json:"kernelsAvailable"`
	DocumentedSeedMs float64      `json:"documentedSeedMs"`
	Modes            []dpBenchMode `json:"modes"`
}

// dpFig6Config is the Fig-6(b) queue-aware problem on the figure grid,
// matching BenchmarkFig6QueueAwareDP in bench_test.go.
func dpFig6Config() (dp.Config, error) {
	wf, err := dp.QueueAwareWindows(queue.US25Params(),
		dp.ConstantArrivalRate(queue.VehPerHour(153)), 40, 840)
	if err != nil {
		return dp.Config{}, err
	}
	return dp.Config{
		Route: road.US25(), Vehicle: ev.SparkEV(), DepartTime: 40,
		DsM: 100, DvMS: 1, DtSec: 2, StopDwellSec: 2,
		Windows: wf,
	}, nil
}

// dpTimeMode solves cfg iters times and reports (min ms, median ms, last
// result). One warmup solve precedes the timed runs so slab-pool and
// transition-cache fills do not count against the first iteration.
func dpTimeMode(cfg dp.Config, iters int) (minMs, medMs float64, res *dp.Result, err error) {
	if res, err = dp.Optimize(cfg); err != nil {
		return 0, 0, nil, err
	}
	times := make([]float64, iters)
	for i := range times {
		start := time.Now()
		if res, err = dp.Optimize(cfg); err != nil {
			return 0, 0, nil, err
		}
		times[i] = float64(time.Since(start).Nanoseconds()) / 1e6
	}
	sort.Float64s(times)
	return times[0], times[iters/2], res, nil
}

// dpBench runs the three modes and assembles the report. The scalar and
// kernel modes must agree bit-for-bit (the parity contract); the coarse
// mode must stay within dpCoarseEpsAh of the exact charge.
func dpBench(fid experiments.Fidelity) (*dpBenchReport, error) {
	iters := 50
	if fid == experiments.FidelityFast {
		iters = 8
	}
	cfg, err := dpFig6Config()
	if err != nil {
		return nil, err
	}
	rep := &dpBenchReport{
		Figure: "fig6-queue-aware", Iterations: iters,
		DocumentedSeedMs: dpDocumentedSeedMs,
	}

	prev := dp.SetAsmKernels(false)
	defer dp.SetAsmKernels(prev)
	sMin, sMed, sRes, err := dpTimeMode(cfg, iters)
	if err != nil {
		return nil, fmt.Errorf("scalar mode: %w", err)
	}

	dp.SetAsmKernels(true)
	rep.KernelsAvailable = dp.KernelsEnabled()
	kMin, kMed, kRes, err := dpTimeMode(cfg, iters)
	if err != nil {
		return nil, fmt.Errorf("kernel mode: %w", err)
	}
	if kRes.ChargeAh != sRes.ChargeAh || kRes.TripSec != sRes.TripSec {
		return nil, fmt.Errorf("kernel/scalar parity broken: %v Ah vs %v Ah", kRes.ChargeAh, sRes.ChargeAh)
	}

	ccfg := cfg
	ccfg.CoarseRefine = dp.CoarseRefine{Factor: 3, CorridorMS: 3}
	cMin, cMed, cRes, err := dpTimeMode(ccfg, iters)
	if err != nil {
		return nil, fmt.Errorf("coarse-refine mode: %w", err)
	}
	if cRes.Refined == nil {
		return nil, fmt.Errorf("coarse-refine result missing Refined diagnostic")
	}
	if gap := cRes.ChargeAh - sRes.ChargeAh; gap < -1e-12 || gap > dpCoarseEpsAh {
		return nil, fmt.Errorf("coarse-refine charge %v vs exact %v: outside [0, %g] Ah",
			cRes.ChargeAh, sRes.ChargeAh, dpCoarseEpsAh)
	}

	mode := func(name string, minMs, medMs float64, r *dp.Result) dpBenchMode {
		return dpBenchMode{
			Name: name, MinMs: minMs, MedianMs: medMs,
			SpeedupVsScalar: sMin / minMs,
			PlannedMAh:      units.AhToMAh(r.ChargeAh),
			TripSec:         r.TripSec,
			StatesExpanded:  r.StatesExpanded,
			Refined:         r.Refined != nil,
		}
	}
	rep.Modes = []dpBenchMode{
		mode("exact-scalar", sMin, sMed, sRes),
		mode("exact-kernels", kMin, kMed, kRes),
		mode("coarse-refine", cMin, cMed, cRes),
	}
	return rep, nil
}

// Render prints the benchmark table.
func (r *dpBenchReport) Render(w io.Writer) error {
	fmt.Fprintf(w, "DP solver bench — Fig. 6 queue-aware problem (%d iterations, kernels available: %v)\n",
		r.Iterations, r.KernelsAvailable)
	fmt.Fprintf(w, "documented pre-kernel solve time: %.1f ms (same problem, earlier revision)\n\n", r.DocumentedSeedMs)
	fmt.Fprintf(w, "%-14s %9s %9s %9s %12s %9s %8s\n",
		"mode", "min ms", "med ms", "speedup", "planned mAh", "trip s", "states")
	for _, m := range r.Modes {
		fmt.Fprintf(w, "%-14s %9.3f %9.3f %8.2fx %12.1f %9.1f %8d\n",
			m.Name, m.MinMs, m.MedianMs, m.SpeedupVsScalar, m.PlannedMAh, m.TripSec, m.StatesExpanded)
	}
	return nil
}

// writeJSON writes the report to path as indented JSON.
func (r *dpBenchReport) writeJSON(path string) error {
	body, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(body, '\n'), 0o644)
}
