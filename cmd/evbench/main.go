// Command evbench regenerates every figure of the paper's evaluation
// section as text tables. Each subcommand corresponds to one figure; `all`
// runs the lot. --fast trades resolution for runtime.
//
// Usage:
//
//	evbench [--fast] [--workers n] [--out file] fig3|fig4|fig5|fig6|fig7|fig8|grade|fleet|dp|all
//
// The extra `dp` subcommand is not a paper figure: it times the Fig-6
// queue-aware solve across the solver's serving modes (scalar, AVX2
// kernels, coarse-to-fine) and, with --out, writes the BENCH_dp.json
// artifact consumed by `make bench-dp` and CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"evvo/internal/ev"
	"evvo/internal/experiments"
)

func main() {
	fast := flag.Bool("fast", false, "coarse grids and small models (quick run)")
	workers := flag.Int("workers", 0, "cap compute parallelism (DP relaxation, fleet planning, SAE training); 0 = all cores")
	out := flag.String("out", "", "write the dp subcommand's JSON report to this file (e.g. BENCH_dp.json)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: evbench [--fast] [--workers n] [--out file] fig3|fig4|fig5|fig6|fig7|fig8|grade|fleet|dp|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "evbench: --workers must be non-negative")
		os.Exit(2)
	}
	if *workers > 0 {
		// The DP worker pools and the fleet fan-out size themselves from
		// GOMAXPROCS, so one knob caps the whole run.
		runtime.GOMAXPROCS(*workers)
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	fid := experiments.FidelityFull
	if *fast {
		fid = experiments.FidelityFast
	}
	if err := run(os.Stdout, flag.Arg(0), fid, *workers, *out); err != nil {
		fmt.Fprintln(os.Stderr, "evbench:", err)
		os.Exit(1)
	}
}

// renderer is any figure result.
type renderer interface {
	Render(io.Writer) error
}

func run(w io.Writer, fig string, fid experiments.Fidelity, workers int, out string) error {
	figs := []string{fig}
	if fig == "all" {
		figs = []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "grade", "fleet"}
	}
	// Figs 6–8 share one comparison run; compute it lazily once.
	var comparison *experiments.ComparisonResult
	getComparison := func() (*experiments.ComparisonResult, error) {
		if comparison == nil {
			c, err := experiments.Comparison(fid)
			if err != nil {
				return nil, err
			}
			comparison = c
		}
		return comparison, nil
	}

	for i, f := range figs {
		if i > 0 {
			fmt.Fprintln(w)
		}
		var (
			r   renderer
			err error
		)
		switch f {
		case "fig3":
			r, err = experiments.Fig3(ev.SparkEV())
		case "fig4":
			// SAE minibatch sharding is bit-identical across worker
			// counts, so the cap never changes the tables.
			r, err = experiments.Fig4Workers(fid, workers)
		case "fig5":
			r, err = experiments.Fig5(fid)
		case "fig6":
			var c *experiments.ComparisonResult
			if c, err = getComparison(); err == nil {
				r = &experiments.Fig6Result{ComparisonResult: c}
			}
		case "fig7":
			var c *experiments.ComparisonResult
			if c, err = getComparison(); err == nil {
				r = &experiments.Fig7Result{ComparisonResult: c}
			}
		case "fig8":
			var c *experiments.ComparisonResult
			if c, err = getComparison(); err == nil {
				r = &experiments.Fig8Result{ComparisonResult: c}
			}
		case "grade":
			r, err = experiments.GradeStudy(fid)
		case "fleet":
			r, err = experiments.RunFleetStudy(fid)
		case "dp":
			var rep *dpBenchReport
			if rep, err = dpBench(fid); err == nil && out != "" {
				err = rep.writeJSON(out)
			}
			r = rep
		default:
			return fmt.Errorf("unknown figure %q (want fig3..fig8, grade, fleet, or all)", f)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		if err := r.Render(w); err != nil {
			return fmt.Errorf("rendering %s: %w", f, err)
		}
	}
	return nil
}
