// Package evvo reproduces "Velocity Optimization of Pure Electric Vehicles
// with Traffic Dynamics Consideration" (Kang, Shen, Sarker — ICDCS 2017):
// a queue-aware dynamic-programming velocity optimizer for pure EVs,
// together with every substrate the paper's evaluation depends on — the EV
// energy model, the VM/QL traffic-dynamics models, a stacked-autoencoder
// traffic-volume predictor built on a from-scratch neural-network library,
// a microscopic traffic simulator with a TraCI-style socket protocol, and
// a vehicular-cloud optimization service.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every figure of the paper's evaluation.
package evvo
