# Developer / CI entry points. `make check` is the gate: vet, build, the
# full test suite under the race detector — the race flag exercises the DP's
# parallel relaxation, the departure-sweep pool, the minibatch sharding and
# the fleet planner — plus a one-iteration benchmark smoke pass so the
# figure harness and micro-benchmarks cannot silently rot.

GO ?= go

.PHONY: check vet build test race bench bench-smoke

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Reproduction harness: every paper figure as a benchmark metric.
bench:
	$(GO) test -bench . -benchmem -run xxx .

# One iteration of every benchmark in the module: catches benchmarks that
# no longer compile or crash without paying for real measurements.
bench-smoke:
	$(GO) test -run - -bench . -benchtime 1x ./...
