# Developer / CI entry points. `make check` is the gate: vet, build, the
# full test suite under the race detector — the race flag exercises the DP's
# parallel relaxation, the departure-sweep pool, the minibatch sharding and
# the fleet planner — plus a one-iteration benchmark smoke pass so the
# figure harness and micro-benchmarks cannot silently rot.

GO ?= go

.PHONY: check vet lint build test race bench bench-smoke bench-fleet bench-dp chaos chaos-cluster

check: vet lint build race bench-smoke bench-fleet bench-dp chaos chaos-cluster

vet:
	$(GO) vet ./...

# Custom static-analysis suite (internal/lint via cmd/evlint), twelve
# analyzers: context plumbing on the request path, unit-suffix hygiene,
# float equality, atomicity of shared counters, the flow-aware
# determinism/concurrency layer (detcheck, lockheld, goleak, errflow —
# DESIGN.md §14), and the interprocedural layer on call-graph summaries
# (puritycert, lockorder, ctxprop, hotalloc — DESIGN.md §15;
# `evlint -summaries` dumps the summary table). Exits non-zero on any
# unwaived finding; //lint:allow waivers are summarized on stderr.
# -max-wall keeps the suite honest about its own latency budget
# (exit 3 on breach).
lint:
	$(GO) run ./cmd/evlint -max-wall 180s ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Reproduction harness: every paper figure as a benchmark metric.
bench:
	$(GO) test -bench . -benchmem -run xxx .

# One iteration of every benchmark in the module: catches benchmarks that
# no longer compile or crash without paying for real measurements.
bench-smoke:
	$(GO) test -run - -bench . -benchtime 1x ./...

# Fleet-serving smoke: drive a simulated fleet through cmd/evload against
# an in-process 3-node cloudd cluster and emit the BENCH_fleet.json
# trajectory (per-node latency quantiles, DP-solve reuse from segment
# tables, and the cluster forward/fetch/failover counters — DESIGN.md
# §11, §13).
bench-fleet:
	$(GO) run ./cmd/evload -requests 96 -vehicles 12 -nodes 3 -out BENCH_fleet.json

# DP solver bench: time the Fig-6 queue-aware solve across the serving
# modes (scalar, AVX2 kernels, coarse-to-fine fast path, DESIGN.md §12)
# and emit the BENCH_dp.json artifact with speedups and parity evidence.
bench-dp:
	$(GO) run ./cmd/evbench -out BENCH_dp.json dp

# Robustness smoke: the fault-injected chaos tests (degradation ladder,
# shedding + client retry, panic recovery, coalescing under cancellation)
# plus the DP cancellation contract, all under the race detector.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Ctx|Cancel|Shed|Degrade|Graceful|Drain' \
		./internal/cloud ./internal/dp ./cmd/cloudd

# Cluster robustness smoke (DESIGN.md §13): the membership primitives
# (ring, failure detector, breaker) plus the multi-node partition/kill
# chaos tests and the readiness/drain lifecycle, under the race detector.
chaos-cluster:
	$(GO) test -race -count=1 ./internal/cluster
	$(GO) test -race -count=1 -run 'Cluster|Ready|Retry' \
		./internal/cloud ./cmd/cloudd ./cmd/evload
