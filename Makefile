# Developer / CI entry points. `make check` is the gate: vet, build, and the
# full test suite under the race detector — the race flag exercises the DP's
# parallel relaxation, the departure-sweep pool and the fleet planner.

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Reproduction harness: every paper figure as a benchmark metric.
bench:
	$(GO) test -bench . -benchmem -run xxx .
