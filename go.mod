module evvo

go 1.22
