package road

// US25 returns the experimental road segment from the paper's evaluation
// (Section III-A): a 4.2 km stretch of the US-25 highway at Greenville, SC
// with one stop sign at 490 m and two fixed-cycle traffic lights at 1800 m
// and 3460 m from the start. Both signals run 30 s red / 30 s green, the
// cycle observed at the second light in Section III-B-2.
//
// Speed band: the paper's Fig. 6 plots a speed limit around 60 km/h with a
// lower bound near 40 km/h; we use min 40 km/h, max 60 km/h along the route,
// relaxed to min 0 near the endpoints and controls where the vehicle must be
// able to stop.
func US25() *Route {
	const (
		lengthM  = 4200.0
		stopPosM = 490.0
		sig1PosM = 1800.0
		sig2PosM = 3460.0
	)
	timing := SignalTiming{RedSec: 30, GreenSec: 30}
	r, err := NewRoute(RouteConfig{
		LengthM:      lengthM,
		DefaultMinMS: KmhToMs(US25MinSpeedKmh),
		DefaultMaxMS: KmhToMs(60),
		Controls: []Control{
			{Kind: ControlStopSign, PositionM: stopPosM, Name: "stop-490m"},
			{Kind: ControlSignal, PositionM: sig1PosM, Timing: timing, Name: "light-1"},
			{Kind: ControlSignal, PositionM: sig2PosM, Timing: timing, Name: "light-2"},
		},
	})
	if err != nil {
		// US25 is built from constants; a failure is a programming error.
		panic("road: US25 construction failed: " + err.Error())
	}
	return r
}

// US25MinSpeedKmh is the minimum speed limit v_min used by the paper for the
// vehicle-movement (VM) model on the US-25 segment, in km/h.
const US25MinSpeedKmh = 40.0
