package road

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mustRoute(t *testing.T, cfg RouteConfig) *Route {
	t.Helper()
	r, err := NewRoute(cfg)
	if err != nil {
		t.Fatalf("NewRoute: %v", err)
	}
	return r
}

func TestSignalTimingPhaseAt(t *testing.T) {
	s := SignalTiming{RedSec: 30, GreenSec: 30}
	cases := []struct {
		t     float64
		green bool
	}{
		{0, false}, {29.99, false}, {30, true}, {59.99, true},
		{60, false}, {90, true}, {119.9, true}, {120, false},
	}
	for _, tc := range cases {
		if green, _ := s.PhaseAt(tc.t); green != tc.green {
			t.Errorf("PhaseAt(%.2f) green = %v, want %v", tc.t, green, tc.green)
		}
	}
}

func TestSignalTimingPhaseAtNegativeTime(t *testing.T) {
	s := SignalTiming{RedSec: 30, GreenSec: 30}
	// t = -10 is 50 s into the previous cycle: green.
	if green, into := s.PhaseAt(-10); !green || !almost(into, 50, 1e-9) {
		t.Fatalf("PhaseAt(-10) = (%v, %.2f), want (true, 50)", green, into)
	}
}

func TestSignalTimingOffset(t *testing.T) {
	s := SignalTiming{RedSec: 20, GreenSec: 40, OffsetSec: 10}
	if green, _ := s.PhaseAt(10); green {
		t.Fatal("cycle start should be red")
	}
	if green, _ := s.PhaseAt(30); !green {
		t.Fatal("10+20=30 should be green")
	}
}

func TestNextGreenWindow(t *testing.T) {
	s := SignalTiming{RedSec: 30, GreenSec: 30}
	cases := []struct {
		t, start, end float64
	}{
		{0, 30, 60},   // during red -> this cycle's green
		{45, 30, 60},  // inside green -> same window
		{60, 90, 120}, // exactly at green end -> next cycle
		{75, 90, 120},
	}
	for _, tc := range cases {
		start, end := s.NextGreenWindow(tc.t)
		if !almost(start, tc.start, 1e-9) || !almost(end, tc.end, 1e-9) {
			t.Errorf("NextGreenWindow(%.1f) = [%.1f, %.1f), want [%.1f, %.1f)", tc.t, start, end, tc.start, tc.end)
		}
	}
}

func TestSignalTimingValidate(t *testing.T) {
	if err := (SignalTiming{RedSec: -1, GreenSec: 30}).Validate(); err == nil {
		t.Fatal("negative red accepted")
	}
	if err := (SignalTiming{RedSec: 10, GreenSec: 0}).Validate(); err == nil {
		t.Fatal("zero green accepted")
	}
	if err := (SignalTiming{RedSec: 0, GreenSec: 30}).Validate(); err != nil {
		t.Fatalf("always-green timing rejected: %v", err)
	}
}

func TestNewRouteRejectsBadConfig(t *testing.T) {
	good := RouteConfig{LengthM: 1000, DefaultMaxMS: 20}
	cases := []struct {
		name   string
		mutate func(*RouteConfig)
		want   string
	}{
		{"zero length", func(c *RouteConfig) { c.LengthM = 0 }, "length"},
		{"zero max speed", func(c *RouteConfig) { c.DefaultMaxMS = 0 }, "max speed"},
		{"min above max", func(c *RouteConfig) { c.DefaultMinMS = 30 }, "min speed"},
		{"invalid control kind", func(c *RouteConfig) {
			c.Controls = []Control{{Kind: ControlInvalid, PositionM: 100}}
		}, "invalid kind"},
		{"control outside route", func(c *RouteConfig) {
			c.Controls = []Control{{Kind: ControlStopSign, PositionM: 1000}}
		}, "outside"},
		{"control at zero", func(c *RouteConfig) {
			c.Controls = []Control{{Kind: ControlStopSign, PositionM: 0}}
		}, "outside"},
		{"bad signal timing", func(c *RouteConfig) {
			c.Controls = []Control{{Kind: ControlSignal, PositionM: 100, Timing: SignalTiming{GreenSec: 0}}}
		}, "timing"},
		{"duplicate control position", func(c *RouteConfig) {
			c.Controls = []Control{
				{Kind: ControlStopSign, PositionM: 100, Name: "a"},
				{Kind: ControlStopSign, PositionM: 100, Name: "b"},
			}
		}, "share position"},
		{"inverted speed zone", func(c *RouteConfig) {
			c.SpeedZones = []SpeedZone{{StartM: 200, EndM: 100, MaxMS: 10}}
		}, "speed zone"},
		{"speed zone bad bounds", func(c *RouteConfig) {
			c.SpeedZones = []SpeedZone{{StartM: 0, EndM: 100, MinMS: 20, MaxMS: 10}}
		}, "bounds"},
		{"grade zone outside", func(c *RouteConfig) {
			c.GradeZones = []GradeZone{{StartM: 900, EndM: 1100}}
		}, "grade zone"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mutate(&cfg)
			_, err := NewRoute(cfg)
			if err == nil {
				t.Fatalf("NewRoute accepted %+v", cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestControlsSortedAndCopied(t *testing.T) {
	r := mustRoute(t, RouteConfig{
		LengthM: 1000, DefaultMaxMS: 20,
		Controls: []Control{
			{Kind: ControlStopSign, PositionM: 700, Name: "b"},
			{Kind: ControlStopSign, PositionM: 300, Name: "a"},
		},
	})
	cs := r.Controls()
	if cs[0].Name != "a" || cs[1].Name != "b" {
		t.Fatalf("controls not sorted: %+v", cs)
	}
	cs[0].Name = "mutated"
	if r.Controls()[0].Name != "a" {
		t.Fatal("Controls() exposed internal slice")
	}
}

func TestSignalsAndStopSignsFilter(t *testing.T) {
	r := US25()
	if got := len(r.Signals()); got != 2 {
		t.Fatalf("Signals() = %d, want 2", got)
	}
	if got := len(r.StopSigns()); got != 1 {
		t.Fatalf("StopSigns() = %d, want 1", got)
	}
	if r.StopSigns()[0].PositionM != 490 {
		t.Fatalf("stop sign at %.1f, want 490", r.StopSigns()[0].PositionM)
	}
}

func TestSpeedLimitsZones(t *testing.T) {
	r := mustRoute(t, RouteConfig{
		LengthM: 1000, DefaultMinMS: 5, DefaultMaxMS: 25,
		SpeedZones: []SpeedZone{
			{StartM: 100, EndM: 300, MinMS: 0, MaxMS: 15},
			{StartM: 250, EndM: 400, MinMS: 2, MaxMS: 10}, // overlaps; later start wins
		},
	})
	check := func(pos, wantMin, wantMax float64) {
		t.Helper()
		gotMin, gotMax := r.SpeedLimits(pos)
		if gotMin != wantMin || gotMax != wantMax {
			t.Fatalf("SpeedLimits(%.0f) = (%v, %v), want (%v, %v)", pos, gotMin, gotMax, wantMin, wantMax)
		}
	}
	check(50, 5, 25)  // default
	check(100, 0, 15) // first zone inclusive start
	check(260, 2, 10) // overlap: later zone wins
	check(350, 2, 10) // second zone only
	check(400, 5, 25) // exclusive end
	check(999, 5, 25) // default tail
}

func TestSpeedZonesSortedAndCopied(t *testing.T) {
	r := mustRoute(t, RouteConfig{
		LengthM: 1000, DefaultMaxMS: 25,
		SpeedZones: []SpeedZone{
			{StartM: 400, EndM: 500, MinMS: 0, MaxMS: 10},
			{StartM: 100, EndM: 300, MinMS: 0, MaxMS: 15},
		},
	})
	zones := r.SpeedZones()
	if len(zones) != 2 || zones[0].StartM != 100 || zones[1].StartM != 400 {
		t.Fatalf("SpeedZones() = %+v, want 2 zones sorted by start", zones)
	}
	zones[0].MaxMS = 99 // mutate the copy
	if again := r.SpeedZones(); again[0].MaxMS != 15 {
		t.Fatalf("SpeedZones() returned shared state: %+v", again)
	}
}

func TestGradeAt(t *testing.T) {
	r := mustRoute(t, RouteConfig{
		LengthM: 1000, DefaultMaxMS: 20,
		GradeZones: []GradeZone{{StartM: 200, EndM: 500, ThetaRad: 0.03}},
	})
	if g := r.GradeAt(100); g != 0 {
		t.Fatalf("GradeAt(100) = %v, want 0", g)
	}
	if g := r.GradeAt(300); g != 0.03 {
		t.Fatalf("GradeAt(300) = %v, want 0.03", g)
	}
	if g := r.GradeAt(500); g != 0 {
		t.Fatalf("GradeAt(500) = %v, want 0 (exclusive end)", g)
	}
}

func TestControlAtAndNextControl(t *testing.T) {
	r := US25()
	c, ok := r.ControlAt(400, 600)
	if !ok || c.Name != "stop-490m" {
		t.Fatalf("ControlAt(400,600) = (%+v, %v), want stop sign", c, ok)
	}
	if _, ok := r.ControlAt(500, 1000); ok {
		t.Fatal("ControlAt(500,1000) found unexpected control")
	}
	n, ok := r.NextControl(490)
	if !ok || n.Name != "light-1" {
		t.Fatalf("NextControl(490) = (%+v, %v), want light-1", n, ok)
	}
	if _, ok := r.NextControl(3460); ok {
		t.Fatal("NextControl past last control should report none")
	}
}

func TestUS25Geometry(t *testing.T) {
	r := US25()
	if r.LengthM() != 4200 {
		t.Fatalf("LengthM = %v, want 4200", r.LengthM())
	}
	sigs := r.Signals()
	if sigs[0].PositionM != 1800 || sigs[1].PositionM != 3460 {
		t.Fatalf("signal positions = %v, %v; want 1800, 3460", sigs[0].PositionM, sigs[1].PositionM)
	}
	for _, s := range sigs {
		if s.Timing.RedSec != 30 || s.Timing.GreenSec != 30 {
			t.Fatalf("signal %q timing = %+v, want 30/30", s.Name, s.Timing)
		}
	}
	_, maxMS := r.SpeedLimits(1000)
	if !almost(MsToKmh(maxMS), 60, 1e-9) {
		t.Fatalf("US25 max speed = %.1f km/h, want 60", MsToKmh(maxMS))
	}
}

func TestUnitConversionsRoundTrip(t *testing.T) {
	f := func(kmh float64) bool {
		kmh = math.Mod(math.Abs(kmh), 200)
		return almost(MsToKmh(KmhToMs(kmh)), kmh, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PhaseAt is periodic with the cycle length.
func TestPropPhasePeriodic(t *testing.T) {
	s := SignalTiming{RedSec: 17, GreenSec: 43, OffsetSec: 5}
	f := func(tm float64, k uint8) bool {
		tm = math.Mod(math.Abs(tm), 1e6)
		g1, into1 := s.PhaseAt(tm)
		g2, into2 := s.PhaseAt(tm + float64(k)*s.CycleSec())
		return g1 == g2 && almost(into1, into2, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextGreenWindow always returns a window containing or after t,
// whose span is exactly GreenSec, and which is green throughout.
func TestPropNextGreenWindowSane(t *testing.T) {
	s := SignalTiming{RedSec: 25, GreenSec: 35}
	f := func(tm float64) bool {
		tm = math.Mod(math.Abs(tm), 1e5)
		start, end := s.NextGreenWindow(tm)
		if end <= tm || !almost(end-start, s.GreenSec, 1e-6) {
			return false
		}
		mid := (math.Max(start, tm) + end) / 2
		green, _ := s.PhaseAt(mid)
		return green
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestControlKindString(t *testing.T) {
	if ControlStopSign.String() != "stop-sign" || ControlSignal.String() != "signal" {
		t.Fatal("unexpected ControlKind strings")
	}
	if !strings.Contains(ControlInvalid.String(), "0") {
		t.Fatalf("invalid kind string = %q", ControlInvalid.String())
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
