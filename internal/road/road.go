// Package road describes the static route an EV drives: length, positions of
// stop signs and signalized intersections, per-position speed limits and road
// gradients. It is the shared geometry substrate for the DP optimizer
// (internal/dp), the reference-driver generators (internal/profile) and the
// microscopic traffic simulator (internal/sim).
//
// Positions are longitudinal offsets in metres from the route start.
package road

import (
	"fmt"
	"math"
	"sort"

	"evvo/internal/units"
)

// ControlKind enumerates the kinds of traffic control at a point.
type ControlKind int

// Control kinds. Enums start at one so the zero value is invalid and cannot
// be mistaken for a real control.
const (
	ControlInvalid ControlKind = iota
	// ControlStopSign forces velocity to zero at its position (Eq. 7c).
	ControlStopSign
	// ControlSignal is a fixed-cycle traffic light.
	ControlSignal
)

// String implements fmt.Stringer.
func (k ControlKind) String() string {
	switch k {
	case ControlStopSign:
		return "stop-sign"
	case ControlSignal:
		return "signal"
	default:
		return fmt.Sprintf("ControlKind(%d)", int(k))
	}
}

// SignalTiming is a fixed-duration signal cycle. A cycle starts at Offset
// seconds (relative to simulation time zero) with the red phase: the paper's
// Eq. (4) indexes the cycle as red on [0, t_red) then green on
// [t_red, t_red+t_green).
type SignalTiming struct {
	// RedSec is the red-phase duration t_red in seconds.
	RedSec float64
	// GreenSec is the green-phase duration t_green in seconds.
	GreenSec float64
	// OffsetSec shifts the cycle start relative to t = 0.
	OffsetSec float64
}

// CycleSec returns the full cycle duration t_red + t_green.
func (s SignalTiming) CycleSec() float64 { return s.RedSec + s.GreenSec }

// Validate reports whether the timing is usable.
func (s SignalTiming) Validate() error {
	if s.RedSec < 0 || s.GreenSec <= 0 {
		return fmt.Errorf("road: signal timing red=%.1fs green=%.1fs invalid", s.RedSec, s.GreenSec)
	}
	return nil
}

// PhaseAt reports whether the signal is green at absolute time t (seconds)
// and the time already elapsed within the current cycle.
func (s SignalTiming) PhaseAt(t float64) (green bool, intoCycle float64) {
	c := s.CycleSec()
	intoCycle = math.Mod(t-s.OffsetSec, c)
	if intoCycle < 0 {
		intoCycle += c
	}
	return intoCycle >= s.RedSec, intoCycle
}

// CycleStartBefore returns the absolute start time of the cycle containing t.
func (s SignalTiming) CycleStartBefore(t float64) float64 {
	_, into := s.PhaseAt(t)
	return t - into
}

// NextGreenWindow returns the absolute [start, end) of the first green phase
// that ends after time t. If t is already inside a green phase, that phase
// is returned.
func (s SignalTiming) NextGreenWindow(t float64) (start, end float64) {
	cs := s.CycleStartBefore(t)
	start = cs + s.RedSec
	end = cs + s.CycleSec()
	if t >= end {
		start += s.CycleSec()
		end += s.CycleSec()
	}
	return start, end
}

// Control is a traffic control fixed at a route position.
type Control struct {
	// Kind is the control type; Timing is only meaningful for ControlSignal.
	Kind ControlKind
	// PositionM is the longitudinal offset from the route start in metres.
	PositionM float64
	// Timing is the signal cycle (signals only).
	Timing SignalTiming
	// Name labels the control in reports (e.g. "light-1").
	Name string
}

// SpeedZone assigns a speed band to [StartM, EndM).
type SpeedZone struct {
	StartM, EndM float64
	// MinMS and MaxMS are the legal minimum and maximum speeds in m/s
	// (Eq. 7a bounds v_min(s), v_max(s)).
	MinMS, MaxMS float64
}

// GradeZone assigns a road gradient (radians) to [StartM, EndM).
type GradeZone struct {
	StartM, EndM float64
	ThetaRad     float64
}

// Route is an immutable description of a drive from position 0 to LengthM.
// Construct with NewRoute; the constructor validates and sorts inputs.
type Route struct {
	lengthM  float64
	controls []Control
	speeds   []SpeedZone
	grades   []GradeZone
	// defaults applied where no zone matches
	defMin, defMax float64
}

// RouteConfig collects the inputs for NewRoute.
type RouteConfig struct {
	// LengthM is the total route length in metres.
	LengthM float64
	// DefaultMinMS/DefaultMaxMS are speed bounds outside any SpeedZone.
	DefaultMinMS, DefaultMaxMS float64
	Controls                   []Control
	SpeedZones                 []SpeedZone
	GradeZones                 []GradeZone
}

// NewRoute validates cfg and builds a Route. Controls are sorted by
// position; zones may not be empty-length or lie outside the route.
func NewRoute(cfg RouteConfig) (*Route, error) {
	if cfg.LengthM <= 0 {
		return nil, fmt.Errorf("road: route length %.1f m must be positive", cfg.LengthM)
	}
	if cfg.DefaultMaxMS <= 0 {
		return nil, fmt.Errorf("road: default max speed %.1f m/s must be positive", cfg.DefaultMaxMS)
	}
	if cfg.DefaultMinMS < 0 || cfg.DefaultMinMS > cfg.DefaultMaxMS {
		return nil, fmt.Errorf("road: default min speed %.1f m/s outside [0, %.1f]", cfg.DefaultMinMS, cfg.DefaultMaxMS)
	}
	r := &Route{
		lengthM: cfg.LengthM,
		defMin:  cfg.DefaultMinMS,
		defMax:  cfg.DefaultMaxMS,
	}
	r.controls = append(r.controls, cfg.Controls...)
	for i, c := range r.controls {
		if c.Kind != ControlStopSign && c.Kind != ControlSignal {
			return nil, fmt.Errorf("road: control %d (%q) has invalid kind %v", i, c.Name, c.Kind)
		}
		if c.PositionM <= 0 || c.PositionM >= cfg.LengthM {
			return nil, fmt.Errorf("road: control %q at %.1f m outside (0, %.1f)", c.Name, c.PositionM, cfg.LengthM)
		}
		if c.Kind == ControlSignal {
			if err := c.Timing.Validate(); err != nil {
				return nil, fmt.Errorf("road: control %q: %w", c.Name, err)
			}
		}
	}
	sort.Slice(r.controls, func(i, j int) bool { return r.controls[i].PositionM < r.controls[j].PositionM })
	for i := 1; i < len(r.controls); i++ {
		if r.controls[i].PositionM == r.controls[i-1].PositionM {
			return nil, fmt.Errorf("road: controls %q and %q share position %.1f m",
				r.controls[i-1].Name, r.controls[i].Name, r.controls[i].PositionM)
		}
	}
	for _, z := range cfg.SpeedZones {
		if z.StartM >= z.EndM || z.StartM < 0 || z.EndM > cfg.LengthM {
			return nil, fmt.Errorf("road: speed zone [%.1f, %.1f) invalid for route of %.1f m", z.StartM, z.EndM, cfg.LengthM)
		}
		if z.MaxMS <= 0 || z.MinMS < 0 || z.MinMS > z.MaxMS {
			return nil, fmt.Errorf("road: speed zone [%.1f, %.1f) bounds [%.1f, %.1f] invalid", z.StartM, z.EndM, z.MinMS, z.MaxMS)
		}
		r.speeds = append(r.speeds, z)
	}
	for _, z := range cfg.GradeZones {
		if z.StartM >= z.EndM || z.StartM < 0 || z.EndM > cfg.LengthM {
			return nil, fmt.Errorf("road: grade zone [%.1f, %.1f) invalid for route of %.1f m", z.StartM, z.EndM, cfg.LengthM)
		}
		r.grades = append(r.grades, z)
	}
	sort.Slice(r.speeds, func(i, j int) bool { return r.speeds[i].StartM < r.speeds[j].StartM })
	sort.Slice(r.grades, func(i, j int) bool { return r.grades[i].StartM < r.grades[j].StartM })
	return r, nil
}

// LengthM returns the total route length in metres.
func (r *Route) LengthM() float64 { return r.lengthM }

// Controls returns the controls ordered by position. The returned slice is a
// copy; callers may modify it freely.
func (r *Route) Controls() []Control {
	out := make([]Control, len(r.controls))
	copy(out, r.controls)
	return out
}

// Signals returns only the signalized controls, ordered by position.
func (r *Route) Signals() []Control {
	var out []Control
	for _, c := range r.controls {
		if c.Kind == ControlSignal {
			out = append(out, c)
		}
	}
	return out
}

// StopSigns returns only the stop-sign controls, ordered by position.
func (r *Route) StopSigns() []Control {
	var out []Control
	for _, c := range r.controls {
		if c.Kind == ControlStopSign {
			out = append(out, c)
		}
	}
	return out
}

// SpeedZones returns the speed zones ordered by start position. The returned
// slice is a copy; callers may modify it freely. Consumers that discretize
// the route (e.g. the DP's velocity-grid sizing) use the zone boundaries to
// avoid missing zones shorter than their sampling step.
func (r *Route) SpeedZones() []SpeedZone {
	out := make([]SpeedZone, len(r.speeds))
	copy(out, r.speeds)
	return out
}

// SpeedLimits returns the (min, max) legal speeds in m/s at position pos.
// Later-starting zones win when zones overlap.
func (r *Route) SpeedLimits(pos float64) (minMS, maxMS float64) {
	minMS, maxMS = r.defMin, r.defMax
	for _, z := range r.speeds {
		if pos >= z.StartM && pos < z.EndM {
			minMS, maxMS = z.MinMS, z.MaxMS
		}
		if z.StartM > pos {
			break
		}
	}
	return minMS, maxMS
}

// GradeAt returns the road gradient in radians at position pos (0 where no
// zone matches).
func (r *Route) GradeAt(pos float64) float64 {
	theta := 0.0
	for _, z := range r.grades {
		if pos >= z.StartM && pos < z.EndM {
			theta = z.ThetaRad
		}
		if z.StartM > pos {
			break
		}
	}
	return theta
}

// ControlAt returns the control whose position lies in [from, to), if any.
// Used by samplers stepping through the route.
func (r *Route) ControlAt(from, to float64) (Control, bool) {
	for _, c := range r.controls {
		if c.PositionM >= from && c.PositionM < to {
			return c, true
		}
	}
	return Control{}, false
}

// NextControl returns the first control strictly after position pos.
func (r *Route) NextControl(pos float64) (Control, bool) {
	for _, c := range r.controls {
		if c.PositionM > pos {
			return c, true
		}
	}
	return Control{}, false
}

// KmhToMs converts km/h to m/s. It delegates to internal/units, the
// blessed home of the 3.6 factor; this wrapper survives for the many
// call sites that predate the units package.
func KmhToMs(kmh float64) float64 { return units.KmhToMps(kmh) }

// MsToKmh converts m/s to km/h.
func MsToKmh(ms float64) float64 { return units.MpsToKmh(ms) }
