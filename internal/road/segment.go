package road

// Segment is a signal-delimited piece of a route: the stretch between two
// consecutive signalized intersections (or a route endpoint). Segments are
// the unit of DP-table reuse for fleet serving (internal/dp, DESIGN.md §11):
// a route's interior physics between signals carries no arrival-time
// constraint, so one solved segment serves every request that crosses it.
//
// Stop signs do not delimit segments — they pin velocity to zero but impose
// no time window, so they stay interior to a segment's own solve.
type Segment struct {
	// StartM and EndM bound the segment along the route.
	StartM, EndM float64
	// Boundary is the signal at EndM, nil for the final segment (whose end
	// is the route destination).
	Boundary *Control
}

// SegmentsAtSignals splits the route at its signalized intersections and
// returns the segments in position order. A route without signals is one
// segment spanning its whole length; a route with m signals yields m+1
// segments.
func (r *Route) SegmentsAtSignals() []Segment {
	var out []Segment
	start := 0.0
	for _, c := range r.controls {
		if c.Kind != ControlSignal {
			continue
		}
		sig := c
		out = append(out, Segment{StartM: start, EndM: sig.PositionM, Boundary: &sig})
		start = sig.PositionM
	}
	out = append(out, Segment{StartM: start, EndM: r.lengthM})
	return out
}
