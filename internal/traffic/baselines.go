package traffic

import (
	"fmt"
	"math"
)

// Classical baselines to compare the SAE against — the SAE's citation [10]
// motivates deep models by their advantage over exactly these.

// SeasonalNaivePredict forecasts each hour as the volume one week earlier.
// It returns aligned (pred, actual) slices covering hours
// [HoursPerWeek, s.Len()).
func SeasonalNaivePredict(s *Series) (pred, actual []float64, err error) {
	if s == nil || s.Len() <= HoursPerWeek {
		return nil, nil, fmt.Errorf("traffic: seasonal naive needs more than one week of data")
	}
	for h := HoursPerWeek; h < s.Len(); h++ {
		pred = append(pred, s.At(h-HoursPerWeek))
		actual = append(actual, s.At(h))
	}
	return pred, actual, nil
}

// ARPredictor is a linear autoregressive model y_t = c + Σ φ_i·y_{t−i},
// fitted by ordinary least squares.
type ARPredictor struct {
	order int
	c     float64
	phi   []float64 // phi[0] multiplies y_{t−1}
}

// FitAR fits an AR(order) model to the training series.
func FitAR(train *Series, order int) (*ARPredictor, error) {
	if order <= 0 {
		return nil, fmt.Errorf("traffic: AR order %d must be positive", order)
	}
	if train == nil || train.Len() <= order+1 {
		return nil, fmt.Errorf("traffic: training series too short for AR(%d)", order)
	}
	// Design matrix columns: [1, y_{t−1}, ..., y_{t−order}].
	dim := order + 1
	ata := make([][]float64, dim)
	for i := range ata {
		ata[i] = make([]float64, dim)
	}
	atb := make([]float64, dim)
	row := make([]float64, dim)
	for t := order; t < train.Len(); t++ {
		row[0] = 1
		for i := 1; i <= order; i++ {
			row[i] = train.At(t - i)
		}
		y := train.At(t)
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				ata[i][j] += row[i] * row[j]
			}
			atb[i] += row[i] * y
		}
	}
	coef, err := solveLinear(ata, atb)
	if err != nil {
		return nil, fmt.Errorf("traffic: AR fit: %w", err)
	}
	return &ARPredictor{order: order, c: coef[0], phi: coef[1:]}, nil
}

// Order returns the model order p.
func (a *ARPredictor) Order() int { return a.order }

// Predict forecasts the next value from the most recent `order` values
// (history[len-1] is y_{t−1}). Forecasts are clamped at zero.
func (a *ARPredictor) Predict(history []float64) (float64, error) {
	if len(history) < a.order {
		return 0, fmt.Errorf("traffic: AR(%d) needs %d history values, got %d", a.order, a.order, len(history))
	}
	y := a.c
	for i := 0; i < a.order; i++ {
		y += a.phi[i] * history[len(history)-1-i]
	}
	if y < 0 {
		y = 0
	}
	return y, nil
}

// PredictSeries runs one-step-ahead forecasts over a test series,
// mirroring Predictor.PredictSeries's alignment.
func (a *ARPredictor) PredictSeries(test *Series) (pred, actual []float64, err error) {
	if test == nil || test.Len() <= a.order {
		return nil, nil, fmt.Errorf("traffic: test series too short for AR(%d)", a.order)
	}
	for h := a.order; h < test.Len(); h++ {
		p, err := a.Predict(test.Values[h-a.order : h])
		if err != nil {
			return nil, nil, err
		}
		pred = append(pred, p)
		actual = append(actual, test.At(h))
	}
	return pred, actual, nil
}

// solveLinear solves A·x = b by Gaussian elimination with partial
// pivoting. A is modified in place.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("traffic: singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back-substitute.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}
