package traffic

import (
	"fmt"
	"math"

	"evvo/internal/metrics"
	"evvo/internal/neural"
)

// PredictorConfig parameterizes the SAE volume predictor. The feature
// vector for hour t is the previous Window volumes (max-normalized) plus
// sine/cosine encodings of hour-of-day and a weekend flag, exactly the
// "historical volume V_in(t) and the specific time t" inputs of the paper's
// SAE model; the target is the volume at t (one-hour-ahead prediction).
type PredictorConfig struct {
	// Window is the number of past hours fed to the model (default 12).
	Window int
	// Hidden are the SAE encoder widths (default {32, 16}).
	Hidden []int
	// PretrainEpochs and FinetuneEpochs (defaults 20 and 80).
	PretrainEpochs, FinetuneEpochs int
	// Seed makes training deterministic.
	Seed int64
	// Workers bounds per-minibatch training parallelism (see
	// neural.TrainConfig.Workers); the trained model is bit-identical for
	// any value.
	Workers int
}

func (c *PredictorConfig) applyDefaults() {
	if c.Window == 0 {
		c.Window = 12
	}
	if c.Hidden == nil {
		c.Hidden = []int{32, 16}
	}
	if c.PretrainEpochs == 0 {
		c.PretrainEpochs = 20
	}
	if c.FinetuneEpochs == 0 {
		c.FinetuneEpochs = 80
	}
}

// Predictor is a trained SAE volume model. Predict reuses internal
// scratch, so a Predictor must not be shared between concurrent callers.
type Predictor struct {
	cfg   PredictorConfig
	net   *neural.Network
	scale float64 // max-normalization factor

	// Inference scratch, lazily built on first Predict so that predictors
	// restored by LoadPredictor get it too.
	feat []float64
	fwd  *neural.FwdScratch
}

// featureDim returns Window + 11 time encodings (four hour-of-day
// harmonics, day-of-week phase, weekend flag).
func featureDim(window int) int { return window + 11 }

// features builds the input vector for predicting hour h of series s,
// using s.Values[h-window:h] as history.
func (p *Predictor) features(history []float64, h int) []float64 {
	return p.featuresInto(make([]float64, 0, featureDim(p.cfg.Window)), history, h)
}

// featuresInto appends the feature vector to dst[:0] and returns it,
// allocating nothing when dst has capacity featureDim(Window).
func (p *Predictor) featuresInto(dst, history []float64, h int) []float64 {
	x := dst[:0]
	for _, v := range history {
		x = append(x, v/p.scale)
	}
	hod := float64(HourOfDay(h))
	dow := float64(int(DayOfWeek(h)))
	// Four diurnal harmonics resolve the sharp rush-hour peaks that a
	// single sinusoid smears out.
	for k := 1.0; k <= 4; k++ {
		x = append(x, math.Sin(2*math.Pi*k*hod/24), math.Cos(2*math.Pi*k*hod/24))
	}
	x = append(x,
		math.Sin(2*math.Pi*dow/7),
		math.Cos(2*math.Pi*dow/7),
		boolToF(IsWeekend(h)),
	)
	return x
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// TrainPredictor fits an SAE to a training series.
func TrainPredictor(train *Series, cfg PredictorConfig) (*Predictor, error) {
	cfg.applyDefaults()
	if train == nil || train.Len() <= cfg.Window {
		return nil, fmt.Errorf("traffic: training series too short for window %d", cfg.Window)
	}
	scale := metrics.Max(train.Values)
	if scale <= 0 {
		return nil, fmt.Errorf("traffic: training series is all zeros")
	}
	sae, err := neural.NewSAE(neural.SAEConfig{
		InputDim:       featureDim(cfg.Window),
		OutputDim:      1,
		Hidden:         cfg.Hidden,
		PretrainEpochs: cfg.PretrainEpochs,
		FinetuneEpochs: cfg.FinetuneEpochs,
		Seed:           cfg.Seed,
		Workers:        cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	p := &Predictor{cfg: cfg, net: sae.Network(), scale: scale}
	var xs, ys [][]float64
	for h := cfg.Window; h < train.Len(); h++ {
		xs = append(xs, p.features(train.Values[h-cfg.Window:h], h))
		ys = append(ys, []float64{train.Values[h] / scale})
	}
	if _, err := sae.Fit(xs, ys); err != nil {
		return nil, err
	}
	return p, nil
}

// Window returns the model's input window length in hours.
func (p *Predictor) Window() int { return p.cfg.Window }

// Predict returns the predicted volume (veh/h) for hour h given the
// preceding Window hourly volumes. Predictions are clamped at zero. It
// reuses the predictor's scratch buffers (zero steady-state allocations)
// and is therefore not safe for concurrent use.
func (p *Predictor) Predict(history []float64, h int) (float64, error) {
	if len(history) != p.cfg.Window {
		return 0, fmt.Errorf("traffic: history length %d, want %d", len(history), p.cfg.Window)
	}
	if p.fwd == nil {
		p.feat = make([]float64, 0, featureDim(p.cfg.Window))
		p.fwd = neural.NewFwdScratch(p.net)
	}
	p.feat = p.featuresInto(p.feat, history, h)
	out := p.net.ForwardInto(p.fwd, p.feat)[0] * p.scale
	if out < 0 {
		out = 0
	}
	return out, nil
}

// PredictSeries predicts every hour of a test series using its own
// preceding values as history (the first Window hours seed the history and
// are not predicted). The returned slices align: pred[i] forecasts
// actual[i] at hour offsets Window..Len-1.
func (p *Predictor) PredictSeries(test *Series, hourOffset int) (pred, actual []float64, err error) {
	if test == nil || test.Len() <= p.cfg.Window {
		return nil, nil, fmt.Errorf("traffic: test series too short for window %d", p.cfg.Window)
	}
	for h := p.cfg.Window; h < test.Len(); h++ {
		v, err := p.Predict(test.Values[h-p.cfg.Window:h], hourOffset+h)
		if err != nil {
			return nil, nil, err
		}
		pred = append(pred, v)
		actual = append(actual, test.Values[h])
	}
	return pred, actual, nil
}

// DayScore is a per-day prediction quality summary (the paper's Fig. 4(b)).
type DayScore struct {
	Day  string
	MRE  float64 // fraction, e.g. 0.07 = 7%
	RMSE float64 // vehicles/hour
}

// EvaluateByDay scores predictions against a one-week (or longer) test
// series, grouped by weekday. hourOffset is the test series' first hour's
// offset within the week (0 = midnight Monday).
func (p *Predictor) EvaluateByDay(test *Series, hourOffset int) ([]DayScore, error) {
	pred, actual, err := p.PredictSeries(test, hourOffset)
	if err != nil {
		return nil, err
	}
	byDay := map[string][2][]float64{}
	order := []string{}
	for i := range pred {
		h := hourOffset + p.cfg.Window + i
		day := DayOfWeek(h).String()
		pair, ok := byDay[day]
		if !ok {
			order = append(order, day)
		}
		pair[0] = append(pair[0], pred[i])
		pair[1] = append(pair[1], actual[i])
		byDay[day] = pair
	}
	var out []DayScore
	for _, day := range order {
		pair := byDay[day]
		mre, err := metrics.MRE(pair[0], pair[1])
		if err != nil {
			return nil, fmt.Errorf("traffic: scoring %s: %w", day, err)
		}
		rmse, err := metrics.RMSE(pair[0], pair[1])
		if err != nil {
			return nil, fmt.Errorf("traffic: scoring %s: %w", day, err)
		}
		out = append(out, DayScore{Day: day, MRE: mre, RMSE: rmse})
	}
	return out, nil
}
