package traffic

import (
	"math"
	"testing"
	"time"

	"evvo/internal/metrics"
)

func synth(t *testing.T, weeks int, seed int64) *Series {
	t.Helper()
	s, err := Synthesize(SyntheticConfig{Weeks: weeks, Seed: seed})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	return s
}

func TestNewSeriesValidation(t *testing.T) {
	if _, err := NewSeries(nil); err == nil {
		t.Fatal("empty series accepted")
	}
	if _, err := NewSeries([]float64{1, -2}); err == nil {
		t.Fatal("negative volume accepted")
	}
	if _, err := NewSeries([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestNewSeriesCopies(t *testing.T) {
	vals := []float64{1, 2, 3}
	s, err := NewSeries(vals)
	if err != nil {
		t.Fatal(err)
	}
	vals[0] = 99
	if s.At(0) != 1 {
		t.Fatal("NewSeries did not copy")
	}
}

func TestCalendarHelpers(t *testing.T) {
	if DayOfWeek(0) != time.Monday {
		t.Fatalf("hour 0 = %v, want Monday", DayOfWeek(0))
	}
	if DayOfWeek(5*24) != time.Saturday {
		t.Fatalf("hour 120 = %v, want Saturday", DayOfWeek(5*24))
	}
	if !IsWeekend(5*24) || !IsWeekend(6*24) || IsWeekend(4*24) {
		t.Fatal("weekend detection wrong")
	}
	if HourOfDay(25) != 1 {
		t.Fatalf("HourOfDay(25) = %d", HourOfDay(25))
	}
}

func TestSlice(t *testing.T) {
	s := synth(t, 2, 1)
	week, err := s.Slice(HoursPerWeek, 2*HoursPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	if week.Len() != HoursPerWeek {
		t.Fatalf("slice len %d", week.Len())
	}
	if _, err := s.Slice(-1, 10); err == nil {
		t.Fatal("negative slice accepted")
	}
	if _, err := s.Slice(10, 10); err == nil {
		t.Fatal("empty slice accepted")
	}
}

func TestVehPerSecAt(t *testing.T) {
	s, err := NewSeries([]float64{3600})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.VehPerSecAt(0); got != 1 {
		t.Fatalf("VehPerSecAt = %v, want 1", got)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	if _, err := Synthesize(SyntheticConfig{Weeks: 0}); err == nil {
		t.Fatal("zero weeks accepted")
	}
	if _, err := Synthesize(SyntheticConfig{Weeks: 1, NoiseAR: 1.0}); err == nil {
		t.Fatal("AR=1 accepted")
	}
}

func TestSynthesizeShape(t *testing.T) {
	s := synth(t, 4, 7)
	if s.Len() != 4*HoursPerWeek {
		t.Fatalf("len %d, want %d", s.Len(), 4*HoursPerWeek)
	}
	// Rush hours dominate overnight on weekdays.
	var rush, night float64
	var nRush, nNight int
	for h := 0; h < s.Len(); h++ {
		if IsWeekend(h) {
			continue
		}
		switch HourOfDay(h) {
		case 8, 17:
			rush += s.At(h)
			nRush++
		case 2, 3:
			night += s.At(h)
			nNight++
		}
	}
	if rush/float64(nRush) < 3*night/float64(nNight) {
		t.Fatalf("rush mean %v not well above night mean %v", rush/float64(nRush), night/float64(nNight))
	}
	// Weekends are lighter than weekdays on average.
	var wd, we float64
	var nwd, nwe int
	for h := 0; h < s.Len(); h++ {
		if IsWeekend(h) {
			we += s.At(h)
			nwe++
		} else {
			wd += s.At(h)
			nwd++
		}
	}
	if we/float64(nwe) >= wd/float64(nwd) {
		t.Fatal("weekend volumes should be lighter than weekdays")
	}
	// Never negative.
	if metrics.Min(s.Values) < 0 {
		t.Fatal("negative volume generated")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, b := synth(t, 2, 42), synth(t, 2, 42)
	for h := 0; h < a.Len(); h++ {
		if a.At(h) != b.At(h) {
			t.Fatalf("series diverge at hour %d", h)
		}
	}
	c := synth(t, 2, 43)
	same := true
	for h := 0; h < a.Len(); h++ {
		if a.At(h) != c.At(h) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical series")
	}
}

func TestTrainPredictorValidation(t *testing.T) {
	short, err := NewSeries(make([]float64, 5))
	if err == nil {
		_ = short
	}
	s, err := NewSeries([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainPredictor(s, PredictorConfig{Window: 12}); err == nil {
		t.Fatal("short series accepted")
	}
	if _, err := TrainPredictor(nil, PredictorConfig{}); err == nil {
		t.Fatal("nil series accepted")
	}
	zeros, err := NewSeries(make([]float64, 100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainPredictor(zeros, PredictorConfig{Window: 6}); err == nil {
		t.Fatal("all-zero series accepted")
	}
}

// trainSmall trains a small-but-real predictor shared across tests.
func trainSmall(t *testing.T) (*Predictor, *Series, *Series) {
	t.Helper()
	all := synth(t, 5, 11)
	train, err := all.Slice(0, 4*HoursPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	test, err := all.Slice(4*HoursPerWeek, 5*HoursPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	p, err := TrainPredictor(train, PredictorConfig{
		Window: 8, Hidden: []int{16, 8},
		PretrainEpochs: 8, FinetuneEpochs: 30, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, train, test
}

func TestPredictorAccuracy(t *testing.T) {
	p, _, test := trainSmall(t)
	pred, actual, err := p.PredictSeries(test, 4*HoursPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	mre, err := metrics.MRE(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports MRE < 10% on real data; grant slack for the small
	// test-budget model but require clearly-learned structure.
	if mre > 0.35 {
		t.Fatalf("test MRE %.3f too high; model learned nothing", mre)
	}
	rmse, err := metrics.RMSE(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	if rmse >= metrics.Max(actual)/2 {
		t.Fatalf("RMSE %v not small relative to peak %v", rmse, metrics.Max(actual))
	}
}

func TestPredictorBeatsNaiveMean(t *testing.T) {
	p, train, test := trainSmall(t)
	pred, actual, err := p.PredictSeries(test, 4*HoursPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	mean := metrics.Mean(train.Values)
	naive := make([]float64, len(actual))
	for i := range naive {
		naive[i] = mean
	}
	saeRMSE, _ := metrics.RMSE(pred, actual)
	naiveRMSE, _ := metrics.RMSE(naive, actual)
	if saeRMSE >= naiveRMSE {
		t.Fatalf("SAE RMSE %v should beat constant-mean %v", saeRMSE, naiveRMSE)
	}
}

func TestPredictValidation(t *testing.T) {
	p, _, _ := trainSmall(t)
	if _, err := p.Predict([]float64{1, 2}, 0); err == nil {
		t.Fatal("wrong history length accepted")
	}
	if p.Window() != 8 {
		t.Fatalf("Window = %d", p.Window())
	}
}

func TestPredictNonNegative(t *testing.T) {
	p, _, _ := trainSmall(t)
	hist := make([]float64, 8) // all-zero history
	v, err := p.Predict(hist, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 {
		t.Fatalf("negative prediction %v", v)
	}
}

func TestEvaluateByDayCoversWeek(t *testing.T) {
	p, _, test := trainSmall(t)
	scores, err := p.EvaluateByDay(test, 4*HoursPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 7 {
		t.Fatalf("scores for %d days, want 7: %+v", len(scores), scores)
	}
	seen := map[string]bool{}
	for _, sc := range scores {
		if sc.MRE < 0 || sc.RMSE < 0 {
			t.Fatalf("negative score: %+v", sc)
		}
		if seen[sc.Day] {
			t.Fatalf("duplicate day %s", sc.Day)
		}
		seen[sc.Day] = true
	}
}

func TestPredictSeriesTooShort(t *testing.T) {
	p, _, _ := trainSmall(t)
	s, err := NewSeries(make([]float64, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.PredictSeries(s, 0); err == nil {
		t.Fatal("short test series accepted")
	}
}

// TestPredictAllocs verifies steady-state Predict performs no heap
// allocations once its lazy scratch exists.
func TestPredictAllocs(t *testing.T) {
	s := synth(t, 2, 31)
	p, err := TrainPredictor(s, PredictorConfig{
		Window: 6, Hidden: []int{8}, PretrainEpochs: 1, FinetuneEpochs: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	history := s.Values[:6]
	if _, err := p.Predict(history, 6); err != nil { // warm-up builds scratch
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := p.Predict(history, 6); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Predict allocates %.1f objects per run, want 0", allocs)
	}
}
