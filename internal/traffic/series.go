// Package traffic models the traffic-volume side of the paper: an hourly
// volume series in the style of the SC-DOT loop counters the authors
// trained on (Section III-A-2), a synthetic generator substituting for
// that proprietary feed (documented in DESIGN.md §4), dataset windowing,
// and the SAE-based volume predictor whose output feeds the queue model
// as the vehicle arrival rate V_in.
package traffic

import (
	"evvo/internal/units"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// HoursPerDay and HoursPerWeek size weekly series.
const (
	HoursPerDay  = 24
	HoursPerWeek = 7 * 24
)

// Series is an hourly traffic-volume series (vehicles/hour). Hour 0 is
// midnight Monday; weekday arithmetic follows from the index.
type Series struct {
	// Values[h] is the volume in vehicles/hour for hour h.
	Values []float64
}

// NewSeries validates and wraps hourly values (copied).
func NewSeries(values []float64) (*Series, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("traffic: empty series")
	}
	for i, v := range values {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("traffic: value %g at hour %d invalid", v, i)
		}
	}
	cp := make([]float64, len(values))
	copy(cp, values)
	return &Series{Values: cp}, nil
}

// Len returns the number of hours.
func (s *Series) Len() int { return len(s.Values) }

// At returns the volume at hour h.
func (s *Series) At(h int) float64 { return s.Values[h] }

// HourOfDay returns h mod 24.
func HourOfDay(h int) int { return h % HoursPerDay }

// DayOfWeek returns the weekday for hour h, with hour 0 = Monday.
func DayOfWeek(h int) time.Weekday {
	return time.Weekday((int(time.Monday) + h/HoursPerDay) % 7)
}

// IsWeekend reports whether hour h falls on Saturday or Sunday.
func IsWeekend(h int) bool {
	d := DayOfWeek(h)
	return d == time.Saturday || d == time.Sunday
}

// Slice returns the sub-series covering hours [from, to).
func (s *Series) Slice(from, to int) (*Series, error) {
	if from < 0 || to > len(s.Values) || from >= to {
		return nil, fmt.Errorf("traffic: slice [%d, %d) out of range (len %d)", from, to, len(s.Values))
	}
	return NewSeries(s.Values[from:to])
}

// VehPerSecAt converts the volume at hour h to vehicles/second, the unit
// the queue model consumes.
func (s *Series) VehPerSecAt(h int) float64 { return units.VehPerHourToVehPerSec(s.Values[h]) }

// SyntheticConfig parameterizes the synthetic SC-DOT substitute. The shape
// is a weekday double-peak diurnal curve (AM and PM rush), attenuated
// weekends, AR(1) noise, and sporadic incident spikes.
type SyntheticConfig struct {
	// Weeks of data to generate (required, > 0).
	Weeks int
	// Seed drives all randomness.
	Seed int64
	// BaseVehPerHour is the overnight floor (default 110, typical of a
	// US highway corridor — relative prediction error at night is bounded
	// by this floor).
	BaseVehPerHour float64
	// AMPeakVehPerHour and PMPeakVehPerHour are the rush-hour amplitudes
	// added on top of the base (defaults 260 and 320).
	AMPeakVehPerHour, PMPeakVehPerHour float64
	// WeekendFactor scales weekend volumes (default 0.6).
	WeekendFactor float64
	// NoiseStd is the relative (multiplicative, log-space) AR(1)
	// innovation standard deviation (default 0.06 ≈ ±6%, a stationary
	// hour-to-hour variability of ≈7%, typical of urban loop counters).
	// Real counter noise scales with volume, which keeps night-time
	// relative errors bounded.
	NoiseStd float64
	// NoiseAR is the AR(1) coefficient in [0, 1) (default 0.5).
	NoiseAR float64
	// IncidentPerWeek is the expected number of incident hours per week;
	// an incident multiplies one hour's volume by IncidentFactor
	// (defaults 2 and 1.8).
	IncidentPerWeek float64
	// IncidentFactor multiplies volume during an incident hour.
	IncidentFactor float64
}

func (c *SyntheticConfig) applyDefaults() {
	if c.BaseVehPerHour == 0 {
		c.BaseVehPerHour = 110
	}
	if c.AMPeakVehPerHour == 0 {
		c.AMPeakVehPerHour = 260
	}
	if c.PMPeakVehPerHour == 0 {
		c.PMPeakVehPerHour = 320
	}
	if c.WeekendFactor == 0 {
		c.WeekendFactor = 0.6
	}
	if c.NoiseStd == 0 {
		c.NoiseStd = 0.06
	}
	if c.NoiseAR == 0 {
		c.NoiseAR = 0.5
	}
	if c.IncidentPerWeek == 0 {
		c.IncidentPerWeek = 2
	}
	if c.IncidentFactor == 0 {
		c.IncidentFactor = 1.8
	}
}

// Synthesize generates a deterministic synthetic volume series.
func Synthesize(cfg SyntheticConfig) (*Series, error) {
	cfg.applyDefaults()
	if cfg.Weeks <= 0 {
		return nil, fmt.Errorf("traffic: weeks %d must be positive", cfg.Weeks)
	}
	if cfg.NoiseAR < 0 || cfg.NoiseAR >= 1 {
		return nil, fmt.Errorf("traffic: AR coefficient %g must be in [0, 1)", cfg.NoiseAR)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Weeks * HoursPerWeek
	values := make([]float64, n)
	noise := 0.0
	for h := 0; h < n; h++ {
		hod := float64(HourOfDay(h))
		// Double-peak diurnal curve: Gaussians centred at 08:00 and 17:30.
		am := cfg.AMPeakVehPerHour * math.Exp(-sq(hod-8)/sq(1.6))
		pm := cfg.PMPeakVehPerHour * math.Exp(-sq(hod-17.5)/sq(2.0))
		v := cfg.BaseVehPerHour + am + pm
		if IsWeekend(h) {
			v *= cfg.WeekendFactor
		}
		noise = cfg.NoiseAR*noise + rng.NormFloat64()*cfg.NoiseStd
		v *= math.Exp(noise)
		if rng.Float64() < cfg.IncidentPerWeek/HoursPerWeek {
			v *= cfg.IncidentFactor
		}
		if v < 0 {
			v = 0
		}
		values[h] = v
	}
	return NewSeries(values)
}

func sq(x float64) float64 { return x * x }
