package traffic

import (
	"encoding/json"
	"fmt"
	"io"

	"evvo/internal/neural"
)

// Persistence lets a trained predictor (minutes of training at full
// fidelity) be saved once and loaded by long-running services such as the
// vehicular cloud: an envelope with the windowing metadata, followed by the
// serialized network.

// predictorEnvelope is the metadata document preceding the network.
type predictorEnvelope struct {
	Format  string  `json:"format"`
	Version int     `json:"version"`
	Window  int     `json:"window"`
	Scale   float64 `json:"scale"`
}

// Persistence constants.
const (
	predictorFormat  = "evvo-traffic-predictor"
	predictorVersion = 1
)

// Save writes the predictor (envelope + network) as two consecutive JSON
// documents.
func (p *Predictor) Save(w io.Writer) error {
	env := predictorEnvelope{
		Format: predictorFormat, Version: predictorVersion,
		Window: p.cfg.Window, Scale: p.scale,
	}
	if err := json.NewEncoder(w).Encode(&env); err != nil {
		return fmt.Errorf("traffic: saving predictor envelope: %w", err)
	}
	return p.net.Save(w)
}

// LoadPredictor reads a predictor saved by Save.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	dec := json.NewDecoder(r)
	var env predictorEnvelope
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("traffic: loading predictor envelope: %w", err)
	}
	switch {
	case env.Format != predictorFormat:
		return nil, fmt.Errorf("traffic: format %q, want %q", env.Format, predictorFormat)
	case env.Version != predictorVersion:
		return nil, fmt.Errorf("traffic: predictor version %d unsupported", env.Version)
	case env.Window <= 0:
		return nil, fmt.Errorf("traffic: window %d invalid", env.Window)
	case env.Scale <= 0:
		return nil, fmt.Errorf("traffic: scale %g invalid", env.Scale)
	}
	// The decoder may have buffered part of the network document.
	net, err := neural.Load(io.MultiReader(dec.Buffered(), r))
	if err != nil {
		return nil, err
	}
	if net.InputDim() != featureDim(env.Window) {
		return nil, fmt.Errorf("traffic: network input %d does not match window %d (want %d)",
			net.InputDim(), env.Window, featureDim(env.Window))
	}
	if net.OutputDim() != 1 {
		return nil, fmt.Errorf("traffic: network output %d, want 1", net.OutputDim())
	}
	return &Predictor{cfg: PredictorConfig{Window: env.Window}, net: net, scale: env.Scale}, nil
}
