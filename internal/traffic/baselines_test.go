package traffic

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"evvo/internal/metrics"
	"evvo/internal/neural"
)

func TestSeasonalNaive(t *testing.T) {
	s := synth(t, 3, 8)
	pred, actual, err := SeasonalNaivePredict(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 2*HoursPerWeek || len(pred) != len(actual) {
		t.Fatalf("lengths %d/%d", len(pred), len(actual))
	}
	mre, err := metrics.MRE(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	// Weekly seasonality dominates the synthetic process: last-week must be
	// far better than chance but worse than perfect.
	if mre <= 0 || mre > 0.5 {
		t.Fatalf("seasonal-naive MRE %v implausible", mre)
	}
	short, err := NewSeries(make([]float64, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SeasonalNaivePredict(short); err == nil {
		t.Fatal("short series accepted")
	}
}

func TestFitARRecoversKnownProcess(t *testing.T) {
	// Generate y_t = 5 + 0.6 y_{t−1} + 0.3 y_{t−2} + ε and check the fit
	// recovers the coefficients.
	rng := rand.New(rand.NewSource(4))
	n := 5000
	values := make([]float64, n)
	values[0], values[1] = 50, 50
	for t := 2; t < n; t++ {
		values[t] = 5 + 0.6*values[t-1] + 0.3*values[t-2] + rng.NormFloat64()*2
		if values[t] < 0 {
			values[t] = 0
		}
	}
	s, err := NewSeries(values)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := FitAR(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ar.phi[0]-0.6) > 0.05 || math.Abs(ar.phi[1]-0.3) > 0.05 {
		t.Fatalf("recovered φ = %v, want ≈[0.6, 0.3]", ar.phi)
	}
	if math.Abs(ar.c-5) > 2 {
		t.Fatalf("recovered c = %v, want ≈5", ar.c)
	}
}

func TestFitARValidation(t *testing.T) {
	s := synth(t, 1, 1)
	if _, err := FitAR(s, 0); err == nil {
		t.Fatal("zero order accepted")
	}
	if _, err := FitAR(nil, 2); err == nil {
		t.Fatal("nil series accepted")
	}
	tiny, err := NewSeries([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FitAR(tiny, 5); err == nil {
		t.Fatal("short series accepted")
	}
}

func TestARPredictValidation(t *testing.T) {
	ar, err := FitAR(synth(t, 2, 2), 3)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Order() != 3 {
		t.Fatalf("Order = %d", ar.Order())
	}
	if _, err := ar.Predict([]float64{1}); err == nil {
		t.Fatal("short history accepted")
	}
	if _, _, err := ar.PredictSeries(nil); err == nil {
		t.Fatal("nil test series accepted")
	}
}

func TestARBeatsConstantMean(t *testing.T) {
	all := synth(t, 5, 6)
	train, err := all.Slice(0, 4*HoursPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	test, err := all.Slice(4*HoursPerWeek, 5*HoursPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := FitAR(train, 24)
	if err != nil {
		t.Fatal(err)
	}
	pred, actual, err := ar.PredictSeries(test)
	if err != nil {
		t.Fatal(err)
	}
	arRMSE, err := metrics.RMSE(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	mean := metrics.Mean(train.Values)
	naive := make([]float64, len(actual))
	for i := range naive {
		naive[i] = mean
	}
	meanRMSE, _ := metrics.RMSE(naive, actual)
	if arRMSE >= meanRMSE {
		t.Fatalf("AR(24) RMSE %v should beat constant mean %v", arRMSE, meanRMSE)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}} // rank 1
	if _, err := solveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("singular system accepted")
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	// 2x + y = 5; x − y = 1 → x = 2, y = 1.
	a := [][]float64{{2, 1}, {1, -1}}
	x, err := solveLinear(a, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("solution %v, want [2, 1]", x)
	}
}

func TestPredictorSaveLoad(t *testing.T) {
	p, _, test := trainSmall(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Window() != p.Window() {
		t.Fatalf("window %d vs %d", loaded.Window(), p.Window())
	}
	// Bit-identical forecasts.
	a, _, err := p.PredictSeries(test, 4*HoursPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := loaded.PredictSeries(test, 4*HoursPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("forecast %d diverges: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLoadPredictorRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "{nope",
		"wrong format":  `{"format":"x","version":1,"window":4,"scale":1}`,
		"wrong version": `{"format":"evvo-traffic-predictor","version":9,"window":4,"scale":1}`,
		"bad window":    `{"format":"evvo-traffic-predictor","version":1,"window":0,"scale":1}`,
		"bad scale":     `{"format":"evvo-traffic-predictor","version":1,"window":4,"scale":0}`,
		"no network":    `{"format":"evvo-traffic-predictor","version":1,"window":4,"scale":1}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadPredictor(strings.NewReader(in)); err == nil {
				t.Fatalf("accepted %q", in)
			}
		})
	}
}

func TestLoadPredictorRejectsShapeMismatch(t *testing.T) {
	// Envelope window 4 (feature dim 15) but a network with input 3.
	var buf bytes.Buffer
	buf.WriteString(`{"format":"evvo-traffic-predictor","version":1,"window":4,"scale":1}` + "\n")
	net, err := neural.NewNetwork([]int{3, 1}, []neural.Activation{neural.ActIdentity},
		rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictor(&buf); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
