package ev

import (
	"fmt"
	"math"

	"evvo/internal/units"
)

// WearModel estimates battery-lifetime consumption, the motivation the
// paper opens with ("frequent charging/discharging reduces battery
// lifetime"): cell wear grows with charge throughput and superlinearly
// with C-rate, so two trips of equal net energy can age the pack very
// differently depending on how spiky their current draw is.
//
// The model is a standard throughput counter with a C-rate stress factor:
//
//	wear = ∫ |ζ(t)| · (1 + StressK · |ζ(t)|/Q) dt / (2·Q)
//
// expressed in equivalent full cycles (a full discharge plus a full charge
// at negligible C-rate is one cycle).
type WearModel struct {
	// Pack supplies Q (capacity) for C-rate normalization.
	Pack Params
	// StressK scales the linear C-rate stress term (default 0.5: a
	// sustained 2C draw wears twice as fast per amp-hour as a trickle).
	StressK float64
}

// NewWearModel validates the pack and applies defaults.
func NewWearModel(pack Params) (*WearModel, error) {
	if err := pack.Validate(); err != nil {
		return nil, err
	}
	return &WearModel{Pack: pack, StressK: 0.5}, nil
}

// StepWear returns the equivalent-full-cycle wear of drawing (or
// regenerating) at charge rate zeta amperes for dt seconds.
func (m *WearModel) StepWear(zeta, dt float64) float64 {
	if dt <= 0 {
		return 0
	}
	amps := math.Abs(zeta)
	cRate := amps / m.Pack.PackCapacityAh
	stress := 1 + m.StressK*cRate
	// |ζ|·dt is charge moved in ampere-seconds; 2·Q·3600 ampere-seconds
	// round-trip is one full cycle.
	return amps * stress * dt / (2 * units.AhToCoulombs(m.Pack.PackCapacityAh))
}

// SegmentWear returns the wear of traversing a segment entering at v0 and
// leaving at v1 over ds metres on gradient theta (constant acceleration).
func (m *WearModel) SegmentWear(v0, v1, ds, theta float64) (float64, error) {
	if ds <= 0 {
		if ds == 0 {
			return 0, nil
		}
		return 0, fmt.Errorf("ev: segment length %.3f m must be non-negative", ds)
	}
	vAvg := (v0 + v1) / 2
	if vAvg <= 0 {
		return 0, ErrUnreachable
	}
	dt := ds / vAvg
	zeta := m.Pack.ChargeRate(vAvg, (v1-v0)/dt, theta)
	return m.StepWear(zeta, dt), nil
}

// CyclesToEndOfLife is the conventional 80%-capacity cycle life used to
// express wear as a fraction of pack lifetime.
const CyclesToEndOfLife = 1500

// LifetimeFraction converts equivalent full cycles into the fraction of
// pack life consumed.
func LifetimeFraction(cycles float64) float64 {
	return cycles / CyclesToEndOfLife
}
