// Package ev implements the pure-electric-vehicle energy consumption model
// from Kang et al., "Velocity Optimization of Pure Electric Vehicles with
// Traffic Dynamics Consideration" (ICDCS 2017), Section II-A.
//
// The model computes the longitudinal drive force (Eq. 1), converts it to an
// electrical charge-consumption rate ζ through the battery pack (Eq. 3), and
// integrates ζ over velocity profiles to obtain total charge in ampere-hours
// (Eq. 2). Deceleration yields negative consumption (regenerative braking),
// scaled by a regeneration efficiency.
//
// All quantities are SI unless a name says otherwise: metres, seconds,
// kilograms, newtons, watts, joules, volts, amperes. Reported charge uses
// ampere-hours (Ah) or milliampere-hours (mAh) to match the paper's axes.
package ev

import (
	"errors"
	"fmt"
	"math"

	"evvo/internal/units"
)

// Gravity is the standard gravitational acceleration in m/s².
const Gravity = 9.80665

// Params describes a pure EV for the energy model. The zero value is not
// usable; construct with a factory such as SparkEV or validate with Validate.
type Params struct {
	// MassKg is the gross vehicle mass m in kg (vehicle + payload).
	MassKg float64
	// FrontalAreaM2 is the projected frontal area A_f in m².
	FrontalAreaM2 float64
	// DragCoeff is the aerodynamic drag coefficient C_d (dimensionless).
	DragCoeff float64
	// RollCoeff is the rolling-resistance coefficient µ (dimensionless).
	RollCoeff float64
	// AirDensity is ρ in kg/m³.
	AirDensity float64
	// PackVoltage is the nominal battery pack voltage U in volts.
	PackVoltage float64
	// PackCapacityAh is the total pack capacity Q_max in ampere-hours.
	PackCapacityAh float64
	// EtaBattery is the battery energy-transforming efficiency η₁ in (0, 1].
	EtaBattery float64
	// EtaPowertrain is the powertrain working efficiency η₂ in (0, 1].
	EtaPowertrain float64
	// EtaRegen is the fraction of braking power recovered into the pack
	// during regenerative braking, in [0, 1]. The paper's model shows
	// negative consumption under deceleration; EtaRegen scales it.
	EtaRegen float64
	// MaxPowerKW bounds the motor's tractive power; 0 means unlimited.
	// The bound does not change the ζ formula — it defines which (v, a)
	// operating points are achievable (see WithinPowerLimit, MaxAccelAt).
	MaxPowerKW float64
	// MaxRegenPowerKW bounds braking power recoverable through the motor;
	// 0 means unlimited. Decelerations beyond it are achievable with
	// friction brakes but recover no extra energy.
	MaxRegenPowerKW float64
}

// SparkEV returns the Chevrolet Spark EV parameterization used in the
// paper's evaluation (Section III-A-1): m = 1300 kg, A_f = 2.2 m²,
// C_d = 0.33, µ = 0.018, pack 399 V / 46.2 Ah (2P×108S Sony VTC4 cells),
// η₁ = 0.95, η₂ = 0.90. Values garbled by the OCR'd text are resolved to
// the physically standard published figures and documented in DESIGN.md.
func SparkEV() Params {
	return Params{
		MassKg:          1300,
		FrontalAreaM2:   2.2,
		DragCoeff:       0.33,
		RollCoeff:       0.018,
		AirDensity:      1.2041,
		PackVoltage:     399,
		PackCapacityAh:  46.2,
		EtaBattery:      0.95,
		EtaPowertrain:   0.90,
		EtaRegen:        0.65,
		MaxPowerKW:      100, // 97 kW rated motor, rounded
		MaxRegenPowerKW: 60,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.MassKg <= 0:
		return fmt.Errorf("ev: mass %.3f kg must be positive", p.MassKg)
	case p.FrontalAreaM2 <= 0:
		return fmt.Errorf("ev: frontal area %.3f m² must be positive", p.FrontalAreaM2)
	case p.DragCoeff < 0:
		return fmt.Errorf("ev: drag coefficient %.3f must be non-negative", p.DragCoeff)
	case p.RollCoeff < 0:
		return fmt.Errorf("ev: rolling coefficient %.4f must be non-negative", p.RollCoeff)
	case p.AirDensity <= 0:
		return fmt.Errorf("ev: air density %.3f kg/m³ must be positive", p.AirDensity)
	case p.PackVoltage <= 0:
		return fmt.Errorf("ev: pack voltage %.1f V must be positive", p.PackVoltage)
	case p.PackCapacityAh <= 0:
		return fmt.Errorf("ev: pack capacity %.1f Ah must be positive", p.PackCapacityAh)
	case p.EtaBattery <= 0 || p.EtaBattery > 1:
		return fmt.Errorf("ev: battery efficiency %.3f must be in (0, 1]", p.EtaBattery)
	case p.EtaPowertrain <= 0 || p.EtaPowertrain > 1:
		return fmt.Errorf("ev: powertrain efficiency %.3f must be in (0, 1]", p.EtaPowertrain)
	case p.EtaRegen < 0 || p.EtaRegen > 1:
		return fmt.Errorf("ev: regen efficiency %.3f must be in [0, 1]", p.EtaRegen)
	case p.MaxPowerKW < 0 || p.MaxRegenPowerKW < 0:
		return fmt.Errorf("ev: power limits %.1f/%.1f kW must be non-negative", p.MaxPowerKW, p.MaxRegenPowerKW)
	}
	return nil
}

// DriveForce returns F_drive in newtons for velocity v (m/s), acceleration a
// (m/s²) and road gradient theta (radians), per Eq. (1):
//
//	F = m·a + ½·ρ·A_f·C_d·v² + m·g·sin θ + µ·m·g·cos θ
//
// Rolling resistance always opposes motion; at standstill (v = 0, a = 0) it
// is zero rather than a phantom holding force.
func (p Params) DriveForce(v, a, theta float64) float64 {
	inertial := p.MassKg * a
	aero := 0.5 * p.AirDensity * p.FrontalAreaM2 * p.DragCoeff * v * v
	grade := p.MassKg * Gravity * math.Sin(theta)
	roll := p.RollCoeff * p.MassKg * Gravity * math.Cos(theta)
	if v == 0 && a == 0 {
		roll = 0
	}
	return inertial + aero + grade + roll
}

// TractivePower returns the mechanical power F·v in watts at the wheels.
// Negative values indicate braking power available for regeneration.
func (p Params) TractivePower(v, a, theta float64) float64 {
	return p.DriveForce(v, a, theta) * v
}

// ChargeRate returns ζ, the pack charge-consumption rate in amperes, for
// velocity v (m/s), acceleration a (m/s²) and gradient theta (radians),
// per Eq. (3): ζ = F·v / (U·η₁·η₂). Under braking (F·v < 0) the sign flips
// and the efficiencies invert: the pack absorbs F·v·η₁·η₂·η_regen / U.
func (p Params) ChargeRate(v, a, theta float64) float64 {
	pw := p.TractivePower(v, a, theta)
	eta := p.EtaBattery * p.EtaPowertrain
	if pw >= 0 {
		return pw / (p.PackVoltage * eta)
	}
	recoverable := -pw
	if maxW := units.KWToW(p.MaxRegenPowerKW); p.MaxRegenPowerKW > 0 && recoverable > maxW {
		recoverable = maxW // excess goes to friction brakes
	}
	return -recoverable * eta * p.EtaRegen / p.PackVoltage
}

// Charge returns the pack charge consumed in ampere-hours over an interval
// of dt seconds at constant velocity v, acceleration a and gradient theta.
func (p Params) Charge(v, a, theta, dt float64) float64 {
	return units.CoulombsToAh(p.ChargeRate(v, a, theta) * dt)
}

// EnergyJoules returns the electrical energy drawn from the pack in joules
// over dt seconds (negative when regenerating).
func (p Params) EnergyJoules(v, a, theta, dt float64) float64 {
	return units.AhToCoulombs(p.Charge(v, a, theta, dt)) * p.PackVoltage
}

// PackEnergyJoules returns the total usable pack energy U·Q_max in joules.
func (p Params) PackEnergyJoules() float64 {
	return p.PackVoltage * units.AhToCoulombs(p.PackCapacityAh)
}

// SegmentCharge returns the charge in Ah to traverse a segment of length ds
// metres entering at speed v0 and leaving at speed v1 (m/s) under constant
// acceleration, on gradient theta. It also returns the traversal time in
// seconds. ErrUnreachable is returned when both speeds are zero but ds > 0
// (the segment cannot be covered).
func (p Params) SegmentCharge(v0, v1, ds, theta float64) (ah, dt float64, err error) {
	if ds < 0 {
		return 0, 0, fmt.Errorf("ev: segment length %.3f m must be non-negative: %w", ds, ErrUnreachable)
	}
	if ds == 0 {
		return 0, 0, nil
	}
	vAvg := (v0 + v1) / 2
	if vAvg <= 0 {
		return 0, 0, fmt.Errorf("ev: average speed %.3f m/s over %.1f m: %w", vAvg, ds, ErrUnreachable)
	}
	dt = ds / vAvg
	a := (v1 - v0) / dt
	return p.Charge(vAvg, a, theta, dt), dt, nil
}

// ErrUnreachable indicates a segment traversal with no positive average
// speed, which would take infinite time.
var ErrUnreachable = errors.New("segment unreachable at zero average speed")

// WithinPowerLimit reports whether the operating point (v, a, θ) respects
// the motor's tractive power bound. Braking points always return true: a
// regen shortfall goes to friction brakes, it does not make the point
// unreachable.
func (p Params) WithinPowerLimit(v, a, theta float64) bool {
	if p.MaxPowerKW <= 0 {
		return true
	}
	pw := p.TractivePower(v, a, theta)
	return pw <= units.KWToW(p.MaxPowerKW)+1e-9
}

// MaxAccelAt returns the acceleration achievable at speed v on gradient
// theta under the motor power bound: a = (P_max/v − F_resist)/m. It returns
// +Inf when the bound is absent or v is (near) zero, where power does not
// limit launch torque in this model.
func (p Params) MaxAccelAt(v, theta float64) float64 {
	if p.MaxPowerKW <= 0 || v < 0.5 {
		return math.Inf(1)
	}
	resist := p.DriveForce(v, 0, theta)
	return (units.KWToW(p.MaxPowerKW)/v - resist) / p.MassKg
}

// StateOfCharge tracks pack state of charge over a drive.
// The zero value is invalid; use NewStateOfCharge.
type StateOfCharge struct {
	params Params
	usedAh float64
}

// NewStateOfCharge returns a tracker starting from a full pack.
func NewStateOfCharge(p Params) *StateOfCharge {
	return &StateOfCharge{params: p}
}

// Consume records ah ampere-hours of consumption (negative = regen). Regen
// cannot push the pack above full charge.
func (s *StateOfCharge) Consume(ah float64) {
	s.usedAh += ah
	if s.usedAh < 0 {
		s.usedAh = 0
	}
}

// UsedAh returns net ampere-hours drawn since the start.
func (s *StateOfCharge) UsedAh() float64 { return s.usedAh }

// Fraction returns the remaining state of charge in [0, 1].
func (s *StateOfCharge) Fraction() float64 {
	f := 1 - s.usedAh/s.params.PackCapacityAh
	if f < 0 {
		return 0
	}
	return f
}

// KmPerKWh is a convenience for reporting: distance (m) per energy (J)
// expressed in km/kWh. Returns +Inf when joules is zero or negative and
// meters is positive (net regen over the distance).
func KmPerKWh(meters, joules float64) float64 {
	if joules <= 0 {
		if meters > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return units.MToKm(meters) / units.JToKWh(joules)
}
