package ev

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewWearModelValidation(t *testing.T) {
	if _, err := NewWearModel(Params{}); err == nil {
		t.Fatal("invalid pack accepted")
	}
	m, err := NewWearModel(SparkEV())
	if err != nil {
		t.Fatal(err)
	}
	if m.StressK != 0.5 {
		t.Fatalf("default StressK = %v", m.StressK)
	}
}

func TestStepWearBasics(t *testing.T) {
	m, _ := NewWearModel(SparkEV())
	if w := m.StepWear(10, 0); w != 0 {
		t.Fatalf("zero-duration wear = %v", w)
	}
	if w := m.StepWear(0, 100); w != 0 {
		t.Fatalf("zero-current wear = %v", w)
	}
	// Symmetric in sign: regen moves charge too.
	if a, b := m.StepWear(20, 10), m.StepWear(-20, 10); a != b {
		t.Fatalf("wear asymmetric in sign: %v vs %v", a, b)
	}
}

func TestStepWearFullCycleCalibration(t *testing.T) {
	// Moving 2·Q ampere-hours at negligible C-rate is one full cycle.
	m, _ := NewWearModel(SparkEV())
	m.StressK = 0
	q := m.Pack.PackCapacityAh
	// Draw 1 A for 2·Q hours.
	w := m.StepWear(1, 2*q*3600)
	if math.Abs(w-1) > 1e-9 {
		t.Fatalf("full-cycle wear = %v, want 1", w)
	}
}

func TestStepWearCRateStress(t *testing.T) {
	// The same charge moved at double the C-rate must wear more.
	m, _ := NewWearModel(SparkEV())
	slow := m.StepWear(10, 200) // 2000 A·s
	fast := m.StepWear(20, 100) // 2000 A·s, twice the rate
	if fast <= slow {
		t.Fatalf("high C-rate wear %v not above low-rate %v", fast, slow)
	}
}

func TestSegmentWear(t *testing.T) {
	m, _ := NewWearModel(SparkEV())
	w, err := m.SegmentWear(10, 14, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 {
		t.Fatalf("accelerating segment wear = %v", w)
	}
	if _, err := m.SegmentWear(0, 0, 100, 0); err == nil {
		t.Fatal("unreachable segment accepted")
	}
	if w, err := m.SegmentWear(5, 5, 0, 0); err != nil || w != 0 {
		t.Fatalf("zero-length segment = (%v, %v)", w, err)
	}
	if _, err := m.SegmentWear(5, 5, -1, 0); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestLifetimeFraction(t *testing.T) {
	if f := LifetimeFraction(CyclesToEndOfLife); f != 1 {
		t.Fatalf("full-life fraction = %v", f)
	}
	if f := LifetimeFraction(15); math.Abs(f-0.01) > 1e-12 {
		t.Fatalf("15 cycles = %v of life, want 0.01", f)
	}
}

// Property: wear is additive over time splits.
func TestPropWearAdditive(t *testing.T) {
	m, _ := NewWearModel(SparkEV())
	f := func(zRaw, dtRaw float64) bool {
		z := math.Mod(zRaw, 200)
		dt := math.Mod(math.Abs(dtRaw), 100) + 0.1
		whole := m.StepWear(z, dt)
		halves := m.StepWear(z, dt/2) * 2
		return math.Abs(whole-halves) < 1e-12*math.Max(1, whole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: wear is strictly increasing in |ζ| (superlinear with stress).
func TestPropWearMonotoneInCurrent(t *testing.T) {
	m, _ := NewWearModel(SparkEV())
	f := func(aRaw, bRaw float64) bool {
		a := math.Mod(math.Abs(aRaw), 300)
		b := math.Mod(math.Abs(bRaw), 300)
		if a == b {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return m.StepWear(a, 10) < m.StepWear(b, 10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
