package ev_test

import (
	"fmt"

	"evvo/internal/ev"
)

// ExampleParams_ChargeRate evaluates the paper's Eq. (3) at a traction
// point and a regenerative-braking point.
func ExampleParams_ChargeRate() {
	spark := ev.SparkEV()
	accel := spark.ChargeRate(15, 1.0, 0)  // 54 km/h, accelerating
	brake := spark.ChargeRate(15, -1.5, 0) // 54 km/h, braking hard
	fmt.Printf("accelerating: %.1f A\n", accel)
	fmt.Printf("braking:      %.1f A (negative = regeneration)\n", brake)
	// Output:
	// accelerating: 71.6 A
	// braking:      -33.9 A (negative = regeneration)
}

// ExampleWearModel_StepWear compares the battery wear of moving the same
// charge gently versus violently — the lifetime motivation of the paper's
// introduction.
func ExampleWearModel_StepWear() {
	m, err := ev.NewWearModel(ev.SparkEV())
	if err != nil {
		panic(err)
	}
	gentle := m.StepWear(20, 100) // 20 A for 100 s
	harsh := m.StepWear(200, 10)  // the same 2000 A·s at ten times the rate
	fmt.Printf("harsh draw wears %.2fx more than gentle\n", harsh/gentle)
	// Output:
	// harsh draw wears 2.60x more than gentle
}
