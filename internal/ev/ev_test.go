package ev

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSparkEVValidates(t *testing.T) {
	if err := SparkEV().Validate(); err != nil {
		t.Fatalf("SparkEV() invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := SparkEV()
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero mass", func(p *Params) { p.MassKg = 0 }},
		{"negative mass", func(p *Params) { p.MassKg = -1 }},
		{"zero frontal area", func(p *Params) { p.FrontalAreaM2 = 0 }},
		{"negative drag", func(p *Params) { p.DragCoeff = -0.1 }},
		{"negative roll", func(p *Params) { p.RollCoeff = -0.01 }},
		{"zero air density", func(p *Params) { p.AirDensity = 0 }},
		{"zero voltage", func(p *Params) { p.PackVoltage = 0 }},
		{"zero capacity", func(p *Params) { p.PackCapacityAh = 0 }},
		{"battery eta zero", func(p *Params) { p.EtaBattery = 0 }},
		{"battery eta above one", func(p *Params) { p.EtaBattery = 1.01 }},
		{"powertrain eta zero", func(p *Params) { p.EtaPowertrain = 0 }},
		{"powertrain eta above one", func(p *Params) { p.EtaPowertrain = 1.2 }},
		{"regen negative", func(p *Params) { p.EtaRegen = -0.1 }},
		{"regen above one", func(p *Params) { p.EtaRegen = 1.1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatalf("Validate() accepted %+v", p)
			}
		})
	}
}

func TestDriveForceAtRestIsZeroOnFlat(t *testing.T) {
	p := SparkEV()
	if f := p.DriveForce(0, 0, 0); f != 0 {
		t.Fatalf("DriveForce(0,0,0) = %.3f N, want 0 (no phantom holding force)", f)
	}
}

func TestDriveForceComponents(t *testing.T) {
	p := SparkEV()
	// At constant speed on flat ground, force = aero + rolling.
	v := 20.0
	aero := 0.5 * p.AirDensity * p.FrontalAreaM2 * p.DragCoeff * v * v
	roll := p.RollCoeff * p.MassKg * Gravity
	got := p.DriveForce(v, 0, 0)
	if !almostEqual(got, aero+roll, 1e-9) {
		t.Fatalf("DriveForce(%v,0,0) = %.6f, want aero+roll = %.6f", v, got, aero+roll)
	}
}

func TestDriveForceInertialTerm(t *testing.T) {
	p := SparkEV()
	v, a := 15.0, 1.0
	withAccel := p.DriveForce(v, a, 0)
	coasting := p.DriveForce(v, 0, 0)
	if !almostEqual(withAccel-coasting, p.MassKg*a, 1e-9) {
		t.Fatalf("inertial term = %.4f, want m*a = %.4f", withAccel-coasting, p.MassKg*a)
	}
}

func TestDriveForceGradeTerm(t *testing.T) {
	p := SparkEV()
	v := 10.0
	theta := 0.05 // ~2.9% grade
	up := p.DriveForce(v, 0, theta)
	flat := p.DriveForce(v, 0, 0)
	wantExtra := p.MassKg*Gravity*math.Sin(theta) + p.RollCoeff*p.MassKg*Gravity*(math.Cos(theta)-1)
	if !almostEqual(up-flat, wantExtra, 1e-9) {
		t.Fatalf("grade delta = %.4f, want %.4f", up-flat, wantExtra)
	}
}

func TestDriveForceDownhillCanBeNegative(t *testing.T) {
	p := SparkEV()
	// Steep downhill, slow speed: gravity dominates.
	f := p.DriveForce(2, 0, -0.15)
	if f >= 0 {
		t.Fatalf("DriveForce downhill = %.3f N, want negative", f)
	}
}

func TestChargeRateSignConvention(t *testing.T) {
	p := SparkEV()
	if z := p.ChargeRate(20, 1.0, 0); z <= 0 {
		t.Fatalf("accelerating charge rate = %.4f A, want positive", z)
	}
	if z := p.ChargeRate(20, -1.5, 0); z >= 0 {
		t.Fatalf("hard-braking charge rate = %.4f A, want negative (regen)", z)
	}
}

func TestChargeRateEfficiencyDirection(t *testing.T) {
	p := SparkEV()
	// Traction: consumption exceeds the ideal F·v/U because η < 1.
	v, a := 20.0, 0.5
	ideal := p.TractivePower(v, a, 0) / p.PackVoltage
	if z := p.ChargeRate(v, a, 0); z <= ideal {
		t.Fatalf("traction ζ = %.4f, want > ideal %.4f (efficiency loss)", z, ideal)
	}
	// Regen: recovered charge is less than the ideal |F·v|/U.
	a = -1.5
	idealRegen := -p.TractivePower(v, a, 0) / p.PackVoltage // positive magnitude
	if got := -p.ChargeRate(v, a, 0); got >= idealRegen {
		t.Fatalf("regen recovery %.4f, want < ideal %.4f", got, idealRegen)
	}
}

func TestChargeRateIncreasesWithAcceleration(t *testing.T) {
	p := SparkEV()
	v := 15.0
	prev := math.Inf(-1)
	for a := -1.5; a <= 2.5; a += 0.25 {
		z := p.ChargeRate(v, a, 0)
		if z < prev {
			t.Fatalf("ζ not monotone in a at v=%v: ζ(%.2f)=%.4f < ζ(prev)=%.4f", v, a, z, prev)
		}
		prev = z
	}
}

func TestChargeRateZeroRegenEfficiency(t *testing.T) {
	p := SparkEV()
	p.EtaRegen = 0
	if z := p.ChargeRate(20, -1.5, 0); z != 0 {
		t.Fatalf("ζ with EtaRegen=0 braking = %.5f, want 0", z)
	}
}

func TestChargeIntegratesRate(t *testing.T) {
	p := SparkEV()
	v, a, dt := 18.0, 0.3, 7.0
	want := p.ChargeRate(v, a, 0) * dt / 3600
	if got := p.Charge(v, a, 0, dt); !almostEqual(got, want, 1e-12) {
		t.Fatalf("Charge = %.9f Ah, want %.9f", got, want)
	}
}

func TestEnergyJoulesConsistentWithCharge(t *testing.T) {
	p := SparkEV()
	ah := p.Charge(22, 0.8, 0, 10)
	j := p.EnergyJoules(22, 0.8, 0, 10)
	if !almostEqual(j, ah*3600*p.PackVoltage, 1e-9) {
		t.Fatalf("EnergyJoules = %.4f, want %.4f", j, ah*3600*p.PackVoltage)
	}
}

func TestPackEnergyJoules(t *testing.T) {
	p := SparkEV()
	want := 399.0 * 46.2 * 3600
	if got := p.PackEnergyJoules(); !almostEqual(got, want, 1e-6) {
		t.Fatalf("PackEnergyJoules = %.1f, want %.1f", got, want)
	}
}

func TestSegmentChargeBasic(t *testing.T) {
	p := SparkEV()
	ah, dt, err := p.SegmentCharge(10, 14, 120, 0)
	if err != nil {
		t.Fatalf("SegmentCharge: %v", err)
	}
	wantDt := 120.0 / 12.0
	if !almostEqual(dt, wantDt, 1e-12) {
		t.Fatalf("dt = %.6f, want %.6f", dt, wantDt)
	}
	wantAh := p.Charge(12, 4.0/wantDt, 0, wantDt)
	if !almostEqual(ah, wantAh, 1e-12) {
		t.Fatalf("ah = %.9f, want %.9f", ah, wantAh)
	}
}

func TestSegmentChargeZeroLength(t *testing.T) {
	p := SparkEV()
	ah, dt, err := p.SegmentCharge(5, 5, 0, 0)
	if err != nil || ah != 0 || dt != 0 {
		t.Fatalf("SegmentCharge zero length = (%v, %v, %v), want (0, 0, nil)", ah, dt, err)
	}
}

func TestSegmentChargeUnreachable(t *testing.T) {
	p := SparkEV()
	if _, _, err := p.SegmentCharge(0, 0, 50, 0); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("SegmentCharge(0,0,50) err = %v, want ErrUnreachable", err)
	}
	if _, _, err := p.SegmentCharge(1, 1, -3, 0); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("SegmentCharge negative length err = %v, want ErrUnreachable", err)
	}
}

func TestStateOfChargeTracksConsumption(t *testing.T) {
	p := SparkEV()
	soc := NewStateOfCharge(p)
	if f := soc.Fraction(); f != 1 {
		t.Fatalf("initial Fraction = %v, want 1", f)
	}
	soc.Consume(4.62) // 10% of pack
	if f := soc.Fraction(); !almostEqual(f, 0.9, 1e-12) {
		t.Fatalf("Fraction after 10%% draw = %v, want 0.9", f)
	}
	if u := soc.UsedAh(); !almostEqual(u, 4.62, 1e-12) {
		t.Fatalf("UsedAh = %v, want 4.62", u)
	}
}

func TestStateOfChargeRegenClampsAtFull(t *testing.T) {
	soc := NewStateOfCharge(SparkEV())
	soc.Consume(-5) // regen on a full pack
	if f := soc.Fraction(); f != 1 {
		t.Fatalf("Fraction after regen on full pack = %v, want 1", f)
	}
}

func TestStateOfChargeFloorsAtEmpty(t *testing.T) {
	soc := NewStateOfCharge(SparkEV())
	soc.Consume(1000)
	if f := soc.Fraction(); f != 0 {
		t.Fatalf("Fraction after over-draw = %v, want 0", f)
	}
}

func TestKmPerKWh(t *testing.T) {
	// 1 km on 0.1 kWh => 10 km/kWh.
	if got := KmPerKWh(1000, 3.6e5); !almostEqual(got, 10, 1e-9) {
		t.Fatalf("KmPerKWh = %v, want 10", got)
	}
	if got := KmPerKWh(1000, 0); !math.IsInf(got, 1) {
		t.Fatalf("KmPerKWh with zero energy = %v, want +Inf", got)
	}
	if got := KmPerKWh(0, 0); got != 0 {
		t.Fatalf("KmPerKWh(0,0) = %v, want 0", got)
	}
}

// Property: drive force is exactly linear in acceleration.
func TestPropDriveForceLinearInAcceleration(t *testing.T) {
	p := SparkEV()
	f := func(v, a1, a2 float64) bool {
		// Avoid the (v=0, a=0) standstill corner, where rolling resistance
		// is deliberately zeroed and linearity in a does not hold.
		v = math.Mod(math.Abs(v), 40) + 0.01
		a1 = math.Mod(a1, 3)
		a2 = math.Mod(a2, 3)
		d := p.DriveForce(v, a1, 0) - p.DriveForce(v, a2, 0)
		return almostEqual(d, p.MassKg*(a1-a2), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: aero drag is even in v only through v²; force grows with speed
// at fixed non-negative acceleration.
func TestPropDriveForceMonotoneInSpeed(t *testing.T) {
	p := SparkEV()
	f := func(v float64, dv float64) bool {
		v = math.Mod(math.Abs(v), 40)
		dv = math.Mod(math.Abs(dv), 10) + 0.01
		return p.DriveForce(v+dv, 0.5, 0) > p.DriveForce(v, 0.5, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: charge over an interval scales linearly with duration.
func TestPropChargeLinearInTime(t *testing.T) {
	p := SparkEV()
	f := func(v, a, dt float64) bool {
		v = math.Mod(math.Abs(v), 40)
		a = math.Mod(a, 2.5)
		dt = math.Mod(math.Abs(dt), 100) + 0.1
		twice := p.Charge(v, a, 0, 2*dt)
		once := p.Charge(v, a, 0, dt)
		return almostEqual(twice, 2*once, 1e-9*math.Max(1, math.Abs(twice)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: regen never recovers more than traction spent over the same
// speed change magnitude (second law sanity).
func TestPropRegenNeverExceedsTraction(t *testing.T) {
	p := SparkEV()
	f := func(v, a float64) bool {
		v = math.Mod(math.Abs(v), 40) + 1
		a = math.Mod(math.Abs(a), 1.5) + 0.01
		spend := p.ChargeRate(v, a, 0)
		recover := -p.ChargeRate(v, -a, 0)
		return recover < spend
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkChargeRate(b *testing.B) {
	p := SparkEV()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.ChargeRate(20, 0.5, 0.01)
	}
	_ = sink
}

func TestWithinPowerLimit(t *testing.T) {
	p := SparkEV()
	// Modest point: well inside a 100 kW envelope.
	if !p.WithinPowerLimit(15, 1.0, 0) {
		t.Fatal("15 m/s at 1 m/s² should be within 100 kW")
	}
	// Extreme point: 2.5 m/s² at 30 m/s needs ≈ (3250+900)·30 ≈ 120 kW.
	if p.WithinPowerLimit(30, 2.5, 0) {
		t.Fatal("30 m/s at 2.5 m/s² should exceed 100 kW")
	}
	// Braking is never power-infeasible (friction brakes).
	if !p.WithinPowerLimit(30, -3.0, 0) {
		t.Fatal("braking flagged as power-infeasible")
	}
	// Unlimited configuration.
	p.MaxPowerKW = 0
	if !p.WithinPowerLimit(30, 2.5, 0) {
		t.Fatal("unlimited power flagged a point")
	}
}

func TestMaxAccelAt(t *testing.T) {
	p := SparkEV()
	a := p.MaxAccelAt(20, 0)
	if a <= 0 || math.IsInf(a, 1) {
		t.Fatalf("MaxAccelAt(20) = %v, want finite positive", a)
	}
	// The returned accel must sit exactly on the power envelope.
	if pw := p.TractivePower(20, a, 0); !almostEqual(pw, p.MaxPowerKW*1000, 1) {
		t.Fatalf("power at returned accel = %v W, want %v", pw, p.MaxPowerKW*1000)
	}
	if !math.IsInf(p.MaxAccelAt(0, 0), 1) {
		t.Fatal("launch accel should be unbounded by power in this model")
	}
	p.MaxPowerKW = 0
	if !math.IsInf(p.MaxAccelAt(20, 0), 1) {
		t.Fatal("unlimited power should give +Inf")
	}
}

// Property: MaxAccelAt is decreasing in speed (fixed power envelope).
func TestPropMaxAccelDecreasingInSpeed(t *testing.T) {
	p := SparkEV()
	f := func(vRaw, dvRaw float64) bool {
		v := math.Mod(math.Abs(vRaw), 30) + 1
		dv := math.Mod(math.Abs(dvRaw), 10) + 0.1
		return p.MaxAccelAt(v+dv, 0) < p.MaxAccelAt(v, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsNegativePowerLimits(t *testing.T) {
	p := SparkEV()
	p.MaxPowerKW = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative power limit accepted")
	}
}

func TestRegenPowerCap(t *testing.T) {
	p := SparkEV()
	// A braking point beyond the 60 kW regen cap: 3 m/s² at 30 m/s is
	// ≈ (−3900+1350)·30 ≈ −77 kW at the wheels.
	uncapped := p
	uncapped.MaxRegenPowerKW = 0
	capped := -p.ChargeRate(30, -3.5, 0)
	free := -uncapped.ChargeRate(30, -3.5, 0)
	if capped >= free {
		t.Fatalf("regen cap did not bind: capped %v, uncapped %v", capped, free)
	}
	wantMax := p.MaxRegenPowerKW * 1000 * p.EtaBattery * p.EtaPowertrain * p.EtaRegen / p.PackVoltage
	if capped > wantMax+1e-9 {
		t.Fatalf("capped recovery %v exceeds envelope %v", capped, wantMax)
	}
	// A gentle braking point stays below the cap: identical either way.
	if a, b := p.ChargeRate(15, -1.0, 0), uncapped.ChargeRate(15, -1.0, 0); a != b {
		t.Fatalf("cap affected a sub-cap point: %v vs %v", a, b)
	}
}
