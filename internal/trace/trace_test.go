package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"evvo/internal/profile"
	"evvo/internal/road"
	"evvo/internal/traffic"
)

func sampleProfile(t *testing.T) *profile.Profile {
	t.Helper()
	p, err := profile.Drive(profile.DriveConfig{Route: road.US25(), Style: profile.Mild()})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfileRoundTrip(t *testing.T) {
	p := sampleProfile(t)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, gotPts := p.Points(), got.Points()
	if len(want) != len(gotPts) {
		t.Fatalf("point count %d vs %d", len(gotPts), len(want))
	}
	for i := range want {
		if want[i] != gotPts[i] {
			t.Fatalf("point %d: %+v vs %+v", i, gotPts[i], want[i])
		}
	}
}

func TestWriteProfileNil(t *testing.T) {
	if err := WriteProfile(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("nil profile accepted")
	}
}

func TestReadProfileRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"wrong header":    "a,b,c\n1,2,3\n",
		"bad time":        "t_sec,pos_m,speed_ms\nxx,0,0\n",
		"bad position":    "t_sec,pos_m,speed_ms\n0,xx,0\n",
		"bad speed":       "t_sec,pos_m,speed_ms\n0,0,xx\n",
		"negative speed":  "t_sec,pos_m,speed_ms\n0,0,-1\n1,1,1\n",
		"time regression": "t_sec,pos_m,speed_ms\n5,0,1\n4,1,1\n",
		"too few points":  "t_sec,pos_m,speed_ms\n0,0,0\n",
		"ragged row":      "t_sec,pos_m,speed_ms\n0,0\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadProfile(strings.NewReader(in)); err == nil {
				t.Fatalf("accepted %q", in)
			}
		})
	}
}

func TestVolumesRoundTrip(t *testing.T) {
	s, err := traffic.Synthesize(traffic.SyntheticConfig{Weeks: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVolumes(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVolumes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("length %d vs %d", got.Len(), s.Len())
	}
	for h := 0; h < s.Len(); h++ {
		if got.At(h) != s.At(h) {
			t.Fatalf("hour %d: %v vs %v", h, got.At(h), s.At(h))
		}
	}
}

func TestWriteVolumesNil(t *testing.T) {
	if err := WriteVolumes(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("nil series accepted")
	}
}

func TestReadVolumesRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"wrong header":    "h,v\n0,1\n",
		"non-contiguous":  "hour,veh_per_hour\n0,10\n2,10\n",
		"bad hour":        "hour,veh_per_hour\nxx,10\n",
		"bad volume":      "hour,veh_per_hour\n0,xx\n",
		"negative volume": "hour,veh_per_hour\n0,-5\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadVolumes(strings.NewReader(in)); err == nil {
				t.Fatalf("accepted %q", in)
			}
		})
	}
}

// Property: any valid generated profile survives a round trip bit-exactly.
func TestPropProfileRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(math.Abs(float64(seed%20)))
		pts := make([]profile.Point, n)
		tt, pos := 0.0, 0.0
		for i := range pts {
			tt += 0.5 + float64((seed+int64(i))%7)/10
			pos += float64((seed+int64(2*i))%13) / 2
			if pos < 0 {
				pos = -pos
			}
			pts[i] = profile.Point{T: tt, Pos: pts[max(0, i-1)].Pos + math.Abs(pos-pts[max(0, i-1)].Pos), V: float64(i % 5)}
		}
		p, err := profile.New(pts)
		if err != nil {
			return true // invalid construction: nothing to round-trip
		}
		var buf bytes.Buffer
		if err := WriteProfile(&buf, p); err != nil {
			return false
		}
		got, err := ReadProfile(&buf)
		if err != nil {
			return false
		}
		a, b := p.Points(), got.Points()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
