// Package trace persists and loads the artifacts of trace-driven
// evaluation: velocity profiles ("collected drives") and hourly traffic
// volume series, as CSV — the interchange format of the instrumented-drive
// and loop-counter data the paper collected.
//
// Formats:
//
//	profile CSV:  header "t_sec,pos_m,speed_ms", one sample per row
//	volume  CSV:  header "hour,veh_per_hour",   one hour per row
//
// Readers validate monotonicity and ranges through the underlying
// constructors, so a loaded artifact is as trustworthy as a generated one.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"evvo/internal/profile"
	"evvo/internal/traffic"
)

// profileHeader is the column set for profile CSVs.
var profileHeader = []string{"t_sec", "pos_m", "speed_ms"}

// WriteProfile encodes a velocity profile as CSV.
func WriteProfile(w io.Writer, p *profile.Profile) error {
	if p == nil {
		return fmt.Errorf("trace: nil profile")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(profileHeader); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for _, pt := range p.Points() {
		rec := []string{
			strconv.FormatFloat(pt.T, 'f', -1, 64),
			strconv.FormatFloat(pt.Pos, 'f', -1, 64),
			strconv.FormatFloat(pt.V, 'f', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: writing sample: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flushing: %w", err)
	}
	return nil
}

// ReadProfile decodes a profile CSV written by WriteProfile (or collected
// by any tool emitting the same columns).
func ReadProfile(r io.Reader) (*profile.Profile, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	for i, want := range profileHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: column %d is %q, want %q", i, header[i], want)
		}
	}
	var pts []profile.Point
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		var pt profile.Point
		if pt.T, err = strconv.ParseFloat(rec[0], 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time %q", line, rec[0])
		}
		if pt.Pos, err = strconv.ParseFloat(rec[1], 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: bad position %q", line, rec[1])
		}
		if pt.V, err = strconv.ParseFloat(rec[2], 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: bad speed %q", line, rec[2])
		}
		pts = append(pts, pt)
	}
	p, err := profile.New(pts)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return p, nil
}

// volumeHeader is the column set for volume CSVs.
var volumeHeader = []string{"hour", "veh_per_hour"}

// WriteVolumes encodes an hourly volume series as CSV.
func WriteVolumes(w io.Writer, s *traffic.Series) error {
	if s == nil {
		return fmt.Errorf("trace: nil series")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(volumeHeader); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for h, v := range s.Values {
		rec := []string{strconv.Itoa(h), strconv.FormatFloat(v, 'f', -1, 64)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: writing hour %d: %w", h, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flushing: %w", err)
	}
	return nil
}

// ReadVolumes decodes a volume CSV written by WriteVolumes. Hours must be
// contiguous from zero.
func ReadVolumes(r io.Reader) (*traffic.Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	for i, want := range volumeHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: column %d is %q, want %q", i, header[i], want)
		}
	}
	var values []float64
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		h, err := strconv.Atoi(rec[0])
		if err != nil || h != len(values) {
			return nil, fmt.Errorf("trace: line %d: hour %q not contiguous from 0", line, rec[0])
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad volume %q", line, rec[1])
		}
		values = append(values, v)
	}
	s, err := traffic.NewSeries(values)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return s, nil
}
