// Package units is the single blessed home for physical-unit conversion
// constants and helpers. The DP grid, the EV energy model and the queue
// model are SI end to end (m, m/s, s, A, Ah, J); everything user-facing
// (km/h, mAh, kWh, veh/h) converts through this package.
//
// The point is lintability as much as reuse: the unitcheck analyzer
// (internal/lint) flags raw 3.6/3600/1000 conversion factors anywhere
// else in the module, so a fat-fingered 3600-where-3.6-was-meant — the
// classic silent corruption in eco-driving reproductions — cannot hide
// in arithmetic. Helper names double as documentation at the call site
// and as unit annotations for unitcheck, whose mixing rule treats a
// call to XToY as producing a Y-suffixed quantity.
package units

// Exact conversion factors. Each one appears in the module only here.
const (
	// KmhPerMps converts speed: 1 m/s = 3.6 km/h.
	KmhPerMps = 3.6
	// SecPerHour converts time: 3600 s per hour.
	SecPerHour = 3600.0
	// MsPerSec converts time: 1000 ms per second.
	MsPerSec = 1000.0
	// MPerKm converts length: 1000 m per kilometre.
	MPerKm = 1000.0
	// WPerKW converts power: 1000 W per kilowatt.
	WPerKW = 1000.0
	// MAhPerAh converts charge: 1000 mAh per ampere-hour.
	MAhPerAh = 1000.0
	// CoulombPerAh converts charge: 3600 ampere-seconds per ampere-hour.
	CoulombPerAh = 3600.0
	// JPerWh converts energy: 3600 J per watt-hour.
	JPerWh = 3600.0
	// JPerKWh converts energy: 3.6 MJ per kilowatt-hour.
	JPerKWh = 3.6e6
)

// Speed.

// KmhToMps converts km/h to m/s.
func KmhToMps(kmh float64) float64 { return kmh / KmhPerMps }

// MpsToKmh converts m/s to km/h.
func MpsToKmh(mps float64) float64 { return mps * KmhPerMps }

// Time.

// HoursToSec converts hours to seconds.
func HoursToSec(h float64) float64 { return h * SecPerHour }

// SecToHours converts seconds to hours.
func SecToHours(sec float64) float64 { return sec / SecPerHour }

// SecToMs converts seconds to milliseconds.
func SecToMs(sec float64) float64 { return sec * MsPerSec }

// MsToSec converts milliseconds to seconds.
func MsToSec(ms float64) float64 { return ms / MsPerSec }

// Length.

// KmToM converts kilometres to metres.
func KmToM(km float64) float64 { return km * MPerKm }

// MToKm converts metres to kilometres.
func MToKm(m float64) float64 { return m / MPerKm }

// Power.

// KWToW converts kilowatts to watts.
func KWToW(kw float64) float64 { return kw * WPerKW }

// WToKW converts watts to kilowatts.
func WToKW(w float64) float64 { return w / WPerKW }

// Charge.

// AhToMAh converts ampere-hours to milliampere-hours.
func AhToMAh(ah float64) float64 { return ah * MAhPerAh }

// MAhToAh converts milliampere-hours to ampere-hours.
func MAhToAh(mah float64) float64 { return mah / MAhPerAh }

// AhToCoulombs converts ampere-hours to coulombs (ampere-seconds).
func AhToCoulombs(ah float64) float64 { return ah * CoulombPerAh }

// CoulombsToAh converts coulombs (ampere-seconds) to ampere-hours.
func CoulombsToAh(c float64) float64 { return c / CoulombPerAh }

// Energy.

// WhToJ converts watt-hours to joules.
func WhToJ(wh float64) float64 { return wh * JPerWh }

// JToWh converts joules to watt-hours.
func JToWh(j float64) float64 { return j / JPerWh }

// KWhToJ converts kilowatt-hours to joules.
func KWhToJ(kwh float64) float64 { return kwh * JPerKWh }

// JToKWh converts joules to kilowatt-hours.
func JToKWh(j float64) float64 { return j / JPerKWh }

// Traffic flow.

// VehPerHourToVehPerSec converts vehicles/hour to vehicles/second.
func VehPerHourToVehPerSec(vph float64) float64 { return vph / SecPerHour }

// VehPerSecToVehPerHour converts vehicles/second to vehicles/hour.
func VehPerSecToVehPerHour(vps float64) float64 { return vps * SecPerHour }
