package units

import (
	"math"
	"testing"
)

// TestKnownValues pins each converter to a hand-checked value so a
// transposed factor (3600 where 3.6 was meant — the exact slip the
// unitcheck analyzer exists to catch) fails loudly.
func TestKnownValues(t *testing.T) {
	cases := []struct {
		name     string
		got, exp float64
	}{
		{"KmhToMps(36)", KmhToMps(36), 10},
		{"MpsToKmh(10)", MpsToKmh(10), 36},
		{"HoursToSec(1.5)", HoursToSec(1.5), 5400},
		{"SecToHours(1800)", SecToHours(1800), 0.5},
		{"SecToMs(0.25)", SecToMs(0.25), 250},
		{"MsToSec(250)", MsToSec(250), 0.25},
		{"KmToM(1.2)", KmToM(1.2), 1200},
		{"MToKm(500)", MToKm(500), 0.5},
		{"KWToW(80)", KWToW(80), 80000},
		{"WToKW(1500)", WToKW(1500), 1.5},
		{"AhToMAh(2.2)", AhToMAh(2.2), 2200},
		{"MAhToAh(500)", MAhToAh(500), 0.5},
		{"AhToCoulombs(1)", AhToCoulombs(1), 3600},
		{"CoulombsToAh(7200)", CoulombsToAh(7200), 2},
		{"WhToJ(1)", WhToJ(1), 3600},
		{"JToWh(7200)", JToWh(7200), 2},
		{"KWhToJ(1)", KWhToJ(1), 3.6e6},
		{"JToKWh(1.8e6)", JToKWh(1.8e6), 0.5},
		{"VehPerHourToVehPerSec(720)", VehPerHourToVehPerSec(720), 0.2},
		{"VehPerSecToVehPerHour(0.2)", VehPerSecToVehPerHour(0.2), 720},
	}
	for _, c := range cases {
		if math.Abs(c.got-c.exp) > 1e-12*math.Max(1, math.Abs(c.exp)) {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.exp)
		}
	}
}

// TestRoundTrips: every To has a From that inverts it to the last bit of
// relative precision.
func TestRoundTrips(t *testing.T) {
	pairs := []struct {
		name     string
		fwd, inv func(float64) float64
	}{
		{"Kmh<->Mps", KmhToMps, MpsToKmh},
		{"Hours<->Sec", HoursToSec, SecToHours},
		{"Sec<->Ms", SecToMs, MsToSec},
		{"Km<->M", KmToM, MToKm},
		{"KW<->W", KWToW, WToKW},
		{"Ah<->MAh", AhToMAh, MAhToAh},
		{"Ah<->Coulombs", AhToCoulombs, CoulombsToAh},
		{"Wh<->J", WhToJ, JToWh},
		{"KWh<->J", KWhToJ, JToKWh},
		{"VehPerHour<->VehPerSec", VehPerHourToVehPerSec, VehPerSecToVehPerHour},
	}
	for _, p := range pairs {
		for _, x := range []float64{0, 1, 3.7, 153, 1e6} {
			back := p.inv(p.fwd(x))
			if math.Abs(back-x) > 1e-12*math.Max(1, math.Abs(x)) {
				t.Errorf("%s: round-trip of %g came back %g", p.name, x, back)
			}
		}
	}
}
