package metrics

import (
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value not zero")
	}
	if c.Inc() != 1 || c.Add(4) != 5 || c.Value() != 5 {
		t.Fatalf("counter arithmetic wrong: %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 1600 {
		t.Fatalf("lost updates: %d", c.Value())
	}
}

func TestLabeledCounter(t *testing.T) {
	var c LabeledCounter
	if c.Snapshot() != nil || c.Total() != 0 || c.Value("x") != 0 {
		t.Fatal("zero value not empty")
	}
	c.Inc("green-fallback")
	c.Inc("green-fallback")
	c.Inc("stale-cache")
	if c.Value("green-fallback") != 2 || c.Value("stale-cache") != 1 || c.Total() != 3 {
		t.Fatalf("counts wrong: %v", c.Snapshot())
	}
	snap := c.Snapshot()
	snap["green-fallback"] = 99 // mutating the snapshot must not alias
	if c.Value("green-fallback") != 2 {
		t.Fatal("snapshot aliases internal map")
	}
}

func TestLabeledCounterConcurrent(t *testing.T) {
	var c LabeledCounter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			label := []string{"a", "b"}[i%2]
			for j := 0; j < 100; j++ {
				c.Inc(label)
			}
		}(i)
	}
	wg.Wait()
	if c.Value("a") != 400 || c.Value("b") != 400 {
		t.Fatalf("lost updates: %v", c.Snapshot())
	}
}
