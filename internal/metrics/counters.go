package metrics

import (
	"sync"
	"sync/atomic"
)

// Counter is a monotone, concurrency-safe service counter. The zero value
// is ready to use. It complements this package's offline error measures
// (MRE/RMSE) with the online counters the cloud service exports via
// /v1/stats.
type Counter struct {
	n atomic.Int64
}

// Inc adds one and returns the new value.
func (c *Counter) Inc() int64 { return c.n.Add(1) }

// Add adds d (which may be negative only in tests; service counters are
// monotone by convention) and returns the new value.
func (c *Counter) Add(d int64) int64 { return c.n.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// LabeledCounter counts events per string label — e.g. degraded responses
// by degradation reason. The zero value is ready to use.
type LabeledCounter struct {
	mu sync.Mutex
	m  map[string]int64
}

// Inc increments the count for label.
func (c *LabeledCounter) Inc(label string) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[label]++
	c.mu.Unlock()
}

// Value returns the count for label (0 when never seen).
func (c *LabeledCounter) Value(label string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[label]
}

// Total returns the sum over all labels.
func (c *LabeledCounter) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, n := range c.m {
		t += n
	}
	return t
}

// Snapshot returns a copy of the per-label counts (nil when empty), safe
// for the caller to serialize without holding any lock.
func (c *LabeledCounter) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}
