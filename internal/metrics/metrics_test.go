package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMRE(t *testing.T) {
	got, err := MRE([]float64{110, 90}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 0.1, 1e-12) {
		t.Fatalf("MRE = %v, want 0.1", got)
	}
}

func TestMRESkipsZeroReferences(t *testing.T) {
	got, err := MRE([]float64{5, 110}, []float64{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 0.1, 1e-12) {
		t.Fatalf("MRE = %v, want 0.1 (zero ref skipped)", got)
	}
	if _, err := MRE([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Fatal("all-zero references accepted")
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{3, 1}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 3/math.Sqrt2, 1e-12) {
		t.Fatalf("RMSE = %v, want %v", got, 3/math.Sqrt2)
	}
}

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{3, -1}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 2, 1e-12) {
		t.Fatalf("MAE = %v, want 2", got)
	}
}

func TestPairValidation(t *testing.T) {
	if _, err := MRE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := MAE([]float64{1}, []float64{}); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestSummaries(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if m := Mean(xs); !almost(m, 2.75, 1e-12) {
		t.Fatalf("Mean = %v", m)
	}
	if m := Min(xs); m != -1 {
		t.Fatalf("Min = %v", m)
	}
	if m := Max(xs); m != 7 {
		t.Fatalf("Max = %v", m)
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty summaries should be 0")
	}
}

// Property: RMSE ≥ MAE (Jensen), and both are 0 iff pred == actual.
func TestPropRMSEDominatesMAE(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		pred := []float64{math.Mod(a, 100), math.Mod(b, 100)}
		act := []float64{math.Mod(c, 100), math.Mod(d, 100)}
		rmse, err1 := RMSE(pred, act)
		mae, err2 := MAE(pred, act)
		if err1 != nil || err2 != nil {
			return false
		}
		return rmse >= mae-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPerfectPredictionZeroErrors(t *testing.T) {
	xs := []float64{10, 20, 30}
	if mre, _ := MRE(xs, xs); mre != 0 {
		t.Fatalf("MRE = %v", mre)
	}
	if rmse, _ := RMSE(xs, xs); rmse != 0 {
		t.Fatalf("RMSE = %v", rmse)
	}
}
