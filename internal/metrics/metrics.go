// Package metrics provides the error measures the paper uses to evaluate
// traffic-volume prediction (Section III-B-2): mean relative error (MRE)
// and root mean squared error (RMSE), plus small summary helpers.
package metrics

import (
	"fmt"
	"math"
)

// MRE returns the mean relative error Σ|ŷ−y|/|y| / n over pairs where
// y ≠ 0; pairs with y == 0 are skipped (relative error undefined).
// An error is returned when the slices differ in length, are empty, or all
// references are zero.
func MRE(pred, actual []float64) (float64, error) {
	if err := checkPair(pred, actual); err != nil {
		return 0, err
	}
	sum, n := 0.0, 0
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("metrics: MRE undefined, every reference value is zero")
	}
	return sum / float64(n), nil
}

// RMSE returns sqrt(Σ(ŷ−y)²/n).
func RMSE(pred, actual []float64) (float64, error) {
	if err := checkPair(pred, actual); err != nil {
		return 0, err
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred))), nil
}

// MAE returns Σ|ŷ−y|/n.
func MAE(pred, actual []float64) (float64, error) {
	if err := checkPair(pred, actual); err != nil {
		return 0, err
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - actual[i])
	}
	return sum / float64(len(pred)), nil
}

func checkPair(pred, actual []float64) error {
	if len(pred) != len(actual) {
		return fmt.Errorf("metrics: length mismatch %d vs %d", len(pred), len(actual))
	}
	if len(pred) == 0 {
		return fmt.Errorf("metrics: empty inputs")
	}
	return nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min and Max return the extrema; both return 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum value (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
