package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram records observations into fixed buckets and reports approximate
// quantiles. Observe is lock-free (one atomic add per call), so the serving
// hot path can record per-request latency without contending on a mutex the
// way LabeledCounter does. Quantiles are interpolated linearly inside the
// bucket that crosses the requested rank, so their error is bounded by the
// bucket width at that rank.
type Histogram struct {
	// bounds[i] is the inclusive upper bound of bucket i; a final implicit
	// overflow bucket catches observations above bounds[len-1].
	bounds  []float64
	counts  []atomic.Int64
	total   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum, CAS-updated
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds. At least one bound is required; duplicates or descending bounds
// are rejected rather than silently reordered.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("metrics: histogram bounds not strictly ascending at %d (%g after %g)",
				i, bounds[i], bounds[i-1])
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	return h, nil
}

// NewLatencyHistogram returns a histogram preset for request latency in
// milliseconds: geometric buckets from 0.1 ms to 60 s, ~23% apart, which
// keeps p99 interpolation error under a quarter of the reported value.
func NewLatencyHistogram() *Histogram {
	var bounds []float64
	for b := 0.1; b <= 60_000; b *= 1.25 {
		bounds = append(bounds, b)
	}
	h, err := NewHistogram(bounds)
	if err != nil {
		panic(err) // bounds are constant and ascending by construction
	}
	return h
}

// Observe records one value. Values above the last bound land in the
// overflow bucket; NaN is dropped (it has no rank).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the running sum of recorded observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns the approximate q-quantile (q in [0,1]) by linear
// interpolation within the bucket holding that rank. Empty histograms and
// out-of-range q return 0. Observations in the overflow bucket report the
// last finite bound — the histogram cannot see past its own range.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 || q < 0 || q > 1 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(h.bounds[i]-lo)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}
