package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Fatal("duplicate bounds accepted")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Fatal("descending bounds accepted")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h, err := NewHistogram([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform 1..100: quantiles should track the identity line within one
	// bucket width.
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5050) > 1e-9 {
		t.Fatalf("sum = %g, want 5050", got)
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("mean = %g", got)
	}
	for _, tc := range []struct{ q, want float64 }{{0.5, 50}, {0.95, 95}, {0.99, 99}} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 10 {
			t.Fatalf("q%g = %g, want within a bucket of %g", tc.q, got, tc.want)
		}
	}
}

func TestHistogramEdges(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Observe(math.NaN()) // dropped
	if h.Count() != 0 {
		t.Fatal("NaN counted")
	}
	h.Observe(100) // overflow bucket reports the last bound
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %g, want last bound 2", got)
	}
	if h.Quantile(-0.1) != 0 || h.Quantile(1.1) != 0 {
		t.Fatal("out-of-range q should be 0")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i) / 100)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	// Sum of 0..7999 divided by 100.
	want := float64(workers*per-1) * float64(workers*per) / 2 / 100
	if math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("sum = %g, want %g", h.Sum(), want)
	}
	if h.Quantile(0.5) <= 0 {
		t.Fatal("median should be positive")
	}
}
