package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Fatal("duplicate bounds accepted")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Fatal("descending bounds accepted")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h, err := NewHistogram([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform 1..100: quantiles should track the identity line within one
	// bucket width.
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5050) > 1e-9 {
		t.Fatalf("sum = %g, want 5050", got)
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("mean = %g", got)
	}
	for _, tc := range []struct{ q, want float64 }{{0.5, 50}, {0.95, 95}, {0.99, 99}} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 10 {
			t.Fatalf("q%g = %g, want within a bucket of %g", tc.q, got, tc.want)
		}
	}
}

func TestHistogramEdges(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Observe(math.NaN()) // dropped
	if h.Count() != 0 {
		t.Fatal("NaN counted")
	}
	h.Observe(100) // overflow bucket reports the last bound
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %g, want last bound 2", got)
	}
	if h.Quantile(-0.1) != 0 || h.Quantile(1.1) != 0 {
		t.Fatal("out-of-range q should be 0")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i) / 100)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	// Sum of 0..7999 divided by 100.
	want := float64(workers*per-1) * float64(workers*per) / 2 / 100
	if math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("sum = %g, want %g", h.Sum(), want)
	}
	if h.Quantile(0.5) <= 0 {
		t.Fatal("median should be positive")
	}
}

// TestHistogramZeroAndSingleObservation pins the two degenerate sizes the
// quantile interpolation must survive: no data (every accessor returns 0,
// never NaN) and one observation (every quantile lands inside that
// observation's bucket).
func TestHistogramZeroAndSingleObservation(t *testing.T) {
	h := NewLatencyHistogram()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 || math.IsNaN(got) {
			t.Fatalf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}
	if h.Mean() != 0 || h.Sum() != 0 || h.Count() != 0 {
		t.Fatalf("empty histogram mean/sum/count = %g/%g/%d, want zeros", h.Mean(), h.Sum(), h.Count())
	}

	const v = 5.0
	h.Observe(v)
	if h.Count() != 1 || h.Mean() != v || h.Sum() != v {
		t.Fatalf("single observation count/mean/sum = %d/%g/%g", h.Count(), h.Mean(), h.Sum())
	}
	for _, q := range []float64{0, 0.5, 1} {
		got := h.Quantile(q)
		if math.IsNaN(got) || got < 0 {
			t.Fatalf("single observation Quantile(%g) = %g", q, got)
		}
		// One observation fills exactly one bucket; interpolation must not
		// escape it (bucket width ~23% around v for the latency preset).
		if got > v*1.25 {
			t.Fatalf("Quantile(%g) = %g escaped the observation's bucket (v = %g)", q, got, v)
		}
	}
	if h.Quantile(1) < h.Quantile(0) {
		t.Fatal("quantiles not monotone over a single observation")
	}
}

// TestHistogramConcurrentObserveVsQuantile runs readers (Quantile, Mean,
// Count) against concurrent writers under -race: snapshots taken mid-write
// must be finite and non-negative, never torn into NaN or a negative rank.
func TestHistogramConcurrentObserveVsQuantile(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	const writers, per, readers = 4, 2000, 4
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, q := range []float64{0.5, 0.95, 0.99} {
					if got := h.Quantile(q); math.IsNaN(got) || got < 0 {
						t.Errorf("Quantile(%g) = %g during concurrent writes", q, got)
						return
					}
				}
				if m := h.Mean(); math.IsNaN(m) || m < 0 {
					t.Errorf("Mean() = %g during concurrent writes", m)
					return
				}
				if h.Count() < 0 {
					t.Error("Count() went negative")
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i) / 50)
			}
		}(w)
	}
	// Writers finish, then readers are released; the final state must be
	// exact despite the interleaving.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for observed := int64(0); observed < writers*per; observed = h.Count() {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if h.Count() != writers*per {
		t.Fatalf("count = %d, want %d", h.Count(), writers*per)
	}
	want := float64(writers*per-1) * float64(writers*per) / 2 / 50
	if math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("sum = %g, want %g", h.Sum(), want)
	}
}
