// Package experiments reproduces every figure of the paper's evaluation
// (Section III): each FigN function regenerates the corresponding figure's
// data series and returns a structured result with a text rendering.
// The cmd/evbench binary and the repository's bench_test.go both drive
// these runners; EXPERIMENTS.md records paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"io"

	"evvo/internal/ev"
	"evvo/internal/queue"
	"evvo/internal/road"
)

// Fidelity trades runtime for resolution. Fast keeps unit tests and
// benchmarks quick; Full is what cmd/evbench uses for reported numbers.
type Fidelity int

// Fidelity levels. The zero value is invalid so a forgotten parameter is
// caught.
const (
	fidelityInvalid Fidelity = iota
	// FidelityFast uses coarse grids and small models (CI-friendly).
	FidelityFast
	// FidelityFull uses the report-quality resolution.
	FidelityFull
)

// Validate reports whether the fidelity is usable.
func (f Fidelity) Validate() error {
	if f != FidelityFast && f != FidelityFull {
		return fmt.Errorf("experiments: invalid fidelity %d", int(f))
	}
	return nil
}

// PaperArrivalRateVehPerHour is the arrival rate the authors measured at
// the second US-25 light (Section III-B-2).
const PaperArrivalRateVehPerHour = 153.0

// paperVin returns the measured arrival rate in veh/s.
func paperVin() float64 { return queue.VehPerHour(PaperArrivalRateVehPerHour) }

// paperTiming returns the 30 s red / 30 s green cycle of the US-25 lights.
func paperTiming() road.SignalTiming { return road.SignalTiming{RedSec: 30, GreenSec: 30} }

// vehicleParams returns the Chevrolet Spark EV model used everywhere.
func vehicleParams() ev.Params { return ev.SparkEV() }

// writeTable renders an aligned two-dimensional table.
func writeTable(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		for i, c := range cells {
			if _, err := fmt.Fprintf(w, "%-*s  ", widths[i], c); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	if err := line(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}
