package experiments

import (
	"fmt"
	"io"

	"evvo/internal/dp"
	"evvo/internal/queue"
	"evvo/internal/road"
	"evvo/internal/units"
)

// GradeStudyResult implements the paper's stated future work (Section V):
// "consider the effect of road gradient on the proposed system". We give
// the US-25 geometry a rolling elevation profile and compare a grade-blind
// plan (optimized as if flat, then driven on the graded road) against a
// grade-aware plan.
type GradeStudyResult struct {
	// FlatEstimateMAh is what the grade-blind optimizer believed its plan
	// would cost (flat-model estimate).
	FlatEstimateMAh float64
	// FlatPlanOnGradeMAh is that same plan's true cost on the graded road.
	FlatPlanOnGradeMAh float64
	// AwarePlanMAh is the grade-aware plan's cost on the graded road.
	AwarePlanMAh float64
	// EstimateErrPct is the flat model's energy misestimate on graded
	// terrain: (true − estimate) / true.
	EstimateErrPct float64
	// SavingPct is the grade-aware plan's saving over the grade-blind plan
	// on the graded road.
	SavingPct float64
}

// gradedUS25 returns the US-25 geometry with a rolling elevation profile:
// a 3% climb after the stop sign, a long 1.5% descent into light-2.
func gradedUS25() (*road.Route, error) {
	timing := road.SignalTiming{RedSec: 30, GreenSec: 30}
	return road.NewRoute(road.RouteConfig{
		LengthM:      4200,
		DefaultMinMS: road.KmhToMs(road.US25MinSpeedKmh),
		DefaultMaxMS: road.KmhToMs(60),
		Controls: []road.Control{
			{Kind: road.ControlStopSign, PositionM: 490, Name: "stop-490m"},
			{Kind: road.ControlSignal, PositionM: 1800, Timing: timing, Name: "light-1"},
			{Kind: road.ControlSignal, PositionM: 3460, Timing: timing, Name: "light-2"},
		},
		GradeZones: []road.GradeZone{
			{StartM: 700, EndM: 1500, ThetaRad: 0.03},
			{StartM: 2200, EndM: 3400, ThetaRad: -0.015},
		},
	})
}

// GradeStudy runs the gradient extension experiment.
func GradeStudy(fid Fidelity) (*GradeStudyResult, error) {
	if err := fid.Validate(); err != nil {
		return nil, err
	}
	graded, err := gradedUS25()
	if err != nil {
		return nil, err
	}
	flat := road.US25() // same geometry, zero grades

	vin := queue.VehPerHour(PaperArrivalRateVehPerHour)
	wf, err := dp.QueueAwareWindows(queue.US25Params(), dp.ConstantArrivalRate(vin), 0, 800)
	if err != nil {
		return nil, err
	}
	cfg := dp.Config{
		Vehicle: vehicleParams(), StopDwellSec: 2, Windows: wf,
	}
	if fid == FidelityFast {
		cfg.DsM, cfg.DvMS, cfg.DtSec = 100, 1, 2
	} else {
		cfg.DsM, cfg.DvMS, cfg.DtSec = 50, 0.5, 1
	}

	blindCfg := cfg
	blindCfg.Route = flat
	blind, err := dp.Optimize(blindCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: grade-blind plan: %w", err)
	}
	awareCfg := cfg
	awareCfg.Route = graded
	aware, err := dp.Optimize(awareCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: grade-aware plan: %w", err)
	}

	blindOnGrade, err := blind.Profile.EnergyMAh(vehicleParams(), graded.GradeAt)
	if err != nil {
		return nil, err
	}
	awareOnGrade, err := aware.Profile.EnergyMAh(vehicleParams(), graded.GradeAt)
	if err != nil {
		return nil, err
	}
	res := &GradeStudyResult{
		FlatEstimateMAh:    units.AhToMAh(blind.ChargeAh),
		FlatPlanOnGradeMAh: blindOnGrade,
		AwarePlanMAh:       awareOnGrade,
	}
	if blindOnGrade != 0 {
		res.EstimateErrPct = (blindOnGrade - res.FlatEstimateMAh) / blindOnGrade * 100
		res.SavingPct = (blindOnGrade - awareOnGrade) / blindOnGrade * 100
	}
	return res, nil
}

// Render writes the study as a table.
func (r *GradeStudyResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Gradient study — the paper's future work (Section V) implemented"); err != nil {
		return err
	}
	rows := [][]string{
		{"flat-model estimate of the grade-blind plan", fmt.Sprintf("%.1f mAh", r.FlatEstimateMAh)},
		{"grade-blind plan driven on graded road", fmt.Sprintf("%.1f mAh", r.FlatPlanOnGradeMAh)},
		{"grade-aware plan on graded road", fmt.Sprintf("%.1f mAh", r.AwarePlanMAh)},
		{"flat model underestimates by", fmt.Sprintf("%.1f%%", r.EstimateErrPct)},
		{"grade awareness saves", fmt.Sprintf("%.1f%%", r.SavingPct)},
	}
	return writeTable(w, []string{"quantity", "value"}, rows)
}
