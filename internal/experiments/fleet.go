package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"

	"evvo/internal/dp"
	"evvo/internal/par"
	"evvo/internal/profile"
	"evvo/internal/queue"
	"evvo/internal/road"
	"evvo/internal/sim"
	"evvo/internal/trasi"
)

// FleetStudy asks a question one step beyond the paper: the paper
// optimizes a single EV against background traffic — do the savings
// survive when a whole fleet of EVs follows the cloud's advice on the same
// corridor at once? Each EV gets its own queue-aware (or green-window)
// plan for its departure; all of them execute in one shared simulation.
type FleetStudy struct {
	// Departures are the fleet's staggered absolute departure times.
	Departures []float64
	// QueueAware and Green are the per-EV outcomes under each planner.
	QueueAware, Green []FleetTrip
}

// FleetTrip is one EV's executed outcome.
type FleetTrip struct {
	ID        string
	DepartSec float64
	EnergyMAh float64
	TripSec   float64
	Stops     int
}

// fleetSize and fleetSpacing shape the default study.
const (
	fleetSize       = 5
	fleetSpacingSec = 40
)

// RunFleetStudy executes the study at the given fidelity.
func RunFleetStudy(fid Fidelity) (*FleetStudy, error) {
	if err := fid.Validate(); err != nil {
		return nil, err
	}
	route := road.US25()
	qp := queue.US25Params()
	vin := queue.VehPerHour(400)

	study := &FleetStudy{}
	for i := 0; i < fleetSize; i++ {
		study.Departures = append(study.Departures, 30+float64(i)*fleetSpacingSec)
	}
	horizon := study.Departures[len(study.Departures)-1] + 800

	dpCfg := dp.Config{
		Route: route, Vehicle: vehicleParams(), StopDwellSec: 2, MaxTripSec: 600,
	}
	if fid == FidelityFast {
		dpCfg.DsM, dpCfg.DvMS, dpCfg.DtSec = 100, 1, 2
	} else {
		dpCfg.DsM, dpCfg.DvMS, dpCfg.DtSec = 50, 0.5, 1
	}

	qaWindows, err := dp.QueueAwareWindows(qp, dp.ConstantArrivalRate(vin), 0, horizon)
	if err != nil {
		return nil, err
	}
	plan := func(windows dp.WindowsFunc, extraMargin bool, depart float64) (*profile.Profile, error) {
		cfg := dpCfg
		cfg.DepartTime = depart
		cfg.Windows = windows
		// The fleet fan-out below saturates the worker pool; keep each
		// vehicle's DP serial so the goroutine count stays bounded.
		cfg.Workers = 1
		if extraMargin {
			cfg.WindowMarginSec = 3
			cfg.WindowEndMarginSec = 6
		}
		res, err := dp.Optimize(cfg)
		if err != nil {
			return nil, err
		}
		return res.Profile, nil
	}

	for _, variant := range []string{"queue-aware", "green"} {
		// Each vehicle's plan is independent of the rest — only the shared
		// replay couples the fleet — so planning fans out over a bounded
		// worker pool, order-preserving and reporting the earliest failure.
		plans := make([]*profile.Profile, len(study.Departures))
		planErr := par.ForEach(runtime.GOMAXPROCS(0), len(study.Departures), func(i int) error {
			var p *profile.Profile
			var err error
			if variant == "queue-aware" {
				p, err = plan(qaWindows, true, study.Departures[i])
			} else {
				p, err = plan(dp.GreenWindows(0, horizon), false, study.Departures[i])
			}
			if err != nil {
				return fmt.Errorf("experiments: fleet %s plan %d: %w", variant, i, err)
			}
			plans[i] = p
			return nil
		})
		if planErr != nil {
			return nil, planErr
		}
		trips, err := fleetReplay(route, study.Departures, plans, vin, qp.StraightRatio)
		if err != nil {
			return nil, fmt.Errorf("experiments: fleet %s replay: %w", variant, err)
		}
		if variant == "queue-aware" {
			study.QueueAware = trips
		} else {
			study.Green = trips
		}
	}
	return study, nil
}

// fleetReplay executes several planned EVs in one shared simulation over
// the trasi protocol.
func fleetReplay(route *road.Route, departs []float64, plans []*profile.Profile,
	arrivalRate, gamma float64) ([]FleetTrip, error) {

	order := make([]int, len(departs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return departs[order[a]] < departs[order[b]] })

	const warmup = 120.0
	first := departs[order[0]]
	rate := func(t float64) float64 {
		// Pause arrivals briefly around each EV's entry (see ReplayInSim).
		for _, d := range departs {
			if t >= d-15 && t < d+5 {
				return 0
			}
		}
		return arrivalRate
	}
	simulation, err := sim.New(sim.Config{
		Route: route, Seed: 99, Arrivals: rate,
		StraightRatio: gamma, StartTime: first - warmup,
	})
	if err != nil {
		return nil, err
	}
	srv, err := trasi.NewServer(simulation)
	if err != nil {
		return nil, err
	}
	srv.Logf = func(string, ...any) {}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	client, err := trasi.Dial(addr.String())
	if err != nil {
		return nil, err
	}
	defer client.Close()

	ids := make([]string, len(departs))
	added := make([]bool, len(departs))
	for i := range ids {
		ids[i] = fmt.Sprintf("ev-%d", i)
	}
	deadline := departs[order[len(order)-1]] + 1200
	doneCount := 0
	for doneCount < len(departs) {
		now, err := client.Time()
		if err != nil {
			return nil, err
		}
		if now > deadline {
			return nil, fmt.Errorf("experiments: fleet replay exceeded deadline")
		}
		for i := range departs {
			if !added[i] && now >= departs[i] {
				if err := client.AddVehicle(ids[i]); err == nil {
					added[i] = true
				}
				// A blocked entry retries on the next tick.
			}
			if !added[i] {
				continue
			}
			st, err := client.GetVehicle(ids[i])
			if err != nil {
				return nil, err
			}
			if st.Done {
				continue
			}
			cmd := plans[i].SpeedAtPos(st.PosM + 8)
			if cmd < 1.0 {
				cmd = 1.0
			}
			if err := client.SetSpeed(ids[i], cmd); err != nil {
				return nil, err
			}
		}
		if _, err := client.Step(1); err != nil {
			return nil, err
		}
		doneCount = 0
		for i := range departs {
			if !added[i] {
				continue
			}
			st, err := client.GetVehicle(ids[i])
			if err != nil {
				return nil, err
			}
			if st.Done {
				doneCount++
			}
		}
	}

	out := make([]FleetTrip, len(departs))
	for i := range departs {
		trace, err := client.GetTrace(ids[i])
		if err != nil {
			return nil, err
		}
		mah, err := trace.EnergyMAh(vehicleParams(), route.GradeAt)
		if err != nil {
			return nil, err
		}
		out[i] = FleetTrip{
			ID: ids[i], DepartSec: departs[i],
			EnergyMAh: mah, TripSec: trace.Duration(),
			Stops: signalAreaStops(trace, route),
		}
	}
	return out, nil
}

// MeanEnergy returns the fleet's mean executed energy in mAh.
func MeanEnergy(trips []FleetTrip) float64 {
	if len(trips) == 0 {
		return 0
	}
	sum := 0.0
	for _, tr := range trips {
		sum += tr.EnergyMAh
	}
	return sum / float64(len(trips))
}

// TotalStops sums signal-area stops across the fleet.
func TotalStops(trips []FleetTrip) int {
	n := 0
	for _, tr := range trips {
		n += tr.Stops
	}
	return n
}

// Render writes the per-EV table for both variants.
func (s *FleetStudy) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fleet study — %d EVs share the corridor, each following its own plan\n", len(s.Departures)); err != nil {
		return err
	}
	header := []string{"EV", "depart (s)", "queue-aware (mAh)", "qa stops", "green (mAh)", "green stops"}
	var rows [][]string
	for i := range s.Departures {
		rows = append(rows, []string{
			s.QueueAware[i].ID,
			fmt.Sprintf("%.0f", s.Departures[i]),
			fmt.Sprintf("%.1f", s.QueueAware[i].EnergyMAh),
			fmt.Sprintf("%d", s.QueueAware[i].Stops),
			fmt.Sprintf("%.1f", s.Green[i].EnergyMAh),
			fmt.Sprintf("%d", s.Green[i].Stops),
		})
	}
	if err := writeTable(w, header, rows); err != nil {
		return err
	}
	saving := 0.0
	if g := MeanEnergy(s.Green); g > 0 {
		saving = (1 - MeanEnergy(s.QueueAware)/g) * 100
	}
	_, err := fmt.Fprintf(w, "fleet means: queue-aware %.1f mAh (%d stops) vs green %.1f mAh (%d stops) — %.1f%% saving\n",
		MeanEnergy(s.QueueAware), TotalStops(s.QueueAware),
		MeanEnergy(s.Green), TotalStops(s.Green), saving)
	if math.IsNaN(saving) {
		return fmt.Errorf("experiments: fleet saving undefined")
	}
	return err
}
