package experiments

import (
	"fmt"
	"math"

	"evvo/internal/dp"
	"evvo/internal/ev"
	"evvo/internal/profile"
	"evvo/internal/queue"
	"evvo/internal/road"
	"evvo/internal/sim"
	"evvo/internal/trasi"
)

// ProfileKind names the four velocity profiles the paper compares.
type ProfileKind string

// The compared profiles.
const (
	KindMild      ProfileKind = "mild driving"
	KindFast      ProfileKind = "fast driving"
	KindCurrentDP ProfileKind = "current DP"
	KindProposed  ProfileKind = "proposed DP"
)

// ComparisonItem is one profile's planned and executed trajectories with
// its evaluation.
type ComparisonItem struct {
	Kind ProfileKind
	// Planned is the open-loop profile (human drive or DP plan).
	Planned *profile.Profile
	// Executed is the microsim-executed trajectory (DP plans only; for
	// human drives Executed == Planned, as the paper's collected traces
	// are direct recordings).
	Executed *profile.Profile
	// EnergyMAh is the ev-model energy of the Executed trajectory.
	EnergyMAh float64
	// TripSec is the Executed duration.
	TripSec float64
	// Stops counts full stops in signal areas — stops at the mandatory
	// stop sign (which every profile makes) and at the endpoints are
	// excluded, matching the paper's "no stops at traffic lights" claim.
	Stops int
	// SlowestSignalMS is the minimum executed speed within the signal
	// approach areas (150 m before to 50 m past each light): the paper's
	// Fig. 6 contrast is that the current DP decelerates hard there while
	// the proposed DP passes at speed.
	SlowestSignalMS float64
	// WearMilliCycles is the battery wear of the executed trajectory in
	// thousandths of an equivalent full cycle — the lifetime angle the
	// paper's introduction motivates.
	WearMilliCycles float64
}

// ComparisonResult backs Figs. 6, 7 and 8: the four profiles on the US-25
// corridor under identical traffic.
type ComparisonResult struct {
	Items []ComparisonItem
	// DepartTime is the common absolute departure time.
	DepartTime float64
}

// Item returns the item of the given kind.
func (r *ComparisonResult) Item(k ProfileKind) (ComparisonItem, error) {
	for _, it := range r.Items {
		if it.Kind == k {
			return it, nil
		}
	}
	return ComparisonItem{}, fmt.Errorf("experiments: no %q item", k)
}

// Comparison produces the four profiles: mild and fast reference drives
// (with queue-delay dwell at red lights, as the collected traces
// experienced), and the current-DP and proposed-DP plans executed in the
// microsimulator through the trasi socket protocol against identical
// background traffic.
func Comparison(fid Fidelity) (*ComparisonResult, error) {
	if err := fid.Validate(); err != nil {
		return nil, err
	}
	route := road.US25()
	qp := queue.US25Params()
	// Corridor-level inflow for the trace-driven runs. The 153 veh/h of
	// Fig. 5 is the measured straight-through arrival rate at one light;
	// the corridor the paper rebuilt in SUMO from hourly count data
	// carries more total traffic. 400 veh/h keeps every signal
	// undersaturated while producing queues of a few vehicles per cycle.
	vin := queue.VehPerHour(400)
	// Departure phase matters: at 30 s the energy-optimal free-flow
	// arrival at light-1 lands late in a red phase, so the green-window
	// DP waits for the next green and reaches the light right at green
	// onset — exactly when the standing queue is still discharging (the
	// situation of the paper's Fig. 6(a)). The queue-aware DP instead
	// targets the zero-queue window a few seconds later. The same
	// departure puts the human reference drives into representative
	// red-light encounters (each stops once).
	const depart = 30.0
	horizon := depart + 800

	// Queue-delay model for the human drivers: a driver stopped at a red
	// light can only move once the queue ahead has discharged.
	qdelay := func(c road.Control, _ float64) float64 {
		m, err := queue.NewModel(qp, c.Timing)
		if err != nil {
			return 0
		}
		clear, ok := m.QueueClearTime(vin)
		if !ok {
			return 0
		}
		return math.Max(0, clear-c.Timing.RedSec)
	}

	mild, err := profile.Drive(profile.DriveConfig{
		Route: route, Style: profile.Mild(), DepartTime: depart, QueueDelay: qdelay,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: mild drive: %w", err)
	}
	fast, err := profile.Drive(profile.DriveConfig{
		Route: route, Style: profile.Fast(), DepartTime: depart, QueueDelay: qdelay,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fast drive: %w", err)
	}

	dpCfg := dp.Config{
		Route: route, Vehicle: vehicleParams(), DepartTime: depart,
		MaxTripSec: 600, StopDwellSec: 2,
	}
	if fid == FidelityFast {
		dpCfg.DsM, dpCfg.DvMS, dpCfg.DtSec = 100, 1, 2
	} else {
		dpCfg.DsM, dpCfg.DvMS, dpCfg.DtSec = 50, 0.5, 1
	}

	greenCfg := dpCfg
	greenCfg.Windows = dp.GreenWindows(depart, horizon)
	currentPlan, err := dp.Optimize(greenCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: current DP: %w", err)
	}

	qaWindows, err := dp.QueueAwareWindows(qp, dp.ConstantArrivalRate(vin), depart, horizon)
	if err != nil {
		return nil, err
	}
	qaCfg := dpCfg
	qaCfg.Windows = qaWindows
	// The VM model ignores per-vehicle start-up reaction delays, so real
	// queues discharge slightly later than T_q predicts; a wider start
	// margin absorbs that model-vs-reality gap. The end margin keeps the
	// plan clear of the green→red edge under execution drift — the
	// deployable queue-aware system carries both safety margins, while
	// the green-window baseline (like the GLOSA-style prior work it
	// stands in for) has no queue or drift model at all.
	qaCfg.WindowMarginSec = 3
	qaCfg.WindowEndMarginSec = 6
	proposedPlan, err := dp.Optimize(qaCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: proposed DP: %w", err)
	}

	currentExec, err := ReplayInSim(route, currentPlan.Profile, ReplayConfig{
		DepartTime: depart, ArrivalRate: vin, StraightRatio: qp.StraightRatio, Seed: 99,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: executing current DP: %w", err)
	}
	proposedExec, err := ReplayInSim(route, proposedPlan.Profile, ReplayConfig{
		DepartTime: depart, ArrivalRate: vin, StraightRatio: qp.StraightRatio, Seed: 99,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: executing proposed DP: %w", err)
	}

	wearModel, err := ev.NewWearModel(vehicleParams())
	if err != nil {
		return nil, err
	}
	res := &ComparisonResult{DepartTime: depart}
	add := func(kind ProfileKind, planned, executed *profile.Profile) error {
		mah, err := executed.EnergyMAh(vehicleParams(), route.GradeAt)
		if err != nil {
			return err
		}
		wear, err := executed.Wear(wearModel, route.GradeAt)
		if err != nil {
			return err
		}
		res.Items = append(res.Items, ComparisonItem{
			Kind: kind, Planned: planned, Executed: executed,
			EnergyMAh: mah, TripSec: executed.Duration(),
			Stops:           signalAreaStops(executed, route),
			SlowestSignalMS: slowestNearSignals(executed, route),
			WearMilliCycles: wear * 1000,
		})
		return nil
	}
	if err := add(KindMild, mild, mild); err != nil {
		return nil, err
	}
	if err := add(KindFast, fast, fast); err != nil {
		return nil, err
	}
	if err := add(KindCurrentDP, currentPlan.Profile, currentExec); err != nil {
		return nil, err
	}
	if err := add(KindProposed, proposedPlan.Profile, proposedExec); err != nil {
		return nil, err
	}
	return res, nil
}

// signalAreaStops counts the executed profile's full stops (≥ 2 s below
// 0.3 m/s) that are not at a stop sign, i.e. stops caused by signals or
// queues.
func signalAreaStops(p *profile.Profile, route *road.Route) int {
	stops := 0
	pts := p.Points()
	var start float64
	in := false
	atSign := func(pos float64) bool {
		for _, c := range route.StopSigns() {
			if math.Abs(pos-c.PositionM) < 30 {
				return true
			}
		}
		return false
	}
	var stopPos float64
	for _, pt := range pts {
		stopped := pt.V <= 0.3
		switch {
		case stopped && !in:
			in, start, stopPos = true, pt.T, pt.Pos
		case !stopped && in:
			in = false
			if pt.T-start >= 2 && start > pts[0].T+1e-9 && !atSign(stopPos) {
				stops++
			}
		}
	}
	return stops
}

// slowestNearSignals returns the minimum speed within any signal approach
// area (150 m before to 50 m past the stop line).
func slowestNearSignals(p *profile.Profile, route *road.Route) float64 {
	min := math.Inf(1)
	for _, sig := range route.Signals() {
		for _, pt := range p.Points() {
			if pt.Pos > sig.PositionM-150 && pt.Pos < sig.PositionM+50 && pt.V < min {
				min = pt.V
			}
		}
	}
	return min
}

// ReplayConfig parameterizes ReplayInSim.
type ReplayConfig struct {
	// DepartTime is when the EV enters the corridor.
	DepartTime float64
	// WarmupSec of background traffic precedes the departure (default 120).
	WarmupSec float64
	// ArrivalRate is the background arrival rate (veh/s).
	ArrivalRate float64
	// StraightRatio is the γ split at signals.
	StraightRatio float64
	// Seed drives the simulation.
	Seed int64
	// LookaheadM is how far ahead of the EV's position the plan's speed is
	// sampled as the command (default 8 m).
	LookaheadM float64
	// MaxTripSec aborts a stuck replay (default 1200).
	MaxTripSec float64
}

// ReplayInSim executes a planned velocity profile in the microsimulator
// through the trasi socket protocol (as the paper replayed DP profiles in
// SUMO via TraCI) and returns the executed trajectory. The command at each
// tick is the plan's speed a little ahead of the EV's actual position, so
// queue-induced delays do not desynchronize the replay; the simulator's
// safety layer (leaders, red lights, stop signs) may override commands.
func ReplayInSim(route *road.Route, plan *profile.Profile, cfg ReplayConfig) (*profile.Profile, error) {
	if route == nil || plan == nil {
		return nil, fmt.Errorf("experiments: replay needs a route and a plan")
	}
	if cfg.WarmupSec == 0 {
		cfg.WarmupSec = 120
	}
	if cfg.LookaheadM == 0 {
		cfg.LookaheadM = 8
	}
	if cfg.MaxTripSec == 0 {
		cfg.MaxTripSec = 1200
	}
	var arrivals queue.RateFunc
	if cfg.ArrivalRate > 0 {
		// Pause arrivals briefly around the EV's entry so the injection
		// point is clear; traffic already ahead of the EV (which is what
		// forms the queues) is unaffected.
		rate := cfg.ArrivalRate
		arrivals = func(t float64) float64 {
			if t >= cfg.DepartTime-15 && t < cfg.DepartTime+5 {
				return 0
			}
			return rate
		}
	}
	simulation, err := sim.New(sim.Config{
		Route:         route,
		Seed:          cfg.Seed,
		Arrivals:      arrivals,
		StraightRatio: cfg.StraightRatio,
		StartTime:     cfg.DepartTime - cfg.WarmupSec,
	})
	if err != nil {
		return nil, err
	}
	srv, err := trasi.NewServer(simulation)
	if err != nil {
		return nil, err
	}
	srv.Logf = func(string, ...any) {}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	client, err := trasi.Dial(addr.String())
	if err != nil {
		return nil, err
	}
	defer client.Close()

	// Warm up background traffic, then inject the EV.
	warmupSteps := uint32(math.Round(cfg.WarmupSec / simulation.StepSec()))
	if warmupSteps > 0 {
		if _, err := client.Step(warmupSteps); err != nil {
			return nil, err
		}
	}
	const id = "ev-under-test"
	added := false
	for attempt := 0; attempt < 40; attempt++ { // up to ~20 s of sim time
		if err := client.AddVehicle(id); err == nil {
			added = true
			break
		}
		if _, err := client.Step(1); err != nil {
			return nil, err
		}
	}
	if !added {
		return nil, fmt.Errorf("experiments: entry never cleared for the EV")
	}
	deadline := cfg.DepartTime + cfg.MaxTripSec
	for {
		st, err := client.GetVehicle(id)
		if err != nil {
			return nil, err
		}
		if st.Done {
			break
		}
		now, err := client.Time()
		if err != nil {
			return nil, err
		}
		if now > deadline {
			return nil, fmt.Errorf("experiments: replay exceeded %.0f s (EV at %.0f m)", cfg.MaxTripSec, st.PosM)
		}
		cmd := plan.SpeedAtPos(st.PosM + cfg.LookaheadM)
		// Never command a permanent crawl: the simulator enforces all
		// mandatory stops itself, so a small floor lets the EV creep out
		// of plan positions where the planned speed is zero.
		if cmd < 1.0 {
			cmd = 1.0
		}
		if err := client.SetSpeed(id, cmd); err != nil {
			return nil, err
		}
		if _, err := client.Step(1); err != nil {
			return nil, err
		}
	}
	return client.GetTrace(id)
}
