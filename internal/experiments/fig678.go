package experiments

import (
	"evvo/internal/units"
	"fmt"
	"io"
)

// Fig6 compares planned vs sim-executed DP profiles (the paper's Fig. 6):
// the current (green-window) DP's executed profile stops or decelerates at
// signal queues, while the proposed queue-aware DP's does not.
type Fig6Result struct {
	*ComparisonResult
}

// Fig6 runs the comparison (or reuses one) and wraps it for rendering.
func Fig6(fid Fidelity) (*Fig6Result, error) {
	c, err := Comparison(fid)
	if err != nil {
		return nil, err
	}
	return &Fig6Result{c}, nil
}

// Render writes planned-vs-executed speed-by-distance tables for both DPs.
func (r *Fig6Result) Render(w io.Writer) error {
	for _, kind := range []ProfileKind{KindCurrentDP, KindProposed} {
		it, err := r.Item(kind)
		if err != nil {
			return err
		}
		panel := "(a) existing DP method"
		if kind == KindProposed {
			panel = "(b) proposed DP method"
		}
		if _, err := fmt.Fprintf(w, "Fig. 6%s — planned vs SUMO-style executed profile (signal-area stops: %d, slowest signal-area speed: %.1f km/h)\n",
			panel, it.Stops, units.MpsToKmh(it.SlowestSignalMS)); err != nil {
			return err
		}
		header := []string{"pos (m)", "planned (km/h)", "executed (km/h)"}
		var rows [][]string
		for pos := 0.0; pos <= 4200; pos += 200 {
			rows = append(rows, []string{
				fmt.Sprintf("%.0f", pos),
				fmt.Sprintf("%.1f", units.MpsToKmh(it.Planned.SpeedAtPos(pos))),
				fmt.Sprintf("%.1f", units.MpsToKmh(it.Executed.SpeedAtPos(pos))),
			})
		}
		if err := writeTable(w, header, rows); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// Fig7Result is the total-energy comparison of the paper's Fig. 7.
type Fig7Result struct {
	*ComparisonResult
}

// Fig7 runs the comparison and wraps it for rendering.
func Fig7(fid Fidelity) (*Fig7Result, error) {
	c, err := Comparison(fid)
	if err != nil {
		return nil, err
	}
	return &Fig7Result{c}, nil
}

// Savings returns the proposed method's energy saving relative to another
// profile, as a fraction (paper: 17.5% vs fast, 8.4% vs mild, 5.1% vs
// current DP).
func (r *Fig7Result) Savings(vs ProfileKind) (float64, error) {
	prop, err := r.Item(KindProposed)
	if err != nil {
		return 0, err
	}
	other, err := r.Item(vs)
	if err != nil {
		return 0, err
	}
	if other.EnergyMAh == 0 {
		return 0, fmt.Errorf("experiments: %q consumed zero energy", vs)
	}
	return 1 - prop.EnergyMAh/other.EnergyMAh, nil
}

// Render writes the energy table with savings.
func (r *Fig7Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Fig. 7 — total energy consumption of the four velocity profiles"); err != nil {
		return err
	}
	header := []string{"profile", "energy (mAh)", "trip (s)", "stops", "wear (mcycles)", "proposed saves"}
	var rows [][]string
	for _, it := range r.Items {
		saving := "—"
		if it.Kind != KindProposed {
			if s, err := r.Savings(it.Kind); err == nil {
				saving = fmt.Sprintf("%.1f%%", s*100)
			}
		}
		rows = append(rows, []string{
			string(it.Kind),
			fmt.Sprintf("%.1f", it.EnergyMAh),
			fmt.Sprintf("%.1f", it.TripSec),
			fmt.Sprintf("%d", it.Stops),
			fmt.Sprintf("%.2f", it.WearMilliCycles),
			saving,
		})
	}
	if err := writeTable(w, header, rows); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "paper: proposed saves 17.5% vs fast, 8.4% vs mild, 5.1% vs current DP")
	return err
}

// Fig8Result is the time–distance comparison of the paper's Fig. 8.
type Fig8Result struct {
	*ComparisonResult
}

// Fig8 runs the comparison and wraps it for rendering.
func Fig8(fid Fidelity) (*Fig8Result, error) {
	c, err := Comparison(fid)
	if err != nil {
		return nil, err
	}
	return &Fig8Result{c}, nil
}

// Render writes arrival-time-by-distance curves; flat regions are stops.
func (r *Fig8Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Fig. 8 — trip time by distance (s since departure)"); err != nil {
		return err
	}
	header := []string{"pos (m)"}
	for _, it := range r.Items {
		header = append(header, string(it.Kind))
	}
	var rows [][]string
	for pos := 0.0; pos <= 4200; pos += 300 {
		row := []string{fmt.Sprintf("%.0f", pos)}
		for _, it := range r.Items {
			row = append(row, fmt.Sprintf("%.0f", it.Executed.TimeAtPos(pos)-r.DepartTime))
		}
		rows = append(rows, row)
	}
	if err := writeTable(w, header, rows); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "paper: proposed matches fast driving's total time and beats current DP")
	return err
}
