package experiments

import (
	"fmt"
	"io"

	"evvo/internal/ev"
	"evvo/internal/road"
)

// Fig3Result is the energy-consumption-rate surface of the paper's Fig. 3:
// ζ(v, a) for a pure EV on flat ground, negative under deceleration
// (regenerative braking).
type Fig3Result struct {
	// SpeedsKmh are the grid speeds (columns).
	SpeedsKmh []float64
	// Accels are the grid accelerations in m/s² (rows).
	Accels []float64
	// RateAmps[i][j] is ζ in amperes at Accels[i], SpeedsKmh[j].
	RateAmps [][]float64
}

// Fig3 evaluates the energy model over the paper's grid: speeds 0–120 km/h,
// accelerations −1.5–+2.5 m/s².
func Fig3(params ev.Params) (*Fig3Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	r := &Fig3Result{}
	for v := 0.0; v <= 120.0001; v += 10 {
		r.SpeedsKmh = append(r.SpeedsKmh, v)
	}
	for a := -1.5; a <= 2.5001; a += 0.5 {
		r.Accels = append(r.Accels, a)
	}
	for _, a := range r.Accels {
		row := make([]float64, 0, len(r.SpeedsKmh))
		for _, vKmh := range r.SpeedsKmh {
			row = append(row, params.ChargeRate(road.KmhToMs(vKmh), a, 0))
		}
		r.RateAmps = append(r.RateAmps, row)
	}
	return r, nil
}

// Render writes the surface as an aligned table (rows: acceleration).
func (r *Fig3Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Fig. 3 — energy consumption rate ζ (A) of a pure EV, θ = 0"); err != nil {
		return err
	}
	header := []string{"a (m/s²) \\ v (km/h)"}
	for _, v := range r.SpeedsKmh {
		header = append(header, fmt.Sprintf("%.0f", v))
	}
	var rows [][]string
	for i, a := range r.Accels {
		row := []string{fmt.Sprintf("%+.1f", a)}
		for _, z := range r.RateAmps[i] {
			row = append(row, fmt.Sprintf("%.1f", z))
		}
		rows = append(rows, row)
	}
	return writeTable(w, header, rows)
}
