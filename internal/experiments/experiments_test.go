package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"evvo/internal/ev"
	"evvo/internal/metrics"
	"evvo/internal/road"
)

func TestFidelityValidate(t *testing.T) {
	if err := FidelityFast.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := fidelityInvalid.Validate(); err == nil {
		t.Fatal("invalid fidelity accepted")
	}
	if err := Fidelity(99).Validate(); err == nil {
		t.Fatal("out-of-range fidelity accepted")
	}
}

func TestFig3SurfaceShape(t *testing.T) {
	r, err := Fig3(vehicleParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SpeedsKmh) != 13 || len(r.Accels) != 9 {
		t.Fatalf("grid %dx%d, want 13x9", len(r.SpeedsKmh), len(r.Accels))
	}
	// Paper shape: rate grows with acceleration; negative under hard decel
	// at speed (regen).
	last := r.RateAmps[len(r.RateAmps)-1] // a = +2.5 row
	first := r.RateAmps[0]                // a = −1.5 row
	for j := range last {
		if j > 0 && last[j] <= first[j] {
			t.Fatalf("rate at a=+2.5 should exceed a=−1.5 at %v km/h", r.SpeedsKmh[j])
		}
	}
	if first[len(first)-1] >= 0 {
		t.Fatalf("hard decel at 120 km/h should regen, got %v A", first[len(first)-1])
	}
	if math.Abs(r.RateAmps[3][0]) > 1e-9 { // a = 0, v = 0
		t.Fatalf("standstill rate = %v, want 0", r.RateAmps[3][0])
	}
}

func TestFig3RejectsBadParams(t *testing.T) {
	if _, err := Fig3(ev.Params{}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestFig3Render(t *testing.T) {
	r, err := Fig3(vehicleParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig. 3") || !strings.Contains(out, "120") {
		t.Fatalf("render output missing content:\n%s", out)
	}
}

func TestFig4FastRuns(t *testing.T) {
	r, err := Fig4(FidelityFast)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Days) != 7 {
		t.Fatalf("days = %d, want 7", len(r.Days))
	}
	if len(r.TestWeek) != 7*24 {
		t.Fatalf("test week hours = %d", len(r.TestWeek))
	}
	if r.OverallMRE <= 0 || r.OverallMRE > 0.6 {
		t.Fatalf("overall MRE %v implausible", r.OverallMRE)
	}
	if r.OverallRMSE <= 0 || r.OverallRMSE >= metrics.Max(r.TestWeek) {
		t.Fatalf("overall RMSE %v implausible", r.OverallRMSE)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MRE") {
		t.Fatal("render missing MRE")
	}
}

func TestFig4RejectsInvalidFidelity(t *testing.T) {
	if _, err := Fig4(fidelityInvalid); err == nil {
		t.Fatal("invalid fidelity accepted")
	}
}

func TestFig5Shapes(t *testing.T) {
	r, err := Fig5(FidelityFast)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.TimeSec) == 0 || len(r.VMLeaving) != len(r.TimeSec) || len(r.RealQueueM) != len(r.TimeSec) {
		t.Fatalf("misaligned series: %d/%d/%d", len(r.TimeSec), len(r.VMLeaving), len(r.RealQueueM))
	}
	// Paper Fig. 5(a): the VM model ramps; the current model steps. Just
	// after green onset (t = 31 s; index = 62 at 0.5 s sampling) the VM
	// leaving rate must be below the current model's.
	i31 := 62
	if r.VMLeaving[i31] >= r.CurrentLeaving[i31] {
		t.Fatalf("VM rate %v should be below step rate %v during the ramp",
			r.VMLeaving[i31], r.CurrentLeaving[i31])
	}
	// Paper Fig. 5(b): the VM clear time is later than the current model's.
	if r.VMClearSec <= r.CurrentClearSec {
		t.Fatalf("VM clear %v should be later than current %v", r.VMClearSec, r.CurrentClearSec)
	}
	// Queues build during red in all three series.
	peakReal := metrics.Max(r.RealQueueM)
	if peakReal <= 0 {
		t.Fatal("real queue never built")
	}
	if metrics.Max(r.VMQueueM) <= 0 {
		t.Fatal("VM queue never built")
	}
	// The real queue drains by end of cycle on average.
	if r.RealQueueM[len(r.RealQueueM)-1] > peakReal/2 {
		t.Fatalf("real queue did not substantially drain: end %v, peak %v",
			r.RealQueueM[len(r.RealQueueM)-1], peakReal)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 5") {
		t.Fatal("render missing title")
	}
}

// TestComparisonPaperShape verifies the headline claims of Figs. 6–8 hold
// in shape: proposed DP stops nowhere, beats every other profile on energy,
// and does not lose trip time to the current DP.
func TestComparisonPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison is a full pipeline run")
	}
	r, err := Comparison(FidelityFast)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Items) != 4 {
		t.Fatalf("items = %d, want 4", len(r.Items))
	}
	prop, err := r.Item(KindProposed)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := r.Item(KindCurrentDP)
	if err != nil {
		t.Fatal(err)
	}
	mild, _ := r.Item(KindMild)
	fast, _ := r.Item(KindFast)

	// Fig. 6(b): the proposed profile has no stops at signals.
	if prop.Stops != 0 {
		t.Errorf("proposed DP executed profile has %d stops, want 0", prop.Stops)
	}
	// Fig. 6(a): the current DP meets the discharging queue — it stops or
	// decelerates hard in a signal area, clearly below the proposed DP's
	// slowest signal-area speed.
	if cur.Stops == 0 && cur.SlowestSignalMS > prop.SlowestSignalMS-2 {
		t.Errorf("current DP shows no queue impact: stops=%d slowest=%.2f vs proposed %.2f",
			cur.Stops, cur.SlowestSignalMS, prop.SlowestSignalMS)
	}
	// Fig. 6(b): the proposed DP never decelerates hard at a signal.
	if prop.SlowestSignalMS < 8 {
		t.Errorf("proposed DP slowed to %.2f m/s in a signal area", prop.SlowestSignalMS)
	}
	// Fig. 7(b): energy ordering — proposed < current DP < mild < fast is
	// the paper's headline; require at least proposed strictly best.
	for _, other := range []ComparisonItem{cur, mild, fast} {
		if prop.EnergyMAh >= other.EnergyMAh {
			t.Errorf("proposed %.1f mAh should beat %s %.1f mAh", prop.EnergyMAh, other.Kind, other.EnergyMAh)
		}
	}
	if fast.EnergyMAh <= mild.EnergyMAh {
		t.Errorf("fast %.1f mAh should exceed mild %.1f mAh", fast.EnergyMAh, mild.EnergyMAh)
	}
	// Fig. 8: proposed stays within a few seconds of the current DP (the
	// paper has it strictly faster; with the tiny 153 veh/h queues here
	// the baseline's queue encounter costs energy more than time).
	if prop.TripSec > cur.TripSec+15 {
		t.Errorf("proposed trip %.1f s much slower than current DP %.1f s", prop.TripSec, cur.TripSec)
	}

	// All three figure renderers share this result.
	for _, render := range []func() error{
		func() error { var b bytes.Buffer; return (&Fig6Result{r}).Render(&b) },
		func() error { var b bytes.Buffer; return (&Fig7Result{r}).Render(&b) },
		func() error { var b bytes.Buffer; return (&Fig8Result{r}).Render(&b) },
	} {
		if err := render(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFig7Savings(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	r, err := Fig7(FidelityFast)
	if err != nil {
		t.Fatal(err)
	}
	for _, vs := range []ProfileKind{KindMild, KindFast, KindCurrentDP} {
		s, err := r.Savings(vs)
		if err != nil {
			t.Fatal(err)
		}
		if s <= 0 || s > 0.6 {
			t.Errorf("savings vs %s = %.3f implausible", vs, s)
		}
	}
	if _, err := r.Savings(ProfileKind("bogus")); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := ReplayInSim(nil, nil, ReplayConfig{}); err == nil {
		t.Fatal("nil inputs accepted")
	}
	_ = road.US25()
}

func TestComparisonRejectsInvalidFidelity(t *testing.T) {
	if _, err := Comparison(fidelityInvalid); err == nil {
		t.Fatal("invalid fidelity accepted")
	}
	if _, err := Fig5(fidelityInvalid); err == nil {
		t.Fatal("invalid fidelity accepted")
	}
}

func TestGradeStudy(t *testing.T) {
	r, err := GradeStudy(FidelityFast)
	if err != nil {
		t.Fatal(err)
	}
	// The flat model must underestimate the cost of graded terrain (net
	// climb energy is not fully recovered on the descent).
	if r.FlatPlanOnGradeMAh <= r.FlatEstimateMAh {
		t.Fatalf("flat estimate %.1f not below graded truth %.1f", r.FlatEstimateMAh, r.FlatPlanOnGradeMAh)
	}
	// The grade-aware plan must not be worse than the blind plan on the
	// same terrain.
	if r.AwarePlanMAh > r.FlatPlanOnGradeMAh+1 {
		t.Fatalf("grade-aware plan %.1f worse than blind plan %.1f", r.AwarePlanMAh, r.FlatPlanOnGradeMAh)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Gradient study") {
		t.Fatal("render missing title")
	}
	if _, err := GradeStudy(fidelityInvalid); err == nil {
		t.Fatal("invalid fidelity accepted")
	}
}

func TestFleetStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-EV pipeline")
	}
	s, err := RunFleetStudy(FidelityFast)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.QueueAware) != fleetSize || len(s.Green) != fleetSize {
		t.Fatalf("trip counts %d/%d", len(s.QueueAware), len(s.Green))
	}
	for i, tr := range s.QueueAware {
		if tr.EnergyMAh <= 0 || tr.TripSec <= 0 {
			t.Fatalf("queue-aware trip %d malformed: %+v", i, tr)
		}
	}
	// The queue-aware fleet must not stop more than the green fleet, and
	// should not spend more energy on average.
	if TotalStops(s.QueueAware) > TotalStops(s.Green) {
		t.Errorf("queue-aware fleet stops %d exceed green fleet %d",
			TotalStops(s.QueueAware), TotalStops(s.Green))
	}
	if MeanEnergy(s.QueueAware) > MeanEnergy(s.Green)*1.02 {
		t.Errorf("queue-aware fleet mean %.1f above green fleet %.1f",
			MeanEnergy(s.QueueAware), MeanEnergy(s.Green))
	}
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fleet study") {
		t.Fatal("render missing title")
	}
	if _, err := RunFleetStudy(fidelityInvalid); err == nil {
		t.Fatal("invalid fidelity accepted")
	}
}

func TestComparisonWearOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	r, err := Comparison(FidelityFast)
	if err != nil {
		t.Fatal(err)
	}
	prop, _ := r.Item(KindProposed)
	fast, _ := r.Item(KindFast)
	if prop.WearMilliCycles <= 0 {
		t.Fatalf("proposed wear %v not positive", prop.WearMilliCycles)
	}
	// Fast driving's high currents must age the pack faster than the
	// optimized profile — the battery-lifetime motivation of the paper's
	// introduction.
	if fast.WearMilliCycles <= prop.WearMilliCycles {
		t.Fatalf("fast wear %v not above proposed %v", fast.WearMilliCycles, prop.WearMilliCycles)
	}
}

// TestFig4FastMREPinned pins the fast-fidelity Fig. 4 metrics to their
// historical values: the batched neural engine and any worker count must
// reproduce the pre-batching per-sample results bit for bit, so a drift
// here means an accumulation-order regression, not tuning noise.
func TestFig4FastMREPinned(t *testing.T) {
	const (
		wantMRE  = 0.19489190188891936
		wantRMSE = 32.648148870083055
	)
	for _, workers := range []int{1, 0} {
		r, err := Fig4Workers(FidelityFast, workers)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.OverallMRE-wantMRE) > 1e-15 {
			t.Fatalf("workers=%d: MRE %.17g, want %.17g", workers, r.OverallMRE, wantMRE)
		}
		if math.Abs(r.OverallRMSE-wantRMSE) > 1e-12 {
			t.Fatalf("workers=%d: RMSE %.17g, want %.17g", workers, r.OverallRMSE, wantRMSE)
		}
	}
}
