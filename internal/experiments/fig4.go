package experiments

import (
	"fmt"
	"io"

	"evvo/internal/traffic"
)

// Fig4Result reproduces the paper's Fig. 4: (a) one week of traffic volume
// and (b) per-day MRE/RMSE of the SAE predictor on that week.
type Fig4Result struct {
	// TestWeek is the held-out week's hourly volume (Fig. 4(a)).
	TestWeek []float64
	// Days are per-day prediction scores (Fig. 4(b)).
	Days []traffic.DayScore
	// OverallMRE and OverallRMSE summarize the whole week.
	OverallMRE, OverallRMSE float64
}

// Fig4 synthesizes the SC-DOT-style dataset (three months of training data
// plus a one-week test, mirroring Section III-A-2), trains the SAE
// predictor, and scores it per day.
func Fig4(fid Fidelity) (*Fig4Result, error) {
	return Fig4Workers(fid, 0)
}

// Fig4Workers is Fig4 with an explicit cap on SAE training parallelism
// (0 = all cores). The result is bit-identical for any worker count; the
// knob only affects throughput.
func Fig4Workers(fid Fidelity, workers int) (*Fig4Result, error) {
	if err := fid.Validate(); err != nil {
		return nil, err
	}
	weeks, window := 14, 24
	pcfg := traffic.PredictorConfig{
		Window: window, Hidden: []int{48, 24},
		PretrainEpochs: 20, FinetuneEpochs: 350, Seed: 7,
	}
	if fid == FidelityFast {
		weeks = 5
		pcfg = traffic.PredictorConfig{
			Window: 12, Hidden: []int{16, 8},
			PretrainEpochs: 5, FinetuneEpochs: 40, Seed: 7,
		}
	}
	pcfg.Workers = workers
	all, err := traffic.Synthesize(traffic.SyntheticConfig{Weeks: weeks, Seed: 20160301})
	if err != nil {
		return nil, err
	}
	trainEnd := (weeks - 1) * traffic.HoursPerWeek
	train, err := all.Slice(0, trainEnd)
	if err != nil {
		return nil, err
	}
	test, err := all.Slice(trainEnd, weeks*traffic.HoursPerWeek)
	if err != nil {
		return nil, err
	}
	p, err := traffic.TrainPredictor(train, pcfg)
	if err != nil {
		return nil, err
	}
	days, err := p.EvaluateByDay(test, trainEnd)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{TestWeek: test.Values, Days: days}
	// Overall scores: weight days equally (they have near-equal samples).
	for _, d := range days {
		res.OverallMRE += d.MRE / float64(len(days))
		res.OverallRMSE += d.RMSE / float64(len(days))
	}
	return res, nil
}

// Render writes Fig. 4(b)'s table plus a compact view of the test week.
func (r *Fig4Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Fig. 4(a) — test-week traffic volume (veh/h, daily min/mean/max)"); err != nil {
		return err
	}
	var rows [][]string
	for d := 0; d*24+24 <= len(r.TestWeek); d++ {
		day := r.TestWeek[d*24 : d*24+24]
		mn, mx, sum := day[0], day[0], 0.0
		for _, v := range day {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
			sum += v
		}
		rows = append(rows, []string{
			traffic.DayOfWeek(d * 24).String(),
			fmt.Sprintf("%.0f", mn), fmt.Sprintf("%.0f", sum/24), fmt.Sprintf("%.0f", mx),
		})
	}
	if err := writeTable(w, []string{"day", "min", "mean", "max"}, rows); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "\nFig. 4(b) — SAE prediction accuracy per day"); err != nil {
		return err
	}
	rows = rows[:0]
	for _, d := range r.Days {
		rows = append(rows, []string{d.Day, fmt.Sprintf("%.1f%%", d.MRE*100), fmt.Sprintf("%.1f", d.RMSE)})
	}
	if err := writeTable(w, []string{"day", "MRE", "RMSE (veh/h)"}, rows); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "overall: MRE %.1f%%  RMSE %.1f veh/h  (paper: MRE < 10%% every day)\n",
		r.OverallMRE*100, r.OverallRMSE)
	return err
}
