package experiments

import (
	"fmt"
	"io"

	"evvo/internal/queue"
	"evvo/internal/road"
	"evvo/internal/sim"
	"evvo/internal/units"
)

// Fig5Result reproduces the paper's Fig. 5: traffic dynamics over one
// signal cycle at the second US-25 light. (a) compares the VM model's
// leaving rate against the prior step model; (b) compares the QL model's
// queue length against the prior model and the "real" (simulated) queue.
type Fig5Result struct {
	// TimeSec are into-cycle sample times.
	TimeSec []float64
	// VInVehPerSec is the constant arrival rate.
	VInVehPerSec float64
	// VMLeaving and CurrentLeaving are leaving rates (veh/s) per sample.
	VMLeaving, CurrentLeaving []float64
	// VMQueueM, CurrentQueueM, RealQueueM are queue lengths in metres.
	VMQueueM, CurrentQueueM, RealQueueM []float64
	// VMClearSec and CurrentClearSec are the models' queue-zero times.
	VMClearSec, CurrentClearSec float64
}

// Fig5 evaluates both analytic models over one cycle and measures the
// ground-truth queue from the microsimulator, averaged across cycles.
func Fig5(fid Fidelity) (*Fig5Result, error) {
	if err := fid.Validate(); err != nil {
		return nil, err
	}
	params := queue.US25Params()
	timing := paperTiming()
	vin := paperVin()

	m, err := queue.NewModel(params, timing)
	if err != nil {
		return nil, err
	}
	cur, err := queue.NewCurrentModel(params, timing)
	if err != nil {
		return nil, err
	}

	res := &Fig5Result{VInVehPerSec: vin}
	res.VMClearSec, _ = m.QueueClearTime(vin)
	res.CurrentClearSec, _ = cur.QueueClearTime(vin)

	const dt = 0.5
	for t := 0.0; t <= timing.CycleSec(); t += dt {
		res.TimeSec = append(res.TimeSec, t)
		res.VMLeaving = append(res.VMLeaving, m.LeavingRate(t, vin))
		res.CurrentLeaving = append(res.CurrentLeaving, cur.LeavingRate(t, vin))
		res.VMQueueM = append(res.VMQueueM, m.QueueLenM(t, vin))
		res.CurrentQueueM = append(res.CurrentQueueM, cur.QueueLenM(t, vin))
	}

	real, err := measureRealQueue(fid, params, timing, vin, len(res.TimeSec), dt)
	if err != nil {
		return nil, err
	}
	res.RealQueueM = real
	return res, nil
}

// measureRealQueue runs a single-signal microsimulation and averages the
// measured queue per into-cycle offset across many cycles, in metres
// (vehicles × the QL model's spacing d, the paper's unit).
func measureRealQueue(fid Fidelity, params queue.Params, timing road.SignalTiming,
	vin float64, samples int, dt float64) ([]float64, error) {

	route, err := road.NewRoute(road.RouteConfig{
		LengthM:      2000,
		DefaultMaxMS: road.KmhToMs(60),
		Controls: []road.Control{{
			Kind: road.ControlSignal, PositionM: 1500, Timing: timing, Name: "light",
		}},
	})
	if err != nil {
		return nil, err
	}
	s, err := sim.New(sim.Config{
		Route:         route,
		StepSec:       dt,
		Seed:          5,
		Arrivals:      queue.ConstantRate(vin),
		StraightRatio: params.StraightRatio,
	})
	if err != nil {
		return nil, err
	}
	warmup, cycles := 300.0, 30
	if fid == FidelityFast {
		warmup, cycles = 120, 6
	}
	s.RunUntil(warmup - timingPhaseLead(timing, warmup))

	sums := make([]float64, samples)
	counts := make([]int, samples)
	for c := 0; c < cycles; c++ {
		for i := 0; i < samples; i++ {
			q, err := s.QueueAt("light")
			if err != nil {
				return nil, err
			}
			sums[i] += float64(q) * params.SpacingM
			counts[i]++
			s.Step()
		}
	}
	out := make([]float64, samples)
	for i := range sums {
		out[i] = sums[i] / float64(counts[i])
	}
	return out, nil
}

// timingPhaseLead returns how far past a cycle boundary time t is, so the
// caller can align measurement to cycle starts.
func timingPhaseLead(timing road.SignalTiming, t float64) float64 {
	_, into := timing.PhaseAt(t)
	return into
}

// Render writes both panels as tables.
func (r *Fig5Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig. 5 — traffic dynamics over one signal cycle (V_in = %.0f veh/h)\n",
		units.VehPerSecToVehPerHour(r.VInVehPerSec)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "queue clears: VM model %.1f s, current model %.1f s (green opens at 30 s)\n\n",
		r.VMClearSec, r.CurrentClearSec); err != nil {
		return err
	}
	header := []string{"t (s)", "Vout VM (veh/s)", "Vout current", "Lq VM (m)", "Lq current (m)", "Lq real (m)"}
	var rows [][]string
	for i, t := range r.TimeSec {
		if i%4 != 0 { // render every 2 s
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", t),
			fmt.Sprintf("%.3f", r.VMLeaving[i]),
			fmt.Sprintf("%.3f", r.CurrentLeaving[i]),
			fmt.Sprintf("%.1f", r.VMQueueM[i]),
			fmt.Sprintf("%.1f", r.CurrentQueueM[i]),
			fmt.Sprintf("%.1f", r.RealQueueM[i]),
		})
	}
	return writeTable(w, header, rows)
}
