package experiments

import (
	"testing"

	"evvo/internal/dp"
	"evvo/internal/queue"
	"evvo/internal/road"
	"evvo/internal/traffic"
)

// TestEndToEndSAEQueuePipeline exercises the paper's complete system in one
// pass: synthesize counter data, train the SAE predictor, turn its
// prediction into an arrival rate, integrate the QL model into zero-queue
// windows, optimize with the DP, and execute the plan in the
// microsimulator over the trasi protocol under traffic driven by the same
// arrival rate.
func TestEndToEndSAEQueuePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	// 1. Traffic data and SAE predictor.
	all, err := traffic.Synthesize(traffic.SyntheticConfig{Weeks: 5, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	train, err := all.Slice(0, 4*traffic.HoursPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	p, err := traffic.TrainPredictor(train, traffic.PredictorConfig{
		Window: 12, Hidden: []int{16, 8},
		PretrainEpochs: 5, FinetuneEpochs: 40, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 2. Predict the arrival rate for the trip hour: 08:00 on the first
	// test Monday, using the preceding 12 hours as history.
	h := 4*traffic.HoursPerWeek + 8
	pred, err := p.Predict(all.Values[h-12:h], h)
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 {
		t.Fatalf("predicted volume %v, want positive at rush hour", pred)
	}
	vin := queue.VehPerHour(pred)

	// 3. Zero-queue windows from the QL model under the predicted rate.
	wf, err := dp.QueueAwareWindows(queue.US25Params(), dp.ConstantArrivalRate(vin), 0, 800)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Optimize.
	res, err := dp.Optimize(dp.Config{
		Route: road.US25(), Vehicle: vehicleParams(),
		DsM: 100, DvMS: 1, DtSec: 2, StopDwellSec: 2,
		Windows: wf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Penalized {
		t.Fatalf("plan penalized under predicted rate %.0f veh/h: %+v", pred, res.Arrivals)
	}

	// 5. Execute in the simulator under the same predicted arrival rate.
	exec, err := ReplayInSim(road.US25(), res.Profile, ReplayConfig{
		ArrivalRate: vin, StraightRatio: queue.US25Params().StraightRatio, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stops := signalAreaStops(exec, road.US25()); stops != 0 {
		t.Fatalf("executed plan stopped %d times at signals", stops)
	}
	// Execution should track the plan's trip time closely.
	if diff := exec.Duration() - res.TripSec; diff > 20 || diff < -20 {
		t.Fatalf("executed trip %.1f s deviates from planned %.1f s", exec.Duration(), res.TripSec)
	}
}
