package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicCounter enforces the concurrency contract around internal/par
// and internal/metrics:
//
//  1. Code running concurrently — a function literal handed to
//     par.ForEach, or the body of a go statement — must not write bare
//     captured variables. The blessed patterns are sync/atomic, the
//     metrics API, a mutex held around the write, or par's own
//     index-addressed contract ("each fn(i) writes only slot i"), which
//     is why slice/array element writes are allowed while captured map
//     writes (never index-safe) are not.
//  2. metrics.Counter / metrics.LabeledCounter values must be mutated
//     through their methods everywhere; overwriting one wholesale
//     (s.requests = metrics.Counter{}) resets it non-atomically and
//     copies its internal lock.
//
// The mutex heuristic is deliberately simple: a worker body that calls
// .Lock() before the write is trusted (the race detector in `make race`
// remains the ground truth); everything else must be atomic or
// index-addressed.
var AtomicCounter = &Analyzer{
	Name: "atomiccounter",
	Doc: "concurrent workers must mutate shared state via sync/atomic, the metrics API, or index-addressed slots\n\n" +
		"Flags bare captured-variable writes (and captured map writes) inside par.ForEach\n" +
		"workers and go-statement bodies, and wholesale overwrites of metrics counters.",
	Run: runAtomicCounter,
}

func runAtomicCounter(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isParForEach(pass, n) && len(n.Args) == 3 {
					if lit, ok := n.Args[2].(*ast.FuncLit); ok {
						checkWorkerBody(pass, lit, "par.ForEach worker")
					}
				}
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkWorkerBody(pass, lit, "goroutine")
				}
			case *ast.AssignStmt:
				checkCounterOverwrite(pass, n)
			}
			return true
		})
	}
	return nil
}

// isParForEach matches calls to the par package's ForEach (by final
// import-path segment, so fixtures can provide their own par package).
func isParForEach(pass *Pass, call *ast.CallExpr) bool {
	pkgPath, funcName, ok := calledPackageFunc(pass, call)
	return ok && lastSegment(pkgPath) == "par" && funcName == "ForEach"
}

// checkWorkerBody flags writes to captured state inside a concurrently
// executed function literal.
func checkWorkerBody(pass *Pass, lit *ast.FuncLit, kind string) {
	lockSeen := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested literals are the inner worker's business
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Lock" {
				lockSeen = true
			}
		case *ast.IncDecStmt:
			checkWorkerWrite(pass, lit, n.X, lockSeen, kind)
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkWorkerWrite(pass, lit, lhs, lockSeen, kind)
			}
		}
		return true
	})
}

// checkWorkerWrite applies the write rules to one assignment target.
func checkWorkerWrite(pass *Pass, lit *ast.FuncLit, target ast.Expr, lockHeld bool, kind string) {
	if lockHeld {
		return // mutex discipline assumed; `make race` keeps it honest
	}
	target = unparen(target)
	if idx, ok := target.(*ast.IndexExpr); ok {
		// Index-addressed slice/array slots are par's contract; maps are
		// not index-safe and fall through to the captured-write check.
		if !isMapIndex(pass, idx) {
			return
		}
		target = idx.X
	}
	root := rootIdent(target)
	if root == nil {
		return
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		obj = pass.TypesInfo.Defs[root]
	}
	if obj == nil || isDeclaredWithin(obj, lit) {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	pass.Reportf(target.Pos(),
		"captured %q written inside a %s without synchronization: use sync/atomic, the metrics API, a mutex, or an index-addressed slot",
		root.Name, kind)
}

// checkCounterOverwrite flags wholesale assignment to a metrics counter.
func checkCounterOverwrite(pass *Pass, assign *ast.AssignStmt) {
	if assign.Tok != token.ASSIGN {
		return
	}
	for _, lhs := range assign.Lhs {
		t := pass.TypesInfo.Types[lhs].Type
		if t == nil {
			continue
		}
		name := types.TypeString(t, nil)
		if strings.HasSuffix(name, "metrics.Counter") || strings.HasSuffix(name, "metrics.LabeledCounter") {
			pass.Reportf(lhs.Pos(),
				"metrics counter overwritten wholesale; counters are mutated only through their API (Inc/Add)")
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isMapIndex(pass *Pass, idx *ast.IndexExpr) bool {
	t := pass.TypesInfo.Types[idx.X].Type
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// rootIdent walks to the base identifier of an lvalue chain:
// (*p).f.g[i] → p.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// isDeclaredWithin reports whether obj's declaration lies inside the
// function literal (parameters included): such writes are worker-local.
func isDeclaredWithin(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() >= lit.Pos() && obj.Pos() <= lit.Body.End()
}
