package lint_test

import (
	"strings"
	"testing"

	"evvo/internal/lint"
)

func TestUnitCheck(t *testing.T) {
	res := lint.RunFixture(t, lint.UnitCheck, "unitcheck/a")
	// The fixture's one pragma-waived mix must surface as suppressed,
	// with its reason, not vanish.
	if len(res.Allowed) != 1 {
		t.Fatalf("suppressed findings = %d, want 1", len(res.Allowed))
	}
	if got := res.Allowed[0].Reason; !strings.Contains(got, "raw magnitudes") {
		t.Fatalf("suppressed reason = %q, want the pragma's justification", got)
	}
}

// TestUnitCheckBlessedPackage: a package whose path ends in "units" is
// the sanctioned home for conversion constants.
func TestUnitCheckBlessedPackage(t *testing.T) {
	res := lint.RunFixture(t, lint.UnitCheck, "unitcheck/units")
	if n := len(res.Active); n != 0 {
		t.Fatalf("unitcheck fired %d finding(s) inside the blessed units package", n)
	}
}
