package lint

// CtxProp is the transitive completion of ctxcheck: in the serving
// packages, a function that HAS the request context (a context.Context
// or *http.Request parameter) must not reach a blocking operation
// through a call chain that drops it. ctxcheck polices the entry
// discipline (handlers use the *Ctx DP entrypoints, no fresh root
// contexts mid-chain); ctxprop walks the summaries to find the chains
// where the deadline cannot possibly arrive — a ctx-less helper that
// (transitively) parks on a channel, sleeps, or performs HTTP.
//
// The finding is reported at the call site where the context is
// dropped — the first edge from a ctx-carrying function into a ctx-less
// blocking chain — because that is where the fix goes: thread the ctx
// one level further. The witness chain names the operation at the
// bottom.
//
// Deliberately NOT findings:
//   - sync.WaitGroup/Cond waits: joining workers that carry the ctx
//     themselves (par.ForEach) is the blessed bounded fan-out shape;
//   - blocking inside `go` statements and function literals: the spawned
//     goroutine parks, not the request path (goleak polices joins);
//   - ctx-carrying callees: whatever they block on is their own
//     finding, in their own package, at their own dropping call site.
var CtxProp = &Analyzer{
	Name: "ctxprop",
	Doc: "request-path call chains must thread the context all the way to every blocking operation\n\n" +
		"Flags call sites in the serving packages where a function holding a\n" +
		"context.Context (or *http.Request) calls into a context-less chain that may\n" +
		"block on channels, select, time.Sleep or HTTP — the deadline cannot reach the\n" +
		"block. Reported at the dropping call site, with the chain to the operation.",
	Run: runCtxProp,
}

// ctxPropScopes are the path segments where deadline propagation is a
// serving-contract requirement.
var ctxPropScopes = []string{"cloud", "cloudd"}

func runCtxProp(pass *Pass) error {
	if pass.Prog == nil {
		return nil
	}
	inScope := false
	for _, s := range ctxPropScopes {
		if pathHasSegments(pass.PkgPath, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, n := range pass.Prog.order {
		if n.pkg.PkgPath != pass.PkgPath || !n.sum.hasCtx {
			continue
		}
		reported := make(map[int]bool) // dedupe by call-site offset
		for _, cs := range n.calls {
			if cs.noBlock || cs.target == nil {
				continue
			}
			callee := cs.target.sum
			if callee.unguarded == nil || callee.hasCtx {
				continue
			}
			if reported[int(cs.pos)] {
				continue
			}
			reported[int(cs.pos)] = true
			chain := pass.Prog.chainString(cs.callee, callee.unguarded)
			pass.Reportf(cs.pos,
				"%s holds the request context but calls %s, a context-less chain that may block (%s via %s); thread ctx through %s so the deadline reaches the block",
				funcDisplayName(n.fn), funcDisplayName(cs.callee),
				callee.unguarded.what, chain, funcDisplayName(cs.callee))
		}
	}
	return nil
}
