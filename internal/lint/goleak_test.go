package lint_test

import (
	"testing"

	"evvo/internal/lint"
)

func TestGoLeak(t *testing.T) {
	lint.RunFixture(t, lint.GoLeak, "goleak/internal/cloud")
}
