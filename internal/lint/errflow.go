package lint

import (
	"go/ast"
	"go/types"
)

// ErrFlow flags error results silently discarded at the wire and
// serving boundaries — gob/json Encode and Decode, Body.Close, Write,
// Flush — in the packages where an ignored error turns a corrupt table
// into a poisoned cache (internal/dp/wire.go, internal/cloud/peer.go,
// internal/cloud/server.go and their neighbours, DESIGN.md §13).
//
// The rule is narrow by design:
//
//   - only a bare expression statement discards implicitly; an explicit
//     `_ = w.Close()` is a visible, deliberate decision and passes,
//   - `defer resp.Body.Close()` passes: the deferred error is
//     unobservable at the defer site and the read path already consumed
//     the body's error channel,
//   - only calls whose result set includes an error are candidates, and
//     only for the sink names above — fmt.Fprint* to os.Stdout/os.Stderr
//     stays usable for diagnostics.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc: "wire-boundary errors must be handled or explicitly discarded\n\n" +
		"Flags bare statements dropping the error from Encode/Decode/Close/Write/\n" +
		"WriteString/Flush (and fmt.Fprint* to non-terminal writers) in the dp, cloud,\n" +
		"cluster and neural packages; `_ =` and deferred closes pass.",
	Run: runErrFlow,
}

// errFlowScopes: packages that own wire formats or serve traffic.
var errFlowScopes = []string{
	"internal/dp", "internal/cloud", "internal/cluster", "internal/neural",
	"cmd/cloudd", "cmd/evload",
}

// errFlowSinks are the method names whose dropped error loses data.
var errFlowSinks = map[string]bool{
	"Close": true, "Encode": true, "Decode": true,
	"Write": true, "WriteString": true, "Flush": true,
}

func runErrFlow(pass *Pass) error {
	if !anyPathSegment(pass.PkgPath, errFlowScopes) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := errFlowSink(pass, call); ok && callReturnsError(pass, call) {
				pass.Reportf(call.Pos(),
					"error from %s silently discarded at a wire boundary: handle it, or discard explicitly with `_ =` so the decision is visible",
					name)
			}
			return true
		})
	}
	return nil
}

// errFlowSink classifies a call as a wire-boundary sink and names it for
// the diagnostic.
func errFlowSink(pass *Pass, call *ast.CallExpr) (string, bool) {
	if pkgPath, funcName, ok := calledPackageFunc(pass, call); ok {
		if pkgPath == "fmt" && (funcName == "Fprint" || funcName == "Fprintf" || funcName == "Fprintln") &&
			len(call.Args) > 0 && !isStdStream(call.Args[0]) {
			return "fmt." + funcName, true
		}
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !errFlowSinks[sel.Sel.Name] {
		return "", false
	}
	if _, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFn {
		return "", false
	}
	return exprText(sel.X) + "." + sel.Sel.Name, true
}

// callReturnsError reports whether the call's result set includes an
// error (hash.Hash.Write does — its contract says it never fails, but an
// explicit `_, _ =` documents that the caller knows).
func callReturnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.Types[call].Type
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.TypeString(t, nil) == "error"
}
