package lint

import "strings"

// PurityCert certifies the solver entrypoints as transitively free of
// nondeterministic effects — the interprocedural closure of detcheck's
// contract (a time.Now() two calls deep inside dp.Optimize is invisible
// to the per-function analyzer, but not to the summaries).
//
// The contract has two halves:
//
//  1. Required entrypoints (the public DP and neural solve surface,
//     requiredPure below) MUST carry a `//lint:certify pure` line in
//     their doc comment. A missing annotation is a finding, so the
//     certification surface can only grow deliberately.
//  2. Every certified function — required or opted in — must have a
//     summary free of all four effect families: wall-clock reads,
//     global math/rand draws, order-dependent map-range folds, and
//     package-level variable writes, including everything reachable
//     through static calls. A violated certificate is reported with the
//     full witness chain down to the root cause.
//
// Dynamic call sites (function values, interface methods) are outside
// the certificate: the solvers take callback hooks (windows functions,
// progress sinks) whose bodies belong to the caller. The summary's
// Dynamic bit is surfaced in `evlint -summaries` so the hole stays
// visible; DESIGN.md §15 records the boundary.
var PurityCert = &Analyzer{
	Name: "puritycert",
	Doc: "solver entrypoints must be certified (//lint:certify pure) and transitively free of nondeterministic effects\n\n" +
		"dp.Optimize*, dp.SweepDepartures*, dp.BuildRouteTables, RouteTables.StitchCtx\n" +
		"and the neural Train/Pretrain/Fit/Predict surface must carry the certification\n" +
		"annotation, and the interprocedural summaries must prove no wall-clock, global\n" +
		"rand, map-order or global-write effect is reachable from them.",
	Run: runPurityCert,
}

// requiredPure maps a package's last path segment to the entrypoint
// names (functions or methods) that must be certified there. Fixture
// packages mimic the real ones by path shape ("puritycert/dp" scopes
// like "evvo/internal/dp").
var requiredPure = map[string]map[string]bool{
	"dp": {
		"Optimize": true, "OptimizeCtx": true,
		"SweepDepartures": true, "SweepDeparturesCtx": true,
		"BuildRouteTables": true, "StitchCtx": true,
	},
	"neural": {
		"Train": true, "Pretrain": true, "Fit": true, "Predict": true,
	},
}

func runPurityCert(pass *Pass) error {
	if pass.Prog == nil {
		return nil
	}
	required := requiredPure[lastSegment(pass.PkgPath)]
	for _, n := range pass.Prog.order {
		if n.pkg.PkgPath != pass.PkgPath {
			continue
		}
		s := n.sum
		if required[n.fn.Name()] && n.fn.Exported() && !s.certified {
			pass.Reportf(n.decl.Pos(),
				"%s is a solver entrypoint and must carry `//lint:certify pure` in its doc comment (puritycert enforces the certificate transitively)",
				funcDisplayName(n.fn))
			continue
		}
		if !s.certified {
			continue
		}
		for kind, w := range s.effects {
			if w == nil {
				continue
			}
			chain := pass.Prog.chainString(n.fn, w)
			detail := w.what
			if !strings.Contains(chain, "->") {
				chain = funcDisplayName(n.fn)
			}
			pass.Reportf(w.pos,
				"%s is certified pure but may observe %s (%s) via %s; remove the effect or move it out of the certified closure",
				funcDisplayName(n.fn), effectNames[kind], detail, chain)
		}
	}
	return nil
}
