package lint

// Edge-case coverage for //lint:allow waiver parsing and matching: the
// pragma grammar is load-bearing (it is the only way to ship a known
// finding), so its corner cases are pinned here rather than discovered
// in CI.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseSrc parses one synthetic file and returns its allowSet plus a
// helper resolving a (line, col=1) position for match queries.
func parseSrc(t *testing.T, src string) (*token.FileSet, allowSet, func(line int) token.Pos) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	allows := collectAllows(fset, []*ast.File{f})
	tf := fset.File(f.Pos())
	return fset, allows, func(line int) token.Pos { return tf.LineStart(line) }
}

const allowSrc = `package fix

func a() {
	_ = 1 //lint:allow floateq exact sentinel comparison

	_ = 2 //lint:allow floateq
	//lint:allow unitcheck literals are the conversion table itself
	_ = 3
	_ = 4
	//lint:allow floateq sentinel //lint:allow unitcheck raw table
	_ = 5
}
`

func TestAllowSameLine(t *testing.T) {
	fset, allows, at := parseSrc(t, allowSrc)
	reason, ok := allows.match(fset, "floateq", at(4))
	if !ok || reason != "exact sentinel comparison" {
		t.Fatalf("same-line pragma: ok=%v reason=%q", ok, reason)
	}
}

// TestAllowWrongAnalyzer: a pragma only waives the analyzer it names.
func TestAllowWrongAnalyzer(t *testing.T) {
	fset, allows, at := parseSrc(t, allowSrc)
	if _, ok := allows.match(fset, "unitcheck", at(4)); ok {
		t.Fatal("floateq pragma must not waive a unitcheck finding")
	}
}

// TestAllowMissingReason: a reasonless pragma is inert — waivers
// document why, or the finding stays active.
func TestAllowMissingReason(t *testing.T) {
	fset, allows, at := parseSrc(t, allowSrc)
	if reason, ok := allows.match(fset, "floateq", at(6)); ok {
		t.Fatalf("reasonless pragma must not waive (got reason %q)", reason)
	}
}

// TestAllowLineAbove: a standalone pragma covers the line directly
// below it.
func TestAllowLineAbove(t *testing.T) {
	fset, allows, at := parseSrc(t, allowSrc)
	reason, ok := allows.match(fset, "unitcheck", at(8))
	if !ok || reason != "literals are the conversion table itself" {
		t.Fatalf("line-above pragma: ok=%v reason=%q", ok, reason)
	}
}

// TestAllowWrongLine: two lines below the pragma is out of range — a
// waiver cannot drift away from the finding it excuses.
func TestAllowWrongLine(t *testing.T) {
	fset, allows, at := parseSrc(t, allowSrc)
	if _, ok := allows.match(fset, "unitcheck", at(9)); ok {
		t.Fatal("pragma two lines up must not waive")
	}
}

// TestAllowMultiplePerLine: one comment can waive two analyzers, each
// with its own reason.
func TestAllowMultiplePerLine(t *testing.T) {
	fset, allows, at := parseSrc(t, allowSrc)
	r1, ok1 := allows.match(fset, "floateq", at(11))
	r2, ok2 := allows.match(fset, "unitcheck", at(11))
	if !ok1 || r1 != "sentinel" {
		t.Fatalf("first pragma: ok=%v reason=%q", ok1, r1)
	}
	if !ok2 || r2 != "raw table" {
		t.Fatalf("second pragma: ok=%v reason=%q", ok2, r2)
	}
}

// TestAllowProseInert: doc prose that mentions the pragma syntax
// mid-comment must not create a waiver.
func TestAllowProseInert(t *testing.T) {
	src := `package fix

// Findings can carry a //lint:allow floateq reason-goes-here pragma.
func a() {}
`
	fset, allows, at := parseSrc(t, src)
	if _, ok := allows.match(fset, "floateq", at(4)); ok {
		t.Fatal("prose mention of the pragma syntax must stay inert")
	}
}
