package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// UnitCheck mechanically enforces the repo's physical-unit naming
// convention. The paper's energy claims (Fig. 6/7) survive only if every
// quantity stays in the unit its identifier advertises — the DP grid is
// SI (m, m/s, s, Ah) end to end — and related eco-driving reproductions
// are littered with silent km/h-vs-m/s and Wh-vs-J slips. Two rules:
//
//  1. No mixing: additive arithmetic, comparisons, and assignments
//     between identifiers whose suffixes advertise different units
//     (xSec + yMs, vKmh < vMS, tripMs = tripSec) are flagged. Conversion
//     must be explicit through an internal/units (or road.KmhToMs /
//     road.MsToKmh) helper, whose result adopts the target unit.
//  2. No raw conversion constants: the magic factors 3.6 (and 3.6e6)
//     anywhere, and 3600 / 1000 when multiplied into or assigned to a
//     unit-suffixed quantity, belong in internal/units — one blessed
//     home per constant, so a fat-fingered 3600-for-3.6 cannot hide.
//
// The suffix vocabulary follows the existing tree: Sec (seconds), Ms
// (milliseconds), MS (meters/second — the repo's historical spelling),
// MS2 (m/s²), Kmh, VehPerHour/VehPerSec, Ah/MAh/mAh, Wh/KWh/J, KW, M
// (meters). The one-letter suffixes J and M only count on float-typed
// expressions, so loop indices like maxJ and identifiers like sum stay
// out of scope.
var UnitCheck = &Analyzer{
	Name: "unitcheck",
	Doc: "unit-suffixed quantities must not mix units; conversion constants live in internal/units\n\n" +
		"Flags additive/comparison/assignment mixing of identifiers with incompatible unit\n" +
		"suffixes (Sec/Ms, MS/Kmh, Ah/MAh, Wh/J, …) and raw 3.6/3600/1000 conversion\n" +
		"factors outside the blessed internal/units helpers.",
	Run: runUnitCheck,
}

// A unitDim is a physical dimension; units of the same dimension but
// different scale (Sec vs Ms) still conflict — that is the whole point.
type unitDim string

const (
	dimTime   unitDim = "time"
	dimSpeed  unitDim = "speed"
	dimAccel  unitDim = "acceleration"
	dimLength unitDim = "length"
	dimFlow   unitDim = "traffic flow"
	dimCharge unitDim = "charge"
	dimEnergy unitDim = "energy"
	dimPower  unitDim = "power"
)

// A unit is one recognized identifier suffix.
type unit struct {
	suffix    string
	dim       unitDim
	floatOnly bool // one-letter suffixes need a float type to count
}

// unitTable is ordered longest-suffix-first so MS2 wins over MS, MAh
// over Ah, and so on. Matching is case-sensitive: MS is meters/second
// (the tree's convention for speeds), Ms is milliseconds.
var unitTable = []unit{
	{suffix: "VehPerHour", dim: dimFlow},
	{suffix: "VehPerSec", dim: dimFlow},
	{suffix: "MAh", dim: dimCharge},
	{suffix: "mAh", dim: dimCharge},
	{suffix: "KWh", dim: dimEnergy},
	{suffix: "MS2", dim: dimAccel},
	{suffix: "Kmh", dim: dimSpeed},
	{suffix: "Sec", dim: dimTime},
	{suffix: "Wh", dim: dimEnergy},
	{suffix: "KW", dim: dimPower},
	{suffix: "MS", dim: dimSpeed},
	{suffix: "Ms", dim: dimTime},
	{suffix: "Ah", dim: dimCharge},
	{suffix: "J", dim: dimEnergy, floatOnly: true},
	{suffix: "M", dim: dimLength, floatOnly: true},
}

// wholeIdentUnits recognizes a few bare lowercase identifiers that the
// tree uses as unit-bearing locals ("ah", "kmh", …). Deliberately tiny:
// bare "m", "j", "s" are too ambiguous to claim.
var wholeIdentUnits = map[string]string{
	"sec":    "Sec",
	"ms":     "Ms",
	"kmh":    "Kmh",
	"mps":    "MS",
	"ah":     "Ah",
	"mah":    "MAh",
	"wh":     "Wh",
	"joules": "J",
	"meters": "M",
}

// converterResults maps blessed conversion helpers (package internal/units,
// plus the two road-package veterans) to the unit suffix of their result.
// A call to one of these adopts that unit, which is what makes explicit
// conversion pass the mixing check.
var converterResults = map[string]string{
	"KmhToMps": "MS", "MpsToKmh": "Kmh",
	"KmhToMs": "MS", "MsToKmh": "Kmh", // road package spelling
	"SecToMs": "Ms", "MsToSec": "Sec",
	"AhToMAh": "MAh", "MAhToAh": "Ah",
	"WhToJ": "J", "JToWh": "Wh",
	"KWhToJ": "J", "JToKWh": "KWh",
	"KWToW": "", "WToKW": "KW", // plain watts carry no suffix in the tree
	"MToKm": "", "KmToM": "M",
	"AhToCoulombs": "", "HoursToSec": "Sec", "SecToHours": "",
	"VehPerHourToVehPerSec": "VehPerSec", "VehPerSecToVehPerHour": "VehPerHour",
}

// unitsBlessed reports whether this package is allowed to hold raw
// conversion constants: internal/units itself (any path ending in
// "units" keeps fixtures honest).
func unitsBlessed(pkgPath string) bool {
	return lastSegment(pkgPath) == "units"
}

func runUnitCheck(pass *Pass) error {
	blessed := unitsBlessed(pass.PkgPath)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		checkUnitMixing(pass, f)
		if !blessed {
			checkRawConstants(pass, f)
		}
	}
	return nil
}

// --- rule 1: unit mixing ---

func checkUnitMixing(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				ux, uy := unitOf(pass, n.X), unitOf(pass, n.Y)
				if conflict(ux, uy) {
					pass.Reportf(n.OpPos, "unit mix: %s %s %s (%s vs %s); convert explicitly via internal/units",
						describeUnit(ux), n.Op, describeUnit(uy), unitName(ux), unitName(uy))
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ASSIGN, token.DEFINE, token.ADD_ASSIGN, token.SUB_ASSIGN:
				for i := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					ul, ur := unitOf(pass, n.Lhs[i]), unitOf(pass, n.Rhs[i])
					if conflict(ul, ur) {
						pass.Reportf(n.TokPos, "unit mix: assigning %s to %s (%s vs %s); convert explicitly via internal/units",
							describeUnit(ur), describeUnit(ul), unitName(ur), unitName(ul))
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i >= len(n.Values) {
					break
				}
				ul, ur := suffixUnit(pass, name, name.Name), unitOf(pass, n.Values[i])
				if conflict(ul, ur) {
					pass.Reportf(name.Pos(), "unit mix: %s declared from %s (%s vs %s); convert explicitly via internal/units",
						describeUnit(ul), describeUnit(ur), unitName(ul), unitName(ur))
				}
			}
		}
		return true
	})
}

// conflict reports whether two resolved units disagree. Unknown units
// (nil) never conflict: the checker is deliberately conservative.
func conflict(a, b *unit) bool {
	return a != nil && b != nil && a.suffix != b.suffix
}

func unitName(u *unit) string {
	if u == nil {
		return "?"
	}
	return u.suffix
}

func describeUnit(u *unit) string {
	if u == nil {
		return "unknown"
	}
	return string(u.dim) + " [" + u.suffix + "]"
}

// unitOf resolves the unit an expression advertises, or nil when the
// expression makes no claim (literals, calls to unblessed functions,
// multiplicative arithmetic — which changes dimension — and so on).
func unitOf(pass *Pass, e ast.Expr) *unit {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return unitOf(pass, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return unitOf(pass, e.X)
		}
	case *ast.Ident:
		return suffixUnit(pass, e, e.Name)
	case *ast.SelectorExpr:
		return suffixUnit(pass, e, e.Sel.Name)
	case *ast.IndexExpr:
		return unitOf(pass, e.X) // SpeedsKmh[i] is still km/h
	case *ast.CallExpr:
		return callUnit(pass, e)
	case *ast.BinaryExpr:
		ux, uy := unitOf(pass, e.X), unitOf(pass, e.Y)
		switch e.Op {
		case token.ADD, token.SUB:
			if ux != nil && uy != nil && ux.suffix == uy.suffix {
				return ux
			}
		case token.MUL:
			// Dimensionless-constant scaling preserves the unit:
			// 2*chargeAh is still a charge in Ah.
			if ux != nil && uy == nil && isConst(pass, e.Y) {
				return ux
			}
			if uy != nil && ux == nil && isConst(pass, e.X) {
				return uy
			}
		case token.QUO:
			if ux != nil && uy == nil && isConst(pass, e.Y) {
				return ux
			}
		}
	}
	return nil
}

// isConst reports whether e folds to a compile-time constant.
func isConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// callUnit resolves the unit of a call expression: blessed converters
// adopt their target unit, float conversions are transparent, and
// unit-suffix-named accessors (route.LengthM()) advertise their suffix.
func callUnit(pass *Pass, call *ast.CallExpr) *unit {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if isFloatConversion(pass, call) && len(call.Args) == 1 {
			return unitOf(pass, call.Args[0])
		}
		if u, ok := converterUnit(pass, fun.Name); ok {
			return u
		}
		return suffixUnit(pass, call, fun.Name)
	case *ast.SelectorExpr:
		if u, ok := converterUnit(pass, fun.Sel.Name); ok {
			return u
		}
		return suffixUnit(pass, call, fun.Sel.Name)
	}
	return nil
}

func converterUnit(pass *Pass, name string) (*unit, bool) {
	suffix, ok := converterResults[name]
	if !ok {
		return nil, false
	}
	if suffix == "" {
		return nil, true // blessed, but result carries no tracked unit
	}
	for i := range unitTable {
		if unitTable[i].suffix == suffix {
			return &unitTable[i], true
		}
	}
	return nil, true
}

// isFloatConversion reports whether call is float64(x) / float32(x).
func isFloatConversion(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	return id.Name == "float64" || id.Name == "float32"
}

// suffixUnit matches name against the unit vocabulary: a camelCase
// suffix (char before the suffix is lowercase or a digit) or a whole
// lowercase identifier. e is consulted for the float-only suffixes.
func suffixUnit(pass *Pass, e ast.Expr, name string) *unit {
	if alias, ok := wholeIdentUnits[name]; ok {
		for i := range unitTable {
			if unitTable[i].suffix == alias {
				return &unitTable[i]
			}
		}
		return nil
	}
	for i := range unitTable {
		u := &unitTable[i]
		if !strings.HasSuffix(name, u.suffix) || len(name) == len(u.suffix) {
			continue
		}
		prev := rune(name[len(name)-len(u.suffix)-1])
		if !unicode.IsLower(prev) && !unicode.IsDigit(prev) {
			continue
		}
		if u.floatOnly && !exprIsFloat(pass, e) {
			continue
		}
		return u
	}
	return nil
}

func exprIsFloat(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				t = obj.Type()
			} else if obj := pass.TypesInfo.Defs[id]; obj != nil {
				t = obj.Type()
			}
		}
	}
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// --- rule 2: raw conversion constants ---

// checkRawConstants walks with an explicit parent stack so a flagged
// literal can consult the expression it sits in.
func checkRawConstants(pass *Pass, f *ast.File) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		lit, ok := n.(*ast.BasicLit)
		if !ok || (lit.Kind != token.INT && lit.Kind != token.FLOAT) {
			return true
		}
		v, ok := litFloat(pass, lit)
		if !ok {
			return true
		}
		switch v {
		//lint:allow unitcheck these literals are the patterns unitcheck itself matches against
		case 3.6, 3.6e6:
			// Unambiguous km/h↔m/s (resp. J↔kWh) factors: always flagged.
			pass.Reportf(lit.Pos(),
				"raw unit-conversion constant %s: use the internal/units helper (units.KmhPerMps / units.JPerKWh) instead",
				lit.Value)
		case 3600, 1000:
			// Ambiguous factors: flagged only when visibly applied to a
			// unit-suffixed quantity.
			if near, ok := unitContext(pass, stack); ok {
				pass.Reportf(lit.Pos(),
					"raw conversion factor %s applied to unit-suffixed %s: use the internal/units helper instead",
					lit.Value, near)
			}
		}
		return true
	})
}

// litFloat returns a literal's folded numeric value.
func litFloat(pass *Pass, e ast.Expr) (float64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		f, _ := constant.Float64Val(tv.Value)
		return f, true
	}
	return 0, false
}

// unitContext decides whether a 3600/1000 literal is being used as a
// unit conversion: it is when a sibling operand in the nearest
// multiplicative expression carries a unit suffix, or when the value
// feeds a unit-suffixed declaration or assignment target.
func unitContext(pass *Pass, stack []ast.Node) (string, bool) {
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.BinaryExpr:
			if n.Op != token.MUL && n.Op != token.QUO {
				continue
			}
			for _, side := range []ast.Expr{n.X, n.Y} {
				if u := unitOf(pass, side); u != nil {
					return describeUnit(u), true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if u := unitOf(pass, lhs); u != nil {
					return describeUnit(u), true
				}
			}
			return "", false
		case *ast.ValueSpec:
			for _, name := range n.Names {
				if u := suffixUnit(pass, name, name.Name); u != nil {
					return describeUnit(u), true
				}
			}
			return "", false
		case *ast.CallExpr, *ast.BlockStmt, *ast.ReturnStmt:
			return "", false
		}
	}
	return "", false
}
