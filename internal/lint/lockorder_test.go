package lint_test

import (
	"testing"

	"evvo/internal/lint"
)

// TestLockOrder pins the cross-function deadlock class: inconsistent
// two-lock nesting, cycles formed through a lock-taking helper call,
// and the clean cases (consistent order everywhere, locks released
// before the reversed acquisition, same-class re-entry).
func TestLockOrder(t *testing.T) {
	lint.RunFixture(t, lint.LockOrder, "lockorder/internal/cloud")
}
