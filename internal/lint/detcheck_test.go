package lint_test

import (
	"testing"

	"evvo/internal/lint"
)

func TestDetCheckPureSolver(t *testing.T) {
	lint.RunFixture(t, lint.DetCheck, "detcheck/internal/dp")
}

func TestDetCheckServing(t *testing.T) {
	lint.RunFixture(t, lint.DetCheck, "detcheck/internal/cloud")
}

// TestDetCheckOutOfScope: the same hazardous shapes outside the guarded
// packages (dp, neural, cloud, cluster, metrics) must stay silent —
// tools and experiments may shuffle and stamp freely.
func TestDetCheckOutOfScope(t *testing.T) {
	res := lint.RunFixture(t, lint.DetCheck, "detcheck/web")
	if n := len(res.Active) + len(res.Allowed); n != 0 {
		t.Fatalf("detcheck fired %d finding(s) outside its scope", n)
	}
}
