package lint

// This file is the interprocedural half of the suite's analysis
// infrastructure (DESIGN.md §15): a package-level call graph over the
// already-type-checked ASTs of every package in one lint invocation.
// The intra-procedural analyzers (detcheck, lockheld, ctxcheck, …) stop
// at function boundaries; the graph built here, plus the bottom-up
// per-function summaries in summary.go, lets puritycert, lockorder,
// ctxprop and hotalloc reason about what a call REACHES, not just what a
// body contains.
//
// Resolution policy, in decreasing order of precision:
//
//   - package-level functions and concrete methods resolve to their
//     *types.Func and, when the defining package is part of the same
//     lint invocation, to a graph node with a body;
//   - calls into packages outside the invocation (the standard library,
//     whose bodies the loader deliberately skips) resolve to the callee
//     object only and are classified by the curated effect/blocking
//     tables in summary.go;
//   - calls through function values, fields, parameters, method values
//     and interface methods do NOT resolve — the caller's summary is
//     marked Dynamic and the analyzers built on top document how they
//     treat that hole (see DESIGN.md §15).
//
// Function literals are attributed to their enclosing declared function:
// a literal's effects, lock acquisitions and allocation sites belong to
// whoever defined it (conservative for certification — the literal may
// only run later, or never), while its *blocking* behaviour does not
// propagate (a `go func(){ <-ch }()` parks a goroutine, not the caller).

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Program is the whole-invocation view: every analyzed package, a node
// per declared function with a body, and (after summarize) a Summary per
// node. Build one per lint run and share it across analyzers — the graph
// walk is paid once, not once per analyzer.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	funcs map[*types.Func]*fnode
	// order holds the nodes in deterministic (file, position) order so
	// every walk over "all functions" is stable run to run.
	order []*fnode

	lockGraph *lockGraph        // built lazily by lockorder, cached here
	hotReach  map[*fnode]string // built lazily by hotalloc, cached here
}

// fnode is one declared function or method with a body.
type fnode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package

	// calls are the statically resolved call sites, in source order,
	// function-literal bodies included (attributed to this node).
	calls []callSite
	// dynamicPos is the first call site the graph could not resolve
	// (function value, interface method, …), or NoPos.
	dynamicPos token.Pos
	// sum is filled by summarize (summary.go).
	sum *Summary
}

// callSite is one resolved call expression inside a node.
type callSite struct {
	pos    token.Pos
	callee *types.Func // resolved callee (may be external to the Program)
	target *fnode      // non-nil when the callee has a body in the Program
	// noBlock marks calls whose blocking does not stall this function:
	// the call is a `go` statement's call, or sits inside a function
	// literal (which runs on its own activation).
	noBlock bool
}

// BuildProgram constructs the call graph over pkgs and computes the
// bottom-up function summaries. The packages must share one FileSet
// (LoadPackages and LoadFixture guarantee this).
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{funcs: make(map[*types.Func]*fnode)}
	if len(pkgs) == 0 {
		return prog
	}
	prog.Fset = pkgs[0].Fset
	prog.Pkgs = pkgs

	// Pass 1: one node per FuncDecl with a body.
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			if isTestFile(pkg.Fset, f.Pos()) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &fnode{fn: obj, decl: fd, pkg: pkg}
				prog.funcs[obj] = n
				prog.order = append(prog.order, n)
			}
		}
	}
	sort.Slice(prog.order, func(i, j int) bool {
		return prog.order[i].decl.Pos() < prog.order[j].decl.Pos()
	})

	// Pass 2: resolve call sites (needs every node to exist first).
	for _, n := range prog.order {
		collectCalls(prog, n)
	}

	summarize(prog)
	return prog
}

// FuncNode returns the Program's node for fn, or nil when fn has no body
// in the analyzed set.
func (p *Program) funcNode(fn *types.Func) *fnode {
	return p.funcs[fn]
}

// collectCalls walks n's body recording resolved call sites in source
// order. Function literal bodies are included (attributed to n) with
// noBlock set; calls launched by `go` statements are likewise noBlock.
func collectCalls(prog *Program, n *fnode) {
	var scan func(node ast.Node, noBlock bool)
	scan = func(node ast.Node, noBlock bool) {
		ast.Inspect(node, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.FuncLit:
				scan(nd.Body, true)
				return false
			case *ast.GoStmt:
				// The spawned call itself cannot block the caller; its
				// arguments are evaluated synchronously and are scanned
				// with the surrounding noBlock mode.
				if fn := resolveCallee(n.pkg.TypesInfo, nd.Call); fn != nil {
					n.calls = append(n.calls, callSite{
						pos: nd.Call.Pos(), callee: fn, target: prog.funcs[fn], noBlock: true,
					})
				} else if !isBuiltinOrConversion(n.pkg.TypesInfo, nd.Call) {
					n.markDynamic(nd.Call.Pos())
				}
				for _, arg := range nd.Call.Args {
					scan(arg, noBlock)
				}
				return false
			case *ast.CallExpr:
				if fn := resolveCallee(n.pkg.TypesInfo, nd); fn != nil {
					n.calls = append(n.calls, callSite{
						pos: nd.Pos(), callee: fn, target: prog.funcs[fn], noBlock: noBlock,
					})
				} else if !isBuiltinOrConversion(n.pkg.TypesInfo, nd) {
					n.markDynamic(nd.Pos())
				}
				return true
			}
			return true
		})
	}
	scan(n.decl.Body, false)
}

// dynamicSites records, pre-summary, where a node performs calls the
// graph cannot resolve. Stored on the node so summarize can fold it into
// the Summary with a witness position.
func (n *fnode) markDynamic(pos token.Pos) {
	if n.dynamicPos == token.NoPos {
		n.dynamicPos = pos
	}
}

// resolveCallee resolves a call expression to the *types.Func it
// statically invokes, or nil when the callee is dynamic (function
// values, method values, interface methods, fields, builtins,
// conversions).
func resolveCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		// Method call or qualified pkg.Func call.
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			if fn == nil {
				return nil
			}
			// An interface method has no body anywhere; the concrete
			// receiver is unknown statically, so the call is dynamic.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			return fn
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isBuiltinOrConversion reports whether the call is a builtin
// (append, make, len, …) or a type conversion — call shapes that are
// not "dynamic callees" even though they resolve to no *types.Func.
func isBuiltinOrConversion(info *types.Info, call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		switch info.Uses[fun].(type) {
		case *types.Builtin, *types.TypeName:
			return true
		}
		if _, isType := info.Types[fun]; isType && info.Types[fun].IsType() {
			return true
		}
	default:
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
	}
	return false
}

// sccs partitions the Program's nodes into strongly connected
// components, emitted callees-first (Tarjan's order), so summarize can
// run bottom-up and only iterate to fixpoint inside a cycle.
func (p *Program) sccs() [][]*fnode {
	index := make(map[*fnode]int, len(p.order))
	low := make(map[*fnode]int, len(p.order))
	onStack := make(map[*fnode]bool, len(p.order))
	var stack []*fnode
	var out [][]*fnode
	next := 0

	var strongconnect func(v *fnode)
	strongconnect = func(v *fnode) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, cs := range v.calls {
			w := cs.target
			if w == nil {
				continue
			}
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*fnode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, v := range p.order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return out
}

// funcDisplayName renders a function for diagnostics: "dp.OptimizeCtx",
// "(*cloud.Server).handleOptimize".
func funcDisplayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = lastSegment(fn.Pkg().Path())
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		ptr := ""
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
			ptr = "*"
		}
		name := types.TypeString(rt, func(p *types.Package) string { return lastSegment(p.Path()) })
		if i := strings.LastIndexByte(name, '.'); i >= 0 {
			name = name[i+1:]
		}
		return "(" + ptr + pkg + "." + name + ")." + fn.Name()
	}
	if pkg == "" {
		return fn.Name()
	}
	return pkg + "." + fn.Name()
}
