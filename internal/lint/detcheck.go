package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetCheck enforces the repo's determinism contract (DESIGN.md §6, §12,
// §13, §14) in the numeric and serving packages — dp, neural, cloud,
// cluster, metrics — where every degraded path must return bit-identical
// plans and every wire artifact must fingerprint identically run to run:
//
//  1. Ranging over a map while appending to, or float-accumulating into,
//     state declared outside the loop — or while serializing entries —
//     produces run-to-run-varying output (Go randomizes map iteration
//     order). The blessed fix is `for _, k := range stable.SortedKeys(m)`
//     (internal/stable). Commutative folds are exempt: integer += tallies
//     and map→map copies do not observe order.
//  2. Top-level math/rand sources seeded from the clock
//     (rand.New(rand.NewSource(time.Now().UnixNano()))) make whole-process
//     behaviour nondeterministic; sources must take an explicit seed.
//  3. Calls to math/rand's package-level functions draw from the global,
//     effectively clock-seeded stream; thread a seeded *rand.Rand.
//  4. The pure solver packages (dp, neural, queue) must not read the wall
//     clock: time.Now() there makes a solve depend on when it ran.
//     Timestamps enter as parameters.
var DetCheck = &Analyzer{
	Name: "detcheck",
	Doc: "map-order, rand-seed, and wall-clock nondeterminism must stay out of the numeric and serving packages\n\n" +
		"Flags order-dependent accumulation/serialization inside map ranges (use\n" +
		"stable.SortedKeys), clock-seeded or global math/rand sources, and time.Now()\n" +
		"in pure solver packages (dp, neural, queue).",
	Run: runDetCheck,
}

// detCheckScopes are the packages where map-order and rand hazards are
// correctness bugs, matched as complete path segments so fixture packages
// mimic real ones by shape.
var detCheckScopes = []string{"dp", "neural", "cloud", "cluster", "metrics"}

// detPureSolvers are packages whose output must be a pure function of
// their inputs: no wall-clock reads at all.
var detPureSolvers = map[string]bool{"dp": true, "neural": true, "queue": true}

// globalRandFns are math/rand package-level functions that draw from the
// shared global source.
var globalRandFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
}

func runDetCheck(pass *Pass) error {
	inScope := false
	for _, s := range detCheckScopes {
		if pathHasSegments(pass.PkgPath, s) {
			inScope = true
			break
		}
	}
	pureSolver := detPureSolvers[lastSegment(pass.PkgPath)]
	if !inScope && !pureSolver {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.VAR && inScope {
				checkTopLevelRand(pass, gd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if inScope {
					checkMapRange(pass, n)
				}
			case *ast.CallExpr:
				pkgPath, funcName, ok := calledPackageFunc(pass, n)
				if !ok {
					return true
				}
				if inScope && pkgPath == "math/rand" && globalRandFns[funcName] {
					pass.Reportf(n.Pos(),
						"rand.%s draws from the global math/rand source (clock-seeded, process-wide): thread a seeded *rand.Rand instead",
						funcName)
				}
				if pureSolver && pkgPath == "time" && funcName == "Now" {
					pass.Reportf(n.Pos(),
						"time.Now() in pure solver package %s makes the solve depend on when it ran; take the timestamp as a parameter",
						lastSegment(pass.PkgPath))
				}
			}
			return true
		})
	}
	return nil
}

// checkTopLevelRand flags package-level vars whose initializer builds a
// math/rand source from the wall clock.
func checkTopLevelRand(pass *Pass, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, val := range vs.Values {
			usesRandNew, usesClock := false, false
			ast.Inspect(val, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkgPath, funcName, ok := calledPackageFunc(pass, call)
				if !ok {
					return true
				}
				if pkgPath == "math/rand" && (funcName == "New" || funcName == "NewSource") {
					usesRandNew = true
				}
				if pkgPath == "time" && funcName == "Now" {
					usesClock = true
				}
				return true
			})
			if usesRandNew && usesClock {
				pass.Reportf(val.Pos(),
					"top-level math/rand source seeded from the clock: every run draws a different stream; seed explicitly or inject the source")
			}
		}
	}
}

// checkMapRange flags order-dependent folds inside a range over a map.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, n)
		case *ast.CallExpr:
			if name, ok := serializationSink(pass, n); ok {
				pass.Reportf(n.Pos(),
					"%s inside a map range serializes entries in nondeterministic order; iterate stable.SortedKeys first (internal/stable)",
					name)
			}
		}
		return true
	})
}

// checkMapRangeAssign flags appends and float accumulation into state
// declared outside the loop. Integer tallies (commutative) and map→map
// copies (order-blind) pass — metrics.LabeledCounter.Total and .Snapshot
// are the canonical clean cases.
func checkMapRangeAssign(pass *Pass, rng *ast.RangeStmt, assign *ast.AssignStmt) {
	switch assign.Tok {
	case token.ASSIGN:
		for i, lhs := range assign.Lhs {
			if i >= len(assign.Rhs) {
				break
			}
			call, ok := unparen(assign.Rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			if declaredOutside(pass, lhs, rng) {
				pass.Reportf(assign.Pos(),
					"append into %q while ranging a map accumulates in nondeterministic order; iterate stable.SortedKeys (internal/stable) or sort the result where it is built",
					exprText(lhs))
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
		for _, lhs := range assign.Lhs {
			if !isFloat(pass, lhs) {
				continue
			}
			if declaredOutside(pass, lhs, rng) {
				pass.Reportf(assign.Pos(),
					"float accumulation into %q while ranging a map is order-sensitive (FP addition does not commute bit-exactly); iterate stable.SortedKeys (internal/stable)",
					exprText(lhs))
			}
		}
	}
}

// serializationSink matches calls that emit entries to an ordered stream:
// encoder Encode, writer Write/WriteString, and fmt.Fprint* (except to a
// terminal stream, where ordering is cosmetic).
func serializationSink(pass *Pass, call *ast.CallExpr) (string, bool) {
	if pkgPath, funcName, ok := calledPackageFunc(pass, call); ok {
		if pkgPath == "fmt" && (funcName == "Fprint" || funcName == "Fprintf" || funcName == "Fprintln") &&
			len(call.Args) > 0 && !isStdStream(call.Args[0]) {
			return "fmt." + funcName, true
		}
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Encode", "Write", "WriteString":
	default:
		return "", false
	}
	// Method calls only (not pkg.Func, handled above).
	if _, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFn {
		return "", false
	}
	return "." + sel.Sel.Name, true
}

// isStdStream matches os.Stdout / os.Stderr.
func isStdStream(e ast.Expr) bool {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "os" && (sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr")
}

// declaredOutside reports whether the lvalue's root identifier is
// declared outside the range statement (loop-local accumulators, reset
// every iteration, cannot observe cross-iteration order).
func declaredOutside(pass *Pass, lhs ast.Expr, rng *ast.RangeStmt) bool {
	lhs = unparen(lhs)
	// Map index writes (out[k] = v) are order-blind copies.
	if idx, ok := lhs.(*ast.IndexExpr); ok && isMapIndex(pass, idx) {
		return false
	}
	root := rootIdent(lhs)
	if root == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		obj = pass.TypesInfo.Defs[root]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}
