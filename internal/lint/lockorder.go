package lint

import (
	"go/token"
	"sort"
	"strings"
)

// LockOrder flags cycles in the whole-program lock-acquisition-order
// graph — the cross-file deadlock class lockheld cannot see. Every
// function summary (summary.go) records the order edges its body
// establishes: "class B acquired while class A is held", including the
// edge formed when a function holding A calls a helper whose summary
// says it acquires B. The analyzer assembles those edges into one graph
// per invocation and reports every edge that lies on a cycle, at the
// position that established it — so a cloud→cluster nesting and the
// inverse cluster→cloud nesting each get a finding in their own file,
// and a //lint:allow waiver attaches to the exact acquisition site.
//
// Lock classes abstract instances: all values of a struct field (e.g.
// cloud.Server.mu) are one class. Self-edges (re-acquiring the same
// class, e.g. RLock on a shared table from two levels) are lockheld's
// and the runtime's business, not an order violation, and are skipped.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "lock classes must be acquired in a globally consistent order (no cycles across functions or packages)\n\n" +
		"Builds the whole-program lock-order graph from the interprocedural function\n" +
		"summaries and flags every acquisition edge that participates in a cycle,\n" +
		"including edges formed by calling a lock-taking helper while holding a lock.",
	Run: runLockOrder,
}

// lockGraph is the whole-program acquisition-order graph, built once per
// invocation and cached on the Program.
type lockGraph struct {
	// edges maps from-class -> to-class -> the witness that established
	// the edge (first establishment in deterministic function order).
	edges map[string]map[string]*lockEdgeSite
	// cyclic holds the set of classes on some cycle (non-trivial SCCs of
	// the class graph).
	cyclic map[string]bool
}

// lockEdgeSite records where an order edge was established and by whom.
type lockEdgeSite struct {
	pos token.Pos
	pkg string // PkgPath owning the position — the package that reports it
	fn  string // display name of the establishing function
}

func runLockOrder(pass *Pass) error {
	if pass.Prog == nil {
		return nil
	}
	g := pass.Prog.lockOrderGraph()
	// Report, in this package only, every edge on a cycle.
	type finding struct {
		site     *lockEdgeSite
		from, to string
	}
	var findings []finding
	for _, from := range sortedKeys(g.edges) {
		if !g.cyclic[from] {
			continue
		}
		for _, to := range sortedKeys(g.edges[from]) {
			if !g.cyclic[to] || !onCommonCycle(g, from, to) {
				continue
			}
			site := g.edges[from][to]
			if site.pkg != pass.PkgPath {
				continue
			}
			findings = append(findings, finding{site, from, to})
		}
	}
	for _, f := range findings {
		cycle := g.cyclePath(f.from, f.to)
		pass.Reportf(f.site.pos,
			"lock order cycle: %s acquires %s while holding %s, but elsewhere the order is reversed (cycle: %s); pick one global order",
			f.site.fn, f.to, f.from, cycle)
	}
	return nil
}

// lockOrderGraph builds (once) and returns the Program's lock graph.
func (p *Program) lockOrderGraph() *lockGraph {
	if p.lockGraph != nil {
		return p.lockGraph
	}
	g := &lockGraph{edges: make(map[string]map[string]*lockEdgeSite), cyclic: make(map[string]bool)}
	for _, n := range p.order { // deterministic (position) order: first establisher wins
		for _, key := range sortedWitnessKeyList(n.sum.lockEdges) {
			parts := strings.SplitN(key, "\x00", 2)
			from, to := parts[0], parts[1]
			if g.edges[from] == nil {
				g.edges[from] = make(map[string]*lockEdgeSite)
			}
			if g.edges[from][to] == nil {
				g.edges[from][to] = &lockEdgeSite{
					pos: n.sum.lockEdges[key].pos,
					pkg: n.pkg.PkgPath,
					fn:  funcDisplayName(n.fn),
				}
			}
		}
	}
	g.markCycles()
	p.lockGraph = g
	return g
}

// markCycles marks every class that can reach itself through one or more
// edges (i.e. lies on a directed cycle).
func (g *lockGraph) markCycles() {
	for _, start := range sortedKeys(g.edges) {
		if g.reaches(start, start) {
			g.cyclic[start] = true
		}
	}
}

// reaches reports whether dst is reachable from src via one or more
// edges.
func (g *lockGraph) reaches(src, dst string) bool {
	seen := make(map[string]bool)
	var stack []string
	for next := range g.edges[src] {
		stack = append(stack, next)
	}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if c == dst {
			return true
		}
		if seen[c] {
			continue
		}
		seen[c] = true
		for next := range g.edges[c] {
			stack = append(stack, next)
		}
	}
	return false
}

// onCommonCycle reports whether the edge from→to closes a cycle: to can
// reach from again.
func onCommonCycle(g *lockGraph, from, to string) bool {
	return g.reaches(to, from)
}

// cyclePath renders one concrete cycle through the edge from→to, for
// the diagnostic: "A -> B -> A".
func (g *lockGraph) cyclePath(from, to string) string {
	// BFS from `to` back to `from` for a shortest return path.
	type hop struct {
		class string
		prev  *hop
	}
	queue := []*hop{{class: to}}
	seen := map[string]bool{to: true}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if h.class == from {
			// The prev chain reads from→…→to; reverse it to render the
			// forward return path, then prefix the edge's own tail.
			var back []string
			for x := h; x != nil; x = x.prev {
				back = append(back, x.class)
			}
			for i, j := 0, len(back)-1; i < j; i, j = i+1, j-1 {
				back[i], back[j] = back[j], back[i]
			}
			parts := append([]string{from}, back...)
			return strings.Join(parts, " -> ")
		}
		for _, next := range sortedKeys(g.edges[h.class]) {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, &hop{class: next, prev: h})
			}
		}
	}
	return from + " -> " + to + " -> ... -> " + from
}

// sortedKeys returns the map's keys in sorted order (deterministic
// iteration over a map of edges — detcheck's own rule, honored here).
func sortedKeys[V any](m map[string]V) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
