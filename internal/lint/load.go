package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis. It is
// the subset of golang.org/x/tools/go/packages.Package the analyzers
// need.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// loader owns a process-wide cache of type-checked packages. Everything
// is keyed by import path on one shared FileSet, so the standard-library
// closure — type-checked from source, API only, because this module
// builds offline with no export data and no x/tools — is paid for once
// per process no matter how many analyzer tests or lint runs follow.
type loader struct {
	mu    sync.Mutex
	fset  *token.FileSet
	types map[string]*types.Package
	// pkgs caches fully-checked TARGET packages (syntax + types.Info) by
	// import path, so one process pays the parse + full type-check once
	// per package no matter how many LoadPackages calls follow — N
	// analyzers in one evlint invocation, or many fixture tests touching
	// the same imports, all share the work. Sources are assumed stable
	// for the life of the process (evlint is one-shot; tests never
	// rewrite fixtures mid-run).
	pkgs map[string]*Package
}

var world = &loader{
	fset:  token.NewFileSet(),
	types: make(map[string]*types.Package),
	pkgs:  make(map[string]*Package),
}

// LoadPackages runs `go list` with the given patterns in dir and returns
// the matched packages, fully type-checked with types.Info populated.
// Dependencies (standard library included) are type-checked from source
// with function bodies skipped: the analyzers only need their API.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	world.mu.Lock()
	defer world.mu.Unlock()
	list, err := goList(dir, append([]string{"-deps", "--"}, patterns...))
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range list {
		if lp.DepOnly {
			if err := world.ensureDep(lp); err != nil {
				return nil, err
			}
			continue
		}
		pkg, err := world.check(lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// ensureDep type-checks a dependency-only package (API surface only) and
// caches it for importers.
func (ld *loader) ensureDep(lp *listPkg) error {
	if lp.ImportPath == "unsafe" {
		ld.types["unsafe"] = types.Unsafe
		return nil
	}
	if _, ok := ld.types[lp.ImportPath]; ok {
		return nil
	}
	if lp.Error != nil {
		return fmt.Errorf("lint: go list: %s: %s", lp.ImportPath, lp.Error.Err)
	}
	files, err := parseDir(ld.fset, lp.Dir, lp.GoFiles)
	if err != nil {
		return err
	}
	cfg := ld.config(lp.ImportMap)
	cfg.IgnoreFuncBodies = true
	tpkg, err := cfg.Check(lp.ImportPath, ld.fset, files, nil)
	if err != nil {
		return fmt.Errorf("lint: type-checking dependency %s: %w", lp.ImportPath, err)
	}
	ld.types[lp.ImportPath] = tpkg
	return nil
}

// check fully type-checks a target package, recording types.Info.
// Results are cached by import path: a second request returns the same
// *Package (pointer-identical — the cache test pins this).
func (ld *loader) check(lp *listPkg) (*Package, error) {
	if pkg, ok := ld.pkgs[lp.ImportPath]; ok {
		return pkg, nil
	}
	if lp.Error != nil {
		return nil, fmt.Errorf("lint: go list: %s: %s", lp.ImportPath, lp.Error.Err)
	}
	files, err := parseDir(ld.fset, lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	cfg := ld.config(lp.ImportMap)
	tpkg, err := cfg.Check(lp.ImportPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, err)
	}
	if _, ok := ld.types[lp.ImportPath]; !ok {
		ld.types[lp.ImportPath] = tpkg
	}
	pkg := &Package{
		PkgPath:   lp.ImportPath,
		Dir:       lp.Dir,
		Fset:      ld.fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}
	ld.pkgs[lp.ImportPath] = pkg
	return pkg, nil
}

// config builds a types.Config whose importer resolves against the cache,
// applying the package's vendor ImportMap first.
func (ld *loader) config(importMap map[string]string) *types.Config {
	return &types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			if p, ok := ld.types[path]; ok {
				return p, nil
			}
			return nil, fmt.Errorf("lint: import %q not loaded", path)
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
}

// ensureStd loads and API-checks the standard-library closure of path.
// Called with ld.mu held.
func (ld *loader) ensureStd(dir, path string) error {
	if _, ok := ld.types[path]; ok {
		return nil
	}
	list, err := goList(dir, []string{"-deps", "--", path})
	if err != nil {
		return err
	}
	for _, lp := range list {
		if err := ld.ensureDep(lp); err != nil {
			return err
		}
	}
	return nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func parseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// goList shells out to `go list -e -json`. Extra flags (e.g. -deps) ride
// in front of the patterns; CGO is disabled so the reported file sets are
// pure Go and type-checkable from source.
func goList(dir string, args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v: %s", args, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var list []*listPkg
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		list = append(list, lp)
	}
	return list, nil
}

// LoadFixture loads a GOPATH-style fixture package rooted at root
// (typically internal/lint/testdata/src): imports that resolve to
// directories under root are loaded recursively as fixture packages;
// everything else is treated as standard library. This mirrors how
// x/tools' analysistest presents testdata to analyzers.
func LoadFixture(root, pkgpath string) (*Package, error) {
	world.mu.Lock()
	defer world.mu.Unlock()
	return world.fixture(root, pkgpath, make(map[string]bool))
}

func (ld *loader) fixture(root, pkgpath string, loading map[string]bool) (*Package, error) {
	if pkg, ok := ld.pkgs[pkgpath]; ok {
		return pkg, nil
	}
	if loading[pkgpath] {
		return nil, fmt.Errorf("lint: fixture import cycle through %q", pkgpath)
	}
	loading[pkgpath] = true
	defer delete(loading, pkgpath)

	dir := filepath.Join(root, filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: fixture %s: %w", pkgpath, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: fixture %s: no Go files in %s", pkgpath, dir)
	}
	files, err := parseDir(ld.fset, dir, names)
	if err != nil {
		return nil, err
	}

	// Resolve imports: fixture-local packages first, stdlib otherwise.
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path == "unsafe" {
				continue
			}
			if _, ok := ld.types[path]; ok {
				continue
			}
			if st, err := os.Stat(filepath.Join(root, filepath.FromSlash(path))); err == nil && st.IsDir() {
				sub, err := ld.fixture(root, path, loading)
				if err != nil {
					return nil, err
				}
				ld.types[path] = sub.Types
				continue
			}
			if err := ld.ensureStd(root, path); err != nil {
				return nil, err
			}
		}
	}

	info := newInfo()
	cfg := ld.config(nil)
	tpkg, err := cfg.Check(pkgpath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s: %w", pkgpath, err)
	}
	ld.types[pkgpath] = tpkg
	pkg := &Package{
		PkgPath:   pkgpath,
		Dir:       dir,
		Fset:      ld.fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}
	ld.pkgs[pkgpath] = pkg
	return pkg, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
