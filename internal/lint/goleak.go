package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak flags goroutines launched from request-path functions with no
// visible join or cancellation edge. A handler that fires
// `go doWork()` and returns leaks one goroutine per request — at the
// fleet traffic the ROADMAP targets that is an unbounded background
// population no deadline can reap (the pattern PR 3 closed by hand in
// the DP workers, now enforced mechanically).
//
// A goroutine body counts as joined/cancellable when it contains any of:
//
//   - a WaitGroup Done (directly or deferred) — the launcher Waits,
//   - a send on, close of, or receive from a channel — a rendezvous the
//     launcher (or a drain path) observes,
//   - a select statement or a ctx.Done()-style call — a stop signal.
//
// Only `go func(){...}()` literals are analyzed: a named function's body
// is outside this intra-procedural pass, so `go helper()` is not judged
// (and not flagged).
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "request-path goroutines need a join or cancellation edge\n\n" +
		"Flags go-statement function literals inside handler/middleware/ctx-carrying\n" +
		"functions whose body has no WaitGroup.Done, channel send/close/receive, or\n" +
		"select/ctx stop edge reachable.",
	Run: runGoLeak,
}

func runGoLeak(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		// Track, like ctxcheck, whether the walk is inside a function (or
		// a literal nested in one) whose signature marks a request path.
		var sigStack []bool
		inRequestPath := func() bool {
			for _, h := range sigStack {
				if h {
					return true
				}
			}
			return false
		}
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				sig, _ := pass.TypesInfo.Defs[n.Name].(*types.Func)
				sigStack = append(sigStack, sig != nil && isRequestPathSignature(sig.Type().(*types.Signature)))
				if n.Body != nil {
					ast.Inspect(n.Body, walk)
				}
				sigStack = sigStack[:len(sigStack)-1]
				return false
			case *ast.FuncLit:
				sig, _ := pass.TypesInfo.Types[n].Type.(*types.Signature)
				sigStack = append(sigStack, sig != nil && isRequestPathSignature(sig))
				ast.Inspect(n.Body, walk)
				sigStack = sigStack[:len(sigStack)-1]
				return false
			case *ast.GoStmt:
				lit, ok := n.Call.Fun.(*ast.FuncLit)
				if ok && inRequestPath() && !hasJoinOrCancelEdge(lit.Body) {
					pass.Reportf(n.Pos(),
						"goroutine launched in a request-path function without a join or cancellation edge: add a WaitGroup.Done, a channel rendezvous, or a ctx-derived stop")
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// hasJoinOrCancelEdge scans a goroutine body (nested literals included —
// an edge anywhere in the tree is taken as the launcher's discipline)
// for evidence the goroutine is joined or cancellable.
func hasJoinOrCancelEdge(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			// range over a channel is a receive; range over other types
			// is not evidence, but distinguishing needs type info the
			// caller has — a plain range is common enough that treating
			// it as evidence would mask real leaks, so only the explicit
			// forms above count. Nothing to do here.
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" || fun.Sel.Name == "Wait" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
