package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc guards the zero-alloc steady-state claims that the
// AllocsPerRun tests pin at runtime (DP relaxation/commit, neural
// epoch kernels): any function reachable from a `//lint:hot`-marked
// function must not contain allocation sites — make/new/append, slice
// and map composite literals, and fmt calls (which box their operands
// into interfaces).
//
// Findings land at the exact allocation site, in the package that owns
// it, so a `//lint:allow hotalloc <reason>` waiver attaches precisely
// (the canonical waiver: a cold-start path inside a hot-reachable
// function that the steady state never takes). A hot-reachable callee
// in another package reports in its own package — the whole-repo run
// sees every site exactly once.
//
// Out of reach, by design: allocations behind dynamic calls (function
// values, interface methods — the summaries mark callers Dynamic
// instead), and struct VALUE literals (stack-allocated unless escape
// analysis decides otherwise, which a source-only linter cannot see).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "functions reachable from //lint:hot loops must not allocate\n\n" +
		"Walks the call graph from //lint:hot-annotated functions (DP relaxation,\n" +
		"neural row kernels) and flags every reachable allocation site: make/new/append,\n" +
		"slice and map literals, fmt boxing. Pin the steady state statically, before the\n" +
		"AllocsPerRun tests catch it at runtime.",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	if pass.Prog == nil {
		return nil
	}
	reach := pass.Prog.hotReachable()
	if len(reach) == 0 {
		return nil
	}
	for _, n := range pass.Prog.order {
		if n.pkg.PkgPath != pass.PkgPath {
			continue
		}
		root, ok := reach[n]
		if !ok {
			continue
		}
		via := ""
		if root != funcDisplayName(n.fn) {
			via = " (reachable from //lint:hot " + root + ")"
		}
		for _, site := range directAllocSites(n) {
			pass.Reportf(site.pos,
				"%s in %s%s: hot-path functions must not allocate; hoist the allocation to setup or scratch state",
				site.what, funcDisplayName(n.fn), via)
		}
	}
	return nil
}

// hotReachable returns (building once) the set of functions reachable
// from a //lint:hot root, each mapped to the display name of the first
// root (in deterministic position order) that reaches it.
func (p *Program) hotReachable() map[*fnode]string {
	if p.hotReach != nil {
		return p.hotReach
	}
	reach := make(map[*fnode]string)
	for _, n := range p.order {
		if !n.sum.hot {
			continue
		}
		root := funcDisplayName(n.fn)
		stack := []*fnode{n}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, seen := reach[cur]; seen {
				continue
			}
			reach[cur] = root
			for _, cs := range cur.calls {
				if cs.target != nil {
					stack = append(stack, cs.target)
				}
			}
		}
	}
	p.hotReach = reach
	return reach
}

// allocSite is one direct allocation in a function body.
type allocSite struct {
	pos  token.Pos
	what string
}

// directAllocSites lists every allocation site in n's own body (function
// literals included — they belong to whoever wrote them), using exactly
// the classification the summaries use, so sum.allocs != nil iff a
// direct site exists here or in a reachable callee.
func directAllocSites(n *fnode) []allocSite {
	info := n.pkg.TypesInfo
	var out []allocSite
	ast.Inspect(n.decl.Body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.CompositeLit:
			if what, ok := allocatingLiteral(info, nd); ok {
				out = append(out, allocSite{nd.Pos(), what})
			}
		case *ast.CallExpr:
			if id, ok := unparen(nd.Fun).(*ast.Ident); ok {
				if b, isB := info.Uses[id].(*types.Builtin); isB {
					switch b.Name() {
					case "append":
						out = append(out, allocSite{nd.Pos(), "append growth"})
					case "make":
						out = append(out, allocSite{nd.Pos(), "make"})
					case "new":
						out = append(out, allocSite{nd.Pos(), "new"})
					}
				}
				return true
			}
			if pkgPath, funcName, ok := pkgFuncOf(info, nd); ok && pkgPath == "fmt" {
				out = append(out, allocSite{nd.Pos(), "fmt." + funcName + " (interface boxing)"})
			}
		}
		return true
	})
	return out
}
