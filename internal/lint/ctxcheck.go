package lint

import (
	"go/ast"
	"go/types"
)

// CtxCheck enforces PR 3's cancellation contract in the cloud layer
// (internal/cloud and cmd/cloudd):
//
//  1. DP entry points must be the context-aware ones — dp.OptimizeCtx /
//     dp.SweepDeparturesCtx — never the context-free dp.Optimize /
//     dp.SweepDepartures, which would detach a solve from the request
//     deadline and keep it burning after the client is gone.
//  2. Handler and middleware code must not mint fresh root contexts with
//     context.Background() or context.TODO(): the request context carries
//     the deadline, and a fresh root silently discards it. The check
//     applies to any function that handles HTTP traffic (parameters
//     include http.ResponseWriter / *http.Request), builds handlers
//     (results include http.Handler / http.HandlerFunc), or already
//     receives a context.Context — plus every function literal nested in
//     one. Top-level plumbing such as main() or a graceful-shutdown
//     drain is deliberately out of scope.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc: "cloud request paths must stay on context-aware DP calls and never mint root contexts\n\n" +
		"Flags dp.Optimize/dp.SweepDepartures anywhere in internal/cloud or cmd/cloudd, and\n" +
		"context.Background()/context.TODO() inside handler or middleware call chains.",
	Run: runCtxCheck,
}

func runCtxCheck(pass *Pass) error {
	if !pathHasSegments(pass.PkgPath, "internal/cloud") && !pathHasSegments(pass.PkgPath, "cmd/cloudd") {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		// handlerDepth > 0 while the walk is inside a function (or a
		// literal nested in one) that belongs to a request path.
		var sigStack []bool
		inHandlerChain := func() bool {
			for _, h := range sigStack {
				if h {
					return true
				}
			}
			return false
		}
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				sig, _ := pass.TypesInfo.Defs[n.Name].(*types.Func)
				pushed := sig != nil && isRequestPathSignature(sig.Type().(*types.Signature))
				sigStack = append(sigStack, pushed)
				if n.Body != nil {
					ast.Inspect(n.Body, walk)
				}
				sigStack = sigStack[:len(sigStack)-1]
				return false
			case *ast.FuncLit:
				sig, _ := pass.TypesInfo.Types[n].Type.(*types.Signature)
				sigStack = append(sigStack, sig != nil && isRequestPathSignature(sig))
				ast.Inspect(n.Body, walk)
				sigStack = sigStack[:len(sigStack)-1]
				return false
			case *ast.CallExpr:
				pkgPath, funcName, ok := calledPackageFunc(pass, n)
				if !ok {
					return true
				}
				if lastSegment(pkgPath) == "dp" && (funcName == "Optimize" || funcName == "SweepDepartures") {
					pass.Reportf(n.Pos(),
						"context-free dp.%s in cloud code: call dp.%sCtx so the request deadline cancels the solve",
						funcName, funcName)
				}
				if pkgPath == "context" && (funcName == "Background" || funcName == "TODO") && inHandlerChain() {
					pass.Reportf(n.Pos(),
						"context.%s() minted inside a handler/middleware chain discards the request deadline; thread the request context instead",
						funcName)
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// isRequestPathSignature reports whether a function signature marks
// request-path code: it serves HTTP (ResponseWriter/Request parameters),
// constructs handlers or middleware (Handler/HandlerFunc results), or
// already carries a context.Context and so has no business creating a
// fresh root.
func isRequestPathSignature(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		switch types.TypeString(sig.Params().At(i).Type(), nil) {
		case "net/http.ResponseWriter", "*net/http.Request", "context.Context":
			return true
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		switch types.TypeString(sig.Results().At(i).Type(), nil) {
		case "net/http.Handler", "net/http.HandlerFunc":
			return true
		}
	}
	return false
}

// calledPackageFunc resolves a call of the form pkg.Func and returns the
// imported package's path and the function name.
func calledPackageFunc(pass *Pass, call *ast.CallExpr) (pkgPath, funcName string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
