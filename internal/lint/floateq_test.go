package lint_test

import (
	"testing"

	"evvo/internal/lint"
)

func TestFloatEq(t *testing.T) {
	res := lint.RunFixture(t, lint.FloatEq, "floateq/dp")
	if len(res.Allowed) != 1 {
		t.Fatalf("suppressed findings = %d, want 1 (the tie-break pragma)", len(res.Allowed))
	}
}

// TestFloatEqOutOfScope: only the numeric packages are policed; float
// equality elsewhere is out of this analyzer's jurisdiction.
func TestFloatEqOutOfScope(t *testing.T) {
	res := lint.RunFixture(t, lint.FloatEq, "floateq/web")
	if n := len(res.Active) + len(res.Allowed); n != 0 {
		t.Fatalf("floateq fired %d finding(s) outside the numeric packages", n)
	}
}
