package lint

// White-box tests for the interprocedural layer: summary facts, witness
// chains, the one-build-per-Run contract, the loader's target cache,
// and run-to-run determinism (no analyzer mutates the shared ASTs).

import (
	"path/filepath"
	"reflect"
	"testing"
)

func loadFixturePkg(t *testing.T, pkgpath string) *Package {
	t.Helper()
	pkg, err := LoadFixture(filepath.Join("testdata", "src"), pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	return pkg
}

func summaryByName(t *testing.T, sums []FuncSummary, fn string) FuncSummary {
	t.Helper()
	for _, s := range sums {
		if s.Func == fn {
			return s
		}
	}
	t.Fatalf("no summary for %s (have %d summaries)", fn, len(sums))
	return FuncSummary{}
}

// TestSummaryFacts pins the bottom-up fact propagation on the puritycert
// fixture: a leaf's wall-clock read surfaces in every transitive caller,
// clean functions stay clean, and dynamic callbacks set the Dynamic bit
// without poisoning the certificate.
func TestSummaryFacts(t *testing.T) {
	pkg := loadFixturePkg(t, "puritycert/dp")
	prog := BuildProgram([]*Package{pkg})
	sums := prog.Summaries()

	stamp := summaryByName(t, sums, "dp.stamp")
	if !reflect.DeepEqual(stamp.Effects, []string{"wall-clock"}) {
		t.Errorf("dp.stamp effects = %v, want [wall-clock]", stamp.Effects)
	}
	for _, fn := range []string{"dp.solve", "dp.Optimize"} {
		s := summaryByName(t, sums, fn)
		if !reflect.DeepEqual(s.Effects, []string{"wall-clock"}) {
			t.Errorf("%s effects = %v, want inherited [wall-clock]", fn, s.Effects)
		}
	}
	if s := summaryByName(t, sums, "dp.OptimizeCtx"); len(s.Effects) != 0 || !s.Certified {
		t.Errorf("dp.OptimizeCtx = effects %v certified %v, want clean and certified", s.Effects, s.Certified)
	}
	if s := summaryByName(t, sums, "dp.WithCallback"); !s.Dynamic || len(s.Effects) != 0 {
		t.Errorf("dp.WithCallback = dynamic %v effects %v, want dynamic with no effects", s.Dynamic, s.Effects)
	}
	if s := summaryByName(t, sums, "dp.Jitter"); !reflect.DeepEqual(s.Effects, []string{"global-rand"}) {
		t.Errorf("dp.Jitter effects = %v, want [global-rand]", s.Effects)
	}
	if s := summaryByName(t, sums, "dp.CleanFold"); len(s.Effects) != 0 {
		t.Errorf("dp.CleanFold effects = %v, want none (integer fold is commutative)", s.Effects)
	}
}

// TestSummaryLockFacts pins lock classes and order edges on the
// lockorder fixture, including the edge formed by calling a lock-taking
// helper while holding a lock.
func TestSummaryLockFacts(t *testing.T) {
	pkg := loadFixturePkg(t, "lockorder/internal/cloud")
	prog := BuildProgram([]*Package{pkg})
	sums := prog.Summaries()

	lb := summaryByName(t, sums, "cloud.lockBoth")
	if !reflect.DeepEqual(lb.Acquires, []string{"cloud.Registry.mu", "cloud.Server.mu"}) {
		t.Errorf("lockBoth acquires = %v", lb.Acquires)
	}
	if !reflect.DeepEqual(lb.LockEdges, []string{"cloud.Server.mu -> cloud.Registry.mu"}) {
		t.Errorf("lockBoth edges = %v", lb.LockEdges)
	}
	// The helper-call edge: Gauge.mu held across a call to bumpServer,
	// whose summary acquires Server.mu.
	hg := summaryByName(t, sums, "cloud.holdGaugeThenServer")
	if !reflect.DeepEqual(hg.LockEdges, []string{"cloud.Gauge.mu -> cloud.Server.mu"}) {
		t.Errorf("holdGaugeThenServer edges = %v", hg.LockEdges)
	}
	// Released before the reversed acquisition: no edges at all.
	if s := summaryByName(t, sums, "cloud.releasedBeforeReversed"); len(s.LockEdges) != 0 {
		t.Errorf("releasedBeforeReversed edges = %v, want none (flow-sensitive)", s.LockEdges)
	}
}

// TestSummaryBlockingAndCtx pins the blocking/unguarded split on the
// ctxprop fixture: a ctx-less receive is unguarded, a done-channel or
// ctx parameter guards it, and select-with-default is not blocking.
func TestSummaryBlockingAndCtx(t *testing.T) {
	pkg := loadFixturePkg(t, "ctxprop/internal/cloud")
	prog := BuildProgram([]*Package{pkg})
	sums := prog.Summaries()

	if s := summaryByName(t, sums, "(*cloud.Server).waitForSlot"); !s.Blocks || !s.Unguarded {
		t.Errorf("waitForSlot = blocks %v unguarded %v, want both", s.Blocks, s.Unguarded)
	}
	if s := summaryByName(t, sums, "(*cloud.Server).waitCtx"); !s.Blocks || s.Unguarded || !s.CtxParam {
		t.Errorf("waitCtx = blocks %v unguarded %v ctx %v, want blocking but guarded", s.Blocks, s.Unguarded, s.CtxParam)
	}
	if s := summaryByName(t, sums, "cloud.sleepCtx"); s.Unguarded || !s.CtxParam {
		t.Errorf("sleepCtx = unguarded %v ctx %v, want done-channel param to count as ctx", s.Unguarded, s.CtxParam)
	}
	if s := summaryByName(t, sums, "(*cloud.Server).isReady"); s.Blocks {
		t.Errorf("isReady blocks; select with default is non-blocking")
	}
	if s := summaryByName(t, sums, "(*cloud.Server).handleSpawn"); s.Blocks {
		t.Errorf("handleSpawn blocks; go-statement callees park their own goroutine")
	}
}

// TestProgramBuiltOncePerRun pins the satellite-2 contract: one Run call
// — N analyzers × M packages — performs exactly one interprocedural
// build.
func TestProgramBuiltOncePerRun(t *testing.T) {
	pkg := loadFixturePkg(t, "puritycert/dp")
	before := programBuilds
	if _, err := Run(All(), []*Package{pkg}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := programBuilds - before; got != 1 {
		t.Fatalf("Run built the Program %d times, want exactly 1", got)
	}
}

// TestRunTwiceSameDiagnostics pins that no analyzer mutates the shared
// ASTs or type info: running the full suite twice over the SAME loaded
// packages yields byte-identical findings.
func TestRunTwiceSameDiagnostics(t *testing.T) {
	pkgs := []*Package{
		loadFixturePkg(t, "puritycert/dp"),
		loadFixturePkg(t, "lockorder/internal/cloud"),
		loadFixturePkg(t, "ctxprop/internal/cloud"),
		loadFixturePkg(t, "hotalloc/internal/dp"),
	}
	render := func(res *Result) []string {
		var out []string
		for _, d := range res.Active {
			out = append(out, FormatDiagnostic(res.Fset, d))
		}
		return out
	}
	first, err := Run(All(), pkgs)
	if err != nil {
		t.Fatalf("first Run: %v", err)
	}
	second, err := Run(All(), pkgs)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	a, b := render(first), render(second)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("diagnostics changed between identical runs:\nfirst:  %v\nsecond: %v", a, b)
	}
	if len(a) == 0 {
		t.Error("expected the fixture packages to produce findings")
	}
}

// TestLoadFixtureCached pins the loader's target cache: a second load of
// the same path returns the SAME *Package — one parse + type-check per
// process, shared across every analyzer test and lint run.
func TestLoadFixtureCached(t *testing.T) {
	first := loadFixturePkg(t, "puritycert/dp")
	second := loadFixturePkg(t, "puritycert/dp")
	if first != second {
		t.Error("LoadFixture re-checked a cached package; wanted pointer-identical result")
	}
}
