package lint

// Edge-case tests for the flow walker (flow.go) — the layer the
// interprocedural summaries lean on for flow-sensitive lock tracking.
// Each test drives walkFlow over a parsed snippet with a tiny visitor
// that interprets hold(x)/drop(x) as fact transitions and probe(p) as a
// snapshot request, then asserts which facts reach each probe. The
// contract being pinned is the documented may-analysis direction:
// dropping facts on unmodeled edges (goto, labeled branches) may lose
// facts, never invent them.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// probeVisitor interprets calls named hold/drop/probe (plain or method
// form) whose single argument is an identifier. Probes union across
// visits because loop bodies are walked twice by design.
type probeVisitor struct {
	snaps  map[string]map[string]bool // probe label -> facts ever seen there
	defers []string                   // deferred call expressions, in delivery order
}

func (v *probeVisitor) transfer(s ast.Stmt, facts factSet) {
	if d, ok := s.(*ast.DeferStmt); ok {
		v.defers = append(v.defers, exprText(d.Call))
	}
	inspectShallow(headerExprs(s), func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		arg, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		switch name {
		case "hold":
			facts[arg.Name] = call.Pos()
		case "drop":
			delete(facts, arg.Name)
		case "probe":
			set := v.snaps[arg.Name]
			if set == nil {
				set = make(map[string]bool)
				v.snaps[arg.Name] = set
			}
			for k := range facts {
				set[k] = true
			}
		}
		return true
	})
}

// walkSnippet wraps body in a function, parses it (no type check — the
// walker is pure AST), and returns the probe snapshots.
func walkSnippet(t *testing.T, body string) *probeVisitor {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "snippet.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing snippet: %v\n%s", err, src)
	}
	var fd *ast.FuncDecl
	for _, d := range file.Decls {
		if d2, ok := d.(*ast.FuncDecl); ok {
			fd = d2
		}
	}
	v := &probeVisitor{snaps: make(map[string]map[string]bool)}
	walkFlow(fd.Body, v)
	return v
}

func wantFacts(t *testing.T, v *probeVisitor, probe string, facts ...string) {
	t.Helper()
	got, ok := v.snaps[probe]
	if !ok {
		t.Fatalf("probe %q was never reached", probe)
	}
	names := make([]string, 0, len(got))
	for k := range got {
		names = append(names, k)
	}
	sort.Strings(names)
	sort.Strings(facts)
	if strings.Join(names, ",") != strings.Join(facts, ",") {
		t.Errorf("probe %q saw facts [%s], want [%s]",
			probe, strings.Join(names, ","), strings.Join(facts, ","))
	}
}

// TestFlowLabeledBreak: a labeled break out of nested loops ends its
// path, but facts established before it still reach the loop exit via
// the loop's may-join — union can only add facts, the safe direction
// for "is a lock possibly held".
func TestFlowLabeledBreak(t *testing.T) {
	v := walkSnippet(t, `
	hold(a)
outer:
	for {
		for {
			hold(b)
			break outer
		}
	}
	probe(after)
`)
	wantFacts(t, v, "after", "a", "b")
}

// TestFlowLabeledContinue: facts established on a branch arm that ends
// in a labeled continue are dropped at the branch join — the documented
// may-lose direction — while facts from before the loop survive every
// iteration and the loop exit.
func TestFlowLabeledContinue(t *testing.T) {
	v := walkSnippet(t, `
	hold(c)
loop:
	for i := 0; i < n; i++ {
		if cond {
			hold(d)
			continue loop
		}
		probe(inLoop)
	}
	probe(done)
`)
	wantFacts(t, v, "inLoop", "c")
	wantFacts(t, v, "done", "c")
}

// TestFlowGoto: the goto arm's facts are dropped rather than rejoined at
// the label — code after the label sees only the fall-through state, so
// a fact dropped on the straight-line path stays dropped even though the
// goto path never released it (false-negative direction, by design).
func TestFlowGoto(t *testing.T) {
	v := walkSnippet(t, `
	hold(g)
	if cond {
		goto done
	}
	probe(before)
	drop(g)
done:
	probe(end)
`)
	wantFacts(t, v, "before", "g")
	wantFacts(t, v, "end")
}

// TestFlowDeferOrdering: deferred calls do NOT execute at their textual
// position — a deferred drop leaves the fact held for the rest of the
// body, and a deferred hold never establishes one. The DeferStmt itself
// IS delivered to the visitor in registration order, which is what lets
// lockheld implement its defer-unlock special case on top of this
// walker.
func TestFlowDeferOrdering(t *testing.T) {
	v := walkSnippet(t, `
	hold(m)
	defer drop(m)
	probe(mid)
	drop(m)
	defer hold(x)
	probe(tail)
`)
	wantFacts(t, v, "mid", "m")
	wantFacts(t, v, "tail")
	if want := []string{"drop(m)", "hold(x)"}; !reflect.DeepEqual(v.defers, want) {
		t.Errorf("defer statements delivered as %v, want %v", v.defers, want)
	}
}

// TestFlowMethodValueReceiver: a method CALL through a selector takes
// effect at its position, but binding the method VALUE does not — and
// neither does invoking it later through the bound name (a dynamic call
// the walker is opaque to). Facts from before are unaffected.
func TestFlowMethodValueReceiver(t *testing.T) {
	v := walkSnippet(t, `
	hold(r)
	probe(p1)
	m.drop(r)
	probe(p2)
	g := m.hold
	probe(p3)
	g(r)
	probe(p4)
`)
	wantFacts(t, v, "p1", "r")
	wantFacts(t, v, "p2")
	wantFacts(t, v, "p3")
	wantFacts(t, v, "p4")
}
