package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHeld flags blocking operations performed while a sync.Mutex or
// sync.RWMutex may still be held — the failure mode that turns one slow
// peer into a full-node stall in the cluster paths (peer.go heartbeats,
// table fetches, replication pushes, DESIGN.md §13):
//
//   - channel sends and receives (including range-over-channel and
//     selects without a default arm),
//   - sync waits (WaitGroup.Wait, Cond.Wait),
//   - network calls (http.Client.Do/Get/Post/..., the net/http package
//     helpers) and time.Sleep.
//
// The analysis is the flow walker's may-held dataflow: Lock()/RLock()
// establishes a held fact, Unlock()/RUnlock() on the same receiver
// expression retires it, branch joins union (held on any path counts),
// and early-exit paths (`if err { mu.Unlock(); return }`) are tracked
// precisely. `defer mu.Unlock()` is recognized as the lock being held to
// function exit — blocking calls after it still fire, because the lock
// IS held there. A critical section that computes without blocking and
// unlocks stays silent.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc: "no blocking calls (network, channels, sync waits) while a mutex may be held\n\n" +
		"Flow-sensitive: tracks Lock/Unlock across branches and early returns, recognizes\n" +
		"defer-unlock, and flags channel ops, WaitGroup/Cond waits, http.Client calls and\n" +
		"time.Sleep reached with a lock still held.",
	Run: runLockHeld,
}

// lockHeldScopes: the concurrent serving and numeric packages.
var lockHeldScopes = []string{
	"internal/cloud", "internal/cluster", "internal/dp", "internal/neural",
	"internal/metrics", "internal/par", "cmd",
}

func runLockHeld(pass *Pass) error {
	if !anyPathSegment(pass.PkgPath, lockHeldScopes) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					v := &lockHeldVisitor{pass: pass, reported: map[token.Pos]bool{}}
					walkFlow(n.Body, v)
				}
			case *ast.FuncLit:
				v := &lockHeldVisitor{pass: pass, reported: map[token.Pos]bool{}}
				walkFlow(n.Body, v)
			}
			return true
		})
	}
	return nil
}

func anyPathSegment(path string, scopes []string) bool {
	for _, s := range scopes {
		if pathHasSegments(path, s) {
			return true
		}
	}
	return false
}

// lockHeldVisitor is the flowVisitor carrying the may-held fact set.
// reported deduplicates findings: loop bodies are walked twice.
type lockHeldVisitor struct {
	pass     *Pass
	reported map[token.Pos]bool
}

func (v *lockHeldVisitor) transfer(s ast.Stmt, facts factSet) {
	switch s := s.(type) {
	case *ast.DeferStmt:
		// defer mu.Unlock() means the lock stays held to function exit —
		// recognized (not a leak), but later blocking calls still flag.
		// Other deferred calls run at exit; out of walk order, skip them.
		return
	case *ast.GoStmt:
		// The goroutine body runs elsewhere and does not hold this
		// function's locks; its own walk covers it. Argument evaluation
		// is synchronous but never blocking in practice.
		return
	case *ast.SendStmt:
		v.blockedWhileHeld(s.Pos(), "channel send", facts)
	case *ast.SelectStmt:
		if !hasDefaultClause(s.Body) {
			v.blockedWhileHeld(s.Pos(), "select without default", facts)
		}
		return
	case *ast.RangeStmt:
		if t := v.pass.TypesInfo.Types[s.X].Type; t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				v.blockedWhileHeld(s.Pos(), "range over channel", facts)
			}
		}
	}
	inspectShallow(headerExprs(s), func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				v.blockedWhileHeld(n.Pos(), "channel receive", facts)
			}
		case *ast.CallExpr:
			v.transferCall(n, facts)
		}
		return true
	})
}

// transferCall applies Lock/Unlock effects and classifies blocking calls.
func (v *lockHeldVisitor) transferCall(call *ast.CallExpr, facts factSet) {
	if pkgPath, funcName, ok := calledPackageFunc(v.pass, call); ok {
		switch {
		case pkgPath == "time" && funcName == "Sleep":
			v.blockedWhileHeld(call.Pos(), "time.Sleep", facts)
		case lastSegment(pkgPath) == "http" &&
			(funcName == "Get" || funcName == "Post" || funcName == "PostForm" || funcName == "Head"):
			v.blockedWhileHeld(call.Pos(), "http."+funcName, facts)
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recvType := func() types.Type {
		t := v.pass.TypesInfo.Types[sel.X].Type
		if p, ok := t.(*types.Pointer); ok {
			return p.Elem()
		}
		return t
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if isMutexType(recvType()) {
			key := exprText(sel.X)
			if _, held := facts[key]; !held {
				facts[key] = call.Pos()
			}
		}
	case "Unlock", "RUnlock":
		if isMutexType(recvType()) {
			delete(facts, exprText(sel.X))
		}
	case "Wait":
		if isSyncWaitType(recvType()) {
			v.blockedWhileHeld(call.Pos(), "sync "+exprText(sel.X)+".Wait", facts)
		}
	case "Do", "Get", "Post", "PostForm", "Head":
		if t := recvType(); t != nil && types.TypeString(t, nil) == "net/http.Client" {
			v.blockedWhileHeld(call.Pos(), "http.Client."+sel.Sel.Name, facts)
		}
	}
}

func (v *lockHeldVisitor) blockedWhileHeld(pos token.Pos, what string, facts factSet) {
	if len(facts) == 0 || v.reported[pos] {
		return
	}
	v.reported[pos] = true
	held := make([]string, 0, len(facts))
	for k := range facts {
		held = append(held, k)
	}
	sort.Strings(held)
	v.pass.Reportf(pos,
		"%s while %s may still be held: release the lock before blocking, or hand the work to a goroutine",
		what, strings.Join(held, ", "))
}

// isMutexType matches sync.Mutex, sync.RWMutex and the sync.Locker
// interface (pointer receivers already stripped by the caller).
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch types.TypeString(t, nil) {
	case "sync.Mutex", "sync.RWMutex", "sync.Locker":
		return true
	}
	return false
}

// isSyncWaitType matches sync.WaitGroup and sync.Cond receivers.
func isSyncWaitType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch types.TypeString(t, nil) {
	case "sync.WaitGroup", "sync.Cond":
		return true
	}
	return false
}
