// Package cloud exercises lockorder: cycles in the whole-program
// lock-acquisition-order graph, including edges formed by calling a
// lock-taking helper while holding a lock.
package cloud

import "sync"

// Server and Registry each own one lock class (cloud.Server.mu and
// cloud.Registry.mu — classes abstract over instances).
type Server struct {
	mu    sync.Mutex
	state int
}

type Registry struct {
	mu      sync.Mutex
	entries int
}

// lockBoth nests Registry.mu under Server.mu …
func lockBoth(s *Server, r *Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.mu.Lock() // want `lock order cycle: cloud\.lockBoth acquires cloud\.Registry\.mu while holding cloud\.Server\.mu`
	r.entries++
	r.mu.Unlock()
}

// … and lockBothReversed nests them the other way: a deadlock-capable
// cycle across two functions.
func lockBothReversed(s *Server, r *Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s.mu.Lock() // want `lock order cycle: cloud\.lockBothReversed acquires cloud\.Server\.mu while holding cloud\.Registry\.mu`
	s.state++
	s.mu.Unlock()
}

// Gauge's lock participates in a cycle only through a helper call:
// holdGaugeThenServer holds Gauge.mu and calls bumpServer, whose summary
// says it acquires Server.mu — an edge the intra-procedural lockheld can
// never see.
type Gauge struct {
	mu sync.Mutex
	n  int
}

func bumpServer(s *Server) {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
}

func holdGaugeThenServer(g *Gauge, s *Server) {
	g.mu.Lock()
	defer g.mu.Unlock()
	bumpServer(s) // want `lock order cycle: cloud\.holdGaugeThenServer acquires cloud\.Server\.mu while holding cloud\.Gauge\.mu`
	g.n++
}

func holdServerThenGauge(g *Gauge, s *Server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g.mu.Lock() // want `lock order cycle: cloud\.holdServerThenGauge acquires cloud\.Gauge\.mu while holding cloud\.Server\.mu`
	g.n++
	g.mu.Unlock()
}
