package cloud

import "sync"

// Ledger and Journal nest consistently everywhere — no cycle, no
// finding, even though both orders of MENTION appear below.
type Ledger struct {
	mu sync.Mutex
	n  int
}

type Journal struct {
	mu sync.Mutex
	n  int
}

// consistentNest establishes Ledger.mu -> Journal.mu …
func consistentNest(l *Ledger, j *Journal) {
	l.mu.Lock()
	defer l.mu.Unlock()
	j.mu.Lock()
	j.n++
	j.mu.Unlock()
}

// … and consistentNestAgain repeats the same order: still acyclic.
func consistentNestAgain(l *Ledger, j *Journal) {
	l.mu.Lock()
	j.mu.Lock()
	j.n++
	j.mu.Unlock()
	l.mu.Unlock()
}

// releasedBeforeReversed takes the locks in the "wrong" order but never
// holds them together — flow-sensitivity keeps it edge-free.
func releasedBeforeReversed(l *Ledger, j *Journal) {
	j.mu.Lock()
	j.n++
	j.mu.Unlock()
	l.mu.Lock()
	l.n++
	l.mu.Unlock()
}

// reentrant takes the same class twice (directly and via a helper):
// self-edges are lockheld's and the runtime's business, not an order
// cycle.
func reentrant(a, b *Ledger) {
	a.mu.Lock()
	defer a.mu.Unlock()
	bumpLedger(b)
}

func bumpLedger(l *Ledger) {
	l.mu.Lock()
	l.n++
	l.mu.Unlock()
}
