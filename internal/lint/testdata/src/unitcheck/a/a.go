// Package a exercises unitcheck's mixing and raw-constant rules.
package a

// KmhToMps mirrors the blessed internal/units converter by name; the
// analyzer recognizes converters by function name, so fixtures can
// declare their own.
func KmhToMps(kmh float64) float64 { return kmh / 3.6 } // want `raw unit-conversion constant 3\.6`

func mixing(tripSec, waitMs, vKmh, vMS, lenM, chargeAh, energyWh, energyJ float64) {
	_ = tripSec + waitMs    // want `unit mix: time \[Sec\] \+ time \[Ms\]`
	_ = vKmh < vMS          // want `unit mix: speed \[Kmh\] < speed \[MS\]`
	_ = chargeAh - lenM     // want `unit mix: charge \[Ah\] - length \[M\]`
	_ = energyWh == energyJ // want `unit mix: energy \[Wh\] == energy \[J\]`

	var tripMs float64
	tripMs = tripSec // want `unit mix: assigning time \[Sec\] to time \[Ms\]`
	_ = tripMs

	headwaySec := lenM // want `unit mix: assigning length \[M\] to time \[Sec\]`
	_ = headwaySec

	var restSec = lenM // want `unit mix: time \[Sec\] declared from length \[M\]`
	_ = restSec

	// Same units: fine. False-positive guards.
	_ = tripSec + 2*tripSec
	total := tripSec
	// The raw-constant rule still catches a division smuggled into a
	// compound assignment:
	total += waitMs / 1000 // want `raw conversion factor 1000 applied to unit-suffixed time \[Ms\]`
	_ = total

	// Explicit conversion through a blessed helper adopts the target
	// unit, so no mix is reported. False-positive guard.
	_ = vMS < KmhToMps(vKmh)
}

func rawConstants(chargeAh, speedMS float64) {
	_ = chargeAh * 1000 // want `raw conversion factor 1000 applied to unit-suffixed charge \[Ah\]`
	_ = speedMS * 3.6   // want `raw unit-conversion constant 3\.6`
	_ = 3.6e6           // want `raw unit-conversion constant 3\.6e6`

	// 1000 and 3600 in unit-free contexts are ordinary numbers.
	// False-positive guards.
	buf := make([]float64, 1000)
	_ = buf
	iterations := 3600
	_ = iterations

	const maxDriveSec = 4 * 3600 // want `raw conversion factor 3600 applied to unit-suffixed time \[Sec\]`
}

// indexedUnits: element access keeps the slice's advertised unit.
func indexedUnits(speedsKmh []float64, vMS float64) {
	_ = speedsKmh[0] > vMS // want `unit mix: speed \[Kmh\] > speed \[MS\]`
}

// loop indices named like maxJ are ints, not joules: the one-letter J
// suffix only binds to float-typed expressions. False-positive guard.
func notJoules(cells []float64) float64 {
	maxJ := len(cells) - 1
	sum := 0.0
	for j := 0; j <= maxJ; j++ {
		sum += cells[j]
	}
	return sum
}

// allowPragma: a narrowly-scoped waiver suppresses the finding but is
// reported in evlint's summary.
func allowPragma(vKmh, vMS float64) {
	//lint:allow unitcheck comparing raw magnitudes across units is intended here
	_ = vKmh > vMS
}
