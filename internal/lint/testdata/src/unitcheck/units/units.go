// Package units is the fixture twin of evvo/internal/units: any package
// whose path ends in "units" may hold raw conversion constants — it is
// the one blessed home for them. False-positive guard: no findings here.
package units

const (
	KmhPerMps  = 3.6
	SecPerHour = 3600.0
	MAhPerAh   = 1000.0
)

func KmhToMps(kmh float64) float64 { return kmh / KmhPerMps }

func legacy(vKmh float64) float64 { return vKmh / 3.6 }
