// Fixture for errflow scoping: web is outside the wire/serving
// packages, so bare discards there are not this analyzer's business.
package web

import "net/http"

func closeBody(resp *http.Response) {
	resp.Body.Close() // no finding: out of scope
}
