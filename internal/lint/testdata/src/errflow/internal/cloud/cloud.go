// Fixture for errflow: wire-boundary errors must be handled or
// discarded explicitly.
package cloud

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
)

// export flags: a gob encode error dropped here ships a truncated table.
func export(w io.Writer, v map[string][]float64) {
	gob.NewEncoder(w).Encode(v) // want `Encode silently discarded at a wire boundary`
}

// exportChecked passes: the error is propagated.
func exportChecked(w io.Writer, v map[string][]float64) error {
	return gob.NewEncoder(w).Encode(v)
}

// exportDeliberate passes: `_ =` is a visible, deliberate decision.
func exportDeliberate(w io.Writer, v map[string][]float64) {
	_ = gob.NewEncoder(w).Encode(v)
}

// closeBody flags: Close on a response body returns the transport's
// final error.
func closeBody(resp *http.Response) {
	resp.Body.Close() // want `Close silently discarded at a wire boundary`
}

// closeDeferred passes: the deferred-close idiom; the error is
// unobservable at the defer site.
func closeDeferred(resp *http.Response) error {
	defer resp.Body.Close()
	var v int
	return gob.NewDecoder(resp.Body).Decode(&v)
}

// fingerprint flags: a dropped hash-write error (even one documented
// never to happen) deserves an explicit discard.
func fingerprint(s string) uint64 {
	h := fnv.New64a()
	fmt.Fprintln(h, s) // want `error from fmt\.Fprintln silently discarded`
	return h.Sum64()
}

// fingerprintExplicit passes: `_, _ =` documents the decision.
func fingerprintExplicit(s string) uint64 {
	h := fnv.New64a()
	_, _ = fmt.Fprintln(h, s)
	return h.Sum64()
}

// diag passes: Fprint* to the terminal streams is diagnostics, not wire.
func diag(msg string) {
	fmt.Fprintln(os.Stderr, msg)
}

// errorlessCall passes: only calls whose results include an error are
// candidates (http.Header.Set returns nothing).
func errorlessCall(h http.Header) {
	h.Set("X-Node", "n1")
}
