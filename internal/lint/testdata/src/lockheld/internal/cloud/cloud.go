// Fixture for lockheld: blocking operations reached while a mutex may
// still be held, across branches, early returns and defer-unlock.
package cloud

import (
	"net/http"
	"sync"
	"time"
)

type group struct {
	mu sync.Mutex
	rw sync.RWMutex
	wg sync.WaitGroup
	ch chan int
	c  *http.Client
}

// sendWhileHeld flags: a channel send inside the critical section.
func (g *group) sendWhileHeld() {
	g.mu.Lock()
	g.ch <- 1 // want `channel send while g\.mu may still be held`
	g.mu.Unlock()
}

// cleanSection passes: the receive happens after the unlock.
func (g *group) cleanSection(m map[string]int) int {
	g.mu.Lock()
	n := len(m)
	g.mu.Unlock()
	<-g.ch // no finding: lock already released
	return n
}

// earlyExit flags: the error path unlocks and returns, but the
// fall-through path still holds the lock at the receive.
func (g *group) earlyExit(fail bool) {
	g.mu.Lock()
	if fail {
		g.mu.Unlock()
		return
	}
	<-g.ch // want `channel receive while g\.mu may still be held`
	g.mu.Unlock()
}

// deferUnlockBlocking flags: defer keeps the lock held to function
// exit, so the network call runs inside the critical section.
func (g *group) deferUnlockBlocking(req *http.Request) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.c.Do(req) // want `http\.Client\.Do while g\.mu may still be held`
}

// waitWhileHeld flags: WaitGroup.Wait can park forever with the read
// lock held.
func (g *group) waitWhileHeld() {
	g.rw.RLock()
	g.wg.Wait() // want `sync g\.wg\.Wait while g\.rw may still be held`
	g.rw.RUnlock()
}

// sleepWhileHeld flags: time.Sleep inside the critical section.
func (g *group) sleepWhileHeld() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while g\.mu may still be held`
	g.mu.Unlock()
}

// selectDefault passes: a select with a default arm never blocks.
func (g *group) selectDefault() {
	g.mu.Lock()
	select {
	case v := <-g.ch:
		_ = v
	default:
	}
	g.mu.Unlock()
}

// selectNoDefault flags: without a default the select parks until a
// case is ready.
func (g *group) selectNoDefault(done chan struct{}) {
	g.mu.Lock()
	select { // want `select without default while g\.mu may still be held`
	case <-g.ch:
	case <-done:
	}
	g.mu.Unlock()
}

// bothPathsUnlock passes: every path out of the branch releases the
// lock before the receive.
func (g *group) bothPathsUnlock(ok bool) {
	g.mu.Lock()
	if ok {
		g.mu.Unlock()
	} else {
		g.mu.Unlock()
	}
	<-g.ch // no finding: released on every path
}

// goroutineBody passes: the goroutine runs without the caller's lock
// (its body is walked as its own function with fresh facts).
func (g *group) goroutineBody() {
	g.mu.Lock()
	go func() {
		<-g.ch // no finding: not holding the launcher's lock
	}()
	g.mu.Unlock()
}

// loopLock flags: the send sits inside the critical section every
// iteration (and the walker's loop handling must not lose the fact).
func (g *group) loopLock(keys []string) {
	for range keys {
		g.mu.Lock()
		g.ch <- 1 // want `channel send while g\.mu may still be held`
		g.mu.Unlock()
	}
}
