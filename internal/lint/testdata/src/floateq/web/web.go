// Package web is outside floateq's numeric-package scope: float
// equality here is someone else's problem. False-positive guard.
package web

func ratio(a, b float64) bool { return a == b }
