// Package dp (fixture) exercises floateq: the final path segment "dp"
// marks it as one of the numeric packages in scope.
package dp

import "math"

func compare(a, b float64, xs []float32) {
	_ = a == b     // want `floating-point == comparison`
	_ = a != b     // want `floating-point != comparison`
	_ = xs[0] == 1 // want `floating-point == comparison`

	// Comparisons against zero are the blessed "field not set" sentinel
	// used throughout the Config defaulting code. False-positive guards.
	_ = a == 0
	_ = a != 0.0
	_ = b == -0.0

	// Integer equality is not floateq's business. False-positive guard.
	i, j := 1, 2
	_ = i == j

	// The idiomatic replacements never trip the analyzer.
	_ = math.Abs(a-b) < 1e-9
	_ = math.IsInf(a, 1)
}

// tieBreak shows the narrowly-scoped waiver: an intentional exact
// comparison carries a pragma and surfaces in the evlint summary
// instead of failing the build.
func tieBreak(cost, best float64) bool {
	//lint:allow floateq exact tie-break on identical arithmetic is intended
	return cost == best
}

const unset = 0.0

// constSentinel: named zero constants fold to the same sentinel.
// False-positive guard.
func constSentinel(x float64) bool { return x == unset }
