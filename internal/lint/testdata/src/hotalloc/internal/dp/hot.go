// Package dp exercises hotalloc: functions reachable from //lint:hot
// roots must not contain allocation sites.
package dp

import "fmt"

type scratch struct {
	cand []float64
	tags []string
}

// relax is the hot root: it allocates directly and calls helpers that
// allocate transitively.
//
//lint:hot
func relax(sc *scratch, n int) {
	buf := make([]float64, n) // want `make in dp\.relax: hot-path functions must not allocate`
	for i := range buf {
		buf[i] = float64(i)
	}
	commit(sc, buf)
	label(sc, n)
}

// commit is NOT annotated but is reachable from the hot root: its
// allocation sites are findings too, attributed to the root.
func commit(sc *scratch, vals []float64) {
	for _, v := range vals {
		sc.cand = append(sc.cand, v) // want `append growth in dp\.commit \(reachable from //lint:hot dp\.relax\)`
	}
}

func label(sc *scratch, n int) {
	sc.tags = append(sc.tags, fmt.Sprintf("n=%d", n)) // want `append growth in dp\.label` `fmt\.Sprintf \(interface boxing\) in dp\.label`
}

// gatherClean is hot and allocation-free: index writes into
// caller-owned scratch, struct VALUE literals (stack), and arithmetic.
//
//lint:hot
func gatherClean(sc *scratch, lo, hi int) float64 {
	type acc struct{ sum, n float64 }
	a := acc{}
	for i := lo; i < hi; i++ {
		if i < len(sc.cand) {
			sc.cand[i] = sc.cand[i] * 0.5
			a.sum += sc.cand[i]
			a.n++
		}
	}
	if a.n == 0 {
		return 0
	}
	return a.sum / a.n
}

// coldSetup allocates freely but is NOT reachable from any hot root —
// no findings.
func coldSetup(n int) *scratch {
	return &scratch{
		cand: make([]float64, n),
		tags: []string{"setup"},
	}
}
