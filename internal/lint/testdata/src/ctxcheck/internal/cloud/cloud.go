// Package cloud exercises ctxcheck: its fixture path ends in
// internal/cloud, so the analyzer treats it as the real cloud layer.
package cloud

import (
	"context"
	"net/http"

	"ctxcheck/dp"
)

// handler is request-path code: both the context-free DP call and the
// fresh root context are violations.
func handler(w http.ResponseWriter, r *http.Request) {
	_, _ = dp.Optimize(dp.Config{})                 // want `context-free dp\.Optimize in cloud code`
	ctx := context.Background()                     // want `context\.Background\(\) minted inside a handler/middleware chain`
	_, _ = dp.OptimizeCtx(ctx, dp.Config{})         // the Ctx variant itself is fine
	_, _ = dp.SweepDepartures(dp.Config{}, 0, 1, 1) // want `context-free dp\.SweepDepartures in cloud code`
}

// middleware builds a handler; minting a root context inside the chain
// discards the request deadline.
func middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := context.TODO() // want `context\.TODO\(\) minted inside a handler/middleware chain`
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// alreadyHasContext receives a context: creating a fresh root here
// breaks the deadline chain just the same.
func alreadyHasContext(ctx context.Context) error {
	_, err := dp.SweepDeparturesCtx(context.Background(), dp.Config{}, 0, 1, 1) // want `context\.Background\(\) minted inside a handler/middleware chain`
	return err
}

// setup is NOT request-path code (no HTTP types, no incoming context):
// background contexts for process-lifetime plumbing are legitimate.
// False-positive guard.
func setup() context.Context {
	return context.Background()
}

// startWorkers spawns process-lifetime goroutines from setup code; the
// nested literal inherits the non-handler scope. False-positive guard.
func startWorkers() {
	go func() {
		_ = context.Background()
	}()
}
