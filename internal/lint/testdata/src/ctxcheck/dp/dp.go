// Package dp is a fixture stand-in for evvo/internal/dp: ctxcheck
// matches the DP package by final import-path segment.
package dp

import "context"

type Config struct{}

type Result struct{}

func Optimize(cfg Config) (*Result, error) { return &Result{}, nil }

func OptimizeCtx(ctx context.Context, cfg Config) (*Result, error) { return &Result{}, nil }

func SweepDepartures(cfg Config, from, to, step float64) ([]*Result, error) { return nil, nil }

func SweepDeparturesCtx(ctx context.Context, cfg Config, from, to, step float64) ([]*Result, error) {
	return nil, nil
}
