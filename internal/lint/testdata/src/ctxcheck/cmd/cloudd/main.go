// Command cloudd (fixture): the path ends in cmd/cloudd, so ctxcheck is
// in scope, but top-level lifecycle code may mint root contexts.
package main

import (
	"context"
	"net/http"

	"ctxcheck/dp"
)

// main and the graceful-shutdown drain legitimately create root
// contexts: neither carries HTTP types nor receives a context.
// False-positive guards.
func main() {
	ctx := context.Background()
	_, _ = dp.OptimizeCtx(ctx, dp.Config{})
	serve(nil)
}

func serve(stop <-chan struct{}) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	_ = ctx
}

// handle is request-path code even inside package main.
func handle(w http.ResponseWriter, r *http.Request) {
	_, _ = dp.Optimize(dp.Config{}) // want `context-free dp\.Optimize in cloud code`
	_ = context.Background()        // want `context\.Background\(\) minted inside a handler/middleware chain`
}
