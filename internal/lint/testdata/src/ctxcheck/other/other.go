// Package other is outside the cloud layer: ctxcheck must not fire here
// even on patterns that would be violations in internal/cloud.
// False-positive guard.
package other

import (
	"context"
	"net/http"

	"ctxcheck/dp"
)

func batchTool(w http.ResponseWriter, r *http.Request) {
	_, _ = dp.Optimize(dp.Config{})
	_ = context.Background()
}
