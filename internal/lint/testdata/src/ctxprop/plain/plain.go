// Package plain carries the same ctx-dropping shape as the cloud
// fixture but lives outside the serving scope — ctxprop must stay
// silent here.
package plain

import "context"

type pipe struct{ c chan int }

func (p *pipe) handle(ctx context.Context) {
	p.pull()
}

func (p *pipe) pull() {
	<-p.c
}
