// Package cloud exercises ctxprop: request-path functions holding the
// context must not reach blocking operations through context-less
// chains.
package cloud

import (
	"context"
	"net/http"
	"sync"
	"time"
)

type Server struct {
	work    chan int
	results chan int
	ready   chan struct{}
}

// handleSolve holds the request context but drops it calling
// waitForSlot, which parks on a channel receive.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.waitForSlot() // want `holds the request context but calls \(\*cloud\.Server\)\.waitForSlot, a context-less chain that may block \(channel receive`
	w.WriteHeader(http.StatusOK)
}

func (s *Server) waitForSlot() {
	<-s.results
}

// handleDeep drops the context one call before the block: enqueue does
// not itself block but reaches a send through submit.
func (s *Server) handleDeep(ctx context.Context, n int) {
	s.enqueue(n) // want `holds the request context but calls \(\*cloud\.Server\)\.enqueue, a context-less chain that may block \(channel send via \(\*cloud\.Server\)\.enqueue -> \(\*cloud\.Server\)\.submit`
}

func (s *Server) enqueue(n int) {
	s.submit(n)
}

func (s *Server) submit(n int) {
	s.work <- n
}

// handleSleepy reaches a bare time.Sleep through a helper.
func (s *Server) handleSleepy(ctx context.Context) {
	backoff() // want `holds the request context but calls cloud\.backoff, a context-less chain that may block \(time\.Sleep`
}

func backoff() {
	time.Sleep(10 * time.Millisecond)
}

// --- clean cases ---

// handleGood threads ctx all the way: waitCtx selects on ctx.Done.
func (s *Server) handleGood(ctx context.Context) {
	s.waitCtx(ctx)
}

func (s *Server) waitCtx(ctx context.Context) {
	select {
	case <-s.results:
	case <-ctx.Done():
	}
}

// handleDone hands the deadline down as a done channel — the shape of
// ctx.Done(), an accepted cancellation conduit.
func (s *Server) handleDone(ctx context.Context) {
	sleepCtx(time.Millisecond, ctx.Done())
}

func sleepCtx(d time.Duration, done <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}

// handleReady calls a helper whose receive sits under a select WITH a
// default: non-blocking, no finding.
func (s *Server) handleReady(ctx context.Context) bool {
	return s.isReady()
}

func (s *Server) isReady() bool {
	select {
	case <-s.ready:
		return true
	default:
		return false
	}
}

// handleSpawn launches the blocking work on its own goroutine: the
// request path itself does not park (goleak polices the join).
func (s *Server) handleSpawn(ctx context.Context) {
	go s.waitForSlot()
}

// handleJoin blocks on a WaitGroup join of workers that carry the ctx
// themselves — the blessed bounded fan-out shape, excluded by design.
func (s *Server) handleJoin(ctx context.Context) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.waitCtx(ctx)
	}()
	wg.Wait()
}
