// Fixture for goleak: goroutines launched in request-path functions
// must have a visible join or cancellation edge.
package cloud

import (
	"context"
	"log"
	"net/http"
	"sync"
)

// handler flags: a fire-and-forget goroutine per request is an
// unbounded background population.
func handler(w http.ResponseWriter, r *http.Request) {
	go func() { // want `goroutine launched in a request-path function without a join or cancellation edge`
		log.Println("audit", r.URL.Path)
	}()
	w.WriteHeader(http.StatusOK)
}

// handlerJoined passes: WaitGroup.Done inside, Wait at the launcher.
func handlerJoined(w http.ResponseWriter, _ *http.Request) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		log.Println("audit")
	}()
	wg.Wait()
	w.WriteHeader(http.StatusOK)
}

// handlerRendezvous passes: the result channel is the join edge.
func handlerRendezvous(w http.ResponseWriter, _ *http.Request) {
	res := make(chan int, 1)
	go func() { res <- 42 }()
	<-res
	w.WriteHeader(http.StatusOK)
}

// handlerCtxStop passes: the goroutine selects on a ctx-derived stop.
func handlerCtxStop(ctx context.Context, tick chan int) {
	go func() {
		select {
		case <-ctx.Done():
		case <-tick:
		}
	}()
}

// backgroundPump passes: not a request-path function — long-lived
// process plumbing may launch workers the process lifetime owns.
func backgroundPump() {
	go func() { log.Println("tick") }()
}

// handlerNamed passes: named functions are outside this intra-procedural
// pass (their bodies are not visible here), so they are not judged.
func handlerNamed(w http.ResponseWriter, _ *http.Request) {
	go logAudit()
	w.WriteHeader(http.StatusOK)
}

func logAudit() { log.Println("audit") }
