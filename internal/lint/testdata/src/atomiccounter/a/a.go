// Package a exercises atomiccounter: captured writes in par.ForEach
// workers and goroutines, plus metrics-counter overwrites.
package a

import (
	"sync"
	"sync/atomic"

	"atomiccounter/metrics"
	"atomiccounter/par"
)

var requests metrics.Counter

func workers(items []float64) float64 {
	var total float64
	var count int
	var seen = map[int]bool{}
	var atomicTotal atomic.Int64
	out := make([]float64, len(items))

	_ = par.ForEach(4, len(items), func(i int) error {
		total += items[i] // want `captured "total" written inside a par\.ForEach worker`
		count++           // want `captured "count" written inside a par\.ForEach worker`
		seen[i] = true    // want `captured "seen" written inside a par\.ForEach worker`

		// The blessed patterns. False-positive guards:
		out[i] = items[i] * 2 // index-addressed slot (par's contract)
		atomicTotal.Add(1)    // sync/atomic (a method call, not a write)
		requests.Inc()        // metrics API
		local := items[i]     // worker-local state
		local *= 2
		_ = local
		return nil
	})
	return total
}

// goroutines get the same treatment as par workers.
func spawn(n int) {
	done := 0
	go func() {
		done = 1 // want `captured "done" written inside a goroutine`
	}()
	_ = done
}

// mutexed: a worker that takes a lock before writing is trusted — the
// race detector, not the linter, polices lock correctness.
// False-positive guard.
func mutexed(items []float64) float64 {
	var mu sync.Mutex
	var total float64
	_ = par.ForEach(4, len(items), func(i int) error {
		mu.Lock()
		total += items[i]
		mu.Unlock()
		return nil
	})
	return total
}

// reset overwrites a counter wholesale: that resets it non-atomically
// and copies its internal state.
func reset() {
	requests = metrics.Counter{} // want `metrics counter overwritten wholesale`
}

// serialAccumulate: writes outside any worker are ordinary single-
// goroutine code. False-positive guard.
func serialAccumulate(items []float64) float64 {
	total := 0.0
	for _, x := range items {
		total += x
	}
	return total
}

// allowPragma: an intentional single-writer capture can be waived.
func allowPragma() {
	started := false
	go func() {
		//lint:allow atomiccounter single write before any reader starts
		started = true
	}()
	_ = started
}
