// Package metrics is the fixture twin of evvo/internal/metrics.
package metrics

import "sync/atomic"

type Counter struct{ n atomic.Int64 }

func (c *Counter) Inc() int64        { return c.n.Add(1) }
func (c *Counter) Add(d int64) int64 { return c.n.Add(d) }
func (c *Counter) Value() int64      { return c.n.Load() }
