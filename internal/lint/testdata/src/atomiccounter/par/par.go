// Package par is the fixture twin of evvo/internal/par: atomiccounter
// matches ForEach by the final import-path segment.
package par

func ForEach(workers, n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}
