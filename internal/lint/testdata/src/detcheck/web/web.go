// Fixture for detcheck scoping: web is not one of the guarded packages,
// so the same hazardous shapes must stay silent.
package web

import (
	"math/rand"
	"time"
)

func keysOf(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // no finding: out of scope
	}
	return out
}

func jitter() time.Duration {
	return time.Duration(rand.Int63n(int64(time.Second))) // no finding: out of scope
}
