// Fixture for detcheck: rand-source discipline in a serving package.
package cloud

import (
	"math/rand"
	"time"
)

// clockRNG flags: a top-level source seeded from the wall clock draws a
// different stream every run.
var clockRNG = rand.New(rand.NewSource(time.Now().UnixNano())) // want `top-level math/rand source seeded from the clock`

// seededRNG passes: the seed is explicit.
var seededRNG = rand.New(rand.NewSource(7))

// draw flags: the package-level rand functions share the global,
// effectively clock-seeded stream.
func draw() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the global math/rand source`
}

// drawSeeded passes: method call on an injected source.
func drawSeeded() float64 {
	return seededRNG.Float64()
}

// uptime passes: cloud is a serving package, not a pure solver; wall
// clock reads are its job (deadlines, failure detection).
func uptime(start time.Time) time.Duration {
	return time.Now().Sub(start)
}

var _ = clockRNG
