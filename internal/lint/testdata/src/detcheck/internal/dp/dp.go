// Fixture for detcheck: map-range accumulation hazards and wall-clock
// reads in a pure solver package (path ends in /dp).
package dp

import (
	"bytes"
	"math/rand"
	"sort"
	"time"
)

// keysOf flags: appending map keys into an outer slice records them in
// nondeterministic order.
func keysOf(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // want `append into "out" while ranging a map`
	}
	sort.Strings(out)
	return out
}

// sumFloats flags: float addition is order-sensitive bit-exactly.
func sumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into "sum" while ranging a map`
	}
	return sum
}

// serialize flags: writing entries to an ordered stream in map order.
func serialize(m map[string]int) []byte {
	var buf bytes.Buffer
	for k := range m {
		buf.WriteString(k) // want `\.WriteString inside a map range serializes entries`
	}
	return buf.Bytes()
}

// sumInts passes: integer addition commutes, the fold is order-blind
// (metrics.LabeledCounter.Total is the real-code twin).
func sumInts(m map[string]int) int {
	total := 0
	for _, n := range m {
		total += n
	}
	return total
}

// snapshot passes: a map→map copy cannot observe iteration order
// (metrics.LabeledCounter.Snapshot is the real-code twin).
func snapshot(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// perEntry passes: the accumulator is loop-local, reset every iteration.
func perEntry(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		row := make([]int, 0, len(vs))
		row = append(row, vs...)
		n += len(row)
	}
	return n
}

// sortedWalk passes: iterating a sorted key slice is the blessed shape.
func sortedWalk(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // want `append into "keys" while ranging a map`
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k) // no finding: ranging a slice, not a map
	}
	return out
}

// stamp flags: dp is a pure solver package; solves must not depend on
// when they ran.
func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now\(\) in pure solver package dp`
}

// seededDraw passes: an explicitly seeded local source is deterministic.
func seededDraw(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
