// Package dp mimics evvo/internal/dp by path shape: puritycert requires
// the solver entrypoints here to be certified, and enforces the
// certificate transitively through the call graph.
package dp

import "time"

// Config mimics a solver config carrying a dynamic callback hook.
type Config struct {
	Steps int
	// Progress is a caller-owned hook; calls through it are dynamic and
	// outside the certificate.
	Progress func(int)
}

// Result is a solve result.
type Result struct {
	Cost    float64
	Stamped int64
}

// Optimize is certified but reaches time.Now() two calls deep — the
// exact regression ISSUE 10 requires the fixture to catch.
//
//lint:certify pure
func Optimize(cfg Config) (*Result, error) {
	r := solve(cfg) // want `dp\.Optimize is certified pure but may observe wall-clock \(time\.Now\(\)\) via dp\.Optimize -> dp\.solve -> dp\.stamp`
	return r, nil
}

func solve(cfg Config) *Result {
	r := &Result{Cost: float64(cfg.Steps)}
	stamp(r)
	return r
}

func stamp(r *Result) {
	r.Stamped = time.Now().UnixNano()
}

// OptimizeCtx is certified and genuinely pure: everything it reaches is
// arithmetic over its inputs. No finding.
//
//lint:certify pure
func OptimizeCtx(cfg Config) (*Result, error) {
	return &Result{Cost: pureCost(cfg.Steps)}, nil
}

func pureCost(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		total += float64(i)
	}
	return total
}

// BuildRouteTables is a required entrypoint with no certification
// annotation at all.
func BuildRouteTables(cfg Config) (*Result, error) { // want `dp\.BuildRouteTables is a solver entrypoint and must carry`
	return &Result{}, nil
}

// WithCallback is certified and calls through a dynamic function value.
// Dynamic callees are outside the certificate (the summary's Dynamic bit
// records the hole), so this is clean.
//
//lint:certify pure
func WithCallback(cfg Config) float64 {
	if cfg.Progress != nil {
		cfg.Progress(1)
	}
	return pureCost(cfg.Steps)
}
