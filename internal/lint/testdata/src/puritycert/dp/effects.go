package dp

import "math/rand"

// tableState is package-level mutable state: writing it from a certified
// function is a global-write effect.
var tableState int

// Weights opts in to certification (not a required entrypoint) and folds
// floats while ranging a map — an order-dependent accumulation.
//
//lint:certify pure
func Weights(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `dp\.Weights is certified pure but may observe map-order`
	}
	return total
}

// Jitter is certified but draws from the global math/rand stream through
// a helper.
//
//lint:certify pure
func Jitter() float64 {
	return draw() // want `dp\.Jitter is certified pure but may observe global-rand .* via dp\.Jitter -> dp\.draw`
}

func draw() float64 {
	return rand.Float64()
}

// Memoize is certified but mutates package state.
//
//lint:certify pure
func Memoize(n int) int {
	tableState = n // want `dp\.Memoize is certified pure but may observe global-write \(writes package-level var tableState\)`
	return tableState
}

// CleanFold accumulates integers while ranging a map — commutative,
// order-blind, not an effect. Certified and clean.
//
//lint:certify pure
func CleanFold(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
