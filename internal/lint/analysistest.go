package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// TB is the subset of *testing.T the fixture harness needs; an interface
// keeps the production lint package from importing package testing.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunFixture loads the GOPATH-style fixture package pkgpath from
// testdata/src, runs the analyzer over it, and compares the active
// diagnostics against `// want "regexp"` comments in the fixture source —
// the same contract as x/tools' analysistest, reimplemented here because
// the module builds offline. Every diagnostic must be matched by a want
// on its line, and every want must match at least one diagnostic.
// Diagnostics suppressed by //lint:allow pragmas are returned (not
// matched against wants) so tests can assert on suppression explicitly.
func RunFixture(t TB, a *Analyzer, pkgpath string) *Result {
	t.Helper()
	pkg, err := LoadFixture(filepath.Join("testdata", "src"), pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
		return nil
	}
	res, err := Run([]*Analyzer{a}, []*Package{pkg})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
		return nil
	}

	wants := collectWants(t, pkg)
	for _, d := range res.Active {
		p := pkg.Fset.Position(d.Pos)
		if !wants.match(p, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", p, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s:%d: no diagnostic matched `want %q`", w.file, w.line, w.re.String())
	}
	return res
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ byFile map[string][]*want }

// collectWants parses `// want "re1" "re2"` comments from the fixture.
func collectWants(t TB, pkg *Package) *wantSet {
	t.Helper()
	set := &wantSet{byFile: make(map[string][]*want)}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, lit := range splitQuoted(strings.TrimPrefix(text, "want ")) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %s: %v", pos, lit, err)
						return set
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						return set
					}
					set.byFile[pos.Filename] = append(set.byFile[pos.Filename],
						&want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return set
}

// splitQuoted splits a want payload into its quoted segments. Both
// double-quoted and backquoted patterns are accepted; backquotes are the
// usual choice since regexps are full of backslashes.
func splitQuoted(s string) []string {
	var out []string
	for len(s) > 0 {
		i := strings.IndexAny(s, "\"`")
		if i < 0 {
			return out
		}
		quote := s[i]
		j := i + 1
		for j < len(s) {
			if quote == '"' && s[j] == '\\' {
				j += 2
				continue
			}
			if s[j] == quote {
				break
			}
			j++
		}
		if j >= len(s) {
			return out
		}
		out = append(out, s[i:j+1])
		s = s[j+1:]
	}
	return out
}

func (ws *wantSet) match(p token.Position, msg string) bool {
	for _, w := range ws.byFile[p.Filename] {
		if w.line == p.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, ws := range ws.byFile {
		for _, w := range ws {
			if !w.matched {
				out = append(out, w)
			}
		}
	}
	return out
}

// FormatDiagnostic renders a diagnostic the way cmd/evlint prints it.
func FormatDiagnostic(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
}
