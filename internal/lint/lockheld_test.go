package lint_test

import (
	"testing"

	"evvo/internal/lint"
)

func TestLockHeld(t *testing.T) {
	lint.RunFixture(t, lint.LockHeld, "lockheld/internal/cloud")
}
