package lint

// This file is the suite's intra-procedural control-flow/dataflow layer:
// a per-function statement-graph walker that threads a set of reaching
// "facts" (named dataflow properties, e.g. "mutex s.mu is held") forward
// through a function body in execution order, joining facts at branch
// merges. It is deliberately small — no basic blocks, no SSA, no
// x/tools — because the analyzers built on it (lockheld today) only need
// may-analysis over Go's structured statements:
//
//   - Branches (if/switch/select) analyze each arm from a clone of the
//     incoming facts and union the arms that can fall through. Union is
//     the may-join: a fact reaches the merge point if it reaches it on
//     ANY incoming path, which is the conservative direction for
//     "is a lock possibly held here?".
//   - Arms that cannot fall through (return, break, continue, goto,
//     panic, os.Exit, log.Fatal*) contribute nothing to the join, which
//     is what makes the classic `if err { mu.Unlock(); return }` early
//     exit precise: the fall-through path still holds the lock.
//   - Loop bodies are walked twice — once with the entry facts, once
//     with entry ∪ first-pass exit — a two-iteration approximation of
//     the dataflow fixpoint that is exact for the small fact sets these
//     analyzers track. Visitors therefore see a statement more than once
//     and must deduplicate reports by position.
//   - Function literals are NOT descended into: a FuncLit runs on its
//     own call (or goroutine) with its own fact state, so the analyzer
//     driver walks each literal body as a separate function.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// factSet is the reaching-fact state threaded through a flow walk: the
// set of facts that may hold at a program point, each keyed by a
// visitor-chosen name and carrying the position that established it.
type factSet map[string]token.Pos

func (f factSet) clone() factSet {
	g := make(factSet, len(f))
	for k, v := range f {
		g[k] = v
	}
	return g
}

// union folds g into f, keeping f's position for facts both sets hold.
func (f factSet) union(g factSet) {
	for k, v := range g {
		if _, ok := f[k]; !ok {
			f[k] = v
		}
	}
}

// A flowVisitor observes every statement of a walked function body with
// the facts that reach it, in execution order. transfer both inspects
// the statement (reporting findings) and applies the statement's effects
// by mutating facts in place. For compound statements (if/for/switch/
// select/range) transfer runs BEFORE the walker descends into the arms,
// and should only examine the statement's header expressions — the
// walker delivers the nested statements itself.
type flowVisitor interface {
	transfer(s ast.Stmt, facts factSet)
}

// walkFlow drives a forward walk of one function body's statement graph,
// starting from an empty fact set.
func walkFlow(body *ast.BlockStmt, v flowVisitor) {
	if body == nil {
		return
	}
	walkStmts(body.List, make(factSet), v)
}

// walkStmts walks a statement list, returning the facts that fall
// through its end and whether the end is reachable at all.
func walkStmts(list []ast.Stmt, f factSet, v flowVisitor) (factSet, bool) {
	for _, s := range list {
		var reach bool
		f, reach = walkStmt(s, f, v)
		if !reach {
			return f, false
		}
	}
	return f, true
}

func walkStmt(s ast.Stmt, f factSet, v flowVisitor) (factSet, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return walkStmts(s.List, f, v)

	case *ast.LabeledStmt:
		return walkStmt(s.Stmt, f, v)

	case *ast.IfStmt:
		if s.Init != nil {
			f, _ = walkStmt(s.Init, f, v)
		}
		v.transfer(s, f) // condition evaluation (may contain receives)
		thenF, thenReach := walkStmts(s.Body.List, f.clone(), v)
		if s.Else == nil {
			// Paths: skip (f) and then-branch fall-through.
			if thenReach {
				f.union(thenF)
			}
			return f, true
		}
		elseF, elseReach := walkStmt(s.Else, f.clone(), v)
		switch {
		case thenReach && elseReach:
			thenF.union(elseF)
			return thenF, true
		case thenReach:
			return thenF, true
		case elseReach:
			return elseF, true
		default:
			return f, false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			f, _ = walkStmt(s.Init, f, v)
		}
		v.transfer(s, f)
		iterate := func(in factSet) factSet {
			out, reach := walkStmts(s.Body.List, in, v)
			if reach && s.Post != nil {
				out, _ = walkStmt(s.Post, out, v)
			}
			return out
		}
		first := iterate(f.clone())
		second := f.clone()
		second.union(first)
		f.union(iterate(second))
		return f, true // zero iterations (or break) falls through

	case *ast.RangeStmt:
		v.transfer(s, f)
		first, _ := walkStmts(s.Body.List, f.clone(), v)
		second := f.clone()
		second.union(first)
		again, _ := walkStmts(s.Body.List, second, v)
		f.union(again)
		return f, true

	case *ast.SwitchStmt:
		if s.Init != nil {
			f, _ = walkStmt(s.Init, f, v)
		}
		v.transfer(s, f)
		return walkClauses(s.Body, f, v, hasDefaultClause(s.Body))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			f, _ = walkStmt(s.Init, f, v)
		}
		v.transfer(s, f)
		return walkClauses(s.Body, f, v, hasDefaultClause(s.Body))

	case *ast.SelectStmt:
		v.transfer(s, f) // the select itself may block (lockheld's business)
		// A select always commits to exactly one case, so the join is
		// over the clause exits only (no skip path).
		return walkClauses(s.Body, f, v, true)

	case *ast.ReturnStmt:
		v.transfer(s, f)
		return f, false

	case *ast.BranchStmt:
		// break/continue/goto end this path; their facts rejoin outside a
		// construct the walker does not model edge-precisely. Dropping
		// them can only lose facts (false negatives), never invent them.
		v.transfer(s, f)
		return f, false

	case *ast.ExprStmt:
		v.transfer(s, f)
		if isTerminalCall(s.X) {
			return f, false
		}
		return f, true

	default:
		// Assign, DeclStmt, IncDec, Send, Go, Defer, Empty: straight-line.
		v.transfer(s, f)
		return f, true
	}
}

// walkClauses walks the case/comm clauses of a switch or select body.
// exhaustive marks constructs where one arm always runs (a default
// clause exists, or the construct is a select); otherwise the incoming
// facts themselves fall through as the no-arm-taken path.
func walkClauses(body *ast.BlockStmt, f factSet, v flowVisitor, exhaustive bool) (factSet, bool) {
	var out factSet
	reach := false
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			list = c.Body
		case *ast.CommClause:
			list = c.Body
		default:
			continue
		}
		exit, ok := walkStmts(list, f.clone(), v)
		if !ok {
			continue
		}
		if out == nil {
			out = exit
		} else {
			out.union(exit)
		}
		reach = true
	}
	if !exhaustive || len(body.List) == 0 {
		if out == nil {
			return f, true
		}
		out.union(f)
		return out, true
	}
	if !reach {
		return f, false
	}
	return out, true
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				return true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				return true
			}
		}
	}
	return false
}

// isTerminalCall matches expression statements that never return:
// panic(...), os.Exit(...), log.Fatal/Fatalf/Fatalln(...).
func isTerminalCall(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		if pkg.Name == "os" && fun.Sel.Name == "Exit" {
			return true
		}
		if pkg.Name == "log" && isLogFatalName(fun.Sel.Name) {
			return true
		}
	}
	return false
}

func isLogFatalName(name string) bool {
	return name == "Fatal" || name == "Fatalf" || name == "Fatalln"
}

// headerExprs returns the expressions a statement evaluates itself —
// before any nested statement runs — so visitors can scan compound
// statement headers (an if condition, a range operand) without touching
// the arms the walker will deliver separately.
func headerExprs(s ast.Stmt) []ast.Expr {
	switch s := s.(type) {
	case *ast.IfStmt:
		return []ast.Expr{s.Cond}
	case *ast.ForStmt:
		if s.Cond != nil {
			return []ast.Expr{s.Cond}
		}
		return nil
	case *ast.RangeStmt:
		return []ast.Expr{s.X}
	case *ast.SwitchStmt:
		if s.Tag != nil {
			return []ast.Expr{s.Tag}
		}
		return nil
	case *ast.ExprStmt:
		return []ast.Expr{s.X}
	case *ast.SendStmt:
		return []ast.Expr{s.Chan, s.Value}
	case *ast.AssignStmt:
		return s.Rhs
	case *ast.ReturnStmt:
		return s.Results
	case *ast.IncDecStmt:
		return []ast.Expr{s.X}
	case *ast.DeclStmt:
		var out []ast.Expr
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
		}
		return out
	}
	return nil
}

// exprText renders an expression the way it appears in source, for
// diagnostics and for keying facts by lvalue ("pg.mu", "s.peers[id]").
func exprText(e ast.Expr) string {
	return types.ExprString(e)
}

// inspectShallow applies fn to every node of the given expressions
// without descending into function literals (their bodies execute as
// separate functions and get their own flow walk).
func inspectShallow(exprs []ast.Expr, fn func(ast.Node) bool) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			return fn(n)
		})
	}
}
