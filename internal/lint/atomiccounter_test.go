package lint_test

import (
	"testing"

	"evvo/internal/lint"
)

func TestAtomicCounter(t *testing.T) {
	res := lint.RunFixture(t, lint.AtomicCounter, "atomiccounter/a")
	if len(res.Allowed) != 1 {
		t.Fatalf("suppressed findings = %d, want 1 (the single-writer pragma)", len(res.Allowed))
	}
}
