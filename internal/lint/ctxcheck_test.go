package lint_test

import (
	"testing"

	"evvo/internal/lint"
)

func TestCtxCheckCloudPackage(t *testing.T) {
	lint.RunFixture(t, lint.CtxCheck, "ctxcheck/internal/cloud")
}

func TestCtxCheckCloudd(t *testing.T) {
	lint.RunFixture(t, lint.CtxCheck, "ctxcheck/cmd/cloudd")
}

// TestCtxCheckOutOfScope: packages outside internal/cloud and cmd/cloudd
// may use the context-free DP API (batch tools, experiments); the
// analyzer must stay silent there.
func TestCtxCheckOutOfScope(t *testing.T) {
	res := lint.RunFixture(t, lint.CtxCheck, "ctxcheck/other")
	if n := len(res.Active) + len(res.Allowed); n != 0 {
		t.Fatalf("ctxcheck fired %d finding(s) outside the cloud layer", n)
	}
}
