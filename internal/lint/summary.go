package lint

// Bottom-up per-function summaries over the call graph (callgraph.go),
// computed SCC by SCC in callees-first order with a fixpoint iteration
// inside cycles. Each summary records four families of facts, every one
// carrying a witness chain (the call path to the root cause) so the
// analyzers built on top can explain a transitive finding end-to-end:
//
//   - effects: nondeterministic inputs the function may observe — wall
//     clock reads, global math/rand draws, order-dependent folds inside
//     map ranges, package-level variable mutation;
//   - lock sets: which lock classes the function may acquire, and the
//     lock→lock acquisition-order edges it establishes (lock B taken
//     while A is held), tracked flow-sensitively with the walker in
//     flow.go so early-exit unlocks stay precise;
//   - blocking: whether the function may park — channel operations,
//     selects without a default, time.Sleep, HTTP round trips — plus the
//     ctxprop-specific refinement "blocks with no context.Context
//     parameter anywhere on the path" (unguarded blocking);
//   - allocation: whether the function may allocate on the hot path —
//     make/new/append, slice, map and pointer composite literals, and
//     fmt calls (interface boxing).
//
// The contract with consumers (DESIGN.md §15): facts are MAY facts and
// monotone — a call site unions the callee's summary into the caller —
// so fixpoints converge; dynamic calls (function values, interface
// methods) contribute no facts but set Dynamic, and each analyzer
// documents how it treats that hole.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Effect kinds, in severity/report order.
const (
	effTime = iota // wall-clock read (time.Now/Since/Until)
	effRand        // global math/rand stream
	effMapOrder    // order-dependent fold inside a map range
	effGlobal      // package-level variable mutation
	numEffects
)

var effectNames = [numEffects]string{"wall-clock", "global-rand", "map-order", "global-write"}

// A witness pins one fact to the place that established it: a source
// position inside the summarized function, a description of the root
// cause, and — when the fact arrived through a call — the callee whose
// summary supplied it. Chains are reconstructed by following via links
// through the callee summaries.
type witness struct {
	pos  token.Pos
	what string
	via  *types.Func // nil when the fact is established directly
}

// A Summary is the interprocedural fact set of one declared function.
type Summary struct {
	fn   *types.Func
	node *fnode

	effects [numEffects]*witness
	// blocking: any parking operation, sync.WaitGroup/Cond waits
	// included (the join discipline lockheld already polices).
	blocking *witness
	// unguarded: the ctxprop refinement — the function may park on a
	// channel/select/sleep/HTTP op and has NO context.Context parameter,
	// or calls such a function; the deadline cannot reach the block.
	// Functions WITH a ctx parameter never propagate this upward: the
	// drop (if any) is reported inside them, where the ctx went missing.
	unguarded *witness
	allocs    *witness

	// acquires: lock classes the function may take at some point during
	// a call (transitively), each with the witness that first saw it.
	acquires map[string]*witness
	// lockEdges: acquisition-order edges "B taken while A held", keyed
	// A\x00B, with the position that established the edge.
	lockEdges map[string]*witness

	hasCtx    bool // signature carries context.Context or *http.Request
	dynamic   bool // has call sites the graph could not resolve
	certified bool // carries //lint:certify pure
	hot       bool // carries //lint:hot
}

func (s *Summary) pure() bool {
	for _, w := range s.effects {
		if w != nil {
			return false
		}
	}
	return true
}

// summarize computes every node's Summary, bottom-up over the SCC DAG.
func summarize(prog *Program) {
	for _, n := range prog.order {
		n.sum = newSummary(n)
	}
	for _, scc := range prog.sccs() {
		// Deterministic member order inside the component.
		sort.Slice(scc, func(i, j int) bool { return scc[i].decl.Pos() < scc[j].decl.Pos() })
		for {
			changed := false
			for _, n := range scc {
				if computeSummary(prog, n) {
					changed = true
				}
			}
			if !changed || len(scc) == 1 {
				break
			}
		}
	}
}

func newSummary(n *fnode) *Summary {
	s := &Summary{
		fn:        n.fn,
		node:      n,
		acquires:  make(map[string]*witness),
		lockEdges: make(map[string]*witness),
		hasCtx:    signatureCarriesCtx(n.fn),
		certified: declHasPragma(n.decl, "//lint:certify pure"),
		hot:       declHasPragma(n.decl, "//lint:hot"),
	}
	if n.dynamicPos != token.NoPos {
		s.dynamic = true
	}
	return s
}

// computeSummary (re)derives n's facts from its body and the CURRENT
// summaries of its callees, reporting whether anything new appeared —
// the fixpoint test inside an SCC. Facts only ever turn on, so the
// iteration terminates.
func computeSummary(prog *Program, n *fnode) bool {
	s := n.sum
	before := s.factKey()

	scanDirect(n, s)

	for _, cs := range n.calls {
		if cs.target != nil {
			mergeCallee(s, cs, cs.target.sum)
		} else {
			mergeExternal(n.pkg, s, cs)
		}
		if cs.target != nil && cs.target.sum.dynamic {
			s.dynamic = true
		}
	}

	lockWalk(prog, n)

	return s.factKey() != before
}

// factKey folds the boolean shape of the summary into a comparable
// string for fixpoint detection (witness positions excluded — they may
// legitimately move between iterations without new facts appearing).
func (s *Summary) factKey() string {
	var b strings.Builder
	for i := range s.effects {
		if s.effects[i] != nil {
			b.WriteByte(byte('0' + i))
		}
	}
	if s.blocking != nil {
		b.WriteByte('B')
	}
	if s.unguarded != nil {
		b.WriteByte('U')
	}
	if s.allocs != nil {
		b.WriteByte('A')
	}
	if s.dynamic {
		b.WriteByte('D')
	}
	keys := make([]string, 0, len(s.acquires)+len(s.lockEdges))
	for k := range s.acquires {
		keys = append(keys, "a"+k)
	}
	for k := range s.lockEdges {
		keys = append(keys, "e"+k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(';')
	}
	return b.String()
}

// scanDirect records the facts n's own body establishes without calls:
// direct blocking operations, allocation sites, map-order folds and
// global writes. Function literals are included for effects/allocations
// (they belong to whoever wrote them) but not for blocking.
func scanDirect(n *fnode, s *Summary) {
	info := n.pkg.TypesInfo
	var scan func(node ast.Node, noBlock bool)
	scan = func(node ast.Node, noBlock bool) {
		ast.Inspect(node, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.FuncLit:
				scan(nd.Body, true)
				return false
			case *ast.GoStmt:
				// Effects and allocations in the spawned call's arguments
				// still happen synchronously; blocking does not.
				for _, arg := range nd.Call.Args {
					scan(arg, true)
				}
				scan(nd.Call.Fun, true)
				return false
			case *ast.SendStmt:
				if !noBlock {
					s.setBlocking(nd.Pos(), "channel send", nil)
					s.setUnguarded(nd.Pos(), "channel send", nil)
				}
			case *ast.UnaryExpr:
				if nd.Op == token.ARROW && !noBlock {
					s.setBlocking(nd.Pos(), "channel receive", nil)
					s.setUnguarded(nd.Pos(), "channel receive", nil)
				}
			case *ast.SelectStmt:
				if !hasDefaultClause(nd.Body) && !noBlock {
					s.setBlocking(nd.Pos(), "select without default", nil)
					// A select is HOW a ctx-aware function blocks
					// correctly (ctx.Done is one of the arms), so it only
					// counts as unguarded when no ctx is in scope — which
					// is exactly the hasCtx test applied by setUnguarded.
					s.setUnguarded(nd.Pos(), "select without default", nil)
				}
				// The comm operations are PART of the select — a receive
				// under a default-carrying select never parks — so only
				// the clause bodies are scanned, not the comm headers.
				for _, c := range nd.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, st := range cc.Body {
							scan(st, noBlock)
						}
					}
				}
				return false
			case *ast.RangeStmt:
				t := info.Types[nd.X].Type
				if t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan && !noBlock {
						s.setBlocking(nd.Pos(), "range over channel", nil)
						s.setUnguarded(nd.Pos(), "range over channel", nil)
					}
					if _, isMap := t.Underlying().(*types.Map); isMap {
						for _, h := range mapRangeHazards(info, nd) {
							s.setEffect(effMapOrder, h.pos, h.what, nil)
							break
						}
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range nd.Lhs {
					if pos, name, ok := writesPackageLevel(info, lhs); ok {
						s.setEffect(effGlobal, pos, "writes package-level var "+name, nil)
					}
				}
			case *ast.IncDecStmt:
				if pos, name, ok := writesPackageLevel(info, nd.X); ok {
					s.setEffect(effGlobal, pos, "writes package-level var "+name, nil)
				}
			case *ast.CompositeLit:
				if w, ok := allocatingLiteral(info, nd); ok {
					s.setAlloc(nd.Pos(), w, nil)
				}
			case *ast.CallExpr:
				scanDirectCall(n, s, nd, noBlock)
			}
			return true
		})
	}
	scan(n.decl.Body, false)
}

// scanDirectCall classifies one call site for the DIRECT facts it
// establishes: builtin allocators and the curated external tables.
// In-Program callees are merged separately (mergeCallee).
func scanDirectCall(n *fnode, s *Summary, call *ast.CallExpr, noBlock bool) {
	info := n.pkg.TypesInfo
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := info.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "append":
				s.setAlloc(call.Pos(), "append growth", nil)
			case "make":
				s.setAlloc(call.Pos(), "make", nil)
			case "new":
				s.setAlloc(call.Pos(), "new", nil)
			}
			return
		}
	}
	pkgPath, funcName, isPkgFn := pkgFuncOf(info, call)
	if isPkgFn {
		switch {
		case pkgPath == "time" && (funcName == "Now" || funcName == "Since" || funcName == "Until"):
			s.setEffect(effTime, call.Pos(), "time."+funcName+"()", nil)
		case pkgPath == "math/rand" && globalRandFns[funcName]:
			s.setEffect(effRand, call.Pos(), "rand."+funcName+" (global source)", nil)
		case pkgPath == "time" && funcName == "Sleep":
			if !noBlock {
				s.setBlocking(call.Pos(), "time.Sleep", nil)
				s.setUnguarded(call.Pos(), "time.Sleep", nil)
			}
		case pkgPath == "fmt":
			s.setAlloc(call.Pos(), "fmt."+funcName+" (formats through interface boxing)", nil)
		case pkgPath == "net/http" && blockingHTTPFns[funcName]:
			if !noBlock {
				s.setBlocking(call.Pos(), "http."+funcName, nil)
				s.setUnguarded(call.Pos(), "http."+funcName, nil)
			}
		}
		return
	}
	// External method calls: http.Client round trips and sync waits.
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := receiverType(info, sel)
	switch sel.Sel.Name {
	case "Do", "Get", "Post", "PostForm", "Head":
		if recv != nil && types.TypeString(recv, nil) == "net/http.Client" && !noBlock {
			s.setBlocking(call.Pos(), "http.Client."+sel.Sel.Name, nil)
			s.setUnguarded(call.Pos(), "http.Client."+sel.Sel.Name, nil)
		}
	case "Wait":
		// WaitGroup/Cond waits count as blocking (lockheld's concern)
		// but NOT as unguarded blocking: a join on workers that carry
		// the ctx themselves is the blessed fan-out shape (par.ForEach),
		// and flagging it would punish exactly the code PR 3 fixed.
		if isSyncWaitType(recv) && !noBlock {
			s.setBlocking(call.Pos(), "sync "+exprText(sel.X)+".Wait", nil)
		}
	}
}

// mergeCallee unions a resolved in-Program callee's summary into the
// caller at one call site.
func mergeCallee(s *Summary, cs callSite, callee *Summary) {
	for i, w := range callee.effects {
		if w != nil {
			s.setEffect(i, cs.pos, w.what, cs.callee)
		}
	}
	if callee.blocking != nil && !cs.noBlock {
		s.setBlocking(cs.pos, callee.blocking.what, cs.callee)
	}
	// The unguarded refinement stops at ctx boundaries: a callee WITH a
	// ctx parameter owns its own blocking discipline (and any drop
	// inside it is reported there by ctxprop).
	if callee.unguarded != nil && !callee.hasCtx && !cs.noBlock {
		s.setUnguarded(cs.pos, callee.unguarded.what, cs.callee)
	}
	if callee.allocs != nil {
		s.setAlloc(cs.pos, callee.allocs.what, cs.callee)
	}
	for class, w := range callee.acquires {
		if s.acquires[class] == nil {
			s.acquires[class] = &witness{pos: cs.pos, what: w.what, via: cs.callee}
		}
	}
	// lockEdges deliberately do NOT propagate: an order edge is a global
	// fact already, owned by the function whose body (or call-with-held-
	// lock) established it — lockorder assembles the whole-program graph
	// from every function's own edges, and keeping them local gives each
	// edge exactly one owning package to report (and waive) in.
}

// mergeExternal folds the curated classification of an out-of-Program
// callee into the caller. Unknown externals are assumed pure,
// non-blocking and allocation-free: the standard library is loaded
// API-only, and the tables in scanDirectCall cover the calls that
// matter. This is the documented soundness boundary (DESIGN.md §15).
func mergeExternal(pkg *Package, s *Summary, cs callSite) {
	// Everything external that needs classification is recognized
	// syntactically in scanDirect (pkg.Func shapes and method names), so
	// nothing further to do here; the hook exists so a future
	// export-data loader can consult real summaries.
	_ = pkg
	_ = cs
}

func (s *Summary) setEffect(kind int, pos token.Pos, what string, via *types.Func) {
	if s.effects[kind] == nil {
		s.effects[kind] = &witness{pos: pos, what: what, via: via}
	}
}

func (s *Summary) setBlocking(pos token.Pos, what string, via *types.Func) {
	if s.blocking == nil {
		s.blocking = &witness{pos: pos, what: what, via: via}
	}
}

func (s *Summary) setUnguarded(pos token.Pos, what string, via *types.Func) {
	if s.hasCtx {
		return // a ctx parameter is in scope; drops are ctxprop's per-call-site business
	}
	if s.unguarded == nil {
		s.unguarded = &witness{pos: pos, what: what, via: via}
	}
}

func (s *Summary) setAlloc(pos token.Pos, what string, via *types.Func) {
	if s.allocs == nil {
		s.allocs = &witness{pos: pos, what: what, via: via}
	}
}

// lockWalk runs the flow walker over n's body tracking may-held lock
// classes, recording acquisitions and order edges into the summary.
// Callee acquisitions (from the current summaries) establish edges too:
// holding A while calling a function that takes B is an A→B edge even
// though no Lock() appears here — the cross-file case lockheld misses.
func lockWalk(prog *Program, n *fnode) {
	v := &lockOrderVisitor{prog: prog, n: n, s: n.sum}
	walkFlow(n.decl.Body, v)
	// Function literals hold no caller locks at entry (they run on their
	// own activation), but their own acquisitions and edges belong to
	// this declaration. Descend fully so nested literals get their own
	// walk too (re-walking an outer literal's straight-line statements is
	// idempotent: fact insertion and witness recording are set-like).
	ast.Inspect(n.decl.Body, func(nd ast.Node) bool {
		if lit, ok := nd.(*ast.FuncLit); ok {
			walkFlow(lit.Body, v)
		}
		return true
	})
}

// lockOrderVisitor is the flowVisitor computing lock classes and order
// edges. Facts are keyed by lock class (lockClassOf).
type lockOrderVisitor struct {
	prog *Program
	n    *fnode
	s    *Summary
}

func (v *lockOrderVisitor) transfer(stmt ast.Stmt, facts factSet) {
	switch stmt.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		// defer unlocks run at exit (lock stays held — facts untouched);
		// go bodies run elsewhere and are walked separately.
		return
	}
	inspectShallow(headerExprs(stmt), func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		v.transferCall(call, facts)
		return true
	})
}

func (v *lockOrderVisitor) transferCall(call *ast.CallExpr, facts factSet) {
	info := v.n.pkg.TypesInfo
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		recv := receiverType(info, sel)
		if isMutexType(recv) {
			class, ok := lockClassOf(info, sel.X)
			if !ok {
				return
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				v.acquire(class, call.Pos(), facts, nil)
			case "Unlock", "RUnlock":
				delete(facts, class)
			}
			return
		}
	}
	// A call to a summarized function that itself acquires locks
	// establishes order edges from everything held here.
	callee := resolveCallee(info, call)
	if callee == nil {
		return
	}
	target := v.prog.funcs[callee]
	if target == nil || target.sum == nil {
		return
	}
	for _, class := range sortedWitnessKeyList(target.sum.acquires) {
		v.acquireTransitive(class, call.Pos(), facts, callee)
	}
}

// acquire records taking `class` with `held` currently held: the class
// joins the summary's acquire set and every held→class pair becomes an
// order edge. The class then becomes held.
func (v *lockOrderVisitor) acquire(class string, pos token.Pos, held factSet, via *types.Func) {
	if v.s.acquires[class] == nil {
		v.s.acquires[class] = &witness{pos: pos, what: class, via: via}
	}
	v.addEdges(class, pos, held, via)
	if _, ok := held[class]; !ok {
		held[class] = pos
	}
}

// acquireTransitive records a callee's acquisition: edges are formed
// from the caller's held set, but the class does NOT become held here —
// a summarized callee is assumed to release what it takes (unbalanced
// lock helpers lose follow-on edges; a conservative miss, never a false
// edge).
func (v *lockOrderVisitor) acquireTransitive(class string, pos token.Pos, held factSet, via *types.Func) {
	if v.s.acquires[class] == nil {
		v.s.acquires[class] = &witness{pos: pos, what: class, via: via}
	}
	v.addEdges(class, pos, held, via)
}

func (v *lockOrderVisitor) addEdges(class string, pos token.Pos, held factSet, via *types.Func) {
	for heldClass := range held {
		if heldClass == class {
			continue // re-entry is lockheld/runtime territory, not an order edge
		}
		key := heldClass + "\x00" + class
		if v.s.lockEdges[key] == nil {
			v.s.lockEdges[key] = &witness{pos: pos, what: heldClass + " -> " + class, via: via}
		}
	}
}

// sortedWitnessKeyList returns the map's keys sorted, for deterministic
// edge formation order.
func sortedWitnessKeyList(m map[string]*witness) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// lockClassOf canonicalizes a lock expression to a stable class name:
// field locks key by their defining struct ("cloud.Server.mu" — one
// class per field, all instances collapsed, the standard lock-class
// abstraction), package-level locks by package path and name, local
// locks by declaration position.
func lockClassOf(info *types.Info, expr ast.Expr) (string, bool) {
	expr = unparen(expr)
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		obj := info.Uses[e.Sel]
		if obj == nil {
			return "", false
		}
		// Field selection: qualify by the receiver's named type.
		t := info.Types[e.X].Type
		if t != nil {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return types.TypeString(named, shortPkgQualifier) + "." + e.Sel.Name, true
			}
		}
		if obj.Pkg() != nil {
			return lastSegment(obj.Pkg().Path()) + "." + e.Sel.Name, true
		}
		return e.Sel.Name, true
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return lastSegment(obj.Pkg().Path()) + "." + obj.Name(), true
		}
		// Local lock: class per declaration site.
		return "local." + obj.Name(), true
	}
	return "", false
}

func shortPkgQualifier(p *types.Package) string { return lastSegment(p.Path()) }

// receiverType returns the (pointer-stripped) type of a selector's
// receiver expression, or nil.
func receiverType(info *types.Info, sel *ast.SelectorExpr) types.Type {
	t := info.Types[sel.X].Type
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// signatureCarriesCtx reports whether the function can thread a request
// context: an explicit context.Context parameter, an *http.Request
// (whose Context() is the request's), or a receive-only done channel
// (`<-chan struct{}` — the shape of ctx.Done(), the idiomatic
// cancellation conduit for leaf helpers like cloud.sleepCtx).
func signatureCarriesCtx(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		switch types.TypeString(t, nil) {
		case "context.Context", "*net/http.Request", "<-chan struct{}":
			return true
		}
	}
	return false
}

// declHasPragma reports whether the declaration's doc comment contains a
// line starting with the given pragma.
func declHasPragma(decl *ast.FuncDecl, pragma string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, pragma) {
			return true
		}
	}
	return false
}

// blockingHTTPFns are net/http package-level helpers that perform a full
// round trip.
var blockingHTTPFns = map[string]bool{"Get": true, "Post": true, "PostForm": true, "Head": true}

// allocatingLiteral classifies composite literals that always heap
// allocate: slice and map literals. Struct and array VALUE literals
// stay silent (they live on the stack unless escape analysis says
// otherwise, which a source-only linter cannot see); &T{...} is caught
// at the unary & — also out of reach without escape analysis, so only
// the guaranteed allocators are flagged.
func allocatingLiteral(info *types.Info, lit *ast.CompositeLit) (string, bool) {
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return "", false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		return "slice literal", true
	case *types.Map:
		return "map literal", true
	}
	return "", false
}

// writesPackageLevel reports whether an lvalue's root identifier is a
// package-level variable (blank assignments excluded).
func writesPackageLevel(info *types.Info, lhs ast.Expr) (token.Pos, string, bool) {
	root := rootIdent(unparen(lhs))
	if root == nil || root.Name == "_" {
		return token.NoPos, "", false
	}
	obj := info.Uses[root]
	if obj == nil {
		obj = info.Defs[root]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return token.NoPos, "", false
	}
	// Only direct writes to the variable itself (or an element/field
	// path rooted at it) count; writes through pointers read from it are
	// out of reach.
	return root.Pos(), v.Name(), true
}

// mapRangeHazard is one order-dependent fold found inside a map range.
type mapRangeHazard struct {
	pos  token.Pos
	what string
}

// mapRangeHazards is the info-based core of detcheck's map-range rule,
// shared with the summary builder: appends and float accumulation into
// state declared outside a range-over-map observe iteration order.
// Integer tallies and map-index copies stay silent (commutative /
// order-blind), matching detcheck exactly so puritycert never
// contradicts the intra-procedural analyzer.
func mapRangeHazards(info *types.Info, rng *ast.RangeStmt) []mapRangeHazard {
	var out []mapRangeHazard
	ast.Inspect(rng.Body, func(nd ast.Node) bool {
		assign, ok := nd.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch assign.Tok {
		case token.ASSIGN:
			for i, lhs := range assign.Lhs {
				if i >= len(assign.Rhs) {
					break
				}
				call, ok := unparen(assign.Rhs[i]).(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				if infoDeclaredOutside(info, lhs, rng) {
					out = append(out, mapRangeHazard{assign.Pos(),
						"append into " + exprText(lhs) + " while ranging a map"})
				}
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
			for _, lhs := range assign.Lhs {
				t := info.Types[lhs].Type
				if t == nil {
					continue
				}
				if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsFloat == 0 {
					continue
				}
				if infoDeclaredOutside(info, lhs, rng) {
					out = append(out, mapRangeHazard{assign.Pos(),
						"float accumulation into " + exprText(lhs) + " while ranging a map"})
				}
			}
		}
		return true
	})
	return out
}

// infoDeclaredOutside mirrors detcheck's declaredOutside without the
// *Pass dependency.
func infoDeclaredOutside(info *types.Info, lhs ast.Expr, rng *ast.RangeStmt) bool {
	lhs = unparen(lhs)
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		if t := info.Types[idx.X].Type; t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return false
			}
		}
	}
	root := rootIdent(lhs)
	if root == nil {
		return false
	}
	obj := info.Uses[root]
	if obj == nil {
		obj = info.Defs[root]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// pkgFuncOf is calledPackageFunc without the *Pass dependency, shared by
// the summary builder.
func pkgFuncOf(info *types.Info, call *ast.CallExpr) (pkgPath, funcName string, ok bool) {
	sel, ok2 := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok2 {
		return "", "", false
	}
	id, ok2 := sel.X.(*ast.Ident)
	if !ok2 {
		return "", "", false
	}
	pn, ok2 := info.Uses[id].(*types.PkgName)
	if !ok2 {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// chainString renders the witness chain starting at w inside fn:
// "dp.Optimize → dp.solve → dp.stamp: time.Now()". Cycles through
// recursive summaries are cut at the first repeat.
func (p *Program) chainString(fn *types.Func, w *witness) string {
	var parts []string
	parts = append(parts, funcDisplayName(fn))
	seen := map[*types.Func]bool{fn: true}
	for w != nil && w.via != nil && !seen[w.via] {
		seen[w.via] = true
		parts = append(parts, funcDisplayName(w.via))
		next := p.funcs[w.via]
		if next == nil || next.sum == nil {
			break
		}
		w = nextWitness(next.sum, w)
	}
	return strings.Join(parts, " -> ")
}

// nextWitness finds, in the callee summary, the witness matching the
// fact the caller's witness described (same what), so chains descend to
// the root cause.
func nextWitness(callee *Summary, w *witness) *witness {
	for _, cw := range callee.effects {
		if cw != nil && cw.what == w.what {
			return cw
		}
	}
	for _, cw := range []*witness{callee.blocking, callee.unguarded, callee.allocs} {
		if cw != nil && cw.what == w.what {
			return cw
		}
	}
	if cw := callee.acquires[w.what]; cw != nil {
		return cw
	}
	return nil
}

// FuncSummary is the exported, JSON-ready view of one Summary, dumped by
// `evlint -summaries` and uploaded as a CI artifact so the certification
// state of every function is inspectable per commit.
type FuncSummary struct {
	Func      string   `json:"func"`
	Package   string   `json:"package"`
	Effects   []string `json:"effects,omitempty"`
	Blocks    bool     `json:"blocks"`
	Unguarded bool     `json:"unguardedBlock"`
	Allocates bool     `json:"allocates"`
	Acquires  []string `json:"acquires,omitempty"`
	LockEdges []string `json:"lockEdges,omitempty"`
	CtxParam  bool     `json:"ctxParam"`
	Dynamic   bool     `json:"dynamic"`
	Certified bool     `json:"certified,omitempty"`
	Hot       bool     `json:"hot,omitempty"`
}

// Summaries returns every function's exported summary, sorted by
// package then function name, ready for JSON encoding.
func (p *Program) Summaries() []FuncSummary {
	out := make([]FuncSummary, 0, len(p.order))
	for _, n := range p.order {
		s := n.sum
		fs := FuncSummary{
			Func:      funcDisplayName(n.fn),
			Package:   n.pkg.PkgPath,
			Blocks:    s.blocking != nil,
			Unguarded: s.unguarded != nil,
			Allocates: s.allocs != nil,
			CtxParam:  s.hasCtx,
			Dynamic:   s.dynamic,
			Certified: s.certified,
			Hot:       s.hot,
		}
		for i, w := range s.effects {
			if w != nil {
				fs.Effects = append(fs.Effects, effectNames[i])
			}
		}
		fs.Acquires = sortedWitnessKeyList(s.acquires)
		for _, key := range sortedWitnessKeyList(s.lockEdges) {
			fs.LockEdges = append(fs.LockEdges, strings.ReplaceAll(key, "\x00", " -> "))
		}
		out = append(out, fs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Package != out[j].Package {
			return out[i].Package < out[j].Package
		}
		return out[i].Func < out[j].Func
	})
	return out
}
