package lint_test

import (
	"testing"

	"evvo/internal/lint"
)

// TestHotAlloc pins the hot-path allocation contract: direct and
// transitive allocation sites under a //lint:hot root are flagged at
// the site, struct value literals and index writes pass, and cold
// functions allocate freely.
func TestHotAlloc(t *testing.T) {
	lint.RunFixture(t, lint.HotAlloc, "hotalloc/internal/dp")
}

// TestHotAllocNoRoots: a package with no //lint:hot annotations
// anywhere produces no findings at all.
func TestHotAllocNoRoots(t *testing.T) {
	res := lint.RunFixture(t, lint.HotAlloc, "ctxprop/plain")
	if n := len(res.Active) + len(res.Allowed); n != 0 {
		t.Fatalf("hotalloc fired %d finding(s) with no hot roots", n)
	}
}
