package lint_test

import (
	"testing"

	"evvo/internal/lint"
)

// TestCtxProp pins the transitive deadline-propagation contract:
// ctx-holding request functions must not call into context-less chains
// that may block, with the drop reported at the call site. Clean
// shapes: ctx threaded all the way, done-channel conduits,
// select-with-default helpers, goroutine spawns, WaitGroup joins.
func TestCtxProp(t *testing.T) {
	lint.RunFixture(t, lint.CtxProp, "ctxprop/internal/cloud")
}

// TestCtxPropOutOfScope: the same dropping shape outside the serving
// packages is not ctxprop's business.
func TestCtxPropOutOfScope(t *testing.T) {
	res := lint.RunFixture(t, lint.CtxProp, "ctxprop/plain")
	if n := len(res.Active) + len(res.Allowed); n != 0 {
		t.Fatalf("ctxprop fired %d finding(s) outside its scope", n)
	}
}
