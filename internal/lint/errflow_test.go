package lint_test

import (
	"testing"

	"evvo/internal/lint"
)

func TestErrFlow(t *testing.T) {
	lint.RunFixture(t, lint.ErrFlow, "errflow/internal/cloud")
}

// TestErrFlowOutOfScope: bare discards outside the wire/serving packages
// are not errflow's business.
func TestErrFlowOutOfScope(t *testing.T) {
	res := lint.RunFixture(t, lint.ErrFlow, "errflow/web")
	if n := len(res.Active) + len(res.Allowed); n != 0 {
		t.Fatalf("errflow fired %d finding(s) outside its scope", n)
	}
}
