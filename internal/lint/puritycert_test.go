package lint_test

import (
	"testing"

	"evvo/internal/lint"
)

// TestPurityCert pins the certification contract on the dp-shaped
// fixture: a time.Now() two calls below a certified entrypoint is
// caught with its witness chain, required entrypoints without the
// annotation are flagged, and dynamic callbacks stay outside the
// certificate.
func TestPurityCert(t *testing.T) {
	lint.RunFixture(t, lint.PurityCert, "puritycert/dp")
}

// TestPurityCertOutOfScope: packages that are not solver packages have
// no required entrypoints, and uncertified functions there are never
// findings.
func TestPurityCertOutOfScope(t *testing.T) {
	res := lint.RunFixture(t, lint.PurityCert, "ctxprop/plain")
	if n := len(res.Active) + len(res.Allowed); n != 0 {
		t.Fatalf("puritycert fired %d finding(s) outside its scope", n)
	}
}
