package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// floatEqPackages are the numeric packages (by final import-path
// segment) where float equality is a correctness hazard: the DP's
// bit-identical parallel relaxation (PR 1) and the accumulation-order
// contract of the neural kernels (PR 2) both depend on disciplined float
// comparisons.
var floatEqPackages = map[string]bool{
	"dp":      true,
	"ev":      true,
	"queue":   true,
	"neural":  true,
	"traffic": true,
}

// FloatEq flags == and != between floating-point operands in non-test
// code of the numeric packages. Comparing floats for exact equality is
// almost always a latent bug: two mathematically equal expressions can
// differ in the last ulp depending on evaluation order. The one blessed
// idiom — comparing against a literal 0 (or a constant that folds to 0)
// used as an "unset field" sentinel, pervasive in the Config defaulting
// code — is allowed. Intentional exact comparisons (cost tie-breaks,
// +Inf sentinels) take a //lint:allow floateq pragma so the intent is
// recorded at the comparison site.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "no ==/!= on floating-point operands in the numeric packages\n\n" +
		"Allowed: comparisons against literal 0 (config-default sentinels) and sites\n" +
		"carrying a //lint:allow floateq pragma.",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) error {
	if !floatEqPackages[lastSegment(pass.PkgPath)] {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) && !isFloat(pass, be.Y) {
				return true
			}
			if isZeroConst(pass, be.X) || isZeroConst(pass, be.Y) {
				return true // blessed sentinel: comparison against zero
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison: use an epsilon, math.IsInf/IsNaN, or //lint:allow floateq with a reason",
				be.Op)
			return true
		})
	}
	return nil
}

func isFloat(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time numeric constant equal
// to zero — the allowlisted "field not set" sentinel.
func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
