// Package lint is the repo's custom static-analysis suite: a small,
// self-contained reimplementation of the golang.org/x/tools/go/analysis
// surface (Analyzer / Pass / Diagnostic) on top of the standard library
// only, because this module builds offline with no third-party deps.
//
// The analyzers mechanically enforce invariants that earlier PRs
// established by convention:
//
//   - ctxcheck: cloud request paths must use the context-aware DP entry
//     points and must not mint fresh root contexts inside handler or
//     middleware chains (PR 3's cancellation contract).
//   - unitcheck: the SI-unit identifier-suffix convention (Sec, MS, Kmh,
//     Ah, …) must not be mixed across incompatible units, and raw
//     conversion constants (3.6, 3600, 1000) belong in internal/units.
//   - floateq: no ==/!= on floating-point operands in the numeric
//     packages (bit-identical parallel relaxation, PR 1, depends on
//     disciplined float handling).
//   - atomiccounter: values captured by par.ForEach workers or go
//     statements must be mutated through sync/atomic, the metrics API, a
//     mutex, or index-addressed slots — never bare captured scalars.
//
// Four flow-aware analyzers guard the determinism and concurrency
// contract directly (DESIGN.md §14), built on the intra-procedural
// statement-graph walker in flow.go:
//
//   - detcheck: no order-dependent accumulation or serialization inside
//     map ranges (use stable.SortedKeys), no clock-seeded or global
//     math/rand sources, no wall-clock reads in pure solver packages.
//   - lockheld: no blocking calls (channels, sync waits, network I/O)
//     while a mutex may still be held, tracked flow-sensitively across
//     branches, early returns and defer-unlock.
//   - goleak: goroutines launched in request-path functions need a
//     visible join or cancellation edge.
//   - errflow: wire-boundary errors (Encode/Decode/Close/Write/Flush)
//     are handled or discarded explicitly with `_ =`, never silently.
//
// Findings can be suppressed, narrowly, with a pragma on the same line or
// the line above:
//
//	//lint:allow <analyzer> <reason>
//
// Suppressions are not silent: the runner returns them and cmd/evlint
// prints a summary so every waiver stays visible in CI logs.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass. The shape mirrors
// golang.org/x/tools/go/analysis so the suite can migrate to the real
// framework wholesale if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow pragmas. By convention it is a single lowercase word.
	Name string
	// Doc is a one-line summary followed, optionally, by a blank line and
	// a longer description.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// ShortDoc returns the first line of the analyzer's documentation.
func (a *Analyzer) ShortDoc() string {
	if i := strings.IndexByte(a.Doc, '\n'); i >= 0 {
		return a.Doc[:i]
	}
	return a.Doc
}

// A Pass provides one analyzer run with a single type-checked package and
// a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed non-test sources.
	Files []*ast.File
	// PkgPath is the package's import path. Analyzers use it (not the
	// package name) to scope themselves: fixture packages under
	// testdata/src mimic real paths by suffix.
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the whole-invocation interprocedural view (call graph +
	// function summaries, callgraph.go/summary.go), built once per Run
	// and shared by every analyzer and package. Intra-procedural
	// analyzers ignore it.
	Prog *Program
	// report receives every diagnostic, pre-suppression.
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
	// Allowed is set by the runner when a //lint:allow pragma suppressed
	// the finding; Reason carries the pragma's justification text.
	Allowed bool
	Reason  string
}

// A Result is the outcome of running a set of analyzers over a set of
// packages: active findings (fail the build) and allowed findings
// (suppressed by pragma, reported in the summary).
type Result struct {
	Fset    *token.FileSet
	Active  []Diagnostic
	Allowed []Diagnostic
}

// Run applies every analyzer to every package, applies //lint:allow
// pragmas, and returns the partitioned findings sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) (*Result, error) {
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("lint: no packages to analyze")
	}
	res := &Result{Fset: pkgs[0].Fset}
	// One interprocedural build per invocation, shared by all analyzers
	// over all packages — the graph walk and summary fixpoint are paid
	// once, not once per (package, analyzer) pair. programBuilds lets the
	// tests pin this single-build contract.
	prog := BuildProgram(pkgs)
	programBuilds++
	for _, pkg := range pkgs {
		allows := collectAllows(pkg.Fset, pkg.Syntax)
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				PkgPath:   pkg.PkgPath,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Prog:      prog,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				if reason, ok := allows.match(pkg.Fset, a.Name, d.Pos); ok {
					d.Allowed, d.Reason = true, reason
					res.Allowed = append(res.Allowed, d)
				} else {
					res.Active = append(res.Active, d)
				}
			}
		}
	}
	sortDiags(res.Fset, res.Active)
	sortDiags(res.Fset, res.Allowed)
	return res, nil
}

func sortDiags(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}

// programBuilds counts BuildProgram invocations made by Run, so tests
// can assert the one-build-per-invocation contract (ISSUE 10 satellite:
// one load + one graph build, N analyzers).
var programBuilds int

// isTestFile reports whether the file containing pos is a _test.go file.
// Analyzers use it to scope themselves to production code.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
