package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPragma is one parsed //lint:allow <analyzer> <reason> comment. It
// suppresses findings of the named analyzer on its own line and on the
// line directly below (so the pragma can sit above the offending
// statement, like a //nolint directive).
//
// A pragma without a reason is deliberately inert: waivers document WHY
// or they do not waive. The underlying finding then stays active, so a
// forgotten reason surfaces in CI instead of silently suppressing.
type allowPragma struct {
	file     string
	line     int
	analyzer string
	reason   string
}

// allowSet indexes pragmas by file for cheap position matching.
type allowSet map[string][]allowPragma

const allowPrefix = "//lint:allow"

// parseAllows parses every //lint:allow pragma in a single comment. The
// comment must START with the pragma (prose that merely mentions the
// syntax stays inert), but one comment may then carry several
// ("//lint:allow floateq r1 //lint:allow unitcheck r2"); each pragma's
// reason runs to the start of the next. Pragmas with an empty analyzer
// name or an empty reason are dropped.
func parseAllows(c *ast.Comment) []allowPragma {
	text := c.Text
	if !strings.HasPrefix(text, allowPrefix) {
		return nil
	}
	var out []allowPragma
	parts := strings.Split(text, allowPrefix)
	for _, part := range parts[1:] {
		rest := strings.TrimSpace(part)
		name, reason, _ := strings.Cut(rest, " ")
		reason = strings.TrimSpace(reason)
		if name == "" || reason == "" {
			continue
		}
		out = append(out, allowPragma{analyzer: name, reason: reason})
	}
	return out
}

// collectAllows gathers every //lint:allow pragma in the package.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pragmas := parseAllows(c)
				if len(pragmas) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, p := range pragmas {
					p.file, p.line = pos.Filename, pos.Line
					set[pos.Filename] = append(set[pos.Filename], p)
				}
			}
		}
	}
	return set
}

// match reports whether a pragma for analyzer covers pos: same line
// (trailing comment) or the line immediately above (standalone comment).
func (s allowSet) match(fset *token.FileSet, analyzer string, pos token.Pos) (string, bool) {
	p := fset.Position(pos)
	for _, a := range s[p.Filename] {
		if a.analyzer != analyzer {
			continue
		}
		if a.line == p.Line || a.line == p.Line-1 {
			return a.reason, true
		}
	}
	return "", false
}
