package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPragma is one parsed //lint:allow <analyzer> <reason> comment. It
// suppresses findings of the named analyzer on its own line and on the
// line directly below (so the pragma can sit above the offending
// statement, like a //nolint directive).
type allowPragma struct {
	file     string
	line     int
	analyzer string
	reason   string
}

// allowSet indexes pragmas by file for cheap position matching.
type allowSet map[string][]allowPragma

const allowPrefix = "//lint:allow"

// parseAllow parses a single comment into a pragma, if it is one.
func parseAllow(c *ast.Comment) (analyzer, reason string, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, allowPrefix) {
		return "", "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	name, reason, _ := strings.Cut(rest, " ")
	if name == "" {
		return "", "", false
	}
	return name, strings.TrimSpace(reason), true
}

// collectAllows gathers every //lint:allow pragma in the package.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseAllow(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				set[pos.Filename] = append(set[pos.Filename], allowPragma{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: name,
					reason:   reason,
				})
			}
		}
	}
	return set
}

// match reports whether a pragma for analyzer covers pos: same line
// (trailing comment) or the line immediately above (standalone comment).
func (s allowSet) match(fset *token.FileSet, analyzer string, pos token.Pos) (string, bool) {
	p := fset.Position(pos)
	for _, a := range s[p.Filename] {
		if a.analyzer != analyzer {
			continue
		}
		if a.line == p.Line || a.line == p.Line-1 {
			return a.reason, true
		}
	}
	return "", false
}
