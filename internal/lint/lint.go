package lint

import "strings"

// All returns the full analyzer suite in the order cmd/evlint runs it.
func All() []*Analyzer {
	return []*Analyzer{
		CtxCheck, UnitCheck, FloatEq, AtomicCounter,
		DetCheck, LockHeld, GoLeak, ErrFlow,
		PurityCert, LockOrder, CtxProp, HotAlloc,
	}
}

// ByName resolves an analyzer by its pragma/CLI name.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// pathHasSegments reports whether the slash-separated import path
// contains want ("internal/cloud", "dp", …) as a run of complete
// segments. Matching by segments, not substrings, lets fixture packages
// under testdata/src mimic real packages by path shape — e.g.
// "ctxcheck/internal/cloud/api" scopes like "evvo/internal/cloud".
func pathHasSegments(path, want string) bool {
	return strings.Contains("/"+path+"/", "/"+want+"/")
}

// lastSegment returns the final slash-separated element of path.
func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
