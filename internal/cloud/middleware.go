package cloud

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"
)

// DeadlineHeader lets a client request a shorter compute deadline than the
// server default, in milliseconds. Values above the server's configured
// maximum are capped, never honored: the deadline is the server's overload
// protection, so clients may only tighten it.
const DeadlineHeader = "X-Deadline-Ms"

// withRecover converts handler panics into structured 500s and keeps the
// process serving — one poisoned request must not take down the fleet's
// optimizer. The Faults.Panic hook fires inside the recovered scope so
// chaos tests drive this path deterministically.
func (s *Server) withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler { //nolint:errorlint // sentinel, by convention compared directly
				panic(v) // net/http's own abort protocol; let it through
			}
			s.panics.Inc()
			s.fail(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", v))
		}()
		if f := s.cfg.Faults.Panic; f != nil && f(r.URL.Path) {
			panic("injected fault: " + r.URL.Path)
		}
		next.ServeHTTP(w, r)
	})
}

// withDeadline applies the per-request compute deadline: the server
// default, tightened per request via the X-Deadline-Ms header (capped at
// MaxDeadlineSec). The deadline rides the request context all the way into
// dp.OptimizeCtx, so a slow solve is cancelled at its next stage boundary
// rather than running to completion for a client that stopped waiting.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	if s.cfg.DefaultDeadlineSec < 0 {
		return next // deadlines disabled by configuration
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.requestDeadline(r))
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// requestDeadline resolves the compute deadline for one request.
func (s *Server) requestDeadline(r *http.Request) time.Duration {
	d := secToDur(s.cfg.DefaultDeadlineSec)
	if h := r.Header.Get(DeadlineHeader); h != "" {
		if ms, err := strconv.ParseFloat(h, 64); err == nil && ms > 0 {
			d = time.Duration(ms * float64(time.Millisecond))
		}
	}
	if max := secToDur(s.cfg.MaxDeadlineSec); d > max {
		d = max
	}
	return d
}

// admit wraps a compute endpoint with admission control. MaxInFlight
// requests compute concurrently; up to MaxQueueDepth more wait briefly
// (QueueWaitSec) for a slot; everything beyond that is shed immediately
// with 429 + Retry-After. Shedding beats queueing here because every
// queued optimize pins a goroutine plus, eventually, a DP grid — under a
// stuck optimizer the old behaviour piled up a fleet's worth of both. The
// client's backoff retry (see client.go) turns the 429 into a short delay
// instead of a failure.
func (s *Server) admit(next http.Handler) http.Handler {
	if s.sem == nil {
		return next // admission control disabled by configuration
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}: // free slot, no waiting
		default:
			if s.queued.Add(1) > int64(s.cfg.MaxQueueDepth) {
				s.queued.Add(-1)
				s.shedNow(w)
				return
			}
			wait := time.NewTimer(secToDur(s.cfg.QueueWaitSec))
			select {
			case s.sem <- struct{}{}:
				wait.Stop()
				s.queued.Add(-1)
			case <-wait.C:
				s.queued.Add(-1)
				s.shedNow(w)
				return
			case <-r.Context().Done():
				wait.Stop()
				s.queued.Add(-1)
				s.shedNow(w) // client gone; response is moot but the accounting stays honest
				return
			}
		}
		defer func() { <-s.sem }()
		next.ServeHTTP(w, r)
	})
}

// shedNow rejects a request under load with 429 + Retry-After.
func (s *Server) shedNow(w http.ResponseWriter) {
	s.shed.Inc()
	s.setRetryAfter(w)
	s.fail(w, http.StatusTooManyRequests, "server saturated; retry after backoff")
}

// failRetryable reports a transient condition — compute deadline exhausted
// with every ladder rung dry, or a request abandoned mid-coalesce — as
// 503 + Retry-After so the client's retry policy classifies it correctly.
func (s *Server) failRetryable(w http.ResponseWriter, msg string) {
	s.setRetryAfter(w)
	s.fail(w, http.StatusServiceUnavailable, msg)
}

func (s *Server) setRetryAfter(w http.ResponseWriter) {
	sec := int(math.Ceil(s.cfg.RetryAfterSec))
	if sec < 1 {
		sec = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(sec))
	s.retryAfterIssued.Inc()
}

func secToDur(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}
