package cloud

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// RetryPolicy controls the client's backoff retries. The service's compute
// endpoints are pure functions of the request (idempotent), so retrying a
// POST is safe; the client still retries only *retryable* outcomes:
// connection-level errors, 429 (shed by admission control) and 503
// (transient degradation), honoring any Retry-After the server sent.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 4; 1 disables retries).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff: attempt n sleeps a
	// uniformly random duration in [0, min(MaxBackoff, BaseBackoff·2ⁿ)]
	// ("full jitter"), never less than the server's Retry-After
	// (default 100 ms).
	BaseBackoff time.Duration
	// MaxBackoff caps a single sleep (default 2 s).
	MaxBackoff time.Duration
	// Jitter optionally supplies the backoff's randomness (e.g.
	// rand.NewSource(42) for reproducible tests). Nil uses a process-wide
	// source seeded once at startup — NOT one source per client, which
	// under a fleet of clients created in the same nanosecond would
	// produce identical jitter sequences and synchronized retry storms,
	// the exact thundering herd the jitter exists to break up.
	Jitter rand.Source
}

func (p *RetryPolicy) applyDefaults() {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 2 * time.Second
	}
}

// ClientOption customizes NewClient.
type ClientOption func(*Client)

// WithRetryPolicy replaces the default retry policy.
func WithRetryPolicy(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// WithHTTPClient replaces the underlying HTTP client (e.g. for tighter
// timeouts or a custom transport).
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.http = h }
}

// WithDeadlineHint asks the server to spend at most d computing each
// request (sent as the X-Deadline-Ms header; the server caps it at its
// configured maximum). Degraded-but-fast answers come back instead of
// slow full ones — the right trade for a vehicle already in motion.
func WithDeadlineHint(d time.Duration) ClientOption {
	return func(c *Client) { c.deadlineHint = d }
}

// Client talks to a vehicular-cloud server. Safe for concurrent use.
type Client struct {
	base         string
	http         *http.Client
	retry        RetryPolicy
	deadlineHint time.Duration

	mu  sync.Mutex
	rng *rand.Rand // per-client jitter source when RetryPolicy.Jitter is set, guarded by mu; nil = shared jitterRNG
}

// NewClient returns a client for a base URL like "http://127.0.0.1:8080".
func NewClient(baseURL string, opts ...ClientOption) (*Client, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("cloud: empty base URL")
	}
	c := &Client{
		base: baseURL,
		http: &http.Client{Timeout: 30 * time.Second},
	}
	for _, opt := range opts {
		opt(c)
	}
	c.retry.applyDefaults()
	if c.retry.Jitter != nil {
		c.rng = rand.New(c.retry.Jitter)
	}
	return c, nil
}

// jitterRNG is the process-wide backoff jitter source shared by clients
// that did not supply RetryPolicy.Jitter. Seeded once, so every client
// draws from one stream instead of each re-seeding from the clock.
var (
	jitterMu sync.Mutex
	//lint:allow detcheck retry jitter is deliberately nondeterministic: one process-wide clock-seeded stream desynchronizes client backoff without per-call re-seeding
	jitterRNG = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// APIError is a non-2xx response from the cloud.
type APIError struct {
	Status int
	Msg    string
	// RetryAfter is the server's Retry-After hint (0 when absent).
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("cloud: HTTP %d: %s", e.Status, e.Msg)
}

// retryableStatus reports whether a status code may be retried: 429 is
// admission-control shedding, 503 a transient failure (both arrive with
// Retry-After), and 502/504 surface from a forwarding hop whose upstream
// peer is dying or partitioned — the next attempt may be routed around
// it. Anything else (400s, 422, 500) would fail identically on retry.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff returns the sleep before attempt n (0-based), full jitter,
// floored at the server's Retry-After hint.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	ceil := c.retry.BaseBackoff << attempt
	if ceil > c.retry.MaxBackoff || ceil <= 0 {
		ceil = c.retry.MaxBackoff
	}
	var d time.Duration
	if c.rng != nil {
		c.mu.Lock()
		d = time.Duration(c.rng.Int63n(int64(ceil) + 1))
		c.mu.Unlock()
	} else {
		jitterMu.Lock()
		d = time.Duration(jitterRNG.Int63n(int64(ceil) + 1))
		jitterMu.Unlock()
	}
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// do performs one HTTP exchange with retries and decodes a 200 into out.
// body == nil issues a GET, otherwise a POST of the JSON body.
func (c *Client) do(ctx context.Context, path string, body []byte, out any) error {
	return c.doHeaders(ctx, path, body, nil, out)
}

// doHeaders is do with extra request headers, used by cluster forwarding
// to carry the X-Forwarded-By loop-guard chain.
func (c *Client) doHeaders(ctx context.Context, path string, body []byte, extra http.Header, out any) error {
	var lastErr error
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			var retryAfter time.Duration
			var apiErr *APIError
			if errors.As(lastErr, &apiErr) {
				retryAfter = apiErr.RetryAfter
			}
			t := time.NewTimer(c.backoff(attempt-1, retryAfter))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("cloud: %s: %w (last attempt: %w)", path, ctx.Err(), lastErr)
			}
		}
		method, reader := http.MethodGet, io.Reader(nil)
		if body != nil {
			method, reader = http.MethodPost, bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, reader)
		if err != nil {
			return fmt.Errorf("cloud: building request: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.deadlineHint > 0 {
			req.Header.Set(DeadlineHeader, strconv.FormatInt(c.deadlineHint.Milliseconds(), 10))
		}
		for k, vs := range extra {
			req.Header[k] = vs
		}
		resp, err := c.http.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("cloud: %s call: %w", path, err)
			}
			// Connection-level failure (refused, reset, timeout): the
			// request never completed server-side work we could observe,
			// and the endpoints are idempotent — retry.
			lastErr = fmt.Errorf("cloud: %s call: %w", path, err)
			continue
		}
		if resp.StatusCode == http.StatusOK {
			err := json.NewDecoder(resp.Body).Decode(out)
			_ = resp.Body.Close() // decode already consumed the stream's error
			if err != nil {
				return fmt.Errorf("cloud: decoding %s response: %w", path, err)
			}
			return nil
		}
		apiErr := decodeAPIError(resp)
		_ = resp.Body.Close() // decodeAPIError already drained the body
		if !retryableStatus(resp.StatusCode) {
			return apiErr
		}
		lastErr = apiErr
	}
	return lastErr
}

// Optimize requests an optimal velocity profile.
func (c *Client) Optimize(ctx context.Context, req Request) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cloud: encoding request: %w", err)
	}
	var out Response
	if err := c.do(ctx, "/v1/optimize", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Advise asks the service when to depart within a window.
func (c *Client) Advise(ctx context.Context, req AdviseRequest) (*AdviseResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cloud: encoding advise request: %w", err)
	}
	var out AdviseResponse
	if err := c.do(ctx, "/v1/advise", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// OptimizeBatch submits a fleet's worth of requests in one call. Item
// failures come back per item in BatchResponse.Results; only transport
// and whole-batch failures surface as an error.
func (c *Client) OptimizeBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cloud: encoding batch request: %w", err)
	}
	var out BatchResponse
	if err := c.do(ctx, "/v1/optimize/batch", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks service liveness.
func (c *Client) Health(ctx context.Context) error {
	var out map[string]string
	return c.do(ctx, "/v1/health", nil, &out)
}

// Routes lists registered route names.
func (c *Client) Routes(ctx context.Context) ([]string, error) {
	var out struct {
		Routes []string `json:"routes"`
	}
	if err := c.do(ctx, "/v1/routes", nil, &out); err != nil {
		return nil, err
	}
	return out.Routes, nil
}

// Stats fetches service counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	if err := c.do(ctx, "/v1/stats", nil, &out); err != nil {
		return Stats{}, err
	}
	return out, nil
}

func decodeAPIError(resp *http.Response) *APIError {
	var retryAfter time.Duration
	if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
		retryAfter = time.Duration(sec) * time.Second
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return &APIError{Status: resp.StatusCode, Msg: e.Error, RetryAfter: retryAfter}
	}
	return &APIError{Status: resp.StatusCode, Msg: string(body), RetryAfter: retryAfter}
}
