package cloud

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client talks to a vehicular-cloud server. Safe for concurrent use.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for a base URL like "http://127.0.0.1:8080".
func NewClient(baseURL string) (*Client, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("cloud: empty base URL")
	}
	return &Client{
		base: baseURL,
		http: &http.Client{Timeout: 30 * time.Second},
	}, nil
}

// APIError is a non-2xx response from the cloud.
type APIError struct {
	Status int
	Msg    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("cloud: HTTP %d: %s", e.Status, e.Msg)
}

// Optimize requests an optimal velocity profile.
func (c *Client) Optimize(ctx context.Context, req Request) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cloud: encoding request: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/optimize", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cloud: building request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("cloud: optimize call: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("cloud: decoding response: %w", err)
	}
	return &out, nil
}

// Advise asks the service when to depart within a window.
func (c *Client) Advise(ctx context.Context, req AdviseRequest) (*AdviseResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cloud: encoding advise request: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/advise", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cloud: building advise request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("cloud: advise call: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	var out AdviseResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("cloud: decoding advise response: %w", err)
	}
	return &out, nil
}

// Health checks service liveness.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/health", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("cloud: health call: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	return nil
}

// Routes lists registered route names.
func (c *Client) Routes(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/routes", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cloud: routes call: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	var out struct {
		Routes []string `json:"routes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("cloud: decoding routes: %w", err)
	}
	return out.Routes, nil
}

// Stats fetches service counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
	if err != nil {
		return Stats{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return Stats{}, fmt.Errorf("cloud: stats call: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Stats{}, decodeAPIError(resp)
	}
	var out Stats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return Stats{}, fmt.Errorf("cloud: decoding stats: %w", err)
	}
	return out, nil
}

func decodeAPIError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return &APIError{Status: resp.StatusCode, Msg: e.Error}
	}
	return &APIError{Status: resp.StatusCode, Msg: string(body)}
}
