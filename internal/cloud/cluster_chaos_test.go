package cloud

// Cluster chaos tests: boot a real multi-node cluster in-process (each
// member behind its own httptest listener), then kill nodes, partition
// links and trip breakers while load is in flight. The robustness contract
// under test (DESIGN.md §13): every request that reaches a live node
// returns the exact plan — peer failures cost latency and duplicated
// compute, never correctness — and every failover is observable in
// /v1/stats. All of these run under -race via `make chaos-cluster`.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// clusterPeerFaults is a per-node switchboard for the peer-level fault
// hooks, flippable mid-flight.
type clusterPeerFaults struct {
	dropTo  atomic.Value // string: peer ID whose outbound exchanges fail ("" = none)
	delayMS atomic.Int64 // delay on every outbound exchange
}

func (f *clusterPeerFaults) faults() Faults {
	return Faults{
		PeerDrop: func(to string) bool {
			s, _ := f.dropTo.Load().(string)
			return s != "" && s == to
		},
		PeerDelay: func(string) time.Duration {
			return time.Duration(f.delayMS.Load()) * time.Millisecond
		},
	}
}

// clusterTestNode is one member of an in-process test cluster.
type clusterTestNode struct {
	id     string
	srv    *Server
	ts     *httptest.Server
	c      *Client
	faults *clusterPeerFaults
}

// lazyClusterHandler lets the httptest listener (and its URL) exist before
// the cloud.Server behind it: members need every peer's base URL at
// construction time. Until the handler lands it answers 503.
type lazyClusterHandler struct{ v atomic.Value }

func (l *lazyClusterHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := l.v.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "starting", http.StatusServiceUnavailable)
}

// startChaosCluster boots n members with fast failure-detector timings
// (heartbeat 100 ms, suspect 500 ms, dead 1 s — quick enough for the
// convergence polls below, loose enough that race-detector and parallel
// test-package load cannot stall a probe into a false "dead" grading and a
// spurious takeover), warms us25 on its owner, and blocks until every
// member reports ready.
func startChaosCluster(t *testing.T, n int) []*clusterTestNode {
	t.Helper()
	lazies := make([]*lazyClusterHandler, n)
	nodes := make([]*clusterTestNode, n)
	id := func(i int) string { return fmt.Sprintf("chaos-%d", i+1) }
	for i := range lazies {
		lazies[i] = &lazyClusterHandler{}
		nodes[i] = &clusterTestNode{id: id(i), ts: httptest.NewServer(lazies[i])}
		t.Cleanup(nodes[i].ts.Close)
	}
	for i := range nodes {
		peers := make(map[string]string, n-1)
		for j := range nodes {
			if j != i {
				peers[id(j)] = nodes[j].ts.URL
			}
		}
		f := &clusterPeerFaults{}
		f.dropTo.Store("")
		srv, err := NewServer(ServerConfig{
			DPTemplate:    coarseDP(),
			MaxInFlight:   32,
			SegmentTables: true,
			Faults:        f.faults(),
			Cluster: &ClusterConfig{
				NodeID:          id(i),
				Peers:           peers,
				HeartbeatSec:    0.1,
				SuspectAfterSec: 0.5,
				DeadAfterSec:    1,
				WarmRoutes:      []string{"us25"},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i].srv, nodes[i].faults = srv, f
		t.Cleanup(srv.Close)
		lazies[i].v.Store(srv.Handler())
		c, err := NewClient(nodes[i].ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i].c = c
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, nd := range nodes {
		for {
			resp, err := http.Get(nd.ts.URL + "/v1/ready")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never became ready", nd.id)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return nodes
}

// clusterRoles waits for warm-up and replication to settle and returns the
// us25 owner (the one member that built tables) and, for 3-node clusters,
// the replica holder and the cold member.
func clusterRoles(t *testing.T, nodes []*clusterTestNode) (owner, replica, cold int) {
	t.Helper()
	ctx := context.Background()
	owner, replica, cold = -1, -1, -1
	deadline := time.Now().Add(10 * time.Second)
	for {
		owner, replica = -1, -1
		for i, nd := range nodes {
			st, err := nd.c.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.DPSegmentSolves > 0 {
				if owner >= 0 {
					t.Fatalf("both %s and %s built tables; sharding broken", nodes[owner].id, nd.id)
				}
				owner = i
			}
			if st.Cluster != nil && st.Cluster.ReplicasReceived > 0 {
				replica = i
			}
		}
		if owner >= 0 && (replica >= 0 || len(nodes) < 2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("warm-up did not settle: owner %d, replica %d", owner, replica)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := range nodes {
		if i != owner && i != replica {
			cold = i
		}
	}
	return owner, replica, cold
}

// parityRef is a standalone segment-table server: the cluster must serve
// bit-identical plans (imported tables round-trip exactly; local rebuilds
// run the same build).
func parityRef(t *testing.T) *Client {
	t.Helper()
	_, _, ref := newFleetServer(t, ServerConfig{})
	return ref
}

func assertParity(t *testing.T, ref *Client, got *Response, req Request) {
	t.Helper()
	want, err := ref.Optimize(context.Background(), req)
	if err != nil {
		t.Fatalf("reference solve for %+v: %v", req, err)
	}
	if got.ChargeAh != want.ChargeAh || got.TripSec != want.TripSec || got.Penalized != want.Penalized {
		t.Fatalf("plan for %+v diverged: cluster %.9f Ah %.3f s (penalized %v), reference %.9f Ah %.3f s (penalized %v)",
			req, got.ChargeAh, got.TripSec, got.Penalized, want.ChargeAh, want.TripSec, want.Penalized)
	}
}

// TestClusterEveryMemberServesWithParity: healthy cluster, requests at all
// three members, every answer exact and stamped with the serving node;
// exactly one member paid the DP build and the others got the tables over
// the wire (replica push or fetch) or by forwarding.
func TestClusterEveryMemberServesWithParity(t *testing.T) {
	nodes := startChaosCluster(t, 3)
	ref := parityRef(t)
	ownerIdx, _, _ := clusterRoles(t, nodes)
	ctx := context.Background()

	for i, nd := range nodes {
		req := Request{Route: "us25", DepartTime: float64(20 * i)}
		resp, err := nd.c.Optimize(ctx, req)
		if err != nil {
			t.Fatalf("node %s: %v", nd.id, err)
		}
		if resp.ServedBy == "" {
			t.Fatalf("node %s response not stamped with the serving node", nd.id)
		}
		assertParity(t, ref, resp, req)
	}
	var shared int64
	for i, nd := range nodes {
		st, err := nd.c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if i != ownerIdx && st.DPSegmentSolves > 0 {
			t.Fatalf("non-owner %s ran %d segment solves in a healthy cluster", nd.id, st.DPSegmentSolves)
		}
		shared += st.Cluster.TableFetches + st.Cluster.ReplicasReceived + st.Cluster.Forwards
	}
	if shared == 0 {
		t.Fatal("no table fetches, replicas or forwards: members are not sharing the owner's build")
	}
}

// TestClusterChaosNodeKillMidLoad: the owner dies mid-load. Requests that
// land on the survivors — including in the stale-ring window before the
// failure detector notices — must all return the exact plan, the failover
// must show up in the survivors' counters, and both survivors must
// eventually grade the dead member dead.
func TestClusterChaosNodeKillMidLoad(t *testing.T) {
	nodes := startChaosCluster(t, 3)
	ref := parityRef(t)
	ownerIdx, _, _ := clusterRoles(t, nodes)
	ctx := context.Background()
	depart := 0.0
	next := func() Request {
		depart += 20
		return Request{Route: "us25", DepartTime: depart}
	}

	// Healthy warm-up traffic through every member.
	for _, nd := range nodes {
		req := next()
		resp, err := nd.c.Optimize(ctx, req)
		if err != nil {
			t.Fatalf("pre-kill request via %s: %v", nd.id, err)
		}
		assertParity(t, ref, resp, req)
	}

	// Kill the owner: listener first (connections start failing), then the
	// server (its cluster runtime stops).
	nodes[ownerIdx].ts.Close()
	nodes[ownerIdx].srv.Close()
	survivors := make([]*clusterTestNode, 0, 2)
	for i, nd := range nodes {
		if i != ownerIdx {
			survivors = append(survivors, nd)
		}
	}

	// Stale-ring window: the survivors still believe the owner is alive.
	// Their forwards and fetches to it fail; every request must still
	// come back exact via replica, local rebuild or local serve.
	for round := 0; round < 3; round++ {
		for _, nd := range survivors {
			req := next()
			resp, err := nd.c.Optimize(ctx, req)
			if err != nil {
				t.Fatalf("request via %s after owner death: %v", nd.id, err)
			}
			assertParity(t, ref, resp, req)
		}
	}

	// Both survivors converge on the owner being dead.
	deadline := time.Now().Add(10 * time.Second)
	for _, nd := range survivors {
		for {
			st, err := nd.c.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.Cluster.PeersDead == 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never graded the killed owner dead: %+v", nd.id, st.Cluster)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Post-detection traffic: still exact, now without the dead member in
	// the serving path.
	for _, nd := range survivors {
		req := next()
		resp, err := nd.c.Optimize(ctx, req)
		if err != nil {
			t.Fatalf("post-detection request via %s: %v", nd.id, err)
		}
		assertParity(t, ref, resp, req)
	}

	// The failover must be observable, not silent.
	var failoverSignals int64
	for _, nd := range survivors {
		st, err := nd.c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		cl := st.Cluster
		failoverSignals += cl.ForwardFails + cl.TableFetchFails + cl.PeerFallbacks +
			cl.Takeovers + cl.BreakerFastFails + cl.BreakerOpens
	}
	if failoverSignals == 0 {
		t.Fatal("owner died under load but no survivor recorded any failover counter")
	}
}

// TestClusterChaosAsymmetricPartition: the cold member loses its outbound
// link to the owner (sends dropped; the reverse direction stays up).
// Its requests must still return the exact plan via the replica holder or
// a local rebuild, the broken link must register in its counters, and its
// detector must eventually grade the unreachable owner dead — while the
// owner itself keeps serving untouched.
func TestClusterChaosAsymmetricPartition(t *testing.T) {
	nodes := startChaosCluster(t, 3)
	ref := parityRef(t)
	ownerIdx, _, coldIdx := clusterRoles(t, nodes)
	ctx := context.Background()
	cold, owner := nodes[coldIdx], nodes[ownerIdx]

	cold.faults.dropTo.Store(owner.id)

	for i := 0; i < 4; i++ {
		req := Request{Route: "us25", DepartTime: float64(20*i + 10)}
		resp, err := cold.c.Optimize(ctx, req)
		if err != nil {
			t.Fatalf("partitioned node request %d: %v", i, err)
		}
		assertParity(t, ref, resp, req)
	}
	st, err := cold.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n := st.Cluster.ForwardFails + st.Cluster.BreakerFastFails; n == 0 {
		t.Fatalf("partition left no trace in the cold member's forward counters: %+v", st.Cluster)
	}
	if n := st.Cluster.TableFetches + st.Cluster.PeerFallbacks; n == 0 {
		t.Fatalf("cold member served without fetching from a replica or rebuilding: %+v", st.Cluster)
	}

	// The intact direction keeps working: the owner serves as before and
	// still sees the partitioned node's heartbeats.
	req := Request{Route: "us25", DepartTime: 130}
	resp, err := owner.c.Optimize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, ref, resp, req)

	// The partitioned node's one-sided view converges to owner-dead.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := cold.c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Cluster.PeersDead == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cold member never graded the unreachable owner dead: %+v", st.Cluster)
		}
		time.Sleep(20 * time.Millisecond)
	}
	ost, err := owner.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ost.Cluster.PeersDead != 0 {
		t.Fatalf("owner's inbound link is intact but it graded a peer dead: %+v", ost.Cluster)
	}
}

// TestClusterBreakerShortCircuitsPeer: with the cold member's breaker for
// the owner already open, a request must not wait on doomed exchanges —
// the breaker fast-fails the forward and the owner-fetch, and the replica
// holder supplies the tables. White-box: the breaker is tripped directly.
func TestClusterBreakerShortCircuitsPeer(t *testing.T) {
	nodes := startChaosCluster(t, 3)
	ref := parityRef(t)
	ownerIdx, _, coldIdx := clusterRoles(t, nodes)
	cold, owner := nodes[coldIdx], nodes[ownerIdx]

	link := cold.srv.peers.peers[owner.id]
	for i := 0; i < 3; i++ {
		link.breaker.Failure(time.Now())
	}

	req := Request{Route: "us25", DepartTime: 50}
	resp, err := cold.c.Optimize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, ref, resp, req)
	st, err := cold.c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster.BreakerFastFails == 0 {
		t.Fatalf("open breaker did not fast-fail any exchange: %+v", st.Cluster)
	}
	if st.Cluster.BreakerOpens == 0 {
		t.Fatalf("breaker open not reported in stats: %+v", st.Cluster)
	}
}

// TestClusterForwardLoopGuard: a request whose X-Forwarded-By chain
// already contains the receiving node must be served locally — a stale
// ownership view elsewhere must never make a request orbit the ring.
func TestClusterForwardLoopGuard(t *testing.T) {
	nodes := startChaosCluster(t, 3)
	ref := parityRef(t)
	ownerIdx, _, coldIdx := clusterRoles(t, nodes)
	cold := nodes[coldIdx]
	ctx := context.Background()

	post := func(chain string, depart float64) *Response {
		t.Helper()
		body, err := json.Marshal(Request{Route: "us25", DepartTime: depart})
		if err != nil {
			t.Fatal(err)
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, cold.ts.URL+"/v1/optimize", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set(ForwardedByHeader, chain)
		hresp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		defer hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK {
			t.Fatalf("forwarded request with chain %q: HTTP %d", chain, hresp.StatusCode)
		}
		var out Response
		if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return &out
	}

	// Self already in the chain: the cold node is not the owner, but it
	// must serve rather than forward again.
	resp := post(cold.id, 70)
	if resp.ServedBy != cold.id {
		t.Fatalf("looped request served by %q, want local serve by %q", resp.ServedBy, cold.id)
	}
	assertParity(t, ref, resp, Request{Route: "us25", DepartTime: 70})

	// Chain as long as the membership: every member has touched it.
	chain := nodes[ownerIdx].id + ",ghost-a,ghost-b"
	resp = post(chain, 90)
	if resp.ServedBy != cold.id {
		t.Fatalf("exhausted chain served by %q, want local serve by %q", resp.ServedBy, cold.id)
	}
	assertParity(t, ref, resp, Request{Route: "us25", DepartTime: 90})

	st, err := cold.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster.ForwardedIn < 2 {
		t.Fatalf("forwardedIn = %d, want both chained requests counted", st.Cluster.ForwardedIn)
	}
}

// TestClusterReadyJoiningWindow: a cluster node answers /v1/ready with 503
// while its first heartbeat sweep is still in flight ("joining"), then
// flips to 200; /v1/health is 200 the whole time (liveness != readiness).
func TestClusterReadyJoiningWindow(t *testing.T) {
	f := &clusterPeerFaults{}
	f.dropTo.Store("")
	f.delayMS.Store(10_000) // every probe burns its full one-interval timeout
	srv, err := NewServer(ServerConfig{
		DPTemplate:    coarseDP(),
		MaxInFlight:   8,
		SegmentTables: true,
		Faults:        f.faults(),
		Cluster: &ClusterConfig{
			NodeID:       "joiner",
			Peers:        map[string]string{"phantom": "http://127.0.0.1:1"},
			HeartbeatSec: 0.3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/v1/ready"); got != http.StatusServiceUnavailable {
		t.Fatalf("/v1/ready = %d during the joining window, want 503", got)
	}
	if got := status("/v1/health"); got != http.StatusOK {
		t.Fatalf("/v1/health = %d during the joining window, want 200", got)
	}
	deadline := time.Now().Add(10 * time.Second)
	for status("/v1/ready") != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("node never left the joining state")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
