package cloud

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"evvo/internal/dp"
)

// TestCacheKeyFloorBucketing pins the floor semantics of depart-time
// bucketing: truncation toward zero would fold the buckets on either side
// of t = 0 into one key.
func TestCacheKeyFloorBucketing(t *testing.T) {
	s, err := NewServer(ServerConfig{DPTemplate: coarseDP(), CacheDepartBucketSec: 5})
	if err != nil {
		t.Fatal(err)
	}
	key := func(depart float64) string {
		return s.cacheKey(Request{Route: "us25", Variant: VariantQueueAware, DepartTime: depart})
	}
	if key(2.5) == key(-2.5) {
		t.Fatalf("buckets either side of zero collide: %q", key(2.5))
	}
	if key(-2.5) != key(-0.1) {
		t.Fatalf("bucket [-5, 0) split: %q vs %q", key(-2.5), key(-0.1))
	}
	if key(0) != key(4.9) || key(0) == key(5) {
		t.Fatalf("bucket [0, 5) wrong: %q %q %q", key(0), key(4.9), key(5))
	}
}

// TestOptimizeCoalescesConcurrentRequests checks that N identical
// concurrent optimize requests run the DP solver exactly once: one leader
// computes, the rest wait on the in-flight call and report Cached.
func TestOptimizeCoalescesConcurrentRequests(t *testing.T) {
	var calls int64
	release := make(chan struct{})
	old := optimizeDP
	optimizeDP = func(ctx context.Context, cfg dp.Config) (*dp.Result, error) {
		atomic.AddInt64(&calls, 1)
		<-release // hold the leader until every follower has arrived
		return old(ctx, cfg)
	}
	defer func() { optimizeDP = old }()

	// Admission headroom for all 8 concurrent requests: this test is about
	// coalescing, not shedding (one box can have MaxInFlight default to 2).
	s, err := NewServer(ServerConfig{DPTemplate: coarseDP(), MaxInFlight: 16})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(Request{Route: "us25", DepartTime: 12})
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	started := make(chan struct{}, n)
	responses := make([]Response, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			rec := httptest.NewRecorder()
			req := httptest.NewRequest("POST", "/v1/optimize", bytes.NewReader(body))
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
				return
			}
			errs[i] = json.Unmarshal(rec.Body.Bytes(), &responses[i])
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Fatalf("dp.Optimize ran %d times, want 1", got)
	}
	fresh := 0
	for i := range responses {
		if !responses[i].Cached {
			fresh++
		}
		if responses[i].TripSec != responses[0].TripSec ||
			responses[i].ChargeAh != responses[0].ChargeAh {
			t.Fatalf("response %d differs from leader", i)
		}
	}
	if fresh != 1 {
		t.Fatalf("%d responses claim a fresh computation, want 1", fresh)
	}
}
