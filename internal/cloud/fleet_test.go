package cloud

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"evvo/internal/dp"
	"evvo/internal/ev"
	"evvo/internal/queue"
	"evvo/internal/road"
)

// newFleetServer is newTestServer with segment tables enabled — the
// fleet-serving configuration under test in this file.
func newFleetServer(t *testing.T, cfg ServerConfig) (*Server, *httptest.Server, *Client) {
	t.Helper()
	if cfg.DPTemplate.DsM == 0 {
		cfg.DPTemplate = coarseDP()
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 32
	}
	cfg.SegmentTables = true
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return s, ts, c
}

// TestNegativeConfigRejected pins the validation bugfix: a negative
// MaxCacheEntries used to slip through and silently degrade the cache to a
// single entry via the eviction test.
func TestNegativeConfigRejected(t *testing.T) {
	if _, err := NewServer(ServerConfig{MaxCacheEntries: -1}); err == nil {
		t.Fatal("negative MaxCacheEntries accepted")
	}
	if _, err := NewServer(ServerConfig{MaxBatchSize: -1}); err == nil {
		t.Fatal("negative MaxBatchSize accepted")
	}
}

// TestAdviseDeparturesOnGrid pins the float-drift bugfix: candidates must
// sit exactly on earliest + i·step, which accumulation (depart += step)
// misses once the step has no exact binary representation.
func TestAdviseDeparturesOnGrid(t *testing.T) {
	_, ts, _ := newTestServer(t)
	// 0.1 is inexact in binary; 31 accumulations drift visibly. All
	// candidates share a departure bucket, so one DP solve serves the sweep.
	resp, cleanup := postJSON(t, ts.URL+"/v1/advise",
		`{"route":"us25","earliestDepart":0,"latestDepart":3,"stepSec":0.1}`)
	defer cleanup()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out AdviseResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Options) != 31 {
		t.Fatalf("options = %d, want 31", len(out.Options))
	}
	for i, o := range out.Options {
		want := float64(i) * 0.1
		if o.DepartTime != want {
			t.Fatalf("option %d departs at %.17g, want exactly %.17g", i, o.DepartTime, want)
		}
	}
}

// TestAdviseCandidateBoundary pins the off-by-one bugfix: the documented
// limit is 64 candidates, so a window of exactly 63 steps (64 candidates)
// must pass and 64 steps (65 candidates) must be rejected.
func TestAdviseCandidateBoundary(t *testing.T) {
	_, ts, _ := newTestServer(t)
	// Sub-bucket steps keep this to one DP solve + 63 cache hits.
	ok, cleanup := postJSON(t, ts.URL+"/v1/advise",
		`{"route":"us25","earliestDepart":0,"latestDepart":0.63,"stepSec":0.01}`)
	defer cleanup()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("64 candidates rejected: status %d", ok.StatusCode)
	}
	var out AdviseResponse
	if err := json.NewDecoder(ok.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Options) != maxAdviseCandidates {
		t.Fatalf("options = %d, want %d", len(out.Options), maxAdviseCandidates)
	}
	bad, cleanup2 := postJSON(t, ts.URL+"/v1/advise",
		`{"route":"us25","earliestDepart":0,"latestDepart":0.64,"stepSec":0.01}`)
	defer cleanup2()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("65 candidates accepted: status %d", bad.StatusCode)
	}
}

// TestAdviseWarmsCache pins the cache-bypass bugfix: advise candidates now
// run through the cached/coalesced optimize path, so a repeated sweep is
// served from cache instead of re-running every DP.
func TestAdviseWarmsCache(t *testing.T) {
	s, ts, _ := newTestServer(t)
	body := `{"route":"us25","earliestDepart":0,"latestDepart":40,"stepSec":20}`
	first, cleanup := postJSON(t, ts.URL+"/v1/advise", body)
	cleanup()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("status %d", first.StatusCode)
	}
	before := s.cacheHits.Value()
	second, cleanup2 := postJSON(t, ts.URL+"/v1/advise", body)
	cleanup2()
	if second.StatusCode != http.StatusOK {
		t.Fatalf("status %d", second.StatusCode)
	}
	hits := s.cacheHits.Value() - before
	if hits < 3 {
		t.Fatalf("repeat sweep hit the cache %d times, want all 3 candidates", hits)
	}
}

// TestAdviseMatchesSweepDepartures: the HTTP advise path must agree with
// the library path (dp.SweepDeparturesCtx + dp.BestDeparture) on the same
// grid — same candidates, same numbers, same recommendation.
func TestAdviseMatchesSweepDepartures(t *testing.T) {
	_, _, c := newTestServer(t)
	const from, to, step, rate = 0.0, 40.0, 20.0, 153.0
	got, err := c.Advise(context.Background(), AdviseRequest{
		Route: "us25", EarliestDepart: from, LatestDepart: to, StepSec: step,
		ArrivalRateVehPerHour: rate,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The server's us25 instance and road.US25() are geometrically
	// identical, so the library-side sweep reproduces the served numbers.
	cfg := coarseDP()
	cfg.Route, cfg.Vehicle = road.US25(), ev.SparkEV()
	wf, err := dp.QueueAwareWindows(queue.US25Params(),
		dp.ConstantArrivalRate(queue.VehPerHour(rate)), from, to+cfg.MaxTripSec+120)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Windows = wf
	opts, err := dp.SweepDeparturesCtx(context.Background(), cfg, from, to, step)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Options) != len(opts) {
		t.Fatalf("advise %d options, sweep %d", len(got.Options), len(opts))
	}
	for i, o := range opts {
		a := got.Options[i]
		if a.DepartTime != o.DepartTime ||
			math.Abs(a.ChargeAh-o.Result.ChargeAh) > 1e-9 ||
			math.Abs(a.TripSec-o.Result.TripSec) > 1e-9 ||
			a.Penalized != o.Result.Penalized {
			t.Fatalf("candidate %d: advise %+v vs sweep depart %.0f charge %.6f trip %.1f penalized %v",
				i, a, o.DepartTime, o.Result.ChargeAh, o.Result.TripSec, o.Result.Penalized)
		}
	}
	best, err := dp.BestDeparture(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Best.DepartTime != best.DepartTime {
		t.Fatalf("advise recommends %.0f s, BestDeparture %.0f s", got.Best.DepartTime, best.DepartTime)
	}
}

// TestSegmentTablesParity: with segment tables enabled the served numbers
// must match the monolithic server within the stitch tolerance.
func TestSegmentTablesParity(t *testing.T) {
	_, _, mono := newTestServer(t)
	_, _, seg := newFleetServer(t, ServerConfig{})
	for _, req := range []Request{
		{Route: "us25", DepartTime: 40},
		{Route: "us25", DepartTime: 95, ArrivalRateVehPerHour: 153},
		{Route: "us25", DepartTime: 40, Variant: VariantGreen},
		{Route: "us25", DepartTime: 40, Variant: VariantUnconstrained},
	} {
		m, err := mono.Optimize(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		g, err := seg.Optimize(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.ChargeAh-g.ChargeAh) > 0.01 || m.Penalized != g.Penalized {
			t.Fatalf("%+v: monolithic %.6f Ah (penalized %v), stitched %.6f Ah (penalized %v)",
				req, m.ChargeAh, m.Penalized, g.ChargeAh, g.Penalized)
		}
	}
}

// TestSegmentTablesReuseFactor is the fleet acceptance gate: at fleet
// request counts the DP work must shrink by at least 5× versus
// per-request full solves — the whole point of segment-level reuse.
func TestSegmentTablesReuseFactor(t *testing.T) {
	_, _, c := newFleetServer(t, ServerConfig{})
	const fleet = 60
	breq := BatchRequest{}
	for i := 0; i < fleet; i++ {
		// Distinct departure buckets (5 s default) so nothing cache-hits:
		// every item demands its own solve, as a real fleet's spread does.
		breq.Requests = append(breq.Requests, Request{Route: "us25", DepartTime: float64(5 * i)})
	}
	out, err := c.OptimizeBatch(context.Background(), breq)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != fleet {
		t.Fatalf("results = %d, want %d", len(out.Results), fleet)
	}
	for i, r := range out.Results {
		if r.Error != "" || r.Response == nil {
			t.Fatalf("item %d failed: %q", i, r.Error)
		}
	}
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.BatchItems != fleet {
		t.Fatalf("batchItems = %d, want %d", stats.BatchItems, fleet)
	}
	if stats.StitchedServes == 0 {
		t.Fatal("no stitched serves recorded")
	}
	solves := stats.DPFullSolves + stats.DPSegmentSolves
	if solves*5 > fleet {
		t.Fatalf("reuse factor too low: %d solves (%d full + %d segment) for %d requests",
			solves, stats.DPFullSolves, stats.DPSegmentSolves, fleet)
	}
	if stats.LatencyMs.Count == 0 || stats.LatencyMs.P99 < stats.LatencyMs.P50 {
		t.Fatalf("latency histogram not wired: %+v", stats.LatencyMs)
	}
}

// TestBatchValidation covers the batch endpoint's edges: empty and
// oversized batches are rejected whole; per-item failures are reported in
// place without voiding the other items.
func TestBatchValidation(t *testing.T) {
	_, ts, _ := newFleetServer(t, ServerConfig{MaxBatchSize: 4})
	empty, cleanup := postJSON(t, ts.URL+"/v1/optimize/batch", `{"requests":[]}`)
	defer cleanup()
	if empty.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", empty.StatusCode)
	}
	var items []string
	for i := 0; i < 5; i++ {
		items = append(items, `{"route":"us25","departTime":40}`)
	}
	over, cleanup2 := postJSON(t, ts.URL+"/v1/optimize/batch",
		fmt.Sprintf(`{"requests":[%s]}`, strings.Join(items, ",")))
	defer cleanup2()
	if over.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d", over.StatusCode)
	}

	mixed, cleanup3 := postJSON(t, ts.URL+"/v1/optimize/batch",
		`{"requests":[{"route":"us25","departTime":40},{"route":"nowhere"},{"route":"us25","departTime":-1}]}`)
	defer cleanup3()
	if mixed.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch: status %d", mixed.StatusCode)
	}
	var out BatchResponse
	if err := json.NewDecoder(mixed.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("results = %d", len(out.Results))
	}
	if out.Results[0].Response == nil || out.Results[0].Error != "" {
		t.Fatalf("good item failed: %+v", out.Results[0])
	}
	if out.Results[1].Error == "" || out.Results[2].Error == "" {
		t.Fatalf("bad items passed: %+v, %+v", out.Results[1], out.Results[2])
	}
}
