package cloud

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryJitterSeededDeterministic: RetryPolicy.Jitter makes the backoff
// sequence reproducible — two clients with the same seed draw identical
// sleeps, a differently seeded client draws a different sequence, and an
// unseeded client leaves c.rng nil (it shares the process-wide source
// instead of re-seeding per client).
func TestRetryJitterSeededDeterministic(t *testing.T) {
	mk := func(seed int64) *Client {
		c, err := NewClient("http://127.0.0.1:1", WithRetryPolicy(RetryPolicy{
			Jitter: rand.NewSource(seed),
		}))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b, other := mk(42), mk(42), mk(43)
	differs := false
	for attempt := 0; attempt < 8; attempt++ {
		da, db := a.backoff(attempt%4, 0), b.backoff(attempt%4, 0)
		if da != db {
			t.Fatalf("attempt %d: same seed drew %v vs %v", attempt, da, db)
		}
		if da != other.backoff(attempt%4, 0) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seeds 42 and 43 produced identical 8-draw backoff sequences")
	}

	unseeded, err := NewClient("http://127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	if unseeded.rng != nil {
		t.Fatal("client without RetryPolicy.Jitter built a per-client RNG; it must share the process-wide source")
	}
	// Retry-After still floors a seeded draw.
	if got := a.backoff(0, 5*time.Second); got < 5*time.Second {
		t.Fatalf("backoff %v ignored the 5 s Retry-After floor", got)
	}
}

// TestRetryOn502And504 is the regression test for the retryable-status set:
// 502 and 504 surface from a dying or partitioned forwarding hop, so the
// next attempt may be routed around it — both must be retried to success.
// A 500 stays terminal: it would fail identically on every attempt.
func TestRetryOn502And504(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		switch n := calls.Add(1); {
		case n < 0 || n == 1: // negative: the exhaustion phase below, all 502
			http.Error(w, `{"error":"upstream peer dying"}`, http.StatusBadGateway)
		case n == 2:
			http.Error(w, `{"error":"upstream peer partitioned"}`, http.StatusGatewayTimeout)
		default:
			w.Write([]byte(`{"status":"ok"}`))
		}
	}))
	defer ts.Close()
	c, err := NewClient(ts.URL, WithRetryPolicy(RetryPolicy{
		MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
		Jitter: rand.NewSource(1),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("502 then 504 then 200 must succeed through retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (502 and 504 each retried once)", got)
	}

	// MaxAttempts exhausts: the last retryable error is returned.
	calls.Store(-100) // stay in the 502/504 branch for all attempts
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("persistent 5xx gateway errors must eventually surface")
	}

	// 500 is not retryable: exactly one attempt, APIError returned.
	fail := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"deterministic bug"}`, http.StatusInternalServerError)
	}))
	defer fail.Close()
	fc, err := NewClient(fail.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	calls.Store(0)
	err = fc.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("want APIError 500, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("500 was attempted %d times, want 1 (not retryable)", got)
	}
}
