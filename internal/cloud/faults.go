package cloud

import "time"

// Faults is the fault-injection seam for chaos testing the robustness
// layer. Every hook is optional (nil injects nothing) and must be safe for
// concurrent use: the server calls them from request goroutines. The hooks
// are deliberately placed at the three spots the degradation ladder
// protects — the arrival-rate predictor, the optimizer, and the handler
// itself — so tests can drive every rung deterministically instead of
// hoping a real failure shows up.
type Faults struct {
	// PredictorErr, when non-nil and returning a non-nil error, makes the
	// arrival-rate predictor fail for the request; the server then degrades
	// to the configured fallback rate instead of failing the request.
	PredictorErr func() error

	// OptimizeDelay, when non-nil, returns an artificial delay inserted
	// before each optimizer run of the given variant. The sleep is
	// context-aware, so a delay beyond the request's compute budget
	// surfaces as context.DeadlineExceeded exactly like a genuinely slow
	// solve. Returning 0 injects nothing for that variant — e.g. slow down
	// only the queue-aware method to force the green-window fallback.
	OptimizeDelay func(v Variant) time.Duration

	// Panic, when non-nil and returning true for a request path, panics
	// inside the handler chain (within the recovery middleware's scope),
	// exercising panic-to-500 conversion.
	Panic func(path string) bool

	// PeerDelay, when non-nil, returns an artificial delay inserted before
	// each cluster exchange from this node to peer `to` (heartbeats, table
	// fetches, replication pushes and forwards alike). The sleep is
	// context-aware. Use it to simulate a slow or congested link — e.g. to
	// force hedged fetches.
	PeerDelay func(to string) time.Duration

	// PeerDrop, when non-nil and returning true for peer `to`, fails the
	// exchange at the connection level before it leaves this node. Because
	// the hook runs on the sending side only, dropping A→B while leaving
	// B→A intact produces a genuinely asymmetric partition.
	PeerDrop func(to string) bool
}

// sleepCtx sleeps for d or until done closes, whichever comes first, and
// reports whether the full delay elapsed.
func sleepCtx(d time.Duration, done <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}
