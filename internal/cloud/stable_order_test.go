package cloud

// Regression tests for the determinism fixes flagged by the detcheck
// analyzer (see DESIGN.md §14): wire-visible listings and cluster
// membership must not inherit Go's randomized map iteration order.

import (
	"encoding/json"
	"net/http"
	"testing"

	"evvo/internal/road"
)

// TestRoutesEndpointSorted pins the /v1/routes fix: route names are
// reported sorted regardless of registration order, so the listing is
// bit-identical across processes and restarts.
func TestRoutesEndpointSorted(t *testing.T) {
	s, ts, _ := newTestServer(t)
	for _, name := range []string{"zeta", "alpha", "mid", "beta"} {
		r, err := road.NewRoute(road.RouteConfig{LengthM: 900, DefaultMaxMS: 15})
		if err != nil {
			t.Fatalf("route %s: %v", name, err)
		}
		if err := s.RegisterRoute(name, r); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/routes")
	if err != nil {
		t.Fatalf("GET /v1/routes: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Routes []string `json:"routes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	// newTestServer pre-registers "us25"; it slots in sorted with the rest.
	want := []string{"alpha", "beta", "mid", "us25", "zeta"}
	if len(body.Routes) != len(want) {
		t.Fatalf("routes = %v, want %v", body.Routes, want)
	}
	for i, name := range want {
		if body.Routes[i] != name {
			t.Fatalf("routes = %v, want sorted %v", body.Routes, want)
		}
	}
}

// TestPeerGroupDeterministicOrder pins the newPeerGroup fix: the peer
// walk order and the ring membership are derived from sorted peer IDs,
// not from map iteration, so replica ownership is identical on every
// node and every boot.
func TestPeerGroupDeterministicOrder(t *testing.T) {
	cfg := ClusterConfig{
		NodeID: "n1",
		Peers: map[string]string{
			"n9": "http://n9", "n3": "http://n3",
			"n7": "http://n7", "n2": "http://n2",
		},
	}
	if err := cfg.normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	wantOrder := []string{"n2", "n3", "n7", "n9"}

	var firstOwners []string
	for run := 0; run < 3; run++ {
		pg, err := newPeerGroup(cfg, &Faults{})
		if err != nil {
			t.Fatalf("newPeerGroup: %v", err)
		}
		if len(pg.order) != len(wantOrder) {
			t.Fatalf("order = %v, want %v", pg.order, wantOrder)
		}
		for i, id := range wantOrder {
			if pg.order[i] != id {
				t.Fatalf("order = %v, want sorted %v", pg.order, wantOrder)
			}
		}
		owners := pg.ring.Successors("route-a", 3)
		if run == 0 {
			firstOwners = owners
			continue
		}
		if len(owners) != len(firstOwners) {
			t.Fatalf("run %d owners = %v, first run %v", run, owners, firstOwners)
		}
		for i := range owners {
			if owners[i] != firstOwners[i] {
				t.Fatalf("run %d owners = %v, first run %v", run, owners, firstOwners)
			}
		}
		pg.cancel()
	}
}
