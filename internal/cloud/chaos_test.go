package cloud

// Chaos tests: drive every rung of the degradation ladder, the admission
// controller, the panic-recovery middleware and the
// coalescing-under-cancellation contract deterministically through the
// fault-injection seam (faults.go). All of these run under -race in
// `make chaos` / `make check`.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"evvo/internal/dp"
	"evvo/internal/road"
)

// chaosFaults is a concurrency-safe switchboard for the Faults hooks so a
// test can flip failures on and off mid-flight.
type chaosFaults struct {
	predictorDown atomic.Bool
	delayAll      atomic.Bool // delay every variant
	delayQueue    atomic.Bool // delay only the queue-aware variant
	delay         time.Duration
	panicNext     atomic.Bool // panic on the next request, once
}

func (f *chaosFaults) faults() Faults {
	return Faults{
		PredictorErr: func() error {
			if f.predictorDown.Load() {
				return errors.New("injected: SAE predictor unreachable")
			}
			return nil
		},
		OptimizeDelay: func(v Variant) time.Duration {
			if f.delayAll.Load() || (f.delayQueue.Load() && v == VariantQueueAware) {
				return f.delay
			}
			return 0
		},
		Panic: func(string) bool {
			return f.panicNext.CompareAndSwap(true, false)
		},
	}
}

// newChaosServer builds a server with a tight 2 s deadline and the fault
// switchboard wired in.
func newChaosServer(t *testing.T, mutate func(*ServerConfig)) (*chaosFaults, *Server, *httptest.Server) {
	t.Helper()
	f := &chaosFaults{delay: 30 * time.Second}
	cfg := ServerConfig{
		DPTemplate:         coarseDP(),
		DefaultDeadlineSec: 2,
		MaxInFlight:        16,
		Faults:             f.faults(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return f, s, ts
}

// TestChaosPredictorFailureFallsBackToDefaultRate: rung 0 of the ladder —
// the arrival-rate predictor fails, the service computes the queue-aware
// plan from the configured fallback rate and says so.
func TestChaosPredictorFailureFallsBackToDefaultRate(t *testing.T) {
	f, _, ts := newChaosServer(t, nil)
	c, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	f.predictorDown.Store(true)
	degradedResp, err := c.Optimize(ctx, Request{Route: "us25"})
	if err != nil {
		t.Fatalf("predictor failure must degrade, not fail: %v", err)
	}
	if !degradedResp.Degraded || degradedResp.DegradedReason != DegradedPredictorFallback {
		t.Fatalf("degraded=%v reason=%q, want %q",
			degradedResp.Degraded, degradedResp.DegradedReason, DegradedPredictorFallback)
	}

	// The fallback rate is the paper's 153 veh/h; an explicit 153 override
	// bypasses the (broken) predictor and must yield the identical plan.
	explicit, err := c.Optimize(ctx, Request{Route: "us25", ArrivalRateVehPerHour: 153})
	if err != nil {
		t.Fatal(err)
	}
	if explicit.ChargeAh != degradedResp.ChargeAh || explicit.TripSec != degradedResp.TripSec {
		t.Fatalf("fallback plan (%.6f Ah, %.1f s) != explicit 153 veh/h plan (%.6f Ah, %.1f s)",
			degradedResp.ChargeAh, degradedResp.TripSec, explicit.ChargeAh, explicit.TripSec)
	}

	// Predictor recovers: the same request is now served undegraded (the
	// degraded response must not have been cached).
	f.predictorDown.Store(false)
	healthy, err := c.Optimize(ctx, Request{Route: "us25"})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Degraded || healthy.Cached {
		t.Fatalf("after recovery: degraded=%v cached=%v, want fresh full answer",
			healthy.Degraded, healthy.Cached)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded < 1 || st.DegradedByReason[DegradedPredictorFallback] < 1 {
		t.Fatalf("stats do not count the degradation: %+v", st)
	}
}

// TestChaosSlowQueueAwareDegradesToGreen: rung 1 — the queue-aware solve
// exceeds its share of the deadline, so the service returns the
// green-window baseline within the deadline budget instead of hanging.
func TestChaosSlowQueueAwareDegradesToGreen(t *testing.T) {
	f, _, ts := newChaosServer(t, nil)
	c, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	f.delayQueue.Store(true) // only the queue-aware variant is slow
	start := time.Now()
	resp, err := c.Optimize(context.Background(), Request{Route: "us25"})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("slow queue-aware must degrade, not fail: %v", err)
	}
	if !resp.Degraded || resp.DegradedReason != DegradedGreenFallback {
		t.Fatalf("degraded=%v reason=%q, want %q", resp.Degraded, resp.DegradedReason, DegradedGreenFallback)
	}
	// The 2 s deadline splits 50/50: ~1 s burnt on the stalled full method,
	// then the green DP (milliseconds on the coarse grid). Anything close
	// to the injected 30 s delay means the budget was not enforced.
	if elapsed > 2*time.Second {
		t.Fatalf("degraded response took %v, want within the 2 s deadline", elapsed)
	}
	if resp.ChargeAh <= 0 || len(resp.Profile) == 0 {
		t.Fatalf("green fallback is not a drivable plan: %+v", resp)
	}
	// A green-window plan respects green phases; arrivals are reported.
	if len(resp.Arrivals) != 2 {
		t.Fatalf("arrivals = %d, want 2 signals on us25", len(resp.Arrivals))
	}
}

// TestChaosDegradesToStaleCache: rung 2 — everything is slow, but a
// previously cached plan for the route exists and is served stale.
func TestChaosDegradesToStaleCache(t *testing.T) {
	f, _, ts := newChaosServer(t, nil)
	c, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Warm the cache while healthy (departure bucket 0).
	warm, err := c.Optimize(ctx, Request{Route: "us25", DepartTime: 0})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Degraded {
		t.Fatalf("warmup degraded: %+v", warm)
	}

	// Now every optimizer run stalls; a different departure bucket forces
	// a cache miss, and both ladder computations blow the deadline.
	f.delayAll.Store(true)
	start := time.Now()
	resp, err := c.Optimize(ctx, Request{Route: "us25", DepartTime: 600})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("stale-cache rung must serve, not fail: %v", err)
	}
	if !resp.Degraded || resp.DegradedReason != DegradedStaleCache || !resp.Cached {
		t.Fatalf("degraded=%v reason=%q cached=%v, want stale cache hit",
			resp.Degraded, resp.DegradedReason, resp.Cached)
	}
	if resp.ChargeAh != warm.ChargeAh {
		t.Fatalf("stale answer %.6f Ah is not the cached plan %.6f Ah", resp.ChargeAh, warm.ChargeAh)
	}
	if elapsed > 4*time.Second {
		t.Fatalf("stale-cache response took %v, want within the deadline budget", elapsed)
	}
}

// TestChaosAllRungsDryReturns503: no fallback computable and nothing
// cached — the service answers 503 + Retry-After promptly, never hangs.
func TestChaosAllRungsDryReturns503(t *testing.T) {
	f, _, ts := newChaosServer(t, nil)
	f.delayAll.Store(true)

	body := `{"route":"us25"}`
	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(body))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("503 body not a structured error: %v %q", err, e.Error)
	}
	if elapsed > 4*time.Second {
		t.Fatalf("503 took %v, want prompt failure at the deadline", elapsed)
	}
}

// TestChaosSheddingAndClientRetry: saturate the in-flight limit; excess
// requests get 429 + Retry-After immediately, and the retrying client
// rides the backoff to an eventual success.
func TestChaosSheddingAndClientRetry(t *testing.T) {
	var delayFirst atomic.Bool
	delayFirst.Store(true)
	cfg := ServerConfig{
		DPTemplate:         coarseDP(),
		DefaultDeadlineSec: 5,
		MaxInFlight:        1,
		MaxQueueDepth:      -1,   // shed immediately when the slot is taken
		QueueWaitSec:       0.01, // (and never linger)
		RetryAfterSec:      1,
		Faults: Faults{
			// The first optimize holds the only slot for a while; later
			// ones are fast.
			OptimizeDelay: func(Variant) time.Duration {
				if delayFirst.CompareAndSwap(true, false) {
					return 600 * time.Millisecond
				}
				return 0
			},
		},
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Occupy the single slot.
	holderDone := make(chan error, 1)
	go func() {
		c, err := NewClient(ts.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 1}))
		if err != nil {
			holderDone <- err
			return
		}
		_, err = c.Optimize(context.Background(), Request{Route: "us25", DepartTime: 0})
		holderDone <- err
	}()
	time.Sleep(150 * time.Millisecond) // holder is inside its 600 ms stall

	// A bare request is shed with 429 + Retry-After.
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
		strings.NewReader(`{"route":"us25","departTime":600}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// The retrying client sheds on early attempts and succeeds once the
	// slot frees up (Retry-After: 1 floors its first backoff).
	retrier, err := NewClient(ts.URL, WithRetryPolicy(RetryPolicy{
		MaxAttempts: 6, BaseBackoff: 50 * time.Millisecond, MaxBackoff: time.Second,
	}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := retrier.Optimize(context.Background(), Request{Route: "us25", DepartTime: 1200})
	if err != nil {
		t.Fatalf("backoff retry never succeeded: %v", err)
	}
	if got.ChargeAh <= 0 {
		t.Fatalf("retried response invalid: %+v", got)
	}
	if err := <-holderDone; err != nil {
		t.Fatalf("slot holder failed: %v", err)
	}

	st := statsOf(t, ts.URL)
	if st.Shed < 1 || st.RetryAfterIssued < 1 {
		t.Fatalf("shed/retry-after not counted: %+v", st)
	}
}

// TestChaosPanicRecovered: an injected handler panic becomes a structured
// 500, the process keeps serving, and the recovery is counted.
func TestChaosPanicRecovered(t *testing.T) {
	f, _, ts := newChaosServer(t, nil)
	c, err := NewClient(ts.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 1}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	f.panicNext.Store(true)
	var apiErr *APIError
	_, err = c.Optimize(ctx, Request{Route: "us25"})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("panic not converted to 500: %v", err)
	}
	if !strings.Contains(apiErr.Msg, "internal error") {
		t.Fatalf("500 body not structured: %q", apiErr.Msg)
	}

	// The process survived: the very next request computes normally.
	resp, err := c.Optimize(ctx, Request{Route: "us25"})
	if err != nil || resp.ChargeAh <= 0 {
		t.Fatalf("server did not survive the panic: %v", err)
	}
	st := statsOf(t, ts.URL)
	if st.PanicsRecovered != 1 {
		t.Fatalf("panicsRecovered = %d, want 1", st.PanicsRecovered)
	}
}

// TestChaosLeaderCancelledFollowerReruns: a coalesced follower whose own
// context is live must not inherit the cancelled leader's context error —
// it re-runs the computation itself.
func TestChaosLeaderCancelledFollowerReruns(t *testing.T) {
	var calls atomic.Int64
	firstEntered := make(chan struct{})
	old := optimizeDP
	optimizeDP = func(ctx context.Context, cfg dp.Config) (*dp.Result, error) {
		if calls.Add(1) == 1 {
			close(firstEntered)
			<-ctx.Done() // the leader's solve stalls until its client gives up
			return nil, ctx.Err()
		}
		return old(ctx, cfg)
	}
	defer func() { optimizeDP = old }()

	s, err := NewServer(ServerConfig{DPTemplate: coarseDP(), MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	body, err := json.Marshal(Request{Route: "us25", DepartTime: 12})
	if err != nil {
		t.Fatal(err)
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderCode := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/optimize", bytes.NewReader(body)).WithContext(leaderCtx)
		h.ServeHTTP(rec, req)
		leaderCode <- rec.Code
	}()
	<-firstEntered // leader owns the in-flight call and is stalled

	followerRec := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/optimize", bytes.NewReader(body))
		h.ServeHTTP(rec, req)
		followerRec <- rec
	}()
	// Give the follower a beat to park on the in-flight call, then kill
	// the leader's request.
	time.Sleep(100 * time.Millisecond)
	cancelLeader()

	select {
	case code := <-leaderCode:
		if code != http.StatusServiceUnavailable {
			t.Fatalf("cancelled leader got %d, want 503", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled leader never returned")
	}
	select {
	case rec := <-followerRec:
		if rec.Code != http.StatusOK {
			t.Fatalf("follower got %d: %s — must re-run, not inherit leader's cancellation",
				rec.Code, rec.Body.String())
		}
		var resp Response
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Cached {
			t.Fatal("follower claims a cache hit; it should have recomputed")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower never returned after leader cancellation")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("optimizeDP ran %d times, want 2 (stalled leader + follower re-run)", got)
	}
}

// TestChaosFollowerSharesHealthyLeaderError: a non-context leader error
// (here: infeasible optimization) is shared with followers as before —
// re-running would just fail again.
func TestChaosFollowerSharesHealthyLeaderError(t *testing.T) {
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	old := optimizeDP
	optimizeDP = func(ctx context.Context, cfg dp.Config) (*dp.Result, error) {
		if calls.Add(1) == 1 {
			close(entered)
		}
		<-release
		return nil, errors.New("no feasible trajectory (injected)")
	}
	defer func() { optimizeDP = old }()

	s, err := NewServer(ServerConfig{DPTemplate: coarseDP(), MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	body, _ := json.Marshal(Request{Route: "us25", DepartTime: 12})
	codes := make(chan int, 2)
	post := func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/optimize", bytes.NewReader(body))
		h.ServeHTTP(rec, req)
		codes <- rec.Code
	}
	go post()
	<-entered
	go post()
	time.Sleep(100 * time.Millisecond)
	close(release)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusUnprocessableEntity {
			t.Fatalf("request %d got %d, want shared 422", i, code)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("optimizeDP ran %d times, want 1 (followers share real errors)", got)
	}
}

// statsOf fetches /v1/stats without admission/retry interference.
func statsOf(t *testing.T, baseURL string) Stats {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestChaosDeadlineHeaderCapped: the client may tighten the compute
// deadline but never extend it past the server's cap.
func TestChaosDeadlineHeaderCapped(t *testing.T) {
	s, err := NewServer(ServerConfig{
		DPTemplate:         coarseDP(),
		DefaultDeadlineSec: 2,
		MaxDeadlineSec:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(header string) *http.Request {
		r := httptest.NewRequest("POST", "/v1/optimize", nil)
		if header != "" {
			r.Header.Set(DeadlineHeader, header)
		}
		return r
	}
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 2 * time.Second},            // server default
		{"250", 250 * time.Millisecond},  // client tightens
		{"60000", 3 * time.Second},       // capped at MaxDeadlineSec
		{"garbage", 2 * time.Second},     // unparsable → default
		{"-5", 2 * time.Second},          // non-positive → default
	}
	for _, tc := range cases {
		if got := s.requestDeadline(mk(tc.header)); got != tc.want {
			t.Fatalf("header %q: deadline %v, want %v", tc.header, got, tc.want)
		}
	}
}

// TestChaosArrivalRatePredictorErrorConfigured: a real (non-injected)
// predictor error configured on the server degrades the same way the
// fault seam does.
func TestChaosArrivalRatePredictorErrorConfigured(t *testing.T) {
	s, err := NewServer(ServerConfig{
		DPTemplate: coarseDP(),
		ArrivalRate: func(road.Control, float64) (float64, error) {
			return 0, errors.New("upstream SAE model 500")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Optimize(context.Background(), Request{Route: "us25"})
	if err != nil {
		t.Fatalf("predictor error must degrade, not fail: %v", err)
	}
	if !resp.Degraded || resp.DegradedReason != DegradedPredictorFallback {
		t.Fatalf("degraded=%v reason=%q, want %q", resp.Degraded, resp.DegradedReason, DegradedPredictorFallback)
	}
}

// TestChaosBodyLimits: oversized bodies and unknown fields are structured
// 400s on both POST endpoints.
func TestChaosBodyLimits(t *testing.T) {
	s, err := NewServer(ServerConfig{DPTemplate: coarseDP(), MaxBodyBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	huge := `{"route":"` + strings.Repeat("x", 512) + `"}`
	for _, path := range []string{"/v1/optimize", "/v1/advise"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: oversize body response not JSON: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: oversize body got %d, want 400", path, resp.StatusCode)
		}
		if !strings.Contains(e.Error, "exceeds") {
			t.Fatalf("%s: oversize error %q does not name the limit", path, e.Error)
		}

		// Unknown fields (e.g. a misspelled parameter) are rejected, not
		// silently ignored. (Note: Go's decoder matches field names
		// case-insensitively, so the typo has to differ by more than case.)
		resp, err = http.Post(ts.URL+path, "application/json",
			strings.NewReader(`{"route":"us25","departureTime":12}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: unknown field got %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestChaosAdviseDegradedFlag: a degraded candidate marks the whole advise
// response as degraded.
func TestChaosAdviseDegradedFlag(t *testing.T) {
	f, _, ts := newChaosServer(t, nil)
	c, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	f.predictorDown.Store(true)
	out, err := c.Advise(context.Background(), AdviseRequest{
		Route: "us25", EarliestDepart: 0, LatestDepart: 10, StepSec: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Fatalf("advise with failing predictor not marked degraded: %+v", out)
	}
	if len(out.Options) != 2 {
		t.Fatalf("options = %d, want 2", len(out.Options))
	}
}

// TestChaosSlowExactDegradesToCoarseGrid: the coarse-grid rung — the exact
// solve blows its budget, and with CoarseLadderFactor configured the
// service re-solves the *same* queue-aware variant on the bracketed grid
// instead of abandoning the paper's windows for the green baseline.
func TestChaosSlowExactDegradesToCoarseGrid(t *testing.T) {
	// Stall only the first optimizer run (the exact primary); the coarse
	// rerun of the same variant must go through undelayed.
	var stalled atomic.Bool
	_, _, ts := newChaosServer(t, func(c *ServerConfig) {
		c.CoarseLadderFactor = 3
		c.Faults = Faults{OptimizeDelay: func(Variant) time.Duration {
			if stalled.CompareAndSwap(false, true) {
				return 30 * time.Second
			}
			return 0
		}}
	})
	c, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	resp, err := c.Optimize(context.Background(), Request{Route: "us25"})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("slow exact solve must degrade to coarse grid, not fail: %v", err)
	}
	if !resp.Degraded || resp.DegradedReason != DegradedCoarseGrid {
		t.Fatalf("degraded=%v reason=%q, want %q", resp.Degraded, resp.DegradedReason, DegradedCoarseGrid)
	}
	if !resp.Refined {
		t.Fatal("coarse-grid rung did not mark the response Refined")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("degraded response took %v, want within the 2 s deadline", elapsed)
	}
	if resp.ChargeAh <= 0 || len(resp.Profile) == 0 {
		t.Fatalf("coarse-grid plan is not drivable: %+v", resp)
	}
	// The rung keeps the queue-aware windows: both us25 signals are crossed
	// inside their zero-queue windows, unpenalized.
	if len(resp.Arrivals) != 2 {
		t.Fatalf("arrivals = %d, want 2 signals on us25", len(resp.Arrivals))
	}
	for _, a := range resp.Arrivals {
		if !a.InWindow {
			t.Fatalf("coarse-grid plan misses a zero-queue window: %+v", resp.Arrivals)
		}
	}
	if resp.Penalized {
		t.Fatal("coarse-grid plan penalized on the chaos route")
	}

	// The coarse answer matches the exact one within the documented ε (on
	// this corridor they are equal; 1e-3 Ah is the published bound).
	exact, err := c.Optimize(context.Background(), Request{Route: "us25"})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Degraded || exact.Refined {
		t.Fatalf("second request should be the healthy exact solve: %+v", exact)
	}
	if diff := resp.ChargeAh - exact.ChargeAh; diff < -1e-12 || diff > 1e-3 {
		t.Fatalf("coarse charge %v vs exact %v: outside [0, ε]", resp.ChargeAh, exact.ChargeAh)
	}

	st := statsOf(t, ts.URL)
	if st.DegradedByReason[DegradedCoarseGrid] != 1 {
		t.Fatalf("stats do not count the coarse-grid rung: %+v", st.DegradedByReason)
	}
}

// TestDegradeCoarseGridConfigValidation: factor 1 (exact re-run disguised
// as a fallback) and negatives are config errors, not silent no-ops.
func TestDegradeCoarseGridConfigValidation(t *testing.T) {
	for _, factor := range []int{1, -2} {
		cfg := ServerConfig{DPTemplate: coarseDP(), CoarseLadderFactor: factor}
		if _, err := NewServer(cfg); err == nil {
			t.Fatalf("CoarseLadderFactor %d accepted", factor)
		}
	}
}
