// Cluster serving: consistent-hash sharding of segment-table ownership
// across a fleet of cloudd peers, with replication, failure detection,
// hedged fetches, per-peer circuit breakers and request forwarding
// (DESIGN.md §13). The membership/health primitives live in
// internal/cluster; this file supplies the HTTP plumbing and wires them
// into the serving stack:
//
//   - routeTables consults acquireTables: the route key's acting owner
//     builds the tables (and replicates them to its ring successors);
//     everyone else fetches the built tables from the owner or a replica,
//     hedging a second fetch after a latency-percentile budget.
//   - handleOptimize forwards requests for routes this node neither owns
//     nor has warm to the acting owner, guarded against forwarding loops
//     by the X-Forwarded-By chain.
//   - Degradation order when the owner is unreachable: replica fetch →
//     local table rebuild → (below, in solve) monolithic DP. Every rung
//     yields the exact answer — peer failures cost latency and duplicated
//     work, never plan quality — so none of them set Response.Degraded.
package cloud

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"evvo/internal/cluster"
	"evvo/internal/dp"
	"evvo/internal/metrics"
	"evvo/internal/stable"
	"evvo/internal/units"
)

// ForwardedByHeader carries the comma-separated chain of node IDs a
// forwarded request has passed through. A node that finds itself in the
// chain — or a chain as long as the membership — serves locally instead of
// forwarding again, so stale ownership views can never orbit a request.
const ForwardedByHeader = "X-Forwarded-By"

// ClusterConfig joins this server to a fixed-membership cloudd cluster.
// Membership is boot-time configuration (the -peers flag): node liveness
// is tracked by the failure detector, not by ring mutation.
type ClusterConfig struct {
	// NodeID names this node (required, unique across the cluster).
	NodeID string
	// Peers maps the *other* members' node IDs to their base URLs
	// ("http://host:port"). The ring is built over NodeID + keys(Peers),
	// so every node derives the same membership.
	Peers map[string]string
	// Replicas is the total copy count per route key, owner included
	// (default 2, capped at the membership size).
	Replicas int
	// VirtualNodes per member on the hash ring (default
	// cluster.DefaultVirtualNodes).
	VirtualNodes int
	// HeartbeatSec is the probe interval (default 0.5). Each sweep probes
	// every peer's /v1/health with a per-probe timeout of one interval.
	HeartbeatSec float64
	// SuspectAfterSec and DeadAfterSec grade peer silence (defaults 3× and
	// 6× HeartbeatSec). A suspect peer keeps its ownership — reassigning on
	// first silence would flap — but a dead peer's keys move to its ring
	// successors.
	SuspectAfterSec float64
	DeadAfterSec    float64
	// HedgeQuantile picks the observed fetch-latency percentile after
	// which a table fetch is hedged to the next replica (default 0.95);
	// HedgeMinSec floors that budget while the histogram is still cold
	// (default 0.05).
	HedgeQuantile float64
	HedgeMinSec   float64
	// BreakerFails and BreakerCooldownSec parameterize the per-peer
	// circuit breaker (defaults 3 consecutive failures, 2 s cooldown).
	BreakerFails       int
	BreakerCooldownSec float64
	// MaxTableBytes bounds a received table payload (default 32 MiB).
	MaxTableBytes int64
	// WarmRoutes lists route names whose tables this node builds at boot
	// when it owns them, before /v1/ready reports ready. Routes owned by
	// other nodes warm lazily on first use. Default: none (ready as soon
	// as the first heartbeat sweep completes).
	WarmRoutes []string
}

// normalize fills defaults and validates. It mutates the receiver so the
// effective values are visible to the caller (and to tests).
func (c *ClusterConfig) normalize() error {
	if c.NodeID == "" {
		return fmt.Errorf("cloud: cluster config needs a node ID")
	}
	for id, base := range c.Peers {
		if id == "" || base == "" {
			return fmt.Errorf("cloud: cluster peer %q=%q needs both an ID and a base URL", id, base)
		}
		if id == c.NodeID {
			return fmt.Errorf("cloud: cluster peer list contains this node's own ID %q", id)
		}
	}
	members := len(c.Peers) + 1
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Replicas < 1 {
		return fmt.Errorf("cloud: cluster replicas %d must be positive", c.Replicas)
	}
	if c.Replicas > members {
		c.Replicas = members
	}
	if c.VirtualNodes == 0 {
		c.VirtualNodes = cluster.DefaultVirtualNodes
	}
	if c.HeartbeatSec == 0 {
		c.HeartbeatSec = 0.5
	}
	if c.HeartbeatSec < 0 {
		return fmt.Errorf("cloud: cluster heartbeat %.3f s must be positive", c.HeartbeatSec)
	}
	if c.SuspectAfterSec == 0 {
		c.SuspectAfterSec = 3 * c.HeartbeatSec
	}
	if c.DeadAfterSec == 0 {
		c.DeadAfterSec = 2 * c.SuspectAfterSec
	}
	if c.SuspectAfterSec <= 0 || c.DeadAfterSec <= c.SuspectAfterSec {
		return fmt.Errorf("cloud: cluster detector timeouts must satisfy 0 < suspect (%.3f s) < dead (%.3f s)",
			c.SuspectAfterSec, c.DeadAfterSec)
	}
	if c.HedgeQuantile == 0 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeQuantile < 0 || c.HedgeQuantile >= 1 {
		return fmt.Errorf("cloud: hedge quantile %.2f must be in (0, 1)", c.HedgeQuantile)
	}
	if c.HedgeMinSec == 0 {
		c.HedgeMinSec = 0.05
	}
	if c.HedgeMinSec < 0 {
		return fmt.Errorf("cloud: hedge floor %.3f s must be non-negative", c.HedgeMinSec)
	}
	if c.BreakerFails == 0 {
		c.BreakerFails = 3
	}
	if c.BreakerCooldownSec == 0 {
		c.BreakerCooldownSec = 2
	}
	if c.BreakerFails < 0 || c.BreakerCooldownSec < 0 {
		return fmt.Errorf("cloud: breaker threshold %d and cooldown %.2f s must be positive",
			c.BreakerFails, c.BreakerCooldownSec)
	}
	if c.MaxTableBytes == 0 {
		c.MaxTableBytes = 32 << 20
	}
	if c.MaxTableBytes < 0 {
		return fmt.Errorf("cloud: max table bytes %d must be positive", c.MaxTableBytes)
	}
	return nil
}

// peerLink is this node's view of one peer: its retrying JSON client (for
// forwards), its raw HTTP client (heartbeats and gob table exchanges,
// sharing the fault-injected transport) and its circuit breaker.
type peerLink struct {
	id      string
	baseURL string
	client  *Client
	http    *http.Client
	breaker *cluster.Breaker
}

// peerGroup is the cluster runtime attached to a Server: ring, detector,
// per-peer links, the heartbeat loop, and the cluster counters.
type peerGroup struct {
	cfg  ClusterConfig
	self string
	ring *cluster.Ring
	det  *cluster.Detector

	peers map[string]*peerLink
	order []string // sorted peer IDs, for deterministic iteration

	// fetchLat feeds the hedge budget: the observed latency of successful
	// table fetches.
	fetchLat *metrics.Histogram

	// ctx is the cluster lifetime (heartbeats, replication pushes, warm
	// builds), cancelled by Server.Close.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	primedOnce sync.Once
	primed     chan struct{} // closed after the first heartbeat sweep
	ready      chan struct{} // closed once primed + WarmRoutes built

	forwards, forwardFails, forwardedIn      metrics.Counter
	takeovers, tableFetches, tableFetchFails metrics.Counter
	hedgedFetches, replPushed, replRecv      metrics.Counter
	peerFallbacks, breakerFastFails          metrics.Counter
}

// peerTransport injects the peer-level faults (delay, then drop) in front
// of a real transport, on the sending side only — which is what makes the
// injected partitions asymmetric.
type peerTransport struct {
	to     string
	faults *Faults
	next   http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *peerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if f := t.faults.PeerDelay; f != nil {
		if !sleepCtx(f(t.to), req.Context().Done()) {
			return nil, fmt.Errorf("cloud: peer exchange to %s cancelled during injected delay: %w", t.to, req.Context().Err())
		}
	}
	if f := t.faults.PeerDrop; f != nil && f(t.to) {
		return nil, fmt.Errorf("cloud: injected partition to peer %s", t.to)
	}
	return t.next.RoundTrip(req)
}

// newPeerGroup builds the cluster runtime. faults points at the server's
// fault config so chaos hooks installed there reach the peer transports.
func newPeerGroup(cfg ClusterConfig, faults *Faults) (*peerGroup, error) {
	peerIDs := stable.SortedKeys(cfg.Peers)
	members := make([]string, 0, len(cfg.Peers)+1)
	members = append(members, cfg.NodeID)
	members = append(members, peerIDs...)
	ring, err := cluster.Build(members, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	det, err := cluster.NewDetector(peerIDs, secToDur(cfg.SuspectAfterSec), secToDur(cfg.DeadAfterSec), time.Now())
	if err != nil {
		return nil, err
	}
	pg := &peerGroup{
		cfg:      cfg,
		self:     cfg.NodeID,
		ring:     ring,
		det:      det,
		peers:    make(map[string]*peerLink, len(cfg.Peers)),
		order:    peerIDs,
		fetchLat: metrics.NewLatencyHistogram(),
		primed:   make(chan struct{}),
		ready:    make(chan struct{}),
	}
	pg.ctx, pg.cancel = context.WithCancel(context.Background())
	for _, id := range peerIDs {
		hc := &http.Client{Transport: &peerTransport{to: id, faults: faults, next: http.DefaultTransport}}
		// Two attempts only: the cluster layer has its own failover (hedge,
		// replica walk, local rebuild), so long client-side retry loops
		// would just delay it.
		cl, err := NewClient(cfg.Peers[id], WithHTTPClient(hc), WithRetryPolicy(RetryPolicy{MaxAttempts: 2}))
		if err != nil {
			pg.cancel()
			return nil, fmt.Errorf("cloud: peer %s: %w", id, err)
		}
		br, err := cluster.NewBreaker(cfg.BreakerFails, secToDur(cfg.BreakerCooldownSec))
		if err != nil {
			pg.cancel()
			return nil, err
		}
		pg.peers[id] = &peerLink{id: id, baseURL: cfg.Peers[id], client: cl, http: hc, breaker: br}
	}
	return pg, nil
}

// close stops the heartbeat loop and waits for in-flight cluster work.
func (pg *peerGroup) close() {
	pg.cancel()
	pg.wg.Wait()
}

// heartbeatLoop probes every peer each interval and feeds the detector.
// The first completed sweep closes primed: the node has joined the ring
// with an informed (if young) view of peer health.
func (pg *peerGroup) heartbeatLoop() {
	defer pg.wg.Done()
	t := time.NewTicker(secToDur(pg.cfg.HeartbeatSec))
	defer t.Stop()
	for {
		pg.sweep()
		pg.primedOnce.Do(func() { close(pg.primed) })
		select {
		case <-pg.ctx.Done():
			return
		case <-t.C:
		}
	}
}

// sweep probes all peers in parallel, each with a one-interval timeout so
// a hung peer cannot stall the detector's view of the others.
func (pg *peerGroup) sweep() {
	var wg sync.WaitGroup
	for _, id := range pg.order {
		pl := pg.peers[id]
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(pg.ctx, secToDur(pg.cfg.HeartbeatSec))
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, pl.baseURL+"/v1/health", nil)
			if err != nil {
				return
			}
			resp, err := pl.http.Do(req)
			if err != nil {
				return
			}
			_ = resp.Body.Close() // health probe: only the status matters
			if resp.StatusCode == http.StatusOK {
				pg.det.Observe(pl.id, time.Now())
			}
		}()
	}
	wg.Wait()
}

// actingOwner resolves who serves key right now: the first member of the
// key's successor list the detector does not grade dead (self always
// counts live). takeover reports that the acting owner is not the ring
// primary — i.e. ownership has failed over.
func (pg *peerGroup) actingOwner(key string, now time.Time) (owner string, takeover bool) {
	succ := pg.ring.Successors(key, pg.ring.Len())
	for _, id := range succ {
		if id == pg.self || pg.det.State(id, now) != cluster.StateDead {
			return id, id != succ[0]
		}
	}
	// Every member is dead in our view — a full partition. Keep the
	// primary; breakers fail the exchanges fast and callers fall back to
	// local compute.
	return succ[0], false
}

// fetchCandidates orders the peers worth asking for key's tables: the
// acting owner first, then the remaining ring successors (the replica
// set and beyond), skipping self and dead peers.
func (pg *peerGroup) fetchCandidates(key, owner string, now time.Time) []*peerLink {
	succ := pg.ring.Successors(key, pg.ring.Len())
	out := make([]*peerLink, 0, len(succ))
	if pl := pg.peers[owner]; pl != nil {
		out = append(out, pl)
	}
	for _, id := range succ {
		if id == pg.self || id == owner {
			continue
		}
		if pl := pg.peers[id]; pl != nil && pg.det.State(id, now) != cluster.StateDead {
			out = append(out, pl)
		}
	}
	return out
}

// fetchTables retrieves key's tables from the acting owner, hedging to
// the next candidate when the fetch outlives the HedgeQuantile of
// previously observed fetch latencies (floored at HedgeMinSec) and failing
// over candidate by candidate. First success wins; the others are
// cancelled. cfg is the local grid config the import validates against.
func (pg *peerGroup) fetchTables(ctx context.Context, key string, cfg dp.Config, owner string) (*dp.RouteTables, error) {
	cands := pg.fetchCandidates(key, owner, time.Now())
	if len(cands) == 0 {
		return nil, fmt.Errorf("cloud: no live replica to fetch tables for %q", key)
	}
	hedgeAfter := secToDur(pg.cfg.HedgeMinSec)
	if q := secToDur(units.MsToSec(pg.fetchLat.Quantile(pg.cfg.HedgeQuantile))); q > hedgeAfter {
		hedgeAfter = q
	}

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		rt  *dp.RouteTables
		err error
	}
	results := make(chan outcome, len(cands))
	launched, outstanding := 0, 0
	launch := func() {
		pl := cands[launched]
		launched++
		outstanding++
		pg.wg.Add(1)
		go func() {
			defer pg.wg.Done()
			rt, err := pg.fetchOne(fctx, pl, key, cfg)
			results <- outcome{rt, err}
		}()
	}
	launch()
	hedge := time.NewTimer(hedgeAfter)
	defer hedge.Stop()
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("cloud: table fetch for %q abandoned: %w", key, ctx.Err())
		case <-hedge.C:
			if launched < len(cands) {
				pg.hedgedFetches.Inc()
				launch()
				hedge.Reset(hedgeAfter)
			}
		case r := <-results:
			outstanding--
			if r.err == nil {
				pg.tableFetches.Inc()
				return r.rt, nil
			}
			lastErr = r.err
			if launched < len(cands) {
				launch()
			} else if outstanding == 0 {
				pg.tableFetchFails.Inc()
				return nil, lastErr
			}
		}
	}
}

// fetchOne performs a single breaker-guarded GET /v1/tables/{key} against
// one peer and imports the payload under the local config.
func (pg *peerGroup) fetchOne(ctx context.Context, pl *peerLink, key string, cfg dp.Config) (*dp.RouteTables, error) {
	if !pl.breaker.Allow(time.Now()) {
		pg.breakerFastFails.Inc()
		return nil, fmt.Errorf("cloud: circuit breaker open for peer %s", pl.id)
	}
	start := time.Now()
	fail := func(err error) (*dp.RouteTables, error) {
		pl.breaker.Failure(time.Now())
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, pl.baseURL+"/v1/tables/"+url.PathEscape(key), nil)
	if err != nil {
		return fail(fmt.Errorf("cloud: building table fetch: %w", err))
	}
	resp, err := pl.http.Do(req)
	if err != nil {
		return fail(fmt.Errorf("cloud: fetching tables %q from %s: %w", key, pl.id, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(fmt.Errorf("cloud: peer %s has no servable tables for %q (HTTP %d)", pl.id, key, resp.StatusCode))
	}
	var w dp.TablesWire
	if err := gob.NewDecoder(io.LimitReader(resp.Body, pg.cfg.MaxTableBytes)).Decode(&w); err != nil {
		return fail(fmt.Errorf("cloud: decoding tables %q from %s: %w", key, pl.id, err))
	}
	rt, err := dp.ImportRouteTables(cfg, &w)
	if err != nil {
		return fail(fmt.Errorf("cloud: peer %s: %w", pl.id, err))
	}
	pl.breaker.Success()
	pg.fetchLat.Observe(units.SecToMs(time.Since(start).Seconds()))
	return rt, nil
}

// replicatePushTimeoutSec bounds one best-effort replication push.
const replicatePushTimeoutSec = 10.0

// replicate pushes freshly built tables for key to the next Replicas-1
// live ring successors, asynchronously and best-effort: replication is an
// availability optimization (a warm copy survives the owner's death), not
// a durability requirement — any node can rebuild from scratch.
func (pg *peerGroup) replicate(key string, rt *dp.RouteTables) {
	if pg.cfg.Replicas < 2 {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rt.Export()); err != nil {
		return
	}
	payload := buf.Bytes()
	now := time.Now()
	for _, id := range pg.ring.Successors(key, pg.cfg.Replicas) {
		if id == pg.self {
			continue
		}
		pl := pg.peers[id]
		if pl == nil || pg.det.State(id, now) == cluster.StateDead {
			continue
		}
		pg.wg.Add(1)
		go func() {
			defer pg.wg.Done()
			ctx, cancel := context.WithTimeout(pg.ctx, secToDur(replicatePushTimeoutSec))
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPut,
				pl.baseURL+"/v1/tables/"+url.PathEscape(key), bytes.NewReader(payload))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/octet-stream")
			resp, err := pl.http.Do(req)
			if err != nil {
				return
			}
			_ = resp.Body.Close() // push delivered; the status is the receipt
			if resp.StatusCode == http.StatusOK {
				pg.replPushed.Inc()
			}
		}()
	}
}

// acquireTables is the cluster-aware table source behind routeTables'
// build slot. Standalone servers build locally. In a cluster, the acting
// owner builds (and replicates); everyone else fetches from the owner or
// a replica, and when no fetch succeeds rebuilds locally — duplicated
// work, exact answer.
func (s *Server) acquireTables(ctx context.Context, name string, cfg dp.Config) (*dp.RouteTables, error) {
	pg := s.peers
	if pg == nil {
		return s.buildTables(ctx, cfg)
	}
	owner, takeover := pg.actingOwner(name, time.Now())
	if owner == pg.self {
		if takeover {
			pg.takeovers.Inc()
		}
		rt, err := s.buildTables(ctx, cfg)
		if err == nil {
			pg.replicate(name, rt)
		}
		return rt, err
	}
	rt, err := pg.fetchTables(ctx, name, cfg, owner)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		// Owner and replicas all unreachable, but this request still has
		// budget: rebuild locally. Same tables, same plans — the partition
		// costs duplicated compute, never correctness.
		pg.peerFallbacks.Inc()
		return s.buildTables(ctx, cfg)
	}
	return rt, nil
}

// buildTables runs a local segment-table build and accounts its solves.
// Fetched/imported tables bypass this on purpose: their solve cost was
// paid (and counted) on the building node.
func (s *Server) buildTables(ctx context.Context, cfg dp.Config) (*dp.RouteTables, error) {
	rt, err := dp.BuildRouteTables(ctx, cfg)
	if err == nil {
		s.dpSegmentSolves.Add(int64(rt.SegmentSolves()))
	}
	return rt, err
}

// forwardOptimize forwards req to its acting owner when this node neither
// owns the route key nor has its tables warm. It returns nil when the
// request should be served locally instead: this node is the owner, the
// tables are already here, the loop guard fired, the breaker is open, or
// the forward itself failed (local serving is the degradation path — a
// forwarding failure must never outrank a computable answer).
func (s *Server) forwardOptimize(ctx context.Context, req Request, chain string) *Response {
	pg := s.peers
	if pg == nil {
		return nil
	}
	if chain != "" {
		pg.forwardedIn.Inc()
	}
	s.mu.Lock()
	_, warm := s.segTables[req.Route]
	s.mu.Unlock()
	if warm {
		return nil
	}
	owner, _ := pg.actingOwner(req.Route, time.Now())
	if owner == pg.self {
		return nil
	}
	hops := splitChain(chain)
	if len(hops) >= pg.ring.Len() {
		return nil // every member has touched this request already
	}
	for _, h := range hops {
		if h == pg.self {
			return nil // loop: we have seen this request before
		}
	}
	pl := pg.peers[owner]
	if pl == nil {
		return nil
	}
	if !pl.breaker.Allow(time.Now()) {
		pg.breakerFastFails.Inc()
		return nil
	}
	hdr := http.Header{}
	hdr.Set(ForwardedByHeader, strings.Join(append(hops, pg.self), ","))
	body, err := json.Marshal(req)
	if err != nil {
		return nil
	}
	var out Response
	if err := pl.client.doHeaders(ctx, "/v1/optimize", body, hdr, &out); err != nil {
		pl.breaker.Failure(time.Now())
		pg.forwardFails.Inc()
		return nil
	}
	pl.breaker.Success()
	pg.forwards.Inc()
	return &out
}

// splitChain parses an X-Forwarded-By header into node IDs.
func splitChain(chain string) []string {
	if chain == "" {
		return nil
	}
	parts := strings.Split(chain, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// clusterReady reports whether the cluster runtime has completed its
// first heartbeat sweep and warm builds.
func (pg *peerGroup) clusterReady() bool {
	select {
	case <-pg.ready:
		return true
	default:
		return false
	}
}

// ClusterStats reports the cluster runtime's counters in /v1/stats.
type ClusterStats struct {
	NodeID string `json:"nodeId"`
	// Ready mirrors /v1/ready (ring joined + warm routes built, not
	// draining).
	Ready bool `json:"ready"`
	// Peer health as graded by the local failure detector right now.
	PeersAlive   int `json:"peersAlive"`
	PeersSuspect int `json:"peersSuspect"`
	PeersDead    int `json:"peersDead"`
	// Forwards counts requests this node forwarded to a route's owner;
	// ForwardFails counts forwards that failed over to local serving;
	// ForwardedIn counts requests that arrived already forwarded.
	Forwards     int64 `json:"forwards"`
	ForwardFails int64 `json:"forwardFails"`
	ForwardedIn  int64 `json:"forwardedIn"`
	// Takeovers counts table builds this node performed as acting owner
	// for keys whose ring primary it is not — i.e. ownership failovers.
	Takeovers int64 `json:"takeovers"`
	// TableFetches counts successful cross-node table fetches;
	// HedgedFetches the extra attempts launched past the hedge budget;
	// TableFetchFails exhausted candidate lists.
	TableFetches    int64 `json:"tableFetches"`
	TableFetchFails int64 `json:"tableFetchFails"`
	HedgedFetches   int64 `json:"hedgedFetches"`
	// ReplicasPushed / ReplicasReceived count table replication traffic.
	ReplicasPushed   int64 `json:"replicasPushed"`
	ReplicasReceived int64 `json:"replicasReceived"`
	// PeerFallbacks counts local table rebuilds after all fetch candidates
	// failed; BreakerFastFails exchanges refused locally by an open
	// breaker; BreakerOpens closed→open breaker transitions across peers.
	PeerFallbacks    int64 `json:"peerFallbacks"`
	BreakerFastFails int64 `json:"breakerFastFails"`
	BreakerOpens     int64 `json:"breakerOpens"`
}

// clusterStats snapshots the cluster counters (nil without a cluster).
func (s *Server) clusterStats() *ClusterStats {
	pg := s.peers
	if pg == nil {
		return nil
	}
	now := time.Now()
	alive, suspect, dead := pg.det.Counts(now)
	var opens int64
	for _, id := range pg.order {
		opens += pg.peers[id].breaker.Opens()
	}
	return &ClusterStats{
		NodeID:           pg.self,
		Ready:            pg.clusterReady() && !s.draining.Load(),
		PeersAlive:       alive,
		PeersSuspect:     suspect,
		PeersDead:        dead,
		Forwards:         pg.forwards.Value(),
		ForwardFails:     pg.forwardFails.Value(),
		ForwardedIn:      pg.forwardedIn.Value(),
		Takeovers:        pg.takeovers.Value(),
		TableFetches:     pg.tableFetches.Value(),
		TableFetchFails:  pg.tableFetchFails.Value(),
		HedgedFetches:    pg.hedgedFetches.Value(),
		ReplicasPushed:   pg.replPushed.Value(),
		ReplicasReceived: pg.replRecv.Value(),
		PeerFallbacks:    pg.peerFallbacks.Value(),
		BreakerFastFails: pg.breakerFastFails.Value(),
		BreakerOpens:     opens,
	}
}
