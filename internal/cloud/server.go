// Package cloud implements the "vehicular cloud" computing framework the
// paper builds on (references [6], [7]): EVs upload their state (route and
// departure time) and the cloud computes and returns the optimal velocity
// profile, so the on-board unit does not run the DP itself.
//
// The service is a JSON-over-HTTP API:
//
//	GET  /v1/health          liveness probe
//	GET  /v1/routes          registered route names
//	GET  /v1/stats           request/cache counters
//	POST /v1/optimize        compute an optimal profile
//	POST /v1/advise          sweep departure times, recommend the best
//
// Identical requests within the same departure bucket are served from an
// in-memory cache: queue predictions only change at the resolution of the
// signal cycle, so per-vehicle recomputation would be wasted work.
// Concurrent identical requests are additionally coalesced so a thundering
// herd runs the optimizer once, not once per vehicle.
package cloud

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"

	"evvo/internal/dp"
	"evvo/internal/ev"
	"evvo/internal/profile"
	"evvo/internal/queue"
	"evvo/internal/road"
)

// Variant selects the optimizer flavour.
type Variant string

// Supported optimizer variants.
const (
	// VariantQueueAware is the paper's method: arrivals constrained to
	// zero-queue windows.
	VariantQueueAware Variant = "queue-aware"
	// VariantGreen is the prior DP: arrivals constrained to green phases.
	VariantGreen Variant = "green"
	// VariantUnconstrained ignores signals (Ozatay-style baseline).
	VariantUnconstrained Variant = "unconstrained"
)

// Request is the optimize-request payload.
type Request struct {
	// Route names a registered route (required).
	Route string `json:"route"`
	// DepartTime is the absolute departure time in seconds (signal phases
	// are anchored at t = 0).
	DepartTime float64 `json:"departTime"`
	// Variant selects the optimizer (default queue-aware).
	Variant Variant `json:"variant,omitempty"`
	// ArrivalRateVehPerHour overrides the cloud's arrival-rate estimate
	// for queue prediction (optional, > 0 to take effect).
	ArrivalRateVehPerHour float64 `json:"arrivalRateVehPerHour,omitempty"`
}

// PointJSON is one trajectory sample.
type PointJSON struct {
	T   float64 `json:"t"`
	Pos float64 `json:"pos"`
	V   float64 `json:"v"`
}

// ArrivalJSON reports one signal crossing.
type ArrivalJSON struct {
	Name       string  `json:"name"`
	PositionM  float64 `json:"positionM"`
	ArrivalSec float64 `json:"arrivalSec"`
	InWindow   bool    `json:"inWindow"`
}

// Response is the optimize-response payload.
type Response struct {
	Profile   []PointJSON   `json:"profile"`
	ChargeAh  float64       `json:"chargeAh"`
	TripSec   float64       `json:"tripSec"`
	Arrivals  []ArrivalJSON `json:"arrivals"`
	Penalized bool          `json:"penalized"`
	Cached    bool          `json:"cached"`
}

// Stats are service counters.
type Stats struct {
	Requests  int64 `json:"requests"`
	CacheHits int64 `json:"cacheHits"`
	Errors    int64 `json:"errors"`
}

// ServerConfig parameterizes the cloud service.
type ServerConfig struct {
	// Vehicle is the EV model used for optimization (default SparkEV).
	Vehicle ev.Params
	// QueueParams parameterize zero-queue-window prediction (default
	// US25Params).
	QueueParams queue.Params
	// ArrivalRate estimates V_in (veh/s) at a signal for a departure time;
	// requests may override it. Default: the paper's measured 153 veh/h.
	ArrivalRate func(c road.Control, departTime float64) float64
	// DPTemplate provides grid/penalty defaults for the optimizer; Route,
	// DepartTime and Windows are filled per request.
	DPTemplate dp.Config
	// CacheDepartBucketSec groups departures for caching (default 5 s).
	CacheDepartBucketSec float64
	// MaxCacheEntries bounds the cache (default 1024).
	MaxCacheEntries int
}

// Server is the vehicular-cloud HTTP handler. Create with NewServer and
// mount via Handler.
type Server struct {
	cfg      ServerConfig
	mu       sync.Mutex
	routes   map[string]*road.Route
	cache    map[string]*Response
	order    []string // FIFO eviction order
	inflight map[string]*inflightCall
	stats    Stats
}

// inflightCall coalesces concurrent optimize requests for one cache key:
// the first arrival (the leader) runs the DP, later arrivals wait on done
// and share the result.
type inflightCall struct {
	done chan struct{}
	resp *Response
	err  error
}

// optimizeDP indirects dp.Optimize so tests can count or stub solver runs.
var optimizeDP = dp.Optimize

// NewServer builds a Server with the US-25 route pre-registered.
func NewServer(cfg ServerConfig) (*Server, error) {
	if (cfg.Vehicle == ev.Params{}) {
		cfg.Vehicle = ev.SparkEV()
	}
	if err := cfg.Vehicle.Validate(); err != nil {
		return nil, fmt.Errorf("cloud: %w", err)
	}
	if (cfg.QueueParams == queue.Params{}) {
		cfg.QueueParams = queue.US25Params()
	}
	if err := cfg.QueueParams.Validate(); err != nil {
		return nil, fmt.Errorf("cloud: %w", err)
	}
	if cfg.ArrivalRate == nil {
		rate := queue.VehPerHour(153)
		cfg.ArrivalRate = func(road.Control, float64) float64 { return rate }
	}
	if cfg.CacheDepartBucketSec == 0 {
		cfg.CacheDepartBucketSec = 5
	}
	if cfg.CacheDepartBucketSec < 0 {
		return nil, fmt.Errorf("cloud: cache bucket %.1f must be non-negative", cfg.CacheDepartBucketSec)
	}
	if cfg.MaxCacheEntries == 0 {
		cfg.MaxCacheEntries = 1024
	}
	s := &Server{
		cfg:      cfg,
		routes:   map[string]*road.Route{"us25": road.US25()},
		cache:    make(map[string]*Response),
		inflight: make(map[string]*inflightCall),
	}
	return s, nil
}

// RegisterRoute adds a named route.
func (s *Server) RegisterRoute(name string, r *road.Route) error {
	if name == "" || r == nil {
		return fmt.Errorf("cloud: route registration needs a name and a route")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.routes[name]; ok {
		return fmt.Errorf("cloud: route %q already registered", name)
	}
	s.routes[name] = r
	return nil
}

// Handler returns the HTTP handler for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/health", s.handleHealth)
	mux.HandleFunc("GET /v1/routes", s.handleRoutes)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("POST /v1/advise", s.handleAdvise)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleRoutes(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.routes))
	for name := range s.routes {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string][]string{"routes": names})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.stats.Requests++
	s.mu.Unlock()

	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return
	}
	if req.Variant == "" {
		req.Variant = VariantQueueAware
	}
	switch req.Variant {
	case VariantQueueAware, VariantGreen, VariantUnconstrained:
	default:
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("unknown variant %q", req.Variant))
		return
	}
	if req.DepartTime < 0 {
		s.fail(w, http.StatusBadRequest, "departTime must be non-negative")
		return
	}
	if req.ArrivalRateVehPerHour < 0 {
		s.fail(w, http.StatusBadRequest, "arrivalRateVehPerHour must be non-negative")
		return
	}

	s.mu.Lock()
	route, ok := s.routes[req.Route]
	s.mu.Unlock()
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Sprintf("unknown route %q", req.Route))
		return
	}

	key := s.cacheKey(req)
	s.mu.Lock()
	if resp, ok := s.cache[key]; ok {
		s.stats.CacheHits++
		s.mu.Unlock()
		cached := *resp
		cached.Cached = true
		writeJSON(w, http.StatusOK, &cached)
		return
	}
	if c, ok := s.inflight[key]; ok {
		// A twin request is already computing this key; wait for it
		// instead of running the DP again.
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			s.fail(w, http.StatusUnprocessableEntity, c.err.Error())
			return
		}
		s.mu.Lock()
		s.stats.CacheHits++
		s.mu.Unlock()
		cached := *c.resp
		cached.Cached = true
		writeJSON(w, http.StatusOK, &cached)
		return
	}
	c := &inflightCall{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	resp, err := s.optimize(route, req)
	c.resp, c.err = resp, err
	s.mu.Lock()
	delete(s.inflight, key)
	if err == nil {
		if len(s.cache) >= s.cfg.MaxCacheEntries && len(s.order) > 0 {
			delete(s.cache, s.order[0])
			s.order = s.order[1:]
		}
		s.cache[key] = resp
		s.order = append(s.order, key)
	}
	s.mu.Unlock()
	close(c.done)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) cacheKey(req Request) string {
	bucket := 0.0
	if s.cfg.CacheDepartBucketSec > 0 {
		// Floor, not int-truncation: truncation would fold buckets -1 and
		// 0 together around zero (and overflows int for huge times).
		bucket = math.Floor(req.DepartTime / s.cfg.CacheDepartBucketSec)
	}
	return fmt.Sprintf("%s|%s|%g|%g", req.Route, req.Variant, bucket, req.ArrivalRateVehPerHour)
}

func (s *Server) optimize(route *road.Route, req Request) (*Response, error) {
	cfg := s.cfg.DPTemplate
	cfg.Route = route
	cfg.Vehicle = s.cfg.Vehicle
	cfg.DepartTime = req.DepartTime
	if cfg.MaxTripSec == 0 {
		cfg.MaxTripSec = 600
	}
	horizon := req.DepartTime + cfg.MaxTripSec + 120

	switch req.Variant {
	case VariantGreen:
		cfg.Windows = dp.GreenWindows(req.DepartTime, horizon)
	case VariantQueueAware:
		rate := s.cfg.ArrivalRate
		if req.ArrivalRateVehPerHour > 0 {
			vin := queue.VehPerHour(req.ArrivalRateVehPerHour)
			rate = func(road.Control, float64) float64 { return vin }
		}
		wf, err := dp.QueueAwareWindows(s.cfg.QueueParams,
			func(c road.Control) float64 { return rate(c, req.DepartTime) },
			req.DepartTime, horizon)
		if err != nil {
			return nil, err
		}
		cfg.Windows = wf
	case VariantUnconstrained:
		cfg.Windows = nil
	}

	res, err := optimizeDP(cfg)
	if err != nil {
		return nil, err
	}
	out := &Response{
		ChargeAh:  res.ChargeAh,
		TripSec:   res.TripSec,
		Penalized: res.Penalized,
	}
	for _, p := range res.Profile.Points() {
		out.Profile = append(out.Profile, PointJSON{T: p.T, Pos: p.Pos, V: p.V})
	}
	for _, a := range res.Arrivals {
		out.Arrivals = append(out.Arrivals, ArrivalJSON{
			Name: a.Name, PositionM: a.PositionM, ArrivalSec: a.ArrivalSec, InWindow: a.InWindow,
		})
	}
	return out, nil
}

func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.mu.Lock()
	s.stats.Errors++
	s.mu.Unlock()
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encoding errors past the header cannot be reported to the client.
	_ = json.NewEncoder(w).Encode(v)
}

// AdviseRequest asks the cloud when to depart within a window.
type AdviseRequest struct {
	// Route names a registered route (required).
	Route string `json:"route"`
	// EarliestDepart and LatestDepart bound the candidate departures (s).
	EarliestDepart float64 `json:"earliestDepart"`
	LatestDepart   float64 `json:"latestDepart"`
	// StepSec spaces the candidates (default 10 s).
	StepSec float64 `json:"stepSec,omitempty"`
	// Variant selects the optimizer (default queue-aware).
	Variant Variant `json:"variant,omitempty"`
	// ArrivalRateVehPerHour optionally overrides the arrival-rate estimate.
	ArrivalRateVehPerHour float64 `json:"arrivalRateVehPerHour,omitempty"`
}

// AdviseOption summarizes one candidate departure.
type AdviseOption struct {
	DepartTime float64 `json:"departTime"`
	ChargeAh   float64 `json:"chargeAh"`
	TripSec    float64 `json:"tripSec"`
	Penalized  bool    `json:"penalized"`
}

// AdviseResponse carries the evaluated candidates and the recommendation.
type AdviseResponse struct {
	Options []AdviseOption `json:"options"`
	// Best is the recommended departure (lowest charge among
	// non-penalized plans).
	Best AdviseOption `json:"best"`
}

// maxAdviseCandidates bounds the sweep size per request.
const maxAdviseCandidates = 64

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.stats.Requests++
	s.mu.Unlock()

	var req AdviseRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return
	}
	if req.StepSec == 0 {
		req.StepSec = 10
	}
	if req.Variant == "" {
		req.Variant = VariantQueueAware
	}
	switch {
	case req.StepSec <= 0:
		s.fail(w, http.StatusBadRequest, "stepSec must be positive")
		return
	case req.EarliestDepart < 0 || req.LatestDepart < req.EarliestDepart:
		s.fail(w, http.StatusBadRequest, "departure window invalid")
		return
	case (req.LatestDepart-req.EarliestDepart)/req.StepSec > maxAdviseCandidates:
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("window spans more than %d candidates; widen stepSec", maxAdviseCandidates))
		return
	case req.ArrivalRateVehPerHour < 0:
		s.fail(w, http.StatusBadRequest, "arrivalRateVehPerHour must be non-negative")
		return
	}
	switch req.Variant {
	case VariantQueueAware, VariantGreen, VariantUnconstrained:
	default:
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("unknown variant %q", req.Variant))
		return
	}
	s.mu.Lock()
	route, ok := s.routes[req.Route]
	s.mu.Unlock()
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Sprintf("unknown route %q", req.Route))
		return
	}

	resp := &AdviseResponse{}
	bestIdx, bestCharge := -1, 0.0
	for depart := req.EarliestDepart; depart <= req.LatestDepart+1e-9; depart += req.StepSec {
		one, err := s.optimize(route, Request{
			Route: req.Route, DepartTime: depart, Variant: req.Variant,
			ArrivalRateVehPerHour: req.ArrivalRateVehPerHour,
		})
		if err != nil {
			s.fail(w, http.StatusUnprocessableEntity, fmt.Sprintf("depart %.0f s: %v", depart, err))
			return
		}
		opt := AdviseOption{
			DepartTime: depart, ChargeAh: one.ChargeAh,
			TripSec: one.TripSec, Penalized: one.Penalized,
		}
		resp.Options = append(resp.Options, opt)
		better := bestIdx < 0 ||
			(!opt.Penalized && resp.Options[bestIdx].Penalized) ||
			(opt.Penalized == resp.Options[bestIdx].Penalized && opt.ChargeAh < bestCharge)
		if better {
			bestIdx, bestCharge = len(resp.Options)-1, opt.ChargeAh
		}
	}
	resp.Best = resp.Options[bestIdx]
	writeJSON(w, http.StatusOK, resp)
}

// ToProfile converts a Response's trajectory back into a profile.Profile.
func (r *Response) ToProfile() (*profile.Profile, error) {
	pts := make([]profile.Point, 0, len(r.Profile))
	for _, p := range r.Profile {
		pts = append(pts, profile.Point{T: p.T, Pos: p.Pos, V: p.V})
	}
	return profile.New(pts)
}
