// Package cloud implements the "vehicular cloud" computing framework the
// paper builds on (references [6], [7]): EVs upload their state (route and
// departure time) and the cloud computes and returns the optimal velocity
// profile, so the on-board unit does not run the DP itself.
//
// The service is a JSON-over-HTTP API:
//
//	GET  /v1/health          liveness probe
//	GET  /v1/routes          registered route names
//	GET  /v1/stats           request/cache/robustness counters
//	POST /v1/optimize        compute an optimal profile
//	POST /v1/advise          sweep departure times, recommend the best
//
// Identical requests within the same departure bucket are served from an
// in-memory cache: queue predictions only change at the resolution of the
// signal cycle, so per-vehicle recomputation would be wasted work.
// Concurrent identical requests are additionally coalesced so a thundering
// herd runs the optimizer once, not once per vehicle.
//
// The service is built to fail soft (DESIGN.md §8). Every request carries
// a compute deadline; admission control sheds excess load with 429 +
// Retry-After instead of queueing unboundedly; handler panics become 500s
// without killing the process; and when the paper's full method cannot be
// computed in time the response degrades down a ladder — default arrival
// rate when the predictor fails, a coarse-grid approximate solve when the
// exact solve blows its budget (if CoarseLadderFactor is set), the
// green-window variant below that, and finally a stale cache entry — each
// annotated with degraded/degradedReason. The degraded answers are either
// the paper's own method on a bracketed grid (DESIGN.md §12) or the
// paper's baselines (Ozatay-style and green-signal DP): valid, just less
// efficient, which is the right trade for a driver already rolling toward
// the first intersection.
package cloud

import (
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"evvo/internal/dp"
	"evvo/internal/ev"
	"evvo/internal/metrics"
	"evvo/internal/par"
	"evvo/internal/profile"
	"evvo/internal/queue"
	"evvo/internal/road"
	"evvo/internal/stable"
	"evvo/internal/units"
)

// Variant selects the optimizer flavour.
type Variant string

// Supported optimizer variants.
const (
	// VariantQueueAware is the paper's method: arrivals constrained to
	// zero-queue windows.
	VariantQueueAware Variant = "queue-aware"
	// VariantGreen is the prior DP: arrivals constrained to green phases.
	VariantGreen Variant = "green"
	// VariantUnconstrained ignores signals (Ozatay-style baseline).
	VariantUnconstrained Variant = "unconstrained"
)

// Degradation reasons reported in Response.DegradedReason and counted per
// label in Stats.DegradedByReason.
const (
	// DegradedPredictorFallback: the arrival-rate predictor failed; the
	// zero-queue windows were computed from the configured fallback rate.
	DegradedPredictorFallback = "predictor-default-rate"
	// DegradedCoarseGrid: the exact solve exceeded its compute budget; the
	// response is the requested variant solved through the coarse-to-fine
	// fast path (DESIGN.md §12) at the configured CoarseLadderFactor.
	DegradedCoarseGrid = "coarse-grid"
	// DegradedGreenFallback: the queue-aware solve exceeded its compute
	// budget; the response is the green-window variant.
	DegradedGreenFallback = "green-fallback"
	// DegradedStaleCache: nothing could be computed in time; the response
	// is a previously cached plan for the same route (possibly another
	// departure bucket or variant).
	DegradedStaleCache = "stale-cache"
)

// Request is the optimize-request payload.
type Request struct {
	// Route names a registered route (required).
	Route string `json:"route"`
	// DepartTime is the absolute departure time in seconds (signal phases
	// are anchored at t = 0).
	DepartTime float64 `json:"departTime"`
	// Variant selects the optimizer (default queue-aware).
	Variant Variant `json:"variant,omitempty"`
	// ArrivalRateVehPerHour overrides the cloud's arrival-rate estimate
	// for queue prediction (optional, > 0 to take effect).
	ArrivalRateVehPerHour float64 `json:"arrivalRateVehPerHour,omitempty"`
}

// PointJSON is one trajectory sample.
type PointJSON struct {
	T   float64 `json:"t"`
	Pos float64 `json:"pos"`
	V   float64 `json:"v"`
}

// ArrivalJSON reports one signal crossing.
type ArrivalJSON struct {
	Name       string  `json:"name"`
	PositionM  float64 `json:"positionM"`
	ArrivalSec float64 `json:"arrivalSec"`
	InWindow   bool    `json:"inWindow"`
}

// Response is the optimize-response payload.
type Response struct {
	Profile   []PointJSON   `json:"profile"`
	ChargeAh  float64       `json:"chargeAh"`
	TripSec   float64       `json:"tripSec"`
	Arrivals  []ArrivalJSON `json:"arrivals"`
	Penalized bool          `json:"penalized"`
	Cached    bool          `json:"cached"`
	// Degraded is true when the service could not deliver the full
	// queue-aware answer and fell down the degradation ladder;
	// DegradedReason says which rung (see the Degraded* constants). A
	// degraded plan is still drivable — it is one of the paper's baseline
	// methods — just less efficient.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degradedReason,omitempty"`
	// Refined is true when the plan came from the coarse-to-fine
	// approximate-DP fast path (the coarse-grid ladder rung, or a
	// DPTemplate with CoarseRefine configured) rather than the exact DP.
	Refined bool `json:"refined,omitempty"`
	// ServedBy names the cluster node that computed this response (empty
	// on standalone servers). On a forwarded request it names the owner
	// that answered, not the node the client dialed — which is how tests
	// and operators observe forwarding and failover.
	ServedBy string `json:"servedBy,omitempty"`
}

// Stats are service counters.
type Stats struct {
	Requests  int64 `json:"requests"`
	CacheHits int64 `json:"cacheHits"`
	Errors    int64 `json:"errors"`
	// Shed counts requests rejected by admission control (429).
	Shed int64 `json:"shed"`
	// Degraded counts responses served off the degradation ladder, with a
	// per-reason breakdown.
	Degraded         int64            `json:"degraded"`
	DegradedByReason map[string]int64 `json:"degradedByReason,omitempty"`
	// PanicsRecovered counts handler panics converted to 500s.
	PanicsRecovered int64 `json:"panicsRecovered"`
	// RetryAfterIssued counts responses that carried a Retry-After header
	// (shed and transient-failure responses).
	RetryAfterIssued int64 `json:"retryAfterIssued"`
	// DPFullSolves counts monolithic full-route DP runs; DPSegmentSolves
	// counts per-segment table solves; StitchedServes counts responses
	// assembled from shared segment tables instead of a full solve. The
	// fleet-reuse ratio is requests : (full + segment solves).
	DPFullSolves    int64 `json:"dpFullSolves"`
	DPSegmentSolves int64 `json:"dpSegmentSolves"`
	StitchedServes  int64 `json:"stitchedServes"`
	// BatchItems counts individual requests carried by /v1/optimize/batch.
	BatchItems int64 `json:"batchItems"`
	// LatencyMs summarizes compute-endpoint latency (admitted requests).
	LatencyMs LatencyStats `json:"latencyMs"`
	// Cluster reports the cluster runtime's counters (nil standalone).
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// LatencyStats are histogram-derived latency quantiles in milliseconds.
type LatencyStats struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// ServerConfig parameterizes the cloud service.
type ServerConfig struct {
	// Vehicle is the EV model used for optimization (default SparkEV).
	Vehicle ev.Params
	// QueueParams parameterize zero-queue-window prediction (default
	// US25Params).
	QueueParams queue.Params
	// ArrivalRate estimates V_in (veh/s) at a signal for a departure time —
	// in deployment the SAE traffic predictor; requests may override it.
	// It may fail: the service then degrades to FallbackRateVehPerHour
	// instead of failing the request. Default: the paper's measured
	// 153 veh/h, never failing.
	ArrivalRate func(c road.Control, departTime float64) (float64, error)
	// FallbackRateVehPerHour is the degraded-mode arrival rate used when
	// ArrivalRate fails (default 153, the paper's measurement).
	FallbackRateVehPerHour float64
	// DPTemplate provides grid/penalty defaults for the optimizer; Route,
	// DepartTime and Windows are filled per request.
	DPTemplate dp.Config
	// CacheDepartBucketSec groups departures for caching (default 5 s).
	CacheDepartBucketSec float64
	// MaxCacheEntries bounds the cache (default 1024; negative is a config
	// error, not a one-entry cache).
	MaxCacheEntries int
	// SegmentTables enables segment-level DP reuse (DESIGN.md §11): each
	// route is decomposed at its signals and solved once into per-segment
	// value tables; requests are then stitched from the shared tables
	// instead of running a full-route DP each. Off by default — the
	// monolithic path stays the reference.
	SegmentTables bool
	// MaxBatchSize bounds the number of requests accepted by
	// POST /v1/optimize/batch (default 256).
	MaxBatchSize int

	// DefaultDeadlineSec is the per-request compute deadline (default 30;
	// negative disables deadlines entirely).
	DefaultDeadlineSec float64
	// MaxDeadlineSec caps the client's X-Deadline-Ms override (default
	// DefaultDeadlineSec). Clients can only tighten the deadline.
	MaxDeadlineSec float64
	// DegradeBudgetFrac is the fraction of the request deadline granted to
	// the full queue-aware method before the ladder degrades to the green
	// variant; the remainder is the fallback's budget (default 0.5; must
	// be in (0, 1]; 1 reserves nothing).
	DegradeBudgetFrac float64
	// CoarseLadderFactor, when ≥ 2, adds a rung to the degradation ladder
	// between the exact solve and the green fallback: the requested variant
	// re-solved through the coarse-to-fine fast path (dp.CoarseRefine) at
	// this velocity-grid factor. The rung costs roughly 1/Factor² of the
	// exact solve and stays within the documented ε of its cost, so it is
	// tried before abandoning the queue-aware windows altogether. 0
	// disables the rung; 1 and negatives are config errors.
	CoarseLadderFactor int

	// MaxInFlight bounds concurrently computing optimize/advise requests
	// (default 2×GOMAXPROCS; negative disables admission control).
	MaxInFlight int
	// MaxQueueDepth bounds requests waiting for an in-flight slot (default
	// 2×MaxInFlight; negative sheds immediately when slots are full).
	MaxQueueDepth int
	// QueueWaitSec is the longest a queued request waits for a slot before
	// being shed (default 0.25 s).
	QueueWaitSec float64
	// RetryAfterSec is the Retry-After value advertised on shed/transient
	// responses, rounded up to whole seconds (default 1).
	RetryAfterSec float64
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64

	// Cluster, when non-nil, joins this server to a cloudd cluster:
	// segment-table ownership is sharded across the members by consistent
	// hashing, built tables are replicated to ring successors, requests for
	// routes this node does not own are forwarded to the acting owner, and
	// peer death triggers automatic ownership takeover (DESIGN.md §13).
	// Requires SegmentTables — the tables are the unit of sharding.
	Cluster *ClusterConfig

	// Faults injects deterministic failures for chaos tests (see faults.go).
	Faults Faults
}

// Server is the vehicular-cloud HTTP handler. Create with NewServer and
// mount via Handler.
type Server struct {
	cfg      ServerConfig
	mu       sync.Mutex
	routes   map[string]*road.Route
	cache    map[string]*Response
	order    []string // FIFO eviction order
	inflight map[string]*inflightCall

	// segTables holds completed segment-table builds per route name;
	// tableBuilds coalesces concurrent builds the way inflight coalesces
	// solves. Tables key on the registered *road.Route identity, so a
	// route's tables never go stale: routes are immutable once registered.
	segTables   map[string]*dp.RouteTables
	tableBuilds map[string]*tableCall

	sem    chan struct{} // admission slots; nil = admission disabled
	queued atomic.Int64  // requests waiting for a slot

	// peers is the cluster runtime (nil when Cluster is unset); draining
	// flips /v1/ready to 503 ahead of the HTTP shutdown so load balancers
	// stop routing here while in-flight requests finish.
	peers    *peerGroup
	draining atomic.Bool

	requests, cacheHits, errs      metrics.Counter
	shed, panics, retryAfterIssued metrics.Counter
	dpFullSolves, dpSegmentSolves  metrics.Counter
	stitchedServes, batchItems     metrics.Counter
	degraded                       metrics.LabeledCounter
	latency                        *metrics.Histogram
}

// inflightCall coalesces concurrent optimize requests for one cache key:
// the first arrival (the leader) runs the DP, later arrivals wait on done
// and share the result. A leader that dies of its *own* context's
// cancellation publishes that context error; followers with live contexts
// do not inherit it — they loop back and elect a new leader (see
// handleOptimize), so one impatient client cannot fail a coalesced herd.
type inflightCall struct {
	done chan struct{}
	resp *Response
	err  error
}

// tableCall coalesces concurrent segment-table builds for one route, with
// the same leader re-election discipline as inflightCall: a leader that
// dies of its own context's cancellation does not poison followers whose
// contexts are still live.
type tableCall struct {
	done chan struct{}
	rt   *dp.RouteTables
	err  error
}

// optimizeDP indirects dp.OptimizeCtx so tests can count, stub or stall
// solver runs.
var optimizeDP = dp.OptimizeCtx

// NewServer builds a Server with the US-25 route pre-registered.
func NewServer(cfg ServerConfig) (*Server, error) {
	if (cfg.Vehicle == ev.Params{}) {
		cfg.Vehicle = ev.SparkEV()
	}
	if err := cfg.Vehicle.Validate(); err != nil {
		return nil, fmt.Errorf("cloud: %w", err)
	}
	if (cfg.QueueParams == queue.Params{}) {
		cfg.QueueParams = queue.US25Params()
	}
	if err := cfg.QueueParams.Validate(); err != nil {
		return nil, fmt.Errorf("cloud: %w", err)
	}
	if cfg.ArrivalRate == nil {
		rate := queue.VehPerHour(153)
		cfg.ArrivalRate = func(road.Control, float64) (float64, error) { return rate, nil }
	}
	if cfg.FallbackRateVehPerHour == 0 {
		cfg.FallbackRateVehPerHour = 153
	}
	if cfg.FallbackRateVehPerHour < 0 {
		return nil, fmt.Errorf("cloud: fallback rate %.1f must be positive", cfg.FallbackRateVehPerHour)
	}
	if cfg.CacheDepartBucketSec == 0 {
		cfg.CacheDepartBucketSec = 5
	}
	if cfg.CacheDepartBucketSec < 0 {
		return nil, fmt.Errorf("cloud: cache bucket %.1f must be non-negative", cfg.CacheDepartBucketSec)
	}
	if cfg.MaxCacheEntries == 0 {
		cfg.MaxCacheEntries = 1024
	}
	if cfg.MaxCacheEntries < 0 {
		// A negative bound would make `len(cache) >= MaxCacheEntries` evict
		// on every store, silently degrading the cache to a single entry.
		return nil, fmt.Errorf("cloud: max cache entries %d must be non-negative", cfg.MaxCacheEntries)
	}
	if cfg.MaxBatchSize == 0 {
		cfg.MaxBatchSize = 256
	}
	if cfg.MaxBatchSize < 0 {
		return nil, fmt.Errorf("cloud: max batch size %d must be non-negative", cfg.MaxBatchSize)
	}
	if cfg.DefaultDeadlineSec == 0 {
		cfg.DefaultDeadlineSec = 30
	}
	if cfg.MaxDeadlineSec == 0 {
		cfg.MaxDeadlineSec = cfg.DefaultDeadlineSec
	}
	if cfg.DegradeBudgetFrac == 0 {
		cfg.DegradeBudgetFrac = 0.5
	}
	if cfg.DegradeBudgetFrac < 0 || cfg.DegradeBudgetFrac > 1 {
		return nil, fmt.Errorf("cloud: degrade budget fraction %.2f must be in (0, 1]", cfg.DegradeBudgetFrac)
	}
	if cfg.CoarseLadderFactor != 0 && cfg.CoarseLadderFactor < 2 {
		// Factor 1 would re-run the exact solve as its own "fallback" and
		// negatives are meaningless; both hide a misconfiguration.
		return nil, fmt.Errorf("cloud: coarse ladder factor %d must be 0 (off) or ≥ 2", cfg.CoarseLadderFactor)
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueueDepth == 0 {
		cfg.MaxQueueDepth = 2 * cfg.MaxInFlight
	}
	if cfg.MaxQueueDepth < 0 {
		cfg.MaxQueueDepth = 0
	}
	if cfg.QueueWaitSec == 0 {
		cfg.QueueWaitSec = 0.25
	}
	if cfg.QueueWaitSec < 0 {
		cfg.QueueWaitSec = 0
	}
	if cfg.RetryAfterSec <= 0 {
		cfg.RetryAfterSec = 1
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	s := &Server{
		cfg:         cfg,
		routes:      map[string]*road.Route{"us25": road.US25()},
		cache:       make(map[string]*Response),
		inflight:    make(map[string]*inflightCall),
		segTables:   make(map[string]*dp.RouteTables),
		tableBuilds: make(map[string]*tableCall),
		latency:     metrics.NewLatencyHistogram(),
	}
	if cfg.MaxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	if err := s.startCluster(); err != nil {
		return nil, err
	}
	return s, nil
}

// startCluster brings up the cluster runtime when configured: ring,
// detector, peer links, the heartbeat loop, and the boot warm-up that
// gates /v1/ready. It runs from NewServer, before any request exists, so
// the cluster lifetime is anchored to the server, not to a request.
func (s *Server) startCluster() error {
	if s.cfg.Cluster == nil {
		return nil
	}
	if !s.cfg.SegmentTables {
		return fmt.Errorf("cloud: cluster mode requires SegmentTables — the shared tables are the unit of sharding")
	}
	if err := s.cfg.Cluster.normalize(); err != nil {
		return err
	}
	pg, err := newPeerGroup(*s.cfg.Cluster, &s.cfg.Faults)
	if err != nil {
		return err
	}
	s.peers = pg
	pg.wg.Add(2)
	go pg.heartbeatLoop()
	go func() {
		defer pg.wg.Done()
		defer close(pg.ready)
		select {
		case <-pg.primed:
		case <-pg.ctx.Done():
			return
		}
		for _, name := range pg.cfg.WarmRoutes {
			route, ok := s.lookupRoute(name)
			if !ok {
				continue
			}
			if owner, _ := pg.actingOwner(name, time.Now()); owner != pg.self {
				continue
			}
			wctx, cancel := context.WithTimeout(pg.ctx, secToDur(s.cfg.DefaultDeadlineSec))
			_, _ = s.routeTables(wctx, name, s.tableCfg(route))
			cancel()
		}
	}()
	return nil
}

// Close stops the cluster runtime (heartbeats, replication pushes) and
// waits for its goroutines. Safe on servers without a cluster and safe to
// call more than once.
func (s *Server) Close() {
	if s.peers != nil {
		s.peers.close()
	}
}

// BeginDrain flips /v1/ready to 503 while /v1/health stays 200: the node
// is still alive — and keeps serving whatever arrives — but asks load
// balancers and peers to stop sending new work. Call it before the HTTP
// server's graceful Shutdown so the readiness flip precedes connection
// draining.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
}

// tableCfg is the DP config a route's segment tables are built (and
// imported) under: the server template pinned to the route and vehicle.
// Windows and departure time are per-request stitch inputs — they do not
// shape the tables — so peers converge on identical table grids no matter
// which request triggered the build.
func (s *Server) tableCfg(route *road.Route) dp.Config {
	cfg := s.cfg.DPTemplate
	cfg.Route = route
	cfg.Vehicle = s.cfg.Vehicle
	cfg.DepartTime = 0
	cfg.Windows = nil
	if cfg.MaxTripSec == 0 {
		cfg.MaxTripSec = 600
	}
	return cfg
}

// RegisterRoute adds a named route.
func (s *Server) RegisterRoute(name string, r *road.Route) error {
	if name == "" || r == nil {
		return fmt.Errorf("cloud: route registration needs a name and a route")
	}
	if strings.Contains(name, "|") {
		// "|" separates cache-key fields; allowing it would let one
		// route's keys shadow another's stale-cache lookups.
		return fmt.Errorf("cloud: route name %q must not contain '|'", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.routes[name]; ok {
		return fmt.Errorf("cloud: route %q already registered", name)
	}
	s.routes[name] = r
	return nil
}

// Handler returns the HTTP handler for the service: the route mux wrapped
// in the deadline and panic-recovery middleware, with admission control on
// the two compute endpoints (probes and counters always get through).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/health", s.handleHealth)
	mux.HandleFunc("GET /v1/ready", s.handleReady)
	mux.HandleFunc("GET /v1/routes", s.handleRoutes)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/tables/{routeKey}", s.handleTablesGet)
	mux.HandleFunc("PUT /v1/tables/{routeKey}", s.handleTablesPut)
	mux.Handle("POST /v1/optimize", s.admit(s.withLatency(http.HandlerFunc(s.handleOptimize))))
	mux.Handle("POST /v1/advise", s.admit(s.withLatency(http.HandlerFunc(s.handleAdvise))))
	mux.Handle("POST /v1/optimize/batch", s.admit(s.withLatency(http.HandlerFunc(s.handleBatch))))
	return s.withRecover(s.withDeadline(mux))
}

// withLatency records admitted compute-request latency into the service
// histogram. It sits inside admit so shed requests (sub-millisecond 429s)
// do not skew the quantiles downward.
func (s *Server) withLatency(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		s.latency.Observe(units.SecToMs(time.Since(start).Seconds()))
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady serves GET /v1/ready — readiness, distinct from liveness:
// a draining or still-joining node answers 503 here while /v1/health stays
// 200, so orchestrators keep the process but route traffic elsewhere.
// Standalone servers (no cluster) are ready whenever they are not
// draining.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if pg := s.peers; pg != nil && !pg.clusterReady() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "joining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleTablesGet serves GET /v1/tables/{routeKey}: the route's segment
// tables in gob wire form, for peer fetches. A node only serves (and
// builds on demand) tables for keys it currently acts as owner of —
// otherwise two cold non-owners could ping-pong fetches between them.
func (s *Server) handleTablesGet(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.SegmentTables {
		s.fail(w, http.StatusNotFound, "segment tables disabled on this node")
		return
	}
	name := r.PathValue("routeKey")
	route, ok := s.lookupRoute(name)
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Sprintf("unknown route %q", name))
		return
	}
	s.mu.Lock()
	rt := s.segTables[name]
	s.mu.Unlock()
	if rt == nil {
		if pg := s.peers; pg != nil {
			if owner, _ := pg.actingOwner(name, time.Now()); owner != pg.self {
				s.fail(w, http.StatusNotFound, fmt.Sprintf("node %s does not own tables for %q", pg.self, name))
				return
			}
		}
		var err error
		rt, err = s.routeTables(r.Context(), name, s.tableCfg(route))
		if err != nil {
			s.optimizeError(w, err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	// Encoding errors past the first byte cannot be reported; the reader's
	// gob decoder surfaces the truncation.
	_ = gob.NewEncoder(w).Encode(rt.Export())
}

// handleTablesPut serves PUT /v1/tables/{routeKey}: the replication
// receive path. The payload is imported — fingerprint-verified against
// this node's own route and grid config — and stored only if the route's
// tables are not already warm; an import failure is the sender's problem,
// never this node's, so it answers 422 and keeps serving.
func (s *Server) handleTablesPut(w http.ResponseWriter, r *http.Request) {
	pg := s.peers
	if pg == nil || !s.cfg.SegmentTables {
		s.fail(w, http.StatusNotFound, "not a cluster node")
		return
	}
	name := r.PathValue("routeKey")
	route, ok := s.lookupRoute(name)
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Sprintf("unknown route %q", name))
		return
	}
	var wire dp.TablesWire
	if err := gob.NewDecoder(io.LimitReader(r.Body, pg.cfg.MaxTableBytes)).Decode(&wire); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("decoding replicated tables: %v", err))
		return
	}
	rt, err := dp.ImportRouteTables(s.tableCfg(route), &wire)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.mu.Lock()
	if _, warm := s.segTables[name]; !warm {
		s.segTables[name] = rt
	}
	s.mu.Unlock()
	pg.replRecv.Inc()
	writeJSON(w, http.StatusOK, map[string]string{"status": "stored"})
}

func (s *Server) handleRoutes(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	names := stable.SortedKeys(s.routes)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string][]string{"routes": names})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, Stats{
		Requests:         s.requests.Value(),
		CacheHits:        s.cacheHits.Value(),
		Errors:           s.errs.Value(),
		Shed:             s.shed.Value(),
		Degraded:         s.degraded.Total(),
		DegradedByReason: s.degraded.Snapshot(),
		PanicsRecovered:  s.panics.Value(),
		RetryAfterIssued: s.retryAfterIssued.Value(),
		DPFullSolves:     s.dpFullSolves.Value(),
		DPSegmentSolves:  s.dpSegmentSolves.Value(),
		StitchedServes:   s.stitchedServes.Value(),
		BatchItems:       s.batchItems.Value(),
		LatencyMs: LatencyStats{
			Count: s.latency.Count(),
			P50:   s.latency.Quantile(0.50),
			P95:   s.latency.Quantile(0.95),
			P99:   s.latency.Quantile(0.99),
		},
		Cluster: s.clusterStats(),
	})
}

// decodeJSON reads a bounded request body and decodes it strictly: unknown
// fields (e.g. the typo "departtime") are a 400, not a silent default, and
// bodies beyond MaxBodyBytes are cut off with a structured 400 instead of
// buffering without limit.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	err := dec.Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		return false
	}
	s.fail(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
	return false
}

// normalizeOptimize fills request defaults and validates fields, returning
// a non-zero HTTP status with a message on failure. Shared by the single,
// advise-sweep and batch entry points so the three stay in agreement.
func normalizeOptimize(req *Request) (int, string) {
	if req.Variant == "" {
		req.Variant = VariantQueueAware
	}
	switch req.Variant {
	case VariantQueueAware, VariantGreen, VariantUnconstrained:
	default:
		return http.StatusBadRequest, fmt.Sprintf("unknown variant %q", req.Variant)
	}
	if req.DepartTime < 0 {
		return http.StatusBadRequest, "departTime must be non-negative"
	}
	if req.ArrivalRateVehPerHour < 0 {
		return http.StatusBadRequest, "arrivalRateVehPerHour must be non-negative"
	}
	return 0, ""
}

func (s *Server) lookupRoute(name string) (*road.Route, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.routes[name]
	return r, ok
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()

	var req Request
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if code, msg := normalizeOptimize(&req); code != 0 {
		s.fail(w, code, msg)
		return
	}
	route, ok := s.lookupRoute(req.Route)
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Sprintf("unknown route %q", req.Route))
		return
	}

	// Cluster mode: a route this node neither owns nor has warm tables for
	// is forwarded to its acting owner; any forwarding trouble (loop guard,
	// open breaker, owner unreachable) falls through to local serving.
	if fwd := s.forwardOptimize(r.Context(), req, r.Header.Get(ForwardedByHeader)); fwd != nil {
		writeJSON(w, http.StatusOK, fwd)
		return
	}

	resp, err := s.optimizeCached(r.Context(), route, req)
	if err != nil {
		s.optimizeError(w, err)
		return
	}
	if pg := s.peers; pg != nil {
		// Annotate a copy: resp may alias a cache entry shared with
		// concurrent readers.
		out := *resp
		out.ServedBy = pg.self
		writeJSON(w, http.StatusOK, &out)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// optimizeCached serves one optimize request through the full serving
// stack: response cache, in-flight coalescing (with leader re-election),
// then the degradation-laddered solve. Every compute path — single
// optimize, advise sweeps and batch items — goes through here, so they all
// warm and hit the same cache.
func (s *Server) optimizeCached(ctx context.Context, route *road.Route, req Request) (*Response, error) {
	key := s.cacheKey(req)
	for {
		s.mu.Lock()
		if resp, ok := s.cache[key]; ok {
			s.cacheHits.Inc()
			s.mu.Unlock()
			cached := *resp
			cached.Cached = true
			return &cached, nil
		}
		if c, ok := s.inflight[key]; ok {
			// A twin request is already computing this key; wait for it
			// instead of running the DP again — but never past our own
			// context.
			s.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, fmt.Errorf("request abandoned while coalesced: %w", ctx.Err())
			}
			if c.err != nil {
				if isCtxErr(c.err) && ctx.Err() == nil {
					// The leader died of its own cancellation, not ours:
					// its deadline was tighter, or its client hung up.
					// Our context is live, so loop back and elect a new
					// leader (possibly us) rather than inherit the error.
					continue
				}
				return nil, c.err
			}
			s.cacheHits.Inc()
			cached := *c.resp
			cached.Cached = true
			return &cached, nil
		}
		c := &inflightCall{done: make(chan struct{})}
		s.inflight[key] = c
		s.mu.Unlock()

		resp, err := s.optimize(ctx, route, req)
		c.resp, c.err = resp, err
		s.mu.Lock()
		delete(s.inflight, key)
		// Degraded responses are not cached: the condition that forced the
		// degradation is transient, and a cached degraded plan would keep
		// serving the inferior baseline after the optimizer recovered.
		if err == nil && !resp.Degraded {
			if len(s.cache) >= s.cfg.MaxCacheEntries && len(s.order) > 0 {
				delete(s.cache, s.order[0])
				s.order = s.order[1:]
			}
			s.cache[key] = resp
			s.order = append(s.order, key)
		}
		s.mu.Unlock()
		close(c.done)
		return resp, err
	}
}

// optimizeError maps an optimize failure to a response: context errors are
// transient (the budget ran out with every ladder rung dry) and retryable;
// everything else is a 422 of the optimizer's own.
func (s *Server) optimizeError(w http.ResponseWriter, err error) {
	if isCtxErr(err) {
		s.failRetryable(w, "optimization did not complete within the deadline: "+err.Error())
		return
	}
	s.fail(w, http.StatusUnprocessableEntity, err.Error())
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (s *Server) cacheKey(req Request) string {
	bucket := 0.0
	if s.cfg.CacheDepartBucketSec > 0 {
		// Floor, not int-truncation: truncation would fold buckets -1 and
		// 0 together around zero (and overflows int for huge times).
		bucket = math.Floor(req.DepartTime / s.cfg.CacheDepartBucketSec)
	}
	return fmt.Sprintf("%s|%s|%g|%g", req.Route, req.Variant, bucket, req.ArrivalRateVehPerHour)
}

// optimize runs the degradation ladder for one request:
//
//	rung 0  full method, with the predictor falling back to the default
//	        arrival rate if it errors (degraded: predictor-default-rate)
//	rung 1  the same variant through the coarse-to-fine fast path when the
//	        exact solve exceeds its share of the deadline and
//	        CoarseLadderFactor is configured (degraded: coarse-grid)
//	rung 2  green-window variant when the queue-aware solve exceeds its
//	        share of the deadline (degraded: green-fallback)
//	rung 3  a stale cache entry for the same route (degraded: stale-cache)
//
// The coarse rung keeps the paper's queue-aware windows — it only brackets
// the velocity grid (DESIGN.md §12) — so it is tried first. Following
// Ozatay et al. (PAPERS.md), the lower rungs are the baselines the paper
// compares against: still-valid velocity profiles, just without the
// queue-aware (or any) signal timing — strictly better than an error for a
// vehicle that needs *a* profile now.
func (s *Server) optimize(ctx context.Context, route *road.Route, req Request) (*Response, error) {
	primary, cancel := s.primaryBudget(ctx, req.Variant)
	resp, err := s.runVariant(primary, route, req, req.Variant, false)
	if cancel != nil {
		cancel()
	}
	if err == nil {
		if resp.Degraded {
			s.degraded.Inc(resp.DegradedReason)
		}
		return resp, nil
	}
	if !isCtxErr(err) {
		return nil, err // genuine optimizer error; the ladder is for slowness
	}
	if ctx.Err() == nil && s.cfg.CoarseLadderFactor >= 2 {
		// The exact solve blew its budget but the request still has time:
		// re-solve the same variant on the bracketed grid, ~Factor² cheaper.
		c, cerr := s.runVariant(ctx, route, req, req.Variant, true)
		if cerr == nil {
			c.Degraded, c.DegradedReason = true, DegradedCoarseGrid
			s.degraded.Inc(DegradedCoarseGrid)
			return c, nil
		}
		if !isCtxErr(cerr) {
			return nil, cerr
		}
	}
	if ctx.Err() == nil && req.Variant == VariantQueueAware {
		// The full method blew its budget but the request still has time:
		// compute the green-window baseline on the remaining budget.
		g, gerr := s.runVariant(ctx, route, req, VariantGreen, false)
		if gerr == nil {
			g.Degraded, g.DegradedReason = true, DegradedGreenFallback
			s.degraded.Inc(DegradedGreenFallback)
			return g, nil
		}
		if !isCtxErr(gerr) {
			return nil, gerr
		}
	}
	if st := s.staleFor(req); st != nil {
		out := *st
		out.Cached = true
		out.Degraded, out.DegradedReason = true, DegradedStaleCache
		s.degraded.Inc(DegradedStaleCache)
		return &out, nil
	}
	return nil, err
}

// primaryBudget carves the full method's slice out of the request
// deadline, reserving the remainder for the degradation ladder. Variants
// below queue-aware have no cheaper fallback, so they get the whole
// deadline.
func (s *Server) primaryBudget(ctx context.Context, v Variant) (context.Context, context.CancelFunc) {
	if v != VariantQueueAware {
		return ctx, nil
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		return ctx, nil
	}
	budget := time.Duration(float64(time.Until(deadline)) * s.cfg.DegradeBudgetFrac)
	if budget <= 0 {
		return ctx, nil
	}
	return context.WithTimeout(ctx, budget)
}

// staleFor returns the freshest cached plan usable as a last-resort answer
// for req: same route and variant first (any departure bucket), then any
// variant for the route. Nil when the cache holds nothing for the route.
func (s *Server) staleFor(req Request) *Response {
	samePrefix := req.Route + "|" + string(req.Variant) + "|"
	anyPrefix := req.Route + "|"
	s.mu.Lock()
	defer s.mu.Unlock()
	var anyHit *Response
	for i := len(s.order) - 1; i >= 0; i-- {
		k := s.order[i]
		if strings.HasPrefix(k, samePrefix) {
			return s.cache[k]
		}
		if anyHit == nil && strings.HasPrefix(k, anyPrefix) {
			anyHit = s.cache[k]
		}
	}
	return anyHit
}

// arrivalRate resolves the per-control arrival-rate function for one
// request: an explicit request override wins; otherwise the configured
// predictor, degrading to the fallback rate (and flagging it) when the
// predictor — or the injected predictor fault — fails. The degraded flag
// is written from dp.OptimizeCtx's serial window-building phase, before
// any worker goroutine starts, so no synchronization is needed.
func (s *Server) arrivalRate(req Request, degraded *bool) func(road.Control) float64 {
	if req.ArrivalRateVehPerHour > 0 {
		vin := queue.VehPerHour(req.ArrivalRateVehPerHour)
		return func(road.Control) float64 { return vin }
	}
	fallback := queue.VehPerHour(s.cfg.FallbackRateVehPerHour)
	return func(c road.Control) float64 {
		if f := s.cfg.Faults.PredictorErr; f != nil {
			if err := f(); err != nil {
				*degraded = true
				return fallback
			}
		}
		v, err := s.cfg.ArrivalRate(c, req.DepartTime)
		if err != nil || v < 0 {
			*degraded = true
			return fallback
		}
		return v
	}
}

// runVariant executes one optimizer variant under ctx, applying the
// fault-injection seam and the predictor fallback. With coarse set it runs
// the coarse-grid ladder rung: the template's CoarseRefine is overridden
// with CoarseLadderFactor and the solve bypasses the segment-table path —
// the shared tables are keyed to the exact grid, and building coarse
// tables under a route's name would displace the exact ones for every
// later request.
func (s *Server) runVariant(ctx context.Context, route *road.Route, req Request, variant Variant, coarse bool) (*Response, error) {
	if f := s.cfg.Faults.OptimizeDelay; f != nil {
		if !sleepCtx(f(variant), ctx.Done()) {
			return nil, ctx.Err()
		}
	}
	cfg := s.cfg.DPTemplate
	cfg.Route = route
	cfg.Vehicle = s.cfg.Vehicle
	cfg.DepartTime = req.DepartTime
	if coarse {
		cfg.CoarseRefine = dp.CoarseRefine{Factor: s.cfg.CoarseLadderFactor}
	}
	if cfg.MaxTripSec == 0 {
		cfg.MaxTripSec = 600
	}
	horizon := req.DepartTime + cfg.MaxTripSec + 120

	predictorDegraded := false
	switch variant {
	case VariantGreen:
		cfg.Windows = dp.GreenWindows(req.DepartTime, horizon)
	case VariantQueueAware:
		rate := s.arrivalRate(req, &predictorDegraded)
		wf, err := dp.QueueAwareWindows(s.cfg.QueueParams, rate, req.DepartTime, horizon)
		if err != nil {
			return nil, err
		}
		cfg.Windows = wf
	case VariantUnconstrained:
		cfg.Windows = nil
	}

	var res *dp.Result
	var err error
	if coarse {
		s.dpFullSolves.Inc()
		res, err = optimizeDP(ctx, cfg)
	} else {
		res, err = s.solve(ctx, req.Route, cfg)
	}
	if err != nil {
		return nil, err
	}
	out := &Response{
		ChargeAh:  res.ChargeAh,
		TripSec:   res.TripSec,
		Penalized: res.Penalized,
		Refined:   res.Refined != nil,
	}
	for _, p := range res.Profile.Points() {
		out.Profile = append(out.Profile, PointJSON{T: p.T, Pos: p.Pos, V: p.V})
	}
	for _, a := range res.Arrivals {
		out.Arrivals = append(out.Arrivals, ArrivalJSON{
			Name: a.Name, PositionM: a.PositionM, ArrivalSec: a.ArrivalSec, InWindow: a.InWindow,
		})
	}
	if predictorDegraded {
		out.Degraded, out.DegradedReason = true, DegradedPredictorFallback
	}
	return out, nil
}

// solve runs the DP for one request config. With SegmentTables enabled the
// route's shared per-segment tables are built once (coalesced across
// concurrent requesters) and the answer is stitched from them; otherwise —
// or when the tables cannot serve this config — the monolithic solver
// runs. Only context errors propagate out of the table path: any other
// table failure falls back to the monolithic solver, which remains the
// reference implementation.
func (s *Server) solve(ctx context.Context, routeName string, cfg dp.Config) (*dp.Result, error) {
	if s.cfg.SegmentTables {
		rt, err := s.routeTables(ctx, routeName, cfg)
		if err == nil {
			res, serr := rt.StitchCtx(ctx, cfg)
			if serr == nil {
				s.stitchedServes.Inc()
				return res, nil
			}
			if isCtxErr(serr) {
				return nil, serr
			}
			// Stitch rejected the config (grid drift vs the built tables);
			// fall through to the full solve.
		} else if isCtxErr(err) {
			return nil, err
		}
	}
	s.dpFullSolves.Inc()
	return optimizeDP(ctx, cfg)
}

// routeTables returns the segment tables for a named route, building them
// under the first requester's context when absent. Concurrent builders
// coalesce with the same re-election rule as optimize coalescing: a
// leader cancelled by its own client does not fail followers whose
// contexts are live — one of them rebuilds. Completed tables are kept for
// the server's lifetime; they key on the registered route instance, which
// is immutable, so there is nothing to invalidate.
func (s *Server) routeTables(ctx context.Context, name string, cfg dp.Config) (*dp.RouteTables, error) {
	for {
		s.mu.Lock()
		if rt, ok := s.segTables[name]; ok {
			s.mu.Unlock()
			return rt, nil
		}
		if c, ok := s.tableBuilds[name]; ok {
			s.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, fmt.Errorf("table build abandoned while coalesced: %w", ctx.Err())
			}
			if c.err != nil {
				if isCtxErr(c.err) && ctx.Err() == nil {
					continue // leader died of its own cancellation; re-elect
				}
				return nil, c.err
			}
			return c.rt, nil
		}
		c := &tableCall{done: make(chan struct{})}
		s.tableBuilds[name] = c
		s.mu.Unlock()

		rt, err := s.acquireTables(ctx, name, cfg)
		c.rt, c.err = rt, err
		s.mu.Lock()
		delete(s.tableBuilds, name)
		if err == nil {
			s.segTables[name] = rt
		}
		s.mu.Unlock()
		close(c.done)
		return rt, err
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.errs.Inc()
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encoding errors past the header cannot be reported to the client.
	_ = json.NewEncoder(w).Encode(v)
}

// AdviseRequest asks the cloud when to depart within a window.
type AdviseRequest struct {
	// Route names a registered route (required).
	Route string `json:"route"`
	// EarliestDepart and LatestDepart bound the candidate departures (s).
	EarliestDepart float64 `json:"earliestDepart"`
	LatestDepart   float64 `json:"latestDepart"`
	// StepSec spaces the candidates (default 10 s).
	StepSec float64 `json:"stepSec,omitempty"`
	// Variant selects the optimizer (default queue-aware).
	Variant Variant `json:"variant,omitempty"`
	// ArrivalRateVehPerHour optionally overrides the arrival-rate estimate.
	ArrivalRateVehPerHour float64 `json:"arrivalRateVehPerHour,omitempty"`
}

// AdviseOption summarizes one candidate departure.
type AdviseOption struct {
	DepartTime float64 `json:"departTime"`
	ChargeAh   float64 `json:"chargeAh"`
	TripSec    float64 `json:"tripSec"`
	Penalized  bool    `json:"penalized"`
}

// AdviseResponse carries the evaluated candidates and the recommendation.
type AdviseResponse struct {
	Options []AdviseOption `json:"options"`
	// Best is the recommended departure (lowest charge among
	// non-penalized plans).
	Best AdviseOption `json:"best"`
	// Degraded is true when any candidate was served off the degradation
	// ladder (see Response.Degraded); the comparison across candidates is
	// then apples-to-oranges and the recommendation is best-effort.
	Degraded bool `json:"degraded,omitempty"`
}

// maxAdviseCandidates bounds the sweep size per request.
const maxAdviseCandidates = 64

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()

	var req AdviseRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.StepSec == 0 {
		req.StepSec = 10
	}
	if req.Variant == "" {
		req.Variant = VariantQueueAware
	}
	// Candidate count by index, not by float span: a window spanning exactly
	// k steps holds k+1 candidates, and the limit bounds the candidates.
	count := 0
	if req.StepSec > 0 && req.LatestDepart >= req.EarliestDepart {
		count = int(math.Floor((req.LatestDepart-req.EarliestDepart)/req.StepSec+1e-9)) + 1
	}
	switch {
	case req.StepSec <= 0:
		s.fail(w, http.StatusBadRequest, "stepSec must be positive")
		return
	case req.EarliestDepart < 0 || req.LatestDepart < req.EarliestDepart:
		s.fail(w, http.StatusBadRequest, "departure window invalid")
		return
	case count > maxAdviseCandidates:
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("window spans more than %d candidates; widen stepSec", maxAdviseCandidates))
		return
	case req.ArrivalRateVehPerHour < 0:
		s.fail(w, http.StatusBadRequest, "arrivalRateVehPerHour must be non-negative")
		return
	}
	switch req.Variant {
	case VariantQueueAware, VariantGreen, VariantUnconstrained:
	default:
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("unknown variant %q", req.Variant))
		return
	}
	s.mu.Lock()
	route, ok := s.routes[req.Route]
	s.mu.Unlock()
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Sprintf("unknown route %q", req.Route))
		return
	}

	ctx := r.Context()
	resp := &AdviseResponse{}
	bestIdx, bestCharge := -1, 0.0
	for i := 0; i < count; i++ {
		// Index-stepped, not accumulated: depart = earliest + i·step stays
		// on-grid over long windows where `depart += step` drifts (the same
		// float-accumulation class dp.SweepDepartures was cured of).
		depart := req.EarliestDepart + float64(i)*req.StepSec
		one, err := s.optimizeCached(ctx, route, Request{
			Route: req.Route, DepartTime: depart, Variant: req.Variant,
			ArrivalRateVehPerHour: req.ArrivalRateVehPerHour,
		})
		if err != nil {
			if isCtxErr(err) {
				s.failRetryable(w, fmt.Sprintf("advise sweep ran out of time at depart %.0f s: %v", depart, err))
				return
			}
			s.fail(w, http.StatusUnprocessableEntity, fmt.Sprintf("depart %.0f s: %v", depart, err))
			return
		}
		if one.Degraded {
			resp.Degraded = true
		}
		opt := AdviseOption{
			DepartTime: depart, ChargeAh: one.ChargeAh,
			TripSec: one.TripSec, Penalized: one.Penalized,
		}
		resp.Options = append(resp.Options, opt)
		better := bestIdx < 0 ||
			(!opt.Penalized && resp.Options[bestIdx].Penalized) ||
			(opt.Penalized == resp.Options[bestIdx].Penalized && opt.ChargeAh < bestCharge)
		if better {
			bestIdx, bestCharge = len(resp.Options)-1, opt.ChargeAh
		}
	}
	resp.Best = resp.Options[bestIdx]
	writeJSON(w, http.StatusOK, resp)
}

// BatchRequest carries a fleet's worth of optimize requests in one call.
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchItem is the outcome for one batch element, positionally matching
// BatchRequest.Requests: exactly one of Response and Error is set.
type BatchItem struct {
	Response *Response `json:"response,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// BatchResponse mirrors the request order.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// handleBatch serves POST /v1/optimize/batch: a fleet uploads many
// requests at once and each is served through the same cached/coalesced
// path as /v1/optimize, fanned across the cores. Combined with segment
// tables this turns a fleet sweep into one table build plus cheap
// stitches. Item failures are reported per item — one bad request does
// not void the rest of the fleet's answers.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()

	var breq BatchRequest
	if !s.decodeJSON(w, r, &breq) {
		return
	}
	if len(breq.Requests) == 0 {
		s.fail(w, http.StatusBadRequest, "batch needs at least one request")
		return
	}
	if len(breq.Requests) > s.cfg.MaxBatchSize {
		s.fail(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds limit %d; split the fleet", len(breq.Requests), s.cfg.MaxBatchSize))
		return
	}
	ctx := r.Context()
	out := BatchResponse{Results: make([]BatchItem, len(breq.Requests))}
	// The whole batch holds one admission slot; its internal fan-out is
	// bounded separately so a single big batch cannot seize every core.
	_ = par.ForEach(runtime.GOMAXPROCS(0), len(breq.Requests), func(i int) error {
		req := breq.Requests[i]
		s.batchItems.Inc()
		if code, msg := normalizeOptimize(&req); code != 0 {
			out.Results[i] = BatchItem{Error: msg}
			return nil
		}
		route, ok := s.lookupRoute(req.Route)
		if !ok {
			out.Results[i] = BatchItem{Error: fmt.Sprintf("unknown route %q", req.Route)}
			return nil
		}
		resp, err := s.optimizeCached(ctx, route, req)
		if err != nil {
			out.Results[i] = BatchItem{Error: err.Error()}
			return nil
		}
		out.Results[i] = BatchItem{Response: resp}
		return nil
	})
	if ctx.Err() != nil {
		// The batch's own deadline died mid-fan-out; partial results would
		// mix answers with timeouts, so report the whole call transient.
		s.failRetryable(w, "batch abandoned: "+ctx.Err().Error())
		return
	}
	writeJSON(w, http.StatusOK, &out)
}

// ToProfile converts a Response's trajectory back into a profile.Profile.
func (r *Response) ToProfile() (*profile.Profile, error) {
	pts := make([]profile.Point, 0, len(r.Profile))
	for _, p := range r.Profile {
		pts = append(pts, profile.Point{T: p.T, Pos: p.Pos, V: p.V})
	}
	return profile.New(pts)
}
