package cloud

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"evvo/internal/dp"
	"evvo/internal/ev"
	"evvo/internal/road"
)

// coarseDP keeps optimizer runs fast in tests.
func coarseDP() dp.Config {
	return dp.Config{DsM: 100, DvMS: 1, DtSec: 2, MaxTripSec: 600}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server, *Client) {
	t.Helper()
	// Generous admission headroom: these tests exercise the API surface,
	// not load shedding (chaos_test.go covers that with tight limits).
	s, err := NewServer(ServerConfig{DPTemplate: coarseDP(), MaxInFlight: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return s, ts, c
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Vehicle: ev.Params{MassKg: -1}}); err == nil {
		t.Fatal("invalid vehicle accepted")
	}
	if _, err := NewServer(ServerConfig{CacheDepartBucketSec: -1}); err == nil {
		t.Fatal("negative bucket accepted")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(""); err == nil {
		t.Fatal("empty URL accepted")
	}
}

func TestHealthAndRoutes(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	routes, err := c.Routes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 1 || routes[0] != "us25" {
		t.Fatalf("routes = %v, want [us25]", routes)
	}
}

func TestOptimizeQueueAware(t *testing.T) {
	_, _, c := newTestServer(t)
	resp, err := c.Optimize(context.Background(), Request{Route: "us25"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Penalized {
		t.Fatalf("queue-aware plan penalized: %+v", resp.Arrivals)
	}
	if len(resp.Arrivals) != 2 {
		t.Fatalf("arrivals = %+v, want 2 signals", resp.Arrivals)
	}
	if resp.ChargeAh <= 0 || resp.TripSec <= 0 {
		t.Fatalf("charge %v / trip %v not positive", resp.ChargeAh, resp.TripSec)
	}
	prof, err := resp.ToProfile()
	if err != nil {
		t.Fatal(err)
	}
	if prof.Distance() < 4199 {
		t.Fatalf("profile distance %v, want 4200", prof.Distance())
	}
}

func TestOptimizeVariants(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	for _, v := range []Variant{VariantQueueAware, VariantGreen, VariantUnconstrained} {
		resp, err := c.Optimize(ctx, Request{Route: "us25", Variant: v})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		// Arrivals are always reported as diagnostics; when unconstrained
		// they are all trivially in-window.
		if v == VariantUnconstrained {
			for _, a := range resp.Arrivals {
				if !a.InWindow {
					t.Fatalf("unconstrained arrival flagged out-of-window: %+v", a)
				}
			}
		}
	}
}

func TestOptimizeCaching(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	req := Request{Route: "us25", DepartTime: 12}
	r1, err := c.Optimize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first request served from cache")
	}
	r2, err := c.Optimize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("identical request not served from cache")
	}
	if r2.ChargeAh != r1.ChargeAh || r2.TripSec != r1.TripSec {
		t.Fatal("cached response differs")
	}
	// Same 5 s bucket: still cached.
	r3, err := c.Optimize(ctx, Request{Route: "us25", DepartTime: 13})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Cached {
		t.Fatal("same-bucket request not cached")
	}
	// Different variant: not cached.
	r4, err := c.Optimize(ctx, Request{Route: "us25", DepartTime: 12, Variant: VariantGreen})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Cached {
		t.Fatal("different variant served from cache")
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests < 4 || st.CacheHits < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheEviction(t *testing.T) {
	s, err := NewServer(ServerConfig{DPTemplate: coarseDP(), MaxCacheEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, depart := range []float64{0, 10, 20} { // three distinct buckets
		if _, err := c.Optimize(ctx, Request{Route: "us25", DepartTime: depart}); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	n := len(s.cache)
	s.mu.Unlock()
	if n > 2 {
		t.Fatalf("cache grew to %d entries, cap 2", n)
	}
	// The oldest entry (depart 0) was evicted: re-requesting recomputes.
	r, err := c.Optimize(ctx, Request{Route: "us25", DepartTime: 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Fatal("evicted entry served from cache")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts, c := newTestServer(t)
	ctx := context.Background()
	var apiErr *APIError

	_, err := c.Optimize(ctx, Request{Route: "nowhere"})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown route: %v", err)
	}
	_, err = c.Optimize(ctx, Request{Route: "us25", Variant: "warp-speed"})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("unknown variant: %v", err)
	}
	_, err = c.Optimize(ctx, Request{Route: "us25", DepartTime: -5})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("negative depart: %v", err)
	}
	_, err = c.Optimize(ctx, Request{Route: "us25", ArrivalRateVehPerHour: -1})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("negative rate: %v", err)
	}

	// Malformed JSON and unknown fields.
	for _, body := range []string{"{not json", `{"route":"us25","bogus":1}`} {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET optimize: status %d, want 405", resp.StatusCode)
	}
}

func TestRegisterRoute(t *testing.T) {
	s, ts, c := newTestServer(t)
	short, err := road.NewRoute(road.RouteConfig{LengthM: 900, DefaultMaxMS: 15})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterRoute("short", short); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterRoute("short", short); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := s.RegisterRoute("", nil); err == nil {
		t.Fatal("empty registration accepted")
	}
	_ = ts
	resp, err := c.Optimize(context.Background(), Request{Route: "short", Variant: VariantUnconstrained})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Profile[len(resp.Profile)-1].Pos; got != 900 {
		t.Fatalf("profile ends at %v, want 900", got)
	}
}

func TestConcurrentOptimize(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.Optimize(ctx, Request{Route: "us25", DepartTime: float64(i % 4 * 30)})
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestArrivalRateOverrideChangesWindows(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	light, err := c.Optimize(ctx, Request{Route: "us25", ArrivalRateVehPerHour: 20})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := c.Optimize(ctx, Request{Route: "us25", ArrivalRateVehPerHour: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if light.Cached || heavy.Cached {
		t.Fatal("distinct rates should not share cache entries")
	}
	// Heavier queues shrink the admissible window, so arrivals differ or
	// the trajectory changes; at minimum the plans are not byte-identical.
	lb, _ := json.Marshal(light.Profile)
	hb, _ := json.Marshal(heavy.Profile)
	if bytes.Equal(lb, hb) {
		t.Fatal("arrival rate had no effect on the plan")
	}
}

func TestStatsErrorsCounted(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	_, _ = c.Optimize(ctx, Request{Route: "nowhere"})
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors == 0 {
		t.Fatalf("stats = %+v, want errors counted", st)
	}
}

// TestStatsRobustnessCountersWire pins the /v1/stats wire contract for the
// robustness counters: the field names are API, dashboards key on them.
// (chaos_test.go covers how the counters move under injected faults.)
func TestStatsRobustnessCountersWire(t *testing.T) {
	var predictorDown bool
	s, err := NewServer(ServerConfig{
		DPTemplate:  coarseDP(),
		MaxInFlight: 32,
		Faults: Faults{
			PredictorErr: func() error {
				if predictorDown {
					return errors.New("injected")
				}
				return nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// One degraded response and one shed so the labelled/omitempty fields
	// are populated on the wire.
	predictorDown = true
	if _, err := c.Optimize(ctx, Request{Route: "us25"}); err != nil {
		t.Fatal(err)
	}
	s.shedNow(httptest.NewRecorder())

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	for _, key := range []string{
		`"requests"`, `"cacheHits"`, `"errors"`,
		`"shed"`, `"degraded"`, `"degradedByReason"`,
		`"panicsRecovered"`, `"retryAfterIssued"`,
		`"` + DegradedPredictorFallback + `"`,
	} {
		if !strings.Contains(raw, key) {
			t.Fatalf("stats JSON missing %s: %s", key, raw)
		}
	}
	var st Stats
	if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Shed != 1 || st.Degraded != 1 || st.RetryAfterIssued != 1 ||
		st.DegradedByReason[DegradedPredictorFallback] != 1 {
		t.Fatalf("stats = %+v, want shed/degraded/retryAfter = 1", st)
	}
}

func TestAPIErrorString(t *testing.T) {
	e := &APIError{Status: 404, Msg: "gone"}
	if !strings.Contains(e.Error(), "404") || !strings.Contains(e.Error(), "gone") {
		t.Fatalf("error string %q", e.Error())
	}
}

func postJSON(t *testing.T, url, body string) (*http.Response, func()) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp, func() { resp.Body.Close() }
}

func TestAdviseRecommendsBestDeparture(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, cleanup := postJSON(t, ts.URL+"/v1/advise",
		`{"route":"us25","earliestDepart":0,"latestDepart":40,"stepSec":20,"arrivalRateVehPerHour":400}`)
	defer cleanup()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out AdviseResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Options) != 3 {
		t.Fatalf("options = %d, want 3", len(out.Options))
	}
	if out.Best.Penalized {
		t.Fatalf("best option is penalized: %+v", out.Best)
	}
	for _, o := range out.Options {
		if !o.Penalized && o.ChargeAh < out.Best.ChargeAh {
			t.Fatalf("best %+v is not the cheapest clean option (%+v)", out.Best, o)
		}
	}
}

func TestAdviseValidation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	cases := []struct {
		name, body string
		status     int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"inverted window", `{"route":"us25","earliestDepart":50,"latestDepart":0}`, http.StatusBadRequest},
		{"negative step", `{"route":"us25","latestDepart":10,"stepSec":-1}`, http.StatusBadRequest},
		{"too many candidates", `{"route":"us25","earliestDepart":0,"latestDepart":100000,"stepSec":1}`, http.StatusBadRequest},
		{"unknown route", `{"route":"nowhere","latestDepart":10}`, http.StatusNotFound},
		{"bad variant", `{"route":"us25","latestDepart":10,"variant":"ludicrous"}`, http.StatusBadRequest},
		{"negative rate", `{"route":"us25","latestDepart":10,"arrivalRateVehPerHour":-4}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, cleanup := postJSON(t, ts.URL+"/v1/advise", tc.body)
			defer cleanup()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
		})
	}
}

func TestClientAdvise(t *testing.T) {
	_, _, c := newTestServer(t)
	out, err := c.Advise(context.Background(), AdviseRequest{
		Route: "us25", EarliestDepart: 0, LatestDepart: 20, StepSec: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Options) != 3 {
		t.Fatalf("options %d", len(out.Options))
	}
	var apiErr *APIError
	_, err = c.Advise(context.Background(), AdviseRequest{Route: "nowhere", LatestDepart: 10})
	if !errors.As(err, &apiErr) {
		t.Fatalf("unknown route: %v", err)
	}
}
