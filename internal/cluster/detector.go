package cluster

import (
	"fmt"
	"sync"
	"time"

	"evvo/internal/stable"
)

// State grades a peer's health as seen by the local failure detector.
type State int

// Peer health states. The state machine is monotone between heartbeats —
// alive → suspect → dead as silence lengthens — and any successful
// heartbeat resets a peer straight to alive, including from dead: a
// partitioned peer that comes back is readmitted without ceremony.
const (
	// StateAlive: heard from within SuspectAfter.
	StateAlive State = iota
	// StateSuspect: silent past SuspectAfter but not yet DeadAfter. A
	// suspect peer keeps its ring ownership (reassigning on first silence
	// would flap under transient load), but callers should expect failures
	// and lean on breakers and fallbacks.
	StateSuspect
	// StateDead: silent past DeadAfter. Ownership of the peer's keys moves
	// to ring successors until it is heard from again.
	StateDead
)

// String implements fmt.Stringer for logs and stats.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Detector is a timeout-based failure detector fed by heartbeat outcomes.
// Observe records a successful heartbeat to a peer; State grades the peer
// by how long it has been silent. All timestamps are supplied by the
// caller, which keeps the state machine deterministic under test and free
// of hidden clock reads.
type Detector struct {
	suspectAfter time.Duration
	deadAfter    time.Duration

	mu     sync.Mutex
	lastOK map[string]time.Time
}

// NewDetector builds a detector over the given peers. Every peer starts
// with an implicit successful heartbeat at start — a boot grace period —
// so a peer that never answers goes suspect after suspectAfter and dead
// after deadAfter, measured from boot. Requires 0 < suspectAfter <
// deadAfter.
func NewDetector(peers []string, suspectAfter, deadAfter time.Duration, start time.Time) (*Detector, error) {
	if suspectAfter <= 0 || deadAfter <= suspectAfter {
		return nil, fmt.Errorf("cluster: detector timeouts must satisfy 0 < suspect (%v) < dead (%v)",
			suspectAfter, deadAfter)
	}
	d := &Detector{
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		lastOK:       make(map[string]time.Time, len(peers)),
	}
	for _, p := range peers {
		d.lastOK[p] = start
	}
	return d, nil
}

// Observe records a successful heartbeat from peer at now. Unknown peers
// are ignored — membership is fixed at boot.
func (d *Detector) Observe(peer string, now time.Time) {
	d.mu.Lock()
	if last, ok := d.lastOK[peer]; ok && now.After(last) {
		d.lastOK[peer] = now
	}
	d.mu.Unlock()
}

// State grades peer at now. Unknown peers are reported dead: they are not
// members, so nothing should be routed to them.
func (d *Detector) State(peer string, now time.Time) State {
	d.mu.Lock()
	last, ok := d.lastOK[peer]
	d.mu.Unlock()
	if !ok {
		return StateDead
	}
	silent := now.Sub(last)
	switch {
	case silent >= d.deadAfter:
		return StateDead
	case silent >= d.suspectAfter:
		return StateSuspect
	default:
		return StateAlive
	}
}

// Counts tallies peers by state at now.
func (d *Detector) Counts(now time.Time) (alive, suspect, dead int) {
	d.mu.Lock()
	peers := stable.SortedKeys(d.lastOK)
	d.mu.Unlock()
	for _, p := range peers {
		switch d.State(p, now) {
		case StateAlive:
			alive++
		case StateSuspect:
			suspect++
		case StateDead:
			dead++
		}
	}
	return alive, suspect, dead
}
