package cluster

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is the circuit-breaker position for one peer.
type BreakerState int

// Breaker states, the classic three-position machine.
const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is refused locally (fail fast) until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe request is
	// let through. Its success closes the breaker, its failure reopens it
	// for another cooldown.
	BreakerHalfOpen
)

// String implements fmt.Stringer for logs and stats.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// Breaker is a per-peer circuit breaker. It layers under the retry client:
// retries smooth transient blips, while the breaker stops a node from
// burning its compute deadline re-dialing a peer that has been failing
// hard — the caller fails over to its fallback immediately instead.
// Timestamps are supplied by the caller (deterministic under test).
type Breaker struct {
	failThreshold int
	cooldown      time.Duration

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	openedAt    time.Time
	probing     bool  // a half-open probe is in flight
	opens       int64 // closed/half-open → open transitions
}

// NewBreaker opens after failThreshold consecutive failures and allows a
// half-open probe after cooldown. Both must be positive.
func NewBreaker(failThreshold int, cooldown time.Duration) (*Breaker, error) {
	if failThreshold <= 0 || cooldown <= 0 {
		return nil, fmt.Errorf("cluster: breaker needs positive threshold (%d) and cooldown (%v)",
			failThreshold, cooldown)
	}
	return &Breaker{failThreshold: failThreshold, cooldown: cooldown}, nil
}

// Allow reports whether a request may be sent at now. In the open state it
// returns false until the cooldown elapses, then transitions to half-open
// and admits exactly one probe until that probe reports back.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful exchange, closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.consecFails = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a failed exchange at now: it reopens a half-open
// breaker immediately and opens a closed one at the failure threshold.
func (b *Breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.open(now)
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= b.failThreshold {
			b.open(now)
		}
	case BreakerOpen:
		// Late failure from a request admitted before the trip: the clock
		// does not restart, or a single slow peer could hold it open forever.
	}
}

// open transitions to open. Callers hold b.mu.
func (b *Breaker) open(now time.Time) {
	b.state = BreakerOpen
	b.openedAt = now
	b.consecFails = 0
	b.probing = false
	b.opens++
}

// State reports the breaker position at now (open flips to half-open once
// the cooldown has elapsed, matching what Allow would do).
func (b *Breaker) State(now time.Time) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && now.Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Opens counts transitions into the open state since construction.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
