package cluster

import (
	"fmt"
	"testing"
	"time"
)

func TestRingValidation(t *testing.T) {
	if _, err := Build(nil, 64); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := Build([]string{"a", ""}, 64); err == nil {
		t.Fatal("empty member ID accepted")
	}
	if _, err := Build([]string{"a", "a"}, 64); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

// TestRingDeterministicAcrossInputOrder: every node must compute the same
// ring from its own view of the membership, or ownership would disagree.
func TestRingDeterministicAcrossInputOrder(t *testing.T) {
	a, err := Build([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build([]string{"n3", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("route-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner %q vs %q depending on input order", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingSuccessorsDistinctAndOwnerFirst: the successor list is the
// replica placement, so it must start at the owner and never repeat nodes.
func TestRingSuccessorsDistinctAndOwnerFirst(t *testing.T) {
	r, err := Build([]string{"n1", "n2", "n3", "n4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("route-%d", i)
		succ := r.Successors(key, 4)
		if len(succ) != 4 {
			t.Fatalf("key %q: %d successors, want 4", key, len(succ))
		}
		if succ[0] != r.Owner(key) {
			t.Fatalf("key %q: successors start at %q, owner is %q", key, succ[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %q: duplicate successor %q in %v", key, s, succ)
			}
			seen[s] = true
		}
	}
	if got := r.Successors("k", 10); len(got) != 4 {
		t.Fatalf("successor request beyond membership returned %d, want 4", len(got))
	}
	if got := r.Successors("k", 0); got != nil {
		t.Fatalf("zero successors = %v, want nil", got)
	}
}

// TestRingBalance: virtual nodes must spread ownership roughly evenly —
// with 64 vnodes no member of a 4-node ring should own more than half the
// keyspace or the "shard" would be a hotspot.
func TestRingBalance(t *testing.T) {
	r, err := Build([]string{"n1", "n2", "n3", "n4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for node, n := range counts {
		if share := float64(n) / keys; share < 0.05 || share > 0.50 {
			t.Fatalf("node %q owns %.0f%% of keys; ring badly unbalanced: %v", node, share*100, counts)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d of 4 members own keys: %v", len(counts), counts)
	}
}

// TestRingConsistency: removing one member must move only that member's
// keys — everything else keeps its owner, so peer caches stay warm.
func TestRingConsistency(t *testing.T) {
	full, err := Build([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := Build([]string{"n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != "n3" && after != before {
			t.Fatalf("key %q moved %q → %q although its owner survived", key, before, after)
		}
	}
}

func TestDetectorValidation(t *testing.T) {
	now := time.Unix(0, 0)
	if _, err := NewDetector([]string{"p"}, 0, time.Second, now); err == nil {
		t.Fatal("zero suspectAfter accepted")
	}
	if _, err := NewDetector([]string{"p"}, time.Second, time.Second, now); err == nil {
		t.Fatal("dead <= suspect accepted")
	}
}

// TestDetectorStateMachine walks alive → suspect → dead → (heartbeat) →
// alive on a synthetic clock.
func TestDetectorStateMachine(t *testing.T) {
	t0 := time.Unix(1000, 0)
	d, err := NewDetector([]string{"p1", "p2"}, 100*time.Millisecond, 300*time.Millisecond, t0)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.State("p1", t0.Add(50*time.Millisecond)); got != StateAlive {
		t.Fatalf("inside grace period: %v, want alive", got)
	}
	if got := d.State("p1", t0.Add(150*time.Millisecond)); got != StateSuspect {
		t.Fatalf("past suspectAfter: %v, want suspect", got)
	}
	if got := d.State("p1", t0.Add(400*time.Millisecond)); got != StateDead {
		t.Fatalf("past deadAfter: %v, want dead", got)
	}
	// A heartbeat resurrects the peer from dead.
	d.Observe("p1", t0.Add(500*time.Millisecond))
	if got := d.State("p1", t0.Add(550*time.Millisecond)); got != StateAlive {
		t.Fatalf("after heartbeat: %v, want alive", got)
	}
	// Stale observations (clock going backwards across goroutines) never
	// regress the last-heard time.
	d.Observe("p1", t0)
	if got := d.State("p1", t0.Add(550*time.Millisecond)); got != StateAlive {
		t.Fatalf("stale observe regressed the peer to %v", got)
	}
	if got := d.State("unknown", t0); got != StateDead {
		t.Fatalf("unknown peer graded %v, want dead", got)
	}
	alive, suspect, dead := d.Counts(t0.Add(550 * time.Millisecond))
	if alive != 1 || suspect != 0 || dead != 1 {
		t.Fatalf("counts = %d/%d/%d, want 1 alive (p1), 1 dead (p2 silent since boot)", alive, suspect, dead)
	}
}

func TestBreakerValidation(t *testing.T) {
	if _, err := NewBreaker(0, time.Second); err == nil {
		t.Fatal("zero threshold accepted")
	}
	if _, err := NewBreaker(3, 0); err == nil {
		t.Fatal("zero cooldown accepted")
	}
}

// TestBreakerLifecycle: closed → open at the failure threshold → half-open
// after cooldown admitting exactly one probe → closed on probe success.
func TestBreakerLifecycle(t *testing.T) {
	t0 := time.Unix(2000, 0)
	b, err := NewBreaker(3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if !b.Allow(t0) {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure(t0)
	}
	if b.State(t0) != BreakerClosed {
		t.Fatalf("state %v after 2 of 3 failures, want closed", b.State(t0))
	}
	b.Failure(t0) // third consecutive failure trips it
	if b.State(t0) != BreakerOpen || b.Opens() != 1 {
		t.Fatalf("state %v opens %d, want open after threshold", b.State(t0), b.Opens())
	}
	if b.Allow(t0.Add(500 * time.Millisecond)) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	// Cooldown elapsed: exactly one probe goes through.
	probeAt := t0.Add(1100 * time.Millisecond)
	if !b.Allow(probeAt) {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow(probeAt) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Success()
	if b.State(probeAt) != BreakerClosed || !b.Allow(probeAt) {
		t.Fatal("probe success did not close the breaker")
	}

	// Probe failure reopens for another full cooldown.
	for i := 0; i < 3; i++ {
		b.Failure(probeAt)
	}
	reprobe := probeAt.Add(1100 * time.Millisecond)
	if !b.Allow(reprobe) {
		t.Fatal("second probe refused")
	}
	b.Failure(reprobe)
	if b.State(reprobe) != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", b.State(reprobe))
	}
	if b.Opens() != 3 {
		t.Fatalf("opens = %d, want 3 (threshold, threshold, failed probe)", b.Opens())
	}
	if b.Allow(reprobe.Add(500 * time.Millisecond)) {
		t.Fatal("failed probe did not restart the cooldown")
	}
}

// TestStateStrings pins the stats-facing labels.
func TestStateStrings(t *testing.T) {
	if StateAlive.String() != "alive" || StateSuspect.String() != "suspect" || StateDead.String() != "dead" {
		t.Fatal("detector state labels changed")
	}
	if BreakerClosed.String() != "closed" || BreakerOpen.String() != "open" || BreakerHalfOpen.String() != "half-open" {
		t.Fatal("breaker state labels changed")
	}
}
