// Package cluster holds the membership primitives for running cloudd as a
// fault-tolerant fleet of peers (DESIGN.md §13): a consistent-hash ring
// that assigns segment-table ownership to nodes, a heartbeat-driven
// failure detector that grades peers alive → suspect → dead, and a
// per-peer circuit breaker that stops a node from hammering an unreachable
// peer. The package is transport-agnostic — internal/cloud supplies the
// HTTP plumbing — and every primitive takes explicit timestamps so tests
// drive the state machines deterministically.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. Each member is hashed
// onto the ring at VirtualNodes points; a key's owner is the member whose
// point follows the key's hash clockwise. Virtual nodes smooth the load
// split (with ~64 per member the largest share stays within a few percent
// of fair), and consistency means adding or removing one member moves only
// the keys that member gains or loses — the rest of the fleet's
// segment-table caches stay warm.
//
// Ring is immutable after Build from the caller's perspective: membership
// in this system is fixed at boot (the -peers flag), and *liveness* is
// layered on top via Successors plus the failure detector, not by mutating
// the ring. Methods are safe for concurrent use because nothing mutates.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	nodes  []string    // sorted member IDs
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVirtualNodes is the virtual-node count used when Build is given 0.
const DefaultVirtualNodes = 64

// Build constructs a ring over the given member IDs. Duplicate or empty
// IDs are rejected; vnodes <= 0 uses DefaultVirtualNodes.
func Build(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{vnodes: vnodes}
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member ID")
		}
		if seen[m] {
			return nil, fmt.Errorf("cluster: duplicate member ID %q", m)
		}
		seen[m] = true
		r.nodes = append(r.nodes, m)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", m, i)), node: m})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare with 64-bit FNV) break on member ID so
		// every node computes the identical ring regardless of input order.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Members returns the member IDs in sorted order (copy).
func (r *Ring) Members() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the member owning key: the first ring point at or after
// the key's hash, wrapping at the top.
func (r *Ring) Owner(key string) string {
	return r.points[r.search(key)].node
}

// Successors returns up to n distinct members in ring order starting at
// key's owner. This is the replica placement for key (owner first) and the
// takeover order when owners die: liveness-aware callers walk the list and
// pick the first member the failure detector still trusts.
func (r *Ring) Successors(key string, n int) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(key); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// search returns the index of the first point at or after key's hash.
func (r *Ring) search(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return i
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s)) // hash.Hash.Write is documented never to fail
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-1a alone clusters badly on short,
// similar keys ("n1#0", "n1#1", ...) — without the avalanche pass a 4-node
// ring can hand one member <5% of the keyspace.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
