// Package stable holds deterministic-iteration helpers. Go map iteration
// order is randomized per run; any code that folds a map into an ordered
// artifact — a gob payload, a fingerprint, an HTTP response body, a
// membership list — must iterate in a defined order or its output varies
// run to run, which breaks the repo's bit-exact parity contract
// (DESIGN.md §6, §12, §13). detcheck (internal/lint) flags raw map-range
// accumulation in the numeric and serving packages; ranging over
// SortedKeys is the blessed replacement.
package stable

import (
	"cmp"
	"sort"
)

// SortedKeys returns m's keys in ascending order. The result is a fresh
// slice; iterating it (instead of ranging the map directly) makes every
// downstream append, fold, or serialization order-deterministic.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return cmp.Less(keys[i], keys[j]) })
	return keys
}
