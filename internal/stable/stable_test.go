package stable

import (
	"reflect"
	"testing"
)

func TestSortedKeysStrings(t *testing.T) {
	m := map[string]int{"n3": 3, "n1": 1, "n10": 10, "a": 0}
	got := SortedKeys(m)
	want := []string{"a", "n1", "n10", "n3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeys = %v, want %v", got, want)
	}
}

func TestSortedKeysInts(t *testing.T) {
	m := map[int]string{5: "e", -1: "a", 3: "c"}
	got := SortedKeys(m)
	want := []int{-1, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeys = %v, want %v", got, want)
	}
}

func TestSortedKeysEmptyAndNil(t *testing.T) {
	if got := SortedKeys(map[string]int{}); len(got) != 0 {
		t.Fatalf("SortedKeys(empty) = %v, want empty", got)
	}
	var nilMap map[string]int
	if got := SortedKeys(nilMap); len(got) != 0 {
		t.Fatalf("SortedKeys(nil) = %v, want empty", got)
	}
}

// TestSortedKeysDeterministic: repeated calls over the same map agree —
// the property detcheck exists to protect.
func TestSortedKeysDeterministic(t *testing.T) {
	m := map[string]int{}
	for _, k := range []string{"x", "b", "m", "q", "a", "z", "c"} {
		m[k] = len(k)
	}
	first := SortedKeys(m)
	for i := 0; i < 50; i++ {
		if got := SortedKeys(m); !reflect.DeepEqual(got, first) {
			t.Fatalf("iteration %d: SortedKeys = %v, want %v", i, got, first)
		}
	}
}
