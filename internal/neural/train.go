package neural

import (
	"fmt"
	"math/rand"
	"runtime"

	"evvo/internal/par"
)

// TrainConfig parameterizes minibatch SGD with momentum and L2 decay.
type TrainConfig struct {
	// Epochs is the number of full passes (required, > 0).
	Epochs int
	// BatchSize is the minibatch size (default 16).
	BatchSize int
	// LR is the learning rate (default 0.05).
	LR float64
	// Momentum is the classical momentum coefficient (default 0.9).
	Momentum float64
	// L2 is the weight-decay coefficient (default 0).
	L2 float64
	// Rng drives shuffling (required for determinism).
	Rng *rand.Rand
	// Workers bounds the goroutines sharding each minibatch pass. 0 uses
	// runtime.GOMAXPROCS(0); 1 forces serial. Any worker count produces
	// bit-identical weights (see the ownership argument in mat.go and
	// DESIGN.md), so this is purely a throughput knob. Tiny layers stay
	// serial regardless: sharding only kicks in past a work threshold.
	Workers int
}

func (c *TrainConfig) applyDefaults() {
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

func (c *TrainConfig) validate(n *Network, x, y [][]float64) error {
	switch {
	case c.Epochs <= 0:
		return fmt.Errorf("neural: epochs %d must be positive", c.Epochs)
	case c.BatchSize <= 0:
		return fmt.Errorf("neural: batch size %d must be positive", c.BatchSize)
	case c.LR <= 0:
		return fmt.Errorf("neural: learning rate %g must be positive", c.LR)
	case c.Momentum < 0 || c.Momentum >= 1:
		return fmt.Errorf("neural: momentum %g must be in [0, 1)", c.Momentum)
	case c.L2 < 0:
		return fmt.Errorf("neural: L2 %g must be non-negative", c.L2)
	case c.Rng == nil:
		return fmt.Errorf("neural: nil RNG; pass rand.New(rand.NewSource(seed))")
	case c.Workers < 0:
		return fmt.Errorf("neural: workers %d must be non-negative", c.Workers)
	case len(x) == 0 || len(x) != len(y):
		return fmt.Errorf("neural: dataset sizes %d/%d invalid", len(x), len(y))
	}
	for i := range x {
		if len(x[i]) != n.InputDim() {
			return fmt.Errorf("neural: sample %d has width %d, network wants %d", i, len(x[i]), n.InputDim())
		}
		if len(y[i]) != n.OutputDim() {
			return fmt.Errorf("neural: target %d has width %d, network wants %d", i, len(y[i]), n.OutputDim())
		}
	}
	return nil
}

// minParFlops is the per-pass work (multiply-adds) below which minibatch
// sharding is not attempted: goroutine handoff costs more than it saves.
// The gate affects scheduling only, never results — every output element
// is owned by exactly one worker either way.
const minParFlops = 1 << 17

// trainState owns every buffer the minibatch loop touches, sized once for
// the largest batch, so the steady-state epoch loop allocates nothing.
// All matrices are maxB-row; only the first b rows participate in a batch.
type trainState struct {
	n       *Network
	workers int
	b       int // rows in the current batch

	xb, yb *Mat   // gathered minibatch inputs and targets
	zs     []*Mat // per layer: pre-activations W·x+b
	as     []*Mat // per layer: activations
	deltas []*Mat // per layer: backpropagated δ

	wt [][]float64 // per layer: Wᵀ packed In×Out for the forward pass

	g, vel *grads
}

func newTrainState(n *Network, maxB, workers int) *trainState {
	ts := &trainState{
		n:       n,
		workers: workers,
		xb:      NewMat(maxB, n.InputDim()),
		yb:      NewMat(maxB, n.OutputDim()),
		g:       newGrads(n),
		vel:     newGrads(n),
	}
	for _, l := range n.Layers {
		ts.zs = append(ts.zs, NewMat(maxB, l.Out))
		ts.as = append(ts.as, NewMat(maxB, l.Out))
		ts.deltas = append(ts.deltas, NewMat(maxB, l.Out))
		ts.wt = append(ts.wt, make([]float64, l.In*l.Out))
	}
	return ts
}

// input returns the activation matrix feeding layer li.
func (ts *trainState) input(li int) *Mat {
	if li == 0 {
		return ts.xb
	}
	return ts.as[li-1]
}

// Batched pass kinds for dispatch (see shard).
const (
	opForward = iota
	opBackward
	opGrad
)

// runOp dispatches one batched pass chunk to its row kernel.
//
//lint:hot
func (ts *trainState) runOp(op, li, lo, hi int) {
	switch op {
	case opForward:
		ts.forwardRows(li, lo, hi)
	case opBackward:
		ts.backwardRows(li, lo, hi)
	case opGrad:
		ts.gradRows(li, lo, hi)
	}
}

// shard runs one batched pass over [0, n) — batch rows for forward/
// backward, output units for gradients — splitting it into one contiguous
// chunk per worker when the pass is worth parallelizing. Each chunk is an
// ownership partition: a worker writes only the output elements in its
// range and computes each with the same serial-order accumulation, so
// results are bit-identical for any worker count (the same argument as the
// DP gather relaxation, DESIGN.md §6). The serial path calls runOp
// directly and allocates nothing; the closure below only exists on the
// parallel path.
func (ts *trainState) shard(op, li, n, flops int) {
	w := ts.workers
	if w > n {
		w = n
	}
	if w <= 1 || flops < minParFlops {
		ts.runOp(op, li, 0, n)
		return
	}
	par.ForEach(w, w, func(i int) error {
		lo, hi := i*n/w, (i+1)*n/w
		if lo < hi {
			ts.runOp(op, li, lo, hi)
		}
		return nil
	})
}

// forwardRows computes z = x·Wᵀ + b and a = act(z) for batch rows
// [lo, hi) of layer li: bias-initialize the rows, one gemmAcc over the
// whole shard, then one fused activation pass over the contiguous block.
// Per output element the accumulation starts at the bias and adds inputs
// in ascending order — exactly Dense.Forward.
func (ts *trainState) forwardRows(li, lo, hi int) {
	l := ts.n.Layers[li]
	in := ts.input(li)
	z, a := ts.zs[li], ts.as[li]
	for s := lo; s < hi; s++ {
		copy(z.Row(s), l.B)
	}
	gemmAcc(z.Data[lo*l.Out:], in.Data[lo*l.In:], ts.wt[li], hi-lo, l.In, l.Out, l.Out, l.In, 1)
	actVec(l.Act, a.Data[lo*l.Out:hi*l.Out], z.Data[lo*l.Out:hi*l.Out])
}

// backwardRows propagates δ of layer li down to layer li-1 for batch rows
// [lo, hi): δ_below = (δ·W) ⊙ act'(a_below). Per element: ascending-o
// accumulation, then one deriv multiply — exactly the sample-level loop.
func (ts *trainState) backwardRows(li, lo, hi int) {
	l := ts.n.Layers[li]
	below := ts.n.Layers[li-1]
	d, dp := ts.deltas[li], ts.deltas[li-1]
	outs := ts.as[li-1]
	blk := dp.Data[lo*l.In : hi*l.In]
	clearF(blk)
	gemmAcc(dp.Data[lo*l.In:], d.Data[lo*l.Out:], l.W, hi-lo, l.Out, l.In, l.In, l.Out, 1)
	derivMulVec(below.Act, blk, outs.Data[lo*l.In:hi*l.In])
}

// gradRows accumulates layer li's gradient rows for output units
// [lo, hi): dW[o] += Σ_s δ[s][o]·x[s], dB[o] += Σ_s δ[s][o], samples in
// ascending order per element — the order the per-sample reference used.
// The strided-a gemmAcc reads δᵀ directly out of the row-major δ matrix,
// so no transpose pass or scratch is needed.
func (ts *trainState) gradRows(li, lo, hi int) {
	l := ts.n.Layers[li]
	in := ts.input(li)
	d := ts.deltas[li]
	for o := lo; o < hi; o++ {
		sum := ts.g.dB[li][o]
		for s := 0; s < ts.b; s++ {
			sum += d.Data[s*l.Out+o]
		}
		ts.g.dB[li][o] = sum
	}
	gemmAcc(ts.g.dW[li][lo*l.In:], d.Data[lo:], in.Data, hi-lo, ts.b, l.In, l.In, 1, l.Out)
}

// outputDelta computes the output-layer δ = (y − t) ⊙ act'(y) and folds
// each sample's ½Σe² loss into the running epoch loss, sample by sample in
// batch order (the same accumulation sequence as the per-sample loop).
//lint:hot
func (ts *trainState) outputDelta(epochLoss float64) float64 {
	li := len(ts.n.Layers) - 1
	last := ts.n.Layers[li]
	out, d := ts.as[li], ts.deltas[li]
	for s := 0; s < ts.b; s++ {
		or := out.Row(s)[:last.Out]
		yr := ts.yb.Row(s)[:last.Out]
		dr := d.Row(s)[:last.Out]
		var loss float64
		for o, ov := range or {
			e := ov - yr[o]
			loss += 0.5 * e * e
			dr[o] = e * last.Act.derivFromOutput(ov)
		}
		epochLoss += loss
	}
	return epochLoss
}

// runBatch performs one full minibatch step (gather, forward, backprop,
// parameter update) and returns the updated running epoch loss. It
// allocates nothing in the serial path.
func (ts *trainState) runBatch(x, y [][]float64, batch []int, cfg *TrainConfig, epochLoss float64) float64 {
	ts.b = len(batch)
	for r, s := range batch {
		copy(ts.xb.Row(r), x[s])
		copy(ts.yb.Row(r), y[s])
	}
	layers := ts.n.Layers
	for li, l := range layers {
		packTranspose(ts.wt[li], l.W, l.Out, l.In)
		ts.shard(opForward, li, ts.b, ts.b*l.In*l.Out)
	}
	epochLoss = ts.outputDelta(epochLoss)
	ts.g.zero()
	for li := len(layers) - 1; li >= 0; li-- {
		l := layers[li]
		ts.shard(opGrad, li, l.Out, ts.b*l.In*l.Out)
		if li > 0 {
			ts.shard(opBackward, li, ts.b, ts.b*l.In*l.Out)
		}
	}
	scale := cfg.LR / float64(ts.b)
	for li, l := range layers {
		updateParams(l.W, ts.g.dW[li], ts.vel.dW[li], cfg.Momentum, scale, cfg.L2)
		updateBias(l.B, ts.g.dB[li], ts.vel.dB[li], cfg.Momentum, scale)
	}
	return epochLoss
}

// updateBias is the bias step: like updateParams but with no decay term at
// all (the reference bias loop never formed g+l2·w, so even l2=0 would not
// be bit-equivalent when g is a signed zero).
//
//lint:hot
func updateBias(b, g, vel []float64, mom, scale float64) {
	for i := range b {
		v := mom*vel[i] - scale*g[i]
		vel[i] = v
		b[i] += v
	}
}

// Train fits the network to (x, y) by minibatch SGD and returns the final
// epoch's mean training loss.
//
// The minibatch pass runs on the batched kernels in mat.go; weights after
// every step are bit-identical to the historical per-sample implementation
// and to any cfg.Workers setting, because every kernel preserves the
// per-element accumulation order of the reference loops.
//
//lint:certify pure
func (n *Network) Train(x, y [][]float64, cfg TrainConfig) (float64, error) {
	cfg.applyDefaults()
	if err := cfg.validate(n, x, y); err != nil {
		return 0, err
	}
	maxB := cfg.BatchSize
	if maxB > len(x) {
		maxB = len(x)
	}
	ts := newTrainState(n, maxB, cfg.Workers)
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	swap := func(i, j int) { idx[i], idx[j] = idx[j], idx[i] }
	var epochLoss float64
	for e := 0; e < cfg.Epochs; e++ {
		epochLoss = ts.runEpoch(x, y, idx, swap, &cfg)
	}
	return epochLoss, nil
}

// runEpoch is one full steady-state pass: shuffle, then every minibatch.
// With Workers==1 it performs zero heap allocations (guarded by
// TestTrainEpochAllocs); every buffer lives in the trainState.
func (ts *trainState) runEpoch(x, y [][]float64, idx []int, swap func(i, j int), cfg *TrainConfig) float64 {
	cfg.Rng.Shuffle(len(idx), swap)
	var epochLoss float64
	for start := 0; start < len(idx); start += cfg.BatchSize {
		end := start + cfg.BatchSize
		if end > len(idx) {
			end = len(idx)
		}
		epochLoss = ts.runBatch(x, y, idx[start:end], cfg, epochLoss)
	}
	return epochLoss / float64(len(x))
}
