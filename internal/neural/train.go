package neural

import (
	"fmt"
	"math/rand"
)

// TrainConfig parameterizes minibatch SGD with momentum and L2 decay.
type TrainConfig struct {
	// Epochs is the number of full passes (required, > 0).
	Epochs int
	// BatchSize is the minibatch size (default 16).
	BatchSize int
	// LR is the learning rate (default 0.05).
	LR float64
	// Momentum is the classical momentum coefficient (default 0.9).
	Momentum float64
	// L2 is the weight-decay coefficient (default 0).
	L2 float64
	// Rng drives shuffling (required for determinism).
	Rng *rand.Rand
}

func (c *TrainConfig) applyDefaults() {
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
}

func (c *TrainConfig) validate(n *Network, x, y [][]float64) error {
	switch {
	case c.Epochs <= 0:
		return fmt.Errorf("neural: epochs %d must be positive", c.Epochs)
	case c.BatchSize <= 0:
		return fmt.Errorf("neural: batch size %d must be positive", c.BatchSize)
	case c.LR <= 0:
		return fmt.Errorf("neural: learning rate %g must be positive", c.LR)
	case c.Momentum < 0 || c.Momentum >= 1:
		return fmt.Errorf("neural: momentum %g must be in [0, 1)", c.Momentum)
	case c.L2 < 0:
		return fmt.Errorf("neural: L2 %g must be non-negative", c.L2)
	case c.Rng == nil:
		return fmt.Errorf("neural: nil RNG; pass rand.New(rand.NewSource(seed))")
	case len(x) == 0 || len(x) != len(y):
		return fmt.Errorf("neural: dataset sizes %d/%d invalid", len(x), len(y))
	}
	for i := range x {
		if len(x[i]) != n.InputDim() {
			return fmt.Errorf("neural: sample %d has width %d, network wants %d", i, len(x[i]), n.InputDim())
		}
		if len(y[i]) != n.OutputDim() {
			return fmt.Errorf("neural: target %d has width %d, network wants %d", i, len(y[i]), n.OutputDim())
		}
	}
	return nil
}

// Train fits the network to (x, y) by minibatch SGD and returns the final
// epoch's mean training loss.
func (n *Network) Train(x, y [][]float64, cfg TrainConfig) (float64, error) {
	cfg.applyDefaults()
	if err := cfg.validate(n, x, y); err != nil {
		return 0, err
	}
	g := newGrads(n)
	vel := newGrads(n) // momentum velocity
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	var epochLoss float64
	for e := 0; e < cfg.Epochs; e++ {
		cfg.Rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss = 0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			g.zero()
			for _, s := range idx[start:end] {
				epochLoss += n.backprop(x[s], y[s], g)
			}
			scale := cfg.LR / float64(end-start)
			for li, l := range n.Layers {
				for wi := range l.W {
					v := cfg.Momentum*vel.dW[li][wi] - scale*(g.dW[li][wi]+cfg.L2*l.W[wi])
					vel.dW[li][wi] = v
					l.W[wi] += v
				}
				for bi := range l.B {
					v := cfg.Momentum*vel.dB[li][bi] - scale*g.dB[li][bi]
					vel.dB[li][bi] = v
					l.B[bi] += v
				}
			}
		}
		epochLoss /= float64(len(x))
	}
	return epochLoss, nil
}
