// Package neural is a small from-scratch neural-network library sufficient
// to reproduce the stacked-autoencoder (SAE) traffic-volume predictor the
// paper adopts from Huang et al. [10]: dense layers, sigmoid/tanh/ReLU/
// identity activations, mean-squared-error backpropagation, minibatch SGD
// with momentum and L2 weight decay, greedy layer-wise (denoising)
// autoencoder pretraining, and supervised fine-tuning.
//
// Everything is deterministic under a caller-supplied *rand.Rand: the same
// seed and data always yield the same model.
package neural

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation enumerates supported activation functions. The zero value is
// invalid.
type Activation int

// Supported activations.
const (
	ActInvalid Activation = iota
	ActSigmoid
	ActTanh
	ActReLU
	ActIdentity
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case ActSigmoid:
		return "sigmoid"
	case ActTanh:
		return "tanh"
	case ActReLU:
		return "relu"
	case ActIdentity:
		return "identity"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// apply computes the activation of x.
func (a Activation) apply(x float64) float64 {
	switch a {
	case ActSigmoid:
		return 1 / (1 + math.Exp(-x))
	case ActTanh:
		return math.Tanh(x)
	case ActReLU:
		if x > 0 {
			return x
		}
		return 0
	case ActIdentity:
		return x
	default:
		panic("neural: invalid activation")
	}
}

// derivFromOutput computes da/dx expressed in terms of the activation
// output y = a(x); all supported activations admit this form.
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ActSigmoid:
		return y * (1 - y)
	case ActTanh:
		return 1 - y*y
	case ActReLU:
		if y > 0 {
			return 1
		}
		return 0
	case ActIdentity:
		return 1
	default:
		panic("neural: invalid activation")
	}
}

// Dense is a fully connected layer y = act(W·x + b), W stored row-major
// (Out × In).
type Dense struct {
	In, Out int
	W       []float64
	B       []float64
	Act     Activation
}

// NewDense returns a layer with Xavier/Glorot-uniform initialized weights.
func NewDense(in, out int, act Activation, rng *rand.Rand) (*Dense, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("neural: dense dims %d×%d must be positive", in, out)
	}
	if act < ActSigmoid || act > ActIdentity {
		return nil, fmt.Errorf("neural: invalid activation %v", act)
	}
	if rng == nil {
		return nil, fmt.Errorf("neural: nil RNG; pass rand.New(rand.NewSource(seed)) for determinism")
	}
	d := &Dense{In: in, Out: out, W: make([]float64, in*out), B: make([]float64, out), Act: act}
	limit := math.Sqrt(6 / float64(in+out))
	for i := range d.W {
		d.W[i] = (rng.Float64()*2 - 1) * limit
	}
	return d, nil
}

// Forward computes the layer output for input x.
func (d *Dense) Forward(x []float64) []float64 {
	out := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		out[o] = d.Act.apply(sum)
	}
	return out
}

// Network is a feedforward stack of dense layers.
type Network struct {
	Layers []*Dense

	// fwd is lazily created scratch for Loss; see FwdScratch.
	fwd *FwdScratch
}

// NewNetwork builds a network from layer sizes: sizes[0] is the input
// dimension; each subsequent entry adds a layer with the matching
// activation from acts (len(acts) == len(sizes)-1).
func NewNetwork(sizes []int, acts []Activation, rng *rand.Rand) (*Network, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("neural: need at least input and output sizes, got %v", sizes)
	}
	if len(acts) != len(sizes)-1 {
		return nil, fmt.Errorf("neural: %d activations for %d layers", len(acts), len(sizes)-1)
	}
	n := &Network{}
	for i := 1; i < len(sizes); i++ {
		l, err := NewDense(sizes[i-1], sizes[i], acts[i-1], rng)
		if err != nil {
			return nil, err
		}
		n.Layers = append(n.Layers, l)
	}
	return n, nil
}

// InputDim returns the expected input width.
func (n *Network) InputDim() int { return n.Layers[0].In }

// OutputDim returns the output width.
func (n *Network) OutputDim() int { return n.Layers[len(n.Layers)-1].Out }

// Forward computes the network output for input x.
func (n *Network) Forward(x []float64) []float64 {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// FwdScratch holds per-layer buffers for allocation-free inference via
// ForwardInto. A scratch is tied to the layer shapes it was built for and
// must not be shared between concurrent callers.
type FwdScratch struct {
	z [][]float64 // per layer: pre-activation W·x+b
	a [][]float64 // per layer: activation
}

// NewFwdScratch sizes a scratch for n's current layer shapes.
func NewFwdScratch(n *Network) *FwdScratch {
	s := &FwdScratch{}
	for _, l := range n.Layers {
		s.z = append(s.z, make([]float64, l.Out))
		s.a = append(s.a, make([]float64, l.Out))
	}
	return s
}

func (s *FwdScratch) fits(n *Network) bool {
	if len(s.z) != len(n.Layers) {
		return false
	}
	for i, l := range n.Layers {
		if len(s.z[i]) != l.Out {
			return false
		}
	}
	return true
}

// ForwardInto computes the network output for x without allocating,
// writing intermediates into s. The returned slice is owned by s and valid
// until the next call with the same scratch. Results are bit-identical to
// Forward.
func (n *Network) ForwardInto(s *FwdScratch, x []float64) []float64 {
	in := x
	for li, l := range n.Layers {
		mulNTRow(s.z[li], in, l.W, l.B, l.Out, l.In)
		actVec(l.Act, s.a[li], s.z[li])
		in = s.a[li]
	}
	return in
}

// grads holds per-layer parameter gradients.
type grads struct {
	dW [][]float64
	dB [][]float64
}

func newGrads(n *Network) *grads {
	g := &grads{dW: make([][]float64, len(n.Layers)), dB: make([][]float64, len(n.Layers))}
	for i, l := range n.Layers {
		g.dW[i] = make([]float64, len(l.W))
		g.dB[i] = make([]float64, len(l.B))
	}
	return g
}

func (g *grads) zero() {
	for i := range g.dW {
		clearF(g.dW[i])
		clearF(g.dB[i])
	}
}

func clearF(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// backprop accumulates MSE-loss gradients for one sample into g and returns
// the sample's squared-error loss (½·Σ(y−t)²). It runs the batched engine
// on a 1-row batch; Train bypasses this wrapper and drives the batched
// passes directly over whole minibatches.
func (n *Network) backprop(x, target []float64, g *grads) float64 {
	ts := newTrainState(n, 1, 1)
	loss := ts.runBatchPasses(x, target)
	for li := range g.dW {
		for i, v := range ts.g.dW[li] {
			g.dW[li][i] += v
		}
		for i, v := range ts.g.dB[li] {
			g.dB[li][i] += v
		}
	}
	return loss
}

// runBatchPasses runs forward + backward + gradient accumulation (no
// parameter update) for a single sample into ts.g.
func (ts *trainState) runBatchPasses(x, target []float64) float64 {
	ts.b = 1
	copy(ts.xb.Row(0), x)
	copy(ts.yb.Row(0), target)
	layers := ts.n.Layers
	for li, l := range layers {
		packTranspose(ts.wt[li], l.W, l.Out, l.In)
		ts.forwardRows(li, 0, 1)
	}
	loss := ts.outputDelta(0)
	for li := len(layers) - 1; li >= 0; li-- {
		ts.gradRows(li, 0, layers[li].Out)
		if li > 0 {
			ts.backwardRows(li, 0, 1)
		}
	}
	return loss
}

// Loss returns the mean squared-error loss (½·Σ(y−t)² averaged over
// samples) of the network on a dataset. It reuses internal forward scratch
// (no per-sample allocation), so concurrent Loss calls on one Network must
// be externally synchronized.
func (n *Network) Loss(x, y [][]float64) float64 {
	if len(x) == 0 {
		return 0
	}
	if n.fwd == nil || !n.fwd.fits(n) {
		n.fwd = NewFwdScratch(n)
	}
	total := 0.0
	for s := range x {
		out := n.ForwardInto(n.fwd, x[s])
		for o := range out {
			e := out[o] - y[s][o]
			total += 0.5 * e * e
		}
	}
	return total / float64(len(x))
}
