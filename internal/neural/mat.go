package neural

import "math"

// This file holds the batched matrix kernels the training and inference
// paths are built on. Everything here obeys one contract that the rest of
// the package (and the AVX2 variants in kernels_amd64.s) must preserve:
//
//	For every output element, floating-point contributions are accumulated
//	in ascending contraction-index order, exactly as the sample-level
//	reference loops do.
//
// Because IEEE-754 addition is not associative, this contract — not just
// mathematical equality — is what makes the batched, blocked and
// SIMD-accelerated paths produce bit-identical results to the per-sample
// formulation, for any batch size, blocking factor or worker count. The
// kernels may tile freely over *output* elements (rows/column chunks),
// since distinct outputs never share an accumulator; they must never split
// or reorder the contraction (k) loop of a single output element.

// Mat is a dense row-major matrix: element (i, j) lives at Data[i*Cols+j].
// Rows of one Mat are contiguous, so Row(i) returns a plain slice view.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates a zeroed rows×cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic("neural: matrix dims must be positive")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Row returns the i-th row as a slice view (shared backing).
func (m *Mat) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// MulNT computes dst = x·wᵀ for row-major x (r×k) and w (c×k), adding
// bias (len c) to every row when non-nil. dst must be r×c. The transposed
// operand makes both inputs stream row-contiguously, which is why the
// layer weights (Out×In) are stored this way.
func (dst *Mat) MulNT(x, w *Mat, bias []float64) {
	if x.Cols != w.Cols || dst.Rows != x.Rows || dst.Cols != w.Rows {
		panic("neural: MulNT dimension mismatch")
	}
	for s := 0; s < x.Rows; s++ {
		mulNTRow(dst.Row(s), x.Row(s), w.Data, bias, w.Rows, w.Cols)
	}
}

// mulNTRow computes one output row: dst[o] = bias[o] + Σ_i x[i]·w[o][i].
// Output elements are tiled 4-wide so four independent accumulator chains
// are in flight (the i-recurrence per element otherwise serializes on FP
// add latency); each element still accumulates in ascending i.
func mulNTRow(dst, x, w, bias []float64, out, in int) {
	o := 0
	for ; o+4 <= out; o += 4 {
		w0 := w[o*in : o*in+in]
		w1 := w[(o+1)*in : (o+1)*in+in]
		w2 := w[(o+2)*in : (o+2)*in+in]
		w3 := w[(o+3)*in : (o+3)*in+in]
		var s0, s1, s2, s3 float64
		if bias != nil {
			s0, s1, s2, s3 = bias[o], bias[o+1], bias[o+2], bias[o+3]
		}
		for i, xi := range x {
			s0 += w0[i] * xi
			s1 += w1[i] * xi
			s2 += w2[i] * xi
			s3 += w3[i] * xi
		}
		dst[o], dst[o+1], dst[o+2], dst[o+3] = s0, s1, s2, s3
	}
	for ; o < out; o++ {
		wo := w[o*in : o*in+in]
		var sum float64
		if bias != nil {
			sum = bias[o]
		}
		for i, xi := range x {
			sum += wo[i] * xi
		}
		dst[o] = sum
	}
}

// MulNN computes dst = d·w for row-major d (r×k) and w (k×c); dst must be
// r×c and is overwritten.
func (dst *Mat) MulNN(d, w *Mat) {
	if d.Cols != w.Rows || dst.Rows != d.Rows || dst.Cols != w.Cols {
		panic("neural: MulNN dimension mismatch")
	}
	for s := 0; s < d.Rows; s++ {
		row := dst.Row(s)
		clearF(row)
		axpyMat(row, d.Row(s), w.Data, w.Cols)
	}
}

// axpyMat accumulates dst[j] += Σ_k a[k]·b[k][j] over the len(a)×m
// row-major matrix b. The k loop is outermost (pure Go) or innermost per
// column chunk (AVX2), but each dst element always sees contributions in
// ascending k — the two schedules are bit-identical.
func axpyMat(dst, a, b []float64, m int) {
	if len(a) == 0 {
		return
	}
	if useAsmKernels && m >= 4 {
		axpyMatAsm(dst, a, b, m)
		return
	}
	axpyMatGo(dst, a, b, m)
}

// axpyMatGo is the portable kernel: k-tiled by 4 so each pass streams four
// b rows against one resident dst row. The per-element add sequence stays
// k-ascending (the four updates are separate statements, not a reassociated
// sum).
func axpyMatGo(dst, a, b []float64, m int) {
	dst = dst[:m]
	k := 0
	for ; k+4 <= len(a); k += 4 {
		a0, a1, a2, a3 := a[k], a[k+1], a[k+2], a[k+3]
		b0 := b[k*m : k*m+m]
		b1 := b[(k+1)*m : (k+1)*m+m]
		b2 := b[(k+2)*m : (k+2)*m+m]
		b3 := b[(k+3)*m : (k+3)*m+m]
		for j := range dst {
			v := dst[j]
			v += a0 * b0[j]
			v += a1 * b1[j]
			v += a2 * b2[j]
			v += a3 * b3[j]
			dst[j] = v
		}
	}
	for ; k < len(a); k++ {
		ak := a[k]
		bk := b[k*m : k*m+m]
		for j := range dst {
			dst[j] += ak * bk[j]
		}
	}
}

// gemmAcc accumulates a small general matrix product over whole row
// blocks: for r in [0, rows), j in [0, m):
//
//	dst[r*dstStride+j] += Σ_k a[r*aRowStride + k*aElemStride] · b[k*m+j]
//
// aElemStride lets the same kernel read a either row-contiguous (forward,
// backward: stride 1) or column-wise (gradient accumulation reads δᵀ
// straight out of the row-major δ matrix, stride = its width — no explicit
// transpose pass). One call covers a whole batch shard, amortizing call
// overhead that per-row kernels pay ~200k times per training run, and the
// AVX2 version processes row pairs so each loaded b chunk feeds two
// accumulator sets. Per dst element the k order is ascending, always.
func gemmAcc(dst, a, b []float64, rows, k, m, dstStride, aRowStride, aElemStride int) {
	if rows <= 0 || k <= 0 {
		return
	}
	if useAsmKernels && m >= 4 {
		gemmAccAsm(dst, a, b, rows, k, m, dstStride, aRowStride, aElemStride)
		return
	}
	for r := 0; r < rows; r++ {
		drow := dst[r*dstStride : r*dstStride+m]
		if aElemStride == 1 {
			axpyMatGo(drow, a[r*aRowStride:r*aRowStride+k], b, m)
			continue
		}
		for kk := 0; kk < k; kk++ {
			av := a[r*aRowStride+kk*aElemStride]
			brow := b[kk*m : kk*m+m]
			for j := range drow {
				drow[j] += av * brow[j]
			}
		}
	}
}

// sigmoidScalar is the sample-level reference: Activation.apply(ActSigmoid)
// spelled out. The AVX2 path must match it bit for bit (it replicates the
// runtime's archExp FMA algorithm per lane and bails out to this scalar
// form for arguments outside [-709, 708]).
func sigmoidScalar(z float64) float64 {
	return 1 / (1 + math.Exp(-z))
}

// sigmoidVec computes dst[i] = σ(src[i]). Out-of-place so a lane that the
// vector fast path cannot handle (|z| huge, NaN, ±Inf) can be recomputed
// from src by the scalar fallback.
func sigmoidVec(dst, src []float64) {
	if useAsmSigmoid {
		for len(src) >= 4 {
			n := sigmoidBlocksAsm(dst, src)
			dst, src = dst[n:], src[n:]
			if len(src) >= 4 {
				// The asm bailed on this block: one of its four lanes is
				// outside the fast-path domain. Resolve it scalar and resume.
				for i := 0; i < 4; i++ {
					dst[i] = sigmoidScalar(src[i])
				}
				dst, src = dst[4:], src[4:]
			}
		}
	}
	for i, z := range src {
		dst[i] = sigmoidScalar(z)
	}
}

// actVec applies the activation elementwise: dst[i] = a.apply(src[i]).
// Hoisting the switch out of the element loop removes the per-element
// dispatch the sample-level path paid.
func actVec(a Activation, dst, src []float64) {
	switch a {
	case ActSigmoid:
		sigmoidVec(dst, src)
	case ActTanh:
		for i, z := range src {
			dst[i] = math.Tanh(z)
		}
	case ActReLU:
		for i, z := range src {
			if z > 0 {
				dst[i] = z
			} else {
				dst[i] = 0
			}
		}
	case ActIdentity:
		copy(dst, src)
	default:
		panic("neural: invalid activation")
	}
}

// derivMulVec multiplies dst elementwise by a.derivFromOutput(y), matching
// the reference's "accumulate fully, then scale once" order.
func derivMulVec(a Activation, dst, y []float64) {
	switch a {
	case ActSigmoid:
		for i, yi := range y {
			dst[i] *= yi * (1 - yi)
		}
	case ActTanh:
		for i, yi := range y {
			dst[i] *= 1 - yi*yi
		}
	case ActReLU:
		for i, yi := range y {
			if !(yi > 0) {
				dst[i] *= 0 // ×0, not =0: preserves Inf·0 → NaN semantics
			}
		}
	case ActIdentity:
	default:
		panic("neural: invalid activation")
	}
}

// updateParams applies one momentum-SGD step to a parameter vector:
//
//	v = mom·v − scale·(g + l2·w);  w += v
//
// with the exact scalar expression order of the reference loop.
//
//lint:hot
func updateParams(w, g, vel []float64, mom, scale, l2 float64) {
	if useAsmKernels && len(w) >= 4 {
		updateParamsAsm(w, g, vel, mom, scale, l2)
		return
	}
	updateParamsGo(w, g, vel, mom, scale, l2)
}

func updateParamsGo(w, g, vel []float64, mom, scale, l2 float64) {
	for i := range w {
		v := mom*vel[i] - scale*(g[i]+l2*w[i])
		vel[i] = v
		w[i] += v
	}
}

// packTranspose writes the Out×In matrix w into dst as In×Out (dst[i][o] =
// w[o][i]), so the forward pass can run as column-contiguous axpyMat calls.
func packTranspose(dst, w []float64, out, in int) {
	for o := 0; o < out; o++ {
		row := w[o*in : o*in+in]
		for i, v := range row {
			dst[i*out+o] = v
		}
	}
}
