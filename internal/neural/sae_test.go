package neural

import (
	"math"
	"testing"
)

func TestSAEConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  SAEConfig
	}{
		{"zero input", SAEConfig{OutputDim: 1, Hidden: []int{4}}},
		{"zero output", SAEConfig{InputDim: 4, Hidden: []int{4}}},
		{"no hidden", SAEConfig{InputDim: 4, OutputDim: 1}},
		{"zero hidden width", SAEConfig{InputDim: 4, OutputDim: 1, Hidden: []int{0}}},
		{"bad noise", SAEConfig{InputDim: 4, OutputDim: 1, Hidden: []int{4}, NoiseRatio: 1.0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewSAE(tc.cfg); err == nil {
				t.Fatal("accepted invalid config")
			}
		})
	}
}

func TestSAEArchitecture(t *testing.T) {
	s, err := NewSAE(SAEConfig{InputDim: 6, OutputDim: 1, Hidden: []int{8, 4}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := s.Network()
	if len(n.Layers) != 3 {
		t.Fatalf("layers = %d, want 3", len(n.Layers))
	}
	if n.Layers[0].Out != 8 || n.Layers[1].Out != 4 || n.Layers[2].Out != 1 {
		t.Fatalf("widths = %d/%d/%d", n.Layers[0].Out, n.Layers[1].Out, n.Layers[2].Out)
	}
	if n.Layers[2].Act != ActIdentity {
		t.Fatal("output head must be linear")
	}
	if n.Layers[0].Act != ActSigmoid || n.Layers[1].Act != ActSigmoid {
		t.Fatal("hidden layers must be sigmoid")
	}
}

func TestSAEPretrainNeedsData(t *testing.T) {
	s, err := NewSAE(SAEConfig{InputDim: 4, OutputDim: 1, Hidden: []int{4}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Pretrain(nil); err == nil {
		t.Fatal("empty pretrain accepted")
	}
}

// synthWave builds a learnable nonlinear regression dataset: predict the
// next value of a noisy sinusoid from a window of previous values.
func synthWave(n, window int) (x, y [][]float64) {
	series := make([]float64, n+window+1)
	for i := range series {
		tt := float64(i)
		series[i] = 0.5 + 0.4*math.Sin(tt/6) + 0.05*math.Sin(tt/2.3)
	}
	for i := 0; i < n; i++ {
		x = append(x, series[i:i+window])
		y = append(y, []float64{series[i+window]})
	}
	return x, y
}

func TestSAEFitLearnsTimeSeries(t *testing.T) {
	x, y := synthWave(400, 8)
	s, err := NewSAE(SAEConfig{
		InputDim: 8, OutputDim: 1, Hidden: []int{16, 8},
		PretrainEpochs: 20, FinetuneEpochs: 80, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	loss, err := s.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.002 {
		t.Fatalf("SAE fit loss %v, want < 0.002", loss)
	}
	// Held-out style check on in-range inputs.
	var worst float64
	for i := 0; i < len(x); i += 37 {
		got := s.Predict(x[i])[0]
		if e := math.Abs(got - y[i][0]); e > worst {
			worst = e
		}
	}
	if worst > 0.15 {
		t.Fatalf("worst prediction error %v, want < 0.15", worst)
	}
}

func TestSAEPretrainingImprovesReconstruction(t *testing.T) {
	x, _ := synthWave(300, 8)
	s, err := NewSAE(SAEConfig{
		InputDim: 8, OutputDim: 1, Hidden: []int{12},
		PretrainEpochs: 40, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruction loss of an untrained encoder/decoder pair vs after
	// pretraining: measure via a fresh decoder trained 0 epochs is awkward,
	// so instead check that the pretrained first layer maps similar inputs
	// to similar codes and dissimilar inputs to distinct codes.
	if err := s.Pretrain(x); err != nil {
		t.Fatal(err)
	}
	enc := s.Network().Layers[0]
	a, b := enc.Forward(x[0]), enc.Forward(x[1]) // adjacent windows: similar
	c := enc.Forward(x[150])                     // far window: different phase
	dAB, dAC := 0.0, 0.0
	for i := range a {
		dAB += (a[i] - b[i]) * (a[i] - b[i])
		dAC += (a[i] - c[i]) * (a[i] - c[i])
	}
	if dAB >= dAC {
		t.Fatalf("code distances: adjacent %v should be below distant %v", dAB, dAC)
	}
}

func TestSAEDeterministic(t *testing.T) {
	x, y := synthWave(120, 6)
	build := func() float64 {
		s, err := NewSAE(SAEConfig{
			InputDim: 6, OutputDim: 1, Hidden: []int{8},
			PretrainEpochs: 5, FinetuneEpochs: 10, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		loss, err := s.Fit(x, y)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("SAE nondeterministic: %v vs %v", a, b)
	}
}

func TestSAECorruptMasksFraction(t *testing.T) {
	s, err := NewSAE(SAEConfig{InputDim: 4, OutputDim: 1, Hidden: []int{4}, NoiseRatio: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	x := make([][]float64, 200)
	for i := range x {
		x[i] = []float64{1, 1, 1, 1}
	}
	out := s.corrupt(x)
	zeros := 0
	for _, row := range out {
		for _, v := range row {
			if v == 0 {
				zeros++
			}
		}
	}
	frac := float64(zeros) / 800
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("masked fraction %v, want ≈0.5", frac)
	}
	// Original data untouched.
	for _, row := range x {
		for _, v := range row {
			if v != 1 {
				t.Fatal("corrupt mutated its input")
			}
		}
	}
}

func BenchmarkSAEPredict(b *testing.B) {
	x, y := synthWave(200, 8)
	s, err := NewSAE(SAEConfig{InputDim: 8, OutputDim: 1, Hidden: []int{16, 8},
		PretrainEpochs: 5, FinetuneEpochs: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Predict(x[i%len(x)])
	}
}
