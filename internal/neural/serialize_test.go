package neural

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	n, err := NewNetwork([]int{3, 5, 2}, []Activation{ActSigmoid, ActIdentity}, rng(13))
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.2, -0.4, 0.9}
	want := n.Forward(x)

	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := got.Forward(x)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("output %d: %v vs %v", i, out[i], want[i])
		}
	}
	if got.InputDim() != 3 || got.OutputDim() != 2 {
		t.Fatalf("dims %d/%d", got.InputDim(), got.OutputDim())
	}
}

func TestLoadRejectsCorruptModels(t *testing.T) {
	cases := map[string]string{
		"not json":       "{nope",
		"wrong format":   `{"format":"other","version":1,"layers":[{"in":1,"out":1,"act":1,"w":[0],"b":[0]}]}`,
		"wrong version":  `{"format":"evvo-neural","version":9,"layers":[{"in":1,"out":1,"act":1,"w":[0],"b":[0]}]}`,
		"no layers":      `{"format":"evvo-neural","version":1,"layers":[]}`,
		"bad dims":       `{"format":"evvo-neural","version":1,"layers":[{"in":0,"out":1,"act":1,"w":[],"b":[0]}]}`,
		"bad activation": `{"format":"evvo-neural","version":1,"layers":[{"in":1,"out":1,"act":99,"w":[0],"b":[0]}]}`,
		"weight count":   `{"format":"evvo-neural","version":1,"layers":[{"in":2,"out":1,"act":1,"w":[0],"b":[0]}]}`,
		"bias count":     `{"format":"evvo-neural","version":1,"layers":[{"in":1,"out":1,"act":1,"w":[0],"b":[0,0]}]}`,
		"shape mismatch": `{"format":"evvo-neural","version":1,"layers":[{"in":1,"out":2,"act":1,"w":[0,0],"b":[0,0]},{"in":3,"out":1,"act":1,"w":[0,0,0],"b":[0]}]}`,
		"unknown field":  `{"format":"evvo-neural","version":1,"extra":1,"layers":[{"in":1,"out":1,"act":1,"w":[0],"b":[0]}]}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(in)); err == nil {
				t.Fatalf("accepted %q", in)
			}
		})
	}
}

func TestSaveLoadTrainedSAE(t *testing.T) {
	x, y := synthWave(150, 6)
	s, err := NewSAE(SAEConfig{
		InputDim: 6, OutputDim: 1, Hidden: []int{8},
		PretrainEpochs: 5, FinetuneEpochs: 15, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Network().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(x); i += 29 {
		if a, b := s.Predict(x[i])[0], loaded.Forward(x[i])[0]; a != b {
			t.Fatalf("prediction diverges at %d: %v vs %v", i, a, b)
		}
	}
}
