package neural

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestActivationString(t *testing.T) {
	for a, want := range map[Activation]string{
		ActSigmoid: "sigmoid", ActTanh: "tanh", ActReLU: "relu", ActIdentity: "identity",
	} {
		if a.String() != want {
			t.Errorf("%v != %q", a, want)
		}
	}
	if !strings.Contains(ActInvalid.String(), "0") {
		t.Errorf("invalid activation string = %q", ActInvalid.String())
	}
}

func TestActivationValues(t *testing.T) {
	if got := ActSigmoid.apply(0); got != 0.5 {
		t.Fatalf("sigmoid(0) = %v, want 0.5", got)
	}
	if got := ActReLU.apply(-3); got != 0 {
		t.Fatalf("relu(-3) = %v, want 0", got)
	}
	if got := ActReLU.apply(3); got != 3 {
		t.Fatalf("relu(3) = %v, want 3", got)
	}
	if got := ActTanh.apply(0); got != 0 {
		t.Fatalf("tanh(0) = %v, want 0", got)
	}
	if got := ActIdentity.apply(1.7); got != 1.7 {
		t.Fatalf("identity(1.7) = %v", got)
	}
}

// Property: derivFromOutput matches a numerical derivative of apply.
func TestPropActivationDerivatives(t *testing.T) {
	const h = 1e-6
	for _, a := range []Activation{ActSigmoid, ActTanh, ActIdentity} {
		f := func(x float64) bool {
			x = math.Mod(x, 5)
			y := a.apply(x)
			num := (a.apply(x+h) - a.apply(x-h)) / (2 * h)
			return math.Abs(a.derivFromOutput(y)-num) < 1e-5
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", a, err)
		}
	}
}

func TestNewDenseValidation(t *testing.T) {
	if _, err := NewDense(0, 3, ActSigmoid, rng(1)); err == nil {
		t.Fatal("zero input accepted")
	}
	if _, err := NewDense(3, 3, ActInvalid, rng(1)); err == nil {
		t.Fatal("invalid activation accepted")
	}
	if _, err := NewDense(3, 3, ActSigmoid, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestDenseForwardShape(t *testing.T) {
	d, err := NewDense(4, 2, ActIdentity, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	out := d.Forward([]float64{1, 2, 3, 4})
	if len(out) != 2 {
		t.Fatalf("output width %d, want 2", len(out))
	}
}

func TestDenseForwardKnownWeights(t *testing.T) {
	d := &Dense{In: 2, Out: 1, W: []float64{2, -1}, B: []float64{0.5}, Act: ActIdentity}
	out := d.Forward([]float64{3, 4})
	if want := 2*3 - 1*4 + 0.5; out[0] != want {
		t.Fatalf("forward = %v, want %v", out[0], want)
	}
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork([]int{4}, nil, rng(1)); err == nil {
		t.Fatal("single size accepted")
	}
	if _, err := NewNetwork([]int{4, 2}, []Activation{ActSigmoid, ActSigmoid}, rng(1)); err == nil {
		t.Fatal("mismatched activations accepted")
	}
}

func TestNetworkDims(t *testing.T) {
	n, err := NewNetwork([]int{5, 3, 2}, []Activation{ActSigmoid, ActIdentity}, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	if n.InputDim() != 5 || n.OutputDim() != 2 {
		t.Fatalf("dims = %d/%d, want 5/2", n.InputDim(), n.OutputDim())
	}
	if out := n.Forward(make([]float64, 5)); len(out) != 2 {
		t.Fatalf("forward width %d", len(out))
	}
}

// Gradient check: analytic backprop gradients must match central finite
// differences on every parameter of a small network.
func TestBackpropMatchesNumericalGradient(t *testing.T) {
	n, err := NewNetwork([]int{3, 4, 2}, []Activation{ActSigmoid, ActIdentity}, rng(7))
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.6, 0.9}
	y := []float64{0.2, -0.4}

	g := newGrads(n)
	n.backprop(x, y, g)

	loss := func() float64 {
		out := n.Forward(x)
		l := 0.0
		for o := range out {
			e := out[o] - y[o]
			l += 0.5 * e * e
		}
		return l
	}
	const h = 1e-6
	for li, l := range n.Layers {
		for wi := range l.W {
			orig := l.W[wi]
			l.W[wi] = orig + h
			up := loss()
			l.W[wi] = orig - h
			down := loss()
			l.W[wi] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-g.dW[li][wi]) > 1e-5 {
				t.Fatalf("layer %d W[%d]: analytic %v vs numeric %v", li, wi, g.dW[li][wi], num)
			}
		}
		for bi := range l.B {
			orig := l.B[bi]
			l.B[bi] = orig + h
			up := loss()
			l.B[bi] = orig - h
			down := loss()
			l.B[bi] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-g.dB[li][bi]) > 1e-5 {
				t.Fatalf("layer %d B[%d]: analytic %v vs numeric %v", li, bi, g.dB[li][bi], num)
			}
		}
	}
}

func TestTrainConfigValidation(t *testing.T) {
	n, _ := NewNetwork([]int{2, 2, 1}, []Activation{ActSigmoid, ActIdentity}, rng(1))
	x := [][]float64{{0, 0}}
	y := [][]float64{{0}}
	cases := []struct {
		name string
		cfg  TrainConfig
	}{
		{"zero epochs", TrainConfig{Rng: rng(1)}},
		{"nil rng", TrainConfig{Epochs: 1}},
		{"bad momentum", TrainConfig{Epochs: 1, Momentum: 1.0, Rng: rng(1)}},
		{"negative l2", TrainConfig{Epochs: 1, L2: -1, Rng: rng(1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := n.Train(x, y, tc.cfg); err == nil {
				t.Fatal("accepted invalid config")
			}
		})
	}
	if _, err := n.Train([][]float64{{1}}, y, TrainConfig{Epochs: 1, Rng: rng(1)}); err == nil {
		t.Fatal("width mismatch accepted")
	}
	if _, err := n.Train(x, [][]float64{{1, 2}}, TrainConfig{Epochs: 1, Rng: rng(1)}); err == nil {
		t.Fatal("target width mismatch accepted")
	}
}

func TestTrainLearnsXOR(t *testing.T) {
	n, err := NewNetwork([]int{2, 8, 1}, []Activation{ActTanh, ActIdentity}, rng(42))
	if err != nil {
		t.Fatal(err)
	}
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := [][]float64{{0}, {1}, {1}, {0}}
	loss, err := n.Train(x, y, TrainConfig{Epochs: 2000, BatchSize: 4, LR: 0.1, Rng: rng(42)})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.01 {
		t.Fatalf("XOR loss %v, want < 0.01", loss)
	}
	for i := range x {
		out := n.Forward(x[i])[0]
		if math.Abs(out-y[i][0]) > 0.2 {
			t.Fatalf("XOR(%v) = %v, want %v", x[i], out, y[i][0])
		}
	}
}

func TestTrainLearnsLinearMap(t *testing.T) {
	// y = 2a − b + 0.5 is exactly representable: loss should collapse.
	n, err := NewNetwork([]int{2, 1}, []Activation{ActIdentity}, rng(3))
	if err != nil {
		t.Fatal(err)
	}
	r := rng(5)
	var x, y [][]float64
	for i := 0; i < 200; i++ {
		a, b := r.Float64(), r.Float64()
		x = append(x, []float64{a, b})
		y = append(y, []float64{2*a - b + 0.5})
	}
	loss, err := n.Train(x, y, TrainConfig{Epochs: 300, LR: 0.1, Rng: rng(5)})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1e-6 {
		t.Fatalf("linear fit loss %v, want ≈0", loss)
	}
}

func TestTrainDeterministic(t *testing.T) {
	build := func() float64 {
		n, err := NewNetwork([]int{2, 6, 1}, []Activation{ActSigmoid, ActIdentity}, rng(9))
		if err != nil {
			t.Fatal(err)
		}
		x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
		y := [][]float64{{0}, {1}, {1}, {0}}
		loss, err := n.Train(x, y, TrainConfig{Epochs: 50, LR: 0.1, Rng: rng(9)})
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("training nondeterministic: %v vs %v", a, b)
	}
}

func TestTrainWeightDecayShrinksWeights(t *testing.T) {
	norm := func(l2 float64) float64 {
		n, err := NewNetwork([]int{2, 6, 1}, []Activation{ActSigmoid, ActIdentity}, rng(11))
		if err != nil {
			t.Fatal(err)
		}
		x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
		y := [][]float64{{0}, {1}, {1}, {0}}
		if _, err := n.Train(x, y, TrainConfig{Epochs: 500, LR: 0.1, L2: l2, Rng: rng(11)}); err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, l := range n.Layers {
			for _, w := range l.W {
				s += w * w
			}
		}
		return s
	}
	if plain, decayed := norm(0), norm(0.01); decayed >= plain {
		t.Fatalf("L2 decay did not shrink weights: %v vs %v", decayed, plain)
	}
}

func TestNetworkLossEmptyData(t *testing.T) {
	n, _ := NewNetwork([]int{1, 1}, []Activation{ActIdentity}, rng(1))
	if l := n.Loss(nil, nil); l != 0 {
		t.Fatalf("Loss(nil) = %v, want 0", l)
	}
}
