//go:build amd64

package neural

// CPU feature probes (kernels_amd64.s).
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// axpyMatAsm is the AVX2 form of axpyMatGo: 16/8/4-wide column chunks with
// the k loop innermost. Multiplies and adds are separate instructions
// (VMULPD+VADDPD, never FMA) so each lane performs the exact rounding
// sequence of the scalar reference.
//
//go:noescape
func axpyMatAsm(dst, a, b []float64, m int)

// gemmAccAsm is the AVX2 form of the portable loop in gemmAcc: row pairs
// × 16/8/4/1-wide column chunks, k innermost, strided a reads, separate
// VMULPD/VADDPD (no FMA).
//
//go:noescape
func gemmAccAsm(dst, a, b []float64, rows, k, m, dstStride, aRowStride, aElemStride int)

// updateParamsAsm is the AVX2 form of updateParamsGo (same per-element
// expression order, no FMA).
//
//go:noescape
func updateParamsAsm(w, g, vel []float64, mom, scale, l2 float64)

// sigmoidBlocksAsm processes src in 4-lane blocks, writing σ(src[i]) to
// dst, and returns how many elements it handled (a multiple of 4). It stops
// early — without writing the offending block — when any lane of a block
// falls outside the fast-path domain [-709, 708] (for z; i.e. -z outside
// [-708, 709]), including NaN/±Inf; the caller finishes that block with
// sigmoidScalar and calls back in. Within the domain it is a 4-lane
// transcription of the runtime's archExp FMA branch (math/exp_amd64.s), so
// every lane is bit-identical to 1/(1+math.Exp(-z)).
//
//go:noescape
func sigmoidBlocksAsm(dst, src []float64) int

var useAsmKernels, useAsmSigmoid = detectKernels()

func detectKernels() (kernels, sigmoid bool) {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false, false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c1&osxsave == 0 || c1&avx == 0 {
		return false, false
	}
	if xcr0, _ := xgetbv(); xcr0&0x6 != 0x6 {
		return false, false // OS does not preserve YMM state
	}
	_, b7, _, _ := cpuid(7, 0)
	if b7&(1<<5) == 0 { // AVX2
		return false, false
	}
	// The vector sigmoid replicates math.Exp's FMA branch, which the
	// runtime selects iff AVX && FMA ($GOROOT/src/math/exp_amd64.go); only
	// under the same condition do the two agree bit-for-bit.
	return true, c1&fma != 0
}
