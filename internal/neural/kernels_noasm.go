//go:build !amd64

package neural

// On non-amd64 targets the portable kernels are the only implementation;
// the dispatch flags stay false and these stubs are unreachable.
var useAsmKernels, useAsmSigmoid = false, false

func axpyMatAsm(dst, a, b []float64, m int) {
	panic("neural: axpyMatAsm without asm support")
}

func gemmAccAsm(dst, a, b []float64, rows, k, m, dstStride, aRowStride, aElemStride int) {
	panic("neural: gemmAccAsm without asm support")
}

func updateParamsAsm(w, g, vel []float64, mom, scale, l2 float64) {
	panic("neural: updateParamsAsm without asm support")
}

func sigmoidBlocksAsm(dst, src []float64) int {
	panic("neural: sigmoidBlocksAsm without asm support")
}
