package neural

import (
	"fmt"
	"math/rand"
)

// SAEConfig describes a stacked-autoencoder regressor: sigmoid hidden
// layers pretrained greedily as (denoising) autoencoders, topped by a
// linear output layer, then fine-tuned end to end (Huang et al. [10]).
type SAEConfig struct {
	// InputDim and OutputDim are the regressor's interface widths.
	InputDim, OutputDim int
	// Hidden lists the encoder widths, e.g. {64, 32}.
	Hidden []int
	// PretrainEpochs per autoencoder (default 30).
	PretrainEpochs int
	// FinetuneEpochs of supervised training (default 60).
	FinetuneEpochs int
	// NoiseRatio is the denoising mask probability in [0, 1) applied to
	// autoencoder inputs during pretraining (default 0.1).
	NoiseRatio float64
	// LR is the learning rate for both phases (default 0.05).
	LR float64
	// BatchSize for both phases (default 16).
	BatchSize int
	// Seed makes the whole build deterministic.
	Seed int64
	// Workers bounds per-minibatch parallelism (see TrainConfig.Workers);
	// results are bit-identical for any value.
	Workers int
}

func (c *SAEConfig) applyDefaults() {
	if c.PretrainEpochs == 0 {
		c.PretrainEpochs = 30
	}
	if c.FinetuneEpochs == 0 {
		c.FinetuneEpochs = 60
	}
	if c.NoiseRatio == 0 {
		c.NoiseRatio = 0.1
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
}

func (c *SAEConfig) validate() error {
	switch {
	case c.InputDim <= 0 || c.OutputDim <= 0:
		return fmt.Errorf("neural: SAE dims in=%d out=%d must be positive", c.InputDim, c.OutputDim)
	case len(c.Hidden) == 0:
		return fmt.Errorf("neural: SAE needs at least one hidden layer")
	case c.NoiseRatio < 0 || c.NoiseRatio >= 1:
		return fmt.Errorf("neural: SAE noise ratio %g must be in [0, 1)", c.NoiseRatio)
	}
	for i, h := range c.Hidden {
		if h <= 0 {
			return fmt.Errorf("neural: SAE hidden layer %d width %d must be positive", i, h)
		}
	}
	return nil
}

// SAE is a stacked-autoencoder regressor. Build with NewSAE, then Fit.
type SAE struct {
	cfg SAEConfig
	net *Network
	rng *rand.Rand
}

// NewSAE constructs the (untrained) network.
func NewSAE(cfg SAEConfig) (*SAE, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := append([]int{cfg.InputDim}, cfg.Hidden...)
	sizes = append(sizes, cfg.OutputDim)
	acts := make([]Activation, len(sizes)-1)
	for i := range acts {
		acts[i] = ActSigmoid
	}
	acts[len(acts)-1] = ActIdentity // linear regression head
	net, err := NewNetwork(sizes, acts, rng)
	if err != nil {
		return nil, err
	}
	return &SAE{cfg: cfg, net: net, rng: rng}, nil
}

// Network exposes the underlying network (e.g. for inspection in tests).
func (s *SAE) Network() *Network { return s.net }

// Pretrain runs greedy layer-wise autoencoder training on unlabeled inputs:
// each hidden layer is trained to reconstruct its (noise-corrupted) input
// through a temporary sigmoid decoder, then the encoded representation
// feeds the next layer.
//
//lint:certify pure
func (s *SAE) Pretrain(x [][]float64) error {
	if len(x) == 0 {
		return fmt.Errorf("neural: pretrain needs data")
	}
	rep := x
	for li := 0; li < len(s.cfg.Hidden); li++ {
		enc := s.net.Layers[li]
		dec, err := NewDense(enc.Out, enc.In, ActSigmoid, s.rng)
		if err != nil {
			return err
		}
		ae := &Network{Layers: []*Dense{enc, dec}}
		in := rep
		if s.cfg.NoiseRatio > 0 {
			in = s.corrupt(rep)
		}
		if _, err := ae.Train(in, rep, TrainConfig{
			Epochs: s.cfg.PretrainEpochs, BatchSize: s.cfg.BatchSize,
			LR: s.cfg.LR, Rng: s.rng, Workers: s.cfg.Workers,
		}); err != nil {
			return fmt.Errorf("neural: pretraining layer %d: %w", li, err)
		}
		rep = encodeAll(enc, rep)
	}
	return nil
}

// encodeAll runs one layer over every sample as a single batched matmul
// plus one fused activation pass, bit-identical to calling enc.Forward per
// row. The returned rows alias one backing matrix.
func encodeAll(enc *Dense, x [][]float64) [][]float64 {
	xm := NewMat(len(x), enc.In)
	for i, row := range x {
		copy(xm.Row(i), row)
	}
	zm := NewMat(len(x), enc.Out)
	zm.MulNT(xm, &Mat{Rows: enc.Out, Cols: enc.In, Data: enc.W}, enc.B)
	actVec(enc.Act, zm.Data, zm.Data)
	out := make([][]float64, len(x))
	for i := range out {
		out[i] = zm.Row(i)
	}
	return out
}

// corrupt returns a copy of x with each element zeroed with probability
// NoiseRatio (denoising-autoencoder masking noise).
func (s *SAE) corrupt(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		cp := make([]float64, len(row))
		for j, v := range row {
			if s.rng.Float64() < s.cfg.NoiseRatio {
				cp[j] = 0
			} else {
				cp[j] = v
			}
		}
		out[i] = cp
	}
	return out
}

// Fit pretrains on the inputs and fine-tunes on the labeled pairs,
// returning the final fine-tuning loss.
//
//lint:certify pure
func (s *SAE) Fit(x, y [][]float64) (float64, error) {
	if err := s.Pretrain(x); err != nil {
		return 0, err
	}
	return s.net.Train(x, y, TrainConfig{
		Epochs: s.cfg.FinetuneEpochs, BatchSize: s.cfg.BatchSize,
		LR: s.cfg.LR, Rng: s.rng, Workers: s.cfg.Workers,
	})
}

// Predict returns the regression output for one input.
//
//lint:certify pure
func (s *SAE) Predict(x []float64) []float64 {
	return s.net.Forward(x)
}
