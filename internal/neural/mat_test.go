package neural

import (
	"math"
	"math/rand"
	"testing"
)

// Kernel parity tests: the AVX2 kernels must be bit-identical to the
// portable Go references on every input. These are skipped (trivially
// green) on machines where the asm paths are disabled.

func TestAxpyMatAsmMatchesGo(t *testing.T) {
	if !useAsmKernels {
		t.Skip("asm kernels disabled on this CPU")
	}
	rng := rand.New(rand.NewSource(1))
	for _, m := range []int{1, 2, 3, 4, 5, 7, 8, 11, 16, 17, 23, 32, 40, 61} {
		for _, n := range []int{1, 2, 3, 4, 5, 13, 32} {
			a := make([]float64, n)
			b := make([]float64, n*m)
			want := make([]float64, m)
			got := make([]float64, m)
			for i := range a {
				a[i] = rng.NormFloat64()
			}
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			for i := range want {
				v := rng.NormFloat64()
				want[i] = v
				got[i] = v
			}
			axpyMatGo(want, a, b, m)
			axpyMatAsm(got, a, b, m)
			for j := range want {
				if math.Float64bits(want[j]) != math.Float64bits(got[j]) {
					t.Fatalf("m=%d n=%d: dst[%d] = %x (asm) vs %x (go)", m, n, j,
						math.Float64bits(got[j]), math.Float64bits(want[j]))
				}
			}
		}
	}
}

// gemmAccRef is the plain-loop semantic of gemmAcc, independent of both
// the Go and asm production kernels.
func gemmAccRef(dst, a, b []float64, rows, k, m, dstStride, aRowStride, aElemStride int) {
	for r := 0; r < rows; r++ {
		for kk := 0; kk < k; kk++ {
			av := a[r*aRowStride+kk*aElemStride]
			for j := 0; j < m; j++ {
				dst[r*dstStride+j] += av * b[kk*m+j]
			}
		}
	}
}

func TestGemmAccMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, rows := range []int{1, 2, 3, 4, 5, 8, 16, 17} {
		for _, k := range []int{1, 2, 5, 16, 23} {
			for _, m := range []int{1, 2, 3, 4, 5, 8, 11, 16, 23, 37} {
				for _, strided := range []bool{false, true} {
					aRowStride, aElemStride := k, 1
					if strided {
						aRowStride, aElemStride = 1, rows+3
					}
					dstStride := m + 2
					aLen := (rows-1)*aRowStride + (k-1)*aElemStride + 1
					a := make([]float64, aLen)
					b := make([]float64, k*m)
					want := make([]float64, (rows-1)*dstStride+m)
					got := make([]float64, len(want))
					for i := range a {
						a[i] = rng.NormFloat64()
					}
					for i := range b {
						b[i] = rng.NormFloat64()
					}
					for i := range want {
						v := rng.NormFloat64()
						want[i] = v
						got[i] = v
					}
					gemmAccRef(want, a, b, rows, k, m, dstStride, aRowStride, aElemStride)
					gemmAcc(got, a, b, rows, k, m, dstStride, aRowStride, aElemStride)
					for i := range want {
						if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
							t.Fatalf("rows=%d k=%d m=%d strided=%v: dst[%d] = %x want %x",
								rows, k, m, strided, i,
								math.Float64bits(got[i]), math.Float64bits(want[i]))
						}
					}
				}
			}
		}
	}
}

func TestUpdateParamsAsmMatchesGo(t *testing.T) {
	if !useAsmKernels {
		t.Skip("asm kernels disabled on this CPU")
	}
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 4, 5, 8, 15, 64, 101} {
		w1 := make([]float64, n)
		g := make([]float64, n)
		v1 := make([]float64, n)
		w2 := make([]float64, n)
		v2 := make([]float64, n)
		for i := 0; i < n; i++ {
			w1[i] = rng.NormFloat64()
			g[i] = rng.NormFloat64()
			v1[i] = rng.NormFloat64()
			w2[i], v2[i] = w1[i], v1[i]
		}
		updateParamsGo(w1, g, v1, 0.9, 0.0125, 1e-4)
		updateParamsAsm(w2, g, v2, 0.9, 0.0125, 1e-4)
		for i := 0; i < n; i++ {
			if math.Float64bits(w1[i]) != math.Float64bits(w2[i]) ||
				math.Float64bits(v1[i]) != math.Float64bits(v2[i]) {
				t.Fatalf("n=%d i=%d: w %x vs %x, v %x vs %x", n, i,
					math.Float64bits(w2[i]), math.Float64bits(w1[i]),
					math.Float64bits(v2[i]), math.Float64bits(v1[i]))
			}
		}
	}
}

func checkSigmoidBits(t *testing.T, zs []float64) {
	t.Helper()
	got := make([]float64, len(zs))
	sigmoidVec(got, zs)
	for i, z := range zs {
		want := sigmoidScalar(z)
		if math.Float64bits(want) != math.Float64bits(got[i]) {
			t.Fatalf("sigmoid(%g): got %x (%g), want %x (%g)",
				z, math.Float64bits(got[i]), got[i], math.Float64bits(want), want)
		}
	}
}

func TestSigmoidVecMatchesScalar(t *testing.T) {
	if !useAsmSigmoid {
		t.Skip("vector sigmoid disabled on this CPU")
	}
	// Typical pre-activation range, dense sweep.
	zs := make([]float64, 200001)
	for i := range zs {
		zs[i] = -25 + 50*float64(i)/float64(len(zs)-1)
	}
	checkSigmoidBits(t, zs)

	// Wide range straddling the fast-path domain boundary, forcing
	// block bail-out and restart.
	rng := rand.New(rand.NewSource(3))
	wide := make([]float64, 40001)
	for i := range wide {
		wide[i] = (rng.Float64()*2 - 1) * 800
	}
	checkSigmoidBits(t, wide)

	// Edge cases: boundaries, zeros, tiny/huge magnitudes, non-finite.
	edge := []float64{
		0, math.Copysign(0, -1),
		707.999, 708, math.Nextafter(708, 709), 708.5, 709, math.Nextafter(709, 710),
		-707.999, -708, -708.5, -709, math.Nextafter(-709, -710), -710,
		745, -745, 1e300, -1e300,
		5e-324, -5e-324, 1e-308, -1e-308,
		math.Inf(1), math.Inf(-1), math.NaN(),
		1, -1, 0.5, -0.5, 17.25, -17.25,
	}
	// Pad so the interesting values land in different lane positions.
	for pad := 0; pad < 4; pad++ {
		padded := make([]float64, 0, len(edge)+pad)
		for i := 0; i < pad; i++ {
			padded = append(padded, 0.25)
		}
		padded = append(padded, edge...)
		checkSigmoidBits(t, padded)
	}
}

func TestSigmoidVecShortAndUnaligned(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for n := 0; n <= 21; n++ {
		zs := make([]float64, n)
		for i := range zs {
			zs[i] = rng.NormFloat64() * 6
		}
		checkSigmoidBits(t, zs)
	}
}

func TestMulNTMatchesDenseForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d, err := NewDense(5, 7, ActIdentity, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := NewMat(3, 5)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	w := &Mat{Rows: 7, Cols: 5, Data: d.W}
	out := NewMat(3, 7)
	out.MulNT(x, w, d.B)
	for s := 0; s < 3; s++ {
		want := d.Forward(x.Row(s))
		for o, wv := range want {
			if math.Float64bits(wv) != math.Float64bits(out.Row(s)[o]) {
				t.Fatalf("row %d out %d: MulNT %g != Forward %g", s, o, out.Row(s)[o], wv)
			}
		}
	}
}

func TestMulNNMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewMat(3, 6)
	w := NewMat(6, 9)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	out := NewMat(3, 9)
	out.MulNN(d, w)
	for s := 0; s < d.Rows; s++ {
		for j := 0; j < w.Cols; j++ {
			var sum float64
			for k := 0; k < d.Cols; k++ {
				sum += d.Row(s)[k] * w.Row(k)[j]
			}
			if math.Abs(sum-out.Row(s)[j]) > 1e-12 {
				t.Fatalf("(%d,%d): got %g want %g", s, j, out.Row(s)[j], sum)
			}
		}
	}
}
