//go:build amd64

#include "textflag.h"

// AVX2 kernels. Contract (see mat.go): per output element, floating-point
// operations happen in the exact order of the portable Go reference.
// axpyMat/updateParams therefore use separate VMULPD/VADDPD (an FMA would
// skip the intermediate rounding the reference performs); sigmoidBlocks
// instead MUST use FMA, because it transcribes the runtime's archExp FMA
// branch lane by lane.

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpyMatAsm(dst, a, b []float64, m int)
//
// dst[j] += sum_k a[k]*b[k*m+j], k ascending per element. Columns are
// tiled 16/8/4 wide with the k loop innermost; the per-element operation
// sequence is identical to the k-outer Go kernel.
TEXT ·axpyMatAsm(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), R8
	MOVQ b_base+48(FP), DX
	MOVQ m+72(FP), R9
	TESTQ R8, R8
	JZ   axdone
	MOVQ R9, R13
	SHLQ $3, R13          // b row stride in bytes
	XORQ R10, R10         // j

axj16:
	MOVQ R10, AX
	ADDQ $16, AX
	CMPQ AX, R9
	JGT  axj8
	LEAQ (DI)(R10*8), R14
	VMOVUPD (R14), Y0
	VMOVUPD 32(R14), Y1
	VMOVUPD 64(R14), Y2
	VMOVUPD 96(R14), Y3
	LEAQ (DX)(R10*8), R11
	MOVQ SI, BX
	MOVQ R8, R12
axk16:
	VBROADCASTSD (BX), Y4
	VMULPD (R11), Y4, Y5
	VADDPD Y5, Y0, Y0
	VMULPD 32(R11), Y4, Y5
	VADDPD Y5, Y1, Y1
	VMULPD 64(R11), Y4, Y5
	VADDPD Y5, Y2, Y2
	VMULPD 96(R11), Y4, Y5
	VADDPD Y5, Y3, Y3
	ADDQ $8, BX
	ADDQ R13, R11
	DECQ R12
	JNZ  axk16
	VMOVUPD Y0, (R14)
	VMOVUPD Y1, 32(R14)
	VMOVUPD Y2, 64(R14)
	VMOVUPD Y3, 96(R14)
	ADDQ $16, R10
	JMP  axj16

axj8:
	MOVQ R10, AX
	ADDQ $8, AX
	CMPQ AX, R9
	JGT  axj4
	LEAQ (DI)(R10*8), R14
	VMOVUPD (R14), Y0
	VMOVUPD 32(R14), Y1
	LEAQ (DX)(R10*8), R11
	MOVQ SI, BX
	MOVQ R8, R12
axk8:
	VBROADCASTSD (BX), Y4
	VMULPD (R11), Y4, Y5
	VADDPD Y5, Y0, Y0
	VMULPD 32(R11), Y4, Y5
	VADDPD Y5, Y1, Y1
	ADDQ $8, BX
	ADDQ R13, R11
	DECQ R12
	JNZ  axk8
	VMOVUPD Y0, (R14)
	VMOVUPD Y1, 32(R14)
	ADDQ $8, R10

axj4:
	MOVQ R10, AX
	ADDQ $4, AX
	CMPQ AX, R9
	JGT  axjscalar
	LEAQ (DI)(R10*8), R14
	VMOVUPD (R14), Y0
	LEAQ (DX)(R10*8), R11
	MOVQ SI, BX
	MOVQ R8, R12
axk4:
	VBROADCASTSD (BX), Y4
	VMULPD (R11), Y4, Y5
	VADDPD Y5, Y0, Y0
	ADDQ $8, BX
	ADDQ R13, R11
	DECQ R12
	JNZ  axk4
	VMOVUPD Y0, (R14)
	ADDQ $4, R10

axjscalar:
	CMPQ R10, R9
	JGE  axdone
	MOVSD (DI)(R10*8), X0
	LEAQ (DX)(R10*8), R11
	MOVQ SI, BX
	MOVQ R8, R12
axk1:
	MOVSD (BX), X1
	MULSD (R11), X1
	ADDSD X1, X0
	ADDQ $8, BX
	ADDQ R13, R11
	DECQ R12
	JNZ  axk1
	MOVSD X0, (DI)(R10*8)
	INCQ R10
	JMP  axjscalar

axdone:
	VZEROUPPER
	RET

// func gemmAccAsm(dst, a, b []float64, rows, k, m, dstStride, aRowStride, aElemStride int)
//
// dst[r*dstStride+j] += sum_k a[r*aRowStride+k*aElemStride]*b[k*m+j].
// Row pairs are processed together so each b chunk load feeds two
// accumulator sets; columns are tiled 16/8/4/1. Per element the k loop is
// ascending and uses separate VMULPD/VADDPD, identical to the Go kernel.
//
// Register map: DI=dst row0, SI=a row0, DX=b, CX=rows left, R8=k, R9=m,
// R13=m*8, R15=aElemStride*8; per-chunk scratch R10=j, R11=b ptr, R12=k
// counter, R14=dst chunk ptr, BX=a row0 ptr, AX=a row1 ptr / stride tmp.
TEXT ·gemmAccAsm(SB), NOSPLIT, $0-120
	MOVQ dst_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), DX
	MOVQ rows+72(FP), CX
	MOVQ k+80(FP), R8
	MOVQ m+88(FP), R9
	MOVQ R9, R13
	SHLQ $3, R13
	MOVQ aElemStride+112(FP), R15
	SHLQ $3, R15
	// Y12 = lane mask for the m%4 column tail: the first m%4 qword lanes
	// active. Inactive lanes read as +0 (products stay 0) and are never
	// stored, so the tail needs no scalar loop.
	MOVQ R9, AX
	ANDQ $3, AX
	JZ   gpair
	SHLQ $3, AX
	LEAQ gemmmask<>+32(SB), BX
	SUBQ AX, BX
	VMOVUPD (BX), Y12

gpair:
	CMPQ CX, $2
	JLT  gsingle
	XORQ R10, R10

pj16:
	MOVQ R10, AX
	ADDQ $16, AX
	CMPQ AX, R9
	JGT  pj8
	LEAQ (DI)(R10*8), R14
	VMOVUPD (R14), Y0
	VMOVUPD 32(R14), Y1
	VMOVUPD 64(R14), Y2
	VMOVUPD 96(R14), Y3
	MOVQ dstStride+96(FP), AX
	SHLQ $3, AX
	VMOVUPD (R14)(AX*1), Y4
	VMOVUPD 32(R14)(AX*1), Y5
	VMOVUPD 64(R14)(AX*1), Y6
	VMOVUPD 96(R14)(AX*1), Y7
	LEAQ (DX)(R10*8), R11
	MOVQ SI, BX
	MOVQ aRowStride+104(FP), AX
	LEAQ (SI)(AX*8), AX
	MOVQ R8, R12
pk16:
	VBROADCASTSD (BX), Y8
	VBROADCASTSD (AX), Y9
	VMOVUPD (R11), Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y0, Y0
	VMULPD Y10, Y9, Y11
	VADDPD Y11, Y4, Y4
	VMOVUPD 32(R11), Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y1, Y1
	VMULPD Y10, Y9, Y11
	VADDPD Y11, Y5, Y5
	VMOVUPD 64(R11), Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y2, Y2
	VMULPD Y10, Y9, Y11
	VADDPD Y11, Y6, Y6
	VMOVUPD 96(R11), Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y3, Y3
	VMULPD Y10, Y9, Y11
	VADDPD Y11, Y7, Y7
	ADDQ R15, BX
	ADDQ R15, AX
	ADDQ R13, R11
	DECQ R12
	JNZ  pk16
	VMOVUPD Y0, (R14)
	VMOVUPD Y1, 32(R14)
	VMOVUPD Y2, 64(R14)
	VMOVUPD Y3, 96(R14)
	MOVQ dstStride+96(FP), AX
	SHLQ $3, AX
	VMOVUPD Y4, (R14)(AX*1)
	VMOVUPD Y5, 32(R14)(AX*1)
	VMOVUPD Y6, 64(R14)(AX*1)
	VMOVUPD Y7, 96(R14)(AX*1)
	ADDQ $16, R10
	JMP  pj16

pj8:
	MOVQ R10, AX
	ADDQ $8, AX
	CMPQ AX, R9
	JGT  pj4
	LEAQ (DI)(R10*8), R14
	VMOVUPD (R14), Y0
	VMOVUPD 32(R14), Y1
	MOVQ dstStride+96(FP), AX
	SHLQ $3, AX
	VMOVUPD (R14)(AX*1), Y4
	VMOVUPD 32(R14)(AX*1), Y5
	LEAQ (DX)(R10*8), R11
	MOVQ SI, BX
	MOVQ aRowStride+104(FP), AX
	LEAQ (SI)(AX*8), AX
	MOVQ R8, R12
pk8:
	VBROADCASTSD (BX), Y8
	VBROADCASTSD (AX), Y9
	VMOVUPD (R11), Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y0, Y0
	VMULPD Y10, Y9, Y11
	VADDPD Y11, Y4, Y4
	VMOVUPD 32(R11), Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y1, Y1
	VMULPD Y10, Y9, Y11
	VADDPD Y11, Y5, Y5
	ADDQ R15, BX
	ADDQ R15, AX
	ADDQ R13, R11
	DECQ R12
	JNZ  pk8
	VMOVUPD Y0, (R14)
	VMOVUPD Y1, 32(R14)
	MOVQ dstStride+96(FP), AX
	SHLQ $3, AX
	VMOVUPD Y4, (R14)(AX*1)
	VMOVUPD Y5, 32(R14)(AX*1)
	ADDQ $8, R10

pj4:
	MOVQ R10, AX
	ADDQ $4, AX
	CMPQ AX, R9
	JGT  pjmask
	LEAQ (DI)(R10*8), R14
	VMOVUPD (R14), Y0
	MOVQ dstStride+96(FP), AX
	SHLQ $3, AX
	VMOVUPD (R14)(AX*1), Y4
	LEAQ (DX)(R10*8), R11
	MOVQ SI, BX
	MOVQ aRowStride+104(FP), AX
	LEAQ (SI)(AX*8), AX
	MOVQ R8, R12
pk4:
	VBROADCASTSD (BX), Y8
	VBROADCASTSD (AX), Y9
	VMOVUPD (R11), Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y0, Y0
	VMULPD Y10, Y9, Y11
	VADDPD Y11, Y4, Y4
	ADDQ R15, BX
	ADDQ R15, AX
	ADDQ R13, R11
	DECQ R12
	JNZ  pk4
	VMOVUPD Y0, (R14)
	MOVQ dstStride+96(FP), AX
	SHLQ $3, AX
	VMOVUPD Y4, (R14)(AX*1)
	ADDQ $4, R10

	// masked tail: remaining m%4 columns, both rows, one k loop
pjmask:
	CMPQ R10, R9
	JGE  pnext
	LEAQ (DI)(R10*8), R14
	VMASKMOVPD (R14), Y12, Y0
	MOVQ dstStride+96(FP), AX
	SHLQ $3, AX
	VMASKMOVPD (R14)(AX*1), Y12, Y4
	LEAQ (DX)(R10*8), R11
	MOVQ SI, BX
	MOVQ aRowStride+104(FP), AX
	LEAQ (SI)(AX*8), AX
	MOVQ R8, R12
pkm:
	VBROADCASTSD (BX), Y8
	VBROADCASTSD (AX), Y9
	VMASKMOVPD (R11), Y12, Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y0, Y0
	VMULPD Y10, Y9, Y11
	VADDPD Y11, Y4, Y4
	ADDQ R15, BX
	ADDQ R15, AX
	ADDQ R13, R11
	DECQ R12
	JNZ  pkm
	VMASKMOVPD Y0, Y12, (R14)
	MOVQ dstStride+96(FP), AX
	SHLQ $3, AX
	VMASKMOVPD Y4, Y12, (R14)(AX*1)

pnext:
	MOVQ dstStride+96(FP), AX
	SHLQ $4, AX               // 2 rows * stride * 8 bytes
	ADDQ AX, DI
	MOVQ aRowStride+104(FP), AX
	SHLQ $4, AX
	ADDQ AX, SI
	SUBQ $2, CX
	JMP  gpair

gsingle:
	TESTQ CX, CX
	JZ   gdone
	XORQ R10, R10

sj16:
	MOVQ R10, AX
	ADDQ $16, AX
	CMPQ AX, R9
	JGT  sj8
	LEAQ (DI)(R10*8), R14
	VMOVUPD (R14), Y0
	VMOVUPD 32(R14), Y1
	VMOVUPD 64(R14), Y2
	VMOVUPD 96(R14), Y3
	LEAQ (DX)(R10*8), R11
	MOVQ SI, BX
	MOVQ R8, R12
sk16:
	VBROADCASTSD (BX), Y8
	VMOVUPD (R11), Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y0, Y0
	VMOVUPD 32(R11), Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y1, Y1
	VMOVUPD 64(R11), Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y2, Y2
	VMOVUPD 96(R11), Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y3, Y3
	ADDQ R15, BX
	ADDQ R13, R11
	DECQ R12
	JNZ  sk16
	VMOVUPD Y0, (R14)
	VMOVUPD Y1, 32(R14)
	VMOVUPD Y2, 64(R14)
	VMOVUPD Y3, 96(R14)
	ADDQ $16, R10
	JMP  sj16

sj8:
	MOVQ R10, AX
	ADDQ $8, AX
	CMPQ AX, R9
	JGT  sj4
	LEAQ (DI)(R10*8), R14
	VMOVUPD (R14), Y0
	VMOVUPD 32(R14), Y1
	LEAQ (DX)(R10*8), R11
	MOVQ SI, BX
	MOVQ R8, R12
sk8:
	VBROADCASTSD (BX), Y8
	VMOVUPD (R11), Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y0, Y0
	VMOVUPD 32(R11), Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y1, Y1
	ADDQ R15, BX
	ADDQ R13, R11
	DECQ R12
	JNZ  sk8
	VMOVUPD Y0, (R14)
	VMOVUPD Y1, 32(R14)
	ADDQ $8, R10

sj4:
	MOVQ R10, AX
	ADDQ $4, AX
	CMPQ AX, R9
	JGT  sjmask
	LEAQ (DI)(R10*8), R14
	VMOVUPD (R14), Y0
	LEAQ (DX)(R10*8), R11
	MOVQ SI, BX
	MOVQ R8, R12
sk4:
	VBROADCASTSD (BX), Y8
	VMOVUPD (R11), Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y0, Y0
	ADDQ R15, BX
	ADDQ R13, R11
	DECQ R12
	JNZ  sk4
	VMOVUPD Y0, (R14)
	ADDQ $4, R10

	// masked tail, single row
sjmask:
	CMPQ R10, R9
	JGE  gdone
	LEAQ (DI)(R10*8), R14
	VMASKMOVPD (R14), Y12, Y0
	LEAQ (DX)(R10*8), R11
	MOVQ SI, BX
	MOVQ R8, R12
skm:
	VBROADCASTSD (BX), Y8
	VMASKMOVPD (R11), Y12, Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y0, Y0
	ADDQ R15, BX
	ADDQ R13, R11
	DECQ R12
	JNZ  skm
	VMASKMOVPD Y0, Y12, (R14)

gdone:
	VZEROUPPER
	RET

// func updateParamsAsm(w, g, vel []float64, mom, scale, l2 float64)
//
// Per element: v = mom*vel[i] - scale*(g[i]+l2*w[i]); vel[i] = v; w[i] += v
// — the exact expression order of updateParamsGo, 4 lanes at a time.
TEXT ·updateParamsAsm(SB), NOSPLIT, $0-96
	MOVQ w_base+0(FP), DI
	MOVQ w_len+8(FP), R8
	MOVQ g_base+24(FP), SI
	MOVQ vel_base+48(FP), DX
	VBROADCASTSD mom+72(FP), Y12
	VBROADCASTSD scale+80(FP), Y13
	VBROADCASTSD l2+88(FP), Y14
	XORQ R10, R10

up4:
	MOVQ R10, AX
	ADDQ $4, AX
	CMPQ AX, R8
	JGT  upscalar
	VMOVUPD (DI)(R10*8), Y0   // w
	VMOVUPD (SI)(R10*8), Y1   // g
	VMOVUPD (DX)(R10*8), Y2   // vel
	VMULPD Y0, Y14, Y3        // l2*w
	VADDPD Y3, Y1, Y3         // g + l2*w
	VMULPD Y3, Y13, Y3        // scale*(g + l2*w)
	VMULPD Y2, Y12, Y2        // mom*vel
	VSUBPD Y3, Y2, Y2         // v
	VMOVUPD Y2, (DX)(R10*8)
	VADDPD Y2, Y0, Y0         // w + v
	VMOVUPD Y0, (DI)(R10*8)
	ADDQ $4, R10
	JMP  up4

upscalar:
	CMPQ R10, R8
	JGE  updone
	MOVSD (DI)(R10*8), X0
	MOVSD (SI)(R10*8), X1
	MOVSD (DX)(R10*8), X2
	MOVSD l2+88(FP), X3
	MULSD X0, X3              // l2*w
	ADDSD X3, X1              // g + l2*w
	MULSD scale+80(FP), X1
	MULSD mom+72(FP), X2
	SUBSD X1, X2              // v
	MOVSD X2, (DX)(R10*8)
	ADDSD X2, X0
	MOVSD X0, (DI)(R10*8)
	INCQ R10
	JMP  upscalar

updone:
	VZEROUPPER
	RET

// Sliding-window tail masks for gemmAccAsm: reading 32 bytes at offset
// 32-8*rem yields rem all-ones lanes followed by zeros.
DATA gemmmask<>+0(SB)/8, $-1
DATA gemmmask<>+8(SB)/8, $-1
DATA gemmmask<>+16(SB)/8, $-1
DATA gemmmask<>+24(SB)/8, $-1
DATA gemmmask<>+32(SB)/8, $0
DATA gemmmask<>+40(SB)/8, $0
DATA gemmmask<>+48(SB)/8, $0
DATA gemmmask<>+56(SB)/8, $0
GLOBL gemmmask<>+0(SB), RODATA, $64

// Constants for the sigmoid kernel, broadcast to 4 lanes. Polynomial
// coefficients and the argument-reduction constants are those of the
// runtime's archExp (math/exp_amd64.s, SLEEF-derived).
DATA sigk<>+0(SB)/8, $0x8000000000000000   // sign mask
DATA sigk<>+8(SB)/8, $0x8000000000000000
DATA sigk<>+16(SB)/8, $0x8000000000000000
DATA sigk<>+24(SB)/8, $0x8000000000000000
DATA sigk<>+32(SB)/8, $-708.0              // fast-path lower bound for -z
DATA sigk<>+40(SB)/8, $-708.0
DATA sigk<>+48(SB)/8, $-708.0
DATA sigk<>+56(SB)/8, $-708.0
DATA sigk<>+64(SB)/8, $709.0               // fast-path upper bound for -z
DATA sigk<>+72(SB)/8, $709.0
DATA sigk<>+80(SB)/8, $709.0
DATA sigk<>+88(SB)/8, $709.0
DATA sigk<>+96(SB)/8, $1.4426950408889634073599246810018920 // log2(e)
DATA sigk<>+104(SB)/8, $1.4426950408889634073599246810018920
DATA sigk<>+112(SB)/8, $1.4426950408889634073599246810018920
DATA sigk<>+120(SB)/8, $1.4426950408889634073599246810018920
DATA sigk<>+128(SB)/8, $0.69314718055966295651160180568695068359375 // ln2 hi
DATA sigk<>+136(SB)/8, $0.69314718055966295651160180568695068359375
DATA sigk<>+144(SB)/8, $0.69314718055966295651160180568695068359375
DATA sigk<>+152(SB)/8, $0.69314718055966295651160180568695068359375
DATA sigk<>+160(SB)/8, $0.28235290563031577122588448175013436025525412068e-12 // ln2 lo
DATA sigk<>+168(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA sigk<>+176(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA sigk<>+184(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA sigk<>+192(SB)/8, $0.0625
DATA sigk<>+200(SB)/8, $0.0625
DATA sigk<>+208(SB)/8, $0.0625
DATA sigk<>+216(SB)/8, $0.0625
DATA sigk<>+224(SB)/8, $2.4801587301587301587e-5  // c8
DATA sigk<>+232(SB)/8, $2.4801587301587301587e-5
DATA sigk<>+240(SB)/8, $2.4801587301587301587e-5
DATA sigk<>+248(SB)/8, $2.4801587301587301587e-5
DATA sigk<>+256(SB)/8, $1.9841269841269841270e-4  // c7
DATA sigk<>+264(SB)/8, $1.9841269841269841270e-4
DATA sigk<>+272(SB)/8, $1.9841269841269841270e-4
DATA sigk<>+280(SB)/8, $1.9841269841269841270e-4
DATA sigk<>+288(SB)/8, $1.3888888888888888889e-3  // c6
DATA sigk<>+296(SB)/8, $1.3888888888888888889e-3
DATA sigk<>+304(SB)/8, $1.3888888888888888889e-3
DATA sigk<>+312(SB)/8, $1.3888888888888888889e-3
DATA sigk<>+320(SB)/8, $8.3333333333333333333e-3  // c5
DATA sigk<>+328(SB)/8, $8.3333333333333333333e-3
DATA sigk<>+336(SB)/8, $8.3333333333333333333e-3
DATA sigk<>+344(SB)/8, $8.3333333333333333333e-3
DATA sigk<>+352(SB)/8, $4.1666666666666666667e-2  // c4
DATA sigk<>+360(SB)/8, $4.1666666666666666667e-2
DATA sigk<>+368(SB)/8, $4.1666666666666666667e-2
DATA sigk<>+376(SB)/8, $4.1666666666666666667e-2
DATA sigk<>+384(SB)/8, $1.6666666666666666667e-1  // c3
DATA sigk<>+392(SB)/8, $1.6666666666666666667e-1
DATA sigk<>+400(SB)/8, $1.6666666666666666667e-1
DATA sigk<>+408(SB)/8, $1.6666666666666666667e-1
DATA sigk<>+416(SB)/8, $0.5
DATA sigk<>+424(SB)/8, $0.5
DATA sigk<>+432(SB)/8, $0.5
DATA sigk<>+440(SB)/8, $0.5
DATA sigk<>+448(SB)/8, $1.0
DATA sigk<>+456(SB)/8, $1.0
DATA sigk<>+464(SB)/8, $1.0
DATA sigk<>+472(SB)/8, $1.0
DATA sigk<>+480(SB)/8, $2.0
DATA sigk<>+488(SB)/8, $2.0
DATA sigk<>+496(SB)/8, $2.0
DATA sigk<>+504(SB)/8, $2.0
DATA sigk<>+512(SB)/8, $0x3FF0000000000000 // exponent bias 1023<<52
DATA sigk<>+520(SB)/8, $0x3FF0000000000000
DATA sigk<>+528(SB)/8, $0x3FF0000000000000
DATA sigk<>+536(SB)/8, $0x3FF0000000000000
GLOBL sigk<>+0(SB), RODATA, $544

// func sigmoidBlocksAsm(dst, src []float64) int
//
// For each 4-lane block: x = -z; if every lane of x is in [-708, 709],
// compute exp(x) with the archExp FMA sequence (round-to-nearest cvt for
// k, fused ln2-hi/lo reduction, 7-term FMA Horner, three squarings, fused
// final u*(u+2)+1, ldexp by exponent-bits add), then 1/(1+e). On the first
// block with any out-of-range/NaN lane, return the count processed so far.
// The domain keeps k+1023 in [2, 2046], so the scalar code's denormal and
// overflow branches are unreachable and need no vector equivalent.
TEXT ·sigmoidBlocksAsm(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), R8
	MOVQ R8, R9
	ANDQ $-4, R9              // n4 = len &^ 3
	XORQ R10, R10
	VMOVUPD sigk<>+0(SB), Y15   // sign mask
	VMOVUPD sigk<>+32(SB), Y14  // -708
	VMOVUPD sigk<>+64(SB), Y13  // 709
	VMOVUPD sigk<>+96(SB), Y12  // log2(e)
	VMOVUPD sigk<>+128(SB), Y11 // ln2 hi
	VMOVUPD sigk<>+160(SB), Y10 // ln2 lo
	VMOVUPD sigk<>+192(SB), Y9  // 0.0625
	VMOVUPD sigk<>+480(SB), Y8  // 2.0
	VMOVUPD sigk<>+448(SB), Y7  // 1.0
	VMOVUPD sigk<>+512(SB), Y6  // exponent bias

sgblk:
	CMPQ R10, R9
	JGE  sgdone
	VMOVUPD (SI)(R10*8), Y0
	VXORPD Y15, Y0, Y0        // x = -z (exact sign flip)
	VCMPPD $0x1D, Y14, Y0, Y1 // x >= -708 (GE_OQ; false on NaN)
	VCMPPD $0x12, Y13, Y0, Y2 // x <= 709 (LE_OQ)
	VANDPD Y2, Y1, Y1
	VMOVMSKPD Y1, AX
	CMPL AX, $0xF
	JNE  sgdone               // bail: caller resolves this block scalar

	// exp(x), archExp FMA branch, 4 lanes
	VMULPD Y0, Y12, Y1        // log2(e)*x
	VCVTPD2DQY Y1, X2         // k = round-to-nearest int32 (CVTSD2SL lanewise)
	VCVTDQ2PD X2, Y1          // float64(k)
	VFNMADD231PD Y11, Y1, Y0  // x -= ln2hi*k (fused)
	VFNMADD231PD Y10, Y1, Y0  // x -= ln2lo*k (fused)
	VMULPD Y9, Y0, Y0         // x *= 0.0625
	VMOVUPD sigk<>+224(SB), Y1              // c8
	VFMADD213PD sigk<>+256(SB), Y0, Y1      // poly = poly*x + c7
	VFMADD213PD sigk<>+288(SB), Y0, Y1      // + c6
	VFMADD213PD sigk<>+320(SB), Y0, Y1      // + c5
	VFMADD213PD sigk<>+352(SB), Y0, Y1      // + c4
	VFMADD213PD sigk<>+384(SB), Y0, Y1      // + c3
	VFMADD213PD sigk<>+416(SB), Y0, Y1      // + 0.5
	VFMADD213PD sigk<>+448(SB), Y0, Y1      // + 1.0
	VMULPD Y1, Y0, Y0         // u = x*poly
	VADDPD Y8, Y0, Y1         // u + 2
	VMULPD Y1, Y0, Y0         // u *= u+2 (three plain squaring steps)
	VADDPD Y8, Y0, Y1
	VMULPD Y1, Y0, Y0
	VADDPD Y8, Y0, Y1
	VMULPD Y1, Y0, Y0
	VADDPD Y8, Y0, Y1
	VFMADD213PD sigk<>+448(SB), Y1, Y0 // u = u*(u+2) + 1 (fused, as archExp)
	VPMOVSXDQ X2, Y2          // ldexp: bits = (k<<52) + 1023<<52
	VPSLLQ $52, Y2, Y2
	VPADDQ Y6, Y2, Y2
	VMULPD Y2, Y0, Y0         // e = u * 2^k

	// sigmoid: 1 / (1 + e)
	VADDPD Y7, Y0, Y1
	VDIVPD Y1, Y7, Y0
	VMOVUPD Y0, (DI)(R10*8)
	ADDQ $4, R10
	JMP  sgblk

sgdone:
	VZEROUPPER
	MOVQ R10, ret+48(FP)
	RET
