package neural

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// legacyTrain is a frozen copy of the pre-batching per-sample Train loop
// (and its backprop), kept here as the bit-level reference the batched
// engine must reproduce exactly.
func legacyTrain(n *Network, x, y [][]float64, cfg TrainConfig) float64 {
	g := newGrads(n)
	vel := newGrads(n)
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	var epochLoss float64
	for e := 0; e < cfg.Epochs; e++ {
		cfg.Rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss = 0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			g.zero()
			for _, s := range idx[start:end] {
				epochLoss += legacyBackprop(n, x[s], y[s], g)
			}
			scale := cfg.LR / float64(end-start)
			for li, l := range n.Layers {
				for wi := range l.W {
					v := cfg.Momentum*vel.dW[li][wi] - scale*(g.dW[li][wi]+cfg.L2*l.W[wi])
					vel.dW[li][wi] = v
					l.W[wi] += v
				}
				for bi := range l.B {
					v := cfg.Momentum*vel.dB[li][bi] - scale*g.dB[li][bi]
					vel.dB[li][bi] = v
					l.B[bi] += v
				}
			}
		}
		epochLoss /= float64(len(x))
	}
	return epochLoss
}

func legacyBackprop(n *Network, x, target []float64, g *grads) float64 {
	acts := make([][]float64, len(n.Layers)+1)
	acts[0] = x
	for i, l := range n.Layers {
		acts[i+1] = l.Forward(acts[i])
	}
	out := acts[len(acts)-1]
	delta := make([]float64, len(out))
	loss := 0.0
	last := n.Layers[len(n.Layers)-1]
	for o := range out {
		e := out[o] - target[o]
		loss += 0.5 * e * e
		delta[o] = e * last.Act.derivFromOutput(out[o])
	}
	for li := len(n.Layers) - 1; li >= 0; li-- {
		l := n.Layers[li]
		in := acts[li]
		for o := 0; o < l.Out; o++ {
			g.dB[li][o] += delta[o]
			row := g.dW[li][o*l.In : (o+1)*l.In]
			for i, xi := range in {
				row[i] += delta[o] * xi
			}
		}
		if li == 0 {
			break
		}
		prev := make([]float64, l.In)
		below := n.Layers[li-1]
		for i := 0; i < l.In; i++ {
			sum := 0.0
			for o := 0; o < l.Out; o++ {
				sum += l.W[o*l.In+i] * delta[o]
			}
			prev[i] = sum * below.Act.derivFromOutput(in[i])
		}
		delta = prev
	}
	return loss
}

func randomDataset(rng *rand.Rand, n, in, out int) (x, y [][]float64) {
	for s := 0; s < n; s++ {
		xs := make([]float64, in)
		ys := make([]float64, out)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		for i := range ys {
			ys[i] = rng.NormFloat64()
		}
		x = append(x, xs)
		y = append(y, ys)
	}
	return x, y
}

func mustNetwork(t testing.TB, sizes []int, acts []Activation, seed int64) *Network {
	t.Helper()
	n, err := NewNetwork(sizes, acts, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func requireSameWeights(t *testing.T, a, b *Network, label string) {
	t.Helper()
	for li := range a.Layers {
		for i := range a.Layers[li].W {
			if math.Float64bits(a.Layers[li].W[i]) != math.Float64bits(b.Layers[li].W[i]) {
				t.Fatalf("%s: layer %d W[%d]: %x vs %x", label, li, i,
					math.Float64bits(a.Layers[li].W[i]), math.Float64bits(b.Layers[li].W[i]))
			}
		}
		for i := range a.Layers[li].B {
			if math.Float64bits(a.Layers[li].B[i]) != math.Float64bits(b.Layers[li].B[i]) {
				t.Fatalf("%s: layer %d B[%d]: %x vs %x", label, li, i,
					math.Float64bits(a.Layers[li].B[i]), math.Float64bits(b.Layers[li].B[i]))
			}
		}
	}
}

// TestTrainMatchesLegacyReference drives the batched engine and the frozen
// per-sample loop from identical initial weights and RNG streams and
// requires bit-identical weights afterwards — including L2 decay, odd
// final batches, and every activation kind on the hidden path.
func TestTrainMatchesLegacyReference(t *testing.T) {
	cases := []struct {
		name  string
		sizes []int
		acts  []Activation
		cfg   TrainConfig
		n     int
	}{
		{"sigmoid", []int{7, 13, 3}, []Activation{ActSigmoid, ActIdentity},
			TrainConfig{Epochs: 4, BatchSize: 8, LR: 0.05}, 37},
		{"tanh-l2", []int{5, 9, 2}, []Activation{ActTanh, ActIdentity},
			TrainConfig{Epochs: 3, BatchSize: 4, LR: 0.1, L2: 1e-3}, 21},
		{"relu-deep", []int{6, 11, 8, 4}, []Activation{ActReLU, ActSigmoid, ActIdentity},
			TrainConfig{Epochs: 3, BatchSize: 5, LR: 0.02}, 23},
		{"sigmoid-head", []int{4, 6, 4}, []Activation{ActTanh, ActSigmoid},
			TrainConfig{Epochs: 2, BatchSize: 16, LR: 0.05, L2: 1e-4}, 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x, y := randomDataset(rand.New(rand.NewSource(11)), tc.n, tc.sizes[0], tc.sizes[len(tc.sizes)-1])
			ref := mustNetwork(t, tc.sizes, tc.acts, 42)
			got := mustNetwork(t, tc.sizes, tc.acts, 42)

			refCfg := tc.cfg
			refCfg.applyDefaults()
			refCfg.Rng = rand.New(rand.NewSource(99))
			refLoss := legacyTrain(ref, x, y, refCfg)

			gotCfg := tc.cfg
			gotCfg.Rng = rand.New(rand.NewSource(99))
			gotCfg.Workers = 1
			gotLoss, err := got.Train(x, y, gotCfg)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(refLoss) != math.Float64bits(gotLoss) {
				t.Fatalf("loss %x (batched) vs %x (legacy)", math.Float64bits(gotLoss), math.Float64bits(refLoss))
			}
			requireSameWeights(t, ref, got, "legacy vs batched")
		})
	}
}

// TestTrainWorkersBitIdentical trains the same network with different
// worker counts on a problem large enough to pass the parallelism
// threshold, and requires bit-identical results (the element-ownership
// sharding argument of DESIGN.md §7).
func TestTrainWorkersBitIdentical(t *testing.T) {
	sizes := []int{64, 128, 16}
	acts := []Activation{ActSigmoid, ActIdentity}
	x, y := randomDataset(rand.New(rand.NewSource(12)), 96, 64, 16)
	// batch 64 × 64 in × 128 out = 524288 flops > minParFlops, so the
	// multi-worker runs really do shard.
	if 64*sizes[0]*sizes[1] <= minParFlops {
		t.Fatalf("test network too small to exercise sharding")
	}
	var base *Network
	var baseLoss float64
	for _, workers := range []int{1, 2, 8} {
		n := mustNetwork(t, sizes, acts, 5)
		loss, err := n.Train(x, y, TrainConfig{
			Epochs: 2, BatchSize: 64, LR: 0.05, Workers: workers,
			Rng: rand.New(rand.NewSource(3)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base, baseLoss = n, loss
			continue
		}
		if math.Float64bits(baseLoss) != math.Float64bits(loss) {
			t.Fatalf("workers=%d loss %x, workers=1 loss %x", workers,
				math.Float64bits(loss), math.Float64bits(baseLoss))
		}
		requireSameWeights(t, base, n, "workers")
	}
}

// TestSerializeRoundTripDeterminism saves a trained network, loads it back,
// and requires the copy to be bit-identical in weights and outputs.
func TestSerializeRoundTripDeterminism(t *testing.T) {
	n := mustNetwork(t, []int{6, 10, 2}, []Activation{ActSigmoid, ActIdentity}, 8)
	x, y := randomDataset(rand.New(rand.NewSource(13)), 24, 6, 2)
	if _, err := n.Train(x, y, TrainConfig{Epochs: 3, Rng: rand.New(rand.NewSource(1)), Workers: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireSameWeights(t, n, loaded, "round trip")
	probe := x[7]
	a, b := n.Forward(probe), loaded.Forward(probe)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("forward mismatch at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestTrainEpochAllocs verifies the zero-allocation guarantee of the
// steady-state epoch loop at Workers == 1.
func TestTrainEpochAllocs(t *testing.T) {
	n := mustNetwork(t, []int{8, 16, 4}, []Activation{ActSigmoid, ActIdentity}, 4)
	x, y := randomDataset(rand.New(rand.NewSource(14)), 40, 8, 4)
	cfg := TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.05, Workers: 1,
		Rng: rand.New(rand.NewSource(2))}
	cfg.applyDefaults()
	ts := newTrainState(n, cfg.BatchSize, cfg.Workers)
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	swap := func(i, j int) { idx[i], idx[j] = idx[j], idx[i] }
	ts.runEpoch(x, y, idx, swap, &cfg) // warm-up
	if allocs := testing.AllocsPerRun(10, func() {
		ts.runEpoch(x, y, idx, swap, &cfg)
	}); allocs != 0 {
		t.Fatalf("epoch loop allocates %.1f objects per run, want 0", allocs)
	}
}

// TestLossAllocs verifies Loss runs allocation-free once its forward
// scratch exists.
func TestLossAllocs(t *testing.T) {
	n := mustNetwork(t, []int{8, 16, 4}, []Activation{ActSigmoid, ActIdentity}, 4)
	x, y := randomDataset(rand.New(rand.NewSource(15)), 32, 8, 4)
	n.Loss(x, y) // warm-up builds the scratch
	if allocs := testing.AllocsPerRun(10, func() {
		n.Loss(x, y)
	}); allocs != 0 {
		t.Fatalf("Loss allocates %.1f objects per run, want 0", allocs)
	}
}

// BenchmarkDenseForwardBatch measures the batched forward pass of one
// 64→64 sigmoid layer over a 64-row minibatch.
func BenchmarkDenseForwardBatch(b *testing.B) {
	n := mustNetwork(b, []int{64, 64}, []Activation{ActSigmoid}, 1)
	ts := newTrainState(n, 64, 1)
	rng := rand.New(rand.NewSource(2))
	for i := range ts.xb.Data {
		ts.xb.Data[i] = rng.NormFloat64()
	}
	ts.b = 64
	packTranspose(ts.wt[0], n.Layers[0].W, 64, 64)
	b.SetBytes(64 * 64 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.forwardRows(0, 0, 64)
	}
}

// BenchmarkSAETrainEpoch measures one steady-state supervised epoch of an
// SAE-shaped network (48-wide window input, two sigmoid encoders, linear
// head) over a synthetic dataset.
func BenchmarkSAETrainEpoch(b *testing.B) {
	n := mustNetwork(b, []int{48, 32, 16, 1}, []Activation{ActSigmoid, ActSigmoid, ActIdentity}, 3)
	x, y := randomDataset(rand.New(rand.NewSource(16)), 512, 48, 1)
	cfg := TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.05, Workers: 1,
		Rng: rand.New(rand.NewSource(4))}
	cfg.applyDefaults()
	ts := newTrainState(n, cfg.BatchSize, cfg.Workers)
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	swap := func(i, j int) { idx[i], idx[j] = idx[j], idx[i] }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.runEpoch(x, y, idx, swap, &cfg)
	}
}
