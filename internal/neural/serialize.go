package neural

import (
	"encoding/json"
	"fmt"
	"io"
)

// The JSON model format lets a trained network (e.g. the SAE traffic
// predictor, which takes minutes to train at full fidelity) be saved once
// and reloaded by services like the vehicular cloud.

// modelFile is the serialized network envelope.
type modelFile struct {
	Format  string      `json:"format"`
	Version int         `json:"version"`
	Layers  []layerFile `json:"layers"`
}

// layerFile is one serialized dense layer.
type layerFile struct {
	In  int        `json:"in"`
	Out int        `json:"out"`
	Act Activation `json:"act"`
	W   []float64  `json:"w"`
	B   []float64  `json:"b"`
}

// Serialization constants.
const (
	modelFormat  = "evvo-neural"
	modelVersion = 1
)

// Save writes the network as JSON.
func (n *Network) Save(w io.Writer) error {
	mf := modelFile{Format: modelFormat, Version: modelVersion}
	for _, l := range n.Layers {
		mf.Layers = append(mf.Layers, layerFile{In: l.In, Out: l.Out, Act: l.Act, W: l.W, B: l.B})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&mf); err != nil {
		return fmt.Errorf("neural: saving model: %w", err)
	}
	return nil
}

// Load reads a network saved by Save, validating shapes.
func Load(r io.Reader) (*Network, error) {
	var mf modelFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mf); err != nil {
		return nil, fmt.Errorf("neural: loading model: %w", err)
	}
	if mf.Format != modelFormat {
		return nil, fmt.Errorf("neural: format %q, want %q", mf.Format, modelFormat)
	}
	if mf.Version != modelVersion {
		return nil, fmt.Errorf("neural: model version %d unsupported (want %d)", mf.Version, modelVersion)
	}
	if len(mf.Layers) == 0 {
		return nil, fmt.Errorf("neural: model has no layers")
	}
	n := &Network{}
	prevOut := -1
	for i, lf := range mf.Layers {
		switch {
		case lf.In <= 0 || lf.Out <= 0:
			return nil, fmt.Errorf("neural: layer %d dims %d×%d invalid", i, lf.In, lf.Out)
		case lf.Act < ActSigmoid || lf.Act > ActIdentity:
			return nil, fmt.Errorf("neural: layer %d activation %d invalid", i, int(lf.Act))
		case len(lf.W) != lf.In*lf.Out:
			return nil, fmt.Errorf("neural: layer %d has %d weights, want %d", i, len(lf.W), lf.In*lf.Out)
		case len(lf.B) != lf.Out:
			return nil, fmt.Errorf("neural: layer %d has %d biases, want %d", i, len(lf.B), lf.Out)
		case prevOut >= 0 && lf.In != prevOut:
			return nil, fmt.Errorf("neural: layer %d input %d does not match previous output %d", i, lf.In, prevOut)
		}
		prevOut = lf.Out
		n.Layers = append(n.Layers, &Dense{In: lf.In, Out: lf.Out, Act: lf.Act, W: lf.W, B: lf.B})
	}
	return n, nil
}
