// Package par provides a minimal bounded worker pool for fanning
// independent, index-addressed work items across goroutines. It exists so
// the DP layer (departure sweeps) and the experiment runners (fleet
// planning) share one tested fan-out primitive instead of hand-rolling
// WaitGroup loops.
package par

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0), fn(1), … fn(n-1) across at most workers goroutines
// and waits for completion. Results are index-addressed by the caller
// (each fn(i) writes only slot i of its output), so completion order does
// not matter.
//
// Error semantics mirror a serial loop's early abort: the error returned
// is the one from the lowest failing index. Once any call fails, not-yet
// dispatched indexes may be skipped, but every index below a failing one
// is guaranteed to have run to completion (dispatch order is monotone),
// so the reported error is deterministic.
//
// workers <= 1 (or n <= 1) degenerates to a plain serial loop on the
// calling goroutine.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
