package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 50
		var hits [50]atomic.Int32
		if err := ForEach(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestFailingIndex(t *testing.T) {
	// Indexes 3 and 9 fail; the lowest (3) must win regardless of worker
	// count or scheduling.
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(workers, 12, func(i int) error {
			if i == 3 || i == 9 {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "boom at 3") {
			t.Fatalf("workers=%d: got %v, want failure at index 3", workers, err)
		}
	}
}

func TestForEachRunsEverythingBelowFailure(t *testing.T) {
	// Everything below the failing index must have completed, matching a
	// serial loop's semantics up to the abort point.
	var done [20]atomic.Bool
	fail := 13
	err := ForEach(4, 20, func(i int) error {
		if i == fail {
			return errors.New("stop")
		}
		done[i].Store(true)
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for i := 0; i < fail; i++ {
		if !done[i].Load() {
			t.Fatalf("index %d below the failure was skipped", i)
		}
	}
}
