package dp

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"evvo/internal/ev"
	"evvo/internal/queue"
	"evvo/internal/road"
)

// refineEpsAh is the documented error bound for the coarse-to-fine fast
// path at the default corridor: the refined charge never exceeds the exact
// optimum by more than this (DESIGN.md §12). Measured headroom on the
// randomized-route property test is ~100× below the bound.
const refineEpsAh = 1e-3

func TestCoarseRefineValidation(t *testing.T) {
	cfg := coarseUS25(nil)
	cfg.CoarseRefine = CoarseRefine{Factor: 1}
	if _, err := Optimize(cfg); err == nil {
		t.Fatal("factor 1 accepted")
	}
	cfg.CoarseRefine = CoarseRefine{Factor: -2}
	if _, err := Optimize(cfg); err == nil {
		t.Fatal("negative factor accepted")
	}
	cfg.CoarseRefine = CoarseRefine{Factor: 2, CorridorMS: -1}
	if _, err := Optimize(cfg); err == nil {
		t.Fatal("negative corridor accepted")
	}
}

// TestCoarseRefineFig6 pins the fast path's contract on the paper's
// corridor: a feasible result carrying the Refined diagnostic, within
// refineEpsAh of the exact optimum, for the useful factor range.
func TestCoarseRefineFig6(t *testing.T) {
	wf, err := QueueAwareWindows(queue.US25Params(),
		ConstantArrivalRate(queue.VehPerHour(153)), 0, 900)
	if err != nil {
		t.Fatal(err)
	}
	base := coarseUS25(wf)
	base.DepartTime = 40
	base.StopDwellSec = 2
	exact, err := Optimize(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, factor := range []int{2, 3, 4} {
		cfg := base
		cfg.CoarseRefine = CoarseRefine{Factor: factor}
		res, err := Optimize(cfg)
		if err != nil {
			t.Fatalf("factor %d: %v", factor, err)
		}
		if res.Refined == nil {
			t.Fatalf("factor %d: missing Refined diagnostic", factor)
		}
		if res.Refined.Factor != factor {
			t.Fatalf("factor %d: diag reports %d", factor, res.Refined.Factor)
		}
		if res.Refined.CorridorMS != 2*float64(factor)*cfg.DvMS {
			t.Fatalf("factor %d: default corridor %v", factor, res.Refined.CorridorMS)
		}
		if res.ChargeAh < exact.ChargeAh-1e-12 {
			t.Fatalf("factor %d: refined %v beats the exact optimum %v", factor, res.ChargeAh, exact.ChargeAh)
		}
		if res.ChargeAh > exact.ChargeAh+refineEpsAh {
			t.Fatalf("factor %d: refined %v exceeds exact %v by more than ε=%v",
				factor, res.ChargeAh, exact.ChargeAh, refineEpsAh)
		}
		if !res.Refined.FellBack && res.Refined.CoarseStatesExpanded == 0 {
			t.Fatalf("factor %d: coarse pass reported 0 states", factor)
		}
		if res.StatesExpanded >= exact.StatesExpanded {
			t.Fatalf("factor %d: fine pass expanded %d ≥ exact %d — corridor not restricting",
				factor, res.StatesExpanded, exact.StatesExpanded)
		}
	}
}

// TestCoarseRefineWideCorridorIsExact: a corridor wide enough to leave
// every stage band uncut must reproduce the exact DP bit-for-bit.
func TestCoarseRefineWideCorridorIsExact(t *testing.T) {
	wf, err := QueueAwareWindows(queue.US25Params(),
		ConstantArrivalRate(queue.VehPerHour(153)), 0, 900)
	if err != nil {
		t.Fatal(err)
	}
	base := coarseUS25(wf)
	base.DepartTime = 40
	base.StopDwellSec = 2
	exact, err := Optimize(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.CoarseRefine = CoarseRefine{Factor: 2, CorridorMS: 1000}
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refined == nil || res.Refined.FellBack {
		t.Fatalf("wide corridor: diag %+v", res.Refined)
	}
	requireIdenticalResults(t, exact, res, "wide corridor")
}

// TestCoarseRefineRandomRoutes is the randomized property test: on routes
// with grades, zones, stops and signals, the fast path must always return
// a feasible trajectory whose charge is within refineEpsAh of the exact
// DP's, and the profile must respect the same kinematic invariants (the
// fine pass shares all transition physics, so feasibility comes for free —
// this pins it anyway).
func TestCoarseRefineRandomRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(90210))
	worst := 0.0
	for trial := 0; trial < 8; trial++ {
		length := 1200 + rng.Float64()*1800
		route, err := road.NewRoute(road.RouteConfig{
			LengthM: length, DefaultMaxMS: 14 + rng.Float64()*6,
			Controls: []road.Control{
				{Kind: road.ControlStopSign, PositionM: 300 + rng.Float64()*200, Name: "s0"},
				{Kind: road.ControlSignal, PositionM: length * 0.6,
					Timing: road.SignalTiming{RedSec: 20 + rng.Float64()*20, GreenSec: 25 + rng.Float64()*15}, Name: "l0"},
			},
			SpeedZones: []road.SpeedZone{
				{StartM: length * 0.2, EndM: length * 0.4, MinMS: 0, MaxMS: 10 + rng.Float64()*4},
			},
			GradeZones: []road.GradeZone{
				{StartM: 0, EndM: length * 0.3, ThetaRad: 0.02},
				{StartM: length * 0.5, EndM: length * 0.8, ThetaRad: -0.015},
			},
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cfg := Config{
			Route: route, Vehicle: ev.SparkEV(),
			DsM: 100, DvMS: 1, DtSec: 2, MaxTripSec: 900,
			DepartTime: rng.Float64() * 60,
			Windows:    GreenWindows(0, 1200),
		}
		exact, err := Optimize(cfg)
		if err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		}
		for _, factor := range []int{2, 3} {
			c := cfg
			c.CoarseRefine = CoarseRefine{Factor: factor}
			res, err := Optimize(c)
			if err != nil {
				t.Fatalf("trial %d factor %d: %v", trial, factor, err)
			}
			if res.Refined == nil {
				t.Fatalf("trial %d factor %d: missing diagnostic", trial, factor)
			}
			gap := res.ChargeAh - exact.ChargeAh
			if gap < -1e-12 {
				t.Fatalf("trial %d factor %d: refined %v beats exact %v", trial, factor, res.ChargeAh, exact.ChargeAh)
			}
			if gap > refineEpsAh {
				t.Fatalf("trial %d factor %d: gap %v Ah exceeds ε=%v", trial, factor, gap, refineEpsAh)
			}
			worst = math.Max(worst, gap)
			if res.TripSec <= 0 || res.TripSec > cfg.MaxTripSec {
				t.Fatalf("trial %d factor %d: trip %v s outside (0, %v]", trial, factor, res.TripSec, cfg.MaxTripSec)
			}
		}
	}
	t.Logf("worst refined-vs-exact gap: %.3g Ah (bound %g)", worst, refineEpsAh)
}

// TestCoarseRefineInfeasibleCoarseFallsBack forces a degenerate coarse grid
// (Δv' above the route's max speed leaves no nonzero velocity column) and
// requires a clean fallback to the exact DP with the FellBack flag.
func TestCoarseRefineInfeasibleCoarseFallsBack(t *testing.T) {
	route, err := road.NewRoute(road.RouteConfig{LengthM: 1000, DefaultMaxMS: 15})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Route: route, Vehicle: ev.SparkEV(),
		DsM: 100, DvMS: 1, DtSec: 2, MaxTripSec: 600,
		CoarseRefine: CoarseRefine{Factor: 40}, // Δv' = 40 m/s > 15 m/s limit
	}
	exact := cfg
	exact.CoarseRefine = CoarseRefine{}
	want, err := Optimize(exact)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if res.Refined == nil || !res.Refined.FellBack {
		t.Fatalf("expected FellBack diagnostic, got %+v", res.Refined)
	}
	requireIdenticalResults(t, want, res, "coarse fallback")
}

// TestCoarseRefineSegmentTables: coarse-refined route tables must stitch to
// a feasible plan within ε of the exact stitched plan, carry the Refined
// diagnostic, and refuse to serve a stitch config with mismatched refine
// parameters (gridKey separation).
func TestCoarseRefineSegmentTables(t *testing.T) {
	wf, err := QueueAwareWindows(queue.US25Params(),
		ConstantArrivalRate(queue.VehPerHour(153)), 0, 900)
	if err != nil {
		t.Fatal(err)
	}
	base := coarseUS25(wf)
	base.DepartTime = 40
	base.StopDwellSec = 2

	exactRT, err := BuildRouteTables(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	exactRes, err := exactRT.StitchCtx(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.CoarseRefine = CoarseRefine{Factor: 2}
	rt, err := BuildRouteTables(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.StitchCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refined == nil || res.Refined.Factor != 2 {
		t.Fatalf("stitched coarse tables: diag %+v", res.Refined)
	}
	if res.ChargeAh < exactRes.ChargeAh-1e-12 || res.ChargeAh > exactRes.ChargeAh+refineEpsAh {
		t.Fatalf("stitched refined charge %v vs exact %v (ε=%v)", res.ChargeAh, exactRes.ChargeAh, refineEpsAh)
	}

	// Exact stitch config against coarse tables must be rejected, and vice
	// versa: approximate crossings must never serve exact requests.
	if _, err := rt.StitchCtx(context.Background(), base); err == nil {
		t.Fatal("coarse tables served an exact stitch config")
	}
	if _, err := exactRT.StitchCtx(context.Background(), cfg); err == nil {
		t.Fatal("exact tables served a coarse stitch config")
	}
}
