// Segment-level DP decomposition for fleet serving (DESIGN.md §11).
//
// A route's interior physics between signalized intersections carries no
// arrival-time constraint: windows (Eq. 10–12) bind only at the signals
// themselves, and the transition costs (Eq. 8–9) depend on the speed pair
// and grade, never on absolute time. Splitting the route at its signals
// therefore yields segments whose traversals are *time-shift invariant* —
// the cost and duration of crossing a segment from entry velocity v₀
// depend only on the path driven inside it, not on when the crossing
// starts. Solving each segment once per admissible entry velocity gives a
// table of crossings (exit velocity, duration, cost) that serves every
// request touching that segment: any departure time, any arrival-rate
// estimate, any optimizer variant. Per-request work collapses to stitching
// — a small DP over the boundary states (velocity index × time bucket at
// each signal) that applies the window penalties of Eq. (12) at the
// boundaries where they actually bind.
//
// This is the reuse insight of approximate-DP eco-driving (Deshpande et
// al., arXiv 2010.03620) applied to the paper's serving tier: a city
// fleet's requests overwhelmingly share road segments, so O(requests) full
// solves become O(hot segments × entry velocities) solves plus cheap
// stitching (internal/cloud wires the cache and coalescing).
package dp

import (
	"context"
	"fmt"
	"math"

	"evvo/internal/ev"
	"evvo/internal/road"
)

// SegmentSpec locates one signal-delimited segment on the discretized
// route. StartStage/EndStage index the stage array the tables were built
// on; both boundary stages are shared with the neighboring segments.
type SegmentSpec struct {
	StartStage, EndStage int
	StartM, EndM         float64
	// BoundaryName names the signal at EndM ("" for the final segment,
	// which ends at the route destination).
	BoundaryName string
}

// crossing is one admissible traversal of a segment for a fixed entry
// velocity: the cheapest path that exits at exitJ·Δv with a duration in
// this crossing's time bucket. Costs include the charge ζ and the
// time-weight price of the duration, but no window penalties — those are
// applied at stitch time, where the absolute arrival time is known.
type crossing struct {
	exitJ  int
	durSec float64 // exact traversal time, interior stop-sign dwell included
	costAh float64
	path   []uint16 // velocity index per stage, len = EndStage-StartStage+1
}

// entryTable holds every crossing of one segment for one entry velocity.
type entryTable struct {
	entryJ    int
	crossings []crossing
}

// RouteTables is the solved per-segment decomposition of one route on one
// DP grid. Build once with BuildRouteTables, then answer any number of
// requests with StitchCtx. The tables are immutable after construction and
// safe for concurrent StitchCtx calls.
type RouteTables struct {
	cfg    Config  // defaulted build config; stitch configs must match its grid
	key    gridKey // comparable grid identity for the compatibility check
	specs  []SegmentSpec
	stages []stageInfo
	grid   dpGrid
	// entries[s] lists the entry tables of segment s in ascending entryJ.
	entries       [][]entryTable
	segmentSolves int
	// refineMS is the resolved corridor half-width when the tables were
	// built with CoarseRefine (0 for exact builds); stitched results then
	// carry the Refined diagnostic.
	refineMS float64
}

// gridKey is the comparable identity of everything baked into the tables:
// any stitch config differing in one of these fields would read tables
// solved for different physics. The route is compared by pointer — Routes
// are immutable after construction, so the same instance means the same
// geometry; callers (the cloud's per-route cache) hold one *road.Route per
// registered name. Window parameters (Windows, margins, PenaltyAh) and
// DepartTime are deliberately absent — they are stitch-time inputs, which
// is exactly what makes the tables shareable.
type gridKey struct {
	route              *road.Route
	vehicle            ev.Params
	dsM, dvMS, dtSec   float64
	maxTripSec         float64
	accelMaxMS2        float64
	decelMaxMS2        float64
	timeWeightAhPerSec float64
	stopDwellSec       float64
	// Coarse-refined tables hold approximate crossings (DESIGN.md §12), so
	// they must not serve stitch configs expecting exact ones — and vice
	// versa.
	coarseFactor     int
	coarseCorridorMS float64
}

func gridKeyOf(cfg *Config) gridKey {
	return gridKey{
		route: cfg.Route, vehicle: cfg.Vehicle,
		dsM: cfg.DsM, dvMS: cfg.DvMS, dtSec: cfg.DtSec,
		maxTripSec:  cfg.MaxTripSec,
		accelMaxMS2: cfg.AccelMaxMS2, decelMaxMS2: cfg.DecelMaxMS2,
		timeWeightAhPerSec: cfg.TimeWeightAhPerSec,
		stopDwellSec:       cfg.StopDwellSec,
		coarseFactor:       cfg.CoarseRefine.Factor,
		coarseCorridorMS:   cfg.CoarseRefine.CorridorMS,
	}
}

// Segments returns the segment layout (copy; callers may modify freely).
func (rt *RouteTables) Segments() []SegmentSpec {
	out := make([]SegmentSpec, len(rt.specs))
	copy(out, rt.specs)
	return out
}

// SegmentSolves reports how many per-(segment, entry-velocity) DP solves
// the build ran — the denominator of the fleet tier's reuse factor.
func (rt *RouteTables) SegmentSolves() int { return rt.segmentSolves }

// Crossings reports the total crossing count across all tables (a size
// diagnostic for cache accounting).
func (rt *RouteTables) Crossings() int {
	total := 0
	for _, ets := range rt.entries {
		for _, et := range ets {
			total += len(et.crossings)
		}
	}
	return total
}

// BuildRouteTables splits cfg.Route at its signal boundaries and solves
// each segment once per admissible entry velocity. cfg.Windows and
// cfg.DepartTime are ignored: windows bind at stitch time only. The
// context is observed at every segment-stage boundary, exactly like
// OptimizeCtx.
//
// With cfg.CoarseRefine enabled the per-entry solves take the
// coarse-to-fine fast path (refine.go): each segment is first crossed on
// the coarsened velocity grid, and the fine solve is restricted to the
// corridor around every coarse crossing's path. The resulting tables hold
// approximate crossings under the same error contract as OptimizeCtx
// (DESIGN.md §12); gridKey keeps them apart from exact tables.
//
//lint:certify pure
func BuildRouteTables(ctx context.Context, cfg Config) (*RouteTables, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g, err := buildGrid(&cfg)
	if err != nil {
		return nil, err
	}
	stages, err := buildStages(cfg, g.n, g.ds, g.jMax)
	if err != nil {
		return nil, err
	}

	// Boundary stages: source, every signal stage, destination. This is
	// road.SegmentsAtSignals expressed in stage indexes; deriving it from
	// the solved stage array keeps the split consistent with snapping.
	bounds := []int{0}
	for i, st := range stages {
		if st.signal != nil {
			bounds = append(bounds, i)
		}
	}
	bounds = append(bounds, g.n)
	maxM := 0
	for si := 0; si < len(bounds)-1; si++ {
		if m := bounds[si+1] - bounds[si]; m > maxM {
			maxM = m
		}
	}

	bands := newAccelBands(&cfg, g.ds, g.jMax)
	trans := newTransitionCache(&cfg, g.ds, g.jMax, bands)
	d := newSegDP(cfg.Workers, g.jMax+1, g.kMax+1, maxM)
	coarse := buildSegCoarse(&cfg, maxM)
	rt := &RouteTables{cfg: cfg, key: gridKeyOf(&cfg), stages: stages, grid: g}
	if coarse != nil {
		rt.refineMS = coarse.margin
	}
	for si := 0; si < len(bounds)-1; si++ {
		a, b := bounds[si], bounds[si+1]
		spec := SegmentSpec{
			StartStage: a, EndStage: b,
			StartM: stages[a].posM, EndM: stages[b].posM,
		}
		if sig := stages[b].signal; sig != nil {
			spec.BoundaryName = sig.Name
		}
		var ets []entryTable
		for j0 := stages[a].minJ; j0 <= stages[a].maxJ; j0++ {
			var loJ, hiJ []int
			if coarse != nil {
				if loJ, hiJ, err = coarse.corridor(ctx, cfg.DvMS, g.jMax, a, b, j0); err != nil {
					return nil, err
				}
			}
			if err := d.solve(ctx, &cfg, g, stages, bands, trans, a, b, j0, loJ, hiJ); err != nil {
				return nil, err
			}
			et, err := d.crossings(stages, a, b, j0)
			if err != nil {
				return nil, err
			}
			if len(et.crossings) == 0 && loJ != nil {
				// The corridor cut off every crossing (coarse/fine
				// reachability mismatch near a band edge): fall back to the
				// unrestricted fine solve so feasibility is never lost.
				if err := d.solve(ctx, &cfg, g, stages, bands, trans, a, b, j0, nil, nil); err != nil {
					return nil, err
				}
				if et, err = d.crossings(stages, a, b, j0); err != nil {
					return nil, err
				}
			}
			rt.segmentSolves++
			ets = append(ets, *et)
		}
		rt.specs = append(rt.specs, spec)
		rt.entries = append(rt.entries, ets)
	}
	return rt, nil
}

// segDP is the reusable solver state for per-segment DPs: double-buffered
// value arrays, a flat backpointer slab sized for the longest segment, and
// the relaxation pool. One segDP serves every (segment, entry) solve of a
// build sequentially, eliminating the per-solve slab allocations that
// previously dominated build time.
type segDP struct {
	kw, width          int
	curCost, nxtCost   []float64
	curExact, nxtExact []float64
	backs              []int32
	pool               *relaxPool
}

func newSegDP(workers, jw, kw, maxM int) *segDP {
	width := jw * kw
	return &segDP{
		kw: kw, width: width,
		curCost: make([]float64, width), nxtCost: make([]float64, width),
		curExact: make([]float64, width), nxtExact: make([]float64, width),
		backs: make([]int32, maxM*width),
		pool:  newRelaxPool(workers, jw, kw),
	}
}

// solve runs the window-free DP over stages [a, b] seeded at entry velocity
// index j0 with segment-relative time 0. loJ/hiJ, when non-nil, restrict
// each *interior* stage's band (local indexes 1..m-1): the entry stage is
// always narrowed to j0 and the exit stage keeps its full band so every
// exit velocity stays representable in the crossing table. After solve
// returns, curCost/curExact hold the exit stage and backs[(i-1)*width:]
// stage i's incoming pointers.
func (d *segDP) solve(ctx context.Context, cfg *Config, g dpGrid, stages []stageInfo,
	bands *accelBands, trans *transitionCache, a, b, j0 int, loJ, hiJ []int) error {

	m := b - a
	fillF64(d.curCost, inf)
	d.curCost[j0*d.kw] = 0  // entry velocity j0, segment-relative elapsed 0
	d.curExact[j0*d.kw] = 0 // the one exact cell read without a commit having written it
	d.pool.seed(j0, 0, d.kw)

	band := func(i int) (int, int) {
		st := stages[a+i]
		lo, hi := st.minJ, st.maxJ
		if loJ != nil && i > 0 && i < m {
			// Empty intersections keep the stage's own band, exactly like
			// corridor.apply: conservative, never infeasible-by-clamping.
			if l, h := max(lo, loJ[i]), min(hi, hiJ[i]); l <= h {
				lo, hi = l, h
			}
		}
		return lo, hi
	}

	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		cur := stages[a+i]
		curLo, curHi := band(i)
		if i == 0 {
			// Only the seeded entry column is populated; narrowing the scan
			// band skips the guaranteed-inf columns.
			curLo, curHi = j0, j0
		}
		nxtLo, nxtHi := band(i + 1)
		// Banded seeding, matching optimizeCore: no read ever leaves the
		// destination band, so stale cells outside it are unreachable.
		bLo, bHi := nxtLo*d.kw, (nxtHi+1)*d.kw
		fillF64(d.nxtCost[bLo:bHi], inf)
		fillI32(d.backs[i*d.width+bLo:i*d.width+bHi], -1)
		sr := &stageRelax{
			kMax: g.kMax, tw: g.jMax + 1,
			curMinJ: curLo, curMaxJ: curHi,
			nxtMinJ: nxtLo, nxtMaxJ: nxtHi,
			bands:   bands,
			tr:      trans.forGrade(cfg.Route.GradeAt(cur.posM + g.ds/2)),
			dTauT:   trans.dTauT,
			curCost: d.curCost, curExact: d.curExact,
			nxtCost: d.nxtCost, nxtExact: d.nxtExact,
			nxtBack: d.backs[i*d.width : (i+1)*d.width],
			dwell:   cur.dwellSec, timeW: cfg.TimeWeightAhPerSec,
			maxTrip: cfg.MaxTripSec, invDt: 1 / cfg.DtSec,
			// No windows inside a segment: signals sit only at boundaries,
			// where the stitcher applies the penalties.
			depart: 0, penalty: 0, hasWin: false,
		}
		sr.run(cfg.Workers, d.pool)
		d.curCost, d.nxtCost = d.nxtCost, d.curCost
		d.curExact, d.nxtExact = d.nxtExact, d.curExact
		d.pool.advance()
	}
	return nil
}

// crossings extracts every finite exit state of the last solve as a
// crossing table.
func (d *segDP) crossings(stages []stageInfo, a, b, j0 int) (*entryTable, error) {
	m := b - a
	kw := d.kw
	et := &entryTable{entryJ: j0}
	for j1 := stages[b].minJ; j1 <= stages[b].maxJ; j1++ {
		for k := 0; k < kw; k++ {
			c := d.curCost[j1*kw+k]
			if c >= inf {
				continue
			}
			path := make([]uint16, m+1)
			path[m] = uint16(j1)
			jj, kk := j1, k
			for i := m; i > 0; i-- {
				bp := d.backs[(i-1)*d.width+jj*kw+kk]
				if bp < 0 {
					return nil, fmt.Errorf("dp: broken segment backpointer at stage %d of [%d,%d] entry %d", i, a, b, j0)
				}
				jj, kk = int(bp>>16), int(bp&0xffff)
				path[i-1] = uint16(jj)
			}
			et.crossings = append(et.crossings, crossing{
				exitJ: j1, durSec: d.curExact[j1*kw+k], costAh: c, path: path,
			})
		}
	}
	return et, nil
}

// pathSpan walks every finite exit state's backpath from the last solve
// and reports the per-stage velocity-index span they cover (local stage
// indexes 0..m). ok is false when the segment has no finite exit at all.
func (d *segDP) pathSpan(stages []stageInfo, a, b, jMax int) (loJ, hiJ []int, ok bool) {
	m := b - a
	kw := d.kw
	loJ, hiJ = make([]int, m+1), make([]int, m+1)
	for i := range loJ {
		loJ[i], hiJ[i] = jMax+1, -1
	}
	for j1 := stages[b].minJ; j1 <= stages[b].maxJ; j1++ {
		for k := 0; k < kw; k++ {
			if d.curCost[j1*kw+k] >= inf {
				continue
			}
			ok = true
			jj, kk := j1, k
			for i := m; ; i-- {
				if jj < loJ[i] {
					loJ[i] = jj
				}
				if jj > hiJ[i] {
					hiJ[i] = jj
				}
				if i == 0 {
					break
				}
				bp := d.backs[(i-1)*d.width+jj*kw+kk]
				if bp < 0 {
					break
				}
				jj, kk = int(bp>>16), int(bp&0xffff)
			}
		}
	}
	return loJ, hiJ, ok
}

// segCoarse is the coarsened-grid solver state a coarse-refined build
// shares across its segments (refine.go documents the fast path).
type segCoarse struct {
	cfg    Config // coarse config: DvMS scaled by the factor
	g      dpGrid
	stages []stageInfo
	bands  *accelBands
	trans  *transitionCache
	d      *segDP
	margin float64 // resolved corridor half-width in m/s
}

// buildSegCoarse prepares the coarse solver, or returns nil when the fast
// path is off or the coarsened grid is degenerate (Δv' above the route's
// max speed) — the build then simply produces exact tables.
func buildSegCoarse(cfg *Config, maxM int) *segCoarse {
	if cfg.CoarseRefine.Factor < 2 {
		return nil
	}
	ccfg := *cfg
	ccfg.CoarseRefine = CoarseRefine{}
	ccfg.DvMS = cfg.DvMS * float64(cfg.CoarseRefine.Factor)
	cg, err := buildGrid(&ccfg)
	if err != nil {
		return nil
	}
	cstages, err := buildStages(ccfg, cg.n, cg.ds, cg.jMax)
	if err != nil {
		return nil // unreachable when the fine build succeeded (same Δs)
	}
	cbands := newAccelBands(&ccfg, cg.ds, cg.jMax)
	return &segCoarse{
		cfg: ccfg, g: cg, stages: cstages,
		bands:  cbands,
		trans:  newTransitionCache(&ccfg, cg.ds, cg.jMax, cbands),
		d:      newSegDP(ccfg.Workers, cg.jMax+1, cg.kMax+1, maxM),
		margin: cfg.CoarseRefine.marginMS(cfg.DvMS),
	}
}

// corridor crosses the segment on the coarse grid from the coarse column
// nearest entry j0·Δv and converts the span of every optimal backpath to
// fine-grid bands widened by the corridor margin. nil bands mean "solve
// unrestricted" (no coarse crossing exists).
func (sc *segCoarse) corridor(ctx context.Context, fineDv float64, jMaxFine, a, b, j0 int) (loJ, hiJ []int, err error) {
	j0c := int(math.Round(float64(j0) * fineDv / sc.cfg.DvMS))
	if j0c > sc.g.jMax {
		j0c = sc.g.jMax
	}
	if err := sc.d.solve(ctx, &sc.cfg, sc.g, sc.stages, sc.bands, sc.trans, a, b, j0c, nil, nil); err != nil {
		return nil, nil, err
	}
	cLo, cHi, ok := sc.d.pathSpan(sc.stages, a, b, sc.g.jMax)
	if !ok {
		return nil, nil, nil
	}
	loJ, hiJ = make([]int, len(cLo)), make([]int, len(cLo))
	for i := range cLo {
		loJ[i], hiJ[i] = fineBand(
			float64(cLo[i])*sc.cfg.DvMS-sc.margin,
			float64(cHi[i])*sc.cfg.DvMS+sc.margin,
			fineDv, jMaxFine)
	}
	return loJ, hiJ, nil
}

// stitchBack records how a boundary state was reached: the predecessor
// boundary state and the crossing that bridged them.
type stitchBack struct {
	prevJ, prevK int32
	cr           *crossing
}

// StitchCtx assembles the optimal profile for one request from the solved
// segment tables: a DP over boundary states (velocity index × time bucket
// at each signal) whose transitions are the precomputed crossings, with
// window penalties applied at the boundaries. cfg supplies the per-request
// inputs — DepartTime, Windows, margins, PenaltyAh — and must match the
// build config on every grid-defining field (route, vehicle, Δs/Δv/Δt,
// trip budget, accel bounds, time weight, dwell), or an error is returned.
//
// The stitched optimum agrees with OptimizeCtx up to time-bucket merging:
// the monolithic DP buckets paths by absolute elapsed time at every stage,
// the stitcher by segment-relative time inside a segment and absolute time
// at boundaries, so the two can merge different path pairs into one bucket.
// Both carry exact times alongside the buckets, so the disagreement is
// bounded by the bucket quantization, not accumulated (pinned within
// tolerance by TestStitchMatchesMonolithicFig6).
//
//lint:certify pure
func (rt *RouteTables) StitchCtx(ctx context.Context, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if gridKeyOf(&cfg) != rt.key {
		return nil, fmt.Errorf("dp: stitch config does not match the grid the segment tables were built on")
	}

	windows := shrunkWindows(&cfg, rt.stages)
	m := len(rt.specs)
	kw := rt.grid.kMax + 1
	width := (rt.grid.jMax + 1) * kw
	cost := make([][]float64, m+1)
	exact := make([][]float64, m+1)
	back := make([][]stitchBack, m+1)
	for i := range cost {
		cost[i] = make([]float64, width)
		exact[i] = make([]float64, width)
		back[i] = make([]stitchBack, width)
		for x := range cost[i] {
			cost[i][x] = inf
		}
	}
	cost[0][0] = 0 // v = 0, elapsed = 0 at the source

	expanded := 0
	for s := 0; s < m; s++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ws, hasWin := windows[rt.specs[s].EndStage]
		nxtCost, nxtExact, nxtBack := cost[s+1], exact[s+1], back[s+1]
		for ei := range rt.entries[s] {
			et := &rt.entries[s][ei]
			srcCost := cost[s][et.entryJ*kw : (et.entryJ+1)*kw]
			srcExact := exact[s][et.entryJ*kw : (et.entryJ+1)*kw]
			for k := 0; k < kw; k++ {
				c0 := srcCost[k]
				if c0 >= inf {
					continue
				}
				elapsed := srcExact[k]
				for ci := range et.crossings {
					cr := &et.crossings[ci]
					total := elapsed + cr.durSec
					if total > cfg.MaxTripSec {
						continue
					}
					k2 := int(math.Round(total / cfg.DtSec))
					if k2 > rt.grid.kMax {
						k2 = rt.grid.kMax
					}
					penal := 0.0
					if hasWin && !inAnyWindow(ws, cfg.DepartTime+total) {
						penal = cfg.PenaltyAh
					}
					expanded++
					nc := c0 + cr.costAh + penal
					idx := cr.exitJ*kw + k2
					if nc < nxtCost[idx] {
						nxtCost[idx] = nc
						nxtExact[idx] = total
						nxtBack[idx] = stitchBack{prevJ: int32(et.entryJ), prevK: int32(k), cr: cr}
					}
				}
			}
		}
	}

	// Destination boundary: the final segment ends at the forced-zero
	// destination stage, so only velocity column 0 is populated.
	bestK, bestCost := -1, inf
	for k := 0; k < kw; k++ {
		if c := cost[m][k]; c < bestCost {
			bestCost, bestK = c, k
		}
	}
	if bestK < 0 {
		return nil, fmt.Errorf("dp: no feasible stitched trajectory within %.0f s (grid Δs=%.0f Δv=%.2f Δt=%.1f)",
			cfg.MaxTripSec, rt.grid.ds, cfg.DvMS, cfg.DtSec)
	}

	// Reconstruct the full velocity sequence by concatenating the winning
	// crossings' stage paths (boundary stages are shared, so segment s's
	// first index overwrites segment s-1's last with the same value).
	js := make([]int, rt.grid.n+1)
	jj, kk := 0, bestK
	for s := m; s > 0; s-- {
		sb := back[s][jj*kw+kk]
		if sb.cr == nil {
			return nil, fmt.Errorf("dp: broken stitch backpointer at boundary %d", s)
		}
		a := rt.specs[s-1].StartStage
		for i, v := range sb.cr.path {
			js[a+i] = int(v)
		}
		jj, kk = int(sb.prevJ), int(sb.prevK)
	}
	res, err := assemble(cfg, rt.stages, js, rt.grid.ds, windows, bestCost, expanded)
	if err != nil {
		return nil, err
	}
	if f := rt.cfg.CoarseRefine.Factor; f >= 2 {
		// The crossings themselves are the approximate artifact; every
		// stitch over them inherits the coarse-to-fine error contract.
		res.Refined = &RefineDiag{Factor: f, CorridorMS: rt.refineMS}
	}
	return res, nil
}
