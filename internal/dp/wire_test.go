package dp

import (
	"bytes"
	"context"
	"encoding/gob"
	"testing"
)

// TestWireRoundTripParity: Export → gob → Import under the same config must
// produce tables that stitch the identical plan the original tables do —
// imported replicas are exact, never approximations.
func TestWireRoundTripParity(t *testing.T) {
	cfg := coarseUS25(nil)
	rt := buildTestTables(t, cfg)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rt.Export()); err != nil {
		t.Fatal(err)
	}
	var w TablesWire
	if err := gob.NewDecoder(&buf).Decode(&w); err != nil {
		t.Fatal(err)
	}
	imp, err := ImportRouteTables(cfg, &w)
	if err != nil {
		t.Fatal(err)
	}
	if imp.SegmentSolves() != rt.SegmentSolves() || imp.Crossings() != rt.Crossings() {
		t.Fatalf("imported tables carry %d solves / %d crossings, original %d / %d",
			imp.SegmentSolves(), imp.Crossings(), rt.SegmentSolves(), rt.Crossings())
	}

	want, err := rt.StitchCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := imp.StitchCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Imported crossings are byte-identical to the originals, so the stitch
	// must agree bit-for-bit, not just within tolerance.
	if got.ChargeAh != want.ChargeAh || got.TripSec != want.TripSec || got.Penalized != want.Penalized {
		t.Fatalf("imported stitch diverged: %.9f Ah / %.1f s vs %.9f Ah / %.1f s",
			got.ChargeAh, got.TripSec, want.ChargeAh, want.TripSec)
	}
	if got.Profile.Len() != want.Profile.Len() {
		t.Fatalf("profile lengths differ: %d vs %d", got.Profile.Len(), want.Profile.Len())
	}
}

// TestWireFingerprintPinsGrid: the fingerprint must change with any
// grid-defining parameter and GridFingerprint must agree with Export.
func TestWireFingerprintPinsGrid(t *testing.T) {
	cfg := coarseUS25(nil)
	rt := buildTestTables(t, cfg)
	w := rt.Export()

	fp, err := GridFingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fp != w.Fingerprint {
		t.Fatalf("GridFingerprint %016x, Export carries %016x", fp, w.Fingerprint)
	}

	coarser := cfg
	coarser.DsM = 200
	fp2, err := GridFingerprint(coarser)
	if err != nil {
		t.Fatal(err)
	}
	if fp2 == fp {
		t.Fatal("fingerprint unchanged across a grid change")
	}
	if _, err := ImportRouteTables(coarser, w); err == nil {
		t.Fatal("tables built on a different grid were imported")
	}

	otherRoute := cfg
	otherRoute.Route = openRoad(t)
	fp3, err := GridFingerprint(otherRoute)
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp {
		t.Fatal("fingerprint unchanged across a route change")
	}
}

// TestWireImportRejectsCorruption: structurally damaged payloads with a
// valid fingerprint must still be refused.
func TestWireImportRejectsCorruption(t *testing.T) {
	cfg := coarseUS25(nil)
	rt := buildTestTables(t, cfg)

	corrupt := func(name string, mutate func(w *TablesWire)) {
		t.Helper()
		w := rt.Export()
		mutate(w)
		if _, err := ImportRouteTables(cfg, w); err == nil {
			t.Fatalf("%s: corrupted wire accepted", name)
		}
	}
	corrupt("truncated segments", func(w *TablesWire) { w.Specs = w.Specs[:1]; w.Entries = w.Entries[:1] })
	corrupt("entry/spec mismatch", func(w *TablesWire) { w.Entries = w.Entries[:1] })
	corrupt("entry out of band", func(w *TablesWire) { w.Entries[0][0].EntryJ = 10_000 })
	// Segment 0 enters at the forced-zero start stage (one entry table), so
	// the ordering mutation uses segment 1, whose entry band is wide.
	corrupt("entries out of order", func(w *TablesWire) {
		w.Entries[1][0].EntryJ, w.Entries[1][1].EntryJ = w.Entries[1][1].EntryJ, w.Entries[1][0].EntryJ
	})
	corrupt("exit out of band", func(w *TablesWire) { w.Entries[0][0].Crossings[0].ExitJ = -5 })
	corrupt("truncated path", func(w *TablesWire) {
		cr := &w.Entries[0][0].Crossings[0]
		cr.Path = cr.Path[:1]
	})
	corrupt("negative duration", func(w *TablesWire) { w.Entries[0][0].Crossings[0].DurSec = -1 })
	corrupt("shifted spec stages", func(w *TablesWire) { w.Specs[0].EndStage++ })
	if _, err := ImportRouteTables(cfg, nil); err == nil {
		t.Fatal("nil wire accepted")
	}
}
