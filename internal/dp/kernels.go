// Lane kernels for the DP relaxation (DESIGN.md §12).
//
// The gather pass (parallel.go) splits each (destination column j2, source
// column j) row into two phases: a vectorizable *evaluation* over the
// source row's time buckets — candidate cost, exact elapsed time, target
// bucket and feasibility mask as parallel float64 lanes — and a scalar
// *commit* that resolves the k2 scatter. relaxEval is the evaluation phase:
// it dispatches to the AVX2 kernel (kernels_amd64.s) when the CPU supports
// it and finishes any non-multiple-of-4 tail with the portable Go
// reference. The assembly is a lane-for-lane transcription of relaxEvalGo —
// separate VMULPD/VADDPD in the reference's operation order, never FMA — so
// the two are bit-identical on every input (pinned by kernels_test.go).
package dp

import (
	"math"
	"sync"
)

// solveSlabs recycles a solve's large allocations across OptimizeCtx calls:
// the four double-buffered value arrays (one backing slab, sub-sliced), the
// backpointer slab and the relaxation pool. Recycling is safe because the
// DP re-seeds everything it reads — cost and backpointer cells are
// inf/-1-filled per stage across the destination band that bounds every
// read, and exact/scratch cells are only ever read behind a finite-cost
// mask — so stale contents cannot leak between solves. The arrays hold no pointers, which also keeps them out of
// GC scans.
type solveSlabs struct {
	vals  []float64 // 4*width: curCost, nxtCost, curExact, nxtExact
	backs []int32
	pool  *relaxPool
}

var slabPool = sync.Pool{New: func() any { return new(solveSlabs) }}

// grabSlabs returns recycled slabs grown to the given geometry.
func grabSlabs(width, nBacks, workers, jw, kw int) *solveSlabs {
	s := slabPool.Get().(*solveSlabs)
	if cap(s.vals) < 4*width {
		s.vals = make([]float64, 4*width)
	}
	s.vals = s.vals[:4*width]
	if cap(s.backs) < nBacks {
		s.backs = make([]int32, nBacks)
	}
	s.backs = s.backs[:nBacks]
	s.pool = s.pool.fit(workers, jw, kw)
	return s
}

// relaxEval fills, for each source time bucket k in [0, len(cost)):
//
//	cand[k] = (cost[k] + zeta) + tCost          // candidate cost, no penalty
//	tot[k]  = exact[k] + step                   // exact elapsed time
//	k2f[k]  = min(floor(tot[k]*invDt+0.5), kMaxF) // destination bucket
//	mask bit k = cost[k] != inf && tot[k] <= maxTrip
//
// mask packs 4 lanes per byte (bit k&3 of mask[k>>2]). The window penalty
// is deliberately excluded: it needs the absolute arrival time and is added
// by the scalar commit pass, which only looks at masked-in lanes.
//
// Inputs must be free of NaNs (the DP arrays only ever hold finite values
// or the inf sentinel); the asm and Go paths are bit-identical under that
// contract and diverge only in NaN min-propagation.
func relaxEval(cand, tot, k2f []float64, mask []uint8, cost, exact []float64,
	zeta, tCost, step, maxTrip, invDt, kMaxF float64, useAsm bool) {

	from := 0
	if useAsm {
		if n4 := len(cost) &^ 3; n4 > 0 {
			relaxEvalAsm(cand[:n4], tot[:n4], k2f[:n4], mask[:n4>>2], cost[:n4], exact[:n4],
				zeta, tCost, step, maxTrip, invDt, kMaxF)
			from = n4
		}
	}
	relaxEvalGo(cand, tot, k2f, mask, cost, exact, zeta, tCost, step, maxTrip, invDt, kMaxF, from)
}

// relaxEvalGo is the portable reference for relaxEval, starting at lane
// `from` (always a multiple of 4). The expression order is the kernel
// contract: the assembly must perform the exact same roundings.
func relaxEvalGo(cand, tot, k2f []float64, mask []uint8, cost, exact []float64,
	zeta, tCost, step, maxTrip, invDt, kMaxF float64, from int) {

	for k := from; k < len(cost); k++ {
		if k&3 == 0 {
			mask[k>>2] = 0
		}
		c0 := cost[k]
		e := exact[k] + step
		cand[k] = (c0 + zeta) + tCost
		tot[k] = e
		f := math.Floor(e*invDt + 0.5)
		if f > kMaxF {
			f = kMaxF
		}
		k2f[k] = f
		//lint:allow floateq inf is the exact MaxFloat64 unreached-state sentinel, assigned verbatim and never computed
		if c0 != inf && e <= maxTrip {
			mask[k>>2] |= 1 << (k & 3)
		}
	}
}

// SetAsmKernels forces the assembly kernels on or off and returns the
// previous setting. Enabling them on a CPU without AVX2 support is a no-op.
// Intended for tests and benchmarks; do not call concurrently with a
// running solve (each stage snapshots the setting before spawning workers,
// so flips between solves are always safe).
func SetAsmKernels(on bool) (prev bool) {
	prev = useAsmKernels
	useAsmKernels = on && asmSupported
	return prev
}

// KernelsEnabled reports whether the AVX2 relaxation kernels are in use.
func KernelsEnabled() bool { return useAsmKernels }

// fillF64 sets every element of dst to v by copy-doubling (compiles to
// memmove chunks, far faster than an element loop on the wide DP slabs).
func fillF64(dst []float64, v float64) {
	if len(dst) == 0 {
		return
	}
	dst[0] = v
	for i := 1; i < len(dst); i *= 2 {
		copy(dst[i:], dst[:i])
	}
}

// fillI32 sets every element of dst to v by copy-doubling.
func fillI32(dst []int32, v int32) {
	if len(dst) == 0 {
		return
	}
	dst[0] = v
	for i := 1; i < len(dst); i *= 2 {
		copy(dst[i:], dst[:i])
	}
}
