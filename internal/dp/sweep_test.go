package dp

import (
	"testing"

	"evvo/internal/ev"
	"evvo/internal/queue"
	"evvo/internal/road"
)

// tinySweepConfig is cheap enough to optimize dozens of times in a test.
func tinySweepConfig(t *testing.T) Config {
	t.Helper()
	r, err := road.NewRoute(road.RouteConfig{LengthM: 1000, DefaultMaxMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Route: r, Vehicle: ev.SparkEV(),
		DsM: 500, DvMS: 4, DtSec: 10, MaxTripSec: 300,
	}
}

func TestSweepDeparturesValidation(t *testing.T) {
	cfg := coarseUS25(nil)
	if _, err := SweepDepartures(cfg, 0, 60, 0); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := SweepDepartures(cfg, 60, 0, 10); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestSweepDeparturesCoversRange(t *testing.T) {
	cfg := coarseUS25(GreenWindows(0, 900))
	opts, err := SweepDepartures(cfg, 0, 50, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 3 {
		t.Fatalf("got %d options, want 3", len(opts))
	}
	for i, want := range []float64{0, 25, 50} {
		if opts[i].DepartTime != want {
			t.Fatalf("option %d departs at %v, want %v", i, opts[i].DepartTime, want)
		}
		if opts[i].Result == nil || opts[i].Result.ChargeAh <= 0 {
			t.Fatalf("option %d has no usable result", i)
		}
	}
}

func TestSweepDeparturesPropagatesFailure(t *testing.T) {
	cfg := coarseUS25(nil)
	cfg.MaxTripSec = 60 // impossible budget
	if _, err := SweepDepartures(cfg, 0, 10, 10); err == nil {
		t.Fatal("impossible sweep did not error")
	}
}

func TestBestDeparturePrefersClean(t *testing.T) {
	cheapPenalized := &Result{ChargeAh: 0.1, Penalized: true}
	cleanCostly := &Result{ChargeAh: 0.3}
	opts := []DepartureOption{
		{DepartTime: 0, Result: cheapPenalized},
		{DepartTime: 10, Result: cleanCostly},
	}
	best, err := BestDeparture(opts)
	if err != nil {
		t.Fatal(err)
	}
	if best.DepartTime != 10 {
		t.Fatalf("picked penalized option: %+v", best)
	}
}

func TestBestDepartureFallsBackWhenAllPenalized(t *testing.T) {
	opts := []DepartureOption{
		{DepartTime: 0, Result: &Result{ChargeAh: 0.3, Penalized: true}},
		{DepartTime: 10, Result: &Result{ChargeAh: 0.2, Penalized: true}},
	}
	best, err := BestDeparture(opts)
	if err != nil {
		t.Fatal(err)
	}
	if best.DepartTime != 10 {
		t.Fatalf("fallback picked %+v, want the cheaper plan", best)
	}
	if _, err := BestDeparture(nil); err == nil {
		t.Fatal("empty options accepted")
	}
}

// TestSweepDeparturesStaysOnGrid is the regression test for the float-drift
// bug: the sweep used to accumulate `depart += step`, so a fractional step
// walked off the exact grid (and, over long horizons, could drop or add the
// final departure). Departures must be exactly from + i·step.
func TestSweepDeparturesStaysOnGrid(t *testing.T) {
	cfg := tinySweepConfig(t)
	from, to, step := 0.0, 5.0, 0.1
	opts, err := SweepDepartures(cfg, from, to, step)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 51 {
		t.Fatalf("got %d options, want 51", len(opts))
	}
	for i, o := range opts {
		if want := from + float64(i)*step; o.DepartTime != want {
			t.Fatalf("option %d departs at %v, want exactly %v (off-grid drift)", i, o.DepartTime, want)
		}
	}
}

// TestSweepDeparturesParallelMatchesSerial: the sweep's worker pool must
// return the same options in the same order as a serial sweep.
func TestSweepDeparturesParallelMatchesSerial(t *testing.T) {
	wf, err := QueueAwareWindows(queue.US25Params(),
		ConstantArrivalRate(queue.VehPerHour(400)), 0, 1200)
	if err != nil {
		t.Fatal(err)
	}
	serialCfg := coarseUS25(wf)
	serialCfg.Workers = 1
	serial, err := SweepDepartures(serialCfg, 0, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := coarseUS25(wf)
	parCfg.Workers = 4
	parallel, err := SweepDepartures(parCfg, 0, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("option counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.DepartTime != p.DepartTime {
			t.Fatalf("option %d: depart %v vs %v", i, s.DepartTime, p.DepartTime)
		}
		if s.Result.ChargeAh != p.Result.ChargeAh || s.Result.TripSec != p.Result.TripSec ||
			s.Result.StatesExpanded != p.Result.StatesExpanded {
			t.Fatalf("option %d diverged: %+v vs %+v", i, s.Result, p.Result)
		}
	}
}

func TestSweepFindsBetterDepartureUnderQueues(t *testing.T) {
	// With queue-aware windows, some departures align better with T_q than
	// others; the sweep must expose a real spread.
	wf, err := QueueAwareWindows(queue.US25Params(),
		ConstantArrivalRate(queue.VehPerHour(400)), 0, 1200)
	if err != nil {
		t.Fatal(err)
	}
	cfg := coarseUS25(wf)
	opts, err := SweepDepartures(cfg, 0, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestDeparture(opts)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, o := range opts {
		if !o.Result.Penalized && o.Result.ChargeAh > worst {
			worst = o.Result.ChargeAh
		}
	}
	if best.Result.ChargeAh >= worst {
		t.Fatalf("sweep found no spread: best %v, worst clean %v", best.Result.ChargeAh, worst)
	}
}
