package dp

import (
	"testing"

	"evvo/internal/queue"
)

func TestSweepDeparturesValidation(t *testing.T) {
	cfg := coarseUS25(nil)
	if _, err := SweepDepartures(cfg, 0, 60, 0); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := SweepDepartures(cfg, 60, 0, 10); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestSweepDeparturesCoversRange(t *testing.T) {
	cfg := coarseUS25(GreenWindows(0, 900))
	opts, err := SweepDepartures(cfg, 0, 50, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 3 {
		t.Fatalf("got %d options, want 3", len(opts))
	}
	for i, want := range []float64{0, 25, 50} {
		if opts[i].DepartTime != want {
			t.Fatalf("option %d departs at %v, want %v", i, opts[i].DepartTime, want)
		}
		if opts[i].Result == nil || opts[i].Result.ChargeAh <= 0 {
			t.Fatalf("option %d has no usable result", i)
		}
	}
}

func TestSweepDeparturesPropagatesFailure(t *testing.T) {
	cfg := coarseUS25(nil)
	cfg.MaxTripSec = 60 // impossible budget
	if _, err := SweepDepartures(cfg, 0, 10, 10); err == nil {
		t.Fatal("impossible sweep did not error")
	}
}

func TestBestDeparturePrefersClean(t *testing.T) {
	cheapPenalized := &Result{ChargeAh: 0.1, Penalized: true}
	cleanCostly := &Result{ChargeAh: 0.3}
	opts := []DepartureOption{
		{DepartTime: 0, Result: cheapPenalized},
		{DepartTime: 10, Result: cleanCostly},
	}
	best, err := BestDeparture(opts)
	if err != nil {
		t.Fatal(err)
	}
	if best.DepartTime != 10 {
		t.Fatalf("picked penalized option: %+v", best)
	}
}

func TestBestDepartureFallsBackWhenAllPenalized(t *testing.T) {
	opts := []DepartureOption{
		{DepartTime: 0, Result: &Result{ChargeAh: 0.3, Penalized: true}},
		{DepartTime: 10, Result: &Result{ChargeAh: 0.2, Penalized: true}},
	}
	best, err := BestDeparture(opts)
	if err != nil {
		t.Fatal(err)
	}
	if best.DepartTime != 10 {
		t.Fatalf("fallback picked %+v, want the cheaper plan", best)
	}
	if _, err := BestDeparture(nil); err == nil {
		t.Fatal("empty options accepted")
	}
}

func TestSweepFindsBetterDepartureUnderQueues(t *testing.T) {
	// With queue-aware windows, some departures align better with T_q than
	// others; the sweep must expose a real spread.
	wf, err := QueueAwareWindows(queue.US25Params(),
		ConstantArrivalRate(queue.VehPerHour(400)), 0, 1200)
	if err != nil {
		t.Fatal(err)
	}
	cfg := coarseUS25(wf)
	opts, err := SweepDepartures(cfg, 0, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestDeparture(opts)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, o := range opts {
		if !o.Result.Penalized && o.Result.ChargeAh > worst {
			worst = o.Result.ChargeAh
		}
	}
	if best.Result.ChargeAh >= worst {
		t.Fatalf("sweep found no spread: best %v, worst clean %v", best.Result.ChargeAh, worst)
	}
}
