package dp

import (
	"math"
	"math/rand"
	"testing"

	"evvo/internal/queue"
)

// randLanes builds a source row like the DP's: a mix of finite costs and
// inf sentinels, with exact times that keep some lanes inside and some
// outside the trip budget. No NaNs, per the kernel contract.
func randLanes(rng *rand.Rand, n int) (cost, exact []float64) {
	cost = make([]float64, n)
	exact = make([]float64, n)
	for i := range cost {
		if rng.Float64() < 0.3 {
			cost[i] = inf
			// Unreached cells can hold any stale exact value, including huge
			// ones from a recycled slab.
			exact[i] = rng.Float64() * 1e12
			continue
		}
		cost[i] = rng.NormFloat64() * 3
		exact[i] = rng.Float64() * 900
	}
	return cost, exact
}

// TestRelaxEvalAsmMatchesGo pins the bit-parity contract: the AVX2 kernel
// must produce bit-identical lanes to the portable reference for every
// length, including ragged tails handled by the Go epilogue.
func TestRelaxEvalAsmMatchesGo(t *testing.T) {
	if !asmSupported {
		t.Skip("no AVX2 on this CPU")
	}
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 15, 16, 63, 64, 65, 421, 1000} {
		cost, exact := randLanes(rng, n)
		zeta := rng.NormFloat64()
		tCost := rng.Float64() * 0.01
		step := 1 + rng.Float64()*20
		maxTrip := 840.0
		invDt := 1 / 2.0
		kMaxF := 420.0

		nb := (n + 3) / 4
		aCand, aTot, aK2f := make([]float64, n), make([]float64, n), make([]float64, n)
		aMask := make([]uint8, nb)
		gCand, gTot, gK2f := make([]float64, n), make([]float64, n), make([]float64, n)
		gMask := make([]uint8, nb)

		relaxEval(aCand, aTot, aK2f, aMask, cost, exact, zeta, tCost, step, maxTrip, invDt, kMaxF, true)
		relaxEval(gCand, gTot, gK2f, gMask, cost, exact, zeta, tCost, step, maxTrip, invDt, kMaxF, false)

		for k := 0; k < n; k++ {
			if math.Float64bits(aCand[k]) != math.Float64bits(gCand[k]) {
				t.Fatalf("n=%d lane %d cand: asm %x go %x", n, k, math.Float64bits(aCand[k]), math.Float64bits(gCand[k]))
			}
			if math.Float64bits(aTot[k]) != math.Float64bits(gTot[k]) {
				t.Fatalf("n=%d lane %d tot: asm %x go %x", n, k, math.Float64bits(aTot[k]), math.Float64bits(gTot[k]))
			}
			if math.Float64bits(aK2f[k]) != math.Float64bits(gK2f[k]) {
				t.Fatalf("n=%d lane %d k2f: asm %v go %v", n, k, aK2f[k], gK2f[k])
			}
		}
		for b := 0; b < nb; b++ {
			if aMask[b] != gMask[b] {
				t.Fatalf("n=%d mask byte %d: asm %04b go %04b", n, b, aMask[b], gMask[b])
			}
		}
	}
}

// TestRelaxEvalClampAndSentinel exercises the two delicate lanes of the
// contract directly: the kMaxF clamp (floor result above the bucket range)
// and the inf sentinel match (NEQ on the exact MaxFloat64 bit pattern).
func TestRelaxEvalClampAndSentinel(t *testing.T) {
	cost := []float64{0, inf, 1, 2}
	exact := []float64{0, 0, 1e6, 839}
	cand, tot, k2f := make([]float64, 4), make([]float64, 4), make([]float64, 4)
	mask := make([]uint8, 1)
	for _, useAsm := range []bool{false, asmSupported} {
		relaxEval(cand, tot, k2f, mask, cost, exact, 0.5, 0.01, 1, 840, 0.5, 420, useAsm)
		if k2f[2] != 420 {
			t.Fatalf("useAsm=%v: clamp failed, k2f=%v", useAsm, k2f[2])
		}
		// Lane 0 feasible, lane 1 inf-masked, lane 2 over budget, lane 3 at
		// the budget edge (tot = 840 <= 840).
		if mask[0] != 0b1001 {
			t.Fatalf("useAsm=%v: mask %04b, want 1001", useAsm, mask[0])
		}
	}
}

// TestSolveParityKernelsOnOff runs the full Fig-6-style solve with kernels
// forced on and off and requires bit-identical results, for serial and
// parallel relaxation. This is the end-to-end form of the parity contract.
func TestSolveParityKernelsOnOff(t *testing.T) {
	if !asmSupported {
		t.Skip("no AVX2 on this CPU")
	}
	wf, err := QueueAwareWindows(queue.US25Params(),
		ConstantArrivalRate(queue.VehPerHour(153)), 0, 900)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		cfg := coarseUS25(wf)
		cfg.DepartTime = 40
		cfg.StopDwellSec = 2
		cfg.Workers = workers

		prev := SetAsmKernels(true)
		on, errOn := Optimize(cfg)
		SetAsmKernels(false)
		off, errOff := Optimize(cfg)
		SetAsmKernels(prev)

		if errOn != nil || errOff != nil {
			t.Fatalf("workers=%d: errOn=%v errOff=%v", workers, errOn, errOff)
		}
		requireIdenticalResults(t, on, off, "kernels on vs off")
	}
}

func TestSetAsmKernelsReportsState(t *testing.T) {
	prev := SetAsmKernels(false)
	if KernelsEnabled() {
		t.Fatal("kernels reported enabled after SetAsmKernels(false)")
	}
	SetAsmKernels(true)
	if KernelsEnabled() != asmSupported {
		t.Fatalf("KernelsEnabled=%v, want asmSupported=%v", KernelsEnabled(), asmSupported)
	}
	SetAsmKernels(prev)
}
