package dp

import (
	"math/rand"
	"testing"

	"evvo/internal/ev"
	"evvo/internal/queue"
	"evvo/internal/road"
)

// requireIdenticalResults asserts bit-identical outcomes: equal charge,
// trip time, expansion count, arrivals and every profile point.
func requireIdenticalResults(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if want.ChargeAh != got.ChargeAh {
		t.Fatalf("%s: ChargeAh %v != serial %v", label, got.ChargeAh, want.ChargeAh)
	}
	if want.TripSec != got.TripSec {
		t.Fatalf("%s: TripSec %v != serial %v", label, got.TripSec, want.TripSec)
	}
	if want.StatesExpanded != got.StatesExpanded {
		t.Fatalf("%s: StatesExpanded %d != serial %d", label, got.StatesExpanded, want.StatesExpanded)
	}
	if want.Penalized != got.Penalized {
		t.Fatalf("%s: Penalized %v != serial %v", label, got.Penalized, want.Penalized)
	}
	if len(want.Arrivals) != len(got.Arrivals) {
		t.Fatalf("%s: %d arrivals != serial %d", label, len(got.Arrivals), len(want.Arrivals))
	}
	for i := range want.Arrivals {
		if want.Arrivals[i] != got.Arrivals[i] {
			t.Fatalf("%s: arrival %d %+v != serial %+v", label, i, got.Arrivals[i], want.Arrivals[i])
		}
	}
	wp, gp := want.Profile.Points(), got.Profile.Points()
	if len(wp) != len(gp) {
		t.Fatalf("%s: %d profile points != serial %d", label, len(gp), len(wp))
	}
	for i := range wp {
		if wp[i] != gp[i] {
			t.Fatalf("%s: profile point %d %+v != serial %+v", label, i, gp[i], wp[i])
		}
	}
}

// TestParallelMatchesSerialFig6 checks the tentpole's determinism claim on
// the paper's corridor: the gather-formulated parallel relaxation must be
// bit-identical to the serial pass for any worker count.
func TestParallelMatchesSerialFig6(t *testing.T) {
	wf, err := QueueAwareWindows(queue.US25Params(),
		ConstantArrivalRate(queue.VehPerHour(153)), 0, 900)
	if err != nil {
		t.Fatal(err)
	}
	cfg := coarseUS25(wf)
	cfg.DepartTime = 40
	cfg.StopDwellSec = 2
	cfg.Workers = 1
	serial, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		c := cfg
		c.Workers = workers
		got, err := Optimize(c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireIdenticalResults(t, serial, got, "fig6 corridor")
	}
}

// TestParallelMatchesSerialRandomRoutes repeats the parity check on
// randomized corridors with grades, speed zones, stop signs and signals.
func TestParallelMatchesSerialRandomRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(774421))
	for trial := 0; trial < 6; trial++ {
		length := 1200 + rng.Float64()*1800
		route, err := road.NewRoute(road.RouteConfig{
			LengthM: length, DefaultMaxMS: 14 + rng.Float64()*6,
			Controls: []road.Control{
				{Kind: road.ControlStopSign, PositionM: 300 + rng.Float64()*200, Name: "s0"},
				{Kind: road.ControlSignal, PositionM: length * 0.6,
					Timing: road.SignalTiming{RedSec: 20 + rng.Float64()*20, GreenSec: 25 + rng.Float64()*15}, Name: "l0"},
			},
			SpeedZones: []road.SpeedZone{
				{StartM: length * 0.2, EndM: length * 0.4, MinMS: 0, MaxMS: 10 + rng.Float64()*4},
			},
			GradeZones: []road.GradeZone{
				{StartM: 0, EndM: length * 0.3, ThetaRad: 0.02},
				{StartM: length * 0.5, EndM: length * 0.8, ThetaRad: -0.015},
			},
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cfg := Config{
			Route: route, Vehicle: ev.SparkEV(),
			DsM: 100, DvMS: 1, DtSec: 2, MaxTripSec: 900,
			DepartTime: rng.Float64() * 60,
			Windows:    GreenWindows(0, 1200),
			Workers:    1,
		}
		serial, err := Optimize(cfg)
		if err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}
		par := cfg
		par.Workers = 4
		got, err := Optimize(par)
		if err != nil {
			t.Fatalf("trial %d parallel: %v", trial, err)
		}
		requireIdenticalResults(t, serial, got, "random route")
	}
}

// TestOptimizeWorkersValidation rejects negative worker counts.
func TestOptimizeWorkersValidation(t *testing.T) {
	cfg := coarseUS25(nil)
	cfg.Workers = -2
	if _, err := Optimize(cfg); err == nil {
		t.Fatal("negative worker count accepted")
	}
}
