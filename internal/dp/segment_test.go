package dp

import (
	"context"
	"testing"

	"evvo/internal/ev"
	"evvo/internal/queue"
	"evvo/internal/road"
)

func buildTestTables(t *testing.T, cfg Config) *RouteTables {
	t.Helper()
	rt, err := BuildRouteTables(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestRouteTablesLayout pins the segment decomposition of US-25: three
// segments split at the two signals, with the stop sign interior to the
// first segment, and the solve count = Σ per-segment entry velocities.
func TestRouteTablesLayout(t *testing.T) {
	rt := buildTestTables(t, coarseUS25(nil))
	segs := rt.Segments()
	if len(segs) != 3 {
		t.Fatalf("US-25 split into %d segments, want 3: %+v", len(segs), segs)
	}
	if segs[0].BoundaryName != "light-1" || segs[1].BoundaryName != "light-2" || segs[2].BoundaryName != "" {
		t.Fatalf("boundaries = %q %q %q", segs[0].BoundaryName, segs[1].BoundaryName, segs[2].BoundaryName)
	}
	if segs[0].StartM != 0 || segs[2].EndM != road.US25().LengthM() {
		t.Fatalf("segments do not span the route: %+v", segs)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].StartM != segs[i-1].EndM || segs[i].StartStage != segs[i-1].EndStage {
			t.Fatalf("segments %d/%d not contiguous: %+v", i-1, i, segs)
		}
	}
	if rt.SegmentSolves() < 3 {
		t.Fatalf("segmentSolves = %d, want at least one per segment", rt.SegmentSolves())
	}
	if rt.Crossings() == 0 {
		t.Fatal("no crossings extracted")
	}
	// road-level split agrees with the stage-level split up to Δs snapping
	// (dp segment bounds sit on stage points, road bounds on the controls).
	roadSegs := road.US25().SegmentsAtSignals()
	if len(roadSegs) != len(segs) {
		t.Fatalf("road split %d segments, dp split %d", len(roadSegs), len(segs))
	}
	const dsM = 100 // coarseUS25 grid
	for i := range segs {
		if !almost(roadSegs[i].StartM, segs[i].StartM, dsM/2) || !almost(roadSegs[i].EndM, segs[i].EndM, dsM/2) {
			t.Fatalf("segment %d: road [%g,%g] vs dp [%g,%g]",
				i, roadSegs[i].StartM, roadSegs[i].EndM, segs[i].StartM, segs[i].EndM)
		}
	}
}

// TestSegmentsAtSignals covers the road-level segmentation helper.
func TestSegmentsAtSignals(t *testing.T) {
	segs := road.US25().SegmentsAtSignals()
	if len(segs) != 3 {
		t.Fatalf("US-25: %d segments, want 3", len(segs))
	}
	if segs[0].Boundary == nil || segs[0].Boundary.Name != "light-1" {
		t.Fatalf("first boundary = %+v, want light-1", segs[0].Boundary)
	}
	if segs[2].Boundary != nil {
		t.Fatalf("final segment has boundary %+v, want nil", segs[2].Boundary)
	}
	open, err := road.NewRoute(road.RouteConfig{LengthM: 1000, DefaultMaxMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := open.SegmentsAtSignals(); len(got) != 1 || got[0].StartM != 0 || got[0].EndM != 1000 {
		t.Fatalf("open road split = %+v, want one full-length segment", got)
	}
}

// stitchVsMonolith compares the stitched and monolithic solutions for one
// config. The two bucket elapsed time differently inside segments (the
// stitcher uses segment-relative buckets), so they may merge different path
// pairs; the disagreement must stay within bucket-quantization tolerance,
// never accumulate.
func stitchVsMonolith(t *testing.T, rt *RouteTables, cfg Config, chargeTolAh float64) {
	t.Helper()
	mono, err := OptimizeCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rt.StitchCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Penalized != mono.Penalized {
		t.Fatalf("penalized: stitched %v, monolithic %v", st.Penalized, mono.Penalized)
	}
	if !almost(st.ChargeAh, mono.ChargeAh, chargeTolAh) {
		t.Fatalf("charge: stitched %.6f Ah, monolithic %.6f Ah (tol %.6f)",
			st.ChargeAh, mono.ChargeAh, chargeTolAh)
	}
	if !almost(st.TripSec, mono.TripSec, 3*cfg.DtSec+1) {
		t.Fatalf("trip: stitched %.1f s, monolithic %.1f s", st.TripSec, mono.TripSec)
	}
	if len(st.Arrivals) != len(mono.Arrivals) {
		t.Fatalf("arrivals: stitched %d, monolithic %d", len(st.Arrivals), len(mono.Arrivals))
	}
	for i := range st.Arrivals {
		if st.Arrivals[i].InWindow != mono.Arrivals[i].InWindow {
			t.Fatalf("arrival %d in-window: stitched %v, monolithic %v",
				i, st.Arrivals[i].InWindow, mono.Arrivals[i].InWindow)
		}
	}
	// The stitched trajectory must be drivable end to end.
	if st.Profile.Distance() < cfg.Route.LengthM()-1 {
		t.Fatalf("stitched profile covers %.0f m of %.0f", st.Profile.Distance(), cfg.Route.LengthM())
	}
}

// TestStitchMatchesMonolithicFig6 is the tentpole parity gate: on the
// paper's Fig-6 scenario (US-25, queue-aware windows at the measured 153
// veh/h) the segment-stitched solver must agree with the monolithic
// queue-aware DP within bucket tolerance, across departures and variants —
// one table build serving all of them.
func TestStitchMatchesMonolithicFig6(t *testing.T) {
	const chargeTol = 0.01 // Ah; trips run ~0.3 Ah, penalties are 1.0
	wf, err := QueueAwareWindows(queue.US25Params(),
		ConstantArrivalRate(queue.VehPerHour(153)), 0, 1200)
	if err != nil {
		t.Fatal(err)
	}
	// One table build serves every departure and variant below. The route
	// instance is shared: tables key on the *road.Route identity.
	base := coarseUS25(nil)
	rt := buildTestTables(t, base)
	for _, depart := range []float64{0, 20, 40, 95} {
		cfg := base
		cfg.Windows = wf
		cfg.DepartTime = depart
		t.Run("queue-aware", func(t *testing.T) { stitchVsMonolith(t, rt, cfg, chargeTol) })
	}
	green := base
	green.Windows = GreenWindows(0, 1200)
	green.DepartTime = 40
	stitchVsMonolith(t, rt, green, chargeTol)
	free := base
	free.DepartTime = 40
	stitchVsMonolith(t, rt, free, chargeTol)
}

// TestStitchOpenRoadExact: without signals the route is one segment whose
// table solve runs the identical relaxation to the monolithic DP, so the
// stitched answer is exact, not just within tolerance.
func TestStitchOpenRoadExact(t *testing.T) {
	r, err := road.NewRoute(road.RouteConfig{LengthM: 1000, DefaultMaxMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Route: r, Vehicle: ev.SparkEV(), DsM: 50, DvMS: 1, DtSec: 1, MaxTripSec: 300}
	rt := buildTestTables(t, cfg)
	if got := len(rt.Segments()); got != 1 {
		t.Fatalf("open road split into %d segments", got)
	}
	mono, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rt.StitchCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(st.ChargeAh, mono.ChargeAh, 1e-12) || !almost(st.TripSec, mono.TripSec, 1e-9) {
		t.Fatalf("single-segment stitch diverged: charge %.9f vs %.9f, trip %.3f vs %.3f",
			st.ChargeAh, mono.ChargeAh, st.TripSec, mono.TripSec)
	}
}

// TestStitchConfigMismatch: a stitch config differing in a grid-defining
// field must be rejected, not silently answered off the wrong tables.
func TestStitchConfigMismatch(t *testing.T) {
	base := coarseUS25(nil)
	rt := buildTestTables(t, base)
	bad := base
	bad.DvMS = 0.5
	if _, err := rt.StitchCtx(context.Background(), bad); err == nil {
		t.Fatal("mismatched Δv accepted")
	}
	bad = base
	bad.TimeWeightAhPerSec = 0.002
	if _, err := rt.StitchCtx(context.Background(), bad); err == nil {
		t.Fatal("mismatched time weight accepted")
	}
	// A different route instance means different tables, even for the same
	// geometry: tables key on the immutable *road.Route identity.
	bad = base
	bad.Route = road.US25()
	if _, err := rt.StitchCtx(context.Background(), bad); err == nil {
		t.Fatal("foreign route instance accepted")
	}
	// Stitch-time fields may differ freely: DepartTime, windows, margins.
	ok := base
	ok.Windows = GreenWindows(0, 900)
	ok.DepartTime = 123
	ok.WindowMarginSec = 2
	if _, err := rt.StitchCtx(context.Background(), ok); err != nil {
		t.Fatalf("stitch-time fields rejected: %v", err)
	}
}

// TestBuildRouteTablesCancel: build and stitch both honor cancellation.
func TestBuildRouteTablesCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildRouteTables(ctx, coarseUS25(nil)); err == nil {
		t.Fatal("cancelled build returned tables")
	}
	base := coarseUS25(nil)
	rt := buildTestTables(t, base)
	if _, err := rt.StitchCtx(ctx, base); err == nil {
		t.Fatal("cancelled stitch returned a result")
	}
}
