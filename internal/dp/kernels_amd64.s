//go:build amd64

#include "textflag.h"

// AVX2 kernel for the DP relaxation's evaluation pass. Contract (see
// kernels.go): per lane, floating-point operations happen in the exact
// order of relaxEvalGo — separate VMULPD/VADDPD (an FMA would skip the
// intermediate rounding the reference performs), VROUNDPD toward -inf for
// the floor, VMINPD with kMaxF as the second operand so the clamp keeps
// the floor result whenever it is strictly below kMaxF, exactly like the
// reference's `if f > kMaxF` branch on NaN-free input.

// func dpcpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·dpcpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func dpxgetbv() (eax, edx uint32)
TEXT ·dpxgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// 4-lane broadcast constants: the inf sentinel (math.MaxFloat64, assigned
// verbatim by the DP, never computed) and the rounding bias.
DATA relaxinf<>+0(SB)/8, $0x7FEFFFFFFFFFFFFF
GLOBL relaxinf<>+0(SB), RODATA, $8
DATA relaxhalf<>+0(SB)/8, $0.5
GLOBL relaxhalf<>+0(SB), RODATA, $8

// func relaxEvalAsm(cand, tot, k2f []float64, mask []uint8, cost, exact []float64,
//	zeta, tCost, step, maxTrip, invDt, kMaxF float64)
//
// len(cost) is a positive multiple of 4 (the Go wrapper slices to the
// aligned prefix). Per 4-lane block:
//
//	e    = exact + step
//	cand = (cost + zeta) + tCost
//	k2f  = min(floor(e*invDt + 0.5), kMaxF)
//	mask = (cost != inf) & (e <= maxTrip)   // NEQ_UQ, LE_OS sign bits
//
// Register map: DI=cand SI=tot DX=k2f BX=mask R8=cost R9=exact CX=len
// R10=lane index; Y8=zeta Y9=tCost Y10=step Y11=maxTrip Y12=invDt
// Y13=0.5 Y14=kMaxF Y15=inf, Y0-Y5 scratch.
TEXT ·relaxEvalAsm(SB), NOSPLIT, $0-192
	MOVQ cand_base+0(FP), DI
	MOVQ tot_base+24(FP), SI
	MOVQ k2f_base+48(FP), DX
	MOVQ mask_base+72(FP), BX
	MOVQ cost_base+96(FP), R8
	MOVQ cost_len+104(FP), CX
	MOVQ exact_base+120(FP), R9
	VBROADCASTSD zeta+144(FP), Y8
	VBROADCASTSD tCost+152(FP), Y9
	VBROADCASTSD step+160(FP), Y10
	VBROADCASTSD maxTrip+168(FP), Y11
	VBROADCASTSD invDt+176(FP), Y12
	VBROADCASTSD relaxhalf<>+0(SB), Y13
	VBROADCASTSD kMaxF+184(FP), Y14
	VBROADCASTSD relaxinf<>+0(SB), Y15
	XORQ R10, R10

relaxloop:
	VMOVUPD (R8)(R10*8), Y0   // c0 = cost
	VMOVUPD (R9)(R10*8), Y1   // exact
	VADDPD  Y10, Y1, Y1       // e = exact + step
	VADDPD  Y8, Y0, Y2        // c0 + zeta
	VADDPD  Y9, Y2, Y2        // (c0 + zeta) + tCost
	VMOVUPD Y2, (DI)(R10*8)   // cand
	VMOVUPD Y1, (SI)(R10*8)   // tot
	VMULPD  Y12, Y1, Y3       // e * invDt
	VADDPD  Y13, Y3, Y3       // + 0.5
	VROUNDPD $1, Y3, Y3       // floor (toward -inf)
	VMINPD  Y14, Y3, Y3       // min(·, kMaxF); keeps floor when < kMaxF
	VMOVUPD Y3, (DX)(R10*8)   // k2f
	VCMPPD  $4, Y15, Y0, Y4   // c0 != inf (NEQ_UQ)
	VCMPPD  $2, Y11, Y1, Y5   // e <= maxTrip (LE_OS)
	VANDPD  Y5, Y4, Y4
	VMOVMSKPD Y4, AX          // 4 sign bits -> low nibble
	MOVB    AX, (BX)
	INCQ    BX
	ADDQ    $4, R10
	CMPQ    R10, CX
	JLT     relaxloop

	VZEROUPPER
	RET
