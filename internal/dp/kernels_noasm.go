//go:build !amd64

package dp

// Non-amd64 builds run the portable relaxEvalGo only; the dispatch flags
// stay false so relaxEvalAsm is never reached.
var asmSupported = false
var useAsmKernels = false

func relaxEvalAsm(cand, tot, k2f []float64, mask []uint8, cost, exact []float64,
	zeta, tCost, step, maxTrip, invDt, kMaxF float64) {
	panic("dp: relaxEvalAsm called without amd64 support")
}
