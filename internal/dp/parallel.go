package dp

import (
	"math"
	"sync"

	"evvo/internal/queue"
)

// stageRelax is one stage's relaxation, formulated as a *gather*: instead of
// each source state scattering updates into the next stage (whose cells many
// sources share), each destination velocity column j2 scans its own
// predecessor band and performs every write into cost/exact/back itself.
// Workers own disjoint contiguous ranges of destination columns, so two
// goroutines never write the same cell and the pass needs no locks.
//
// Determinism: for any destination cell (j2, k2) the candidate predecessors
// (j, k) are visited in ascending (j, k) order — exactly the order the
// serial scatter loop visits them — and a candidate replaces the incumbent
// only on strict improvement (nc < cost). Ties therefore keep the lowest
// (j, k) predecessor, and the relaxed arrays are bit-identical for any
// worker count, including 1.
type stageRelax struct {
	kMax int
	tw   int // transition-table row width (jMax+1)

	curMinJ, curMaxJ int
	nxtMinJ, nxtMaxJ int

	bands *accelBands
	tr    *gradeTable
	dTau  []float64

	curCost, curExact []float64
	nxtCost, nxtExact []float64
	nxtBack           []int32

	dwell, timeW, maxTrip, dt, depart, penalty float64

	ws     []queue.Window
	hasWin bool
}

// run relaxes the stage across at most `workers` goroutines and returns the
// number of states expanded (identical for every worker count).
func (s *stageRelax) run(workers int) int {
	cols := s.nxtMaxJ - s.nxtMinJ + 1
	if cols <= 0 {
		return 0
	}
	if workers > cols {
		workers = cols
	}
	if workers <= 1 {
		return s.gather(s.nxtMinJ, s.nxtMaxJ)
	}
	counts := make([]int, workers)
	chunk := (cols + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		a := s.nxtMinJ + w*chunk
		b := min(a+chunk-1, s.nxtMaxJ)
		if a > b {
			break
		}
		wg.Add(1)
		go func(w, a, b int) {
			defer wg.Done()
			counts[w] = s.gather(a, b)
		}(w, a, b)
	}
	wg.Wait()
	expanded := 0
	for _, c := range counts {
		expanded += c
	}
	return expanded
}

// gather relaxes the destination columns [j2a, j2b]. Only this call writes
// those columns' cells.
func (s *stageRelax) gather(j2a, j2b int) int {
	expanded := 0
	kw := s.kMax + 1
	for j2 := j2a; j2 <= j2b; j2++ {
		jA := max(s.bands.pLo[j2], s.curMinJ)
		jB := min(s.bands.pHi[j2], s.curMaxJ)
		if jA > jB {
			continue
		}
		dstCost := s.nxtCost[j2*kw : (j2+1)*kw]
		dstExact := s.nxtExact[j2*kw : (j2+1)*kw]
		dstBack := s.nxtBack[j2*kw : (j2+1)*kw]
		for j := jA; j <= jB; j++ {
			if j2 < s.bands.lo[j] || j2 > s.bands.hi[j] {
				continue
			}
			t := j*s.tw + j2
			if !s.tr.ok[t] {
				continue // zero average speed or beyond the power envelope
			}
			step := s.dwell + s.dTau[t]
			zeta := s.tr.zeta[t]
			tCost := s.timeW * step
			packed := int32(j) << 16
			srcCost := s.curCost[j*kw : (j+1)*kw]
			srcExact := s.curExact[j*kw : (j+1)*kw]
			for k := 0; k <= s.kMax; k++ {
				c0 := srcCost[k]
				//lint:allow floateq inf is the exact MaxFloat64 unreached-state sentinel, assigned verbatim and never computed
				if c0 == inf {
					continue
				}
				elapsed := srcExact[k]
				if elapsed+step > s.maxTrip {
					continue
				}
				k2 := int(math.Round((elapsed + step) / s.dt))
				if k2 > s.kMax {
					k2 = s.kMax
				}
				penal := 0.0
				if s.hasWin && !inAnyWindow(s.ws, s.depart+elapsed+step) {
					penal = s.penalty
				}
				expanded++
				nc := c0 + zeta + penal + tCost
				if nc < dstCost[k2] {
					dstCost[k2] = nc
					dstExact[k2] = elapsed + step
					dstBack[k2] = packed | int32(k)
				}
			}
		}
	}
	return expanded
}
