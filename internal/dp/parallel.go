package dp

import (
	"math/bits"
	"sync"

	"evvo/internal/queue"
)

// stageRelax is one stage's relaxation, formulated as a *gather*: instead of
// each source state scattering updates into the next stage (whose cells many
// sources share), each destination velocity column j2 scans its own
// predecessor band and performs every write into cost/exact/back itself.
// Workers own disjoint contiguous ranges of destination columns, so two
// goroutines never write the same cell and the pass needs no locks.
//
// Each (j2, j) pair is processed in two phases (DESIGN.md §12): relaxEval
// (kernels.go) evaluates the source row's time buckets as contiguous
// float64 lanes — candidate cost, exact elapsed time, destination bucket,
// packed feasibility mask — and a scalar commit pass resolves the k2
// scatter. The evaluation runs on AVX2 when available; the commit walks the
// mask bits in ascending k.
//
// Determinism: for any destination cell (j2, k2) the candidate predecessors
// (j, k) are visited in ascending (j, k) order — exactly the order the
// serial scatter loop visits them — and a candidate replaces the incumbent
// only on strict improvement (nc < cost). Ties therefore keep the lowest
// (j, k) predecessor, and the relaxed arrays are bit-identical for any
// worker count, including 1, and for kernels on or off (relaxEvalAsm is
// bit-identical to relaxEvalGo).
type stageRelax struct {
	kMax int
	tw   int // transition-table row width (jMax+1)

	curMinJ, curMaxJ int
	nxtMinJ, nxtMaxJ int

	bands *accelBands
	tr    *gradeTable
	dTauT []float64 // transposed traversal times, [j2*tw+j]

	curCost, curExact []float64
	nxtCost, nxtExact []float64
	nxtBack           []int32

	dwell, timeW, maxTrip, invDt, depart, penalty float64

	ws     []queue.Window // sorted by Start (shrunkWindows' contract)
	hasWin bool

	// Finite time-bucket ranges from the pool: kLo/kHi bound each source
	// column's finite cells (recorded when the previous stage wrote them),
	// so the lane loop skips the all-inf prefix and suffix. nxtKLo/nxtKHi
	// receive this stage's destination ranges; columns a worker owns but
	// never writes are recorded empty.
	kLo, kHi       []int
	nxtKLo, nxtKHi []int

	useAsm bool // kernel dispatch, snapshotted in run before workers start
}

// relaxScratch is one worker's private lane buffers for relaxEval.
type relaxScratch struct {
	cand, tot, k2f []float64
	mask           []uint8
}

// relaxPool carries the allocations that persist across a solve's stages:
// per-worker lane buffers and the per-column finite-range tracking that the
// stages hand forward. One pool serves one solve at a time.
type relaxPool struct {
	kLo, kHi       []int
	nxtKLo, nxtKHi []int
	per            []relaxScratch
}

func newRelaxPool(workers, jw, kw int) *relaxPool {
	if workers < 1 {
		workers = 1
	}
	p := &relaxPool{
		kLo: make([]int, jw), kHi: make([]int, jw),
		nxtKLo: make([]int, jw), nxtKHi: make([]int, jw),
		per: make([]relaxScratch, workers),
	}
	for i := range p.per {
		p.per[i] = relaxScratch{
			cand: make([]float64, kw),
			tot:  make([]float64, kw),
			k2f:  make([]float64, kw),
			mask: make([]uint8, (kw+3)/4),
		}
	}
	return p
}

// fit returns a pool sized for the given geometry, reusing the receiver's
// allocations when they are large enough (p may be nil).
func (p *relaxPool) fit(workers, jw, kw int) *relaxPool {
	if workers < 1 {
		workers = 1
	}
	if p == nil || len(p.per) < workers || cap(p.kLo) < jw || cap(p.per[0].cand) < kw {
		return newRelaxPool(workers, jw, kw)
	}
	p.kLo, p.kHi = p.kLo[:jw], p.kHi[:jw]
	p.nxtKLo, p.nxtKHi = p.nxtKLo[:jw], p.nxtKHi[:jw]
	for i := range p.per {
		sc := &p.per[i]
		sc.cand, sc.tot, sc.k2f = sc.cand[:kw], sc.tot[:kw], sc.k2f[:kw]
		sc.mask = sc.mask[:(kw+3)/4]
	}
	return p
}

// seed resets the source ranges to a single finite cell: column j, bucket k.
func (p *relaxPool) seed(j, k, kw int) {
	for i := range p.kLo {
		p.kLo[i], p.kHi[i] = kw, -1
	}
	p.kLo[j], p.kHi[j] = k, k
}

// advance publishes the just-relaxed stage's destination ranges as the
// next stage's source ranges.
func (p *relaxPool) advance() {
	p.kLo, p.nxtKLo = p.nxtKLo, p.kLo
	p.kHi, p.nxtKHi = p.nxtKHi, p.kHi
}

// run relaxes the stage across at most `workers` goroutines and returns the
// number of states expanded (identical for every worker count).
func (s *stageRelax) run(workers int, pool *relaxPool) int {
	s.kLo, s.kHi = pool.kLo, pool.kHi
	s.nxtKLo, s.nxtKHi = pool.nxtKLo, pool.nxtKHi
	s.useAsm = useAsmKernels
	cols := s.nxtMaxJ - s.nxtMinJ + 1
	if cols <= 0 {
		return 0
	}
	if workers > cols {
		workers = cols
	}
	if workers > len(pool.per) {
		workers = len(pool.per)
	}
	if workers <= 1 {
		return s.gather(s.nxtMinJ, s.nxtMaxJ, &pool.per[0])
	}
	counts := make([]int, workers)
	chunk := (cols + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		a := s.nxtMinJ + w*chunk
		b := min(a+chunk-1, s.nxtMaxJ)
		if a > b {
			break
		}
		wg.Add(1)
		go func(w, a, b int) {
			defer wg.Done()
			counts[w] = s.gather(a, b, &pool.per[w])
		}(w, a, b)
	}
	wg.Wait()
	expanded := 0
	for _, c := range counts {
		expanded += c
	}
	return expanded
}

// gather relaxes the destination columns [j2a, j2b]. Only this call writes
// those columns' cells and range entries.
//
//lint:hot
func (s *stageRelax) gather(j2a, j2b int, sc *relaxScratch) int {
	expanded := 0
	kw := s.kMax + 1
	kMaxF := float64(s.kMax)
	for j2 := j2a; j2 <= j2b; j2++ {
		minW, maxW := kw, -1
		jA := max(s.bands.pLo[j2], s.curMinJ)
		jB := min(s.bands.pHi[j2], s.curMaxJ)
		if jA <= jB {
			// [:kw] reslices teach the bounds-check pass that one k2 < kw
			// test covers all three scatter writes.
			dstCost := s.nxtCost[j2*kw:][:kw]
			dstExact := s.nxtExact[j2*kw:][:kw]
			dstBack := s.nxtBack[j2*kw:][:kw]
			row := j2 * s.tw
			for j := jA; j <= jB; j++ {
				if j2 < s.bands.lo[j] || j2 > s.bands.hi[j] {
					continue
				}
				t := row + j
				if !s.tr.okT[t] {
					continue // zero average speed or beyond the power envelope
				}
				lo, hi := s.kLo[j], s.kHi[j]
				if lo > hi {
					continue // no finite source cell in this column
				}
				step := s.dwell + s.dTauT[t]
				zeta := s.tr.zetaT[t]
				tCost := s.timeW * step
				packed := int32(j) << 16
				// Evaluate the finite span as 4-aligned lanes; buckets below
				// lo inside the alignment slack hold the inf sentinel and
				// mask out.
				a := lo &^ 3
				n := hi + 1 - a
				srcCost := s.curCost[j*kw+a : j*kw+a+n]
				srcExact := s.curExact[j*kw+a : j*kw+a+n]
				relaxEval(sc.cand[:n], sc.tot[:n], sc.k2f[:n], sc.mask[:(n+3)>>2],
					srcCost, srcExact, zeta, tCost, step, s.maxTrip, s.invDt, kMaxF, s.useAsm)
				// Commit: ascending k via the packed mask; the window penalty
				// needs the absolute arrival time, so it lands here rather
				// than in the lanes. Arrival times ascend with k inside a row
				// (each bucket stores the exact elapsed time that rounds to
				// it), and the windows are sorted and disjoint, so a cursor
				// replaces the per-lane window scan.
				nb := (n + 3) >> 2
				wi := 0
				tt, cd, kf := sc.tot[:n], sc.cand[:n], sc.k2f[:n]
				for bi := 0; bi < nb; bi++ {
					m := sc.mask[bi]
					if m == 0 {
						continue
					}
					expanded += bits.OnesCount8(m)
					base := bi << 2
					for ; m != 0; m &= m - 1 {
						i := base + bits.TrailingZeros8(m)
						if i >= len(tt) {
							break // unreachable: mask bits past n are never set
						}
						tot := tt[i]
						nc := cd[i]
						if s.hasWin {
							t := s.depart + tot
							for wi < len(s.ws) && s.ws[wi].End <= t {
								wi++
							}
							if wi >= len(s.ws) || t < s.ws[wi].Start {
								nc += s.penalty
							}
						}
						k2 := int(kf[i])
						if uint(k2) >= uint(kw) {
							continue // unreachable: k2f is clamped to kMaxF
						}
						if nc < dstCost[k2] {
							dstCost[k2] = nc
							dstExact[k2] = tot
							dstBack[k2] = packed | int32(a+i)
							if k2 < minW {
								minW = k2
							}
							if k2 > maxW {
								maxW = k2
							}
						}
					}
				}
			}
		}
		s.nxtKLo[j2], s.nxtKHi[j2] = minW, maxW
	}
	return expanded
}
