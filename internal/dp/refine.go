// Coarse-to-fine approximate DP (DESIGN.md §12).
//
// The fast path solves the DP twice: once on a velocity grid coarsened by
// CoarseRefine.Factor (Factor² fewer (j, j2) transition pairs, so roughly
// Factor² cheaper), then again on the exact grid with each stage's velocity
// band restricted to a corridor of ±CorridorMS around the coarse winner.
// This is the reduced-state approximate-DP idea of Deshpande et al. (arXiv
// 2010.03620) applied as a *bracketing* pass: the coarse solution locates
// the optimum's neighborhood, the fine pass recovers grid-exact physics
// inside it.
//
// Error contract: the refined result is always a feasible fine-grid
// trajectory evaluated with the exact transition costs, so its cost is an
// upper bound on nothing less than the exact DP optimum. It equals the
// exact optimum whenever the corridor contains the true optimal velocity
// sequence — guaranteed for corridors wide enough to leave every band
// uncut, and holding in practice at the default width (2·Factor·Δv), which
// covers the coarse grid's quantization error of at most Factor·Δv per
// stage twice over. When the coarse grid or the corridor turns out
// infeasible, the solver falls back to the full exact DP and flags it
// (RefineDiag.FellBack), so CoarseRefine never loses feasibility.
package dp

import (
	"context"
	"math"
)

// CoarseRefine configures the coarse-to-fine fast path; the zero value
// disables it.
type CoarseRefine struct {
	// Factor coarsens the velocity grid: the coarse pass solves with
	// Δv' = Factor·DvMS. 0 disables the fast path; 2–4 are the useful
	// range (validate rejects 1 and negatives).
	Factor int
	// CorridorMS is the half-width in m/s of the velocity corridor kept
	// around the coarse winner for the fine pass. 0 means 2·Factor·DvMS.
	CorridorMS float64
}

// marginMS resolves the corridor half-width against a fine grid spacing.
func (c CoarseRefine) marginMS(dvMS float64) float64 {
	if c.CorridorMS > 0 {
		return c.CorridorMS
	}
	return 2 * float64(c.Factor) * dvMS
}

// RefineDiag reports how a coarse-refined result was produced.
type RefineDiag struct {
	// Factor and CorridorMS echo the resolved fast-path parameters.
	Factor     int
	CorridorMS float64
	// CoarseChargeAh and CoarseStatesExpanded describe the coarse pass
	// (zero when it failed and the solver fell back).
	CoarseChargeAh       float64
	CoarseStatesExpanded int
	// FellBack is true when the coarse grid or the corridor was infeasible
	// and the result is the full exact DP's.
	FellBack bool
}

// corridor restricts each stage's admissible velocity-index band; indexes
// are fine-grid, one entry per stage.
type corridor struct {
	minJ, maxJ []int
}

// apply intersects the corridor with each stage's own band in place. An
// empty intersection (the coarse winner sat outside a stage's band, which
// only arises next to forced-zero stages) keeps the stage's original band:
// being conservative there costs a few columns, never feasibility.
func (c *corridor) apply(stages []stageInfo) {
	for i := range stages {
		lo := max(stages[i].minJ, c.minJ[i])
		hi := min(stages[i].maxJ, c.maxJ[i])
		if lo <= hi {
			stages[i].minJ, stages[i].maxJ = lo, hi
		}
	}
}

// corridorAround brackets a coarse winning velocity sequence with
// fine-grid bands of half-width marginMS.
func corridorAround(js []int, coarseDv, fineDv, marginMS float64, jMaxFine int) *corridor {
	c := &corridor{minJ: make([]int, len(js)), maxJ: make([]int, len(js))}
	for i, j := range js {
		v := float64(j) * coarseDv
		c.minJ[i], c.maxJ[i] = fineBand(v-marginMS, v+marginMS, fineDv, jMaxFine)
	}
	return c
}

// fineBand converts a velocity interval [vLo, vHi] m/s to inclusive
// fine-grid index bounds, clamped to [0, jMax]. The epsilons keep exact
// grid multiples inside the band despite FP division.
func fineBand(vLo, vHi, dv float64, jMax int) (lo, hi int) {
	lo = int(math.Ceil(vLo/dv - 1e-9))
	hi = int(math.Floor(vHi/dv + 1e-9))
	if lo < 0 {
		lo = 0
	}
	if hi > jMax {
		hi = jMax
	}
	return lo, hi
}

// optimizeRefined is the CoarseRefine entry point, called by OptimizeCtx on
// a defaulted, validated Config with Factor ≥ 2. Context errors propagate
// verbatim; any other failure of the coarse or corridor pass falls back to
// the full exact DP.
func optimizeRefined(ctx context.Context, cfg Config) (*Result, error) {
	factor := cfg.CoarseRefine.Factor
	margin := cfg.CoarseRefine.marginMS(cfg.DvMS)

	fine := cfg
	fine.CoarseRefine = CoarseRefine{}
	coarse := fine
	coarse.DvMS = cfg.DvMS * float64(factor)

	fallBack := func(coarseRes *Result) (*Result, error) {
		res, _, err := optimizeCore(ctx, fine, nil)
		if err != nil {
			return nil, err
		}
		diag := &RefineDiag{Factor: factor, CorridorMS: margin, FellBack: true}
		if coarseRes != nil {
			diag.CoarseChargeAh = coarseRes.ChargeAh
			diag.CoarseStatesExpanded = coarseRes.StatesExpanded
		}
		res.Refined = diag
		return res, nil
	}

	cres, cjs, cerr := optimizeCore(ctx, coarse, nil)
	if cerr != nil {
		if ctx.Err() != nil {
			return nil, cerr
		}
		// The coarsened grid is degenerate (Δv' above the route's max
		// speed) or cannot reach the destination within budget: the fine
		// grid may still be feasible, so solve it exactly.
		return fallBack(nil)
	}

	fg, err := buildGrid(&fine)
	if err != nil {
		return nil, err
	}
	res, _, err := optimizeCore(ctx, fine, corridorAround(cjs, coarse.DvMS, fine.DvMS, margin, fg.jMax))
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		// A corridor that cuts off every path can only arise from coarse/
		// fine reachability mismatches near band edges; the exact solve is
		// the safety net.
		return fallBack(cres)
	}
	res.Refined = &RefineDiag{
		Factor: factor, CorridorMS: margin,
		CoarseChargeAh:       cres.ChargeAh,
		CoarseStatesExpanded: cres.StatesExpanded,
	}
	return res, nil
}
