package dp

import (
	"evvo/internal/queue"
	"evvo/internal/road"
)

// GreenWindows returns a WindowsFunc admitting any arrival during a green
// phase within [from, to) — the "current DP method" the paper compares
// against (green-signal aware, queue-blind).
func GreenWindows(from, to float64) WindowsFunc {
	return func(c road.Control) []queue.Window {
		if c.Kind != road.ControlSignal {
			return nil
		}
		m := queue.Model{Timing: c.Timing}
		return m.GreenWindowsAbs(from, to)
	}
}

// ArrivalRateFunc supplies the predicted vehicle arrival rate (veh/s) at a
// signal — typically the SAE traffic predictor, or a constant for
// closed-form studies.
type ArrivalRateFunc func(c road.Control) float64

// ConstantArrivalRate returns the same arrival rate for every signal.
func ConstantArrivalRate(vin float64) ArrivalRateFunc {
	return func(road.Control) float64 { return vin }
}

// QueueAwareWindows returns a WindowsFunc admitting only arrivals inside
// the zero-queue windows T_q predicted by the QL model (the paper's
// contribution). Signals whose queue never clears (oversaturation) yield an
// empty, non-nil window set: every arrival there is penalized and the
// result is flagged Penalized.
func QueueAwareWindows(p queue.Params, vin ArrivalRateFunc, from, to float64) (WindowsFunc, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return func(c road.Control) []queue.Window {
		if c.Kind != road.ControlSignal {
			return nil
		}
		m, err := queue.NewModel(p, c.Timing)
		if err != nil {
			return []queue.Window{} // invalid timing: treat as never admissible
		}
		ws := m.ZeroWindowsAbs(vin(c), from, to)
		if ws == nil {
			return []queue.Window{}
		}
		return ws
	}, nil
}

// IntegratedQueueWindows predicts T_q by numerically integrating the QL
// model under a time-varying arrival rate (e.g. straight from the SAE
// predictor), carrying residual queues across cycles. warmupSec of queue
// build-up is simulated before `from` so the state at `from` is realistic.
func IntegratedQueueWindows(p queue.Params, rate func(c road.Control) queue.RateFunc,
	from, to, warmupSec, dtSec float64) (WindowsFunc, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return func(c road.Control) []queue.Window {
		if c.Kind != road.ControlSignal {
			return nil
		}
		m, err := queue.NewModel(p, c.Timing)
		if err != nil {
			return []queue.Window{}
		}
		samples, err := m.Integrate(rate(c), from-warmupSec, to, dtSec)
		if err != nil {
			return []queue.Window{}
		}
		var out []queue.Window
		for _, w := range queue.ZeroWindowsIntegrated(samples, 1e-6) {
			if w.End <= from {
				continue
			}
			if w.Start < from {
				w.Start = from
			}
			out = append(out, w)
		}
		if out == nil {
			return []queue.Window{}
		}
		return out
	}, nil
}
