package dp

import (
	"math"
	"strings"
	"testing"

	"evvo/internal/ev"
	"evvo/internal/queue"
	"evvo/internal/road"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// openRoad is a plain 1 km route with no controls and no minimum limit.
func openRoad(t *testing.T) *road.Route {
	t.Helper()
	r, err := road.NewRoute(road.RouteConfig{LengthM: 1000, DefaultMaxMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// coarseUS25 returns a Config for the paper's route at a test-friendly grid.
func coarseUS25(windows WindowsFunc) Config {
	return Config{
		Route:   road.US25(),
		Vehicle: ev.SparkEV(),
		DsM:     100, DvMS: 1, DtSec: 2,
		MaxTripSec: 600,
		Windows:    windows,
	}
}

func TestOptimizeValidation(t *testing.T) {
	if _, err := Optimize(Config{Vehicle: ev.SparkEV()}); err == nil {
		t.Fatal("nil route accepted")
	}
	if _, err := Optimize(Config{Route: openRoad(t)}); err == nil {
		t.Fatal("invalid vehicle accepted")
	}
	bad := Config{Route: openRoad(t), Vehicle: ev.SparkEV(), DtSec: 0.001, MaxTripSec: 600}
	if _, err := Optimize(bad); err == nil || !strings.Contains(err.Error(), "bucket") {
		t.Fatalf("bucket overflow not caught: %v", err)
	}
	neg := Config{Route: openRoad(t), Vehicle: ev.SparkEV(), StopDwellSec: -1}
	if _, err := Optimize(neg); err == nil {
		t.Fatal("negative dwell accepted")
	}
}

func TestOptimizeOpenRoadBasics(t *testing.T) {
	res, err := Optimize(Config{
		Route: openRoad(t), Vehicle: ev.SparkEV(),
		DsM: 50, DvMS: 1, DtSec: 1, MaxTripSec: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if !almost(p.Distance(), 1000, 1e-6) {
		t.Fatalf("distance %v, want 1000", p.Distance())
	}
	pts := p.Points()
	if pts[0].V != 0 || pts[len(pts)-1].V != 0 {
		t.Fatalf("endpoints must be at rest: %v, %v", pts[0].V, pts[len(pts)-1].V)
	}
	if res.ChargeAh <= 0 {
		t.Fatalf("charge %v, want positive", res.ChargeAh)
	}
	if res.TripSec <= 0 || res.TripSec > 300 {
		t.Fatalf("trip %v s out of range", res.TripSec)
	}
	if res.Penalized {
		t.Fatal("open road should not be penalized")
	}
	if len(res.Arrivals) != 0 {
		t.Fatalf("open road reported arrivals: %+v", res.Arrivals)
	}
	if res.StatesExpanded <= 0 {
		t.Fatal("no states expanded?")
	}
}

func TestOptimizeRespectsSpeedAndAccelLimits(t *testing.T) {
	cfg := Config{
		Route: openRoad(t), Vehicle: ev.SparkEV(),
		DsM: 50, DvMS: 1, DtSec: 1, MaxTripSec: 300,
		AccelMaxMS2: 2.0, DecelMaxMS2: 1.0,
	}
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Profile.Points()
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		if b.V > 20+1e-9 {
			t.Fatalf("speed %v exceeds limit at %v m", b.V, b.Pos)
		}
		dt := b.T - a.T
		if dt <= 0 {
			continue
		}
		acc := (b.V - a.V) / dt
		if acc > cfg.AccelMaxMS2+1e-6 || acc < -cfg.DecelMaxMS2-1e-6 {
			t.Fatalf("acceleration %v outside [%v, %v] at %v m", acc, -cfg.DecelMaxMS2, cfg.AccelMaxMS2, b.Pos)
		}
	}
}

// bruteForceMinCharge enumerates every velocity sequence on a tiny grid and
// returns the minimum total charge, mirroring the DP's cost arithmetic.
func bruteForceMinCharge(t *testing.T, cfg Config, n int, ds float64, jMax int) float64 {
	t.Helper()
	best := math.Inf(1)
	seq := make([]int, n+1)
	var rec func(i int)
	rec = func(i int) {
		if i == n+1 {
			cost := 0.0
			tt := 0.0
			for k := 0; k < n; k++ {
				v, v2 := float64(seq[k])*cfg.DvMS, float64(seq[k+1])*cfg.DvMS
				vAvg := (v + v2) / 2
				if vAvg <= 0 {
					return
				}
				dTau := ds / vAvg
				acc := (v2 - v) / dTau
				if acc > cfg.AccelMaxMS2+1e-9 || acc < -cfg.DecelMaxMS2-1e-9 {
					return
				}
				cost += cfg.Vehicle.Charge(vAvg, acc, 0, dTau)
				tt += dTau
			}
			if tt > cfg.MaxTripSec {
				return
			}
			if cost < best {
				best = cost
			}
			return
		}
		lo, hi := 0, jMax
		if i == 0 || i == n {
			lo, hi = 0, 0
		}
		for j := lo; j <= hi; j++ {
			seq[i] = j
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestOptimizeMatchesBruteForceOnTinyInstance(t *testing.T) {
	r, err := road.NewRoute(road.RouteConfig{LengthM: 400, DefaultMaxMS: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Route: r, Vehicle: ev.SparkEV(),
		DsM: 100, DvMS: 2, DtSec: 1, MaxTripSec: 400,
		AccelMaxMS2: 2.5, DecelMaxMS2: 1.5,
		TimeWeightAhPerSec: -1, // pure-charge objective to mirror brute force
	}
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForceMinCharge(t, cfg, 4, 100, 4)
	if !almost(res.ChargeAh, want, 1e-9) {
		t.Fatalf("DP charge %v, brute force %v", res.ChargeAh, want)
	}
}

func TestOptimizeStopsAtStopSign(t *testing.T) {
	res, err := Optimize(coarseUS25(nil))
	if err != nil {
		t.Fatal(err)
	}
	// Stop sign at 490 m snaps to the 500 m stage on the 100 m grid.
	if v := res.Profile.SpeedAtPos(500); v > 1e-9 {
		t.Fatalf("speed at stop sign stage = %v, want 0", v)
	}
}

func TestOptimizeStopDwellDelaysTrip(t *testing.T) {
	base, err := Optimize(coarseUS25(nil))
	if err != nil {
		t.Fatal(err)
	}
	cfg := coarseUS25(nil)
	cfg.StopDwellSec = 10
	dwell, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dwell.TripSec < base.TripSec+9 {
		t.Fatalf("dwell should add ≈10 s: base %v, dwell %v", base.TripSec, dwell.TripSec)
	}
}

func TestOptimizeGreenWindowsHitsGreens(t *testing.T) {
	cfg := coarseUS25(GreenWindows(0, 600))
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Penalized {
		t.Fatalf("green-window DP should be feasible; arrivals: %+v", res.Arrivals)
	}
	if len(res.Arrivals) != 2 {
		t.Fatalf("want 2 signal arrivals, got %+v", res.Arrivals)
	}
	for _, a := range res.Arrivals {
		timing := road.SignalTiming{RedSec: 30, GreenSec: 30}
		if green, _ := timing.PhaseAt(a.ArrivalSec); !green {
			t.Errorf("arrival at %s t=%.1f is in red", a.Name, a.ArrivalSec)
		}
		if !a.InWindow {
			t.Errorf("arrival %+v flagged out-of-window", a)
		}
	}
}

func TestOptimizeQueueAwareHitsZeroQueueWindows(t *testing.T) {
	vin := queue.VehPerHour(153)
	wf, err := QueueAwareWindows(queue.US25Params(), ConstantArrivalRate(vin), 0, 600)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(coarseUS25(wf))
	if err != nil {
		t.Fatal(err)
	}
	if res.Penalized {
		t.Fatalf("queue-aware DP should be feasible; arrivals: %+v", res.Arrivals)
	}
	qp := queue.US25Params()
	for _, a := range res.Arrivals {
		m, err := queue.NewModel(qp, road.SignalTiming{RedSec: 30, GreenSec: 30})
		if err != nil {
			t.Fatal(err)
		}
		clear, ok := m.QueueClearTime(vin)
		if !ok {
			t.Fatal("queue should clear")
		}
		into := math.Mod(a.ArrivalSec, 60)
		if into < clear {
			t.Errorf("arrival at %s lands %.1fs into cycle, before queue clears at %.1fs", a.Name, into, clear)
		}
	}
}

func TestOptimizeQueueAwareStricterThanGreen(t *testing.T) {
	// Every queue-aware admissible arrival is also green-admissible.
	vin := queue.VehPerHour(153)
	wf, err := QueueAwareWindows(queue.US25Params(), ConstantArrivalRate(vin), 0, 600)
	if err != nil {
		t.Fatal(err)
	}
	gf := GreenWindows(0, 600)
	sig := road.US25().Signals()[0]
	qws := wf(sig)
	gws := gf(sig)
	if len(qws) == 0 || len(gws) == 0 {
		t.Fatal("providers returned no windows")
	}
	for _, q := range qws {
		inside := false
		for _, g := range gws {
			if q.Start >= g.Start && q.End <= g.End {
				inside = true
				break
			}
		}
		if !inside {
			t.Fatalf("queue window %+v not contained in green windows", q)
		}
	}
}

func TestOptimizeOversaturatedIsPenalized(t *testing.T) {
	qp := queue.US25Params()
	// Arrivals beyond discharge capacity: queue never clears.
	vin := qp.VMinMS/qp.SpacingM + 0.5
	wf, err := QueueAwareWindows(qp, ConstantArrivalRate(vin), 0, 600)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(coarseUS25(wf))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Penalized {
		t.Fatal("oversaturated signals should force a penalized result")
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	a, err := Optimize(coarseUS25(GreenWindows(0, 600)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(coarseUS25(GreenWindows(0, 600)))
	if err != nil {
		t.Fatal(err)
	}
	if a.ChargeAh != b.ChargeAh || a.TripSec != b.TripSec {
		t.Fatalf("nondeterministic results: %v/%v vs %v/%v", a.ChargeAh, a.TripSec, b.ChargeAh, b.TripSec)
	}
}

func TestOptimizeDepartTimeShiftsWindows(t *testing.T) {
	// Departing 30 s later shifts which green phases are reachable; the
	// optimizer must still find in-window arrivals.
	cfg := coarseUS25(GreenWindows(0, 900))
	cfg.DepartTime = 30
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Penalized {
		t.Fatalf("arrivals: %+v", res.Arrivals)
	}
	if res.Profile.Points()[0].T != 30 {
		t.Fatalf("profile starts at %v, want 30", res.Profile.Points()[0].T)
	}
}

func TestOptimizeControlCollisionError(t *testing.T) {
	// Δs so coarse that the stop sign and a signal share a stage.
	r, err := road.NewRoute(road.RouteConfig{
		LengthM: 4000, DefaultMaxMS: 17,
		Controls: []road.Control{
			{Kind: road.ControlStopSign, PositionM: 1990, Name: "s"},
			{Kind: road.ControlSignal, PositionM: 2010, Timing: road.SignalTiming{RedSec: 30, GreenSec: 30}, Name: "l"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Optimize(Config{Route: r, Vehicle: ev.SparkEV(), DsM: 1000, DvMS: 1, DtSec: 2})
	if err == nil || !strings.Contains(err.Error(), "collides") {
		t.Fatalf("want collision error, got %v", err)
	}
}

func TestOptimizeInfeasibleTripTime(t *testing.T) {
	// 4.2 km in 60 s is impossible at ≤ 60 km/h.
	cfg := coarseUS25(nil)
	cfg.MaxTripSec = 60
	if _, err := Optimize(cfg); err == nil {
		t.Fatal("impossible trip budget accepted")
	}
}

func TestOptimizeMinimumSpeedBandHolds(t *testing.T) {
	// Away from stops the US-25 profile must respect the 40 km/h minimum.
	res, err := Optimize(coarseUS25(nil))
	if err != nil {
		t.Fatal(err)
	}
	vmin := road.KmhToMs(40)
	for _, pt := range res.Profile.Points() {
		// Skip ramp zones near mandatory stops (source, 490 m sign, dest).
		nearStop := pt.Pos < 300 || math.Abs(pt.Pos-500) < 300 || pt.Pos > 3900
		if nearStop {
			continue
		}
		if pt.V < vmin-1e-9 {
			t.Fatalf("speed %v below 40 km/h band at %v m", pt.V, pt.Pos)
		}
	}
}

func TestGreenWindowsIgnoresStopSigns(t *testing.T) {
	wf := GreenWindows(0, 600)
	if ws := wf(road.Control{Kind: road.ControlStopSign, PositionM: 100}); ws != nil {
		t.Fatalf("stop sign got windows: %+v", ws)
	}
}

func TestQueueAwareWindowsValidation(t *testing.T) {
	if _, err := QueueAwareWindows(queue.Params{}, ConstantArrivalRate(0.1), 0, 600); err == nil {
		t.Fatal("invalid queue params accepted")
	}
}

func TestIntegratedQueueWindowsMatchClosedForm(t *testing.T) {
	qp := queue.US25Params()
	vin := queue.VehPerHour(153)
	iwf, err := IntegratedQueueWindows(qp,
		func(road.Control) queue.RateFunc { return queue.ConstantRate(vin) },
		0, 300, 120, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cwf, err := QueueAwareWindows(qp, ConstantArrivalRate(vin), 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	sig := road.US25().Signals()[0]
	got, want := iwf(sig), cwf(sig)
	if len(got) != len(want) {
		t.Fatalf("integrated windows %+v vs closed form %+v", got, want)
	}
	for i := range got {
		if math.Abs(got[i].Start-want[i].Start) > 1 || math.Abs(got[i].End-want[i].End) > 1 {
			t.Fatalf("window %d: integrated %+v, closed form %+v", i, got[i], want[i])
		}
	}
}

// TestOptimizeVelocityGridPackingLimit is the regression test for the
// silent backpointer corruption: a fine Δv with a high speed limit used to
// push the velocity index past 15 bits, flipping the packed int32's sign
// and failing reconstruction with an unhelpful "broken backpointer". It
// must now be rejected up front with an actionable error.
func TestOptimizeVelocityGridPackingLimit(t *testing.T) {
	r, err := road.NewRoute(road.RouteConfig{LengthM: 100, DefaultMaxMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Route: r, Vehicle: ev.SparkEV(),
		DsM: 50, DvMS: 0.0005, DtSec: 1, MaxTripSec: 600,
	}
	_, err = Optimize(cfg)
	if err == nil {
		t.Fatal("oversized velocity grid accepted")
	}
	if !strings.Contains(err.Error(), "packing limit") || !strings.Contains(err.Error(), "Δv") {
		t.Fatalf("error not actionable: %v", err)
	}
}

// TestRouteMaxSpeedSeesShortZone is the regression test for the velocity
// grid sizing scan: a speed zone shorter than Δs lying strictly between
// stage points was invisible to the stage-point-only scan, shrinking jMax
// below the route's true fastest legal speed.
func TestRouteMaxSpeedSeesShortZone(t *testing.T) {
	r, err := road.NewRoute(road.RouteConfig{
		LengthM: 1000, DefaultMaxMS: 10,
		// 30 m zone between the 400 m and 500 m stage points of a 100 m grid.
		SpeedZones: []road.SpeedZone{{StartM: 410, EndM: 440, MinMS: 0, MaxMS: 25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := routeMaxSpeed(r, 10, 100); got != 25 {
		t.Fatalf("routeMaxSpeed = %v, want 25 (short zone missed)", got)
	}
	// Stage points alone must still be honored.
	open, err := road.NewRoute(road.RouteConfig{LengthM: 1000, DefaultMaxMS: 18})
	if err != nil {
		t.Fatal(err)
	}
	if got := routeMaxSpeed(open, 10, 100); got != 18 {
		t.Fatalf("routeMaxSpeed = %v, want 18", got)
	}
}

func BenchmarkOptimizeCoarse(b *testing.B) {
	cfg := coarseUS25(GreenWindows(0, 600))
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOptimizeRespectsPowerEnvelope(t *testing.T) {
	// A weak motor cannot sustain hard acceleration at speed: the profile's
	// high-speed accelerations must stay inside the power envelope.
	veh := ev.SparkEV()
	veh.MaxPowerKW = 25
	res, err := Optimize(Config{
		Route: openRoad(t), Vehicle: veh,
		DsM: 50, DvMS: 1, DtSec: 1, MaxTripSec: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Profile.Points()
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		dt := b.T - a.T
		if dt <= 0 {
			continue
		}
		vAvg := (a.V + b.V) / 2
		acc := (b.V - a.V) / dt
		if pw := veh.TractivePower(vAvg, acc, 0); pw > veh.MaxPowerKW*1000+100 {
			t.Fatalf("profile needs %.0f W at %v m, envelope is %.0f W", pw, b.Pos, veh.MaxPowerKW*1000)
		}
	}
	// The weak motor must slow the trip relative to an unlimited one.
	free, err := Optimize(Config{
		Route: openRoad(t), Vehicle: ev.SparkEV(),
		DsM: 50, DvMS: 1, DtSec: 1, MaxTripSec: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TripSec < free.TripSec {
		t.Fatalf("weak motor produced a faster trip: %v vs %v", res.TripSec, free.TripSec)
	}
}
