package dp

import (
	"testing"

	"evvo/internal/ev"
	"evvo/internal/queue"
	"evvo/internal/road"
)

func TestGreedyPlanOpenRoad(t *testing.T) {
	res, err := GreedyPlan(Config{
		Route: openRoad(t), Vehicle: ev.SparkEV(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Profile.Distance(), 1000, 1) {
		t.Fatalf("distance %v", res.Profile.Distance())
	}
	pts := res.Profile.Points()
	if pts[0].V != 0 || pts[len(pts)-1].V > 0.6 {
		t.Fatalf("endpoints %v / %v, want at rest", pts[0].V, pts[len(pts)-1].V)
	}
	if res.ChargeAh <= 0 || res.TripSec <= 0 {
		t.Fatalf("charge %v trip %v", res.ChargeAh, res.TripSec)
	}
	if res.Penalized {
		t.Fatal("open road penalized")
	}
}

func TestGreedyPlanHitsWindows(t *testing.T) {
	vin := queue.VehPerHour(400)
	wf, err := QueueAwareWindows(queue.US25Params(), ConstantArrivalRate(vin), 0, 900)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GreedyPlan(Config{
		Route: road.US25(), Vehicle: ev.SparkEV(),
		StopDwellSec: 2, Windows: wf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Penalized {
		t.Fatalf("greedy plan penalized: %+v", res.Arrivals)
	}
	if len(res.Arrivals) != 2 {
		t.Fatalf("arrivals %+v", res.Arrivals)
	}
	// Stop sign respected.
	if v := res.Profile.SpeedAtPos(490); v > 0.6 {
		t.Fatalf("speed at stop sign %v", v)
	}
	// Legal everywhere.
	if pos, bad := res.Profile.ViolatesLimits(road.US25(), 0.1); bad {
		t.Fatalf("limit violated at %v", pos)
	}
}

func TestGreedyPlanNearDPQuality(t *testing.T) {
	// The heuristic must land within a modest factor of the DP's weighted
	// cost — that is its whole claim (speed for a small quality gap).
	vin := queue.VehPerHour(400)
	wf, err := QueueAwareWindows(queue.US25Params(), ConstantArrivalRate(vin), 0, 900)
	if err != nil {
		t.Fatal(err)
	}
	cfg := coarseUS25(wf)
	cfg.StopDwellSec = 2
	dpRes, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gRes, err := GreedyPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dpCost := dpRes.ChargeAh + 0.0008*dpRes.TripSec
	gCost := gRes.ChargeAh + 0.0008*gRes.TripSec
	if gCost > dpCost*1.25 {
		t.Fatalf("greedy cost %.4f more than 25%% above DP %.4f", gCost, dpCost)
	}
}

func TestGreedyPlanValidation(t *testing.T) {
	if _, err := GreedyPlan(Config{Vehicle: ev.SparkEV()}); err == nil {
		t.Fatal("nil route accepted")
	}
}

func BenchmarkGreedyPlan(b *testing.B) {
	vin := queue.VehPerHour(400)
	wf, err := QueueAwareWindows(queue.US25Params(), ConstantArrivalRate(vin), 0, 900)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Route: road.US25(), Vehicle: ev.SparkEV(), StopDwellSec: 2, Windows: wf}
	for i := 0; i < b.N; i++ {
		if _, err := GreedyPlan(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
