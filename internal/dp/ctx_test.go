package dp

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"evvo/internal/ev"
	"evvo/internal/queue"
	"evvo/internal/road"
)

// fineCtxConfig builds a DP instance large enough that a full run takes
// many stage iterations (so mid-run cancellation is observable) while a
// single stage stays cheap (so "returns within one stage" is fast).
func fineCtxConfig(t *testing.T, workers int) Config {
	t.Helper()
	r, err := road.NewRoute(road.RouteConfig{LengthM: 4000, DefaultMaxMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Route:   r,
		Vehicle: ev.SparkEV(),
		DsM:     20, DvMS: 0.5, DtSec: 2,
		MaxTripSec: 600,
		Workers:    workers,
	}
}

// waitGoroutinesBack asserts the goroutine count returns to (near) the
// pre-test baseline: a cancelled OptimizeCtx must not strand its stage
// workers.
func waitGoroutinesBack(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: baseline %d, now %d",
				baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestOptimizeCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := OptimizeCtx(ctx, fineCtxConfig(t, 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestOptimizeCtxBackgroundMatchesOptimize(t *testing.T) {
	cfg := fineCtxConfig(t, 1)
	cfg.DsM, cfg.DvMS = 100, 1 // coarse: this test runs the DP twice
	want, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptimizeCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.ChargeAh != want.ChargeAh || got.TripSec != want.TripSec ||
		got.StatesExpanded != want.StatesExpanded {
		t.Fatalf("OptimizeCtx(background) diverged: got %+v want %+v", got, want)
	}
}

func TestOptimizeCtxCancelReturnsPromptly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := OptimizeCtx(ctx, fineCtxConfig(t, workers))
			done <- err
		}()
		// Let the relaxation get going, then pull the plug.
		time.Sleep(20 * time.Millisecond)
		start := time.Now()
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("workers=%d: OptimizeCtx hung after cancellation", workers)
		}
		// One stage of this grid is well under a second; a multi-second
		// return would mean cancellation is not checked per stage.
		if wait := time.Since(start); wait > 2*time.Second {
			t.Fatalf("workers=%d: returned %v after cancel, want ≤ one stage", workers, wait)
		}
		waitGoroutinesBack(t, baseline)
	}
}

func TestOptimizeCtxDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	_, err := OptimizeCtx(ctx, fineCtxConfig(t, 2))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSweepDeparturesCtxCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cfg := fineCtxConfig(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := SweepDeparturesCtx(ctx, cfg, 0, 300, 10)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SweepDeparturesCtx hung after cancellation")
	}
	waitGoroutinesBack(t, baseline)
}

func TestSweepDeparturesCtxBackgroundCompletes(t *testing.T) {
	cfg := fineCtxConfig(t, 2)
	cfg.DsM, cfg.DvMS = 100, 1
	cfg.Windows = GreenWindows(0, 2000)
	_ = cfg.Windows // windows func needs signals; plain route has none
	opts, err := SweepDeparturesCtx(context.Background(), cfg, 0, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 3 {
		t.Fatalf("options = %d, want 3", len(opts))
	}
}

// TestOptimizeCtxCancelSafeWithWindows exercises cancellation on the
// queue-aware path (window lookups live inside the relaxation setup).
func TestOptimizeCtxCancelSafeWithWindows(t *testing.T) {
	cfg := fineCtxConfig(t, 2)
	r := road.US25()
	cfg.Route = r
	wf, err := QueueAwareWindows(queue.US25Params(),
		ConstantArrivalRate(queue.VehPerHour(400)), 0, 1500)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Windows = wf
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := OptimizeCtx(ctx, cfg)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want nil or context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queue-aware OptimizeCtx hung after cancellation")
	}
}
