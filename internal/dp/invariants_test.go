package dp

import (
	"math/rand"
	"testing"

	"evvo/internal/ev"
	"evvo/internal/road"
)

// TestOptimizeInvariantsOnRandomRoutes fuzzes small random corridors and
// checks that every returned trajectory satisfies the hard constraints:
// covers the route, rests at endpoints and stop signs, never exceeds the
// local speed limit, never exceeds the acceleration bounds, and keeps
// non-decreasing time and position.
func TestOptimizeInvariantsOnRandomRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(20170604))
	for trial := 0; trial < 25; trial++ {
		length := 800 + rng.Float64()*2400
		maxMS := 12 + rng.Float64()*8
		var controls []road.Control
		pos := 250 + rng.Float64()*300
		for pos < length-250 {
			if rng.Float64() < 0.5 {
				controls = append(controls, road.Control{
					Kind: road.ControlStopSign, PositionM: pos,
					Name: "s",
				})
			} else {
				controls = append(controls, road.Control{
					Kind: road.ControlSignal, PositionM: pos,
					Timing: road.SignalTiming{
						RedSec:    10 + rng.Float64()*30,
						GreenSec:  15 + rng.Float64()*30,
						OffsetSec: rng.Float64() * 40,
					},
					Name: "l",
				})
			}
			pos += 350 + rng.Float64()*500
		}
		for i := range controls {
			controls[i].Name = controls[i].Name + string(rune('0'+i))
		}
		route, err := road.NewRoute(road.RouteConfig{
			LengthM: length, DefaultMaxMS: maxMS, Controls: controls,
		})
		if err != nil {
			t.Fatalf("trial %d: building route: %v", trial, err)
		}
		cfg := Config{
			Route: route, Vehicle: ev.SparkEV(),
			DsM: 100, DvMS: 1, DtSec: 2, MaxTripSec: 900,
			Windows: GreenWindows(0, 1200),
		}
		res, err := Optimize(cfg)
		if err != nil {
			t.Fatalf("trial %d (len %.0f, %d controls): %v", trial, length, len(controls), err)
		}
		pts := res.Profile.Points()
		if pts[0].V != 0 || pts[len(pts)-1].V != 0 {
			t.Fatalf("trial %d: endpoints not at rest", trial)
		}
		if got := res.Profile.Distance(); got < length-1 {
			t.Fatalf("trial %d: covered %.1f of %.1f m", trial, got, length)
		}
		for i := 1; i < len(pts); i++ {
			a, b := pts[i-1], pts[i]
			if b.T < a.T || b.Pos < a.Pos {
				t.Fatalf("trial %d: non-monotone trajectory at %d", trial, i)
			}
			if b.V > maxMS+1e-6 {
				t.Fatalf("trial %d: speed %.2f above limit %.2f at %.0f m", trial, b.V, maxMS, b.Pos)
			}
			dt := b.T - a.T
			if dt <= 0 {
				continue
			}
			acc := (b.V - a.V) / dt
			if acc > 2.5+1e-6 || acc < -1.5-1e-6 {
				t.Fatalf("trial %d: accel %.3f outside bounds at %.0f m", trial, acc, b.Pos)
			}
		}
		for _, c := range route.StopSigns() {
			// Snapped stop stage: speed must reach zero near the sign.
			low := res.Profile.SpeedAtPos(snapToGrid(c.PositionM, length, cfg.DsM))
			if low > 1e-9 {
				t.Fatalf("trial %d: speed %.3f at stop sign %.0f m", trial, low, c.PositionM)
			}
		}
	}
}

// snapToGrid mirrors the DP's control snapping for verification.
func snapToGrid(pos, length, ds float64) float64 {
	n := int(length/ds + 0.5)
	if n < 2 {
		n = 2
	}
	step := length / float64(n)
	idx := int(pos/step + 0.5)
	return float64(idx) * step
}
