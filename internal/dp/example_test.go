package dp_test

import (
	"fmt"

	"evvo/internal/dp"
	"evvo/internal/ev"
	"evvo/internal/queue"
	"evvo/internal/road"
)

// ExampleOptimize plans the paper's US-25 trip with queue-aware arrival
// windows: the EV reaches both lights inside the zero-queue window T_q and
// never meets a standing queue.
func ExampleOptimize() {
	windows, err := dp.QueueAwareWindows(queue.US25Params(),
		dp.ConstantArrivalRate(queue.VehPerHour(153)), 0, 800)
	if err != nil {
		panic(err)
	}
	res, err := dp.Optimize(dp.Config{
		Route:   road.US25(),
		Vehicle: ev.SparkEV(),
		// Coarse grid keeps the example quick; drop DsM/DvMS/DtSec for the
		// report-quality defaults.
		DsM: 100, DvMS: 1, DtSec: 2,
		StopDwellSec: 2,
		Windows:      windows,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("penalized=%v, %d signal arrivals\n", res.Penalized, len(res.Arrivals))
	for _, a := range res.Arrivals {
		fmt.Printf("  %s: in zero-queue window=%v\n", a.Name, a.InWindow)
	}
	// Output:
	// penalized=false, 2 signal arrivals
	//   light-1: in zero-queue window=true
	//   light-2: in zero-queue window=true
}

// ExampleGreedyPlan runs the fast heuristic planner on the same problem.
func ExampleGreedyPlan() {
	windows, err := dp.QueueAwareWindows(queue.US25Params(),
		dp.ConstantArrivalRate(queue.VehPerHour(153)), 0, 800)
	if err != nil {
		panic(err)
	}
	res, err := dp.GreedyPlan(dp.Config{
		Route:        road.US25(),
		Vehicle:      ev.SparkEV(),
		StopDwellSec: 2,
		Windows:      windows,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("penalized=%v, covers %.0f m\n", res.Penalized, res.Profile.Distance())
	// Output:
	// penalized=false, covers 4200 m
}
