package dp

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"evvo/internal/par"
)

// DepartureOption is one evaluated departure time.
type DepartureOption struct {
	// DepartTime is the absolute departure evaluated.
	DepartTime float64
	// Result is the optimized plan for that departure.
	Result *Result
}

// SweepDepartures optimizes the same trip for every departure time in
// [from, to] at the given step and returns the options in departure order.
// cfg.DepartTime is overridden per evaluation; cfg.Windows should cover the
// whole sweep horizon. Departures whose optimization fails outright (e.g.
// an impossible trip budget) abort the sweep with an error.
//
// Signal cycles make departure timing matter: leaving a few seconds later
// can align every signal arrival with a zero-queue window and save both
// energy and a red-light wait. This extends the paper's system the way its
// vehicular-cloud framing suggests — the cloud already knows the windows,
// so it can advise *when* to leave, not just how to drive.
//
// Departures are evaluated concurrently on a bounded worker pool
// (cfg.Workers goroutines, default runtime.GOMAXPROCS(0)); the options come
// back in departure order and a failure reports the earliest failing
// departure, exactly as a serial loop would. Each departure is indexed as
// from + i·step rather than accumulated, so long sweeps stay on-grid
// instead of drifting in floating point.
//
//lint:certify pure
func SweepDepartures(cfg Config, from, to, step float64) ([]DepartureOption, error) {
	return SweepDeparturesCtx(context.Background(), cfg, from, to, step)
}

// SweepDeparturesCtx is SweepDepartures with cooperative cancellation:
// each departure's DP observes ctx at its stage boundaries, and departures
// not yet dispatched when ctx dies are skipped. The pool is always joined
// before returning, so cancellation leaks no goroutines. A cancelled sweep
// reports an error wrapping ctx.Err() (match with errors.Is).
//
//lint:certify pure
func SweepDeparturesCtx(ctx context.Context, cfg Config, from, to, step float64) ([]DepartureOption, error) {
	if step <= 0 {
		return nil, fmt.Errorf("dp: sweep step %.2f s must be positive", step)
	}
	if to < from {
		return nil, fmt.Errorf("dp: sweep range [%.1f, %.1f] inverted", from, to)
	}
	count := int(math.Floor((to-from)/step+1e-9)) + 1
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]DepartureOption, count)
	err := par.ForEach(workers, count, func(i int) error {
		depart := from + float64(i)*step
		c := cfg
		c.DepartTime = depart
		// The sweep already saturates the pool; keep each DP serial so the
		// goroutine count stays bounded by `workers` (results are identical
		// for any worker count).
		c.Workers = 1
		res, err := OptimizeCtx(ctx, c)
		if err != nil {
			return fmt.Errorf("dp: sweep at depart %.1f s: %w", depart, err)
		}
		out[i] = DepartureOption{DepartTime: depart, Result: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BestDeparture picks the option with the lowest charge among non-penalized
// plans; if every plan is penalized it falls back to the lowest charge
// overall. An empty slice is an error.
func BestDeparture(opts []DepartureOption) (DepartureOption, error) {
	if len(opts) == 0 {
		return DepartureOption{}, fmt.Errorf("dp: no departure options")
	}
	best, bestClean := -1, -1
	lo, loClean := math.Inf(1), math.Inf(1)
	for i, o := range opts {
		if o.Result.ChargeAh < lo {
			lo, best = o.Result.ChargeAh, i
		}
		if !o.Result.Penalized && o.Result.ChargeAh < loClean {
			loClean, bestClean = o.Result.ChargeAh, i
		}
	}
	if bestClean >= 0 {
		return opts[bestClean], nil
	}
	return opts[best], nil
}
