package dp

import (
	"math"

	"evvo/internal/ev"
	"evvo/internal/road"
)

// accelBands precomputes, per velocity index, the destination band reachable
// under the acceleration limits over one Δs (v'² = v² ± 2aΔs), and the
// inverse mapping: per destination index, the predecessor band. Both are
// grade-independent, so one table serves every stage.
//
// The inverse bands drive the gather-formulated relaxation (see parallel.go):
// a worker that owns destination column j2 scans exactly the predecessors j
// with lo[j] <= j2 <= hi[j].
type accelBands struct {
	lo, hi []int // per source j: reachable destination indexes (unclamped)
	pLo    []int // per destination j2: lowest predecessor j (clamped to grid)
	pHi    []int // per destination j2: highest predecessor j
}

func newAccelBands(cfg *Config, ds float64, jMax int) *accelBands {
	b := &accelBands{
		lo:  make([]int, jMax+1),
		hi:  make([]int, jMax+1),
		pLo: make([]int, jMax+1),
		pHi: make([]int, jMax+1),
	}
	for j2 := 0; j2 <= jMax; j2++ {
		b.pLo[j2], b.pHi[j2] = jMax+1, -1
	}
	for j := 0; j <= jMax; j++ {
		v := float64(j) * cfg.DvMS
		vLo := math.Sqrt(math.Max(0, v*v-2*cfg.DecelMaxMS2*ds))
		vHi := math.Sqrt(v*v + 2*cfg.AccelMaxMS2*ds)
		b.lo[j] = int(math.Ceil(vLo/cfg.DvMS - 1e-9))
		b.hi[j] = int(math.Floor(vHi/cfg.DvMS + 1e-9))
		for j2 := max(0, b.lo[j]); j2 <= min(jMax, b.hi[j]); j2++ {
			if j < b.pLo[j2] {
				b.pLo[j2] = j
			}
			if j > b.pHi[j2] {
				b.pHi[j2] = j
			}
		}
	}
	return b
}

// transitionCache holds the per-(j, j2) transition physics, hoisted out of
// the DP's time-bucket loop. Traversal time dTau depends only on the speed
// pair, so it is shared; the charge ζ and the motor power-limit mask depend
// on the stage grade, so they are cached per distinct grade value — routes
// repeat grades across stages, so most stages hit the cache.
//
// Each table exists in two layouts: row-major [j*(jMax+1)+j2] (the build
// order) and transposed [j2*(jMax+1)+j]. The gather relaxation
// (parallel.go) owns destination column j2 and scans its predecessor band
// j = pLo[j2]..pHi[j2]; the transposed layout makes that scan a contiguous
// structure-of-arrays read instead of a stride-(jMax+1) walk.
type transitionCache struct {
	veh     ev.Params
	dv, ds  float64
	jMax    int
	bands   *accelBands
	dTau    []float64 // [(jMax+1)*(jMax+1)]; filled for reachable pairs
	dTauT   []float64 // transposed: [j2*(jMax+1)+j]
	byGrade map[float64]*gradeTable
}

// gradeTable is the grade-dependent slice of the transition table.
type gradeTable struct {
	ok   []bool    // transition inside the motor's power envelope
	zeta []float64 // pack charge of the transition in Ah
	// Transposed views for the gather relaxation, [j2*(jMax+1)+j].
	okT   []bool
	zetaT []float64
}

func newTransitionCache(cfg *Config, ds float64, jMax int, bands *accelBands) *transitionCache {
	c := &transitionCache{
		veh: cfg.Vehicle, dv: cfg.DvMS, ds: ds, jMax: jMax, bands: bands,
		dTau:    make([]float64, (jMax+1)*(jMax+1)),
		dTauT:   make([]float64, (jMax+1)*(jMax+1)),
		byGrade: make(map[float64]*gradeTable),
	}
	for j := 0; j <= jMax; j++ {
		v := float64(j) * c.dv
		for j2 := max(0, bands.lo[j]); j2 <= min(jMax, bands.hi[j]); j2++ {
			v2 := float64(j2) * c.dv
			vAvg := (v + v2) / 2
			if vAvg <= 0 {
				continue // cannot cover Δs at zero average speed
			}
			c.dTau[j*(jMax+1)+j2] = ds / vAvg
			c.dTauT[j2*(jMax+1)+j] = ds / vAvg
		}
	}
	return c
}

// forGrade returns (building on first use) the grade-dependent table.
func (c *transitionCache) forGrade(grade float64) *gradeTable {
	if g, hit := c.byGrade[grade]; hit {
		return g
	}
	g := &gradeTable{
		ok:    make([]bool, (c.jMax+1)*(c.jMax+1)),
		zeta:  make([]float64, (c.jMax+1)*(c.jMax+1)),
		okT:   make([]bool, (c.jMax+1)*(c.jMax+1)),
		zetaT: make([]float64, (c.jMax+1)*(c.jMax+1)),
	}
	for j := 0; j <= c.jMax; j++ {
		v := float64(j) * c.dv
		for j2 := max(0, c.bands.lo[j]); j2 <= min(c.jMax, c.bands.hi[j]); j2++ {
			t := j*(c.jMax+1) + j2
			dTau := c.dTau[t]
			if dTau == 0 {
				continue // unreachable pair (zero average speed)
			}
			v2 := float64(j2) * c.dv
			vAvg := (v + v2) / 2
			acc := (v2 - v) / dTau
			if !c.veh.WithinPowerLimit(vAvg, acc, grade) {
				continue // beyond the motor's power envelope
			}
			g.ok[t] = true
			g.zeta[t] = c.veh.Charge(vAvg, acc, grade, dTau)
			tt := j2*(c.jMax+1) + j
			g.okT[tt] = true
			g.zetaT[tt] = g.zeta[t]
		}
	}
	c.byGrade[grade] = g
	return g
}

// routeMaxSpeed returns the fastest legal speed anywhere on the route. It
// samples every stage point and every speed-zone boundary: zones shorter
// than Δs that lie between stage points would otherwise be missed, sizing
// the velocity grid too small. Zone limits are piecewise constant and
// right-continuous (half-open [Start, End) intervals, later start wins), so
// every constant piece begins at position 0, a zone start, or a zone end —
// probing those covers the whole route.
func routeMaxSpeed(r *road.Route, n int, ds float64) float64 {
	maxSpeed := 0.0
	probe := func(pos float64) {
		if pos < 0 {
			pos = 0
		}
		if pos > r.LengthM()-1e-9 {
			pos = r.LengthM() - 1e-9
		}
		if _, mx := r.SpeedLimits(pos); mx > maxSpeed {
			maxSpeed = mx
		}
	}
	for i := 0; i <= n; i++ {
		probe(math.Min(float64(i)*ds, r.LengthM()-1e-9))
	}
	for _, z := range r.SpeedZones() {
		probe(z.StartM)
		probe(z.EndM)
	}
	return maxSpeed
}
