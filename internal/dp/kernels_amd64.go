//go:build amd64

package dp

// CPU feature probes (kernels_amd64.s).
func dpcpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func dpxgetbv() (eax, edx uint32)

// relaxEvalAsm is the AVX2 form of relaxEvalGo over a 4-lane-aligned prefix:
// len(cost) must be a positive multiple of 4 and all six slices sized to
// match (mask holds len/4 bytes). Adds and multiplies are separate
// instructions in the reference's order (never FMA), the bucket index uses
// VROUNDPD toward -inf after the +0.5 add, and the clamp is VMINPD with
// kMaxF in the second-operand position — each lane performs the exact
// rounding sequence of relaxEvalGo.
//
//go:noescape
func relaxEvalAsm(cand, tot, k2f []float64, mask []uint8, cost, exact []float64,
	zeta, tCost, step, maxTrip, invDt, kMaxF float64)

// asmSupported records the CPU probe; useAsmKernels is the live switch
// (SetAsmKernels can turn it off, or back on up to asmSupported).
var asmSupported = detectKernels()
var useAsmKernels = asmSupported

func detectKernels() bool {
	maxID, _, _, _ := dpcpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := dpcpuid(1, 0)
	const (
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if xcr0, _ := dpxgetbv(); xcr0&0x6 != 0x6 {
		return false // OS does not preserve YMM state
	}
	_, b7, _, _ := dpcpuid(7, 0)
	return b7&(1<<5) != 0 // AVX2
}
