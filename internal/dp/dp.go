// Package dp implements the dynamic-programming velocity optimizers of
// Kang et al. (ICDCS 2017) Section II-C.
//
// The route is discretized into equal-distance points s_0..s_N (Eq. 7); the
// DP searches over discrete (position, velocity, elapsed-time) states for
// the velocity profile minimizing pack charge (Eq. 8–9), subject to speed
// and acceleration limits (Eq. 7a–b), mandatory stops (Eq. 7c–d), and —
// for signalized intersections — arrival-time windows (Eq. 10–12).
//
// The arrival-window source distinguishes the optimizer variants:
//
//   - nil windows: prior DP in the style of Ozatay et al. [2] — signals
//     are ignored entirely.
//   - GreenWindows: the "current DP method" the paper compares against —
//     the EV must arrive during a green phase but queues are ignored.
//   - QueueAwareWindows: the paper's contribution — the EV must arrive
//     inside the zero-queue window T_q predicted by the QL model
//     (internal/queue), so it never meets a standing queue.
//
// One deliberate deviation from Eq. (12): the paper multiplies the
// transition cost by a large constant M outside the window. Since the EV
// model yields *negative* costs under regenerative braking, a
// multiplicative penalty would reward violations on regen segments; we use
// an additive penalty (PenaltyAh per violating arrival) which preserves the
// intended ordering for all cost signs.
package dp

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"

	"evvo/internal/ev"
	"evvo/internal/profile"
	"evvo/internal/queue"
	"evvo/internal/road"
)

// WindowsFunc returns the admissible absolute arrival-time windows at a
// signalized control, or nil when arrivals are unconstrained.
type WindowsFunc func(c road.Control) []queue.Window

// Config parameterizes Optimize. Zero fields take the documented defaults.
type Config struct {
	// Route is the drive geometry (required).
	Route *road.Route
	// Vehicle is the EV energy model (required; validated).
	Vehicle ev.Params
	// DepartTime is the absolute departure time in seconds; signal windows
	// are expressed in absolute time.
	DepartTime float64

	// MaxTripSec bounds the trip duration (default 600).
	MaxTripSec float64
	// DsM is the position discretization Δs in metres (default 50).
	DsM float64
	// DvMS is the velocity discretization Δv in m/s (default 0.5).
	DvMS float64
	// DtSec is the elapsed-time discretization Δt in seconds (default 1).
	DtSec float64

	// AccelMaxMS2 and DecelMaxMS2 are the acceleration bounds (both
	// positive magnitudes; defaults 2.5 and 1.5, the paper's comfort range).
	AccelMaxMS2, DecelMaxMS2 float64

	// PenaltyAh is the additive cost for arriving at a signal outside its
	// window (default 1.0 Ah, far above any trip's total).
	PenaltyAh float64
	// TimeWeightAhPerSec prices trip time so the optimizer does not crawl
	// to the time budget: the paper's method does not increase trip time
	// (Fig. 8), and its reference [2] bounds total travel time in the same
	// way. The default 0.0008 Ah/s puts the unconstrained optimum just
	// under the US-25 40 km/h minimum band (so the band binds and the EV
	// cruises its lower edge, as the paper's Fig. 6(b) profile does),
	// while still pricing a crawl out of ramp zones. Set negative to
	// force exactly 0.
	TimeWeightAhPerSec float64
	// WindowMarginSec shrinks each window's start to absorb the DP's
	// time-quantization drift (default 1 s).
	WindowMarginSec float64
	// WindowEndMarginSec shrinks each window's end. Arriving near a
	// window's end is fragile in execution — any traffic-induced delay
	// tips the arrival into the following red — so robust deployments set
	// this above the expected execution drift. Defaults to
	// WindowMarginSec.
	WindowEndMarginSec float64
	// StopDwellSec is the dwell at each stop sign (default 0, matching the
	// paper's Eq. 7c which only pins v = 0).
	StopDwellSec float64

	// Windows supplies arrival windows per signal; nil ignores signals.
	Windows WindowsFunc

	// CoarseRefine, when Factor ≥ 2, enables the coarse-to-fine
	// approximate-DP fast path (refine.go): solve on a velocity grid
	// coarsened by Factor, then re-solve the exact grid restricted to a
	// corridor around the coarse winner. Results carry a Refined
	// diagnostic; the error contract is documented in DESIGN.md §12.
	CoarseRefine CoarseRefine

	// Workers bounds the goroutines used for the per-stage relaxation.
	// 0 uses runtime.GOMAXPROCS(0); 1 forces a serial pass. Any worker
	// count produces bit-identical results (see parallel.go), so this is
	// purely a throughput knob.
	Workers int
}

// DefaultDvMS is the default velocity discretization Δv in m/s, exported so
// callers deriving coarsened grids from a zero-valued Config (the cloud's
// degradation ladder) scale from the same base.
const DefaultDvMS = 0.5

func (c *Config) applyDefaults() {
	if c.MaxTripSec == 0 {
		c.MaxTripSec = 600
	}
	if c.DsM == 0 {
		c.DsM = 50
	}
	if c.DvMS == 0 {
		c.DvMS = DefaultDvMS
	}
	if c.DtSec == 0 {
		c.DtSec = 1
	}
	if c.AccelMaxMS2 == 0 {
		c.AccelMaxMS2 = 2.5
	}
	if c.DecelMaxMS2 == 0 {
		c.DecelMaxMS2 = 1.5
	}
	if c.PenaltyAh == 0 {
		c.PenaltyAh = 1.0
	}
	switch {
	case c.TimeWeightAhPerSec == 0:
		c.TimeWeightAhPerSec = 0.0008
	case c.TimeWeightAhPerSec < 0:
		c.TimeWeightAhPerSec = 0
	}
	if c.WindowMarginSec == 0 {
		c.WindowMarginSec = 1.0
	}
	if c.WindowEndMarginSec == 0 {
		c.WindowEndMarginSec = c.WindowMarginSec
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

func (c *Config) validate() error {
	if c.Route == nil {
		return fmt.Errorf("dp: config needs a route")
	}
	if err := c.Vehicle.Validate(); err != nil {
		return fmt.Errorf("dp: %w", err)
	}
	switch {
	case c.MaxTripSec <= 0:
		return fmt.Errorf("dp: max trip %.1f s must be positive", c.MaxTripSec)
	case c.DsM <= 0 || c.DvMS <= 0 || c.DtSec <= 0:
		return fmt.Errorf("dp: grid Δs=%.2f Δv=%.2f Δt=%.2f must all be positive", c.DsM, c.DvMS, c.DtSec)
	case c.AccelMaxMS2 <= 0 || c.DecelMaxMS2 <= 0:
		return fmt.Errorf("dp: accel bounds %.2f/%.2f must be positive", c.AccelMaxMS2, c.DecelMaxMS2)
	case c.StopDwellSec < 0:
		return fmt.Errorf("dp: stop dwell %.1f s must be non-negative", c.StopDwellSec)
	case c.WindowMarginSec < 0 || c.WindowEndMarginSec < 0:
		return fmt.Errorf("dp: window margins %.1f/%.1f s must be non-negative", c.WindowMarginSec, c.WindowEndMarginSec)
	case c.MaxTripSec/c.DtSec > 65534:
		return fmt.Errorf("dp: %.0f time buckets exceed the backpointer packing limit; raise Δt or lower MaxTripSec", c.MaxTripSec/c.DtSec)
	case c.Workers < 0:
		return fmt.Errorf("dp: worker count %d must be non-negative", c.Workers)
	case c.CoarseRefine.Factor < 0 || c.CoarseRefine.Factor == 1:
		return fmt.Errorf("dp: coarse-refine factor %d must be 0 (off) or ≥ 2", c.CoarseRefine.Factor)
	case c.CoarseRefine.CorridorMS < 0:
		return fmt.Errorf("dp: coarse-refine corridor %.2f m/s must be non-negative", c.CoarseRefine.CorridorMS)
	}
	return nil
}

// maxPackedJ is the largest velocity index the int32 backpointer packing
// (j<<16 | k) can carry: one more and the shifted index reaches the sign
// bit, silently corrupting reconstruction. Optimize validates the velocity
// grid against it; the time buckets are bounded by validate above.
const maxPackedJ = 1<<15 - 1

// SignalArrival reports when the optimized profile reaches a signal and
// whether that arrival fell inside the admissible window.
type SignalArrival struct {
	Name       string
	PositionM  float64
	ArrivalSec float64 // absolute time
	InWindow   bool    // true when unconstrained
}

// Result is an optimized velocity profile with diagnostics.
type Result struct {
	// Profile is the optimal trajectory (absolute times).
	Profile *profile.Profile
	// ChargeAh is the modelled pack charge of the trajectory.
	ChargeAh float64
	// TripSec is the trip duration.
	TripSec float64
	// Arrivals describes each signal crossing.
	Arrivals []SignalArrival
	// Penalized is true when any signal arrival missed its window (the
	// trajectory is then best-effort, not queue-free).
	Penalized bool
	// StatesExpanded counts DP relaxations, for benchmarks. For a
	// coarse-refined result this is the fine (corridor) pass only; the
	// coarse pass's count is in Refined.
	StatesExpanded int
	// Refined is non-nil when the coarse-to-fine fast path produced this
	// result (Config.CoarseRefine, refine.go).
	Refined *RefineDiag
}

const inf = math.MaxFloat64

// stageInfo is the per-position discretized route description.
type stageInfo struct {
	posM       float64
	minJ, maxJ int           // admissible velocity-index band
	forceZero  bool          // stop sign / source / destination
	signal     *road.Control // non-nil if a signal sits here
	dwellSec   float64       // dwell after stopping here (stop signs)
}

// Optimize runs the DP and returns the minimum-charge velocity profile.
//
//lint:certify pure
func Optimize(cfg Config) (*Result, error) {
	return OptimizeCtx(context.Background(), cfg)
}

// dpGrid is the discretization shared by the monolithic DP and the
// segment-table solver (segment.go): both must derive the exact same grid
// from a Config or the stitched results would not be comparable to the
// monolithic ones.
type dpGrid struct {
	n    int     // stage count (route split into n equal Δs pieces)
	ds   float64 // realized Δs after rounding the route length onto n
	jMax int     // velocity indexes run 0..jMax
	kMax int     // time buckets run 0..kMax
}

// buildGrid derives the (position, velocity, time) discretization from a
// defaulted, validated Config.
func buildGrid(cfg *Config) (dpGrid, error) {
	r := cfg.Route
	n := int(math.Round(r.LengthM() / cfg.DsM))
	if n < 2 {
		n = 2
	}
	ds := r.LengthM() / float64(n)

	// Velocity grid: 0..jMax covering the fastest zone on the route. The
	// scan probes zone boundaries as well as stage points so a zone shorter
	// than Δs cannot shrink the grid (see routeMaxSpeed).
	maxSpeed := routeMaxSpeed(r, n, ds)
	jMax := int(math.Floor(maxSpeed/cfg.DvMS + 1e-9))
	if jMax < 1 {
		return dpGrid{}, fmt.Errorf("dp: velocity grid empty: max speed %.2f m/s below Δv %.2f", maxSpeed, cfg.DvMS)
	}
	if jMax > maxPackedJ {
		return dpGrid{}, fmt.Errorf("dp: %d velocity levels exceed the backpointer packing limit (%d); raise Δv above %.5f m/s for max speed %.2f m/s",
			jMax+1, maxPackedJ+1, maxSpeed/float64(maxPackedJ), maxSpeed)
	}
	kMax := int(math.Ceil(cfg.MaxTripSec / cfg.DtSec))
	return dpGrid{n: n, ds: ds, jMax: jMax, kMax: kMax}, nil
}

// shrunkWindows collects the admissible windows per signal stage,
// margin-shrunk and sorted by start time — the relaxation's commit loop
// walks them with a cursor and relies on the order. A stage present in the
// map with an empty slice means no admissible arrival at all (oversaturated
// queue): every arrival there is penalized. Stages absent from the map are
// unconstrained.
func shrunkWindows(cfg *Config, stages []stageInfo) map[int][]queue.Window {
	windows := make(map[int][]queue.Window)
	for i, st := range stages {
		if st.signal == nil || cfg.Windows == nil {
			continue
		}
		raw := cfg.Windows(*st.signal)
		if raw == nil {
			continue // unconstrained signal
		}
		ws := make([]queue.Window, 0, len(raw))
		for _, w := range raw {
			s, e := w.Start+cfg.WindowMarginSec, w.End-cfg.WindowEndMarginSec
			if e > s {
				ws = append(ws, queue.Window{Start: s, End: e})
			}
		}
		sort.Slice(ws, func(a, b int) bool { return ws[a].Start < ws[b].Start })
		windows[i] = ws
	}
	return windows
}

// OptimizeCtx is Optimize with cooperative cancellation. The context is
// checked at every stage boundary of the relaxation loop, so cancellation
// is observed within at most one stage's worth of work; the per-stage
// worker goroutines are always joined before the check, so an abandoned
// run leaks no goroutines and leaves no shared state behind (every array
// the pass touches is owned by this call). The returned error is ctx.Err()
// verbatim, so callers can match context.Canceled / DeadlineExceeded with
// errors.Is.
//
//lint:certify pure
func OptimizeCtx(ctx context.Context, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.CoarseRefine.Factor >= 2 {
		return optimizeRefined(ctx, cfg)
	}
	res, _, err := optimizeCore(ctx, cfg, nil)
	return res, err
}

// optimizeCore runs the full DP on an already defaulted and validated
// Config, ignoring cfg.CoarseRefine. corr, when non-nil, restricts each
// stage's velocity band (the refine pass); nil solves the exact problem.
// Alongside the Result it returns the winning velocity-index sequence, the
// input the refine pass's corridor is built from.
func optimizeCore(ctx context.Context, cfg Config, corr *corridor) (*Result, []int, error) {
	g, err := buildGrid(&cfg)
	if err != nil {
		return nil, nil, err
	}
	n, ds, jMax, kMax := g.n, g.ds, g.jMax, g.kMax

	stages, err := buildStages(cfg, n, ds, jMax)
	if err != nil {
		return nil, nil, err
	}
	if corr != nil {
		corr.apply(stages)
	}

	windows := shrunkWindows(&cfg, stages)

	// Value arrays, flattened [j*(kMax+1)+k]. The time bucket k discretizes
	// the state space; exact carries the true elapsed time of each bucket's
	// best path so window checks and the assembled profile do not suffer
	// accumulated rounding drift. Only two stages are ever alive at once —
	// the stage being read and the stage being written — so cost and exact
	// are double-buffered rather than allocated per stage; backpointers are
	// needed for the final walk and live in one flat slab (stage i's
	// incoming pointers at (i-1)*width). Cells the relaxation never writes
	// keep stale exact values from two stages back; they are unreachable,
	// because every read is guarded by the freshly inf-seeded cost.
	kw := kMax + 1
	width := (jMax + 1) * kw
	slabs := grabSlabs(width, n*width, cfg.Workers, jMax+1, kw)
	defer slabPool.Put(slabs)
	curCost := slabs.vals[0*width : 1*width]
	nxtCost := slabs.vals[1*width : 2*width]
	curExact := slabs.vals[2*width : 3*width]
	nxtExact := slabs.vals[3*width : 4*width]
	backs := slabs.backs
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	fillF64(curCost, inf)
	curCost[0] = 0  // v=0, elapsed=0 at the source
	curExact[0] = 0 // the one exact cell read without a commit having written it

	// Hoisted transition physics: the traversal time, charge ζ and power
	// mask of a (j, j2) transition depend only on the speed pair and the
	// stage grade — never on the time bucket — so they are computed once
	// per pair per distinct grade instead of once per relaxation
	// (a factor-kMax redundancy in the innermost loop otherwise).
	bands := newAccelBands(&cfg, ds, jMax)
	trans := newTransitionCache(&cfg, ds, jMax, bands)
	pool := slabs.pool
	pool.seed(0, 0, kw)

	expanded := 0
	for i := 0; i < n; i++ {
		// Stage boundary: the previous stage's workers are already joined
		// (stageRelax.run waits on its WaitGroup), so returning here
		// abandons only this call's private arrays.
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		cur, nxt := stages[i], stages[i+1]
		ws, hasWin := windows[i+1]
		// Only the destination band's columns are ever written or read back
		// (the next stage's predecessor scan stays inside it), so the
		// inf/-1 seeding is banded too — on recycled slabs the cells outside
		// hold stale values that no read can reach.
		bLo, bHi := nxt.minJ*kw, (nxt.maxJ+1)*kw
		fillF64(nxtCost[bLo:bHi], inf)
		fillI32(backs[i*width+bLo:i*width+bHi], -1)
		sr := &stageRelax{
			kMax: kMax, tw: jMax + 1,
			curMinJ: cur.minJ, curMaxJ: cur.maxJ,
			nxtMinJ: nxt.minJ, nxtMaxJ: nxt.maxJ,
			bands:   bands,
			tr:      trans.forGrade(cfg.Route.GradeAt(cur.posM + ds/2)),
			dTauT:   trans.dTauT,
			curCost: curCost, curExact: curExact,
			nxtCost: nxtCost, nxtExact: nxtExact,
			nxtBack: backs[i*width : (i+1)*width],
			dwell:   cur.dwellSec, timeW: cfg.TimeWeightAhPerSec,
			maxTrip: cfg.MaxTripSec, invDt: 1 / cfg.DtSec,
			depart: cfg.DepartTime, penalty: cfg.PenaltyAh,
			ws: ws, hasWin: hasWin,
		}
		expanded += sr.run(cfg.Workers, pool)
		curCost, nxtCost = nxtCost, curCost
		curExact, nxtExact = nxtExact, curExact
		pool.advance()
	}

	// Destination: v = 0, best over arrival buckets (cur now holds stage n).
	bestK, bestCost := -1, inf
	for k := 0; k <= kMax; k++ {
		if c := curCost[k]; c < bestCost {
			bestCost, bestK = c, k
		}
	}
	if bestK < 0 {
		return nil, nil, fmt.Errorf("dp: no feasible trajectory within %.0f s (grid Δs=%.0f Δv=%.2f Δt=%.1f)",
			cfg.MaxTripSec, ds, cfg.DvMS, cfg.DtSec)
	}

	// Reconstruct velocity sequence.
	js := make([]int, n+1)
	ks := make([]int, n+1)
	js[n], ks[n] = 0, bestK
	for i := n; i > 0; i-- {
		bp := backs[(i-1)*width+js[i]*kw+ks[i]]
		if bp < 0 {
			return nil, nil, fmt.Errorf("dp: broken backpointer at stage %d", i)
		}
		js[i-1], ks[i-1] = int(bp>>16), int(bp&0xffff)
	}

	res, err := assemble(cfg, stages, js, ds, windows, bestCost, expanded)
	if err != nil {
		return nil, nil, err
	}
	return res, js, nil
}

// assemble rebuilds the continuous-time profile and diagnostics from the
// optimal velocity sequence.
func assemble(cfg Config, stages []stageInfo, js []int, ds float64,
	windows map[int][]queue.Window, _ float64, expanded int) (*Result, error) {

	n := len(stages) - 1
	var pts []profile.Point
	t := cfg.DepartTime
	var charge float64
	var arrivals []SignalArrival
	penalized := false

	pts = append(pts, profile.Point{T: t, Pos: stages[0].posM, V: 0})
	for i := 0; i < n; i++ {
		v, v2 := float64(js[i])*cfg.DvMS, float64(js[i+1])*cfg.DvMS
		if d := stages[i].dwellSec; d > 0 {
			t += d
			pts = append(pts, profile.Point{T: t, Pos: stages[i].posM, V: 0})
		}
		vAvg := (v + v2) / 2
		if vAvg <= 0 {
			return nil, fmt.Errorf("dp: reconstructed zero-speed segment at stage %d", i)
		}
		dTau := ds / vAvg
		acc := (v2 - v) / dTau
		charge += cfg.Vehicle.Charge(vAvg, acc, cfg.Route.GradeAt(stages[i].posM+ds/2), dTau)
		// Emit the constant-acceleration kinematics densely (≈10 m steps)
		// so position-indexed consumers (simulator replay, plotting) see
		// the physical v(s) = sqrt(v² + 2a·s) curve rather than a single
		// coarse linear wedge across the whole Δs.
		// (With acceleration constant in time, v(s)² = v² + 2·acc·s and the
		// sub-segment time is (v(s) − v)/acc.)
		nSub := int(math.Ceil(ds / 10))
		for k := 1; k < nSub; k++ {
			sOff := ds * float64(k) / float64(nSub)
			vk := math.Sqrt(math.Max(0, v*v+2*acc*sOff))
			var tk float64
			if math.Abs(acc) < 1e-12 {
				tk = sOff / vAvg
			} else {
				tk = (vk - v) / acc
			}
			pts = append(pts, profile.Point{T: t + tk, Pos: stages[i].posM + sOff, V: vk})
		}
		t += dTau
		pts = append(pts, profile.Point{T: t, Pos: stages[i+1].posM, V: v2})

		if sig := stages[i+1].signal; sig != nil {
			in := true
			if ws, ok := windows[i+1]; ok {
				in = inAnyWindow(ws, t)
			}
			if !in {
				penalized = true
			}
			arrivals = append(arrivals, SignalArrival{
				Name: sig.Name, PositionM: sig.PositionM, ArrivalSec: t, InWindow: in,
			})
		}
	}
	prof, err := profile.New(pts)
	if err != nil {
		return nil, fmt.Errorf("dp: assembling profile: %w", err)
	}
	return &Result{
		Profile:        prof,
		ChargeAh:       charge,
		TripSec:        t - cfg.DepartTime,
		Arrivals:       arrivals,
		Penalized:      penalized,
		StatesExpanded: expanded,
	}, nil
}

func inAnyWindow(ws []queue.Window, t float64) bool {
	for _, w := range ws {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// buildStages discretizes the route: speed bands per stage, zero-forcing at
// the source, destination and stop signs, ramp-zone relaxation of minimum
// speed limits near mandatory stops, and signal annotations.
func buildStages(cfg Config, n int, ds float64, jMax int) ([]stageInfo, error) {
	r := cfg.Route
	stages := make([]stageInfo, n+1)

	// Zero points: places the EV must be at rest.
	zeroPos := []float64{0, r.LengthM()}
	for _, c := range r.StopSigns() {
		zeroPos = append(zeroPos, c.PositionM)
	}
	// Ramp distance: room to get between 0 and the local minimum band.
	rampDist := func(vmin float64) float64 {
		up := vmin * vmin / (2 * cfg.AccelMaxMS2)
		down := vmin * vmin / (2 * cfg.DecelMaxMS2)
		return math.Max(up, down) + ds
	}

	snap := func(pos float64) int { return int(math.Round(pos / ds)) }

	for i := 0; i <= n; i++ {
		pos := math.Min(float64(i)*ds, r.LengthM())
		mn, mx := r.SpeedLimits(math.Min(pos, r.LengthM()-1e-9))
		st := stageInfo{posM: pos}
		near := false
		for _, z := range zeroPos {
			if math.Abs(pos-z) <= rampDist(mn) {
				near = true
				break
			}
		}
		if near {
			mn = 0
		}
		st.minJ = int(math.Ceil(mn/cfg.DvMS - 1e-9))
		st.maxJ = int(math.Floor(mx/cfg.DvMS + 1e-9))
		if st.maxJ > jMax {
			st.maxJ = jMax
		}
		if st.minJ > st.maxJ {
			st.minJ = st.maxJ
		}
		stages[i] = st
	}

	used := map[int]string{0: "source", n: "destination"}
	stages[0].forceZero, stages[n].forceZero = true, true
	stages[0].minJ, stages[0].maxJ = 0, 0
	stages[n].minJ, stages[n].maxJ = 0, 0

	for _, c := range r.Controls() {
		i := snap(c.PositionM)
		if i <= 0 || i >= n {
			return nil, fmt.Errorf("dp: control %q at %.0f m snaps to route endpoint; refine Δs", c.Name, c.PositionM)
		}
		if prev, ok := used[i]; ok {
			return nil, fmt.Errorf("dp: control %q collides with %s at stage %d; refine Δs below %.0f m", c.Name, prev, i, ds)
		}
		used[i] = c.Name
		switch c.Kind {
		case road.ControlStopSign:
			stages[i].forceZero = true
			stages[i].minJ, stages[i].maxJ = 0, 0
			stages[i].dwellSec = cfg.StopDwellSec
		case road.ControlSignal:
			sig := c
			stages[i].signal = &sig
		}
	}
	return stages, nil
}
