// Cross-node exchange format for segment tables (DESIGN.md §13).
//
// A cluster of cloudd nodes shards segment-table ownership by route key:
// the owner builds the tables once and its peers fetch or receive replicas
// instead of re-running the per-segment DP solves. Only the *solved*
// artifact travels — the crossings. Everything derivable from the config
// (grid, stages, bands) is rebuilt locally in microseconds by the
// importer, which keeps the wire format small and, more importantly, makes
// the import verifiable: the receiver recomputes the grid fingerprint from
// its own route registration and config and refuses tables built on
// different physics, so a misconfigured peer can never poison the cache
// with tables that stitch incorrect plans.
package dp

import (
	"fmt"
	"hash/fnv"
	"math"
)

// TablesWire is the serializable form of RouteTables. All fields are
// exported and free of function values and pointers so encoding/gob and
// encoding/json both handle it.
type TablesWire struct {
	// Fingerprint identifies the grid the tables were built on: the
	// grid-defining config fields plus the discretized route the solver
	// actually consumed (per-stage bands, signals, dwells, grades). Import
	// recomputes it locally and rejects mismatches.
	Fingerprint uint64
	Specs       []SegmentSpec
	Entries     [][]EntryWire
	// SegmentSolves is the build cost the owner paid, carried along so an
	// importing node's reuse accounting can report it.
	SegmentSolves int
	// RefineMS is the resolved coarse-refine corridor half-width (0 for
	// exact builds).
	RefineMS float64
}

// EntryWire mirrors entryTable.
type EntryWire struct {
	EntryJ    int
	Crossings []CrossingWire
}

// CrossingWire mirrors crossing.
type CrossingWire struct {
	ExitJ  int
	DurSec float64
	CostAh float64
	Path   []uint16
}

// Export converts the tables to their wire form. The crossing paths are
// copied, so the wire value stays valid however long the caller holds it.
func (rt *RouteTables) Export() *TablesWire {
	w := &TablesWire{
		Fingerprint:   fingerprintTables(&rt.cfg, rt.grid, rt.stages),
		Specs:         rt.Segments(),
		SegmentSolves: rt.segmentSolves,
		RefineMS:      rt.refineMS,
	}
	w.Entries = make([][]EntryWire, len(rt.entries))
	for s, ets := range rt.entries {
		w.Entries[s] = make([]EntryWire, len(ets))
		for e, et := range ets {
			ew := EntryWire{EntryJ: et.entryJ, Crossings: make([]CrossingWire, len(et.crossings))}
			for c, cr := range et.crossings {
				path := make([]uint16, len(cr.path))
				copy(path, cr.path)
				ew.Crossings[c] = CrossingWire{ExitJ: cr.exitJ, DurSec: cr.durSec, CostAh: cr.costAh, Path: path}
			}
			w.Entries[s][e] = ew
		}
	}
	return w
}

// GridFingerprint computes the fingerprint a build (or import) under cfg
// would carry, without solving anything. Callers use it to label caches.
func GridFingerprint(cfg Config) (uint64, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	g, err := buildGrid(&cfg)
	if err != nil {
		return 0, err
	}
	stages, err := buildStages(cfg, g.n, g.ds, g.jMax)
	if err != nil {
		return 0, err
	}
	return fingerprintTables(&cfg, g, stages), nil
}

// ImportRouteTables reconstructs servable RouteTables from their wire form
// under the local cfg (the receiver's registered route and DP template).
// The grid and stages are rebuilt locally; the wire supplies only the
// solved crossings. The import is rejected when the fingerprints disagree
// (different route geometry, vehicle, or grid) or when the payload is
// structurally inconsistent with the local grid — a truncated or corrupted
// replica must never become a serving table.
func ImportRouteTables(cfg Config, w *TablesWire) (*RouteTables, error) {
	if w == nil {
		return nil, fmt.Errorf("dp: nil table wire")
	}
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g, err := buildGrid(&cfg)
	if err != nil {
		return nil, err
	}
	stages, err := buildStages(cfg, g.n, g.ds, g.jMax)
	if err != nil {
		return nil, err
	}
	if local := fingerprintTables(&cfg, g, stages); local != w.Fingerprint {
		return nil, fmt.Errorf("dp: imported tables were built on a different grid (fingerprint %016x, local %016x)",
			w.Fingerprint, local)
	}

	// The fingerprint pins the physics; the checks below pin the payload's
	// structure against the locally rebuilt segmentation.
	bounds := []int{0}
	for i, st := range stages {
		if st.signal != nil {
			bounds = append(bounds, i)
		}
	}
	bounds = append(bounds, g.n)
	if len(w.Specs) != len(bounds)-1 || len(w.Entries) != len(w.Specs) {
		return nil, fmt.Errorf("dp: imported tables carry %d segments (%d entry sets), local route splits into %d",
			len(w.Specs), len(w.Entries), len(bounds)-1)
	}
	rt := &RouteTables{cfg: cfg, key: gridKeyOf(&cfg), stages: stages, grid: g,
		segmentSolves: w.SegmentSolves, refineMS: w.RefineMS}
	for s := range w.Specs {
		a, b := bounds[s], bounds[s+1]
		spec := w.Specs[s]
		if spec.StartStage != a || spec.EndStage != b {
			return nil, fmt.Errorf("dp: imported segment %d spans stages [%d,%d], local split says [%d,%d]",
				s, spec.StartStage, spec.EndStage, a, b)
		}
		m := b - a
		ets := make([]entryTable, 0, len(w.Entries[s]))
		prevJ := -1
		for _, ew := range w.Entries[s] {
			if ew.EntryJ <= prevJ || ew.EntryJ < stages[a].minJ || ew.EntryJ > stages[a].maxJ {
				return nil, fmt.Errorf("dp: imported segment %d entry velocity %d outside band [%d,%d] or out of order",
					s, ew.EntryJ, stages[a].minJ, stages[a].maxJ)
			}
			prevJ = ew.EntryJ
			et := entryTable{entryJ: ew.EntryJ, crossings: make([]crossing, len(ew.Crossings))}
			for c, cw := range ew.Crossings {
				if cw.ExitJ < stages[b].minJ || cw.ExitJ > stages[b].maxJ {
					return nil, fmt.Errorf("dp: imported crossing exits at velocity %d outside band [%d,%d]",
						cw.ExitJ, stages[b].minJ, stages[b].maxJ)
				}
				if len(cw.Path) != m+1 {
					return nil, fmt.Errorf("dp: imported crossing path has %d stages, segment spans %d", len(cw.Path), m+1)
				}
				if !(cw.DurSec >= 0) || !(cw.CostAh < math.MaxFloat64) || math.IsNaN(cw.CostAh) {
					return nil, fmt.Errorf("dp: imported crossing has non-finite duration/cost (%g s, %g Ah)",
						cw.DurSec, cw.CostAh)
				}
				path := make([]uint16, len(cw.Path))
				copy(path, cw.Path)
				et.crossings[c] = crossing{exitJ: cw.ExitJ, durSec: cw.DurSec, costAh: cw.CostAh, path: path}
			}
			ets = append(ets, et)
		}
		rt.specs = append(rt.specs, spec)
		rt.entries = append(rt.entries, ets)
	}
	return rt, nil
}

// fingerprintTables hashes everything the segment solver consumed: the
// grid-defining config fields, the vehicle, and the discretized stages
// (bands, zero points, signals with their timing, dwells, per-stage
// grades). Two nodes agree on the fingerprint exactly when their registered
// routes and DP templates would build interchangeable tables.
func fingerprintTables(cfg *Config, g dpGrid, stages []stageInfo) uint64 {
	h := fnv.New64a()
	put := func(vals ...any) { _, _ = fmt.Fprintln(h, vals...) } // hash.Hash.Write never fails
	put("grid", g.n, math.Float64bits(g.ds), g.jMax, g.kMax)
	put("cfg", math.Float64bits(cfg.DsM), math.Float64bits(cfg.DvMS), math.Float64bits(cfg.DtSec),
		math.Float64bits(cfg.MaxTripSec), math.Float64bits(cfg.AccelMaxMS2), math.Float64bits(cfg.DecelMaxMS2),
		math.Float64bits(cfg.TimeWeightAhPerSec), math.Float64bits(cfg.StopDwellSec),
		cfg.CoarseRefine.Factor, math.Float64bits(cfg.CoarseRefine.CorridorMS))
	put("vehicle", cfg.Vehicle)
	for i, st := range stages {
		put("stage", i, math.Float64bits(st.posM), st.minJ, st.maxJ, st.forceZero, math.Float64bits(st.dwellSec))
		if st.signal != nil {
			put("signal", st.signal.Name, math.Float64bits(st.signal.PositionM),
				math.Float64bits(st.signal.Timing.RedSec), math.Float64bits(st.signal.Timing.GreenSec),
				math.Float64bits(st.signal.Timing.OffsetSec))
		}
		if i < len(stages)-1 {
			put("grade", math.Float64bits(cfg.Route.GradeAt(st.posM+g.ds/2)))
		}
	}
	return h.Sum64()
}
