package dp

import (
	"fmt"
	"math"

	"evvo/internal/profile"
	"evvo/internal/queue"
	"evvo/internal/road"
)

// GreedyPlan is a fast heuristic alternative to Optimize, in the spirit of
// the paper's reference [15] (Qiu et al., "Towards Green Transportation:
// Fast Vehicle Velocity Optimization"): instead of searching the full
// (position, velocity, time) state space it plans leg by leg — between
// mandatory stops it picks, for each signal, the cruise speed whose arrival
// lands in an admissible window at the lowest weighted cost, building the
// trajectory from analytic accelerate–cruise–decelerate ramps.
//
// Complexity is O(signals × windows × candidate speeds) instead of the
// DP's millions of state relaxations; the price is optimality — see
// BenchmarkExtGreedyVsDP for the measured quality gap.
func GreedyPlan(cfg Config) (*Result, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.Route

	// Leg targets: every signal (pass at cruise speed, inside a window)
	// and every mandatory stop (arrive at rest), in position order.
	type target struct {
		pos     float64
		signal  *road.Control // nil for stops
		dwell   float64
		windows []queue.Window
	}
	var targets []target
	for _, c := range r.Controls() {
		c := c
		switch c.Kind {
		case road.ControlStopSign:
			targets = append(targets, target{pos: c.PositionM, dwell: cfg.StopDwellSec})
		case road.ControlSignal:
			tg := target{pos: c.PositionM, signal: &c}
			if cfg.Windows != nil {
				if raw := cfg.Windows(c); raw != nil {
					tg.windows = make([]queue.Window, 0, len(raw))
					for _, w := range raw {
						s, e := w.Start+cfg.WindowMarginSec, w.End-cfg.WindowEndMarginSec
						if e > s {
							tg.windows = append(tg.windows, queue.Window{Start: s, End: e})
						}
					}
				}
			}
			targets = append(targets, tg)
		}
	}
	targets = append(targets, target{pos: r.LengthM()})

	pts := []profile.Point{{T: cfg.DepartTime, Pos: 0, V: 0}}
	now, pos, v := cfg.DepartTime, 0.0, 0.0
	penalized := false
	var arrivals []SignalArrival

	for _, tg := range targets {
		dist := tg.pos - pos
		if dist <= 0 {
			continue
		}
		mn, mx := legSpeedBand(r, pos, tg.pos)
		exit := 0.0 // stops and the destination: arrive at rest
		if tg.signal != nil {
			// Pass through the signal at the cruise speed itself.
			exit = -1
		}

		best := legChoice{cost: math.Inf(1)}
		for vc := mn; vc <= mx+1e-9; vc += 0.25 {
			if vc < 0.5 {
				continue
			}
			ex := exit
			if ex < 0 {
				ex = vc
			}
			leg, err := buildLeg(cfg, pos, v, vc, ex, dist)
			if err != nil {
				continue
			}
			arr := now + leg.durSec
			cost := leg.chargeAh + cfg.TimeWeightAhPerSec*leg.durSec
			miss := 0.0
			if tg.signal != nil && tg.windows != nil {
				if d := windowMiss(tg.windows, arr); d > 0 {
					// Prefer waiting for the window start by slowing:
					// penalize misses proportionally, falling back to the
					// full penalty when nothing lands inside.
					cost += cfg.PenaltyAh
					miss = d
				}
			}
			//lint:allow floateq exact tie-break between identically computed costs; tolerance would blur the preference order
			if cost < best.cost || (cost == best.cost && miss < best.miss) {
				best = legChoice{leg: leg, cost: cost, miss: miss, cruise: vc}
			}
		}
		if math.IsInf(best.cost, 1) {
			return nil, fmt.Errorf("dp: greedy planner found no feasible leg to %.0f m", tg.pos)
		}
		for _, p := range best.leg.pts {
			pts = append(pts, profile.Point{T: now + p.T, Pos: pos + p.Pos, V: p.V})
		}
		now += best.leg.durSec
		pos = tg.pos
		v = best.leg.exit

		if tg.signal != nil {
			in := tg.windows == nil || windowMiss(tg.windows, now) == 0
			if !in {
				penalized = true
			}
			arrivals = append(arrivals, SignalArrival{
				Name: tg.signal.Name, PositionM: tg.pos, ArrivalSec: now, InWindow: in,
			})
		}
		if tg.signal == nil && tg.pos < r.LengthM() && tg.dwell > 0 {
			now += tg.dwell
			pts = append(pts, profile.Point{T: now, Pos: pos, V: 0})
		}
	}

	prof, err := profile.New(pts)
	if err != nil {
		return nil, fmt.Errorf("dp: greedy profile: %w", err)
	}
	charge, err := prof.Energy(cfg.Vehicle, r.GradeAt)
	if err != nil {
		return nil, err
	}
	return &Result{
		Profile:   prof,
		ChargeAh:  charge,
		TripSec:   now - cfg.DepartTime,
		Arrivals:  arrivals,
		Penalized: penalized,
	}, nil
}

// legChoice is a candidate leg with its selection cost.
type legChoice struct {
	leg    legResult
	cost   float64
	miss   float64
	cruise float64
}

// legSpeedBand returns the intersection of speed bands over [from, to):
// the cruise speed must be legal everywhere on the leg — at or above the
// strictest minimum (the acceleration/deceleration ramps are exempt, as in
// the DP's ramp zones) and at or below the strictest maximum.
func legSpeedBand(r *road.Route, from, to float64) (mn, mx float64) {
	mn, mx = 0.5, math.Inf(1)
	for pos := from; pos < to; pos += 25 {
		lo, hi := r.SpeedLimits(math.Min(pos, r.LengthM()-1e-9))
		if hi < mx {
			mx = hi
		}
		if lo > mn {
			mn = lo
		}
	}
	if mn > mx {
		mn = mx
	}
	return mn, mx
}

// legResult is an analytic accelerate–cruise–decelerate leg, with points
// relative to the leg's start (time and position both zero-based).
type legResult struct {
	pts      []profile.Point
	durSec   float64
	chargeAh float64
	exit     float64
}

// buildLeg constructs a trapezoidal speed leg of length dist entering at
// v0, cruising at vc, exiting at vExit, under cfg's acceleration bounds.
// It fails when the distance cannot accommodate the required ramps.
func buildLeg(cfg Config, startPos, v0, vc, vExit, dist float64) (legResult, error) {
	up, down := cfg.AccelMaxMS2, cfg.DecelMaxMS2
	rampIn := math.Abs(vc*vc-v0*v0) / (2 * rampRate(v0, vc, up, down))
	rampOut := math.Abs(vExit*vExit-vc*vc) / (2 * rampRate(vc, vExit, up, down))
	if rampIn+rampOut > dist {
		return legResult{}, fmt.Errorf("dp: leg too short for ramps")
	}
	cruise := dist - rampIn - rampOut

	var leg legResult
	tt, pp := 0.0, 0.0
	emit := func(vStart, vEnd, ds float64) {
		if ds <= 0 {
			return
		}
		n := int(math.Ceil(ds / 10))
		a := (vEnd*vEnd - vStart*vStart) / (2 * ds)
		for k := 1; k <= n; k++ {
			sOff := ds * float64(k) / float64(n)
			vk := math.Sqrt(math.Max(0, vStart*vStart+2*a*sOff))
			var dtk float64
			if math.Abs(a) < 1e-12 {
				dtk = sOff / math.Max(vStart, 1e-9)
			} else {
				dtk = (vk - vStart) / a
			}
			leg.pts = append(leg.pts, profile.Point{T: tt + dtk, Pos: pp + sOff, V: vk})
		}
		vAvg := (vStart + vEnd) / 2
		if math.Abs(a) < 1e-12 {
			tt += ds / math.Max(vAvg, 1e-9)
		} else {
			tt += (vEnd - vStart) / a
		}
		pp += ds
	}
	emit(v0, vc, rampIn)
	emit(vc, vc, cruise)
	emit(vc, vExit, rampOut)
	leg.durSec = tt
	leg.exit = vExit

	// Charge over the leg via the same segment arithmetic as the DP.
	grade := cfg.Route.GradeAt(startPos + dist/2)
	prev := profile.Point{}
	for _, p := range leg.pts {
		ds := p.Pos - prev.Pos
		dt := p.T - prev.T
		if ds > 0 && dt > 0 {
			vAvg := (prev.V + p.V) / 2
			leg.chargeAh += cfg.Vehicle.Charge(vAvg, (p.V-prev.V)/dt, grade, dt)
		}
		prev = p
	}
	return leg, nil
}

// rampRate picks the applicable acceleration magnitude for a speed change.
func rampRate(from, to, up, down float64) float64 {
	if to >= from {
		return up
	}
	return down
}

// windowMiss returns 0 when t lies in any window, otherwise the distance
// to the nearest window edge.
func windowMiss(ws []queue.Window, t float64) float64 {
	if len(ws) == 0 {
		return math.Inf(1)
	}
	best := math.Inf(1)
	for _, w := range ws {
		if w.Contains(t) {
			return 0
		}
		d := math.Min(math.Abs(t-w.Start), math.Abs(t-w.End))
		if d < best {
			best = d
		}
	}
	return best
}
