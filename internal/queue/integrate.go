package queue

import (
	"fmt"
	"math"

	"evvo/internal/road"
)

// RateFunc returns the vehicle arrival rate (veh/s) at absolute time t.
// Predictors (e.g. the SAE traffic model) are adapted to this signature.
type RateFunc func(t float64) float64

// ConstantRate returns a RateFunc with a fixed value.
func ConstantRate(vin float64) RateFunc {
	return func(float64) float64 { return vin }
}

// Sample is one step of an integrated queue trajectory.
type Sample struct {
	// T is absolute time (s).
	T float64
	// QueueVeh is the queue length in vehicles.
	QueueVeh float64
	// QueueM is the queue length in metres (vehicles × spacing).
	QueueM float64
	// InRate and OutRate are the instantaneous arrival and leaving rates
	// (veh/s) applied over the step ending at T.
	InRate, OutRate float64
	// Green reports the signal phase at T.
	Green bool
}

// Integrate simulates queue dynamics over [from, to) with step dt under a
// time-varying arrival rate. Unlike the closed-form Eq. (6), it carries
// residual queues across cycles, so oversaturated signals accumulate.
//
// Within each cycle the discharge capacity follows the VM model, with one
// refinement: the head's acceleration ramp restarts at each green onset only
// if a queue is present then.
func (m *Model) Integrate(vin RateFunc, from, to, dt float64) ([]Sample, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("queue: integration step %.3f s must be positive", dt)
	}
	if to <= from {
		return nil, fmt.Errorf("queue: integration window [%.1f, %.1f) is empty", from, to)
	}
	n := int(math.Ceil((to - from) / dt))
	out := make([]Sample, 0, n+1)
	q := 0.0 // vehicles
	for i := 0; i <= n; i++ {
		t := from + float64(i)*dt
		if t > to {
			t = to
		}
		green, into := m.Timing.PhaseAt(t)
		in := math.Max(0, vin(t))
		outRate := 0.0
		if green {
			capacity := m.DischargeCapacity(into)
			if q > 0 {
				outRate = capacity
			} else {
				outRate = math.Min(in, capacity)
			}
		}
		if i > 0 {
			q += (in - outRate) * dt
			if q < 0 {
				q = 0
			}
		}
		out = append(out, Sample{
			T: t, QueueVeh: q, QueueM: q * m.SpacingM,
			InRate: in, OutRate: outRate, Green: green,
		})
	}
	return out, nil
}

// ZeroWindowsIntegrated extracts zero-queue windows (absolute time) from an
// integrated trajectory: maximal green intervals where the queue is empty.
// tol is the queue size (vehicles) treated as empty.
func ZeroWindowsIntegrated(samples []Sample, tol float64) []Window {
	var out []Window
	open := false
	var start float64
	for _, s := range samples {
		empty := s.Green && s.QueueVeh <= tol
		switch {
		case empty && !open:
			open, start = true, s.T
		case !empty && open:
			open = false
			out = append(out, Window{Start: start, End: s.T})
		}
	}
	if open {
		out = append(out, Window{Start: start, End: samples[len(samples)-1].T})
	}
	return out
}

// CurrentModel is the prior-work queue model the paper compares against
// (ref. [9] / "current QL model"): arrival rate is assumed pre-known and
// queued vehicles reach v_min instantly at green onset, so the leaving rate
// is a step to v_min/d and the queue drains linearly. Used for Fig. 5.
type CurrentModel struct {
	Params
	Timing road.SignalTiming
}

// NewCurrentModel builds the prior-work comparison model.
func NewCurrentModel(p Params, timing road.SignalTiming) (*CurrentModel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	return &CurrentModel{Params: p, Timing: timing}, nil
}

// LeavingRate is the step leaving rate of the current model: v_min/d from
// green onset while a queue remains, V_in afterwards.
func (m *CurrentModel) LeavingRate(intoCycle, vin float64) float64 {
	if intoCycle < m.Timing.RedSec {
		return 0
	}
	if clear, ok := m.QueueClearTime(vin); ok && intoCycle >= clear {
		return vin
	}
	return m.VMinMS / m.SpacingM
}

// QueueLenM is the current model's linear drain: arrivals at d·V_in,
// discharge at v_min from green onset.
func (m *CurrentModel) QueueLenM(intoCycle, vin float64) float64 {
	if intoCycle < 0 {
		return 0
	}
	l := m.SpacingM * vin * intoCycle
	if intoCycle > m.Timing.RedSec {
		l -= m.VMinMS * (intoCycle - m.Timing.RedSec)
	}
	if l < 0 {
		return 0
	}
	return l
}

// QueueClearTime returns when the current model's queue reaches zero.
func (m *CurrentModel) QueueClearTime(vin float64) (float64, bool) {
	if vin <= 0 {
		return m.Timing.RedSec, true
	}
	den := m.VMinMS - m.SpacingM*vin
	if den <= 0 {
		return 0, false
	}
	t := m.VMinMS * m.Timing.RedSec / den
	if t > m.Timing.CycleSec() {
		return 0, false
	}
	return t, true
}
