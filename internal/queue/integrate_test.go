package queue

import (
	"math"
	"testing"

	"evvo/internal/road"
)

func TestIntegrateValidation(t *testing.T) {
	m := mustModel(t)
	if _, err := m.Integrate(ConstantRate(0.1), 0, 60, 0); err == nil {
		t.Fatal("zero dt accepted")
	}
	if _, err := m.Integrate(ConstantRate(0.1), 60, 60, 0.1); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestIntegrateMatchesClosedForm(t *testing.T) {
	// For constant V_in within one undersaturated cycle, the integrator must
	// track the closed-form Eq. (6) solution closely.
	m := mustModel(t)
	vin := paperVin()
	samples, err := m.Integrate(ConstantRate(vin), 0, 60, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for _, s := range samples {
		want := m.QueueLenM(s.T, vin)
		if e := math.Abs(s.QueueM - want); e > maxErr {
			maxErr = e
		}
	}
	// One spacing's worth of discretization error is acceptable.
	if maxErr > m.SpacingM {
		t.Fatalf("max |integrated − closed form| = %.3f m, want ≤ %.1f m", maxErr, m.SpacingM)
	}
}

func TestIntegrateQueueNeverNegative(t *testing.T) {
	m := mustModel(t)
	samples, err := m.Integrate(ConstantRate(paperVin()), 0, 600, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.QueueVeh < 0 {
			t.Fatalf("negative queue %v at t=%v", s.QueueVeh, s.T)
		}
	}
}

func TestIntegrateOversaturationAccumulates(t *testing.T) {
	m := mustModel(t)
	vin := m.VMinMS / m.SpacingM * 1.5 // arrivals beyond any discharge capacity
	samples, err := m.Integrate(ConstantRate(vin), 0, 600, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	endQueue := samples[len(samples)-1].QueueVeh
	midQueue := samples[len(samples)/2].QueueVeh
	if endQueue <= midQueue {
		t.Fatalf("oversaturated queue should grow: mid=%v end=%v", midQueue, endQueue)
	}
}

func TestIntegrateTimeVaryingRate(t *testing.T) {
	// Rate drops to zero halfway; the queue must eventually empty and stay
	// empty across later cycles.
	m := mustModel(t)
	rate := func(t float64) float64 {
		if t < 300 {
			return VehPerHour(300)
		}
		return 0
	}
	samples, err := m.Integrate(rate, 0, 900, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	last := samples[len(samples)-1]
	if last.QueueVeh != 0 {
		t.Fatalf("queue should fully drain after arrivals stop, got %v", last.QueueVeh)
	}
}

func TestIntegrateNegativeRateClamped(t *testing.T) {
	m := mustModel(t)
	samples, err := m.Integrate(ConstantRate(-5), 0, 60, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.InRate != 0 || s.QueueVeh != 0 {
			t.Fatalf("negative arrival rate should clamp to zero: %+v", s)
		}
	}
}

func TestZeroWindowsIntegratedMatchesClosedForm(t *testing.T) {
	m := mustModel(t)
	vin := paperVin()
	samples, err := m.Integrate(ConstantRate(vin), 0, 180, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	got := ZeroWindowsIntegrated(samples, 1e-6)
	want := m.ZeroWindowsAbs(vin, 0, 180)
	if len(got) != len(want) {
		t.Fatalf("got %d windows %+v, want %d %+v", len(got), got, len(want), want)
	}
	for i := range got {
		if math.Abs(got[i].Start-want[i].Start) > 0.5 || math.Abs(got[i].End-want[i].End) > 0.5 {
			t.Fatalf("window %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestZeroWindowsIntegratedOpenTail(t *testing.T) {
	m := mustModel(t)
	// End the trajectory inside a zero-queue green phase: window must close
	// at the last sample.
	samples, err := m.Integrate(ConstantRate(0), 0, 45, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ws := ZeroWindowsIntegrated(samples, 1e-6)
	if len(ws) != 1 {
		t.Fatalf("got %d windows, want 1: %+v", len(ws), ws)
	}
	if !almost(ws[0].End, 45, 0.2) {
		t.Fatalf("open tail window should end at trajectory end, got %+v", ws[0])
	}
}

func TestCurrentModelValidation(t *testing.T) {
	if _, err := NewCurrentModel(Params{}, testTiming()); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := NewCurrentModel(US25Params(), road.SignalTiming{RedSec: 10}); err == nil {
		t.Fatal("invalid timing accepted")
	}
}

func TestCurrentModelStepLeavingRate(t *testing.T) {
	cur, err := NewCurrentModel(US25Params(), testTiming())
	if err != nil {
		t.Fatal(err)
	}
	vin := paperVin()
	if r := cur.LeavingRate(10, vin); r != 0 {
		t.Fatalf("red leaving rate = %v, want 0", r)
	}
	// Immediately at green onset the step model is already at v_min/d.
	want := cur.VMinMS / cur.SpacingM
	if r := cur.LeavingRate(30.01, vin); !almost(r, want, 1e-9) {
		t.Fatalf("step leaving rate = %v, want %v", r, want)
	}
}

func TestCurrentModelQueueDrainsLinearly(t *testing.T) {
	cur, err := NewCurrentModel(US25Params(), testTiming())
	if err != nil {
		t.Fatal(err)
	}
	vin := paperVin()
	peak := cur.QueueLenM(30, vin)
	l1 := cur.QueueLenM(30.2, vin)
	l2 := cur.QueueLenM(30.4, vin)
	if !(peak > l1 && l1 > l2) {
		t.Fatalf("current-model queue should drain immediately: %v, %v, %v", peak, l1, l2)
	}
	// Drain slope = d·vin − v_min.
	slope := (l2 - l1) / 0.2
	if !almost(slope, cur.SpacingM*vin-cur.VMinMS, 1e-6) {
		t.Fatalf("drain slope = %v, want %v", slope, cur.SpacingM*vin-cur.VMinMS)
	}
}

func TestCurrentModelClearsBeforeVM(t *testing.T) {
	// Paper Fig. 5(b): the current model underestimates queue persistence.
	m := mustModel(t)
	cur, _ := NewCurrentModel(US25Params(), testTiming())
	vin := paperVin()
	vmClear, ok1 := m.QueueClearTime(vin)
	curClear, ok2 := cur.QueueClearTime(vin)
	if !ok1 || !ok2 {
		t.Fatal("both should clear")
	}
	if curClear >= vmClear {
		t.Fatalf("current model clear %v should precede VM clear %v", curClear, vmClear)
	}
}

func TestCurrentModelOversaturation(t *testing.T) {
	cur, _ := NewCurrentModel(US25Params(), testTiming())
	if _, ok := cur.QueueClearTime(cur.VMinMS/cur.SpacingM + 0.1); ok {
		t.Fatal("oversaturated current model should not clear")
	}
	if clear, ok := cur.QueueClearTime(0); !ok || clear != 30 {
		t.Fatalf("zero arrivals clear = (%v, %v), want (30, true)", clear, ok)
	}
}
