package queue_test

import (
	"fmt"

	"evvo/internal/queue"
	"evvo/internal/road"
)

// ExampleModel_QueueClearTime reproduces the paper's Section III-B-2
// measurement: at the second US-25 light (d = 8.5 m, γ = 76.36%,
// V_in = 153 veh/h, 30 s red / 30 s green), when does the standing queue
// finish discharging?
func ExampleModel_QueueClearTime() {
	m, err := queue.NewModel(queue.US25Params(), road.SignalTiming{RedSec: 30, GreenSec: 30})
	if err != nil {
		panic(err)
	}
	vin := queue.VehPerHour(153)
	clear, ok := m.QueueClearTime(vin)
	fmt.Printf("clears=%v at %.1f s into the cycle (green opens at 30 s)\n", ok, clear)
	w, _ := m.ZeroQueueWindow(vin)
	fmt.Printf("zero-queue window T_q: [%.1f, %.1f) s\n", w.Start, w.End)
	// Output:
	// clears=true at 33.1 s into the cycle (green opens at 30 s)
	// zero-queue window T_q: [33.1, 60.0) s
}

// ExampleModel_Integrate shows the discrete integrator handling a queue
// that outlives a single cycle under heavy arrivals.
func ExampleModel_Integrate() {
	m, err := queue.NewModel(queue.US25Params(), road.SignalTiming{RedSec: 30, GreenSec: 30})
	if err != nil {
		panic(err)
	}
	// Oversaturated: arrivals beyond the discharge capacity.
	vin := m.VMinMS / m.SpacingM * 1.2
	samples, err := m.Integrate(queue.ConstantRate(vin), 0, 300, 0.5)
	if err != nil {
		panic(err)
	}
	last := samples[len(samples)-1]
	fmt.Printf("after %.0f s the residual queue holds %d vehicles\n", last.T, int(last.QueueVeh))
	// Output:
	// after 300 s the residual queue holds 234 vehicles
}
