// Package queue implements the traffic-dynamics models of Kang et al.
// (ICDCS 2017) Section II-B: the vehicle-movement (VM) model describing how
// a standing queue discharges when a light turns green (Eq. 4), the leaving
// rate V_out derived from it (Eq. 5), and the queue-length (QL) model
// (Eq. 6) whose zero-crossing defines the zero-queue window T_q used by the
// DP optimizer.
//
// Two arrival-rate regimes are supported: the closed-form single-cycle
// solution with constant V_in (exactly Eq. 6), and a discrete-time
// integrator for time-varying V_in (e.g. from the SAE traffic predictor)
// across many cycles, which also handles oversaturation (residual queues).
//
// Conventions: times are seconds; "intoCycle" times are measured from the
// start of a signal cycle (red onset, as in Eq. 4); arrival/leaving rates
// are vehicles per second; queue length is reported both in vehicles and in
// metres (vehicles × average spacing d).
package queue

import (
	"fmt"
	"math"

	"evvo/internal/road"
	"evvo/internal/units"
)

// VehPerHour converts vehicles/hour to vehicles/second.
func VehPerHour(v float64) float64 { return units.VehPerHourToVehPerSec(v) }

// Params are the VM/QL model parameters from Section II-B.
type Params struct {
	// VMinMS is the minimum speed limit v_min queued vehicles accelerate to
	// (m/s).
	VMinMS float64
	// AMaxMS2 is the maximum acceleration a_max used by discharging
	// vehicles (m/s²).
	AMaxMS2 float64
	// SpacingM is the average inter-vehicle distance d inside the queue (m).
	SpacingM float64
	// StraightRatio is γ, the fraction of queued vehicles that go straight
	// through the intersection, in (0, 1].
	StraightRatio float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.VMinMS <= 0:
		return fmt.Errorf("queue: v_min %.2f m/s must be positive", p.VMinMS)
	case p.AMaxMS2 <= 0:
		return fmt.Errorf("queue: a_max %.2f m/s² must be positive", p.AMaxMS2)
	case p.SpacingM <= 0:
		return fmt.Errorf("queue: spacing %.2f m must be positive", p.SpacingM)
	case p.StraightRatio <= 0 || p.StraightRatio > 1:
		return fmt.Errorf("queue: straight ratio %.3f must be in (0, 1]", p.StraightRatio)
	}
	return nil
}

// US25Params returns the parameters measured at the second US-25 signal in
// the paper's evaluation (Section III-B-2): d = 8.5 m, γ = 76.36%,
// v_min = 40 km/h, a_max = 2.5 m/s².
func US25Params() Params {
	return Params{
		VMinMS:        road.KmhToMs(road.US25MinSpeedKmh),
		AMaxMS2:       2.5,
		SpacingM:      8.5,
		StraightRatio: 0.7636,
	}
}

// Model couples VM/QL parameters with a signal's timing.
type Model struct {
	Params
	Timing road.SignalTiming
}

// NewModel validates inputs and returns a Model.
func NewModel(p Params, timing road.SignalTiming) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	return &Model{Params: p, Timing: timing}, nil
}

// T1 returns the into-cycle time t₁ = t_red + v_min/a_max at which the queue
// head reaches v_min (Eq. 4).
func (m *Model) T1() float64 {
	return m.Timing.RedSec + m.VMinMS/m.AMaxMS2
}

// HeadSpeed returns the VM-model speed v(t) of the discharging queue head at
// intoCycle seconds after red onset (Eq. 4, conditions i–iii): zero during
// red, a_max·(t−t_red) while accelerating, then saturated at v_min.
// Condition (iv) — the EV's own v_opt once the queue is gone — belongs to
// the optimizer, not the queue.
func (m *Model) HeadSpeed(intoCycle float64) float64 {
	switch {
	case intoCycle < m.Timing.RedSec:
		return 0
	case intoCycle < m.T1():
		return m.AMaxMS2 * (intoCycle - m.Timing.RedSec)
	default:
		return m.VMinMS
	}
}

// DischargeCapacity returns the VM-model leaving-rate capacity
// v(t)/(d·γ) in vehicles/second (Eq. 5). This is the rate at which the
// standing queue can discharge; the realised leaving rate also depends on
// whether a queue remains (see LeavingRate).
func (m *Model) DischargeCapacity(intoCycle float64) float64 {
	return m.HeadSpeed(intoCycle) / (m.SpacingM * m.StraightRatio)
}

// LeavingRate returns the realised V_out at intoCycle for constant arrival
// rate vin (veh/s): zero during red, the discharge capacity while a queue
// remains, and V_in (pass-through) once the queue has cleared. This is the
// curve plotted in the paper's Fig. 5(a).
func (m *Model) LeavingRate(intoCycle, vin float64) float64 {
	if intoCycle < m.Timing.RedSec {
		return 0
	}
	if clear, ok := m.QueueClearTime(vin); ok && intoCycle >= clear {
		return vin
	}
	return m.DischargeCapacity(intoCycle)
}

// headDistance returns how far the queue head has travelled by intoCycle
// seconds (zero before green onset).
func (m *Model) headDistance(intoCycle float64) float64 {
	tr := m.Timing.RedSec
	if intoCycle <= tr {
		return 0
	}
	t1 := m.T1()
	if intoCycle <= t1 {
		dt := intoCycle - tr
		return 0.5 * m.AMaxMS2 * dt * dt
	}
	accelDist := 0.5 * m.VMinMS * m.VMinMS / m.AMaxMS2
	return accelDist + m.VMinMS*(intoCycle-t1)
}

// QueueLenM returns the QL-model queue length L_q in metres at intoCycle
// for constant arrival rate vin (veh/s), per Eq. (6): arrivals accumulate
// at d·V_in metres/second; from green onset the queue erodes by the distance
// the head has travelled. Never negative; zero stays zero for the remainder
// of the cycle (condition iv).
func (m *Model) QueueLenM(intoCycle, vin float64) float64 {
	if intoCycle < 0 {
		return 0
	}
	if clear, ok := m.QueueClearTime(vin); ok && intoCycle >= clear {
		return 0
	}
	l := m.SpacingM*vin*intoCycle - m.headDistance(intoCycle)
	if l < 0 {
		return 0
	}
	return l
}

// QueueLenVehicles returns L_q in vehicles (metres / spacing).
func (m *Model) QueueLenVehicles(intoCycle, vin float64) float64 {
	return m.QueueLenM(intoCycle, vin) / m.SpacingM
}

// QueueClearTime returns the into-cycle time t₂* at which the queue first
// reaches zero during the green phase, for constant arrival rate vin
// (veh/s). ok is false when the queue does not clear within the cycle
// (oversaturation) — then no zero-queue window exists.
func (m *Model) QueueClearTime(vin float64) (intoCycle float64, ok bool) {
	if vin <= 0 {
		return m.Timing.RedSec, true // nothing ever queues
	}
	tr, t1, cyc := m.Timing.RedSec, m.T1(), m.Timing.CycleSec()
	dv := m.SpacingM * vin // queue growth in m/s
	// Phase ii: d·vin·t = a_max(t−t_red)²/2, for t in (t_red, t1].
	// Solve ½a t² − (a·tr + dv)·t + ½a·tr² = 0.
	a := m.AMaxMS2
	A, B, C := 0.5*a, -(a*tr + dv), 0.5*a*tr*tr
	if disc := B*B - 4*A*C; disc >= 0 {
		root := (-B - math.Sqrt(disc)) / (2 * A) // earlier root
		if root > tr && root <= t1 {
			if root > cyc {
				return 0, false
			}
			return root, true
		}
		root = (-B + math.Sqrt(disc)) / (2 * A)
		if root > tr && root <= t1 {
			if root > cyc {
				return 0, false
			}
			return root, true
		}
	}
	// Phase iii: d·vin·t = v_min²/(2a_max) + v_min(t − t1), t in (t1, cycle].
	den := m.VMinMS - dv
	if den <= 0 {
		return 0, false // arrivals outpace discharge: never clears
	}
	t := (m.VMinMS*t1 - 0.5*m.VMinMS*m.VMinMS/m.AMaxMS2) / den
	if t <= t1 || t > cyc {
		if t <= t1 {
			// Numerical corner: clears essentially at t1.
			return t1, t1 <= cyc
		}
		return 0, false
	}
	return t, true
}

// Window is a half-open absolute-time interval [Start, End).
type Window struct {
	Start, End float64
}

// Contains reports whether t lies in the window.
func (w Window) Contains(t float64) bool { return t >= w.Start && t < w.End }

// Duration returns End − Start.
func (w Window) Duration() float64 { return w.End - w.Start }

// ZeroQueueWindow returns T_q for one cycle as into-cycle times: the
// interval [t₂*, cycle end) during which the queue is empty and an arriving
// EV passes the light unimpeded. ok is false when the queue never clears.
func (m *Model) ZeroQueueWindow(vin float64) (Window, bool) {
	clear, ok := m.QueueClearTime(vin)
	if !ok {
		return Window{}, false
	}
	cyc := m.Timing.CycleSec()
	if clear >= cyc {
		return Window{}, false
	}
	return Window{Start: clear, End: cyc}, true
}

// ZeroWindowsAbs returns every zero-queue window, in absolute time,
// intersecting [from, to), assuming constant arrival rate vin across all
// cycles. Windows are clipped to [from, to).
func (m *Model) ZeroWindowsAbs(vin, from, to float64) []Window {
	w, ok := m.ZeroQueueWindow(vin)
	if !ok || to <= from {
		return nil
	}
	cyc := m.Timing.CycleSec()
	// First cycle whose window could intersect [from, to).
	first := math.Floor((from-m.Timing.OffsetSec)/cyc) - 1
	var out []Window
	for k := first; ; k++ {
		start := m.Timing.OffsetSec + k*cyc + w.Start
		end := m.Timing.OffsetSec + k*cyc + w.End
		if start >= to {
			break
		}
		if end <= from {
			continue
		}
		out = append(out, Window{Start: math.Max(start, from), End: math.Min(end, to)})
	}
	return out
}

// GreenWindowsAbs returns every green-phase window (the baseline DP's
// feasible set, which ignores queues) intersecting [from, to).
func (m *Model) GreenWindowsAbs(from, to float64) []Window {
	if to <= from {
		return nil
	}
	cyc := m.Timing.CycleSec()
	first := math.Floor((from-m.Timing.OffsetSec)/cyc) - 1
	var out []Window
	for k := first; ; k++ {
		start := m.Timing.OffsetSec + k*cyc + m.Timing.RedSec
		end := m.Timing.OffsetSec + (k+1)*cyc
		if start >= to {
			break
		}
		if end <= from {
			continue
		}
		out = append(out, Window{Start: math.Max(start, from), End: math.Min(end, to)})
	}
	return out
}
